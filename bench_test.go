// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to
// end on the simulated substrate; `go test -bench=. -benchmem` exercises
// the whole evaluation, and cmd/trenv-bench prints the paper-style rows.
//
// Scale: benchmarks default to 0.35x the paper's 30-minute workloads so
// the full suite stays in CI budgets; set TRENV_BENCH_SCALE=1 for
// paper-scale runs.
package trenv_test

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/experiments"
)

func benchOptions() experiments.Options {
	scale := 0.35
	if s := os.Getenv("TRENV_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	return experiments.Options{Seed: 1, Scale: scale}
}

// runExperiment is the shared benchmark body.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := benchOptions()
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = run(o)
	}
	if r == nil || len(r.Lines) == 0 {
		b.Fatalf("%s produced no output", id)
	}
	b.ReportMetric(float64(len(r.Lines)), "rows")
}

// BenchmarkTable1ComponentOverheads regenerates Table 1: per-component
// sandbox creation costs vs TrEnv's reuse path.
func BenchmarkTable1ComponentOverheads(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2AgentCharacteristics regenerates Table 2: per-agent
// E2E latency, peak memory, and CPU time.
func BenchmarkTable2AgentCharacteristics(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3TokenUsage regenerates Table 3: per-agent LLM tokens.
func BenchmarkTable3TokenUsage(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig3RelativeCost regenerates Figure 3: serverless cost
// relative to LLM cost per agent.
func BenchmarkFig3RelativeCost(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4Breakdown regenerates Figure 4: cold-start vs CRIU vs
// TrEnv startup breakdowns at 1 and 15 concurrent starts.
func BenchmarkFig4Breakdown(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig10ReadOnlyRatio regenerates Figure 10: read-only vs
// written page ratios per function.
func BenchmarkFig10ReadOnlyRatio(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig17W1W2 regenerates Figure 17: E2E latency distributions
// under the bursty (W1) and diurnal/tight-memory (W2) workloads across
// all six systems.
func BenchmarkFig17W1W2(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18PeakMemory regenerates Figure 18: peak memory across the
// four workloads (a) and the 50-instance IR/IFR start (b).
func BenchmarkFig18PeakMemory(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkFig19NoConcurrency regenerates Figure 19: normalized E2E
// latency without concurrency, split into startup and execution.
func BenchmarkFig19NoConcurrency(b *testing.B) { runExperiment(b, "fig19") }

// BenchmarkFig20RealWorld regenerates Figure 20: P99 latency on the
// Azure-like and Huawei-like industrial traces, normalized to REAP+.
func BenchmarkFig20RealWorld(b *testing.B) { runExperiment(b, "fig20") }

// BenchmarkFig21Ablation regenerates Figure 21: the +Reconfig, +Cgroup,
// +mm-template optimization steps on IR and JS.
func BenchmarkFig21Ablation(b *testing.B) { runExperiment(b, "fig21") }

// BenchmarkFig22CXLvsRDMA regenerates Figure 22: execution latency of
// T-CXL vs T-RDMA at P75/P99 per function.
func BenchmarkFig22CXLvsRDMA(b *testing.B) { runExperiment(b, "fig22") }

// BenchmarkFig23VMStartup regenerates Figure 23: Blackjack startup
// latency across E2B, E2B+, vanilla CH, and TrEnv.
func BenchmarkFig23VMStartup(b *testing.B) { runExperiment(b, "fig23") }

// BenchmarkFig24BrowserSharing regenerates Figure 24: browser-agent E2E
// under overcommitment, TrEnv vs TrEnv-S.
func BenchmarkFig24BrowserSharing(b *testing.B) { runExperiment(b, "fig24") }

// BenchmarkFig25AgentMemory regenerates Figure 25: peak memory per agent
// across E2B, E2B+, and TrEnv.
func BenchmarkFig25AgentMemory(b *testing.B) { runExperiment(b, "fig25") }

// BenchmarkFig26MemoryTimeline regenerates Figure 26: memory usage over
// time (and usage x duration cost) for Map reduce and Blog summary.
func BenchmarkFig26MemoryTimeline(b *testing.B) { runExperiment(b, "fig26") }

// BenchmarkAblations exercises the design-choice knobs DESIGN.md calls
// out beyond the paper's figures: multi-layer hot/cold placement,
// hot-working-set promotion, EPT pre-population, per-user dedup, and
// Groundhog-style request isolation.
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }

// BenchmarkSensitivity re-runs the W1 headline comparison with each
// calibration constant scaled 0.5x-2x, verifying orderings are robust.
func BenchmarkSensitivity(b *testing.B) { runExperiment(b, "sensitivity") }
