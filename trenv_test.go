package trenv_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	trenv "repro"
)

func TestPublicAPIQuickPath(t *testing.T) {
	pl := trenv.NewContainerPlatform(trenv.DefaultContainerConfig(trenv.TrEnvCXL))
	for _, fn := range trenv.Functions() {
		if err := pl.Register(fn); err != nil {
			t.Fatal(err)
		}
	}
	pl.Invoke(0, "JS")
	pl.Invoke(time.Second, "JS")
	pl.Engine().Run()
	m := pl.Metrics()
	if m.Invocations() != 2 || m.Errors.Value() != 0 {
		t.Fatalf("invocations=%d errors=%d", m.Invocations(), m.Errors.Value())
	}
	if m.WarmHits.Value() != 1 {
		t.Fatalf("warm hits = %d", m.WarmHits.Value())
	}
}

func TestPublicAPIAgents(t *testing.T) {
	pl, err := trenv.NewAgentPlatform(trenv.DefaultAgentConfig(trenv.TrEnvVMShared))
	if err != nil {
		t.Fatal(err)
	}
	a, err := trenv.AgentByName("blackjack")
	if err != nil {
		t.Fatal(err)
	}
	pl.Launch(0, a)
	pl.Run()
	if pl.Metrics("blackjack").E2E.N() != 1 {
		t.Fatal("agent did not run")
	}
	pr := trenv.DefaultPricing()
	if trenv.LLMCost(a, pr) <= 0 || trenv.ServerlessCost(a, pr) <= 0 {
		t.Fatal("cost model broken")
	}
}

func TestPublicAPICluster(t *testing.T) {
	c, err := trenv.NewCluster(2, trenv.DefaultContainerConfig(trenv.TrEnvCXL))
	if err != nil {
		t.Fatal(err)
	}
	js, _ := trenv.FunctionByName("JS")
	if err := c.Register(js); err != nil {
		t.Fatal(err)
	}
	c.Invoke(0, "JS")
	c.Engine().Run()
	if c.Invocations() != 1 {
		t.Fatalf("invocations = %d", c.Invocations())
	}
}

func TestPublicAPITemplates(t *testing.T) {
	reg := trenv.NewTemplateRegistry()
	tpl := reg.Create("demo")
	pool := trenv.NewCXLPool(0)
	if err := tpl.AddMap("heap", 0x10000, 64<<12, trenv.ProtRead|trenv.ProtWrite, trenv.MapAnon); err != nil {
		t.Fatal(err)
	}
	if err := tpl.SetupPT(0x10000, 64<<12, 0, pool); err != nil {
		t.Fatal(err)
	}
	if tpl.MetadataBytes() == 0 {
		t.Fatal("no metadata")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := trenv.ExperimentIDs()
	if len(ids) != 23 {
		t.Fatalf("experiments = %d, want 23", len(ids))
	}
	r, ok := trenv.RunExperiment("table3", trenv.ExperimentOptions{Seed: 1, Scale: 0.1})
	if !ok || len(r.Lines) == 0 {
		t.Fatal("table3 failed")
	}
	if _, ok := trenv.RunExperiment("nope", trenv.ExperimentOptions{}); ok {
		t.Fatal("phantom experiment")
	}
}

func TestPublicAPIMultiRack(t *testing.T) {
	m, err := trenv.NewMultiRack(2, 2, trenv.DefaultContainerConfig(trenv.TrEnvCXL))
	if err != nil {
		t.Fatal(err)
	}
	js, _ := trenv.FunctionByName("JS")
	if err := m.Register(js, 0); err != nil {
		t.Fatal(err)
	}
	m.Invoke(0, "JS")
	m.Engine().Run()
	if m.Invocations() != 1 {
		t.Fatalf("invocations = %d", m.Invocations())
	}
}

func TestPublicAPITierManager(t *testing.T) {
	tm, err := trenv.NewTierManager(trenv.NewCXLPool(0), trenv.NewRDMAPool(0), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Place("lib", 100); err != nil {
		t.Fatal(err)
	}
	tm.RecordAccess("lib", 10)
	if _, err := tm.Rebalance(1 << 30); err != nil {
		t.Fatal(err)
	}
	if tier, _ := tm.TierOf("lib"); tier.String() != "cxl" {
		t.Fatalf("tier = %v", tier)
	}
}

func TestPublicAPISerialization(t *testing.T) {
	a, _ := trenv.AgentByName("blackjack")
	var buf bytes.Buffer
	if err := trenv.WriteAgentTrace(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := trenv.ReadAgentTrace(&buf)
	if err != nil || got.Name != "blackjack" {
		t.Fatalf("agent trace round trip: %v %v", got.Name, err)
	}
	js, _ := trenv.FunctionByName("JS")
	snap := js.Snapshot()
	buf.Reset()
	if err := trenv.WriteSnapshotImage(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := trenv.ReadSnapshotImage(&buf)
	if err != nil || back.Function != "JS" {
		t.Fatalf("snapshot round trip: %v %v", back, err)
	}
}

func TestPublicAPIAzureCSV(t *testing.T) {
	csvText := "HashOwner,HashApp,HashFunction,Trigger,1,2\no,a,f1,http,3,4\n"
	tr, err := trenv.ParseAzureCSV(strings.NewReader(csvText), rand.New(rand.NewSource(1)),
		trenv.AzureCSVOptions{Functions: []string{"JS"}})
	if err != nil || tr.Len() != 7 {
		t.Fatalf("csv parse: %d, %v", tr.Len(), err)
	}
}
