package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/selfbench"
)

// writeBundle renders r into dir under name and returns the path.
func writeBundle(t *testing.T, dir, name string, r *report.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI drives the CLI in-process and returns exit code plus output.
func runCLI(args ...string) (int, string, string) {
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// bundle builds a small span-carrying report.
func bundle() *report.Report {
	r := report.New("test", 1, 1)
	r.Metrics = []report.Metric{{Key: "trenv_errors_total", Name: "trenv_errors_total", Value: 1}}
	r.Spans = []report.SpanRecord{
		{TraceID: "t1", SpanID: "s1", Name: "invoke/JS", Node: "n0", StartUs: 0, DurUs: 500},
		{TraceID: "t2", SpanID: "s2", Name: "invoke/PR", Node: "n0", StartUs: 100, DurUs: 900},
	}
	return r
}

func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeBundle(t, dir, "base.json", bundle())

	t.Run("identical-is-zero", func(t *testing.T) {
		code, out, _ := runCLI(base, base)
		if code != 0 {
			t.Fatalf("exit %d:\n%s", code, out)
		}
		if !strings.Contains(out, "0 findings") {
			t.Fatalf("summary lacks zero-findings line:\n%s", out)
		}
	})

	t.Run("regression-is-one", func(t *testing.T) {
		bad := bundle()
		bad.Metrics[0].Value = 5
		fresh := writeBundle(t, dir, "bad.json", bad)
		code, out, _ := runCLI(base, fresh)
		if code != 1 {
			t.Fatalf("exit %d, want 1:\n%s", code, out)
		}
		if !strings.Contains(out, "trenv_errors_total") || !strings.Contains(out, "REGRESSED") {
			t.Fatalf("summary lacks the finding:\n%s", out)
		}
	})

	t.Run("divergence-is-one-and-named", func(t *testing.T) {
		bad := bundle()
		bad.Spans[1].DurUs++
		fresh := writeBundle(t, dir, "diverged.json", bad)
		code, out, _ := runCLI(base, fresh)
		if code != 1 {
			t.Fatalf("exit %d, want 1:\n%s", code, out)
		}
		if !strings.Contains(out, "first divergent span at index 1") ||
			!strings.Contains(out, "trace t2") {
			t.Fatalf("summary lacks the divergence diagnosis:\n%s", out)
		}
	})

	t.Run("usage-is-two", func(t *testing.T) {
		if code, _, _ := runCLI(base); code != 2 {
			t.Fatalf("one-arg exit = %d, want 2", code)
		}
		if code, _, _ := runCLI("-format", "yaml", base, base); code != 2 {
			t.Fatalf("bad format exit = %d, want 2", code)
		}
		if code, _, _ := runCLI(base, filepath.Join(dir, "nope.json")); code != 2 {
			t.Fatalf("unreadable exit = %d, want 2", code)
		}
	})

	t.Run("mismatch-is-three", func(t *testing.T) {
		other := bundle()
		other.Seed = 2
		fresh := writeBundle(t, dir, "reseeded.json", other)
		code, _, errOut := runCLI(base, fresh)
		if code != 3 {
			t.Fatalf("seed mismatch exit = %d, want 3:\n%s", code, errOut)
		}
		if !strings.Contains(errOut, "seed mismatch") {
			t.Fatalf("stderr lacks refusal reason:\n%s", errOut)
		}
	})
}

func TestToleranceFlag(t *testing.T) {
	dir := t.TempDir()
	base := writeBundle(t, dir, "base.json", bundle())
	bad := bundle()
	bad.Metrics[0].Value = 1.05
	bad.Spans = nil
	baseNoSpans := bundle()
	baseNoSpans.Spans = nil
	base = writeBundle(t, dir, "base2.json", baseNoSpans)
	fresh := writeBundle(t, dir, "drift.json", bad)
	if code, out, _ := runCLI(base, fresh); code != 1 {
		t.Fatalf("exact comparison accepted 5%% drift (exit %d):\n%s", code, out)
	}
	if code, out, _ := runCLI("-tol", "0.1", base, fresh); code != 0 {
		t.Fatalf("-tol 0.1 rejected 5%% drift (exit %d):\n%s", code, out)
	}
}

func TestJSONFormatDeterministic(t *testing.T) {
	dir := t.TempDir()
	base := writeBundle(t, dir, "base.json", bundle())
	bad := bundle()
	bad.Metrics[0].Value = 3
	fresh := writeBundle(t, dir, "bad.json", bad)
	_, a, _ := runCLI("-format", "json", base, fresh)
	_, b, _ := runCLI("-format", "json", base, fresh)
	if a != b {
		t.Fatalf("JSON output differs across runs:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, `"schema": "trenv-diff/v1"`) {
		t.Fatalf("JSON lacks result schema:\n%s", a)
	}
}

func TestSelfbenchArtifactsCompare(t *testing.T) {
	dir := t.TempDir()
	rep := selfbench.RunSuite(selfbench.Options{Seed: 5, Scale: 0.01})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sb.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(path, path)
	if code != 0 {
		t.Fatalf("identical selfbench artifacts rejected (exit %d):\n%s%s", code, out, errOut)
	}
	for _, want := range []string{"events_per_sec", "invocations_per_sec", "allocs_per_event"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary lacks gate %s:\n%s", want, out)
		}
	}

	// Selfbench artifacts refuse comparison against run bundles.
	other := writeBundle(t, dir, "bundle.json", func() *report.Report {
		r := report.New("selfbench", 5, 0.01)
		return r
	}())
	if code, _, _ := runCLI(path, other); code != 3 {
		t.Fatalf("cross-kind comparison exit = %d, want 3", code)
	}
}
