// Command trenv-diff compares two run artifacts and attributes the
// delta: per-metric deltas inside tolerance bands, per-function
// per-phase latency-attribution deltas, critical-path structural diffs,
// time-series divergence, figure-row diffs, selfbench regression gates,
// and — for same-seed span-carrying pairs — determinism triage that
// names the first divergent span (trace ID, virtual time, phase, node)
// instead of "bytes differ".
//
// Usage:
//
//	trenv-diff [-tol F] [-abs-tol F] [-events-tol F] [-allocs-tol F]
//	           [-format text|json] baseline.json fresh.json
//	trenv-diff -version
//
// Both arguments are either trenv-report/v1 bundles (trenv-bench
// -report, trenvd GET /report) or trenv-selfbench/v1 artifacts
// (trenv-bench -selfbench); the two kinds refuse to cross-compare.
// Output is deterministic: diffing the same pair twice is
// byte-identical.
//
// Exit codes:
//
//	0  comparable and no regression
//	1  regression: a failed gate, a regressed/missing finding, or a
//	   determinism divergence
//	2  usage error, unreadable file, or malformed artifact
//	3  artifacts refuse comparison (schema, source, seed, or scale
//	   disagree)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	trenv "repro"
	"repro/internal/diff"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run executes the comparison and returns the process exit code; main
// stays a one-liner so tests can drive the CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trenv-diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tol", 0, "relative tolerance band on metric/phase/series deltas (0 = exact, right for same-seed artifacts)")
	absTol := fs.Float64("abs-tol", 0, "absolute tolerance floor: deltas smaller than this are unchanged regardless of -tol")
	eventsTol := fs.Float64("events-tol", 0, "selfbench throughput-floor band on events_per_sec and invocations_per_sec (0 = default 0.30)")
	allocsTol := fs.Float64("allocs-tol", 0, "selfbench allocation-ceiling band on allocs_per_event (0 = default 0.20)")
	format := fs.String("format", "text", "output format: text or json")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "trenv-diff %s %s %s/%s\n", trenv.Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return 0
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "trenv-diff: bad -format %q (want text or json)\n", *format)
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: trenv-diff [flags] baseline.json fresh.json")
		fs.PrintDefaults()
		return 2
	}
	res, err := diff.CompareFiles(fs.Arg(0), fs.Arg(1), diff.Options{
		RelTol:    *tol,
		AbsTol:    *absTol,
		EventsTol: *eventsTol,
		AllocsTol: *allocsTol,
	})
	if err != nil {
		fmt.Fprintf(stderr, "trenv-diff: %v\n", err)
		var mismatch *diff.MismatchError
		if errors.As(err, &mismatch) {
			return 3
		}
		return 2
	}
	var werr error
	if *format == "json" {
		werr = res.WriteJSON(stdout)
	} else {
		werr = res.WriteText(stdout)
	}
	if werr != nil {
		fmt.Fprintf(stderr, "trenv-diff: write: %v\n", werr)
		return 2
	}
	if res.Regressed() {
		return 1
	}
	return 0
}
