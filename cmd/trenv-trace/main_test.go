package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	trenv "repro"
)

// TestInspectTraceRoundTrip writes a trace file and inspects it.
func TestInspectTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	tr := trenv.Trace{
		{At: 0, Function: "JS"},
		{At: 1e9, Function: "JS"},
		{At: 2e9, Function: "DH"},
	}
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inspectTrace(path); err != nil {
		t.Fatal(err)
	}
}

func TestInspectTraceErrors(t *testing.T) {
	if err := inspectTrace(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if err := inspectTrace(bad); err == nil {
		t.Fatal("bad json accepted")
	}
}

// TestEmitWritesFile checks the shared JSON emitter.
func TestEmitWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	emit(trenv.Trace{{At: 0, Function: "JS"}}, path, "test")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr trenv.Trace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr[0].Function != "JS" {
		t.Fatalf("round trip = %+v", tr)
	}
}
