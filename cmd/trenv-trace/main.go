// Command trenv-trace generates and inspects the evaluation's workload
// traces as JSON.
//
// Usage:
//
//	trenv-trace -kind w1|w2|azure|huawei [-seed N] [-minutes M] [-out f.json]
//	trenv-trace -from-csv trace.csv [-minutes M] [-out f.json]
//	trenv-trace -inspect f.json
//	trenv-trace -version
//
// -from-csv ingests the Azure Functions trace format (per-minute counts
// per function), mapping its busiest rows onto the Table 4 functions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	trenv "repro"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "w1", "trace kind: w1, w2, azure, huawei")
	seed := flag.Int64("seed", 1, "generator seed")
	minutes := flag.Int("minutes", 30, "trace duration in minutes")
	out := flag.String("out", "", "output file (default stdout)")
	inspect := flag.String("inspect", "", "inspect an existing trace file instead of generating")
	fromCSV := flag.String("from-csv", "", "ingest an Azure Functions CSV trace instead of generating")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("trenv-trace %s %s %s/%s\n", trenv.Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			log.Fatalf("trenv-trace: %v", err)
		}
		return
	}

	var names []string
	for _, p := range trenv.Functions() {
		names = append(names, p.Name)
	}
	rng := rand.New(rand.NewSource(*seed))
	dur := time.Duration(*minutes) * time.Minute

	if *fromCSV != "" {
		f, err := os.Open(*fromCSV)
		if err != nil {
			log.Fatalf("trenv-trace: %v", err)
		}
		defer f.Close()
		tr, err := workload.ParseAzureCSV(f, rng, workload.AzureCSVOptions{
			Functions:  names,
			MaxMinutes: *minutes,
		})
		if err != nil {
			log.Fatalf("trenv-trace: %v", err)
		}
		emit(tr, *out, "csv:"+*fromCSV)
		return
	}

	var tr trenv.Trace
	switch *kind {
	case "w1":
		cfg := workload.DefaultW1(names)
		cfg.Duration = dur
		tr = workload.W1Bursty(rng, cfg)
	case "w2":
		cfg := workload.DefaultW2(names)
		cfg.Duration = dur
		tr = workload.W2Diurnal(rng, cfg)
	case "azure":
		cfg := workload.AzureConfig(names)
		cfg.Duration = dur
		tr = workload.Industrial(rng, cfg)
	case "huawei":
		cfg := workload.HuaweiConfig(names)
		cfg.Duration = dur
		tr = workload.Industrial(rng, cfg)
	default:
		log.Fatalf("trenv-trace: unknown kind %q", *kind)
	}

	emit(tr, *out, *kind)
}

// emit writes the trace as JSON to out (or stdout) with a summary line
// on stderr.
func emit(tr trenv.Trace, out, label string) {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatalf("trenv-trace: %v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(tr); err != nil {
		log.Fatalf("trenv-trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "trenv-trace: %s: %d invocations over %v\n", label, tr.Len(), tr.Duration().Round(time.Second))
}

func inspectTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr trenv.Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	fmt.Printf("invocations: %d\nduration: %v\n", tr.Len(), tr.Duration().Round(time.Second))
	counts := tr.CountByFunction()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-5s %6d\n", n, counts[n])
	}
	// Peak minute.
	perMin := map[time.Duration]int{}
	for _, inv := range tr {
		perMin[inv.At.Truncate(time.Minute)]++
	}
	peakAt, peak := time.Duration(0), 0
	for m, c := range perMin {
		if c > peak || (c == peak && m < peakAt) {
			peakAt, peak = m, c
		}
	}
	fmt.Printf("peak minute: %v (%d invocations)\n", peakAt, peak)
	return nil
}
