// Command trenv-bench regenerates the paper's tables and figures on the
// simulated substrate and prints them in paper-style rows.
//
// Usage:
//
//	trenv-bench [-exp table1,fig17,...|all] [-seed N] [-scale F]
//	            [-json] [-trace out.json] [-timeseries out.json]
//	            [-analyze report.json] [-flame out.folded]
//	            [-chaos spec] [-prefetch]
//
// -json prints the results as a JSON array instead of paper-style text;
// -trace collects every invocation's span tree during the runs and
// writes them as Chrome trace-event JSON (open in chrome://tracing or
// Perfetto); -timeseries samples the trace-driven figure runs into
// utilization-over-time series and writes them as JSON (or CSV when
// the filename ends in .csv); -analyze writes the trace-analytics
// report (top-k slowest invocations with critical paths, per-function
// phase attribution, tail-vs-median diffs) as JSON; -flame writes the
// recorded spans as folded flamegraph stacks (flamegraph.pl /
// speedscope compatible). Same-seed runs write byte-identical
// time-series, analysis, and flamegraph files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (table1..fig26) or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper scale)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	out := flag.String("out", "", "also write the output to this file")
	tracePath := flag.String("trace", "", "write invocation spans as Chrome trace JSON to this file")
	tsPath := flag.String("timeseries", "", "write per-run metric time series to this file (.csv for CSV, else JSON)")
	analyzePath := flag.String("analyze", "", "write the trace-analytics report as JSON to this file")
	flamePath := flag.String("flame", "", "write recorded spans as folded flamegraph stacks to this file")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text")
	chaosSpec := flag.String("chaos", "", "fault-injection spec applied to every run, e.g. 'outage:cxl:10s-20s,flaky:rdma:0.2:burst=3,crash:n1:30s'")
	prefetch := flag.Bool("prefetch", false, "enable working-set prefetching on every TrEnv platform the experiments build")
	flag.Parse()

	var tee io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tee = io.MultiWriter(os.Stdout, f)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintln(tee, e.ID)
		}
		return
	}
	o := experiments.Options{Seed: *seed, Scale: *scale, Prefetch: *prefetch}
	if *tracePath != "" || *analyzePath != "" || *flamePath != "" {
		o.Tracer = obs.NewTracer(0)
	}
	if *tsPath != "" {
		o.Recorders = obs.NewRecorderSet(0, 0)
	}
	if *chaosSpec != "" {
		sc, err := fault.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: -chaos: %v\n", err)
			os.Exit(2)
		}
		o.Chaos = &sc
	}
	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	var results []*experiments.Result
	for _, id := range ids {
		run, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "trenv-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		r := run(o)
		if *jsonOut {
			results = append(results, r)
		} else {
			fmt.Fprintln(tee, r)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(tee)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: encode results: %v\n", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(f, o.Tracer.Spans()); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trenv-bench: write trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: close trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote %d spans (%d dropped) to %s\n",
			o.Tracer.Len(), o.Tracer.Dropped(), *tracePath)
	}
	if *analyzePath != "" {
		f, err := os.Create(*analyzePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		rep := obs.Analyze(o.Tracer.Spans(), 0)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trenv-bench: write analysis: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: close analysis: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote analysis of %d invocations to %s\n",
			rep.Invocations, *analyzePath)
	}
	if *flamePath != "" {
		f, err := os.Create(*flamePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteFolded(f, o.Tracer.Spans()); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trenv-bench: write flame: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: close flame: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote folded stacks to %s\n", *flamePath)
	}
	if *tsPath != "" {
		f, err := os.Create(*tsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		write := o.Recorders.WriteJSON
		if strings.HasSuffix(*tsPath, ".csv") {
			write = o.Recorders.WriteCSV
		}
		if err := write(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trenv-bench: write timeseries: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: close timeseries: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote time series for %d runs to %s\n",
			o.Recorders.Runs(), *tsPath)
	}
}
