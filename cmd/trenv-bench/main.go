// Command trenv-bench regenerates the paper's tables and figures on the
// simulated substrate and prints them in paper-style rows.
//
// Usage:
//
//	trenv-bench [-exp table1,fig17,...|all] [-seed N] [-scale F]
//	            [-json] [-trace out.json] [-timeseries out.json]
//	            [-analyze report.json] [-flame out.folded]
//	            [-report bundle.json] [-report-lean]
//	            [-chaos spec] [-prefetch] [-alerts out.json] [-rules spec]
//	            [-shards N]
//	trenv-bench -selfbench report.json [-seed N] [-scale F]
//	trenv-bench -selfbench-shard report.json [-seed N] [-scale F]
//	trenv-bench -version
//
// -json prints the results as a JSON array instead of paper-style text;
// -trace collects every invocation's span tree during the runs and
// writes them as Chrome trace-event JSON (open in chrome://tracing or
// Perfetto); -timeseries samples the trace-driven figure runs into
// utilization-over-time series and writes them as JSON (or CSV when
// the filename ends in .csv); -analyze writes the trace-analytics
// report (top-k slowest invocations with critical paths, per-function
// phase attribution, tail-vs-median diffs) as JSON; -flame writes the
// recorded spans as folded flamegraph stacks (flamegraph.pl /
// speedscope compatible). Same-seed runs write byte-identical
// time-series, analysis, and flamegraph files.
//
// -report writes the schema-stable trenv-report/v1 run bundle: the
// run's identity (seed, scale, flags, build version), every figure's
// rendered rows, per-run end-state metrics and sampled series, trace
// analytics, and the flattened virtual-time-ordered span list. Bundles
// are what cmd/trenv-diff compares; same-seed runs write byte-identical
// bundles. -report-lean shrinks the bundle to committed-baseline size
// (spans and sampled series omitted); combined with -selfbench,
// -report converts the wall-clock artifact into a bundle instead.
//
// -alerts attaches the alert engine to every run (one engine per run,
// evaluated on the virtual clock at each flight-recorder sample) and
// writes the per-run alert states, incidents, and transition timelines
// as JSON; -rules overrides the built-in rule set with a compact spec
// or @file (grammar in internal/alert). Alerts also embed in -report
// bundles, where cmd/trenv-diff compares them against a baseline.
// Same-seed runs write byte-identical alert JSON.
//
// -selfbench switches to the wall-clock self-benchmark: instead of
// paper figures it measures the simulator itself (events/sec,
// invocations/sec, spans/sec, allocations per event, observability
// overhead) and writes the schema-stable report JSON that
// scripts/bench-compare.sh regression-gates against the committed
// BENCH_pr6.json baseline. Wall-clock readings are host-dependent;
// the work counts inside the report are deterministic per seed/scale.
//
// -selfbench-shard runs the sharded variant of the suite: the same
// 4-rack fleet workload at worker counts 1, 2, and 4, gated by
// scripts/bench-compare.sh against the committed BENCH_shard.json.
// The deterministic work totals must be identical across the rows
// (the suite aborts otherwise), so the artifact doubles as a
// worker-invariance proof. -shards sets the worker parallelism for
// sharded-fleet experiment runs (the "sharding" experiment executes
// its reference run at that count and checks it against the fixed
// worker-count sweep); every emitted line is invariant of the flag.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	trenv "repro"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/selfbench"
)

// runSelfBench executes a wall-clock suite and writes the
// schema-stable report, echoing a human summary to stdout. When
// reportPath is set, the artifact is additionally converted into a
// trenv-report/v1 bundle and written there.
func runSelfBench(path, reportPath string, seed int64, scale float64,
	suite func(selfbench.Options) *selfbench.Report) error {
	rep := suite(selfbench.Options{Seed: seed, Scale: scale})
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	if path != "-" {
		for _, line := range rep.Summary() {
			fmt.Println(line)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote self-benchmark report to %s\n", path)
	}
	if reportPath != "" {
		if err := report.FromSelfbench(rep).WriteFile(reportPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote run bundle to %s\n", reportPath)
	}
	return nil
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (table1..fig26) or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper scale)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	out := flag.String("out", "", "also write the output to this file")
	tracePath := flag.String("trace", "", "write invocation spans as Chrome trace JSON to this file")
	tsPath := flag.String("timeseries", "", "write per-run metric time series to this file (.csv for CSV, else JSON)")
	analyzePath := flag.String("analyze", "", "write the trace-analytics report as JSON to this file")
	flamePath := flag.String("flame", "", "write recorded spans as folded flamegraph stacks to this file")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text")
	chaosSpec := flag.String("chaos", "", "fault-injection spec applied to every run, e.g. 'outage:cxl:10s-20s,flaky:rdma:0.2:burst=3,crash:n1:30s'")
	alertsPath := flag.String("alerts", "", "attach the alert engine to every run and write per-run alert states, incidents, and timelines as JSON to this file")
	rulesSpec := flag.String("rules", "", "with -alerts or -report: alerting rules as a compact spec or @file (empty = built-in default set)")
	prefetch := flag.Bool("prefetch", false, "enable working-set prefetching on every TrEnv platform the experiments build")
	hedgeSpec := flag.String("hedge", "", "request-hedging policy armed on every cluster the experiments build, e.g. 'delay:50ms', 'p95', 'clone:2' (see README for the grammar)")
	selfbenchPath := flag.String("selfbench", "", "run the wall-clock self-benchmark suite instead of experiments and write the report JSON to this file ('-' for stdout)")
	selfbenchShard := flag.String("selfbench-shard", "", "run the sharded wall-clock suite (cluster-azure at worker counts 1/2/4) instead of experiments and write the report JSON to this file ('-' for stdout)")
	shards := flag.Int("shards", 0, "worker parallelism for sharded-fleet experiment runs (0 = sequential; all outputs are invariant of it)")
	reportPath := flag.String("report", "", "write the schema-stable trenv-report/v1 run bundle (figures, metrics, series, spans, analysis) to this file")
	reportLean := flag.Bool("report-lean", false, "with -report: omit spans and sampled series, producing a committed-baseline-sized bundle")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("trenv-bench %s %s %s/%s\n", trenv.Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}
	if *selfbenchPath != "" {
		if err := runSelfBench(*selfbenchPath, *reportPath, *seed, *scale, selfbench.RunSuite); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: selfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *selfbenchShard != "" {
		if err := runSelfBench(*selfbenchShard, *reportPath, *seed, *scale, selfbench.RunShardSuite); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: selfbench-shard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var tee io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tee = io.MultiWriter(os.Stdout, f)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintln(tee, e.ID)
		}
		return
	}
	o := experiments.Options{Seed: *seed, Scale: *scale, Prefetch: *prefetch, Shards: *shards}
	if *tracePath != "" || *analyzePath != "" || *flamePath != "" || *reportPath != "" {
		o.Tracer = obs.NewTracer(0)
	}
	if *tsPath != "" || *reportPath != "" {
		o.Recorders = obs.NewRecorderSet(0, 0)
	}
	if *chaosSpec != "" {
		sc, err := fault.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: -chaos: %v\n", err)
			os.Exit(2)
		}
		o.Chaos = &sc
	}
	if *hedgeSpec != "" {
		hp, err := trenv.ParseHedgePolicy(*hedgeSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: -hedge: %v\n", err)
			os.Exit(2)
		}
		if hp.Enabled() {
			o.Hedge = &hp
		}
	}
	if *alertsPath != "" || *rulesSpec != "" {
		rules := trenv.DefaultAlertRules()
		if *rulesSpec != "" {
			var err error
			rules, err = trenv.LoadAlertRules(*rulesSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trenv-bench: -rules: %v\n", err)
				os.Exit(2)
			}
		}
		o.Alerts = trenv.NewAlertSet(rules)
		if o.Recorders == nil {
			// Alert evaluation rides the flight-recorder sampler.
			o.Recorders = obs.NewRecorderSet(0, 0)
		}
	}
	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	var results []*experiments.Result
	for _, id := range ids {
		run, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "trenv-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		r := run(o)
		results = append(results, r)
		if !*jsonOut {
			fmt.Fprintln(tee, r)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(tee)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: encode results: %v\n", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(f, o.Tracer.Spans()); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trenv-bench: write trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: close trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote %d spans (%d dropped) to %s\n",
			o.Tracer.Len(), o.Tracer.Dropped(), *tracePath)
	}
	if *analyzePath != "" {
		f, err := os.Create(*analyzePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		rep := obs.Analyze(o.Tracer.Spans(), 0)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trenv-bench: write analysis: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: close analysis: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote analysis of %d invocations to %s\n",
			rep.Invocations, *analyzePath)
	}
	if *flamePath != "" {
		f, err := os.Create(*flamePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteFolded(f, o.Tracer.Spans()); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trenv-bench: write flame: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: close flame: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote folded stacks to %s\n", *flamePath)
	}
	if *tsPath != "" {
		f, err := os.Create(*tsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		write := o.Recorders.WriteJSON
		if strings.HasSuffix(*tsPath, ".csv") {
			write = o.Recorders.WriteCSV
		}
		if err := write(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trenv-bench: write timeseries: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: close timeseries: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote time series for %d runs to %s\n",
			o.Recorders.Runs(), *tsPath)
	}
	if *alertsPath != "" {
		f, err := os.Create(*alertsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		if err := o.Alerts.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trenv-bench: write alerts: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: close alerts: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote alert states for %d runs to %s\n",
			o.Alerts.Runs(), *alertsPath)
	}
	if *reportPath != "" {
		rep := experiments.BuildReport(ids, o, results, *reportLean)
		if err := rep.WriteFile(*reportPath); err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: write report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trenv-bench: wrote run bundle (%d figures, %d metrics, %d series, %d spans) to %s\n",
			len(rep.Figures), len(rep.Metrics), len(rep.Series), len(rep.Spans), *reportPath)
	}
}
