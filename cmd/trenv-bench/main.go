// Command trenv-bench regenerates the paper's tables and figures on the
// simulated substrate and prints them in paper-style rows.
//
// Usage:
//
//	trenv-bench [-exp table1,fig17,...|all] [-seed N] [-scale F]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (table1..fig26) or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper scale)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	out := flag.String("out", "", "also write the output to this file")
	flag.Parse()

	var tee io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trenv-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tee = io.MultiWriter(os.Stdout, f)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintln(tee, e.ID)
		}
		return
	}
	o := experiments.Options{Seed: *seed, Scale: *scale}
	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		run, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "trenv-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Fprintln(tee, run(o))
	}
}
