package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	trenv "repro"
)

type alertsDoc struct {
	Evals  int64 `json:"evals"`
	Firing int   `json:"firing"`
	Fired  int64 `json:"fired"`
	Rules  []struct {
		Name  string `json:"name"`
		Spec  string `json:"spec"`
		State string `json:"state"`
	} `json:"rules"`
	Incidents []json.RawMessage `json:"incidents"`
	Timeline  []json.RawMessage `json:"timeline"`
}

func TestAlertsEndpointServesEngineSnapshot(t *testing.T) {
	ts := testServer(t)
	deployAndInvoke(t, ts.URL)

	raw := getOK(t, ts.URL+"/alerts")
	var doc alertsDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("alerts not JSON: %v\n%s", err, raw)
	}
	if len(doc.Rules) != len(trenv.DefaultAlertRules()) {
		t.Fatalf("rules = %d, want the default set", len(doc.Rules))
	}
	if doc.Evals == 0 {
		t.Fatal("invoking pumped the recorder but the engine never evaluated")
	}
	for _, r := range doc.Rules {
		if r.Name == "" || r.Spec == "" || r.State == "" {
			t.Fatalf("incomplete rule record: %+v", r)
		}
	}
}

func TestAlertsCustomRulesFlagWiring(t *testing.T) {
	rules, err := loadRules("absence:ghost:no_such_series:1s")
	if err != nil {
		t.Fatal(err)
	}
	s := newServerWith(serverOptions{policy: trenv.TrEnvCXL, seed: 1, rules: rules})
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	deployAndInvoke(t, ts.URL)

	var doc alertsDoc
	if err := json.Unmarshal(getOK(t, ts.URL+"/alerts"), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rules) != 1 || doc.Rules[0].Name != "ghost" {
		t.Fatalf("rules = %+v", doc.Rules)
	}
	// The watched series never exists, so the rule fires and healthz
	// and /metrics surface it.
	if doc.Rules[0].State != "firing" || doc.Firing != 1 {
		t.Fatalf("ghost rule state = %s firing = %d", doc.Rules[0].State, doc.Firing)
	}
	var health map[string]any
	if err := json.Unmarshal(getOK(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health["alerts_firing"].(float64) != 1 {
		t.Fatalf("healthz alerts_firing = %v", health["alerts_firing"])
	}
	metrics := string(getOK(t, ts.URL+"/metrics"))
	if !strings.Contains(metrics, "trenv_alerts_firing 1") {
		t.Fatalf("metrics missing firing gauge:\n%s", metrics)
	}
}

func TestLoadRulesFlagForms(t *testing.T) {
	if rules, err := loadRules("default"); err != nil || len(rules) != len(trenv.DefaultAlertRules()) {
		t.Fatalf("default: %v %d", err, len(rules))
	}
	for _, arg := range []string{"", "none"} {
		if rules, err := loadRules(arg); err != nil || len(rules) != 0 {
			t.Fatalf("%q: %v %d", arg, err, len(rules))
		}
	}
	if _, err := loadRules("threshold:broken"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestAlertsByteIdenticalAcrossSameSeedServers(t *testing.T) {
	a := testServer(t)
	deployAndInvoke(t, a.URL)
	b := testServer(t)
	deployAndInvoke(t, b.URL)

	// With the engine attached by default, every deterministic export —
	// alerts included — must agree across same-seed daemons.
	for _, path := range []string{"/alerts", "/metrics", "/trace", "/analyze", "/report"} {
		if !bytes.Equal(getOK(t, a.URL+path), getOK(t, b.URL+path)) {
			t.Fatalf("%s differs across same-seed servers", path)
		}
	}
}

func TestHealthzReportsAlertsFiring(t *testing.T) {
	ts := testServer(t)
	var health map[string]any
	if err := json.Unmarshal(getOK(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["alerts_firing"]; !ok {
		t.Fatalf("healthz missing alerts_firing: %v", health)
	}
}

// TestEveryRouteRejectsUnsupportedMethods audits the route table from
// the source itself: every method-qualified route in mux() must also
// register a methodNotAllowed fallback, and unsupported methods must
// get the same JSON 405 with an Allow header on every endpoint — the
// newest routes included.
func TestEveryRouteRejectsUnsupportedMethods(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	methodRe := regexp.MustCompile(`mux\.HandleFunc\("(GET|POST) (/[^"]*)"`)
	fallbackRe := regexp.MustCompile(`mux\.HandleFunc\("(/[^"]*)", methodNotAllowed\(`)

	allowed := map[string]map[string]bool{}
	for _, m := range methodRe.FindAllStringSubmatch(string(src), -1) {
		if allowed[m[2]] == nil {
			allowed[m[2]] = map[string]bool{}
		}
		allowed[m[2]][m[1]] = true
	}
	fallbacks := map[string]bool{}
	for _, m := range fallbackRe.FindAllStringSubmatch(string(src), -1) {
		fallbacks[m[1]] = true
	}
	if len(allowed) < 10 {
		t.Fatalf("route audit parsed only %d routes — regexp drifted from mux()", len(allowed))
	}
	paths := make([]string, 0, len(allowed))
	for p := range allowed {
		if !fallbacks[p] {
			t.Errorf("route %s has no methodNotAllowed fallback", p)
		}
		paths = append(paths, p)
	}
	sort.Strings(paths)

	ts := testServer(t)
	for _, path := range paths {
		for _, method := range []string{http.MethodDelete, http.MethodPut, http.MethodGet, http.MethodPost} {
			if allowed[path][method] {
				continue
			}
			req, err := http.NewRequest(method, ts.URL+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s status = %d, want 405", method, path, resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("%s %s content-type = %q, want application/json", method, path, ct)
			}
			allow := resp.Header.Get("Allow")
			if allow == "" {
				t.Fatalf("%s %s missing Allow header", method, path)
			}
			for m := range allowed[path] {
				if !strings.Contains(allow, m) {
					t.Fatalf("%s %s Allow = %q missing %s", method, path, allow, m)
				}
			}
			var out map[string]string
			if err := json.Unmarshal(body, &out); err != nil || out["error"] == "" {
				t.Fatalf("%s %s body not a JSON error: %s", method, path, body)
			}
		}
	}
}
