package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// deployAndInvoke drives a few invocations so metrics and traces have
// content.
func deployAndInvoke(t *testing.T, url string) {
	t.Helper()
	if resp, _ := postJSON(t, url+"/functions", map[string]string{"name": "JS"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, url+"/invoke", map[string]any{"function": "JS", "count": 4, "spacing_ms": 50}); resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke status = %d", resp.StatusCode)
	}
}

func TestMetricsEndpointServesPrometheus(t *testing.T) {
	ts := testServer(t)
	deployAndInvoke(t, ts.URL)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE trenv_e2e_latency_ms summary",
		`trenv_e2e_latency_ms{function="JS",quantile="0.99"}`,
		`trenv_startup_latency_ms{function="_all"`,
		"# TYPE trenv_warm_hits_total counter",
		"# TYPE trenv_cold_starts_total counter",
		"# TYPE trenv_repurposes_total counter",
		"trenv_invocations_total 4",
		"trenv_node_mem_peak_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name{labels} value", optionally
	// followed by an OpenMetrics exemplar ("... # {trace_id=...} v") —
	// a cheap text-format validity check.
	exemplars := 0
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if i := strings.Index(ln, " # "); i >= 0 {
			ex := ln[i+3:]
			if !strings.HasPrefix(ex, `{trace_id="`) || len(strings.Fields(ex)) != 2 {
				t.Fatalf("malformed exemplar on line %q", ln)
			}
			exemplars++
			ln = ln[:i]
		}
		if fields := strings.Fields(ln); len(fields) != 2 {
			t.Fatalf("malformed metrics line %q", ln)
		}
	}
	if exemplars == 0 {
		t.Fatal("no exemplars exported after invocations")
	}
}

func TestTraceEndpointServesChromeJSON(t *testing.T) {
	ts := testServer(t)
	deployAndInvoke(t, ts.URL)

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	roots := 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %q phase = %q, want X", e.Name, e.Ph)
		}
		if e.Name == "invoke/JS" {
			roots++
		}
	}
	if roots != 4 {
		t.Fatalf("got %d invoke roots, want 4", roots)
	}

	// Bad query parameter rejected.
	bad, err := http.Get(ts.URL + "/trace?last=x")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad last status = %d", bad.StatusCode)
	}
}

func TestMethodNotAllowedIsJSON(t *testing.T) {
	ts := testServer(t)
	for path, method := range map[string]string{
		"/metrics":     http.MethodPost,
		"/timeseries":  http.MethodPost,
		"/trace":       http.MethodDelete,
		"/analyze":     http.MethodPost,
		"/flame":       http.MethodPost,
		"/invoke":      http.MethodGet,
		"/stats":       http.MethodPost,
		"/experiments": http.MethodPut,
	} {
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s status = %d, want 405", method, path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s %s content-type = %q, want JSON", method, path, ct)
		}
		if allow := resp.Header.Get("Allow"); allow == "" {
			t.Fatalf("%s %s missing Allow header", method, path)
		}
		var out map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s %s body not JSON: %v", method, path, err)
		}
		resp.Body.Close()
		if out["error"] == "" {
			t.Fatalf("%s %s error body = %v", method, path, out)
		}
	}
}
