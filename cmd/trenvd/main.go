// Command trenvd exposes the simulated TrEnv platform over HTTP: deploy
// Table 4 functions, drive invocation batches, and read metrics. It is a
// control plane for interactive exploration — the simulation advances in
// virtual time whenever a batch is submitted.
//
// Usage:
//
//	trenvd [-addr :8080] [-policy trenv-cxl] [-seed 1] [-node n0]
//	       [-slo-target-ms 0] [-slo-objective 0.99] [-sample-ms 100]
//	       [-prefetch] [-promote-threshold 0] [-pprof] [-rules <spec>]
//	       [-hedge-policy <spec>] [-hedge-delay <dur>] [-shards N]
//	trenvd -version
//
// -node labels every exported series (node="n0") so several trenvd
// instances can be scraped into one fleet view; -slo-target-ms enables
// SLO burn-rate tracking; -sample-ms sets the flight-recorder sampling
// interval in virtual milliseconds; -prefetch enables working-set
// prefetching on TrEnv policies (first run of a function records its
// fault order, later restores replay it as batched remote fetches);
// -promote-threshold additionally promotes runs replayed at least that
// many times into the node's direct-access cache; -pprof additionally
// serves Go's net/http/pprof profiles under /debug/pprof/ (off by
// default — profiling is wall-clock-side only and never perturbs the
// deterministic virtual-time exports); -rules loads alerting rules (a
// compact spec, "@file" to read one clause per line, or "default" for
// the built-in set) evaluated on every flight-recorder sample and
// served on /alerts; -hedge-policy arms a request-hedging policy
// ("delay:<dur>", "p<pct>", "clone:<n>" — README has the grammar) on
// every cluster POST /experiments/run builds, and -hedge-delay is
// shorthand for "delay:<dur>"; -shards sets the worker parallelism for
// sharded-fleet runs under POST /experiments/run — physical parallelism
// only, so every byte the daemon serves (including /report bundles) is
// invariant of it; -version prints the build and exits.
//
// Endpoints:
//
//	GET  /functions            list registered and available functions
//	POST /functions            {"name":"JS"} deploy a Table 4 function
//	POST /invoke               {"function":"JS","count":5,"spacing_ms":100}
//	GET  /stats                aggregate + per-function metrics
//	GET  /metrics              Prometheus text-format metrics
//	GET  /timeseries           flight-recorder series (?format=csv for CSV)
//	GET  /trace?last=N         Chrome trace JSON of the last N invocations
//	                           (?format=jsonl for span JSONL)
//	GET  /analyze              trace analytics: top-k slowest invocations
//	                           with critical paths, per-function phase
//	                           attribution, tail-vs-median diffs, exemplar
//	                           links (?last=N ?top=K)
//	GET  /flame                folded-stack flamegraph of recorded spans
//	                           (?format=folded; flamegraph.pl compatible)
//	GET  /report               schema-stable trenv-report/v1 run bundle
//	                           (identity, metrics, series, spans, trace
//	                           analytics) for cmd/trenv-diff comparison
//	GET  /experiments          list experiment IDs
//	POST /experiments/run      {"id":"fig23","scale":0.2} regenerate one
//	GET  /alerts               alert-engine snapshot: rule states,
//	                           captured incidents with trace links, and
//	                           the virtual-time transition timeline
//	GET  /selfstats            wall-clock engine stats: uptime, events
//	                           executed, events/sec of wall time, heap
//	                           and GC readings, build identity
//	GET  /debug/pprof/         Go runtime profiles (only with -pprof)
//	GET  /healthz              node, circuit-breaker, and pool status
//	POST /chaos                {"spec":"outage:cxl:1s-2s,..."} arm a
//	                           deterministic fault schedule (or pass a
//	                           structured {"scenario":{...}}; 409 if armed)
//	GET  /chaos                armed schedule + injected-fault counts
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// requests for up to -drain-timeout before closing.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	trenv "repro"
)

type server struct {
	mu       sync.Mutex
	platform *trenv.ContainerPlatform
	tracer   *trenv.Tracer
	registry *trenv.MetricsRegistry
	recorder *trenv.FlightRecorder
	recEvery time.Duration
	alertEng *trenv.AlertEngine // evaluated on every flight-recorder sample
	deployed map[string]bool
	now      time.Duration // virtual time high-water mark
	seed     int64
	breaker  *trenv.CircuitBreaker // fed by every terminal outcome
	chaos    *trenv.FaultInjector  // non-nil once POST /chaos armed a schedule
	labels   map[string]string     // node label applied to registered metrics
	started  time.Time             // wall-clock start, denominator for /selfstats rates
	pprof    bool                  // serve /debug/pprof/ when set
	hedge    *trenv.HedgePolicy    // armed on every cluster POST /experiments/run builds
	shards   int                   // worker parallelism for sharded-fleet experiment runs
}

// serverOptions parameterize the control plane beyond policy and seed.
type serverOptions struct {
	policy       trenv.ContainerPolicy
	seed         int64
	node         string        // node label on every series ("" = unlabeled)
	sloTarget    time.Duration // > 0 enables SLO burn-rate tracking
	sloObjective float64
	sampleEvery  time.Duration // flight-recorder interval (<= 0 = default)
	prefetch     bool          // working-set prefetching (TrEnv policies only)
	promoteAfter int           // replay count that promotes a run (0 = never)
	pprof        bool          // serve net/http/pprof under /debug/pprof/
	rules        []trenv.AlertRule
	hedge        *trenv.HedgePolicy // hedge policy for POST /experiments/run clusters
	shards       int                // worker parallelism for sharded-fleet experiment runs
}

// newServer builds the control plane over a fresh simulated platform
// with the built-in alert rules, matching the -rules flag default.
func newServer(policy trenv.ContainerPolicy, seed int64) *server {
	return newServerWith(serverOptions{policy: policy, seed: seed, rules: trenv.DefaultAlertRules()})
}

func newServerWith(o serverOptions) *server {
	cfg := trenv.DefaultContainerConfig(o.policy)
	cfg.Seed = o.seed
	cfg.SLOTarget = o.sloTarget
	cfg.SLOObjective = o.sloObjective
	cfg.Node = o.node
	cfg.Prefetch = o.prefetch
	cfg.PromoteThreshold = o.promoteAfter
	tracer := trenv.NewTracer(0)
	cfg.Tracer = tracer
	eng := trenv.NewEngine(o.seed)
	cfg.Engine = eng
	breaker := trenv.NewCircuitBreaker(trenv.DefaultCircuitBreakerConfig(), eng.Now)
	cfg.OnResult = func(r trenv.InvocationResult) {
		// A fault-tainted outcome (typed error or retried/fallback-served
		// invocation) counts against the node's pool-fetch health.
		breaker.Record(r.FaultTrace == "" && r.Outcome != trenv.OutcomeError)
	}
	pl := trenv.NewContainerPlatform(cfg)
	var labels map[string]string
	if o.node != "" {
		labels = map[string]string{"node": o.node}
	}
	reg := trenv.NewMetricsRegistry()
	pl.RegisterMetricsLabeled(reg, labels)
	reg.GaugeFunc("trenv_breaker_state", "Circuit-breaker position (0 closed, 1 open, 2 half-open).", labels,
		func() float64 { return float64(breaker.State()) })
	reg.CounterFunc("trenv_breaker_opens_total", "Circuit-breaker trips to open.", labels, breaker.Opens)
	trenv.RegisterSchedulerTraceLog(reg, labels, pl.Engine().AttachTraceLog(4096))
	trenv.RegisterTracerDrops(reg, labels, tracer)
	trenv.RegisterBuildInfo(reg, labels)
	recorder := trenv.NewFlightRecorder(reg, 0)
	alerts := trenv.NewAlertEngine(o.rules)
	alerts.RegisterMetrics(reg, labels)
	pl.AttachAlerts(alerts) // wires the tracer and SLO into incident capture
	// The invoke handler pumps the recorder by hand (no RunTrace here),
	// so bind evaluation to the sampler directly.
	alerts.Observe(recorder)
	return &server{
		platform: pl,
		tracer:   tracer,
		registry: reg,
		recorder: recorder,
		recEvery: o.sampleEvery,
		alertEng: alerts,
		deployed: make(map[string]bool),
		seed:     o.seed,
		breaker:  breaker,
		labels:   labels,
		started:  time.Now(),
		pprof:    o.pprof,
		hedge:    o.hedge,
		shards:   o.shards,
	}
}

// mux routes the API. Each route also registers a method-agnostic
// fallback so an unsupported method gets a JSON 405 with an Allow
// header instead of the mux's plain-text default.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /functions", s.listFunctions)
	mux.HandleFunc("POST /functions", s.deployFunction)
	mux.HandleFunc("/functions", methodNotAllowed("GET", "POST"))
	mux.HandleFunc("POST /invoke", s.invoke)
	mux.HandleFunc("/invoke", methodNotAllowed("POST"))
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("/stats", methodNotAllowed("GET"))
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("/metrics", methodNotAllowed("GET"))
	mux.HandleFunc("GET /timeseries", s.timeseries)
	mux.HandleFunc("/timeseries", methodNotAllowed("GET"))
	mux.HandleFunc("GET /trace", s.trace)
	mux.HandleFunc("/trace", methodNotAllowed("GET"))
	mux.HandleFunc("GET /analyze", s.analyze)
	mux.HandleFunc("/analyze", methodNotAllowed("GET"))
	mux.HandleFunc("GET /flame", s.flame)
	mux.HandleFunc("/flame", methodNotAllowed("GET"))
	mux.HandleFunc("GET /report", s.report)
	mux.HandleFunc("/report", methodNotAllowed("GET"))
	mux.HandleFunc("GET /experiments", s.listExperiments)
	mux.HandleFunc("/experiments", methodNotAllowed("GET"))
	mux.HandleFunc("POST /experiments/run", s.runExperiment)
	mux.HandleFunc("/experiments/run", methodNotAllowed("POST"))
	mux.HandleFunc("GET /alerts", s.alerts)
	mux.HandleFunc("/alerts", methodNotAllowed("GET"))
	mux.HandleFunc("GET /selfstats", s.selfstats)
	mux.HandleFunc("/selfstats", methodNotAllowed("GET"))
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("/healthz", methodNotAllowed("GET"))
	mux.HandleFunc("GET /chaos", s.chaosStatus)
	mux.HandleFunc("POST /chaos", s.armChaos)
	mux.HandleFunc("/chaos", methodNotAllowed("GET", "POST"))
	if s.pprof {
		// Wall-clock-side profiling of the server process. Reading a
		// profile never touches the virtual clock or the event order, so
		// deterministic exports stay byte-identical with -pprof on.
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// methodNotAllowed answers any method the route does not support.
func methodNotAllowed(allowed ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{
			"error": fmt.Sprintf("method %s not allowed (allow: %s)", r.Method, strings.Join(allowed, ", ")),
		})
	}
}

// loadRules resolves the -rules flag: the built-in set by default,
// "none" for an empty engine, "@file" for a rule file, anything else
// parsed as a compact spec.
func loadRules(arg string) ([]trenv.AlertRule, error) {
	switch arg {
	case "default":
		return trenv.DefaultAlertRules(), nil
	case "", "none":
		return nil, nil
	}
	return trenv.LoadAlertRules(arg)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	policy := flag.String("policy", string(trenv.TrEnvCXL), "platform policy")
	seed := flag.Int64("seed", 1, "simulation seed")
	node := flag.String("node", "", "node label stamped on every exported series")
	sloTargetMS := flag.Int("slo-target-ms", 0, "per-invocation latency SLO target in ms (0 disables SLO tracking)")
	sloObjective := flag.Float64("slo-objective", 0, "fraction of invocations that must meet the target (default 0.99)")
	sampleMS := flag.Int("sample-ms", 0, "flight-recorder sampling interval in virtual ms (0 = default)")
	prefetch := flag.Bool("prefetch", false, "enable working-set prefetching (TrEnv policies only)")
	promoteAfter := flag.Int("promote-threshold", 0, "replay count that promotes a working set into the direct-access cache (0 = never; needs -prefetch)")
	rulesSpec := flag.String("rules", "default", "alerting rules: a spec string, @file, \"default\" for the built-in set, or \"none\"")
	hedgePolicy := flag.String("hedge-policy", "", "request-hedging policy for POST /experiments/run clusters, e.g. 'delay:50ms', 'p95', 'clone:2'")
	hedgeDelay := flag.Duration("hedge-delay", 0, "shorthand for -hedge-policy delay:<dur>")
	drain := flag.Duration("drain-timeout", 5*time.Second, "bounded drain window for graceful shutdown on SIGINT/SIGTERM")
	shards := flag.Int("shards", 0, "worker parallelism for sharded-fleet runs under POST /experiments/run (0 = sequential; every served byte is invariant of it)")
	pprofOn := flag.Bool("pprof", false, "serve Go net/http/pprof profiles under /debug/pprof/")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("trenvd %s %s %s/%s\n", trenv.Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}

	rules, err := loadRules(*rulesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trenvd:", err)
		os.Exit(2)
	}

	var hedge *trenv.HedgePolicy
	switch {
	case *hedgePolicy != "" && *hedgeDelay != 0:
		fmt.Fprintln(os.Stderr, "trenvd: -hedge-policy and -hedge-delay are mutually exclusive")
		os.Exit(2)
	case *hedgeDelay < 0:
		fmt.Fprintln(os.Stderr, "trenvd: -hedge-delay must be positive")
		os.Exit(2)
	case *hedgeDelay != 0:
		hedge = &trenv.HedgePolicy{Mode: trenv.HedgeDelay, Delay: *hedgeDelay}
	case *hedgePolicy != "":
		hp, err := trenv.ParseHedgePolicy(*hedgePolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trenvd: -hedge-policy:", err)
			os.Exit(2)
		}
		if hp.Enabled() {
			hedge = &hp
		}
	}

	s := newServerWith(serverOptions{
		policy:       trenv.ContainerPolicy(*policy),
		seed:         *seed,
		node:         *node,
		sloTarget:    time.Duration(*sloTargetMS) * time.Millisecond,
		sloObjective: *sloObjective,
		sampleEvery:  time.Duration(*sampleMS) * time.Millisecond,
		prefetch:     *prefetch,
		promoteAfter: *promoteAfter,
		pprof:        *pprofOn,
		rules:        rules,
		hedge:        hedge,
		shards:       *shards,
	})
	srv := &http.Server{Addr: *addr, Handler: s.mux()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("trenvd: policy=%s listening on %s", *policy, *addr)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("trenvd: shutting down, draining in-flight requests for up to %s", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("trenvd: drain window expired: %v (closing)", err)
			srv.Close()
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("trenvd: write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseFormat validates ?format= against a route's choices. An empty
// format selects the first choice; anything else gets the same JSON 400
// on every export route. Returns ok=false after writing the error.
func parseFormat(w http.ResponseWriter, r *http.Request, choices ...string) (string, bool) {
	format := r.URL.Query().Get("format")
	if format == "" {
		return choices[0], true
	}
	for _, c := range choices {
		if format == c {
			return format, true
		}
	}
	httpError(w, http.StatusBadRequest, "bad format=%q (want one of %s)", format, strings.Join(choices, ", "))
	return "", false
}

// parseLast validates ?last= (0 = everything). Returns ok=false after
// writing a JSON 400 for a malformed value.
func parseLast(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.URL.Query().Get("last")
	if q == "" {
		return 0, true
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		httpError(w, http.StatusBadRequest, "bad last=%q (want a non-negative integer)", q)
		return 0, false
	}
	return n, true
}

func (s *server) listFunctions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type fn struct {
		Name     string `json:"name"`
		Lang     string `json:"lang"`
		MemBytes int64  `json:"mem_bytes"`
		Deployed bool   `json:"deployed"`
	}
	var out []fn
	for _, p := range trenv.Functions() {
		out = append(out, fn{Name: p.Name, Lang: p.Lang, MemBytes: p.MemBytes, Deployed: s.deployed[p.Name]})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) deployFunction(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	prof, err := trenv.FunctionByName(req.Name)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deployed[req.Name] {
		httpError(w, http.StatusConflict, "function %q already deployed", req.Name)
		return
	}
	if err := s.platform.Register(prof); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.deployed[req.Name] = true
	writeJSON(w, http.StatusCreated, map[string]string{"deployed": req.Name})
}

func (s *server) invoke(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Function  string `json:"function"`
		Count     int    `json:"count"`
		SpacingMS int    `json:"spacing_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Count <= 0 {
		req.Count = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.deployed[req.Function] {
		httpError(w, http.StatusNotFound, "function %q not deployed", req.Function)
		return
	}
	before := s.platform.Metrics().Fn(req.Function).E2E.N()
	at := s.now
	for i := 0; i < req.Count; i++ {
		s.platform.Invoke(at, req.Function)
		at += time.Duration(req.SpacingMS) * time.Millisecond
	}
	// Sample the flight recorder across the batch; repeated batches
	// resume cleanly because duplicate-instant samples are dropped.
	batchEnd := at
	eng := s.platform.Engine()
	s.recorder.PumpWhile(eng, s.recEvery, func() bool {
		return eng.Now() < batchEnd || s.platform.Active() > 0
	})
	s.platform.Engine().Run()
	s.now = s.platform.Engine().Now()
	m := s.platform.Metrics().Fn(req.Function)
	writeJSON(w, http.StatusOK, map[string]any{
		"completed":    m.E2E.N() - before,
		"virtual_time": s.now.String(),
		"e2e_p50_ms":   m.E2E.Percentile(50),
		"e2e_p99_ms":   m.E2E.Percentile(99),
		"startup_p99":  m.Startup.Percentile(99),
	})
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"metrics":        s.platform.Metrics().Export(),
		"peak_memory":    s.platform.PeakMemory(),
		"virtual_time":   s.now.String(),
		"warm_instances": s.platform.WarmCount(),
	})
}

// metrics serves the registry in Prometheus text format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	var buf bytes.Buffer
	err := s.registry.WritePrometheus(&buf)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("trenvd: write metrics: %v", err)
	}
}

// timeseries serves the flight recorder's sampled series as JSON, or
// CSV with ?format=csv. Same-seed servers driven with identical batches
// produce byte-identical exports.
func (s *server) timeseries(w http.ResponseWriter, r *http.Request) {
	format, ok := parseFormat(w, r, "json", "csv")
	if !ok {
		return
	}
	s.mu.Lock()
	var buf bytes.Buffer
	var err error
	if format == "csv" {
		err = s.recorder.WriteCSV(&buf)
	} else {
		err = s.recorder.WriteJSON(&buf)
	}
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ct := "application/json"
	if format == "csv" {
		ct = "text/csv"
	}
	w.Header().Set("Content-Type", ct)
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("trenvd: write timeseries: %v", err)
	}
}

// trace serves the most recent invocation span trees as Chrome
// trace-event JSON (open in chrome://tracing or Perfetto), or as span
// JSONL with ?format=jsonl.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	format, ok := parseFormat(w, r, "chrome", "jsonl")
	if !ok {
		return
	}
	last, ok := parseLast(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	roots := s.tracer.Last(last)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	var err error
	if format == "jsonl" {
		err = trenv.WriteSpansJSONL(w, roots)
	} else {
		err = trenv.WriteChromeTrace(w, roots)
	}
	if err != nil {
		log.Printf("trenvd: write trace: %v", err)
	}
}

// analyze serves the trace-analytics report: top-k slowest invocations
// with critical paths, per-function phase attribution at P50/P99/P999,
// tail-vs-median span diffs, and exemplar links into /metrics. Reports
// from same-seed servers driven with identical batches are
// byte-identical.
func (s *server) analyze(w http.ResponseWriter, r *http.Request) {
	if _, ok := parseFormat(w, r, "json"); !ok {
		return
	}
	last, ok := parseLast(w, r)
	if !ok {
		return
	}
	top := 0
	if q := r.URL.Query().Get("top"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad top=%q (want a positive integer)", q)
			return
		}
		top = n
	}
	s.mu.Lock()
	rep := trenv.AnalyzeSpans(s.tracer.Last(last), top)
	rep.Exemplars = s.platform.Metrics().ExemplarLinks()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, rep)
}

// flame serves recorded spans as folded flamegraph stacks
// (flamegraph.pl / speedscope compatible).
func (s *server) flame(w http.ResponseWriter, r *http.Request) {
	if _, ok := parseFormat(w, r, "folded"); !ok {
		return
	}
	last, ok := parseLast(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	roots := s.tracer.Last(last)
	s.mu.Unlock()
	var buf bytes.Buffer
	if err := trenv.WriteFoldedStacks(&buf, roots); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("trenvd: write flame: %v", err)
	}
}

// report serves the schema-stable trenv-report/v1 run bundle over the
// server's full observable state: identity (seed, policy, node), the
// registry's end-state metrics, the flight recorder's sampled series,
// trace analytics, and the flattened virtual-time-ordered span list.
// Same-seed servers driven with identical batches serve byte-identical
// bundles, which is what lets cmd/trenv-diff compare two daemons.
func (s *server) report(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rep := trenv.NewRunReport("trenvd", s.seed, 1)
	rep.SetFlag("policy", string(s.platform.Policy()))
	if node := s.platform.NodeName(); node != "" {
		rep.SetFlag("node", node)
	}
	rep.AddMetrics("", s.registry)
	rep.AddRecorder("", s.recorder, 0)
	rep.AddAlerts("", s.alertEng)
	roots := s.tracer.Spans()
	rep.AddSpans(roots)
	rep.Analyze(roots, 0)
	var buf bytes.Buffer
	err := rep.WriteJSON(&buf)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("trenvd: write report: %v", err)
	}
}

// alerts serves the alert-engine snapshot: per-rule state and spec,
// captured incidents with their trace links, and the virtual-time
// transition timeline. Deterministic for a given seed and rule set.
func (s *server) alerts(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	var buf bytes.Buffer
	err := s.alertEng.WriteJSON(&buf)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("trenvd: write alerts: %v", err)
	}
}

// selfstats reports the engine's wall-clock performance counters:
// uptime, events executed and their rate over wall time, invocation
// totals, heap/GC readings, and build identity. Everything here is
// wall-clock-side — the virtual clock, event order, and every
// deterministic export are unaffected by serving it.
func (s *server) selfstats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	events := s.platform.Engine().Events()
	invocations := s.platform.InvocationsStarted()
	virtual := s.now
	spans := s.tracer.Len()
	spansDropped := s.tracer.Dropped()
	s.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	uptime := time.Since(s.started)
	writeJSON(w, http.StatusOK, map[string]any{
		"go_version":     runtime.Version(),
		"version":        trenv.Version(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"goroutines":     runtime.NumGoroutine(),
		"uptime_seconds": uptime.Seconds(),
		"pprof_enabled":  s.pprof,
		"engine": map[string]any{
			"events":              events,
			"events_per_wall_sec": trenv.WallRate(float64(events), uptime),
			"virtual_time":        virtual.String(),
		},
		"invocations":     invocations,
		"spans_retained":  spans,
		"spans_dropped":   spansDropped,
		"heap_alloc":      ms.HeapAlloc,
		"total_alloc":     ms.TotalAlloc,
		"mallocs":         ms.Mallocs,
		"num_gc":          ms.NumGC,
		"gc_pause_ns_sum": ms.PauseTotalNs,
	})
}

// healthz reports node, breaker, and pool status. "ok" degrades to
// "degraded" when the breaker is not closed and to "crashed" after a
// chaos-injected node crash.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type poolStatus struct {
		Kind      string `json:"kind"`
		UsedBytes int64  `json:"used_bytes"`
		Available bool   `json:"available"`
		Error     string `json:"error,omitempty"`
	}
	var pools []poolStatus
	for _, p := range s.platform.Pools() {
		ps := poolStatus{Kind: p.Kind().String(), UsedBytes: p.Tracker().Used(), Available: true}
		if err := p.Unavailable(); err != nil {
			ps.Available = false
			ps.Error = err.Error()
		}
		pools = append(pools, ps)
	}
	status := "ok"
	switch {
	case s.platform.Crashed():
		status = "crashed"
	case !s.breaker.Allow():
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"node":           s.platform.NodeName(),
		"virtual_time":   s.now.String(),
		"active":         s.platform.Active(),
		"warm_instances": s.platform.WarmCount(),
		"breaker": map[string]any{
			"state": s.breaker.State().String(),
			"opens": s.breaker.Opens(),
		},
		"pools":         pools,
		"chaos_armed":   s.chaos != nil,
		"alerts_firing": s.alertEng.Firing(),
	})
}

// armChaos compiles and arms a fault schedule against the platform's
// virtual clock. Accepts either a compact spec string or a structured
// scenario; one schedule per server lifetime (re-arming returns 409).
func (s *server) armChaos(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Spec     string               `json:"spec"`
		Seed     int64                `json:"seed"`
		Scenario *trenv.FaultScenario `json:"scenario"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var sc trenv.FaultScenario
	switch {
	case req.Spec != "" && req.Scenario != nil:
		httpError(w, http.StatusBadRequest, "give either spec or scenario, not both")
		return
	case req.Spec != "":
		var err error
		sc, err = trenv.ParseChaosSpec(req.Spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad spec: %v", err)
			return
		}
	case req.Scenario != nil:
		sc = *req.Scenario
	}
	if sc.Empty() {
		httpError(w, http.StatusBadRequest, "empty fault scenario")
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.seed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.chaos != nil {
		httpError(w, http.StatusConflict, "a fault schedule is already armed")
		return
	}
	inj := trenv.NewFaultInjector(s.platform.Engine(), seed, sc)
	inj.SetTracer(s.tracer)
	s.platform.AttachFaults(inj)
	inj.OnNodeCrash(func(name string) {
		if name == s.platform.NodeName() {
			s.platform.Crash()
		}
	})
	inj.Arm()
	inj.RegisterMetrics(s.registry, s.labels)
	s.chaos = inj
	writeJSON(w, http.StatusCreated, inj.Status())
}

// chaosStatus reports the armed schedule and injected-fault counts.
func (s *server) chaosStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.chaos == nil {
		writeJSON(w, http.StatusOK, trenv.ChaosStatus{})
		return
	}
	writeJSON(w, http.StatusOK, s.chaos.Status())
}

func (s *server) listExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, trenv.ExperimentIDs())
}

func (s *server) runExperiment(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID    string  `json:"id"`
		Seed  int64   `json:"seed"`
		Scale float64 `json:"scale"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Scale <= 0 {
		req.Scale = 0.2
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	res, ok := trenv.RunExperiment(req.ID, trenv.ExperimentOptions{Seed: req.Seed, Scale: req.Scale, Hedge: s.hedge, Shards: s.shards})
	if !ok {
		httpError(w, http.StatusNotFound, "unknown experiment %q", req.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": res.ID, "title": res.Title, "lines": res.Lines,
	})
}
