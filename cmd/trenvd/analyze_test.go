package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// getOK fetches url and returns the response body, failing on a
// non-200 status.
func getOK(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status = %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func TestAnalyzeEndpointServesReport(t *testing.T) {
	ts := testServer(t)
	deployAndInvoke(t, ts.URL)

	var rep struct {
		Invocations int `json:"invocations"`
		Errors      int `json:"errors"`
		Slowest     []struct {
			TraceID      string `json:"trace_id"`
			Function     string `json:"function"`
			CriticalPath []struct {
				Name   string  `json:"name"`
				SelfUs float64 `json:"self_us"`
			} `json:"critical_path"`
		} `json:"slowest"`
		Attribution []struct {
			Function string `json:"function"`
			Phases   []struct {
				Phase string  `json:"phase"`
				P99Us float64 `json:"p99_us"`
			} `json:"phases"`
		} `json:"attribution"`
		Exemplars []struct {
			Series  string `json:"series"`
			TraceID string `json:"trace_id"`
		} `json:"exemplars"`
	}
	if err := json.Unmarshal(getOK(t, ts.URL+"/analyze"), &rep); err != nil {
		t.Fatalf("invalid analyze JSON: %v", err)
	}
	if rep.Invocations != 4 || rep.Errors != 0 {
		t.Fatalf("invocations=%d errors=%d, want 4/0", rep.Invocations, rep.Errors)
	}
	if len(rep.Slowest) != 4 {
		t.Fatalf("slowest has %d entries, want 4", len(rep.Slowest))
	}
	for _, s := range rep.Slowest {
		if s.TraceID == "" || s.Function != "JS" || len(s.CriticalPath) == 0 {
			t.Fatalf("bad slowest entry %+v", s)
		}
		if s.CriticalPath[0].Name != "invoke/JS" {
			t.Fatalf("critical path starts at %q, want invoke/JS", s.CriticalPath[0].Name)
		}
	}
	if len(rep.Attribution) != 1 || rep.Attribution[0].Function != "JS" || len(rep.Attribution[0].Phases) == 0 {
		t.Fatalf("bad attribution %+v", rep.Attribution)
	}
	if len(rep.Exemplars) == 0 {
		t.Fatal("report carries no exemplar links")
	}
	for _, ex := range rep.Exemplars {
		if ex.TraceID == "" || !strings.HasPrefix(ex.Series, "trenv_e2e_latency_ms{") {
			t.Fatalf("bad exemplar link %+v", ex)
		}
	}

	// ?top bounds the slowest table.
	if err := json.Unmarshal(getOK(t, ts.URL+"/analyze?top=1"), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Slowest) != 1 {
		t.Fatalf("top=1 returned %d slowest entries", len(rep.Slowest))
	}
}

func TestAnalyzeReportByteIdenticalAcrossSameSeedServers(t *testing.T) {
	a := testServer(t)
	deployAndInvoke(t, a.URL)
	b := testServer(t)
	deployAndInvoke(t, b.URL)

	repA := getOK(t, a.URL+"/analyze")
	repB := getOK(t, b.URL+"/analyze")
	if string(repA) != string(repB) {
		t.Fatalf("analyze reports differ across same-seed servers:\n%s\n---\n%s", repA, repB)
	}
	flameA := getOK(t, a.URL+"/flame?format=folded")
	flameB := getOK(t, b.URL+"/flame?format=folded")
	if string(flameA) != string(flameB) {
		t.Fatalf("flamegraphs differ across same-seed servers:\n%s\n---\n%s", flameA, flameB)
	}
}

func TestFlameEndpointServesFoldedStacks(t *testing.T) {
	ts := testServer(t)
	deployAndInvoke(t, ts.URL)

	out := string(getOK(t, ts.URL+"/flame"))
	if out == "" {
		t.Fatal("empty flamegraph")
	}
	sawExec := false
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		fields := strings.Fields(ln)
		if len(fields) != 2 {
			t.Fatalf("malformed folded line %q", ln)
		}
		if strings.HasPrefix(fields[0], "invoke/JS;") && strings.HasSuffix(fields[0], ";exec") {
			sawExec = true
		}
	}
	if !sawExec {
		t.Fatalf("no invoke/JS;...;exec stack in flamegraph:\n%s", out)
	}
}

// TestUnknownFormatIsConsistentJSON400 checks every export route
// rejects an unknown ?format= with the same JSON error shape.
func TestUnknownFormatIsConsistentJSON400(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/timeseries", "/trace", "/flame", "/analyze"} {
		resp, err := http.Get(ts.URL + path + "?format=bogus")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status = %d, want 400", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s content-type = %q, want JSON", path, ct)
		}
		var out map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s body not JSON: %v", path, err)
		}
		resp.Body.Close()
		if !strings.Contains(out["error"], `bad format="bogus"`) {
			t.Fatalf("%s error = %q, want bad format mention", path, out["error"])
		}
	}
}
