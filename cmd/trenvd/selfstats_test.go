package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	trenv "repro"
)

func TestSelfStatsEndpoint(t *testing.T) {
	ts := testServer(t)

	postJSON(t, ts.URL+"/functions", map[string]string{"name": "JS"})
	postJSON(t, ts.URL+"/invoke", map[string]any{"function": "JS", "count": 3, "spacing_ms": 50})

	code, body := getBody(t, ts.URL+"/selfstats")
	if code != http.StatusOK {
		t.Fatalf("selfstats status = %d", code)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode selfstats: %v", err)
	}
	eng, ok := out["engine"].(map[string]any)
	if !ok {
		t.Fatalf("no engine block in %v", out)
	}
	if eng["events"].(float64) <= 0 {
		t.Fatalf("engine executed no events: %v", eng)
	}
	if out["invocations"].(float64) != 3 {
		t.Fatalf("invocations = %v, want 3", out["invocations"])
	}
	if out["uptime_seconds"].(float64) <= 0 {
		t.Fatalf("uptime not measured: %v", out)
	}
	if out["heap_alloc"].(float64) <= 0 || out["mallocs"].(float64) <= 0 {
		t.Fatalf("memstats not captured: %v", out)
	}
	if out["go_version"].(string) == "" {
		t.Fatalf("go_version missing: %v", out)
	}
	if out["pprof_enabled"].(bool) {
		t.Fatalf("pprof reported enabled on a default server")
	}

	// Wrong method gets the shared JSON 405.
	resp, err := http.Post(ts.URL+"/selfstats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /selfstats status = %d, want 405", resp.StatusCode)
	}
}

func TestBuildInfoGaugeOnMetrics(t *testing.T) {
	ts := httptest.NewServer(newServerWith(serverOptions{
		policy: trenv.TrEnvCXL, seed: 1, node: "n7",
	}).mux())
	defer ts.Close()

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	text := body
	if !strings.Contains(text, "trenv_build_info{") {
		t.Fatalf("trenv_build_info missing from /metrics:\n%s", text)
	}
	line := ""
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "trenv_build_info{") {
			line = l
			break
		}
	}
	for _, want := range []string{`go_version="go`, `version="`, `node="n7"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("build info line missing %s: %s", want, line)
		}
	}
	if !strings.HasSuffix(line, " 1") {
		t.Fatalf("build info gauge should be constant 1: %s", line)
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	off := httptest.NewServer(newServerWith(serverOptions{policy: trenv.TrEnvCXL, seed: 1}).mux())
	defer off.Close()
	code, _ := getBody(t, off.URL+"/debug/pprof/")
	if code != http.StatusNotFound {
		t.Fatalf("pprof served without -pprof: status %d", code)
	}

	on := httptest.NewServer(newServerWith(serverOptions{policy: trenv.TrEnvCXL, seed: 1, pprof: true}).mux())
	defer on.Close()
	code, body := getBody(t, on.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("pprof index status = %d with -pprof", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index unexpected body:\n%.200s", body)
	}
	code, body = getBody(t, on.URL+"/debug/pprof/heap?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "heap profile") {
		t.Fatalf("heap profile status = %d body:\n%.120s", code, body)
	}
}

// TestDeterministicExportsIsolatedFromSelfObservability is the
// determinism-isolation contract at the daemon level: two same-seed
// servers driven with identical batches must serve byte-identical
// /metrics, /trace, and /analyze even when one of them additionally
// serves pprof profiles and /selfstats between batches.
func TestDeterministicExportsIsolatedFromSelfObservability(t *testing.T) {
	drive := func(selfObserve bool) (metrics, trace, analyze string) {
		srv := httptest.NewServer(newServerWith(serverOptions{
			policy: trenv.TrEnvCXL, seed: 42, pprof: selfObserve,
		}).mux())
		defer srv.Close()
		postJSON(t, srv.URL+"/functions", map[string]string{"name": "JS"})
		postJSON(t, srv.URL+"/functions", map[string]string{"name": "PF"})
		postJSON(t, srv.URL+"/invoke", map[string]any{"function": "JS", "count": 4, "spacing_ms": 120})
		if selfObserve {
			// Hit the wall-clock-side surfaces mid-run: they must not
			// leak into anything deterministic.
			if code, _ := getBody(t, srv.URL+"/selfstats"); code != http.StatusOK {
				t.Fatalf("selfstats status = %d", code)
			}
			if code, _ := getBody(t, srv.URL+"/debug/pprof/heap?debug=1"); code != http.StatusOK {
				t.Fatalf("heap profile status = %d", code)
			}
		}
		postJSON(t, srv.URL+"/invoke", map[string]any{"function": "PF", "count": 3, "spacing_ms": 80})

		for _, probe := range []struct {
			path string
			dst  *string
		}{
			{"/metrics", &metrics},
			{"/trace?format=jsonl", &trace},
			{"/analyze", &analyze},
		} {
			code, body := getBody(t, srv.URL+probe.path)
			if code != http.StatusOK {
				t.Fatalf("%s status = %d", probe.path, code)
			}
			*probe.dst = body
		}
		return metrics, trace, analyze
	}

	m1, t1, a1 := drive(false)
	m2, t2, a2 := drive(true)
	if len(m1) == 0 || len(t1) == 0 || len(a1) == 0 {
		t.Fatal("empty export")
	}
	if m1 != m2 {
		t.Errorf("/metrics diverged with self-observability on (%d vs %d bytes)", len(m1), len(m2))
	}
	if t1 != t2 {
		t.Errorf("/trace diverged with self-observability on (%d vs %d bytes)", len(t1), len(t2))
	}
	if a1 != a2 {
		t.Errorf("/analyze diverged with self-observability on (%d vs %d bytes)", len(a1), len(a2))
	}
}
