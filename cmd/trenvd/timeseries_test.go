package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	trenv "repro"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestTraceRejectsNegativeLast(t *testing.T) {
	ts := testServer(t)
	status, body := getBody(t, ts.URL+"/trace?last=-1")
	if status != http.StatusBadRequest {
		t.Fatalf("last=-1 status = %d, want 400", status)
	}
	var out map[string]string
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("error body not JSON: %v", err)
	}
	if out["error"] == "" {
		t.Fatalf("error body = %q", body)
	}
}

func TestTimeseriesEndpointServesJSONAndCSV(t *testing.T) {
	ts := testServer(t)
	deployAndInvoke(t, ts.URL)

	status, body := getBody(t, ts.URL+"/timeseries")
	if status != http.StatusOK {
		t.Fatalf("timeseries status = %d", status)
	}
	var doc struct {
		Samples int `json:"samples"`
		Series  []struct {
			Name   string `json:"name"`
			Points []struct {
				TMS float64 `json:"t_ms"`
				V   float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid timeseries JSON: %v", err)
	}
	if doc.Samples == 0 || len(doc.Series) == 0 {
		t.Fatalf("empty timeseries: samples=%d series=%d", doc.Samples, len(doc.Series))
	}
	found := false
	for _, s := range doc.Series {
		if s.Name == "trenv_invocations_total" {
			found = true
			if n := len(s.Points); n == 0 {
				t.Fatal("invocation series has no points")
			} else if got := s.Points[n-1].V; got != 4 {
				t.Fatalf("final sampled invocations = %v, want 4", got)
			}
		}
	}
	if !found {
		t.Fatal("no trenv_invocations_total series")
	}

	resp, err := http.Get(ts.URL + "/timeseries?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("csv content-type = %q", ct)
	}
	csvBody, _ := io.ReadAll(resp.Body)
	if !strings.HasPrefix(string(csvBody), "series,labels,t_ms,value,rate_per_s") {
		t.Fatalf("csv header missing:\n%.120s", csvBody)
	}

	if status, _ := getBody(t, ts.URL+"/timeseries?format=xml"); status != http.StatusBadRequest {
		t.Fatalf("format=xml status = %d, want 400", status)
	}
}

func TestTimeseriesDeterministicAcrossServers(t *testing.T) {
	run := func() string {
		ts := httptest.NewServer(newServer(trenv.TrEnvCXL, 7).mux())
		defer ts.Close()
		deployAndInvoke(t, ts.URL)
		status, body := getBody(t, ts.URL+"/timeseries")
		if status != http.StatusOK {
			t.Fatalf("timeseries status = %d", status)
		}
		return body
	}
	if run() != run() {
		t.Fatal("same-seed /timeseries exports differ")
	}
}

func TestNodeLabelAndSLOMetrics(t *testing.T) {
	ts := httptest.NewServer(newServerWith(serverOptions{
		policy:    trenv.TrEnvCXL,
		seed:      1,
		node:      "n7",
		sloTarget: time.Millisecond, // every start breaches: burn rate visible
	}).mux())
	defer ts.Close()
	deployAndInvoke(t, ts.URL)

	status, out := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	for _, want := range []string{
		`trenv_invocations_total{node="n7"} 4`,
		`trenv_node_mem_peak_bytes{node="n7"}`,
		`trenv_e2e_latency_ms_count{function="JS",node="n7"}`,
		`trenv_sim_trace_dropped_total{node="n7"}`,
		`trenv_spans_dropped_total{node="n7"}`,
		`trenv_slo_target_ms{function="JS",node="n7"} 1`,
		`trenv_slo_breaches_total{function="JS",node="n7"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
