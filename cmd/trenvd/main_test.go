package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	trenv "repro"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(trenv.TrEnvCXL, 1).mux())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

func TestDeployAndInvokeFlow(t *testing.T) {
	ts := testServer(t)

	resp, _ := postJSON(t, ts.URL+"/functions", map[string]string{"name": "JS"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
	// Duplicate deploy conflicts.
	resp, _ = postJSON(t, ts.URL+"/functions", map[string]string{"name": "JS"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate deploy status = %d", resp.StatusCode)
	}
	// Unknown function 404s.
	resp, _ = postJSON(t, ts.URL+"/functions", map[string]string{"name": "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown deploy status = %d", resp.StatusCode)
	}

	resp, out := postJSON(t, ts.URL+"/invoke", map[string]any{"function": "JS", "count": 3, "spacing_ms": 100})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke status = %d", resp.StatusCode)
	}
	if out["completed"].(float64) != 3 {
		t.Fatalf("completed = %v", out["completed"])
	}
	if out["e2e_p99_ms"].(float64) <= 0 {
		t.Fatal("no latency reported")
	}

	// Undeployed function rejected.
	resp, _ = postJSON(t, ts.URL+"/invoke", map[string]any{"function": "CR"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("undeployed invoke status = %d", resp.StatusCode)
	}

	// Stats reflect the batch.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	metrics := stats["metrics"].(map[string]any)
	if metrics["invocations"].(float64) != 3 {
		t.Fatalf("stats invocations = %v", metrics["invocations"])
	}
	if metrics["errors"].(float64) != 0 {
		t.Fatalf("stats errors = %v", metrics["errors"])
	}
	perFn := metrics["per_function"].(map[string]any)
	if _, ok := perFn["JS"]; !ok {
		t.Fatal("per-function stats missing JS")
	}
}

func TestFunctionsListing(t *testing.T) {
	ts := testServer(t)
	postJSON(t, ts.URL+"/functions", map[string]string{"name": "DH"})
	resp, err := http.Get(ts.URL + "/functions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fns []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&fns); err != nil {
		t.Fatal(err)
	}
	if len(fns) != 10 {
		t.Fatalf("functions = %d", len(fns))
	}
	deployed := 0
	for _, fn := range fns {
		if fn["deployed"].(bool) {
			deployed++
		}
	}
	if deployed != 1 {
		t.Fatalf("deployed = %d", deployed)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ids []string
	if err := json.NewDecoder(resp.Body).Decode(&ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 23 {
		t.Fatalf("experiments = %d", len(ids))
	}

	rresp, out := postJSON(t, ts.URL+"/experiments/run", map[string]any{"id": "table3", "scale": 0.1})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", rresp.StatusCode)
	}
	if out["id"] != "table3" || len(out["lines"].([]any)) == 0 {
		t.Fatalf("run output = %v", out)
	}
	rresp, _ = postJSON(t, ts.URL+"/experiments/run", map[string]any{"id": "nope"})
	if rresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment status = %d", rresp.StatusCode)
	}
}

func TestBadJSONRejected(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/invoke", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status = %d", resp.StatusCode)
	}
}
