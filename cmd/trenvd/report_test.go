package main

import (
	"bytes"
	"testing"

	trenv "repro"
	"repro/internal/report"
)

func TestReportEndpointServesBundle(t *testing.T) {
	ts := testServer(t)
	deployAndInvoke(t, ts.URL)

	rep, err := report.Decode(bytes.NewReader(getOK(t, ts.URL+"/report")))
	if err != nil {
		t.Fatalf("invalid bundle: %v", err)
	}
	if rep.Source != "trenvd" || rep.Seed != 1 {
		t.Fatalf("identity = %q/%d, want trenvd/1", rep.Source, rep.Seed)
	}
	if rep.Flags["policy"] != string(trenv.TrEnvCXL) {
		t.Fatalf("flags = %v", rep.Flags)
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("bundle carries no metrics")
	}
	if len(rep.Spans) == 0 {
		t.Fatal("bundle carries no spans")
	}
	if rep.Analysis == nil || rep.Analysis.Invocations != 4 {
		t.Fatalf("analysis = %+v, want 4 invocations", rep.Analysis)
	}
}

func TestReportByteIdenticalAcrossSameSeedServers(t *testing.T) {
	a := testServer(t)
	deployAndInvoke(t, a.URL)
	b := testServer(t)
	deployAndInvoke(t, b.URL)

	rawA := getOK(t, a.URL+"/report")
	rawB := getOK(t, b.URL+"/report")
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("report bundles differ across same-seed servers")
	}

	// The diff engine agrees: zero findings between the two daemons.
	repA, err := report.Decode(bytes.NewReader(rawA))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := report.Decode(bytes.NewReader(rawB))
	if err != nil {
		t.Fatal(err)
	}
	res, err := trenv.CompareRunReports(repA, repB, trenv.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 || res.Regressed() {
		t.Fatalf("same-seed daemons diff dirty: %+v", res.Findings)
	}
}
