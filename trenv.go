// Package trenv is a reproduction of "TrEnv: Transparently Share
// Serverless Execution Environments Across Different Functions and
// Nodes" (SOSP 2024) as a self-contained, deterministic simulation in
// pure Go.
//
// TrEnv attacks the two costs a serverless platform pays for every
// invocation — building an isolated sandbox and restoring the function's
// memory state — by (1) cleansing finished sandboxes into a universal,
// function-type-agnostic pool and *repurposing* them for whatever
// function is pending, and (2) replacing memory restoration with an
// mm-template: an in-kernel, process-independent memory descriptor whose
// page tables point into deduplicated images on shared CXL or RDMA
// memory pools, attached to a new process by copying only metadata.
//
// This package is the public facade over the full reproduction:
//
//   - NewContainerPlatform runs the container-based evaluation (faasd /
//     CRIU / REAP+ / FaaSnap+ / TrEnv-CXL / TrEnv-RDMA plus the Figure 21
//     ablations) on Table 4's ten functions under the W1/W2/industrial
//     workloads.
//   - NewAgentPlatform runs the VM-based LLM-agent evaluation (E2B, E2B+,
//     vanilla Cloud Hypervisor, TrEnv, TrEnv-S with browser sharing) on
//     Table 2's six agents.
//   - NewCluster shares one CXL pool — consolidated images, templates and
//     all — across several nodes (the rack-level deployment of §8.2).
//   - Experiments regenerates every table and figure of the paper's
//     evaluation; see also cmd/trenv-bench.
//
// Everything runs on a discrete-event engine over virtual time: a given
// seed reproduces results bit-for-bit, and thirty simulated minutes cost
// well under a second of wall clock. See DESIGN.md for the substitution
// map (what the paper ran on hardware vs. what is modeled here) and
// EXPERIMENTS.md for paper-vs-measured numbers.
package trenv

import (
	"io"
	"math/rand"
	"time"

	"repro/internal/agent"
	"repro/internal/alert"
	"repro/internal/cluster"
	"repro/internal/diff"
	"repro/internal/experiments"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/obs"
	"repro/internal/pagetable"
	"repro/internal/prefetch"
	"repro/internal/report"
	"repro/internal/selfbench"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/vm"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Container-based platform (§4-§5, evaluated in §9.2-§9.5).

// ContainerPolicy selects the container platform's start strategy.
type ContainerPolicy = faas.Policy

// Container policies.
const (
	// Faasd is the plain cold-start baseline.
	Faasd ContainerPolicy = faas.PolicyFaasd
	// CRIU restores from snapshots with a full memory copy.
	CRIU ContainerPolicy = faas.PolicyCRIU
	// REAPPlus is REAP lazy restore with a recycled-netns pool.
	REAPPlus ContainerPolicy = faas.PolicyREAPPlus
	// FaaSnapPlus is FaaSnap async prefetch with a recycled-netns pool.
	FaaSnapPlus ContainerPolicy = faas.PolicyFaaSnapPlus
	// TrEnvCXL is repurposable sandboxes + mm-templates on a CXL pool.
	TrEnvCXL ContainerPolicy = faas.PolicyTrEnvCXL
	// TrEnvRDMA is repurposable sandboxes + mm-templates on an RDMA pool.
	TrEnvRDMA ContainerPolicy = faas.PolicyTrEnvRDMA
	// AblationReconfig enables sandbox repurposing only (Figure 21).
	AblationReconfig ContainerPolicy = faas.PolicyReconfig
	// AblationCgroup adds CLONE_INTO_CGROUP on top of repurposing.
	AblationCgroup ContainerPolicy = faas.PolicyCgroup
)

// ContainerConfig parameterizes a container platform.
type ContainerConfig = faas.Config

// ContainerPlatform is a single simulated node running one policy.
type ContainerPlatform = faas.Platform

// DefaultContainerConfig returns the testbed-like configuration.
func DefaultContainerConfig(policy ContainerPolicy) ContainerConfig {
	return faas.DefaultConfig(policy)
}

// NewContainerPlatform builds a container platform.
func NewContainerPlatform(cfg ContainerConfig) *ContainerPlatform {
	return faas.New(cfg)
}

// ---------------------------------------------------------------------
// VM-based agent platform (§6, evaluated in §9.6).

// AgentPolicy selects the agent platform variant.
type AgentPolicy = vm.Policy

// Agent platform policies.
const (
	// E2B is the Firecracker-style code-interpreter baseline.
	E2B AgentPolicy = vm.PolicyE2B
	// E2BPlus adds RunD's rootfs mapping to E2B.
	E2BPlus AgentPolicy = vm.PolicyE2BPlus
	// VanillaCH restores VMs with a full guest-memory copy.
	VanillaCH AgentPolicy = vm.PolicyVanillaCH
	// TrEnvVM uses repurposable sandboxes + mm-template VM restore +
	// virtio-pmem union storage.
	TrEnvVM AgentPolicy = vm.PolicyTrEnv
	// TrEnvVMShared additionally shares browser instances (§6.2).
	TrEnvVMShared AgentPolicy = vm.PolicyTrEnvS
)

// AgentConfig parameterizes an agent platform.
type AgentConfig = vm.Config

// AgentPlatform runs agents in microVMs under one policy.
type AgentPlatform = vm.Platform

// DefaultAgentConfig returns the §9.6 testbed shape.
func DefaultAgentConfig(policy AgentPolicy) AgentConfig {
	return vm.DefaultConfig(policy)
}

// NewAgentPlatform builds an agent platform.
func NewAgentPlatform(cfg AgentConfig) (*AgentPlatform, error) {
	return vm.New(cfg)
}

// ---------------------------------------------------------------------
// Rack-level clusters (§8.2).

// Cluster is a rack of container nodes sharing one CXL pool.
type Cluster = cluster.Cluster

// NewCluster builds an n-node rack; cfg must use TrEnvCXL.
func NewCluster(n int, cfg ContainerConfig) (*Cluster, error) {
	return cluster.New(n, cfg)
}

// MultiRack blends CXL (intra-rack) and RDMA (inter-rack) across racks
// (§8.2): each function's image lives once in its home rack's CXL pool
// and is reachable cluster-wide over the fabric.
type MultiRack = cluster.MultiRack

// NewMultiRack builds a racks x nodesPerRack cluster; cfg must use
// TrEnvCXL.
func NewMultiRack(racks, nodesPerRack int, cfg ContainerConfig) (*MultiRack, error) {
	return cluster.NewMultiRack(racks, nodesPerRack, cfg)
}

// HedgePolicy configures request hedging / speculative cloning on a
// Cluster or MultiRack dispatcher (SetHedgePolicy).
type HedgePolicy = cluster.HedgePolicy

// HedgeMode selects how a hedge policy triggers extra attempts.
type HedgeMode = cluster.HedgeMode

// Hedge trigger modes: off, fixed delay, observed-percentile delay, or
// eager cloning at dispatch time.
const (
	HedgeOff        = cluster.HedgeOff
	HedgeDelay      = cluster.HedgeDelay
	HedgePercentile = cluster.HedgePercentile
	HedgeClone      = cluster.HedgeClone
)

// ParseHedgePolicy parses the hedge-policy grammar shared by
// trenv-bench -hedge and trenvd -hedge-policy: "off", "delay:<dur>",
// "p<pct>", or "clone:<n>", with optional "min=", "fallback=",
// "samples=", and "deadline=" modifiers.
func ParseHedgePolicy(spec string) (HedgePolicy, error) {
	return cluster.ParseHedgePolicy(spec)
}

// Invocation outcomes surfaced by the hedging dispatcher, re-exported
// for result-hook consumers: losing attempts are cancelled, deadlines
// produce deadline-exceeded, and invocations that outlive their crash
// re-dispatch budget settle as redispatch-exhausted.
const (
	OutcomeCancelled           = faas.OutcomeCancelled
	OutcomeDeadlineExceeded    = faas.OutcomeDeadline
	OutcomeRedispatchExhausted = faas.OutcomeRedispatchExhausted
)

// ---------------------------------------------------------------------
// Workloads.

// FunctionProfile describes one serverless function (Table 4).
type FunctionProfile = workload.FunctionProfile

// Functions returns the ten evaluated functions of Table 4.
func Functions() []FunctionProfile { return workload.Table4() }

// FunctionByName looks a Table 4 function up by name.
func FunctionByName(name string) (FunctionProfile, error) {
	return workload.ProfileByName(name)
}

// AgentProfile describes one LLM agent (Table 2).
type AgentProfile = agent.Profile

// Agents returns the six evaluated agents of Table 2.
func Agents() []AgentProfile { return agent.Table2() }

// AgentByName looks a Table 2 agent up by name.
func AgentByName(name string) (AgentProfile, error) { return agent.ByName(name) }

// Pricing carries the §2.3 cost-model constants.
type Pricing = agent.Pricing

// DefaultPricing returns the cost-study pricing.
func DefaultPricing() Pricing { return agent.DefaultPricing() }

// LLMCost computes Eq. 1 for an agent.
func LLMCost(a AgentProfile, pr Pricing) float64 { return agent.LLMCost(a, pr) }

// ServerlessCost computes Eq. 2 for an agent.
func ServerlessCost(a AgentProfile, pr Pricing) float64 { return agent.ServerlessCost(a, pr) }

// Trace is a time-ordered invocation list.
type Trace = workload.Trace

// Invocation is one entry of a Trace.
type Invocation = workload.Invocation

// AzureCSVOptions controls ingestion of Azure Functions CSV traces.
type AzureCSVOptions = workload.AzureCSVOptions

// ParseAzureCSV maps an Azure Functions trace's busiest rows onto
// simulated functions (see cmd/trenv-trace -from-csv).
func ParseAzureCSV(r io.Reader, rng *rand.Rand, opts AzureCSVOptions) (Trace, error) {
	return workload.ParseAzureCSV(r, rng, opts)
}

// WriteAgentTrace / ReadAgentTrace serialize recorded agent timelines
// (the §9.6 record-and-replay methodology).
func WriteAgentTrace(w io.Writer, p AgentProfile) error { return agent.WriteTrace(w, p) }

// ReadAgentTrace parses a recorded agent timeline.
func ReadAgentTrace(r io.Reader) (AgentProfile, error) { return agent.ReadTrace(r) }

// ---------------------------------------------------------------------
// Low-level substrate (the paper's primary contribution, exposed for
// building custom experiments).

// MemoryPool is a disaggregated memory pool (CXL/RDMA/NAS/tmpfs).
type MemoryPool = mem.Pool

// NewCXLPool returns a byte-addressable shared CXL pool.
func NewCXLPool(capacity int64) *MemoryPool {
	return mem.NewPool(mem.CXL, capacity, mem.DefaultLatencyModel())
}

// NewRDMAPool returns a message-based RDMA pool.
func NewRDMAPool(capacity int64) *MemoryPool {
	return mem.NewPool(mem.RDMA, capacity, mem.DefaultLatencyModel())
}

// Prot is a page-protection bitmask for template maps.
type Prot = pagetable.Prot

// Protection bits.
const (
	ProtRead  Prot = pagetable.Read
	ProtWrite Prot = pagetable.Write
	ProtExec  Prot = pagetable.Exec
)

// MapKind distinguishes anonymous from file-backed template maps.
type MapKind = pagetable.MapKind

// Map kinds.
const (
	MapAnon MapKind = pagetable.Anon
	MapFile MapKind = pagetable.File
)

// TierManager places image blocks across hot (CXL) and cold (RDMA/NAS)
// tiers with frequency-based promotion (§3.1's multi-layer architecture).
type TierManager = mem.TierManager

// NewTierManager manages placement with at most hotBudget bytes hot.
func NewTierManager(hot, cold *MemoryPool, hotBudget int64) (*TierManager, error) {
	return mem.NewTierManager(hot, cold, hotBudget)
}

// Snapshot is a function's checkpointed post-initialization state.
type Snapshot = snapshot.Snapshot

// WriteSnapshotImage / ReadSnapshotImage serialize CRIU-style image
// files.
func WriteSnapshotImage(w io.Writer, s *Snapshot) error { return snapshot.WriteImage(w, s) }

// ReadSnapshotImage parses a CRIU-style image file.
func ReadSnapshotImage(r io.Reader) (*Snapshot, error) { return snapshot.ReadImage(r) }

// TemplateRegistry is the mm-template registry (the kernel XArray).
type TemplateRegistry = mmtemplate.Registry

// Template is one process's mm-template.
type Template = mmtemplate.Template

// NewTemplateRegistry returns an empty registry.
func NewTemplateRegistry() *TemplateRegistry { return mmtemplate.NewRegistry() }

// Engine is the deterministic discrete-event engine experiments run on.
type Engine = sim.Engine

// NewEngine returns an engine seeded for reproducibility.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// Histogram collects latency samples with exact percentiles.
type Histogram = sim.Histogram

// ---------------------------------------------------------------------
// Working-set prefetching (batched remote fetch + hot-run promotion).
// Enabled on a container platform via ContainerConfig.Prefetch; the
// types below expose the machinery for custom experiments.

// WorkingSetLog is a template's recorded first-run fault order: a
// deterministic, seed-stable sequence of page runs that later restores
// replay as batched remote fetches.
type WorkingSetLog = pagetable.WorkingSetLog

// WorkingSetFetch is one contiguous page run of a WorkingSetLog.
type WorkingSetFetch = pagetable.WSFetch

// Prefetcher replays sealed working-set logs on template attach: it
// issues doorbell-batched fetches racing the invocation and promotes
// runs replayed often enough into the node's direct-access cache.
type Prefetcher = prefetch.Prefetcher

// PrefetchConfig tunes batch size and the promotion threshold.
type PrefetchConfig = prefetch.Config

// PrefetchSummary reports what one restore's replay did (recording vs
// batches launched vs pages promoted); Prefetcher.OnRestore returns it.
type PrefetchSummary = prefetch.Summary

// DefaultPrefetchBatchPages is the doorbell batch size used when
// PrefetchConfig.BatchPages is zero: 64 pages (256 KB) per remote
// round trip.
const DefaultPrefetchBatchPages = prefetch.DefaultBatchPages

// NewPrefetcher builds a prefetcher over an optional promotion cache
// (nil disables promotion regardless of the threshold).
func NewPrefetcher(cache *PromotionCache, cfg PrefetchConfig) *Prefetcher {
	return prefetch.New(cache, cfg)
}

// PromotionCache is the capacity-bounded per-node direct-access cache
// hot working sets are promoted into (LRU eviction; evicted runs fall
// back to batched replay).
type PromotionCache = mem.PromotionCache

// NewPromotionCache returns a cache backed by a byte-addressable pool
// of the given capacity under the default latency model.
func NewPromotionCache(capacity int64) *PromotionCache {
	return mem.NewPromotionCache(capacity, mem.DefaultLatencyModel())
}

// ---------------------------------------------------------------------
// Observability (spans, metrics, exporters).

// Span is one node of an invocation trace tree over virtual time.
type Span = obs.Span

// Tracer collects root spans into a bounded ring.
type Tracer = obs.Tracer

// NewTracer returns a tracer keeping the most recent max root spans
// (0 selects the default capacity).
func NewTracer(max int) *Tracer { return obs.NewTracer(max) }

// MetricsRegistry gathers counters, gauges, and histograms for
// Prometheus text-format export.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// SpanLink is a causal reference from one span to another trace (a
// remote memory-pool fetch, an eviction's admitting invocation, ...).
type SpanLink = obs.Link

// TraceIDFor derives the deterministic 16-hex trace ID for a part
// sequence (node, function, sequence number, ...).
func TraceIDFor(parts ...string) string { return obs.TraceIDFor(parts...) }

// WriteChromeTrace renders root spans as Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto).
func WriteChromeTrace(w io.Writer, roots []*Span) error { return obs.WriteChromeTrace(w, roots) }

// WriteSpansJSONL streams root spans as one JSON object per line.
func WriteSpansJSONL(w io.Writer, roots []*Span) error { return obs.WriteJSONL(w, roots) }

// AnalysisReport summarizes recorded spans: top-k slowest invocations
// with critical paths, per-function phase attribution at P50/P99/P999,
// tail-vs-median diffs, and exemplar links.
type AnalysisReport = obs.Report

// PathStep is one hop on a critical path.
type PathStep = obs.PathStep

// HistogramExemplarLink resolves an exported exemplar to its trace.
type HistogramExemplarLink = obs.ExemplarLink

// AnalyzeSpans builds an AnalysisReport over recorded root spans
// (topK <= 0 selects the default top-10 slowest table).
func AnalyzeSpans(roots []*Span, topK int) *AnalysisReport { return obs.Analyze(roots, topK) }

// CriticalPath extracts the longest-child chain of one span tree.
func CriticalPath(root *Span) []PathStep { return obs.CriticalPath(root) }

// WriteFoldedStacks writes root spans as folded flamegraph stacks
// (`frame;frame count` lines, flamegraph.pl / speedscope compatible).
func WriteFoldedStacks(w io.Writer, roots []*Span) error { return obs.WriteFolded(w, roots) }

// ExemplarReservoir is a bounded deterministic reservoir of
// (value, trace ID) pairs per histogram bucket, exported in OpenMetrics
// exemplar syntax by MetricsRegistry.WritePrometheus.
type ExemplarReservoir = obs.ExemplarReservoir

// NewExemplarReservoir samples perBucket exemplars per bucket bound
// (nil bounds / perBucket <= 0 select defaults) with a seed-derived
// deterministic sampler.
func NewExemplarReservoir(bounds []float64, perBucket int, seed string) *ExemplarReservoir {
	return obs.NewExemplarReservoir(bounds, perBucket, seed)
}

// FlightRecorder snapshots a registry's series over virtual time into
// bounded ring-buffer time series (counters also carry a per-second
// rate of change). Attach one to a platform or cluster before RunTrace.
type FlightRecorder = obs.Recorder

// NewFlightRecorder returns a recorder over reg; capacity <= 0 selects
// the default per-series ring size.
func NewFlightRecorder(reg *MetricsRegistry, capacity int) *FlightRecorder {
	return obs.NewRecorder(reg, capacity)
}

// RecorderSet groups several runs' recorders under run names for one
// combined export (cmd/trenv-bench -timeseries).
type RecorderSet = obs.RecorderSet

// NewRecorderSet builds a set whose recorders sample every interval
// into rings of the given capacity (defaults apply when <= 0).
func NewRecorderSet(every time.Duration, capacity int) *RecorderSet {
	return obs.NewRecorderSet(every, capacity)
}

// SLO is a per-function latency objective (ContainerConfig.SLOTarget /
// SLOObjective configure the platform-wide default).
type SLO = obs.SLO

// SLOTracker records per-function compliance and burn rates over
// sliding virtual-time windows; see ContainerPlatform.SLO.
type SLOTracker = obs.SLOTracker

// SchedulerTraceLog is the engine's bounded scheduler-event ring
// (Engine.AttachTraceLog).
type SchedulerTraceLog = sim.TraceLog

// RegisterSchedulerTraceLog publishes a scheduler trace log's drop
// counter (trenv_sim_trace_dropped_total) into a metrics registry.
func RegisterSchedulerTraceLog(reg *MetricsRegistry, labels map[string]string, log *SchedulerTraceLog) {
	obs.RegisterTraceLog(reg, labels, log)
}

// RegisterTracerDrops publishes a span tracer's drop counter
// (trenv_spans_dropped_total) into a metrics registry.
func RegisterTracerDrops(reg *MetricsRegistry, labels map[string]string, tr *Tracer) {
	obs.RegisterTracerDrops(reg, labels, tr)
}

// ---------------------------------------------------------------------
// Fault injection and failure recovery (deterministic chaos).

// FaultScenario schedules pool outages, latency degradation, flaky
// fetches, node crashes, and link flaps against virtual time.
type FaultScenario = fault.Scenario

// FaultInjector compiles a FaultScenario into the agent pools consult on
// every fetch. Same seed, same scenario => byte-identical chaos runs.
type FaultInjector = fault.Injector

// ChaosStatus is the armed schedule plus injected-fault counts by kind
// (the JSON shape of trenvd's GET /chaos).
type ChaosStatus = fault.Status

// NewFaultInjector compiles sc against eng's virtual clock with its own
// seeded rng (probabilistic faults never perturb the engine's stream).
func NewFaultInjector(eng *Engine, seed int64, sc FaultScenario) *FaultInjector {
	return fault.NewInjector(eng, seed, sc)
}

// ParseChaosSpec parses a compact comma-separated chaos spec, e.g.
// "outage:cxl:10s-20s,flaky:rdma:0.2:burst=3,crash:n1:30s".
func ParseChaosSpec(spec string) (FaultScenario, error) { return fault.ParseSpec(spec) }

// CircuitBreaker tracks a node's pool-fetch failure rate and trips
// closed -> open -> half-open over virtual time.
type CircuitBreaker = fault.Breaker

// CircuitBreakerConfig tunes window, thresholds, and open duration.
type CircuitBreakerConfig = fault.BreakerConfig

// NewCircuitBreaker builds a breaker over a virtual clock.
func NewCircuitBreaker(cfg CircuitBreakerConfig, now func() time.Duration) *CircuitBreaker {
	return fault.NewBreaker(cfg, now)
}

// DefaultCircuitBreakerConfig returns the cluster's breaker tuning.
func DefaultCircuitBreakerConfig() CircuitBreakerConfig { return fault.DefaultBreakerConfig() }

// RetryPolicy bounds fetch retries (attempts, per-attempt deadline,
// exponential backoff); see ContainerConfig.Retry.
type RetryPolicy = mem.RetryPolicy

// DefaultRetryPolicy returns the fetch retry policy applied when chaos
// is attached without an explicit override.
func DefaultRetryPolicy() RetryPolicy { return mem.DefaultRetryPolicy() }

// InvocationResult is one invocation's terminal outcome (see
// ContainerConfig.OnResult and Cluster.SetResultHook).
type InvocationResult = faas.InvocationResult

// Invocation outcomes.
const (
	// OutcomeSuccess is a normally completed invocation.
	OutcomeSuccess = faas.OutcomeSuccess
	// OutcomeFallback completed via a local cold start after the remote
	// pool was unavailable (graceful degradation).
	OutcomeFallback = faas.OutcomeFallback
	// OutcomeError is a typed failure (no silent losses).
	OutcomeError = faas.OutcomeError
	// OutcomeCrashed was aborted by a node crash; clusters re-dispatch it.
	OutcomeCrashed = faas.OutcomeCrashed
)

// ---------------------------------------------------------------------
// Alerting (see internal/alert): rules evaluated on the virtual clock
// against flight-recorder series and SLO burn rates, with incident
// capture linking each firing to the worst invocations' critical paths.

// AlertRule is one compiled alerting rule (threshold, rate, burn, or
// absence, each with a for-duration hysteresis).
type AlertRule = alert.Rule

// AlertEngine evaluates rules on the recorder's sampling instants and
// captures incidents; attach via ContainerPlatform.AttachAlerts or
// Cluster.AttachAlerts alongside a flight recorder.
type AlertEngine = alert.Engine

// AlertSet groups one engine per run under run names for one combined
// export (cmd/trenv-bench -alerts).
type AlertSet = alert.Set

// AlertIncident is one captured firing: virtual-time lifecycle, the
// offending series window, and trace links to the worst invocations.
type AlertIncident = alert.Incident

// NewAlertEngine compiles rules into an engine.
func NewAlertEngine(rules []AlertRule) *AlertEngine { return alert.New(rules) }

// NewAlertSet builds a set whose engines all compile the same rules.
func NewAlertSet(rules []AlertRule) *AlertSet { return alert.NewSet(rules) }

// ParseAlertRules parses a compact comma-separated rule spec, e.g.
// "rate:errors:trenv_errors_total:>0.5:for=2s,burn:slo:*:1m@14x|5m@2x".
func ParseAlertRules(spec string) ([]AlertRule, error) { return alert.ParseSpec(spec) }

// LoadAlertRules resolves a -rules argument: "@path" reads a rule file
// (blank lines and #-comments ignored), anything else parses as a spec.
func LoadAlertRules(arg string) ([]AlertRule, error) { return alert.Load(arg) }

// DefaultAlertRules returns the built-in rule set: fallback storms, an
// open circuit breaker, error-rate spikes, and fast+slow SLO burn.
func DefaultAlertRules() []AlertRule { return alert.DefaultRules() }

// ---------------------------------------------------------------------
// Experiment harness (every table and figure of the evaluation).

// ExperimentOptions control experiment seed and scale.
type ExperimentOptions = experiments.Options

// ExperimentResult is one regenerated table/figure.
type ExperimentResult = experiments.Result

// RunExperiment regenerates one table or figure by ID ("table1".."fig26").
// It returns false if the ID is unknown.
func RunExperiment(id string, o ExperimentOptions) (*ExperimentResult, bool) {
	run, ok := experiments.ByID(id)
	if !ok {
		return nil, false
	}
	return run(o), true
}

// ExperimentIDs lists every experiment in presentation order.
func ExperimentIDs() []string {
	var out []string
	for _, e := range experiments.All() {
		out = append(out, e.ID)
	}
	return out
}

// ---------------------------------------------------------------------
// Engine self-observability (wall-clock performance of the simulator
// itself; see internal/selfbench).

// SelfBenchOptions configure a self-benchmark suite run (seed + scale).
type SelfBenchOptions = selfbench.Options

// SelfBenchReport is the schema-stable wall-clock report `trenv-bench
// -selfbench` emits and scripts/bench-compare.sh regression-gates.
type SelfBenchReport = selfbench.Report

// SelfBenchResult is one measured run inside a SelfBenchReport.
type SelfBenchResult = selfbench.Result

// RunSelfBench executes the canonical self-benchmark suite: the bare
// engine hot loop, a single-node W1 run with observability off and on
// (the overhead probe), and a 4-node cluster run. Deterministic work
// counts are a pure function of the options; wall-clock readings are
// host-dependent by definition.
func RunSelfBench(o SelfBenchOptions) *SelfBenchReport { return selfbench.RunSuite(o) }

// WallRate returns n per second over a wall-clock interval, degrading
// to 0 on zero or negative intervals instead of dividing by zero.
func WallRate(n float64, elapsed time.Duration) float64 { return selfbench.Rate(n, elapsed) }

// Version returns the module version recorded by the Go toolchain
// ("(devel)" for source builds).
func Version() string { return obs.Version() }

// RegisterBuildInfo registers the trenv_build_info identity gauge
// (constant 1; go_version and module version in the labels).
func RegisterBuildInfo(reg *MetricsRegistry, labels map[string]string) {
	obs.RegisterBuildInfo(reg, labels)
}

// ---------------------------------------------------------------------
// Run reports and differential analysis (see internal/report and
// internal/diff; cmd/trenv-diff is the CLI).

// RunReport is the schema-stable trenv-report/v1 bundle: run identity
// (seed, scale, flags, build version), gathered metrics, flight-recorder
// series, figure rows, trace analytics, and a virtual-time-ordered span
// list. Same seed => byte-identical bundles.
type RunReport = report.Report

// RunReportSchema identifies the bundle layout.
const RunReportSchema = report.Schema

// NewRunReport returns an empty bundle stamped with the run's identity.
func NewRunReport(source string, seed int64, scale float64) *RunReport {
	return report.New(source, seed, scale)
}

// RunReportFromPlatform bundles a finished single-node run.
func RunReportFromPlatform(source string, scale float64, pl *ContainerPlatform) *RunReport {
	return report.FromPlatform(source, scale, pl)
}

// RunReportFromCluster bundles a finished rack run (tracer may be nil).
func RunReportFromCluster(source string, scale float64, c *Cluster, tracer *Tracer) *RunReport {
	return report.FromCluster(source, scale, c, tracer)
}

// RunReportFromSelfBench converts a wall-clock self-benchmark report
// into a bundle whose Bench block trenv-diff tolerance-gates.
func RunReportFromSelfBench(sb *SelfBenchReport) *RunReport { return report.FromSelfbench(sb) }

// ReadRunReport parses the trenv-report/v1 bundle at path.
func ReadRunReport(path string) (*RunReport, error) { return report.ReadFile(path) }

// LoadRunArtifact reads any comparable artifact — a trenv-report/v1
// bundle or a trenv-selfbench/v1 report (converted, keeping its schema
// so the two kinds refuse to cross-compare).
func LoadRunArtifact(path string) (*RunReport, error) { return diff.LoadFile(path) }

// DiffOptions tune a report comparison (tolerance bands).
type DiffOptions = diff.Options

// DiffResult is a ranked comparison outcome: gates, findings, and — for
// same-seed span-carrying pairs — the first divergent span.
type DiffResult = diff.Result

// DiffFinding is one attributed difference between two reports.
type DiffFinding = diff.Finding

// DiffDivergence names the first span where two same-seed runs disagree.
type DiffDivergence = diff.Divergence

// DiffMismatchError reports artifacts that refuse comparison (schema,
// source, seed, or scale disagree).
type DiffMismatchError = diff.MismatchError

// CompareRunReports diffs fresh against base. Incomparable pairs return
// *DiffMismatchError; every other outcome is a DiffResult whose
// Regressed method answers "should this fail a gate".
func CompareRunReports(base, fresh *RunReport, o DiffOptions) (*DiffResult, error) {
	return diff.Compare(base, fresh, o)
}
