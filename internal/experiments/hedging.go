package experiments

import (
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// hedgeChaos is Part B's flaky-RDMA schedule: each lazy fetch attempt
// rolls a p=0.02 failure that opens a burst of 5 correlated failures —
// under the patient reconnect policy below, an unlucky restore burns
// the whole burst in backoff and stalls for seconds.
func hedgeChaos() fault.Scenario {
	return fault.Scenario{
		FlakyFetches: []fault.FlakyFetch{{Pool: "rdma", Prob: 0.02, Burst: 5}},
	}
}

// hedgeRetry is Part B's fetch retry policy: reconnect-scale backoff
// (hundreds of ms, capped at 2s) instead of the default RDMA
// microsecond schedule. A flaky burst then shows up as a multi-second
// stall on one attempt — recoverable, but only by racing a second
// attempt somewhere else — rather than as a fast typed error.
func hedgeRetry() *mem.RetryPolicy {
	return &mem.RetryPolicy{
		MaxAttempts: 6,
		Deadline:    5 * time.Millisecond,
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  2 * time.Second,
	}
}

// poissonTrace draws a single-function Poisson arrival process at rate
// invocations/sec for duration d.
func poissonTrace(seed int64, fn string, rate float64, d time.Duration) workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	var tr workload.Trace
	for at := time.Duration(0); ; {
		at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if at > d {
			return tr
		}
		tr = append(tr, workload.Invocation{At: at, Function: fn})
	}
}

// hedgeRun aggregates one cluster run's settle-latency distribution and
// hedging counters.
type hedgeRun struct {
	settle    sim.Histogram // ms, one sample per settled invocation
	hedged    int64
	wins      int64
	skips     int64
	cancelled int64
	wedged    int64
}

func (h *hedgeRun) meanMS() float64 { return h.settle.Mean() }
func (h *hedgeRun) p99MS() float64  { return h.settle.Percentile(99) }

// runHedged drives tr through a 3-node TrEnv-CXL rack with the given
// hedge policy (nil = unhedged) and returns settle-time stats. cores
// bounds each node's parallelism (0 = default 64) so clone sweeps can
// saturate the rack at CI scale; hotFraction 1 keeps every page
// byte-addressable in CXL (no RDMA traffic at all), lower values leave
// a cold tail on the flaky fetch path; keepAlive 0 keeps the default
// warm window while sub-interarrival values force every invocation
// through a fresh remote restore; retry overrides the fetch retry
// policy; chaos toggles the flaky-RDMA schedule.
func runHedged(o Options, tr workload.Trace, profiles []workload.FunctionProfile, cores int, hotFraction float64, keepAlive time.Duration, retry *mem.RetryPolicy, chaos bool, hp *cluster.HedgePolicy) hedgeRun {
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = o.Seed
	cfg.Cores = cores
	cfg.KeepAlive = o.dur(10 * time.Minute)
	if keepAlive > 0 {
		cfg.KeepAlive = keepAlive
	}
	cfg.Warmup = o.dur(5 * time.Minute)
	cfg.SoftMemCap = 64 << 30
	cfg.HotFraction = hotFraction
	cfg.Retry = retry
	cfg.Tracer = o.Tracer
	c, err := cluster.New(3, cfg)
	if err != nil {
		panic("experiments: hedging cluster: " + err.Error())
	}
	if hp != nil {
		c.SetHedgePolicy(*hp)
	}
	for _, p := range profiles {
		if err := c.Register(p); err != nil {
			panic("experiments: hedging register: " + err.Error())
		}
	}
	var out hedgeRun
	c.SetSettleHook(func(fn string, latency time.Duration, r faas.InvocationResult) {
		out.settle.AddDuration(latency)
	})
	if chaos {
		inj := fault.NewInjector(c.Engine(), o.Seed, hedgeChaos())
		if o.Tracer != nil {
			inj.SetTracer(o.Tracer)
		}
		c.AttachChaos(inj)
	}
	c.RunTrace(tr)
	out.hedged = c.Hedged()
	out.wins = c.HedgeWins()
	out.skips = c.HedgeSkips()
	out.cancelled = c.Cancelled()
	out.wedged = c.Wedged()
	return out
}

// Hedging is the tail-latency experiment, in two parts.
//
// Part A sweeps eager clone factor x offered load for one function on a
// 3x1-core rack with every page in CXL (no RDMA, no chaos) and
// reproduces the PS-model shape: dispatch routes warm-first regardless
// of queue depth, so a clone races the possibly-queued warm node
// against an idle one — a slight tail win at low utilization, a wash to
// a loss at moderate load, and a meltdown near saturation where losing
// clones eat the cores the primaries needed.
//
// Part B is hedged-restore racing: keep-alive sits below the
// inter-arrival gap, so every DH invocation restores fresh and lazily
// fetches its cold tail over flaky RDMA under a patient reconnect
// policy — a burst turns one restore into a multi-second stall. A
// fixed-delay hedge launches a second restore on another node once the
// primary runs 400ms past dispatch; the burst has drained by then, so
// the hedge restores clean and end-to-end p99 lands strictly below the
// unhedged run's.
func Hedging(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "hedging", Title: "request hedging & speculative cloning under flaky-RDMA tail latency",
		Notes: "3-node rack; A: clone x load sweep on 1-core nodes (PS-model, no chaos), B: delay:400ms restore racing vs flaky rdma p=0.02 burst=5 + reconnect backoff"}

	// Part A: clone factor x load on 3 nodes x 1 core, every page in CXL
	// (no RDMA, no chaos) — the pure processor-sharing trade.
	prof, err := workload.ProfileByName("IR")
	if err != nil {
		panic("experiments: hedging profile: " + err.Error())
	}
	// IR on CXL runs ~90ms * 1.85 plus restore overhead, ~240ms/service.
	const serviceSecs = 0.24
	dur := o.dur(4 * time.Minute)
	for _, rho := range []float64{0.1, 0.4, 0.8} {
		rate := rho * 3 / serviceSecs
		tr := poissonTrace(o.Seed+41, prof.Name, rate, dur)
		for _, clones := range []int{1, 2, 3} {
			var hp *cluster.HedgePolicy
			if clones > 1 {
				hp = &cluster.HedgePolicy{Mode: cluster.HedgeClone, Clones: clones}
			}
			run := runHedged(o, tr, []workload.FunctionProfile{prof}, 1, 1, 0, nil, false, hp)
			r.Addf("clone=%d rho=%.1f n=%5d mean=%8.1fms p99=%8.1fms hedged=%5d cancelled=%5d wedged=%d",
				clones, rho, run.settle.N(), run.meanMS(), run.p99MS(), run.hedged, run.cancelled, run.wedged)
		}
	}

	// Part B: hedged-restore racing. DH reads past the hot fraction
	// (ReadFrac 0.55 > 0.4), so every fresh restore lazily fetches over
	// the flaky rdma pool; the 400ms trigger sits above the clean
	// restore+exec latency (~90ms) and below the burst stalls (2.5s+).
	dh, err := workload.ProfileByName("DH")
	if err != nil {
		panic("experiments: hedging profile: " + err.Error())
	}
	tr := poissonTrace(o.Seed+42, dh.Name, 5, o.dur(30*time.Minute))
	hp := cluster.HedgePolicy{Mode: cluster.HedgeDelay, Delay: 400 * time.Millisecond}
	profiles := []workload.FunctionProfile{dh}
	base := runHedged(o, tr, profiles, 0, 0.4, time.Millisecond, hedgeRetry(), true, nil)
	hedged := runHedged(o, tr, profiles, 0, 0.4, time.Millisecond, hedgeRetry(), true, &hp)
	r.Addf("%-10s n=%5d mean=%8.1fms p99=%8.1fms hedged=%5d wins=%4d skips=%4d cancelled=%5d wedged=%d",
		"unhedged", base.settle.N(), base.meanMS(), base.p99MS(), base.hedged, base.wins, base.skips, base.cancelled, base.wedged)
	r.Addf("%-10s n=%5d mean=%8.1fms p99=%8.1fms hedged=%5d wins=%4d skips=%4d cancelled=%5d wedged=%d",
		hp.Spec(), hedged.settle.N(), hedged.meanMS(), hedged.p99MS(), hedged.hedged, hedged.wins, hedged.skips, hedged.cancelled, hedged.wedged)
	if hedged.p99MS() < base.p99MS() {
		r.Addf("hedging cuts end-to-end p99 %.1fms -> %.1fms (%.1f%%) at %.2f%% extra attempts",
			base.p99MS(), hedged.p99MS(), 100*(base.p99MS()-hedged.p99MS())/base.p99MS(),
			100*float64(hedged.hedged)/float64(tr.Len()))
	} else {
		r.Addf("HEDGING DID NOT IMPROVE P99: unhedged=%.1fms hedged=%.1fms", base.p99MS(), hedged.p99MS())
	}
	return r
}
