package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/report"
)

// buildFig22 runs Fig22 with full observability and bundles it.
func buildFig22(t *testing.T, lean bool) *report.Report {
	t.Helper()
	o := Options{
		Seed:      5,
		Scale:     0.02,
		Tracer:    obs.NewTracer(0),
		Recorders: obs.NewRecorderSet(0, 0),
	}
	res := Fig22(o)
	return BuildReport([]string{"fig22"}, o, []*Result{res}, lean)
}

func TestBuildReportBundlesFigureRuns(t *testing.T) {
	r := buildFig22(t, false)
	if r.Source != "experiments/fig22" || r.Seed != 5 || r.Scale != 0.02 {
		t.Fatalf("identity = %q/%d/%g", r.Source, r.Seed, r.Scale)
	}
	if len(r.Figures) != 1 || r.Figures[0].ID != "fig22" || len(r.Figures[0].Lines) == 0 {
		t.Fatalf("figures = %+v", r.Figures)
	}
	if len(r.Metrics) == 0 || len(r.Series) == 0 || len(r.Spans) == 0 {
		t.Fatalf("bundle incomplete: %d metrics, %d series, %d spans",
			len(r.Metrics), len(r.Series), len(r.Spans))
	}
	if r.Analysis == nil || r.Analysis.Invocations == 0 {
		t.Fatalf("analysis = %+v", r.Analysis)
	}
}

func TestBuildReportLeanOmitsSpansAndSeries(t *testing.T) {
	full := buildFig22(t, false)
	lean := buildFig22(t, true)
	if len(lean.Spans) != 0 || len(lean.Series) != 0 {
		t.Fatalf("lean bundle carries %d spans, %d series", len(lean.Spans), len(lean.Series))
	}
	if len(lean.Metrics) != len(full.Metrics) {
		t.Fatalf("lean metrics = %d, full = %d", len(lean.Metrics), len(full.Metrics))
	}
	if len(lean.Figures) != 1 || lean.Analysis == nil {
		t.Fatal("lean bundle lost figures or analysis")
	}
}

func TestBuildReportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildFig22(t, false).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildFig22(t, false).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed experiment bundles are not byte-identical")
	}
}
