package experiments

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/workload"
)

// prefetchRun is one prefetch-on/off run's aggregated outcome.
type prefetchRun struct {
	invocations   int
	restoreP50    float64 // ms, startup + demand fetch + batch wait
	restoreP99    float64
	demandPages   int64 // demand remote fetches during exec
	prefetchPages int64 // pages delivered by batched replays
	hits          int64 // demand accesses a batch had covered
	promoted      int64 // pages redirected at the promotion cache
	batches       int64
	e2eP99        float64
}

// runPrefetch drives a 3-node TrEnv-CXL rack (0.4 hot fraction, so the
// cold tail of every image lives on RDMA and demand-faults lazily)
// through the Azure-like trace, with working-set prefetching on or off.
// Everything else — seed, trace, sizing — is identical, so the delta is
// the prefetcher. The keep-alive window is deliberately short (2 min
// paper-scale) so the trace keeps forcing template restores — the path
// prefetching attacks.
func runPrefetch(o Options, tr workload.Trace, on bool) prefetchRun {
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = o.Seed
	cfg.KeepAlive = o.dur(2 * time.Minute)
	cfg.Warmup = o.dur(5 * time.Minute)
	cfg.SoftMemCap = 64 << 30
	// Same placement rationale as the availability experiment: a 0.4 hot
	// fraction spills each image's tail to the RDMA pool, keeping lazy
	// fetches on the critical path for every restore — the traffic the
	// prefetcher exists to batch.
	cfg.HotFraction = 0.4
	cfg.Tracer = o.Tracer
	if on {
		cfg.Prefetch = true
		cfg.PromoteThreshold = 2
	}
	c, err := cluster.New(3, cfg)
	if err != nil {
		panic("experiments: prefetch cluster: " + err.Error())
	}
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			panic("experiments: prefetch register: " + err.Error())
		}
	}

	// Per-invocation restore cost: the start path plus the demand-fault
	// train execution pays against remote memory (and, with prefetch on,
	// the residual waits on in-flight batches).
	var restore sim.Histogram
	c.SetResultHook(func(node int, r faas.InvocationResult) {
		if r.Outcome != faas.OutcomeSuccess && r.Outcome != faas.OutcomeFallback {
			return
		}
		restore.AddDuration(r.Startup + r.FetchLat + r.PrefetchWait)
	})
	c.RunTrace(tr)

	var out prefetchRun
	var e2e sim.Histogram
	for _, node := range c.Nodes() {
		m := node.Metrics()
		out.invocations += m.Invocations()
		out.hits += m.PrefetchHits.Value()
		out.batches += m.PrefetchBatches.Value()
		out.promoted += m.PromotedPages.Value()
		fs := node.FaultStats()
		out.demandPages += fs.FetchedPages
		out.prefetchPages += fs.PrefetchedPages
		e2e.Merge(&m.All.E2E)
	}
	out.restoreP50 = restore.Percentile(50)
	out.restoreP99 = restore.Percentile(99)
	out.e2eP99 = e2e.Percentile(99)
	return out
}

// Prefetch is the working-set prefetching experiment: the same 3-node
// rack and Azure-like trace run twice, with and without batched
// working-set replay (+ hot-run promotion after 2 replays). The first
// run of each template records its fault order; every later restore
// replays it as doorbell-batched fetches racing the invocation, so the
// P99 restore cost (startup + demand-fetch latency) drops and demand
// remote faults are largely replaced by prefetched pages.
func Prefetch(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "prefetch", Title: "working-set prefetching: batched replay vs pure demand faulting",
		Notes: "3-node rack, Azure-like trace, hot fraction 0.4 (cold tail on rdma); on = batched replay + promotion after 2 replays"}
	tr := azureTrace(o)
	on := runPrefetch(o, tr, true)
	off := runPrefetch(o, tr, false)
	row := func(name string, a prefetchRun) {
		r.Addf("%-12s n=%6d restore p50=%7.2fms p99=%8.2fms e2e p99=%8.1fms demand-pages=%8d prefetched=%8d hits=%7d batches=%6d promoted=%7d",
			name, a.invocations, a.restoreP50, a.restoreP99, a.e2eP99,
			a.demandPages, a.prefetchPages, a.hits, a.batches, a.promoted)
	}
	row("prefetch-on", on)
	row("prefetch-off", off)
	if off.restoreP99 > 0 {
		r.Addf("restore p99 %.2fms -> %.2fms (%.1f%% lower); demand remote faults %d -> %d (%.1f%% fewer)",
			off.restoreP99, on.restoreP99, 100*(off.restoreP99-on.restoreP99)/off.restoreP99,
			off.demandPages, on.demandPages,
			100*float64(off.demandPages-on.demandPages)/float64(off.demandPages))
	}
	avg := 0.0
	if on.batches > 0 {
		avg = float64(on.prefetchPages) / float64(on.batches)
	}
	r.Addf("one doorbell RTT amortized over %.1f pages/batch on average; %d pages served direct from the promotion cache path",
		avg, on.promoted)
	return r
}
