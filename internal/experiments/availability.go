package experiments

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// availabilityScenario builds the chaos schedule the availability
// experiment injects: flaky fetches on the lazy (RDMA) cold pool across
// the whole run, a memory-server (CXL pool) outage window mid-trace,
// and a node crash inside that window. CXL pages are byte-addressable
// (RemoteDirect, no fetch), so flakiness targets the rdma fetch path
// while the outage hits template restores against the memory server.
func availabilityScenario(dur time.Duration) fault.Scenario {
	return fault.Scenario{
		FlakyFetches: []fault.FlakyFetch{{Pool: "rdma", Prob: 0.2, Burst: 2}},
		PoolOutages:  []fault.PoolOutage{{Pool: "cxl", From: dur / 2, To: dur * 7 / 10}},
		NodeCrashes:  []fault.NodeCrash{{Node: "n0", At: dur * 11 / 20}},
	}
}

// availRun is one chaos run's aggregated outcome.
type availRun struct {
	invocations  int
	errors       int64
	fallbacks    int64
	retries      int64
	crashAborts  int64
	redispatched int64
	wedged       int64
	p99          float64
	unavailSecs  int
	totalSecs    int
}

// runAvailability drives a 3-node TrEnv-CXL rack through the Azure-like
// trace under the availability chaos schedule. recovery=false disables
// both fetch retries (MaxAttempts=1) and the local-cold-start fallback,
// so the run shows what the failure window costs without the PR's
// recovery machinery.
func runAvailability(o Options, tr workload.Trace, recovery bool) availRun {
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = o.Seed
	cfg.KeepAlive = o.dur(10 * time.Minute)
	cfg.Warmup = o.dur(5 * time.Minute)
	cfg.SoftMemCap = 64 << 30
	// Keep a cold tail in the RDMA pool so fetches (and thus faults)
	// stay on the critical path: accesses read a prefix of each region
	// (ReadFrac up to ~0.62), so a 0.4 hot fraction forces every warm
	// invocation through lazy rdma fetches for the spilled pages.
	cfg.HotFraction = 0.4
	cfg.Tracer = o.Tracer
	if !recovery {
		cfg.DisableFallback = true
		rp := mem.DefaultRetryPolicy()
		rp.MaxAttempts = 1
		cfg.Retry = &rp
	}
	c, err := cluster.New(3, cfg)
	if err != nil {
		panic("experiments: availability cluster: " + err.Error())
	}
	if o.Hedge != nil {
		c.SetHedgePolicy(*o.Hedge)
	}
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			panic("experiments: availability register: " + err.Error())
		}
	}

	// Per-virtual-second availability: a second with terminal outcomes
	// but no successful (or fallback-served) one counts as unavailable.
	type bucket struct{ total, good int }
	buckets := map[int]*bucket{}
	c.SetResultHook(func(node int, r faas.InvocationResult) {
		sec := int(c.Engine().Now() / time.Second)
		b := buckets[sec]
		if b == nil {
			b = &bucket{}
			buckets[sec] = b
		}
		if r.Outcome == faas.OutcomeCrashed {
			return // re-dispatched; its terminal outcome lands later
		}
		if r.Outcome == faas.OutcomeCancelled {
			return // hedge loser; the winning attempt already counted
		}
		b.total++
		if r.Outcome == faas.OutcomeSuccess || r.Outcome == faas.OutcomeFallback {
			b.good++
		}
	})

	inj := fault.NewInjector(c.Engine(), o.Seed, availabilityScenario(tr.Duration()))
	if o.Tracer != nil {
		inj.SetTracer(o.Tracer)
	}
	c.AttachChaos(inj)
	c.RunTrace(tr)

	var out availRun
	var e2e sim.Histogram
	for _, node := range c.Nodes() {
		m := node.Metrics()
		out.invocations += m.Invocations()
		out.errors += m.Errors.Value()
		out.fallbacks += m.Fallbacks.Value()
		out.retries += m.Retries.Value()
		out.crashAborts += m.CrashAborts.Value()
		e2e.Merge(&m.All.E2E)
	}
	out.redispatched = c.Redispatched()
	out.wedged = c.Wedged()
	out.p99 = e2e.Percentile(99)
	for _, b := range buckets {
		out.totalSecs++
		if b.total > 0 && b.good == 0 {
			out.unavailSecs++
		}
	}
	return out
}

// Availability is the failure-model experiment: a 3-node rack runs the
// Azure-like trace while the shared CXL memory server goes flaky
// (p=0.2, burst 2), then fully dark for 20% of the trace, and one node
// crashes inside the outage. With recovery on (retries + local-cold-
// start fallback + re-dispatch) every invocation still terminates and
// availability stays above zero through the outage; with recovery off
// the outage window turns into hard errors.
func Availability(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "availability", Title: "availability under memory-server outage + flaky fetches + node crash",
		Notes: "3-node rack, Azure-like trace; chaos: flaky rdma p=0.2 burst=2, cxl outage 50-70%, n0 crash at 55%"}
	tr := azureTrace(o)
	on := runAvailability(o, tr, true)
	off := runAvailability(o, tr, false)
	row := func(name string, a availRun) {
		avail := 100.0
		if a.totalSecs > 0 {
			avail = 100 * float64(a.totalSecs-a.unavailSecs) / float64(a.totalSecs)
		}
		r.Addf("%-12s n=%6d err=%5d fallback=%5d retries=%6d redispatched=%3d wedged=%d p99=%8.1fms unavailable=%3ds/%3ds (%5.1f%% avail)",
			name, a.invocations, a.errors, a.fallbacks, a.retries, a.redispatched, a.wedged, a.p99,
			a.unavailSecs, a.totalSecs, avail)
	}
	row("recovery-on", on)
	row("recovery-off", off)
	if on.wedged == 0 && off.wedged == 0 {
		r.Addf("zero wedged invocations in both modes: every dispatch ends in success, fallback, or typed error")
	} else {
		r.Addf("WEDGED INVOCATIONS DETECTED: on=%d off=%d", on.wedged, off.wedged)
	}
	r.Addf("recovery trades errors for latency: %d errors -> %d, p99 %.1fms -> %.1fms, unavailable %ds -> %ds",
		off.errors, on.errors, off.p99, on.p99, off.unavailSecs, on.unavailSecs)
	return r
}
