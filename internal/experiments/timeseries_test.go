package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// Fig22 runs two policies over W1; with Recorders set each run must be
// sampled into its own named recorder and export deterministically.
func TestFigureRunsFeedRecorderSet(t *testing.T) {
	run := func() string {
		set := obs.NewRecorderSet(0, 0)
		Fig22(Options{Seed: 5, Scale: 0.02, Recorders: set})
		if set.Runs() != 2 {
			t.Fatalf("tracked runs = %d, want 2 (one per policy)", set.Runs())
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := run()
	for _, want := range []string{
		`"run": "fig22/trenv-cxl"`,
		`"run": "fig22/trenv-rdma"`,
		`"name": "trenv_invocations_total"`,
		`"name": "trenv_pool_used_bytes"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q", want)
		}
	}
	if out != run() {
		t.Fatal("same-seed figure time-series exports differ")
	}
}

func TestRecordersNilIsNoOp(t *testing.T) {
	// No Recorders: figures run exactly as before.
	r := Fig22(Options{Seed: 5, Scale: 0.02})
	if len(r.Lines) == 0 {
		t.Fatal("fig22 produced no output")
	}
}
