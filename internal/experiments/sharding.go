package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/workload"
)

// shardedRun captures one sharded-fleet run's deterministic totals.
// Every field is invariant of the worker count, which is the property
// the experiment exists to demonstrate.
type shardedRun struct {
	events      int64
	invocations int64
	spillovers  int64
	windows     int64
	messages    int64
	simTime     time.Duration
	spanDigest  uint64
}

// runSharded drives the Azure-like trace through a racks×nodesPerRack
// sharded fleet at the given worker parallelism.
func runSharded(o Options, racks, nodesPerRack, workers int) shardedRun {
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = o.Seed
	cfg.KeepAlive = o.dur(10 * time.Minute)
	f, err := cluster.NewShardedFleet(cluster.ShardedConfig{
		Racks:        racks,
		NodesPerRack: nodesPerRack,
		TraceCap:     4096,
		Workers:      workers,
	}, cfg)
	if err != nil {
		panic(err)
	}
	var fns []string
	for _, p := range workload.Table4() {
		if err := f.Register(p); err != nil {
			panic(err)
		}
		fns = append(fns, p.Name)
	}
	az := workload.AzureConfig(fns)
	az.Duration = o.dur(az.Duration)
	f.RunTrace(workload.Industrial(rand.New(rand.NewSource(o.Seed+2)), az))

	var digest uint64
	for _, sp := range f.Spans() {
		for _, b := range sp.TraceID {
			digest = digest*1099511628211 + uint64(b)
		}
		digest = digest*1099511628211 + uint64(sp.Start) + uint64(sp.End)<<1
	}
	return shardedRun{
		events:      f.Events(),
		invocations: int64(f.Invocations()),
		spillovers:  f.Spillovers(),
		windows:     f.Group().Windows(),
		messages:    f.Group().Messages(),
		simTime:     f.Group().Now(),
		spanDigest:  digest,
	}
}

// Sharding demonstrates the sharded engine's determinism contract: the
// same seeded fleet workload is replayed at worker counts 1, 2, and 4
// plus a reference run executed at o.Shards workers, and every
// deterministic total — events, invocations, spillovers,
// synchronization windows, cross-shard messages, and a digest of the
// merged span list — must be identical across the sweep. The reference
// row's label is fixed ("reference", not the count) precisely so the
// -shards flag can never change a single output byte: two invocations
// at -shards 1 and -shards 4 physically schedule differently and must
// still render identically. Wall-clock scaling is deliberately
// excluded (it belongs in the selfbench shard suite, BENCH_shard.json);
// these lines gate logical equivalence only.
func Sharding(o Options) *Result {
	o = o.normalize()
	r := &Result{
		ID:    "sharding",
		Title: "Worker-count invariance of the sharded fleet (4 racks x 2 nodes, Azure trace)",
		Notes: "identical rows = identical logical schedule; wall-clock scaling lives in the selfbench shard suite",
	}
	base := runSharded(o, 4, 2, o.workers())
	const row = "%-10s %12d %12d %10d %9d %10d %16x"
	r.Addf("%-10s %12s %12s %10s %9s %10s %16s", "workers", "events", "invocations", "spills", "windows", "messages", "span-digest")
	r.Addf(row, "reference", base.events, base.invocations, base.spillovers, base.windows, base.messages, base.spanDigest)
	for _, workers := range []int{1, 2, 4} {
		run := runSharded(o, 4, 2, workers)
		r.Addf(row, fmt.Sprintf("%d", workers), run.events, run.invocations, run.spillovers, run.windows, run.messages, run.spanDigest)
		if run != base {
			r.Addf("DIVERGENCE at workers=%d: logical schedule is not worker-invariant", workers)
		}
	}
	r.Addf("sim time per run: %s", base.simTime)
	return r
}
