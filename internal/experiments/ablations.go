package experiments

import (
	"time"

	"repro/internal/agent"
	"repro/internal/faas"
	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/snapshot"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Ablations exercises the design knobs this reproduction adds around the
// paper's figures: multi-layer hot/cold placement, hot-working-set
// promotion, EPT pre-population, per-user deduplication, and
// Groundhog-style request isolation.
func Ablations(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "ablations", Title: "design-choice ablations"}
	ablateHotFraction(o, r)
	ablatePromotion(o, r)
	ablateEPT(o, r)
	ablatePerUserDedup(o, r)
	ablateCleanAfterUse(o, r)
	ablateBrowserFanIn(o, r)
	return r
}

// ablateBrowserFanIn sweeps how many agents share one browser: too few
// wastes memory on duplicated utility processes, too many queues agents
// on the instance's worker slots — the trade behind the paper's ~10.
func ablateBrowserFanIn(o Options, r *Result) {
	instances := o.count(60)
	a, _ := agent.ByName("blog-summary")
	for _, k := range []int{2, 10, 30} {
		cfg := vm.DefaultConfig(vm.PolicyTrEnvS)
		cfg.Seed = o.Seed
		cfg.Browser.AgentsPerBrowser = k
		cfg.Tracer = o.Tracer
		pl, err := vm.New(cfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < instances; i++ {
			pl.Launch(time.Duration(i)*50*time.Millisecond, a)
		}
		pl.Run()
		m := pl.Metrics(a.Name)
		r.Addf("browser fan-in %2d: blog p99=%7.1fs  peak mem=%6.2fGB",
			k, m.E2E.Percentile(99)/1000, gb(pl.PeakMemory()))
	}
}

// ablateHotFraction sweeps the multi-layer placement: what fraction of
// each consolidated image lives on CXL (the rest spills to RDMA).
func ablateHotFraction(o Options, r *Result) {
	tr := w1Trace(o)
	for _, frac := range []float64{1.0, 0.5, 0.25} {
		cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
		cfg.Seed = o.Seed
		cfg.KeepAlive = o.dur(10 * time.Minute)
		cfg.Warmup = o.dur(5 * time.Minute)
		cfg.HotFraction = frac
		cfg.Tracer = o.Tracer
		pl := faas.New(cfg)
		for _, p := range workload.Table4() {
			pl.Register(p)
		}
		pl.RunTrace(tr)
		cxl, rdma, _ := pl.PoolUsage()
		r.Addf("hot-fraction %.2f: e2e p99=%8.1fms  pools cxl=%.2fGB rdma=%.2fGB",
			frac, pl.Metrics().All.E2E.Percentile(99), gb(cxl), gb(rdma))
	}
}

// ablatePromotion compares warm execution with and without promoting the
// hot working set to local DRAM (DH: CXL inflation ~2x).
func ablatePromotion(o Options, r *Result) {
	for _, after := range []int{0, 2} {
		cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
		cfg.Seed = o.Seed
		cfg.PromoteHotAfter = after
		cfg.Tracer = o.Tracer
		pl := faas.New(cfg)
		prof, _ := workload.ProfileByName("DH")
		pl.Register(prof)
		for i := 0; i < 6; i++ {
			pl.Invoke(time.Duration(i)*5*time.Second, "DH")
		}
		pl.Engine().Run()
		label := "off"
		if after > 0 {
			label = "on "
		}
		r.Addf("promotion %s: DH warm exec=%6.1fms  peak mem=%6.1fMB  promotions=%d",
			label, pl.Metrics().Fn("DH").Exec.Min(), mb(pl.PeakMemory()),
			pl.Metrics().Promotions.Value())
	}
}

// ablateEPT compares lazy second-level paging against pre-populated EPT
// for a multi-step agent.
func ablateEPT(o Options, r *Result) {
	for _, pre := range []bool{false, true} {
		cfg := vm.DefaultConfig(vm.PolicyTrEnv)
		cfg.Seed = o.Seed
		cfg.PrePopulateEPT = pre
		cfg.Tracer = o.Tracer
		pl, err := vm.New(cfg)
		if err != nil {
			panic(err)
		}
		pl.SeedSandboxPool(1)
		a, _ := agent.ByName("map-reduce")
		pl.Launch(0, a)
		pl.Run()
		m := pl.Metrics("map-reduce")
		label := "lazy EPT   "
		if pre {
			label = "prepopulate"
		}
		r.Addf("%s: startup=%6.1fms  e2e=%8.1fms", label, m.Startup.Max(), m.E2E.Max())
	}
}

// ablatePerUserDedup shows the pool cost of side-channel isolation.
func ablatePerUserDedup(o Options, r *Result) {
	lat := mem.DefaultLatencyModel()
	for _, perUser := range []bool{false, true} {
		pool := mem.NewPool(mem.CXL, 0, lat)
		st := snapshot.NewStore(mem.NewBlockStore(pool), mmtemplate.NewRegistry())
		st.PerUserDedup = perUser
		owners := []string{"alice", "bob", "carol"}
		for i, p := range workload.Table4() {
			snap := p.Snapshot()
			snap.Owner = owners[i%len(owners)]
			if _, err := st.Preprocess(snap, snapshot.Placement{Hot: pool, HotFraction: 1}); err != nil {
				panic(err)
			}
		}
		label := "shared  "
		if perUser {
			label = "per-user"
		}
		r.Addf("dedup %s: pool=%6.2fGB (dedup ratio %.2f)", label, gb(pool.Tracker().Used()), st.Blocks().DedupRatio())
	}
}

// ablateCleanAfterUse prices Groundhog-style request isolation.
func ablateCleanAfterUse(o Options, r *Result) {
	for _, clean := range []bool{false, true} {
		cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
		cfg.Seed = o.Seed
		cfg.CleanAfterUse = clean
		cfg.Tracer = o.Tracer
		pl := faas.New(cfg)
		prof, _ := workload.ProfileByName("JS")
		pl.Register(prof)
		for i := 0; i < 4; i++ {
			pl.Invoke(time.Duration(i)*10*time.Second, "JS")
		}
		pl.Engine().Run()
		label := "keep-state "
		if clean {
			label = "clean-state"
		}
		r.Addf("%s: JS warm exec=%6.1fms  scrubs=%d", label,
			pl.Metrics().Fn("JS").Exec.Min(), pl.Metrics().CleanRestores.Value())
	}
}
