package experiments

import (
	"strings"

	"repro/internal/alert"
	"repro/internal/obs"
	"repro/internal/report"
)

// BuildReport bundles a finished experiment batch into a trenv-report/v1
// artifact: the rendered figure rows, plus — when the options carried a
// recorder set or tracer — per-run end-state metrics, sampled series,
// the flattened span list, and trace analytics.
//
// The source embeds the experiment ID list, so a fig17 bundle refuses
// comparison against a fig22 bundle (different workloads answer
// nothing). lean produces a committed-baseline-sized bundle: spans and
// sampled series are omitted (full bundles at paper scale carry
// hundreds of thousands of spans and megabytes of series), keeping the
// figure rows, per-run end-state metrics, and trace analytics —
// everything kept is deterministic per seed/scale, so lean baselines
// equality-gate.
func BuildReport(ids []string, o Options, results []*Result, lean bool) *report.Report {
	o = o.normalize()
	r := report.New("experiments/"+strings.Join(ids, ","), o.Seed, o.Scale)
	if o.Prefetch {
		r.SetFlag("prefetch", "on")
	}
	if o.Chaos != nil && !o.Chaos.Empty() {
		r.SetFlag("chaos", "on")
	}
	if o.Hedge != nil {
		r.SetFlag("hedge", o.Hedge.Spec())
	}
	for _, res := range results {
		if res != nil {
			r.AddFigure(res.ID, res.Title, res.Lines)
		}
	}
	if o.Recorders != nil {
		if lean {
			o.Recorders.Each(func(run string, rec *obs.Recorder) {
				r.AddMetrics(run, rec.Registry())
			})
		} else {
			r.AddRecorderSet(o.Recorders, report.DefaultMaxPoints)
		}
	}
	if o.Tracer != nil {
		roots := o.Tracer.Spans()
		if !lean {
			r.AddSpans(roots)
		}
		r.Analyze(roots, 0)
	}
	if o.Alerts != nil {
		r.SetFlag("alerts", "on")
		o.Alerts.Each(func(run string, eng *alert.Engine) {
			r.AddAlerts(run, eng)
		})
	}
	return r
}
