package experiments

import (
	"time"

	"repro/internal/agent"
	"repro/internal/vm"
)

func agentPlatform(o Options, pol vm.Policy, cores int) *vm.Platform {
	cfg := vm.DefaultConfig(pol)
	cfg.Seed = o.Seed
	cfg.Tracer = o.Tracer
	if cores > 0 {
		cfg.Cores = cores
	}
	pl, err := vm.New(cfg)
	if err != nil {
		panic(err)
	}
	return pl
}

// Table2 reproduces the agent characteristics table by running each
// agent once, uncontended, on the Firecracker-style (E2B) platform.
func Table2(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "table2", Title: "agent characteristics (single uncontended run, Firecracker-style)",
		Notes: "peak-mem uses the paper's snapshot accounting: guest-kernel/hypervisor overhead excluded"}
	r.Addf("%-15s %-12s %10s %10s %10s", "agent", "framework", "e2e", "peak-mem", "cpu-time")
	for _, a := range agent.Table2() {
		cfg := vm.DefaultConfig(vm.PolicyE2B)
		cfg.Seed = o.Seed
		cfg.Cores = 8
		cfg.Tracer = o.Tracer
		pl, err := vm.New(cfg)
		if err != nil {
			panic(err)
		}
		pl.Launch(0, a)
		pl.Run()
		m := pl.Metrics(a.Name)
		// Table 2's memory column comes from snapshotting: memory unused
		// after initialization and the fixed VM scaffolding are excluded.
		measured := pl.PeakMemory() - cfg.Mem.VMOverhead
		r.Addf("%-15s %-12s %9.1fs %8.0fMB %9.2fs",
			a.Name, a.Framework,
			m.E2E.Mean()/1000, mb(measured), a.TotalCPU().Seconds())
	}
	return r
}

// Table3 reproduces the per-agent LLM token usage.
func Table3(o Options) *Result {
	r := &Result{ID: "table3", Title: "LLM token usage per agent"}
	r.Addf("%-15s %12s %12s", "agent", "input-tok", "output-tok")
	for _, a := range agent.Table2() {
		in, out := a.Tokens()
		r.Addf("%-15s %12d %12d", a.Name, in, out)
	}
	return r
}

// Fig3 reproduces the serverless-vs-LLM relative cost analysis.
func Fig3(o Options) *Result {
	r := &Result{ID: "fig3", Title: "serverless cost relative to LLM cost (Cs / C_LLM)"}
	pr := agent.DefaultPricing()
	for _, a := range agent.Table2() {
		r.Addf("%-15s C_LLM=$%.5f  Cs=$%.5f  relative=%5.1f%%",
			a.Name, agent.LLMCost(a, pr), agent.ServerlessCost(a, pr),
			100*agent.RelativeCost(a, pr))
	}
	return r
}

// Fig23 reproduces the Blackjack startup-latency comparison: one
// sequential start and 10 concurrent starts, per platform.
func Fig23(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "fig23", Title: "Blackjack startup latency (a: sequential, b: 10 concurrent)"}
	bj, err := agent.ByName("blackjack")
	if err != nil {
		panic(err)
	}
	policies := []vm.Policy{vm.PolicyE2B, vm.PolicyE2BPlus, vm.PolicyVanillaCH, vm.PolicyTrEnv}

	for _, pol := range policies {
		// (a) sequential, with the sandbox pool at steady state.
		pl := agentPlatform(o, pol, 20)
		pl.SeedSandboxPool(1)
		pl.Launch(0, bj)
		pl.Run()
		seq := pl.Metrics("blackjack").Startup.Min()

		// (b) 10 concurrent against a steady-state pool.
		pl = agentPlatform(o, pol, 20)
		pl.SeedSandboxPool(10)
		for i := 0; i < 10; i++ {
			pl.Launch(0, bj)
		}
		pl.Run()
		conc := pl.Metrics("blackjack").Startup.Percentile(99)
		r.Addf("%-6s sequential=%8.1fms   10-concurrent p99=%8.1fms", pol, seq, conc)
	}
	return r
}

// Fig24 reproduces the browser-sharing E2E comparison: many instances of
// each browser agent overcommitted onto 20 cores, TrEnv vs TrEnv-S.
func Fig24(o Options) *Result {
	o = o.normalize()
	instances := o.count(200)
	r := &Result{ID: "fig24", Title: "browser sharing under overcommitment (E2E)",
		Notes: "TrEnv-S = TrEnv + shared browsers"}
	for _, name := range []string{"shop-assistant", "blog-summary", "game-design"} {
		a, err := agent.ByName(name)
		if err != nil {
			panic(err)
		}
		run := func(pol vm.Policy) (mean, p99 float64) {
			pl := agentPlatform(o, pol, 20)
			for i := 0; i < instances; i++ {
				pl.Launch(time.Duration(i)*50*time.Millisecond, a)
			}
			pl.Run()
			m := pl.Metrics(name)
			return m.E2E.Mean(), m.E2E.Percentile(99)
		}
		ownMean, ownP99 := run(vm.PolicyTrEnv)
		shMean, shP99 := run(vm.PolicyTrEnvS)
		r.Addf("%-15s x%d  trenv: mean=%7.1fs p99=%7.1fs   trenv-s: mean=%7.1fs p99=%7.1fs  (p99 -%4.1f%%, mean -%4.1f%%)",
			name, instances, ownMean/1000, ownP99/1000, shMean/1000, shP99/1000,
			100*(1-shP99/ownP99), 100*(1-shMean/ownMean))
	}
	return r
}

// Fig25 reproduces the peak-memory comparison across agents and
// platforms.
func Fig25(o Options) *Result {
	o = o.normalize()
	instances := o.count(50)
	r := &Result{ID: "fig25", Title: "peak memory per agent: E2B vs E2B+ vs TrEnv"}
	for _, a := range agent.Table2() {
		peak := func(pol vm.Policy) int64 {
			pl := agentPlatform(o, pol, 20)
			for i := 0; i < instances; i++ {
				pl.Launch(time.Duration(i)*100*time.Millisecond, a)
			}
			pl.Run()
			return pl.PeakMemory()
		}
		e2b := peak(vm.PolicyE2B)
		e2bp := peak(vm.PolicyE2BPlus)
		trenv := peak(vm.PolicyTrEnvS)
		r.Addf("%-15s x%d  e2b=%7.2fGB e2b+=%7.2fGB trenv=%7.2fGB  (saves %4.1f%% vs e2b, %4.1f%% vs e2b+)",
			a.Name, instances, gb(e2b), gb(e2bp), gb(trenv),
			100*(1-float64(trenv)/float64(e2b)), 100*(1-float64(trenv)/float64(e2bp)))
	}
	return r
}

// Fig26 reproduces the memory-over-time curves for Map reduce and Blog
// summary, and the usage x duration cost comparison.
func Fig26(o Options) *Result {
	o = o.normalize()
	instances := o.count(20)
	r := &Result{ID: "fig26", Title: "memory usage during execution (usage x duration cost)"}
	for _, name := range []string{"map-reduce", "blog-summary"} {
		a, err := agent.ByName(name)
		if err != nil {
			panic(err)
		}
		run := func(pol vm.Policy) (peak int64, costGBs float64, end time.Duration) {
			pl := agentPlatform(o, pol, 20)
			for i := 0; i < instances; i++ {
				pl.Launch(time.Duration(i)*100*time.Millisecond, a)
			}
			pl.Run()
			end = pl.Engine().Now()
			g := pl.MemoryGauge()
			return pl.PeakMemory(), g.Integral(0, end) / (1 << 30), end
		}
		e2bPeak, e2bCost, _ := run(vm.PolicyE2B)
		trPeak, trCost, end := run(vm.PolicyTrEnvS)
		r.Addf("%-13s x%d over %v: e2b peak=%6.2fGB cost=%8.0fGBs | trenv peak=%6.2fGB cost=%8.0fGBs (cost -%4.1f%%)",
			name, instances, end.Round(time.Second), gb(e2bPeak), e2bCost, gb(trPeak), trCost,
			100*(1-trCost/e2bCost))
	}
	return r
}
