package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// Fig4's measured starts must emit span trees whose startup phases sum
// exactly to the reported sandbox+restore totals, and the trace must be
// byte-for-byte reproducible for a fixed seed (the -trace contract of
// cmd/trenv-bench).
func TestFig4TraceSpansMatchStartupTotals(t *testing.T) {
	tr := obs.NewTracer(0)
	res := Fig4(Options{Seed: 1, Scale: 0.1, Tracer: tr})
	if len(res.Lines) == 0 {
		t.Fatal("fig4 produced no lines")
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("fig4 recorded no spans")
	}
	measured := 0
	for _, root := range spans {
		if !strings.HasPrefix(root.Name, "startup-split/") {
			continue
		}
		measured++
		if len(root.Children) != 1 || root.Children[0].Name != "startup" {
			t.Fatalf("span %s children = %v, want one startup child", root.Name, root.Children)
		}
		st := root.Children[0]
		if st.Duration() != root.Duration() {
			t.Fatalf("%s: startup %v != measured total %v", root.Name, st.Duration(), root.Duration())
		}
		if st.ChildrenTotal() != st.Duration() {
			t.Fatalf("%s: startup phases sum to %v, want %v", root.Name, st.ChildrenTotal(), st.Duration())
		}
	}
	// 3 policies x (1 + 15) concurrent measured starts.
	if measured != 48 {
		t.Fatalf("measured %d startup-split spans, want 48", measured)
	}
}

func TestFig4TraceDeterministicAcrossRuns(t *testing.T) {
	render := func() []byte {
		tr := obs.NewTracer(0)
		Fig4(Options{Seed: 9, Scale: 0.1, Tracer: tr})
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, tr.Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Fatal("fig4 Chrome trace differs across identical-seed runs")
	}
}

// Result serializes with snake_case keys for trenv-bench -json.
func TestResultJSONTags(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Lines: []string{"a"}}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{`"id":"x"`, `"title":"t"`, `"lines":["a"]`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON %s missing %q", out, want)
		}
	}
	if strings.Contains(out, `"notes"`) {
		t.Fatalf("empty notes should be omitted: %s", out)
	}
}
