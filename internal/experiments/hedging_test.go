package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// TestHedgingPartBTailWin is the acceptance criterion at CI scale: the
// delay-hedged run's end-to-end p99 lands strictly below the unhedged
// run's under the flaky-RDMA + patient-reconnect chaos, with hedges
// demonstrably winning races and zero wedged attempts.
func TestHedgingPartBTailWin(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.1}.normalize()
	dh, err := workload.ProfileByName("DH")
	if err != nil {
		t.Fatal(err)
	}
	tr := poissonTrace(o.Seed+42, dh.Name, 5, o.dur(30*time.Minute))
	hp := cluster.HedgePolicy{Mode: cluster.HedgeDelay, Delay: 400 * time.Millisecond}
	profiles := []workload.FunctionProfile{dh}
	base := runHedged(o, tr, profiles, 0, 0.4, time.Millisecond, hedgeRetry(), true, nil)
	hedged := runHedged(o, tr, profiles, 0, 0.4, time.Millisecond, hedgeRetry(), true, &hp)

	if base.settle.N() != tr.Len() || hedged.settle.N() != tr.Len() {
		t.Fatalf("settled %d/%d of %d invocations; every dispatch must settle", base.settle.N(), hedged.settle.N(), tr.Len())
	}
	if hedged.p99MS() >= base.p99MS() {
		t.Fatalf("hedged p99 %.1fms not strictly below unhedged %.1fms", hedged.p99MS(), base.p99MS())
	}
	if hedged.wins == 0 {
		t.Fatal("no hedge ever won a race; the tail win would be luck, not mechanism")
	}
	if base.wedged != 0 || hedged.wedged != 0 {
		t.Fatalf("wedged base=%d hedged=%d, want 0/0", base.wedged, hedged.wedged)
	}
	if base.hedged != 0 || base.cancelled != 0 {
		t.Fatalf("unhedged run launched %d hedges, cancelled %d; policy bleed-through", base.hedged, base.cancelled)
	}
}

// TestHedgingPartACloneShape checks the PS-model qualitative shape at
// CI scale: clone:2 does no harm at rho=0.1 (within 20% of unhedged
// p99) and melts down near saturation (rho=0.8 p99 at least 3x worse).
func TestHedgingPartACloneShape(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.1}.normalize()
	prof, err := workload.ProfileByName("IR")
	if err != nil {
		t.Fatal(err)
	}
	const serviceSecs = 0.24
	dur := o.dur(4 * time.Minute)
	clone2 := &cluster.HedgePolicy{Mode: cluster.HedgeClone, Clones: 2}
	run := func(rho float64, hp *cluster.HedgePolicy) hedgeRun {
		tr := poissonTrace(o.Seed+41, prof.Name, rho*3/serviceSecs, dur)
		return runHedged(o, tr, []workload.FunctionProfile{prof}, 1, 1, 0, nil, false, hp)
	}
	lowBase, lowClone := run(0.1, nil), run(0.1, clone2)
	if lowClone.p99MS() > lowBase.p99MS()*1.2 {
		t.Fatalf("rho=0.1 clone:2 p99 %.1fms vs unhedged %.1fms; cloning must be near-free on an idle rack",
			lowClone.p99MS(), lowBase.p99MS())
	}
	highBase, highClone := run(0.8, nil), run(0.8, clone2)
	if highClone.p99MS() < highBase.p99MS()*3 {
		t.Fatalf("rho=0.8 clone:2 p99 %.1fms vs unhedged %.1fms; expected a saturation meltdown",
			highClone.p99MS(), highBase.p99MS())
	}
	for _, r := range []hedgeRun{lowBase, lowClone, highBase, highClone} {
		if r.wedged != 0 {
			t.Fatalf("wedged = %d", r.wedged)
		}
	}
}

// TestHedgingExperimentDeterministicAndConcludes: the registered
// experiment renders byte-identical lines across same-seed runs and its
// final line reports the Part B p99 cut.
func TestHedgingExperimentDeterministicAndConcludes(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.1}
	r1 := Hedging(o)
	r2 := Hedging(o)
	if len(r1.Lines) != len(r2.Lines) {
		t.Fatalf("same-seed runs produced %d vs %d lines", len(r1.Lines), len(r2.Lines))
	}
	for i := range r1.Lines {
		if r1.Lines[i] != r2.Lines[i] {
			t.Fatalf("same-seed runs diverge at line %d:\n  %s\n  %s", i, r1.Lines[i], r2.Lines[i])
		}
	}
	last := r1.Lines[len(r1.Lines)-1]
	if !strings.HasPrefix(last, "hedging cuts") {
		t.Fatalf("final line %q; Part B did not conclude with a p99 win", last)
	}
}
