package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// small returns options scaled down for fast CI runs.
func small() Options { return Options{Seed: 1, Scale: 0.12} }

func runAndCheck(t *testing.T, id string) *Result {
	t.Helper()
	run, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	r := run(small())
	if r.ID != id {
		t.Fatalf("result ID %q, want %q", r.ID, id)
	}
	if len(r.Lines) == 0 {
		t.Fatalf("%s produced no lines", id)
	}
	if !strings.Contains(r.String(), r.Title) {
		t.Fatalf("%s: String() missing title", id)
	}
	return r
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig3", "fig4", "fig10",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
		"fig24", "fig25", "fig26", "ablations", "sensitivity", "availability",
		"incidents", "prefetch", "hedging", "sharding"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, w := range want {
		if all[i].ID != w {
			t.Fatalf("experiment %d = %q, want %q", i, all[i].ID, w)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestTable1(t *testing.T) {
	r := runAndCheck(t, "table1")
	if len(r.Lines) != 6 {
		t.Fatalf("table1 lines = %d", len(r.Lines))
	}
}

func TestTable2(t *testing.T) {
	r := runAndCheck(t, "table2")
	if len(r.Lines) != 7 { // header + 6 agents
		t.Fatalf("table2 lines = %d", len(r.Lines))
	}
}

func TestTable3(t *testing.T) {
	r := runAndCheck(t, "table3")
	if !strings.Contains(strings.Join(r.Lines, "\n"), "75121") {
		t.Fatal("game-design token count missing")
	}
}

func TestFig3(t *testing.T) { runAndCheck(t, "fig3") }

func TestFig4(t *testing.T) {
	r := runAndCheck(t, "fig4")
	if len(r.Lines) != 6 {
		t.Fatalf("fig4 lines = %d", len(r.Lines))
	}
}

func TestFig10(t *testing.T) {
	r := runAndCheck(t, "fig10")
	if len(r.Lines) != 10 {
		t.Fatalf("fig10 lines = %d", len(r.Lines))
	}
}

func TestFig17SmallScale(t *testing.T) {
	r := runAndCheck(t, "fig17")
	// Both workloads present with speedup summaries.
	s := strings.Join(r.Lines, "\n")
	if !strings.Contains(s, "W1") || !strings.Contains(s, "W2") {
		t.Fatal("missing workload sections")
	}
	if !strings.Contains(s, "speedup") {
		t.Fatal("missing speedup summary")
	}
}

func TestFig18SmallScale(t *testing.T) {
	r := runAndCheck(t, "fig18")
	s := strings.Join(r.Lines, "\n")
	for _, frag := range []string{"W1", "W2", "Azure", "Huawei", "IR", "IFR"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("fig18 missing %q", frag)
		}
	}
}

func TestFig19(t *testing.T) {
	r := runAndCheck(t, "fig19")
	if len(r.Lines) != 10 {
		t.Fatalf("fig19 lines = %d", len(r.Lines))
	}
}

func TestFig20(t *testing.T) { runAndCheck(t, "fig20") }

func TestFig21(t *testing.T) {
	r := runAndCheck(t, "fig21")
	if len(r.Lines) != 10 { // 2 functions x 5 configurations
		t.Fatalf("fig21 lines = %d", len(r.Lines))
	}
}

func TestFig22(t *testing.T) { runAndCheck(t, "fig22") }

func TestFig23(t *testing.T) {
	r := runAndCheck(t, "fig23")
	if len(r.Lines) != 4 {
		t.Fatalf("fig23 lines = %d", len(r.Lines))
	}
}

func TestFig24(t *testing.T) { runAndCheck(t, "fig24") }
func TestFig25(t *testing.T) { runAndCheck(t, "fig25") }
func TestFig26(t *testing.T) { runAndCheck(t, "fig26") }

func TestDeterministicAcrossRuns(t *testing.T) {
	run, _ := ByID("fig17")
	a := run(small()).String()
	b := run(small()).String()
	if a != b {
		t.Fatal("fig17 not deterministic for a fixed seed")
	}
}

func TestAblations(t *testing.T) {
	r := runAndCheck(t, "ablations")
	s := strings.Join(r.Lines, "\n")
	for _, frag := range []string{"hot-fraction", "promotion", "EPT", "dedup", "clean-state"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("ablations missing %q", frag)
		}
	}
}

func TestSensitivityOrderingsSurvive(t *testing.T) {
	r := runAndCheck(t, "sensitivity")
	if len(r.Lines) != 12 { // 4 knobs x 3 factors
		t.Fatalf("sensitivity lines = %d", len(r.Lines))
	}
	// Every row must keep T-CXL at least as fast as CRIU at p99.
	for _, line := range r.Lines {
		var cxl, reap, criu float64
		if _, err := fmt.Sscanf(line[strings.Index(line, "t-cxl="):],
			"t-cxl=%fms reap+=%fms criu=%fms", &cxl, &reap, &criu); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		if criu < cxl {
			t.Fatalf("CRIU beat T-CXL under %q", line)
		}
	}
}

// TestPrefetchExperimentWins is the PR's acceptance assertion: with the
// same seed and trace, the prefetch-on run must show a lower P99
// restore cost and fewer demand remote faults than the prefetch-off
// run, with the batched replay actually exercised.
func TestPrefetchExperimentWins(t *testing.T) {
	o := small().normalize()
	tr := azureTrace(o)
	on := runPrefetch(o, tr, true)
	off := runPrefetch(o, tr, false)
	if on.invocations != off.invocations {
		t.Fatalf("runs diverged: %d vs %d invocations", on.invocations, off.invocations)
	}
	if on.restoreP99 >= off.restoreP99 {
		t.Fatalf("prefetch did not lower restore p99: %.2f >= %.2f", on.restoreP99, off.restoreP99)
	}
	if on.demandPages >= off.demandPages {
		t.Fatalf("prefetch did not reduce demand faults: %d >= %d", on.demandPages, off.demandPages)
	}
	if on.batches == 0 || on.hits == 0 || on.prefetchPages == 0 {
		t.Fatalf("replay idle: batches=%d hits=%d pages=%d", on.batches, on.hits, on.prefetchPages)
	}
	if off.batches != 0 || off.prefetchPages != 0 {
		t.Fatalf("off run prefetched: batches=%d pages=%d", off.batches, off.prefetchPages)
	}
}

func TestPrefetchExperimentRuns(t *testing.T) {
	r := runAndCheck(t, "prefetch")
	s := strings.Join(r.Lines, "\n")
	for _, frag := range []string{"prefetch-on", "prefetch-off", "restore p99", "fewer"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("prefetch result missing %q:\n%s", frag, s)
		}
	}
}

func TestSharding(t *testing.T) {
	r := runAndCheck(t, "sharding")
	// header + reference row + one row per worker count + sim-time
	// footer; a divergence line would push the count past 6.
	if len(r.Lines) != 6 {
		t.Fatalf("sharding lines = %d, want 6:\n%s", len(r.Lines), r)
	}
	for _, l := range r.Lines {
		if strings.Contains(l, "DIVERGENCE") {
			t.Fatalf("sharded schedule diverged across worker counts:\n%s", r)
		}
	}
	// The -shards knob moves physical parallelism only: a run at 8
	// workers must render byte-identically to the sequential run.
	o := small()
	o.Shards = 8
	if got, want := Sharding(o).String(), r.String(); got != want {
		t.Fatalf("sharding output depends on Options.Shards:\n--- shards=8\n%s--- shards=0\n%s", got, want)
	}
}
