package experiments

import (
	"strings"
	"time"

	"repro/internal/alert"
	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/workload"
)

// incidentsSLOTarget is the end-to-end latency objective the incidents
// run tracks, so the slo-burn rule has a budget to burn during the
// outage window. Generous against the healthy p99, tight against
// retry-storm tails.
const incidentsSLOTarget = 2 * time.Second

// Incidents re-runs the PR 4 availability chaos scenario (recovery on)
// with the alert engine attached and emits the incident timeline: the
// rule set detects the pool outage (fallback storm), the circuit
// breakers opening, and the recovery, each transition stamped with
// virtual time and each firing captured as an incident linking the
// worst invocations' trace IDs. Same seed, same timeline, byte for
// byte — an alerting pipeline you can regression-test.
func Incidents(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "incidents", Title: "incident timeline under memory-server outage + flaky fetches + node crash",
		Notes: "3-node rack, Azure-like trace, availability chaos schedule, recovery on; rules: " + ruleSummary(o)}
	tr := azureTrace(o)

	tracer := o.Tracer
	if tracer == nil {
		// Incidents must link trace IDs even when the caller did not ask
		// for trace export, so the experiment always records spans.
		tracer = obs.NewTracer(0)
	}

	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = o.Seed
	cfg.KeepAlive = o.dur(10 * time.Minute)
	cfg.Warmup = o.dur(5 * time.Minute)
	cfg.SoftMemCap = 64 << 30
	cfg.HotFraction = 0.4 // keep lazy rdma fetches on the critical path (see availability.go)
	cfg.Tracer = tracer
	cfg.SLOTarget = incidentsSLOTarget
	c, err := cluster.New(3, cfg)
	if err != nil {
		panic("experiments: incidents cluster: " + err.Error())
	}
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			panic("experiments: incidents register: " + err.Error())
		}
	}

	inj := fault.NewInjector(c.Engine(), o.Seed, availabilityScenario(tr.Duration()))
	inj.SetTracer(tracer)
	c.AttachChaos(inj)

	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	var rec *obs.Recorder
	every := time.Duration(0)
	if o.Recorders != nil {
		rec = o.Recorders.Track("incidents/availability", reg)
		every = o.Recorders.Every()
	} else {
		rec = obs.NewRecorder(reg, 0)
	}
	c.AttachRecorder(rec, every)

	var ae *alert.Engine
	if o.Alerts != nil {
		ae = o.Alerts.Track("incidents/availability")
	} else {
		ae = alert.New(alert.DefaultRules())
	}
	ae.RegisterMetrics(reg, nil)
	c.AttachAlerts(ae)

	c.RunTrace(tr)

	r.Addf("rules=%d evals=%d fired=%d firing-at-end=%d incidents=%d wedged=%d",
		len(ae.Rules()), ae.Evals(), ae.FiredTotal(), ae.Firing(), len(ae.Incidents()), c.Wedged())
	for _, line := range ae.TimelineLines() {
		r.Lines = append(r.Lines, line)
	}
	for _, inc := range ae.Incidents() {
		end := "still firing"
		if inc.Resolved {
			end = formatSecs(inc.ResolvedMS) + " resolved"
		}
		var traces []string
		for _, w := range inc.Worst {
			tag := w.TraceID
			if w.Function != "" {
				tag += "(" + w.Function + ")"
			}
			if w.Error != "" {
				tag += "!"
			}
			traces = append(traces, tag)
		}
		link := "no trace links"
		if len(traces) > 0 {
			link = "traces " + strings.Join(traces, " ")
		}
		r.Addf("incident %s rule=%s fired@%s -> %s: %s", inc.ID, inc.Rule, formatSecs(inc.FiringMS), end, link)
	}
	return r
}

// ruleSummary names the rules in play for the result header.
func ruleSummary(o Options) string {
	rules := alert.DefaultRules()
	if o.Alerts != nil {
		rules = o.Alerts.Rules()
	}
	names := make([]string, 0, len(rules))
	for _, r := range rules {
		names = append(names, r.Name)
	}
	return strings.Join(names, ",")
}

func formatSecs(ms float64) string {
	d := time.Duration(ms * float64(time.Millisecond))
	return d.Truncate(time.Millisecond).String()
}
