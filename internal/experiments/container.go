package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/workload"
)

func fnNames() []string {
	var out []string
	for _, p := range workload.Table4() {
		out = append(out, p.Name)
	}
	return out
}

// containerPlatform builds a registered platform for a policy.
func containerPlatform(o Options, pol faas.Policy, softCap int64) *faas.Platform {
	cfg := faas.DefaultConfig(pol)
	cfg.Seed = o.Seed
	cfg.KeepAlive = o.dur(10 * time.Minute)
	cfg.Warmup = o.dur(5 * time.Minute)
	cfg.SoftMemCap = softCap
	cfg.Tracer = o.Tracer
	cfg.Prefetch = o.Prefetch
	pl := faas.New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			panic(fmt.Sprintf("experiments: register %s: %v", p.Name, err))
		}
	}
	if inj := o.chaosInjector(pl.Engine()); inj != nil {
		pl.AttachFaults(inj)
		inj.OnNodeCrash(func(name string) {
			if name == pl.NodeName() {
				pl.Crash()
			}
		})
		inj.Arm()
	}
	return pl
}

func w1Trace(o Options) workload.Trace {
	cfg := workload.DefaultW1(fnNames())
	cfg.Duration = o.dur(cfg.Duration)
	cfg.BurstGap = o.dur(cfg.BurstGap)
	return workload.W1Bursty(rand.New(rand.NewSource(o.Seed)), cfg)
}

func w2Trace(o Options) workload.Trace {
	cfg := workload.DefaultW2(fnNames())
	cfg.Duration = o.dur(cfg.Duration)
	cfg.Period = o.dur(cfg.Period)
	return workload.W2Diurnal(rand.New(rand.NewSource(o.Seed+1)), cfg)
}

func azureTrace(o Options) workload.Trace {
	cfg := workload.AzureConfig(fnNames())
	cfg.Duration = o.dur(cfg.Duration)
	return workload.Industrial(rand.New(rand.NewSource(o.Seed+2)), cfg)
}

func huaweiTrace(o Options) workload.Trace {
	cfg := workload.HuaweiConfig(fnNames())
	cfg.Duration = o.dur(cfg.Duration)
	return workload.Industrial(rand.New(rand.NewSource(o.Seed+3)), cfg)
}

// fig17Policies are the systems compared on the container platform.
func fig17Policies() []faas.Policy {
	return []faas.Policy{
		faas.PolicyFaasd, faas.PolicyCRIU,
		faas.PolicyREAPPlus, faas.PolicyFaaSnapPlus,
		faas.PolicyTrEnvRDMA, faas.PolicyTrEnvCXL,
	}
}

// Table1 reproduces the component-cost table: creation cost of each
// sandbox unit at 1 and 15 concurrent cold starts versus TrEnv's
// reuse/reconfigure path.
func Table1(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "table1", Title: "container component overheads vs TrEnv's solution"}

	measure := func(concurrent int) (net, rootfs, cgCreate, cgMigrate, other time.Duration) {
		f := sandbox.NewFactory(sandbox.DefaultCostModel())
		e := sim.NewEngine(o.Seed)
		for i := 0; i < concurrent; i++ {
			last := i == concurrent-1
			e.Go("create", func(p *sim.Proc) {
				_, b := f.Create(p, "fn")
				if last {
					net, rootfs, cgCreate, cgMigrate, other = b.NetNS, b.Rootfs, b.CgroupCreate, b.CgroupMigrate, b.Other
				}
			})
		}
		e.Run()
		return
	}
	n1, rf1, cc1, cm1, ot1 := measure(1)
	n15, rf15, cc15, cm15, ot15 := measure(15)

	// TrEnv's side: clean + repurpose cost on a pooled sandbox.
	f := sandbox.NewFactory(sandbox.DefaultCostModel())
	e := sim.NewEngine(o.Seed)
	var repurpose time.Duration
	e.Go("repurpose", func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		f.Clean(p, sb)
		p.Sleep(5 * time.Millisecond)
		d, err := f.Repurpose(p, sb, "fnB")
		if err != nil {
			panic(err)
		}
		repurpose = d
	})
	e.Run()

	r.Addf("%-14s %14s %14s   %s", "unit", "create @1", "create @15", "TrEnv solution")
	r.Addf("%-14s %14s %14s   %s", "network", n1.Round(time.Millisecond), n15.Round(time.Millisecond), "direct reuse (0 ms)")
	r.Addf("%-14s %14s %14s   reuse+reconfig (%s)", "rootfs", rf1.Round(time.Millisecond), rf15.Round(time.Millisecond), repurpose.Round(100*time.Microsecond))
	r.Addf("%-14s %14s %14s   CLONE_INTO_CGROUP (100-300 us)", "cgroup-create", cc1.Round(time.Millisecond), cc15.Round(time.Millisecond))
	r.Addf("%-14s %14s %14s   (bypassed at spawn)", "cgroup-migrate", cm1.Round(time.Millisecond), cm15.Round(time.Millisecond))
	r.Addf("%-14s %14s %14s   create (cheap)", "other-ns", ot1.Round(100*time.Microsecond), ot15.Round(100*time.Microsecond))
	return r
}

// Fig4 reproduces the startup-latency breakdown for a Python function
// (JS): cold start vs CRIU restore vs TrEnv, at 1 and 15 concurrent
// starts.
func Fig4(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "fig4", Title: "startup breakdown for a Python function (JS)",
		Notes: "sandbox = isolation env, restore = bootstrap/memory restore"}

	for _, concurrent := range []int{1, 15} {
		for _, pol := range []faas.Policy{faas.PolicyFaasd, faas.PolicyCRIU, faas.PolicyTrEnvCXL} {
			sb, rest := startupSplit(o, pol, concurrent)
			r.Addf("@%-2d %-10s sandbox=%8.1fms  restore=%8.1fms  total=%8.1fms",
				concurrent, pol, sb, rest, sb+rest)
		}
	}
	return r
}

// startupSplit measures one startup's sandbox/restore split directly via
// the runtime paths.
func startupSplit(o Options, pol faas.Policy, concurrent int) (sbMs, restMs float64) {
	cfg := faas.DefaultConfig(pol)
	cfg.Seed = o.Seed
	cfg.Tracer = o.Tracer
	pl := faas.New(cfg)
	js, _ := workload.ProfileByName("JS")
	pl.Register(js)
	if pol.IsTrEnv() {
		// Seed the universal pool with cleaned sandboxes so the measured
		// path is repurposing (the steady state).
		eng := pl.Engine()
		for i := 0; i < concurrent; i++ {
			eng.Go("seed", func(p *sim.Proc) {
				in, _, err := pl.Runtime().StartCold(p, js)
				if err != nil {
					panic(err)
				}
				pl.Runtime().Release(p, in, true)
			})
		}
		eng.Run()
	}
	eng := pl.Engine()
	var last struct{ sb, rest time.Duration }
	for i := 0; i < concurrent; i++ {
		isLast := i == concurrent-1
		eng.Go("measure", func(p *sim.Proc) {
			t0 := p.Now()
			var st core.Startup
			var err error
			switch pol {
			case faas.PolicyFaasd:
				_, st, err = pl.Runtime().StartCold(p, js)
			case faas.PolicyCRIU:
				_, st, err = pl.Runtime().StartCRIU(p, js, js.Snapshot())
			default:
				_, st, err = pl.Runtime().StartTrEnv(p, js, pl.Store().Image(js.Name))
			}
			if err != nil {
				panic(err)
			}
			if o.Tracer != nil {
				root := obs.NewSpan("startup-split/"+js.Name, t0, t0+st.Total())
				root.SetAttr("policy", string(pol))
				root.Children = append(root.Children, core.StartupSpan(st, t0))
				o.Tracer.Record(root)
			}
			if isLast {
				last.sb, last.rest = st.Sandbox, st.Restore
			}
		})
	}
	eng.Run()
	return ms(last.sb), ms(last.rest)
}

// Fig10 reproduces the read-only vs written page ratios per function.
func Fig10(o Options) *Result {
	r := &Result{ID: "fig10", Title: "read-only vs written page ratio per function",
		Notes: "paper span: 24%-90% read-only"}
	for _, p := range workload.Table4() {
		touched := p.TouchedPages()
		written := int(float64(p.ImagePages()) * p.WriteFrac)
		ro := p.ReadOnlyRatio()
		r.Addf("%-4s touched=%7d pages  written=%7d  read-only=%5.1f%%",
			p.Name, touched, written, ro*100)
	}
	return r
}

type wlRun struct {
	name  string
	trace func(Options) workload.Trace
	cap   int64
}

func fig17Workloads() []wlRun {
	return []wlRun{
		{"W1", w1Trace, 64 << 30},
		{"W2", w2Trace, 3 << 30},
	}
}

// Fig17 reproduces the E2E latency distributions under W1 (bursty) and
// W2 (diurnal, 32 GB soft cap) for all six systems.
func Fig17(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "fig17", Title: "E2E latency under W1 (bursty) and W2 (diurnal, tight memory cap)"}
	for _, wl := range fig17Workloads() {
		tr := wl.trace(o)
		r.Addf("-- %s: %d invocations over %v --", wl.name, tr.Len(), tr.Duration().Round(time.Second))
		p99 := map[faas.Policy]float64{}
		perFnP99 := map[faas.Policy]map[string]float64{}
		for _, pol := range fig17Policies() {
			pl := containerPlatform(o, pol, wl.cap)
			o.observe(fmt.Sprintf("fig17/%s/%s", wl.name, pol), pl)
			pl.RunTrace(tr)
			m := pl.Metrics()
			p99[pol] = m.All.E2E.Percentile(99)
			perFnP99[pol] = map[string]float64{}
			for _, fn := range fnNames() {
				if fm := m.Fn(fn); fm.E2E.N() > 0 {
					perFnP99[pol][fn] = fm.E2E.Percentile(99)
				}
			}
			r.Addf("%-11s p50=%8.1fms p75=%8.1fms p99=%9.1fms (n=%d, warm=%d, evict=%d)",
				pol, m.All.E2E.Percentile(50), m.All.E2E.Percentile(75), p99[pol],
				m.Invocations(), m.WarmHits.Value(), m.Evictions.Value())
		}
		r.Addf("T-CXL aggregate p99 speedup: %.2fx vs REAP+, %.2fx vs FaaSnap+, %.2fx vs CRIU",
			p99[faas.PolicyREAPPlus]/p99[faas.PolicyTrEnvCXL],
			p99[faas.PolicyFaaSnapPlus]/p99[faas.PolicyTrEnvCXL],
			p99[faas.PolicyCRIU]/p99[faas.PolicyTrEnvCXL])
		loR, hiR := speedupRange(perFnP99[faas.PolicyREAPPlus], perFnP99[faas.PolicyTrEnvCXL])
		loF, hiF := speedupRange(perFnP99[faas.PolicyFaaSnapPlus], perFnP99[faas.PolicyTrEnvCXL])
		r.Addf("T-CXL per-function p99 speedup: %.2fx-%.2fx vs REAP+, %.2fx-%.2fx vs FaaSnap+ (paper: 1.11-5.69x / 1.17-18x)",
			loR, hiR, loF, hiF)
	}
	return r
}

// Fig18 reproduces (a) peak memory across the four workloads and (b)
// memory when starting 50 instances of IR and IFR.
func Fig18(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "fig18", Title: "peak memory usage (a: workloads, b: 50-instance start)"}
	workloads := []wlRun{
		{"W1", w1Trace, 64 << 30},
		{"W2", w2Trace, 3 << 30},
		{"Azure", azureTrace, 64 << 30},
		{"Huawei", huaweiTrace, 64 << 30},
	}
	for _, wl := range workloads {
		tr := wl.trace(o)
		peaks := map[faas.Policy]int64{}
		for _, pol := range fig17Policies() {
			pl := containerPlatform(o, pol, wl.cap)
			o.observe(fmt.Sprintf("fig18/%s/%s", wl.name, pol), pl)
			pl.RunTrace(tr)
			peaks[pol] = pl.PeakMemory()
		}
		tcxl := peaks[faas.PolicyTrEnvCXL]
		r.Addf("(a) %-7s faasd=%6.2fGB criu=%6.2fGB reap+=%6.2fGB faasnap+=%6.2fGB t-rdma=%6.2fGB t-cxl=%6.2fGB",
			wl.name, gb(peaks[faas.PolicyFaasd]), gb(peaks[faas.PolicyCRIU]),
			gb(peaks[faas.PolicyREAPPlus]), gb(peaks[faas.PolicyFaaSnapPlus]),
			gb(peaks[faas.PolicyTrEnvRDMA]), gb(tcxl))
		r.Addf("    %-7s t-cxl saves %4.1f%% vs faasd, %4.1f%% vs criu, %4.1f%% vs reap+, %4.1f%% vs faasnap+",
			wl.name,
			100*(1-float64(tcxl)/float64(peaks[faas.PolicyFaasd])),
			100*(1-float64(tcxl)/float64(peaks[faas.PolicyCRIU])),
			100*(1-float64(tcxl)/float64(peaks[faas.PolicyREAPPlus])),
			100*(1-float64(tcxl)/float64(peaks[faas.PolicyFaaSnapPlus])))
	}
	// (b) 50 concurrent instance starts.
	for _, fn := range []string{"IR", "IFR"} {
		for _, pol := range []faas.Policy{faas.PolicyREAPPlus, faas.PolicyFaaSnapPlus, faas.PolicyTrEnvRDMA, faas.PolicyTrEnvCXL} {
			pl := containerPlatform(o, pol, 0)
			for i := 0; i < 50; i++ {
				pl.Invoke(time.Duration(i)*10*time.Millisecond, fn)
			}
			pl.Engine().Run()
			cxl, rdma, tmpfs := pl.PoolUsage()
			r.Addf("(b) %-3s x50 %-11s node=%7.2fGB pools(cxl/rdma/tmpfs)=%.2f/%.2f/%.2fGB",
				fn, pol, gb(pl.PeakMemory()), gb(cxl), gb(rdma), gb(tmpfs))
		}
	}
	return r
}

// Fig19 reproduces the no-concurrency normalized E2E latency with its
// startup component.
func Fig19(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "fig19", Title: "E2E latency without concurrency (startup | exec)",
		Notes: "each start is fresh (keep-alive expired); normalized to REAP+"}
	type cell struct{ startup, e2e float64 }
	rows := map[string]map[faas.Policy]cell{}
	policies := []faas.Policy{faas.PolicyCRIU, faas.PolicyREAPPlus, faas.PolicyFaaSnapPlus, faas.PolicyTrEnvRDMA, faas.PolicyTrEnvCXL}
	for _, pol := range policies {
		cfg := faas.DefaultConfig(pol)
		cfg.Seed = o.Seed
		cfg.KeepAlive = 5 * time.Second // expire between invocations
		cfg.Warmup = 105 * time.Second  // exclude the whole first round
		cfg.Tracer = o.Tracer
		pl := faas.New(cfg)
		for _, p := range workload.Table4() {
			pl.Register(p)
		}
		// Three sequential rounds per function, spaced past keep-alive.
		at := time.Duration(0)
		for round := 0; round < 3; round++ {
			for _, fn := range fnNames() {
				pl.Invoke(at, fn)
				at += 10 * time.Second
			}
		}
		pl.Engine().Run()
		for _, fn := range fnNames() {
			m := pl.Metrics().Fn(fn)
			if rows[fn] == nil {
				rows[fn] = map[faas.Policy]cell{}
			}
			rows[fn][pol] = cell{m.Startup.Mean(), m.E2E.Mean()}
		}
	}
	for _, fn := range fnNames() {
		base := rows[fn][faas.PolicyREAPPlus].e2e
		line := fmt.Sprintf("%-4s", fn)
		for _, pol := range policies {
			c := rows[fn][pol]
			line += fmt.Sprintf("  %s=%.2f(st %.2f)", pol, c.e2e/base, c.startup/base)
		}
		r.Lines = append(r.Lines, line)
	}
	return r
}

// Fig20 reproduces the industrial-trace P99 comparison normalized to
// REAP+.
func Fig20(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "fig20", Title: "P99 E2E on Azure-like and Huawei-like traces (normalized to REAP+)"}
	for _, wl := range []wlRun{{"Azure", azureTrace, 64 << 30}, {"Huawei", huaweiTrace, 64 << 30}} {
		tr := wl.trace(o)
		perFn := map[faas.Policy]map[string]float64{}
		for _, pol := range []faas.Policy{faas.PolicyREAPPlus, faas.PolicyFaaSnapPlus, faas.PolicyTrEnvRDMA, faas.PolicyTrEnvCXL} {
			pl := containerPlatform(o, pol, wl.cap)
			o.observe(fmt.Sprintf("fig20/%s/%s", wl.name, pol), pl)
			pl.RunTrace(tr)
			perFn[pol] = map[string]float64{}
			for _, fn := range fnNames() {
				perFn[pol][fn] = pl.Metrics().Fn(fn).E2E.Percentile(99)
			}
		}
		r.Addf("-- %s (%d invocations) --", wl.name, tr.Len())
		for _, fn := range fnNames() {
			base := perFn[faas.PolicyREAPPlus][fn]
			if base == 0 {
				continue
			}
			r.Addf("%-4s reap+=1.00 faasnap+=%.2f t-rdma=%.2f t-cxl=%.2f (t-cxl speedup %.2fx)",
				fn,
				perFn[faas.PolicyFaaSnapPlus][fn]/base,
				perFn[faas.PolicyTrEnvRDMA][fn]/base,
				perFn[faas.PolicyTrEnvCXL][fn]/base,
				base/perFn[faas.PolicyTrEnvCXL][fn])
		}
	}
	return r
}

// Fig21 reproduces the optimization-step ablation on IR and JS.
func Fig21(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "fig21", Title: "ablation: +Reconfig, +Cgroup, +mm-template (E2E, fresh starts)",
		Notes: "FaaSnap+ shown as the reference line"}
	policies := []faas.Policy{faas.PolicyCRIU, faas.PolicyReconfig, faas.PolicyCgroup, faas.PolicyTrEnvCXL, faas.PolicyFaaSnapPlus}
	labels := map[faas.Policy]string{
		faas.PolicyCRIU: "criu-base", faas.PolicyReconfig: "+reconfig",
		faas.PolicyCgroup: "+cgroup", faas.PolicyTrEnvCXL: "+mm-template",
		faas.PolicyFaaSnapPlus: "faasnap+",
	}
	for _, fn := range []string{"IR", "JS"} {
		for _, pol := range policies {
			cfg := faas.DefaultConfig(pol)
			cfg.Seed = o.Seed
			cfg.KeepAlive = 5 * time.Second
			cfg.Warmup = 10 * time.Second // exclude only the pool-seeding start
			cfg.Tracer = o.Tracer
			pl := faas.New(cfg)
			prof, _ := workload.ProfileByName(fn)
			pl.Register(prof)
			at := time.Duration(0)
			for i := 0; i < 4; i++ {
				pl.Invoke(at, fn)
				at += 15 * time.Second
			}
			pl.Engine().Run()
			m := pl.Metrics().Fn(fn)
			r.Addf("%-3s %-13s startup=%8.1fms e2e=%8.1fms", fn, labels[pol], m.Startup.Mean(), m.E2E.Mean())
		}
	}
	return r
}

// Fig22 reproduces the T-CXL vs T-RDMA execution-latency comparison.
func Fig22(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "fig22", Title: "execution latency: T-CXL vs T-RDMA (P75/P99)",
		Notes: "W1 bursty workload: executions follow fresh template attaches"}
	tr := w1Trace(o)
	exec := map[faas.Policy]map[string]*sim.Histogram{}
	for _, pol := range []faas.Policy{faas.PolicyTrEnvCXL, faas.PolicyTrEnvRDMA} {
		pl := containerPlatform(o, pol, 64<<30)
		o.observe(fmt.Sprintf("fig22/%s", pol), pl)
		pl.RunTrace(tr)
		exec[pol] = map[string]*sim.Histogram{}
		for _, fn := range fnNames() {
			exec[pol][fn] = &pl.Metrics().Fn(fn).Exec
		}
	}
	for _, fn := range fnNames() {
		c := exec[faas.PolicyTrEnvCXL][fn]
		d := exec[faas.PolicyTrEnvRDMA][fn]
		if c.N() == 0 || d.N() == 0 {
			continue
		}
		r.Addf("%-4s p75: cxl=%8.1fms rdma=%8.1fms (%.2fx)   p99: cxl=%8.1fms rdma=%8.1fms (%.2fx)",
			fn, c.Percentile(75), d.Percentile(75), d.Percentile(75)/c.Percentile(75),
			c.Percentile(99), d.Percentile(99), d.Percentile(99)/c.Percentile(99))
	}
	return r
}

// speedupRange returns the min and max per-function p99 speedup of
// reference over target.
func speedupRange(ref, target map[string]float64) (lo, hi float64) {
	lo, hi = 0, 0
	for fn, r := range ref {
		t, ok := target[fn]
		if !ok || t == 0 {
			continue
		}
		s := r / t
		if lo == 0 || s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return lo, hi
}
