package experiments

import (
	"strings"
	"testing"

	"repro/internal/alert"
	"repro/internal/obs"
)

func runIncidents(t *testing.T) (*Result, *alert.Set, *obs.Tracer) {
	t.Helper()
	tr := obs.NewTracer(0)
	set := alert.NewSet(alert.DefaultRules())
	res := Incidents(Options{Seed: 1, Scale: 0.1, Tracer: tr, Recorders: obs.NewRecorderSet(0, 0), Alerts: set})
	return res, set, tr
}

func TestIncidentsTimelineFiresAndLinksTraces(t *testing.T) {
	res, set, tr := runIncidents(t)
	out := res.String()
	for _, want := range []string{"pending", "firing", "resolved", "wedged=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}

	spanTraces := map[string]bool{}
	for _, sp := range tr.Spans() {
		spanTraces[sp.TraceID] = true
	}
	set.Each(func(run string, eng *alert.Engine) {
		if run != "incidents/availability" {
			t.Fatalf("run name = %q", run)
		}
		if eng.FiredTotal() == 0 || len(eng.Incidents()) == 0 {
			t.Fatalf("no incidents captured: fired=%d", eng.FiredTotal())
		}
		for _, inc := range eng.Incidents() {
			if len(inc.Worst) == 0 {
				t.Fatalf("incident %s (%s) has no trace links", inc.ID, inc.Rule)
			}
			resolvable := 0
			for _, w := range inc.Worst {
				if spanTraces[w.TraceID] {
					resolvable++
				}
			}
			if resolvable == 0 {
				t.Fatalf("incident %s links no trace ID resolvable in the run's span list", inc.ID)
			}
		}
	})
}

func TestIncidentsDeterministicPerSeed(t *testing.T) {
	a, _, _ := runIncidents(t)
	b, _, _ := runIncidents(t)
	if a.String() != b.String() {
		t.Fatalf("same-seed incident timelines differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestIncidentsDefaultOptions(t *testing.T) {
	// Without recorders/alerts/tracer the experiment builds its own and
	// still produces a timeline.
	res := Incidents(Options{Seed: 1, Scale: 0.1})
	if !strings.Contains(res.String(), "firing") {
		t.Fatalf("no firing transition:\n%s", res)
	}
}

func TestIncidentsReportEmbedsAlerts(t *testing.T) {
	tr := obs.NewTracer(0)
	set := alert.NewSet(alert.DefaultRules())
	o := Options{Seed: 1, Scale: 0.1, Tracer: tr, Recorders: obs.NewRecorderSet(0, 0), Alerts: set}
	res := Incidents(o)
	rep := BuildReport([]string{"incidents"}, o, []*Result{res}, true)
	if rep.Flags["alerts"] != "on" {
		t.Fatalf("flags = %v", rep.Flags)
	}
	if len(rep.Alerts) != len(alert.DefaultRules()) {
		t.Fatalf("alert records = %d, want one per rule", len(rep.Alerts))
	}
	fired := false
	for _, ar := range rep.Alerts {
		if ar.Run != "incidents/availability" {
			t.Fatalf("record run = %q", ar.Run)
		}
		if ar.Fired > 0 {
			fired = true
			if len(ar.Incidents) == 0 {
				t.Fatalf("fired rule %s has no incidents in the bundle", ar.Rule)
			}
		}
	}
	if !fired {
		t.Fatal("no rule fired in the bundle")
	}
}
