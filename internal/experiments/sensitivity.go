package experiments

import (
	"time"

	"repro/internal/faas"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Sensitivity stresses the calibration: the latency constants the model
// takes from the paper's testbed (CXL access gap, RDMA fetch, uffd
// service cost, restore-copy bandwidth) are scaled up and down and the
// W1 headline comparison re-run. The reproduction's claims hold if the
// *orderings* survive even when the constants are off by 2x in either
// direction.
func Sensitivity(o Options) *Result {
	o = o.normalize()
	r := &Result{ID: "sensitivity", Title: "calibration sensitivity (W1 p99, T-CXL vs baselines)",
		Notes: "each row scales one latency constant; orderings should survive 0.5x-2x"}
	tr := w1Trace(o)

	run := func(lat mem.LatencyModel, pol faas.Policy) float64 {
		cfg := faas.DefaultConfig(pol)
		cfg.Seed = o.Seed
		cfg.KeepAlive = o.dur(10 * time.Minute)
		cfg.Warmup = o.dur(5 * time.Minute)
		cfg.Latency = &lat
		cfg.Tracer = o.Tracer
		pl := faas.New(cfg)
		for _, p := range workload.Table4() {
			pl.Register(p)
		}
		pl.RunTrace(tr)
		return pl.Metrics().All.E2E.Percentile(99)
	}

	type knob struct {
		name  string
		apply func(*mem.LatencyModel, float64)
	}
	knobs := []knob{
		{"cxl-access", func(m *mem.LatencyModel, f float64) {
			m.CXLDirectAccess = time.Duration(float64(m.CXLDirectAccess) * f)
		}},
		{"rdma-fetch", func(m *mem.LatencyModel, f float64) {
			m.RDMAFetch = time.Duration(float64(m.RDMAFetch) * f)
		}},
		{"uffd-fetch", func(m *mem.LatencyModel, f float64) {
			m.TmpfsFetch = time.Duration(float64(m.TmpfsFetch) * f)
		}},
		{"copy-bandwidth", func(m *mem.LatencyModel, f float64) {
			m.CopyBandwidth *= f
		}},
	}
	for _, k := range knobs {
		for _, f := range []float64{0.5, 1.0, 2.0} {
			lat := mem.DefaultLatencyModel()
			k.apply(&lat, f)
			cxl := run(lat, faas.PolicyTrEnvCXL)
			reap := run(lat, faas.PolicyREAPPlus)
			criu := run(lat, faas.PolicyCRIU)
			r.Addf("%-14s x%.1f: t-cxl=%8.1fms reap+=%8.1fms criu=%8.1fms  (speedups %.2fx / %.2fx)",
				k.name, f, cxl, reap, criu, reap/cxl, criu/cxl)
		}
	}
	return r
}
