// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §9) on the simulated substrate. Each experiment returns
// a Result whose lines mirror the paper's rows/series; cmd/trenv-bench
// prints them and the root bench suite runs them under testing.B.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/alert"
	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Options control experiment scale.
type Options struct {
	// Seed drives all randomness; identical seeds reproduce bit-identical
	// results.
	Seed int64
	// Scale shrinks time-based workloads (1.0 = paper scale, 30-minute
	// traces; CI runs use ~0.1). Keep-alive windows scale along with
	// trace durations so workload semantics are preserved.
	Scale float64
	// Tracer, when non-nil, collects invocation span trees from every
	// platform an experiment builds (cmd/trenv-bench -trace).
	Tracer *obs.Tracer
	// Recorders, when non-nil, captures utilization-over-time series from
	// the trace-driven figure runs (cmd/trenv-bench -timeseries): each
	// platform run is sampled into its own recorder under a
	// "<experiment>/<workload>/<policy>" run name.
	Recorders *obs.RecorderSet
	// Chaos, when non-nil and non-empty, injects the fault schedule into
	// every platform an experiment builds (cmd/trenv-bench -chaos). The
	// injector is seeded from Seed, so chaos runs stay reproducible.
	Chaos *fault.Scenario
	// Prefetch turns working-set prefetching on for every TrEnv platform
	// an experiment builds (cmd/trenv-bench -prefetch); non-TrEnv
	// policies ignore it. The dedicated "prefetch" experiment compares
	// on vs off explicitly and is unaffected by this knob.
	Prefetch bool
	// Alerts, when non-nil, tracks one alert engine per observed run
	// (cmd/trenv-bench -alerts): rules evaluate on each run's recorder
	// samples, so it only takes effect alongside Recorders. The
	// dedicated "incidents" experiment creates its own engine when this
	// is nil.
	Alerts *alert.Set
	// Hedge, when non-nil, arms the request-hedging policy on every
	// cluster an experiment builds (cmd/trenv-bench -hedge); single-node
	// experiments ignore it. The dedicated "hedging" experiment compares
	// policies explicitly and is unaffected by this knob.
	Hedge *cluster.HedgePolicy
	// Shards sets the worker parallelism for sharded-fleet runs
	// (cmd/trenv-bench -shards, trenvd -shards). It is physical
	// parallelism only: the logical schedule, and therefore every line
	// an experiment emits, is invariant of it. 0 means sequential. The
	// "sharding" experiment executes its reference run at this count
	// and asserts the result matches the fixed worker-count sweep.
	Shards int
}

// workers reports the effective shard worker count (at least 1).
func (o Options) workers() int {
	if o.Shards < 1 {
		return 1
	}
	return o.Shards
}

// chaosInjector compiles o.Chaos against eng, or returns nil when no
// chaos was requested.
func (o Options) chaosInjector(eng *sim.Engine) *fault.Injector {
	if o.Chaos == nil || o.Chaos.Empty() {
		return nil
	}
	inj := fault.NewInjector(eng, o.Seed, *o.Chaos)
	if o.Tracer != nil {
		inj.SetTracer(o.Tracer)
	}
	return inj
}

// observe wires a fresh registry + recorder to pl under the given run
// name when time-series capture is enabled, plus an alert engine when
// alerting is enabled too. Call before RunTrace.
func (o Options) observe(run string, pl *faas.Platform) {
	if o.Recorders == nil {
		return
	}
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	pl.AttachRecorder(o.Recorders.Track(run, reg), o.Recorders.Every())
	if o.Alerts != nil {
		ae := o.Alerts.Track(run)
		ae.RegisterMetrics(reg, nil)
		pl.AttachAlerts(ae)
	}
}

// DefaultOptions returns paper-scale options.
func DefaultOptions() Options { return Options{Seed: 1, Scale: 1.0} }

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) dur(d time.Duration) time.Duration {
	return time.Duration(float64(d) * o.Scale)
}

func (o Options) count(n int) int {
	c := int(float64(n) * o.Scale)
	if c < 1 {
		c = 1
	}
	return c
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Notes string   `json:"notes,omitempty"`
	Lines []string `json:"lines"`
}

// Addf appends one formatted line.
func (r *Result) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Notes != "" {
		fmt.Fprintf(&b, "   (%s)\n", r.Notes)
	}
	for _, l := range r.Lines {
		b.WriteString("  ")
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner maps experiment IDs to their functions.
type Runner func(Options) *Result

// All returns every experiment in presentation order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig10", Fig10},
		{"fig17", Fig17},
		{"fig18", Fig18},
		{"fig19", Fig19},
		{"fig20", Fig20},
		{"fig21", Fig21},
		{"fig22", Fig22},
		{"fig23", Fig23},
		{"fig24", Fig24},
		{"fig25", Fig25},
		{"fig26", Fig26},
		{"ablations", Ablations},
		{"sensitivity", Sensitivity},
		{"availability", Availability},
		{"incidents", Incidents},
		{"prefetch", Prefetch},
		{"hedging", Hedging},
		{"sharding", Sharding},
	}
}

// ByID returns the runner for an experiment ID.
func ByID(id string) (Runner, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func mb(bytes int64) float64 { return float64(bytes) / (1 << 20) }

func gb(bytes int64) float64 { return float64(bytes) / (1 << 30) }
