package selfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options configure a canonical suite run. The same (Seed, Scale) pair
// always simulates the same work, so two artifacts are comparable
// exactly when their options match — bench-compare.sh enforces this.
type Options struct {
	Seed  int64
	Scale float64 // workload scale, 1.0 = paper scale (CI uses 0.1)
}

func (o Options) normalize() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

func (o Options) dur(d time.Duration) time.Duration {
	return time.Duration(float64(d) * o.Scale)
}

func (o Options) count(n int) int {
	c := int(float64(n) * o.Scale)
	if c < 1 {
		c = 1
	}
	return c
}

// Aggregate carries the whole-suite readings bench-compare.sh gates
// on. Per-second figures divide total work by total wall time across
// every run; ObsOverheadPct comes from the paired obs-on/obs-off probe.
type Aggregate struct {
	EventsPerSec      float64 `json:"events_per_sec"`
	InvocationsPerSec float64 `json:"invocations_per_sec"`
	SpansPerSec       float64 `json:"spans_per_sec"`
	AllocsPerEvent    float64 `json:"allocs_per_event"`
	BytesPerEvent     float64 `json:"bytes_per_event"`
	WallMSPerSimSec   float64 `json:"wall_ms_per_sim_sec"`
	ObsOverheadPct    float64 `json:"obs_overhead_pct"`
}

// Report is the schema-stable artifact `trenv-bench -selfbench` emits.
// Field order is part of the schema: the aggregate block precedes the
// per-run list so line-oriented tooling (bench-compare.sh) can read
// the gated fields without a JSON parser.
type Report struct {
	Schema     string    `json:"schema"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Seed       int64     `json:"seed"`
	Scale      float64   `json:"scale"`
	Aggregate  Aggregate `json:"aggregate"`
	Runs       []Result  `json:"runs"`
}

// WriteJSON writes the report with stable indentation and field order.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders human-readable lines for stdout.
func (r *Report) Summary() []string {
	out := []string{fmt.Sprintf("selfbench %s seed=%d scale=%g %s %s/%s gomaxprocs=%d",
		r.Schema, r.Seed, r.Scale, r.GoVersion, r.GOOS, r.GOARCH, r.GOMAXPROCS)}
	for _, run := range r.Runs {
		out = append(out, fmt.Sprintf(
			"%-16s %9d events %7d inv %8d spans in %6.3fs wall → %10.0f events/s %8.1f inv/s %6.1f allocs/event",
			run.Name, run.Events, run.Invocations, run.Spans, run.WallSeconds,
			run.EventsPerSec, run.InvocationsPerSec, run.AllocsPerEvent))
	}
	out = append(out, fmt.Sprintf(
		"aggregate        %10.0f events/s %8.1f inv/s %6.1f allocs/event %8.1f wall-ms/sim-s obs-overhead %+.1f%%",
		r.Aggregate.EventsPerSec, r.Aggregate.InvocationsPerSec,
		r.Aggregate.AllocsPerEvent, r.Aggregate.WallMSPerSimSec,
		r.Aggregate.ObsOverheadPct))
	return out
}

// RunSuite executes the canonical self-benchmark suite:
//
//   - engine-hotloop: the bare discrete-event engine, no platform on
//     top — raw events/sec and allocs/event of the scheduler itself.
//   - w1-obs-off: a single TrEnv-CXL node running the W1 bursty trace
//     with every observability layer detached.
//   - w1-obs-on: the identical seeded workload with tracer, metrics
//     registry, and flight recorder attached — the overhead probe's
//     second leg.
//   - cluster-azure: a 4-node rack sharing one CXL pool under the
//     Azure-like industrial trace — cross-node invocation throughput.
//
// Wall-clock readings are host-dependent by definition; the Counts in
// each run are deterministic per (Seed, Scale).
func RunSuite(o Options) *Report {
	o = o.normalize()
	rep := &Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       o.Seed,
		Scale:      o.Scale,
	}

	hotloop := Measure("engine-hotloop", o.Seed, func() Counts { return engineHotloop(o) })
	obsOff := Measure("w1-obs-off", o.Seed, func() Counts { return w1Node(o, false) })
	obsOn := Measure("w1-obs-on", o.Seed, func() Counts { return w1Node(o, true) })
	clusterRun := Measure("cluster-azure", o.Seed, func() Counts { return clusterAzure(o) })
	rep.Runs = []Result{hotloop, obsOff, obsOn, clusterRun}

	var events, invocations, spans int64
	var wall, sim, allocs, bytes float64
	for _, r := range rep.Runs {
		events += r.Events
		invocations += r.Invocations
		spans += r.Spans
		wall += r.WallSeconds
		sim += r.SimSeconds
		allocs += float64(r.Allocs)
		bytes += float64(r.AllocBytes)
	}
	wallDur := time.Duration(wall * float64(time.Second))
	rep.Aggregate = Aggregate{
		EventsPerSec:      Rate(float64(events), wallDur),
		InvocationsPerSec: Rate(float64(invocations), wallDur),
		SpansPerSec:       Rate(float64(spans), wallDur),
		AllocsPerEvent:    perUnit(allocs, events),
		BytesPerEvent:     perUnit(bytes, events),
		ObsOverheadPct:    overheadPct(obsOn.WallSeconds, obsOff.WallSeconds),
	}
	if sim > 0 {
		rep.Aggregate.WallMSPerSimSec = wall * 1000 / sim
	}
	return rep
}

// ShardWorkerCounts are the worker counts the sharded suite measures —
// part of the artifact schema (run names cluster-azure-s<N>).
var ShardWorkerCounts = []int{1, 2, 4}

// RunShardSuite executes the sharded cluster-azure benchmark: the same
// 4-rack fleet workload at each worker count in ShardWorkerCounts,
// reporting events/sec and invocations/sec per count. The deterministic
// work totals (events, invocations, sim time) must be identical at
// every worker count — workers are physical parallelism only — and the
// suite panics if they diverge, so a BENCH_shard.json artifact is also
// a determinism proof. Wall-clock scaling across the rows is bounded by
// the host's usable cores (GOMAXPROCS in the header): on a single-core
// runner the rows measure coordination overhead, not speedup.
func RunShardSuite(o Options) *Report {
	o = o.normalize()
	rep := &Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       o.Seed,
		Scale:      o.Scale,
	}
	for _, workers := range ShardWorkerCounts {
		workers := workers
		name := fmt.Sprintf("cluster-azure-s%d", workers)
		rep.Runs = append(rep.Runs, Measure(name, o.Seed, func() Counts {
			return shardedAzure(o, workers)
		}))
	}
	base := rep.Runs[0]
	for _, r := range rep.Runs[1:] {
		if r.Events != base.Events || r.Invocations != base.Invocations ||
			r.Spans != base.Spans || r.SimSeconds != base.SimSeconds {
			panic(fmt.Sprintf("selfbench: sharded run %s diverged from %s: events %d vs %d, inv %d vs %d",
				r.Name, base.Name, r.Events, base.Events, r.Invocations, base.Invocations))
		}
	}
	var events, invocations, spans int64
	var wall, sim, allocs, bytes float64
	for _, r := range rep.Runs {
		events += r.Events
		invocations += r.Invocations
		spans += r.Spans
		wall += r.WallSeconds
		sim += r.SimSeconds
		allocs += float64(r.Allocs)
		bytes += float64(r.AllocBytes)
	}
	wallDur := time.Duration(wall * float64(time.Second))
	rep.Aggregate = Aggregate{
		EventsPerSec:      Rate(float64(events), wallDur),
		InvocationsPerSec: Rate(float64(invocations), wallDur),
		SpansPerSec:       Rate(float64(spans), wallDur),
		AllocsPerEvent:    perUnit(allocs, events),
		BytesPerEvent:     perUnit(bytes, events),
	}
	if sim > 0 {
		rep.Aggregate.WallMSPerSimSec = wall * 1000 / sim
	}
	return rep
}

// shardedAzure runs the Azure-like industrial trace over a 4-rack
// sharded fleet (2 nodes per rack) at the given worker parallelism.
func shardedAzure(o Options, workers int) Counts {
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = o.Seed
	cfg.KeepAlive = o.dur(10 * time.Minute)
	f, err := cluster.NewShardedFleet(cluster.ShardedConfig{
		Racks:        4,
		NodesPerRack: 2,
		TraceCap:     1 << 16,
		Workers:      workers,
	}, cfg)
	if err != nil {
		panic(fmt.Sprintf("selfbench: sharded fleet: %v", err))
	}
	for _, p := range workload.Table4() {
		if err := f.Register(p); err != nil {
			panic(fmt.Sprintf("selfbench: register %s: %v", p.Name, err))
		}
	}
	az := workload.AzureConfig(fnNames())
	az.Duration = o.dur(az.Duration)
	az.MeanPerMin = 120 // denser than the single-rack leg: 8 nodes share the load
	f.RunTrace(workload.Industrial(rand.New(rand.NewSource(o.Seed+2)), az))
	var started int64
	for _, rack := range f.Racks() {
		for _, n := range rack.Nodes() {
			started += n.InvocationsStarted()
		}
	}
	return Counts{
		Events:      f.Events(),
		Invocations: started,
		Spans:       int64(len(f.Spans())),
		SimTime:     f.Group().Now(),
	}
}

// overheadPct reports how much slower the obs-on leg ran than the
// obs-off leg, as a percentage of the obs-off wall time (0 when the
// baseline collapsed to zero). Negative values mean measurement noise
// outweighed the overhead.
func overheadPct(withObs, without float64) float64 {
	if without <= 0 {
		return 0
	}
	return (withObs - without) / without * 100
}

// engineHotloop stresses the bare scheduler: a fan of processes
// sleeping pseudo-random intervals plus callback churn, no platform
// state at all. Event count scales with Options.Scale.
func engineHotloop(o Options) Counts {
	const procs = 16
	iters := o.count(60_000)
	eng := sim.NewEngine(o.Seed)
	for i := 0; i < procs; i++ {
		eng.Go(fmt.Sprintf("hot-%d", i), func(p *sim.Proc) {
			for j := 0; j < iters; j++ {
				p.Sleep(time.Duration(1+p.Rand().Intn(50)) * time.Microsecond)
			}
		})
	}
	for i := 0; i < iters; i++ {
		eng.After(time.Duration(i)*time.Microsecond, func() {})
	}
	eng.Run()
	return Counts{Events: eng.Events(), SimTime: eng.Now()}
}

func fnNames() []string {
	var out []string
	for _, p := range workload.Table4() {
		out = append(out, p.Name)
	}
	return out
}

// w1Node runs the W1 bursty trace on one TrEnv-CXL node. With withObs
// it attaches the full observability stack (tracer, registry, flight
// recorder) — the same seeded workload either way, so the wall-time
// difference between the two legs is the observability overhead.
func w1Node(o Options, withObs bool) Counts {
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = o.Seed
	cfg.KeepAlive = o.dur(10 * time.Minute)
	var tracer *obs.Tracer
	if withObs {
		tracer = obs.NewTracer(0)
		cfg.Tracer = tracer
	}
	pl := faas.New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			panic(fmt.Sprintf("selfbench: register %s: %v", p.Name, err))
		}
	}
	if withObs {
		reg := obs.NewRegistry()
		pl.RegisterMetrics(reg)
		obs.RegisterBuildInfo(reg, nil)
		pl.AttachRecorder(obs.NewRecorder(reg, 0), 0)
	}
	w1 := workload.DefaultW1(fnNames())
	w1.Duration = o.dur(w1.Duration)
	w1.BurstGap = o.dur(w1.BurstGap)
	pl.RunTrace(workload.W1Bursty(rand.New(rand.NewSource(o.Seed)), w1))
	return Counts{
		Events:      pl.Engine().Events(),
		Invocations: pl.InvocationsStarted(),
		Spans:       countSpans(tracer),
		SimTime:     pl.Engine().Now(),
	}
}

// clusterAzure runs the Azure-like industrial trace over a 4-node rack
// sharing one CXL pool: the cross-node dispatch + remote-fetch path.
func clusterAzure(o Options) Counts {
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = o.Seed
	cfg.KeepAlive = o.dur(10 * time.Minute)
	c, err := cluster.New(4, cfg)
	if err != nil {
		panic(fmt.Sprintf("selfbench: cluster: %v", err))
	}
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			panic(fmt.Sprintf("selfbench: register %s: %v", p.Name, err))
		}
	}
	az := workload.AzureConfig(fnNames())
	az.Duration = o.dur(az.Duration)
	c.RunTrace(workload.Industrial(rand.New(rand.NewSource(o.Seed+2)), az))
	var started int64
	for _, n := range c.Nodes() {
		started += n.InvocationsStarted()
	}
	return Counts{
		Events:      c.Engine().Events(),
		Invocations: started,
		SimTime:     c.Engine().Now(),
	}
}

// countSpans walks every retained root and counts all nodes, children
// included (0 for a nil tracer).
func countSpans(t *obs.Tracer) int64 {
	if t == nil {
		return 0
	}
	var n int64
	for _, root := range t.Spans() {
		root.Walk(func(int, *obs.Span) { n++ })
	}
	return n
}
