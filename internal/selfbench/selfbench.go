// Package selfbench measures the simulator's own wall-clock
// performance: how fast the discrete-event engine and the platform
// stack above it execute on the host machine, as opposed to the
// virtual-time results every other package reports. It produces a
// schema-stable JSON report (events/sec, invocations/sec, spans/sec,
// wall time per simulated second, allocations and bytes per event, and
// an observability-overhead probe) that is committed to the repo as
// BENCH_pr6.json and regression-gated in CI by scripts/bench-compare.sh.
//
// Self-measurement is strictly read-only with respect to the
// simulation: it reads the engine's event counter, the platform's
// invocation counters, and runtime.MemStats around a measured run, so
// same-seed runs stay byte-identical in every deterministic export
// whether or not they are being measured.
package selfbench

import (
	"runtime"
	"time"
)

// Schema identifies the report layout; bump the suffix on any
// incompatible field change so bench-compare.sh refuses to compare
// artifacts across layouts.
const Schema = "trenv-selfbench/v1"

// Default regression-gate tolerance bands, shared by internal/diff and
// scripts/bench-compare.sh (via trenv-diff): wall-clock throughput
// varies across machines, so its band is wide; allocations per event
// are nearly machine-independent, so that band is tight.
const (
	// DefaultEventsTol is the fractional floor band on events_per_sec
	// and invocations_per_sec (fresh may drop up to 30% below baseline).
	DefaultEventsTol = 0.30
	// DefaultAllocsTol is the fractional ceiling band on
	// allocs_per_event (fresh may rise up to 20% above baseline).
	DefaultAllocsTol = 0.20
)

// Counts are the deterministic work totals of one measured run — pure
// functions of the seed, independent of the host's speed.
type Counts struct {
	Events      int64         // engine events executed (sim.Engine.Events)
	Invocations int64         // invocations dispatched across the run
	Spans       int64         // spans recorded by the tracer, children included
	SimTime     time.Duration // virtual time the run covered
}

// Result is one measured run: its deterministic work totals plus the
// host-dependent wall-clock and allocation readings derived from them.
type Result struct {
	Name        string  `json:"name"`
	Seed        int64   `json:"seed"`
	Events      int64   `json:"events"`
	Invocations int64   `json:"invocations"`
	Spans       int64   `json:"spans"`
	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`

	EventsPerSec      float64 `json:"events_per_sec"`
	InvocationsPerSec float64 `json:"invocations_per_sec"`
	SpansPerSec       float64 `json:"spans_per_sec"`
	WallMSPerSimSec   float64 `json:"wall_ms_per_sim_sec"`

	Allocs         uint64  `json:"allocs"`
	AllocBytes     uint64  `json:"alloc_bytes"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// Rate returns n per second over elapsed, or 0 when the interval is
// zero or negative: wall-clock deltas can legitimately collapse to
// zero (coarse clocks, instant runs) and must degrade to "no rate"
// instead of dividing by zero.
func Rate(n float64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return n / elapsed.Seconds()
}

// perUnit returns total/units, or 0 when units is not positive.
func perUnit(total float64, units int64) float64 {
	if units <= 0 {
		return 0
	}
	return total / float64(units)
}

// Measure runs fn between MemStats snapshots and wall-clock stamps and
// derives the per-second and per-event readings from the Counts it
// returns. A GC settles the heap before the measured region so the
// allocation delta belongs to fn alone (modulo background GC assists).
func Measure(name string, seed int64, fn func() Counts) Result {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	c := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	r := Result{
		Name:        name,
		Seed:        seed,
		Events:      c.Events,
		Invocations: c.Invocations,
		Spans:       c.Spans,
		SimSeconds:  c.SimTime.Seconds(),
		WallSeconds: wall.Seconds(),

		EventsPerSec:      Rate(float64(c.Events), wall),
		InvocationsPerSec: Rate(float64(c.Invocations), wall),
		SpansPerSec:       Rate(float64(c.Spans), wall),

		Allocs:         allocs,
		AllocBytes:     bytes,
		AllocsPerEvent: perUnit(float64(allocs), c.Events),
		BytesPerEvent:  perUnit(float64(bytes), c.Events),
	}
	if c.SimTime > 0 {
		r.WallMSPerSimSec = wall.Seconds() * 1000 / c.SimTime.Seconds()
	}
	return r
}
