package selfbench

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/workload"
)

func TestRateGuards(t *testing.T) {
	cases := []struct {
		n       float64
		elapsed time.Duration
		want    float64
	}{
		{10, 0, 0},
		{10, -time.Second, 0},
		{10, 2 * time.Second, 5},
		{0, time.Second, 0},
	}
	for _, c := range cases {
		if got := Rate(c.n, c.elapsed); got != c.want {
			t.Errorf("Rate(%v, %v) = %v, want %v", c.n, c.elapsed, got, c.want)
		}
	}
	if got := perUnit(100, 0); got != 0 {
		t.Errorf("perUnit(100, 0) = %v, want 0", got)
	}
	if got := perUnit(100, -5); got != 0 {
		t.Errorf("perUnit(100, -5) = %v, want 0", got)
	}
	if got := perUnit(100, 4); got != 25 {
		t.Errorf("perUnit(100, 4) = %v, want 25", got)
	}
	if got := overheadPct(1.5, 0); got != 0 {
		t.Errorf("overheadPct(1.5, 0) = %v, want 0 (zero baseline)", got)
	}
	if got := overheadPct(1.2, 1.0); got < 19.99 || got > 20.01 {
		t.Errorf("overheadPct(1.2, 1.0) = %v, want ~20", got)
	}
}

func TestMeasureDerivesReadings(t *testing.T) {
	r := Measure("probe", 7, func() Counts {
		// Allocate something observable and burn a little wall time so
		// every derived reading has a non-degenerate denominator.
		sink := make([][]byte, 0, 64)
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 1024))
		}
		_ = sink
		time.Sleep(2 * time.Millisecond)
		return Counts{Events: 1000, Invocations: 10, Spans: 20, SimTime: time.Second}
	})
	if r.Name != "probe" || r.Seed != 7 {
		t.Fatalf("identity not carried: %+v", r)
	}
	if r.WallSeconds <= 0 {
		t.Fatalf("wall time not measured: %+v", r)
	}
	if r.EventsPerSec <= 0 || r.InvocationsPerSec <= 0 || r.SpansPerSec <= 0 {
		t.Fatalf("rates not derived: %+v", r)
	}
	if r.Allocs == 0 || r.AllocBytes == 0 {
		t.Fatalf("allocation delta not captured: %+v", r)
	}
	if r.AllocsPerEvent <= 0 || r.BytesPerEvent <= 0 {
		t.Fatalf("per-event allocations not derived: %+v", r)
	}
	if r.WallMSPerSimSec <= 0 {
		t.Fatalf("wall-per-sim-second not derived: %+v", r)
	}
}

func TestSuiteDeterministicCounts(t *testing.T) {
	o := Options{Seed: 3, Scale: 0.02}
	a := RunSuite(o)
	b := RunSuite(o)
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		ra, rb := a.Runs[i], b.Runs[i]
		if ra.Name != rb.Name {
			t.Fatalf("run %d name %q vs %q", i, ra.Name, rb.Name)
		}
		if ra.Events != rb.Events || ra.Invocations != rb.Invocations ||
			ra.Spans != rb.Spans || ra.SimSeconds != rb.SimSeconds {
			t.Errorf("run %q deterministic counts differ: %+v vs %+v", ra.Name, ra, rb)
		}
		if ra.Events <= 0 {
			t.Errorf("run %q executed no events", ra.Name)
		}
	}
	// The overhead probe's two legs simulate the identical workload.
	var on, off Result
	for _, r := range a.Runs {
		switch r.Name {
		case "w1-obs-on":
			on = r
		case "w1-obs-off":
			off = r
		}
	}
	if on.Invocations == 0 || on.Invocations != off.Invocations {
		t.Fatalf("probe legs diverge: obs-on %d invocations, obs-off %d", on.Invocations, off.Invocations)
	}
	if on.Spans == 0 {
		t.Fatalf("obs-on leg recorded no spans")
	}
	if off.Spans != 0 {
		t.Fatalf("obs-off leg recorded %d spans, want 0", off.Spans)
	}
	if a.Aggregate.EventsPerSec <= 0 || a.Aggregate.AllocsPerEvent <= 0 {
		t.Fatalf("aggregate not derived: %+v", a.Aggregate)
	}
}

// TestMeasurementDoesNotPerturbExports is the determinism-isolation
// contract at the package level: wrapping a seeded run in Measure (GC,
// MemStats reads, wall-clock stamps) must leave its virtual-time
// exports byte-identical to an unmeasured run.
func TestMeasurementDoesNotPerturbExports(t *testing.T) {
	export := func(measured bool) []byte {
		var buf bytes.Buffer
		run := func() Counts {
			cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
			cfg.Seed = 11
			tracer := obs.NewTracer(0)
			cfg.Tracer = tracer
			pl := faas.New(cfg)
			for _, p := range workload.Table4() {
				if err := pl.Register(p); err != nil {
					t.Fatalf("register %s: %v", p.Name, err)
				}
			}
			reg := obs.NewRegistry()
			pl.RegisterMetrics(reg)
			w1 := workload.DefaultW1(fnNames())
			w1.Duration = w1.Duration / 50
			w1.BurstGap = w1.BurstGap / 50
			pl.RunTrace(workload.W1Bursty(rand.New(rand.NewSource(11)), w1))
			if err := obs.WriteFolded(&buf, tracer.Spans()); err != nil {
				t.Fatalf("write folded: %v", err)
			}
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatalf("write prometheus: %v", err)
			}
			return Counts{Events: pl.Engine().Events(), SimTime: pl.Engine().Now()}
		}
		if measured {
			Measure("isolation-probe", 11, run)
		} else {
			run()
		}
		return buf.Bytes()
	}
	bare := export(false)
	measured := export(true)
	if len(bare) == 0 {
		t.Fatalf("export produced no bytes")
	}
	if !bytes.Equal(bare, measured) {
		t.Fatalf("measured run perturbed deterministic exports (%d vs %d bytes)", len(bare), len(measured))
	}
}

func TestReportSchemaStable(t *testing.T) {
	rep := RunSuite(Options{Seed: 1, Scale: 0.01})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, fmt.Sprintf("%q: %q", "schema", Schema)) {
		t.Fatalf("schema marker missing:\n%s", out)
	}
	agg := strings.Index(out, `"aggregate"`)
	runs := strings.Index(out, `"runs"`)
	if agg < 0 || runs < 0 || agg > runs {
		t.Fatalf("aggregate block must precede runs (aggregate@%d, runs@%d)", agg, runs)
	}
	for _, key := range []string{"events_per_sec", "invocations_per_sec", "allocs_per_event", "obs_overhead_pct"} {
		if !strings.Contains(out, `"`+key+`"`) {
			t.Fatalf("gated field %q missing from report:\n%s", key, out)
		}
	}
	if len(rep.Summary()) != len(rep.Runs)+2 {
		t.Fatalf("summary lines = %d, want header + %d runs + aggregate", len(rep.Summary()), len(rep.Runs))
	}
}

// The shard suite's rows differ only in worker count, so their
// deterministic work totals must be identical — RunShardSuite panics
// internally if they are not, making this test double as the
// worker-invariance gate at the selfbench layer.
func TestShardSuiteRowsAgree(t *testing.T) {
	rep := RunShardSuite(Options{Seed: 3, Scale: 0.02})
	if len(rep.Runs) != len(ShardWorkerCounts) {
		t.Fatalf("runs = %d, want %d", len(rep.Runs), len(ShardWorkerCounts))
	}
	for i, r := range rep.Runs {
		want := fmt.Sprintf("cluster-azure-s%d", ShardWorkerCounts[i])
		if r.Name != want {
			t.Fatalf("run %d named %q, want %q", i, r.Name, want)
		}
		if r.Events <= 0 || r.Invocations <= 0 {
			t.Fatalf("run %q did no work: %+v", r.Name, r)
		}
		if r.Events != rep.Runs[0].Events || r.Invocations != rep.Runs[0].Invocations {
			t.Fatalf("run %q counts diverge from %q", r.Name, rep.Runs[0].Name)
		}
	}
	if rep.Aggregate.EventsPerSec <= 0 || rep.Aggregate.InvocationsPerSec <= 0 {
		t.Fatalf("aggregate not derived: %+v", rep.Aggregate)
	}
}
