package selfbench

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport renders rep into dir under name and returns the path.
func writeReport(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCompare executes scripts/bench-compare.sh against the two
// artifacts and returns the exit code plus combined output.
func runCompare(t *testing.T, baseline, fresh string, env ...string) (int, string) {
	t.Helper()
	script, err := filepath.Abs(filepath.Join("..", "..", "scripts", "bench-compare.sh"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("sh", script, baseline, fresh)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("run %s: %v\n%s", script, err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestBenchCompareScript is the acceptance check for the regression
// gate: identical artifacts pass, degraded throughput or grown
// allocations fail, incomparable artifacts are refused, and the
// tolerance bands respond to their environment overrides.
func TestBenchCompareScript(t *testing.T) {
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("sh not available")
	}
	dir := t.TempDir()
	rep := RunSuite(Options{Seed: 9, Scale: 0.01})
	baseline := writeReport(t, dir, "baseline.json", rep)

	t.Run("identical-passes", func(t *testing.T) {
		code, out := runCompare(t, baseline, baseline)
		if code != 0 {
			t.Fatalf("identical artifacts rejected (exit %d):\n%s", code, out)
		}
		for _, want := range []string{"events_per_sec", "invocations_per_sec", "allocs_per_event", "bench-compare: ok"} {
			if !strings.Contains(out, want) {
				t.Errorf("summary missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("throughput-regression-fails", func(t *testing.T) {
		bad := *rep
		bad.Aggregate.EventsPerSec *= 0.5 // beyond the 30% band
		fresh := writeReport(t, dir, "slow.json", &bad)
		code, out := runCompare(t, baseline, fresh)
		if code == 0 {
			t.Fatalf("50%% events/sec regression accepted:\n%s", out)
		}
		if !strings.Contains(out, "FAIL events_per_sec") {
			t.Errorf("missing gate verdict:\n%s", out)
		}
	})

	t.Run("alloc-growth-fails", func(t *testing.T) {
		bad := *rep
		bad.Aggregate.AllocsPerEvent *= 1.5 // beyond the 20% band
		fresh := writeReport(t, dir, "leaky.json", &bad)
		code, out := runCompare(t, baseline, fresh)
		if code == 0 {
			t.Fatalf("50%% allocs/event growth accepted:\n%s", out)
		}
		if !strings.Contains(out, "FAIL allocs_per_event") {
			t.Errorf("missing gate verdict:\n%s", out)
		}
	})

	t.Run("schema-mismatch-refused", func(t *testing.T) {
		bad := *rep
		bad.Schema = "trenv-selfbench/v999"
		fresh := writeReport(t, dir, "alien.json", &bad)
		if code, out := runCompare(t, baseline, fresh); code == 0 {
			t.Fatalf("schema mismatch accepted:\n%s", out)
		}
	})

	t.Run("seed-mismatch-refused", func(t *testing.T) {
		bad := *rep
		bad.Seed++
		fresh := writeReport(t, dir, "reseeded.json", &bad)
		if code, out := runCompare(t, baseline, fresh); code == 0 {
			t.Fatalf("seed mismatch accepted:\n%s", out)
		}
	})

	t.Run("tolerance-env-override", func(t *testing.T) {
		bad := *rep
		bad.Aggregate.EventsPerSec *= 0.9 // inside 30%, outside 5%
		fresh := writeReport(t, dir, "slightly-slow.json", &bad)
		if code, out := runCompare(t, baseline, fresh); code != 0 {
			t.Fatalf("10%% dip rejected under default band:\n%s", out)
		}
		if code, out := runCompare(t, baseline, fresh, "TRENV_EVENTS_TOL=0.05"); code == 0 {
			t.Fatalf("10%% dip accepted under 5%% band:\n%s", out)
		}
	})

	t.Run("missing-file-errors", func(t *testing.T) {
		if code, _ := runCompare(t, baseline, filepath.Join(dir, "nope.json")); code == 0 {
			t.Fatal("unreadable fresh artifact accepted")
		}
	})
}
