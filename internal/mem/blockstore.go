package mem

import (
	"fmt"
	"sort"
)

// Block is one deduplicated, contiguous run of pages in a pool's
// consolidated image. Its Offset is machine independent: every node
// attached to the pool resolves the same offset to the same bytes, which
// is what lets mm-templates be shared across hosts.
type Block struct {
	Key    string // content hash / identity of the data
	Pages  int
	Offset uint64 // byte offset within the pool
	refs   int
}

// Bytes returns the block's size in bytes.
func (b *Block) Bytes() int64 { return int64(b.Pages) * PageSize }

// Refs returns the current reference count.
func (b *Block) Refs() int { return b.refs }

// BlockStore is the content-addressed allocator for a pool's consolidated
// snapshot images. Putting the same content key twice returns the same
// block (deduplication); blocks are freed when their refcount drops to
// zero.
type BlockStore struct {
	pool    *Pool
	blocks  map[string]*Block
	nextOff uint64
	dedups  int64 // Put calls satisfied by an existing block
	puts    int64
}

// NewBlockStore creates a store allocating from pool.
func NewBlockStore(pool *Pool) *BlockStore {
	return &BlockStore{pool: pool, blocks: make(map[string]*Block)}
}

// Pool returns the backing pool.
func (s *BlockStore) Pool() *Pool { return s.pool }

// Put interns a block of content key with the given page count. If the key
// already exists its refcount is bumped and dedup is true. Page counts for
// the same key must agree.
func (s *BlockStore) Put(key string, pages int) (b *Block, dedup bool, err error) {
	if pages <= 0 {
		return nil, false, fmt.Errorf("mem: block %q has %d pages", key, pages)
	}
	s.puts++
	if b, ok := s.blocks[key]; ok {
		if b.Pages != pages {
			return nil, false, fmt.Errorf("mem: block %q size mismatch: have %d pages, put %d", key, b.Pages, pages)
		}
		b.refs++
		s.dedups++
		return b, true, nil
	}
	bytes := int64(pages) * PageSize
	if err := s.pool.Tracker().Alloc(bytes); err != nil {
		return nil, false, err
	}
	b = &Block{Key: key, Pages: pages, Offset: s.nextOff, refs: 1}
	s.nextOff += uint64(bytes)
	s.blocks[key] = b
	return b, false, nil
}

// Get returns the block for key, or nil.
func (s *BlockStore) Get(key string) *Block { return s.blocks[key] }

// Release drops one reference to key, freeing the block's pool memory when
// the count reaches zero.
func (s *BlockStore) Release(key string) error {
	b, ok := s.blocks[key]
	if !ok {
		return fmt.Errorf("mem: release of unknown block %q", key)
	}
	b.refs--
	if b.refs < 0 {
		panic(fmt.Sprintf("mem: block %q over-released", key))
	}
	if b.refs == 0 {
		delete(s.blocks, key)
		s.pool.Tracker().Free(b.Bytes())
	}
	return nil
}

// Blocks returns all live blocks sorted by offset (for inspection).
func (s *BlockStore) Blocks() []*Block {
	out := make([]*Block, 0, len(s.blocks))
	for _, b := range s.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// DedupRatio returns the fraction of Put calls answered by an existing
// block (0 if no puts yet).
func (s *BlockStore) DedupRatio() float64 {
	if s.puts == 0 {
		return 0
	}
	return float64(s.dedups) / float64(s.puts)
}

// UniqueBytes returns the bytes of pool memory held by live blocks.
func (s *BlockStore) UniqueBytes() int64 {
	var n int64
	for _, b := range s.blocks {
		n += b.Bytes()
	}
	return n
}

// LogicalBytes returns what the stored images would occupy without
// deduplication (sum of bytes times refcount).
func (s *BlockStore) LogicalBytes() int64 {
	var n int64
	for _, b := range s.blocks {
		n += b.Bytes() * int64(b.refs)
	}
	return n
}
