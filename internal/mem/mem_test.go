package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPagesFor(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {PageSize, 1}, {PageSize + 1, 2}, {10 * PageSize, 10},
	}
	for _, c := range cases {
		if got := PagesFor(c.bytes); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestTrackerAllocFree(t *testing.T) {
	tr := NewTracker("ram", 100)
	if err := tr.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := tr.Alloc(50); err == nil {
		t.Fatal("over-capacity alloc succeeded")
	} else {
		var noMem *ErrNoMemory
		if !errors.As(err, &noMem) {
			t.Fatalf("error type %T, want *ErrNoMemory", err)
		}
		if noMem.Free != 40 {
			t.Fatalf("reported free = %d, want 40", noMem.Free)
		}
	}
	tr.Free(20)
	if tr.Used() != 40 || tr.Peak() != 60 {
		t.Fatalf("used=%d peak=%d, want 40/60", tr.Used(), tr.Peak())
	}
	tr.ResetPeak()
	if tr.Peak() != 40 {
		t.Fatalf("peak after reset = %d", tr.Peak())
	}
}

func TestTrackerUnlimited(t *testing.T) {
	tr := NewTracker("x", 0)
	if err := tr.Alloc(1 << 50); err != nil {
		t.Fatalf("unlimited tracker refused alloc: %v", err)
	}
	if tr.Available() < 1<<61 {
		t.Fatalf("available = %d", tr.Available())
	}
}

func TestTrackerOverFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-free did not panic")
		}
	}()
	NewTracker("x", 0).Free(1)
}

// Property: any sequence of allocs/frees keeps used == sum(live) and
// peak >= used.
func TestTrackerInvariantProperty(t *testing.T) {
	f := func(ops []int16) bool {
		tr := NewTracker("p", 0)
		var live int64
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				tr.MustAlloc(n)
				live += n
			} else {
				n = -n
				if n > live {
					n = live
				}
				tr.Free(n)
				live -= n
			}
			if tr.Used() != live || tr.Peak() < tr.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolKindStrings(t *testing.T) {
	if Local.String() != "local" || CXL.String() != "cxl" || RDMA.String() != "rdma" || NAS.String() != "nas" {
		t.Fatal("bad pool kind strings")
	}
	if !CXL.ByteAddressable() || RDMA.ByteAddressable() {
		t.Fatal("byte-addressability wrong")
	}
}

func TestRDMAFetchContentionInflates(t *testing.T) {
	lat := DefaultLatencyModel()
	lat.RDMACliffProbability = 0 // isolate linear inflation
	p := NewPool(RDMA, 0, lat)
	rng := rand.New(rand.NewSource(1))
	base := p.FetchLatency(rng, 10)
	for i := 0; i < 50; i++ {
		p.BeginFetch()
	}
	loaded := p.FetchLatency(rng, 10)
	if loaded <= base {
		t.Fatalf("no contention inflation: base=%v loaded=%v", base, loaded)
	}
	want := time.Duration(float64(base) * (1 + lat.RDMAContentionFactor*50))
	if diff := loaded - want; diff < -time.Nanosecond || diff > time.Nanosecond {
		t.Fatalf("loaded=%v want=%v", loaded, want)
	}
	for i := 0; i < 50; i++ {
		p.EndFetch()
	}
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.Outstanding())
	}
}

func TestRDMACliffOnlyUnderContention(t *testing.T) {
	lat := DefaultLatencyModel()
	lat.RDMACliffProbability = 1 // always cliff when eligible
	p := NewPool(RDMA, 0, lat)
	rng := rand.New(rand.NewSource(1))
	p.FetchLatency(rng, 1)
	if p.Cliffs() != 0 {
		t.Fatal("cliff hit with no contention")
	}
	for i := 0; i < lat.RDMAContentionThreshold; i++ {
		p.BeginFetch()
	}
	p.FetchLatency(rng, 1)
	if p.Cliffs() != 1 {
		t.Fatal("cliff not hit at threshold")
	}
}

func TestCXLStableAndDirect(t *testing.T) {
	lat := DefaultLatencyModel()
	p := NewPool(CXL, 0, lat)
	rng := rand.New(rand.NewSource(1))
	a := p.FetchLatency(rng, 100)
	for i := 0; i < 100; i++ {
		p.BeginFetch()
	}
	b := p.FetchLatency(rng, 100)
	if a != b {
		t.Fatalf("CXL latency not load-independent: %v vs %v", a, b)
	}
	if got := p.DirectAccessCost(10); got != 10*lat.CXLDirectAccess {
		t.Fatalf("direct access cost = %v", got)
	}
	rp := NewPool(RDMA, 0, lat)
	if rp.DirectAccessCost(10) != 0 {
		t.Fatal("RDMA should not be directly addressable")
	}
}

func TestCopyCost(t *testing.T) {
	lat := DefaultLatencyModel()
	got := lat.CopyCost(1 << 30)
	if got != time.Second {
		t.Fatalf("1 GiB at 1 GiB/s = %v, want 1s", got)
	}
	if lat.CopyCost(0) != 0 || lat.CopyCost(-1) != 0 {
		t.Fatal("non-positive copy should cost 0")
	}
	// 60 MB should exceed 55ms (paper: >60ms at ~1GB/s).
	if got := lat.CopyCost(60 << 20); got < 55*time.Millisecond {
		t.Fatalf("60MB copy = %v, expected tens of ms", got)
	}
}

func TestBlockStoreDedup(t *testing.T) {
	p := NewPool(CXL, 100*PageSize, DefaultLatencyModel())
	s := NewBlockStore(p)
	b1, dedup, err := s.Put("python-runtime", 10)
	if err != nil || dedup {
		t.Fatalf("first put: %v dedup=%v", err, dedup)
	}
	b2, dedup, err := s.Put("python-runtime", 10)
	if err != nil || !dedup {
		t.Fatalf("second put: %v dedup=%v", err, dedup)
	}
	if b1 != b2 || b1.Refs() != 2 {
		t.Fatalf("dedup returned different block or wrong refs (%d)", b1.Refs())
	}
	if got := p.Tracker().Used(); got != 10*PageSize {
		t.Fatalf("pool used %d, want one copy (%d)", got, 10*PageSize)
	}
	if s.LogicalBytes() != 2*10*PageSize {
		t.Fatalf("logical bytes = %d", s.LogicalBytes())
	}
	if s.DedupRatio() != 0.5 {
		t.Fatalf("dedup ratio = %v", s.DedupRatio())
	}
}

func TestBlockStoreRelease(t *testing.T) {
	p := NewPool(CXL, 100*PageSize, DefaultLatencyModel())
	s := NewBlockStore(p)
	s.Put("a", 4)
	s.Put("a", 4)
	if err := s.Release("a"); err != nil {
		t.Fatal(err)
	}
	if s.Get("a") == nil {
		t.Fatal("block freed while referenced")
	}
	if err := s.Release("a"); err != nil {
		t.Fatal(err)
	}
	if s.Get("a") != nil {
		t.Fatal("block not freed at zero refs")
	}
	if p.Tracker().Used() != 0 {
		t.Fatalf("pool used = %d after full release", p.Tracker().Used())
	}
	if err := s.Release("a"); err == nil {
		t.Fatal("release of unknown block succeeded")
	}
}

func TestBlockStoreSizeMismatch(t *testing.T) {
	s := NewBlockStore(NewPool(CXL, 0, DefaultLatencyModel()))
	s.Put("k", 4)
	if _, _, err := s.Put("k", 5); err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func TestBlockStoreCapacityExhaustion(t *testing.T) {
	p := NewPool(CXL, 5*PageSize, DefaultLatencyModel())
	s := NewBlockStore(p)
	if _, _, err := s.Put("a", 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("b", 2); err == nil {
		t.Fatal("over-capacity put succeeded")
	}
}

// Property: offsets of live blocks never overlap.
func TestBlockStoreNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewBlockStore(NewPool(CXL, 0, DefaultLatencyModel()))
		for i, sz := range sizes {
			pages := int(sz%32) + 1
			if _, _, err := s.Put(string(rune('a'+i%26))+string(rune('0'+i/26)), pages); err != nil {
				return false
			}
		}
		blocks := s.Blocks()
		for i := 1; i < len(blocks); i++ {
			prev := blocks[i-1]
			if blocks[i].Offset < prev.Offset+uint64(prev.Bytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
