package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTiers(t *testing.T, hotBudget int64) (*TierManager, *Pool, *Pool) {
	t.Helper()
	lat := DefaultLatencyModel()
	hot := NewPool(CXL, 0, lat)
	cold := NewPool(RDMA, 0, lat)
	m, err := NewTierManager(hot, cold, hotBudget)
	if err != nil {
		t.Fatal(err)
	}
	return m, hot, cold
}

func TestTierManagerValidation(t *testing.T) {
	lat := DefaultLatencyModel()
	if _, err := NewTierManager(nil, NewPool(RDMA, 0, lat), 1); err == nil {
		t.Fatal("nil hot accepted")
	}
	if _, err := NewTierManager(NewPool(RDMA, 0, lat), NewPool(NAS, 0, lat), 1); err == nil {
		t.Fatal("non-byte-addressable hot tier accepted")
	}
	if _, err := NewTierManager(NewPool(CXL, 0, lat), NewPool(RDMA, 0, lat), 0); err == nil {
		t.Fatal("no budget accepted")
	}
	// Budget defaults to the hot pool's capacity when bounded.
	if _, err := NewTierManager(NewPool(CXL, 1<<30, lat), NewPool(RDMA, 0, lat), 0); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceStartsColdAndPromotesByFrequency(t *testing.T) {
	m, hot, cold := newTiers(t, 100*PageSize)
	for _, k := range []string{"hotlib", "coldlib"} {
		if err := m.Place(k, 60); err != nil {
			t.Fatal(err)
		}
	}
	if hot.Tracker().Used() != 0 || cold.Tracker().Used() != 120*PageSize {
		t.Fatal("placement should start cold")
	}
	m.RecordAccess("hotlib", 100)
	m.RecordAccess("coldlib", 2)
	d, err := m.Rebalance(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("rebalance moved data for free")
	}
	if tier, _ := m.TierOf("hotlib"); tier != CXL {
		t.Fatal("hot block not promoted")
	}
	if tier, _ := m.TierOf("coldlib"); tier != RDMA {
		t.Fatal("cold block promoted past budget")
	}
	if m.HotBytes() > 100*PageSize {
		t.Fatal("budget exceeded")
	}
	if m.Promotions() != 1 {
		t.Fatalf("promotions = %d", m.Promotions())
	}
}

func TestRebalanceDemotesWhenHeatShifts(t *testing.T) {
	m, _, _ := newTiers(t, 64*PageSize)
	m.Place("a", 60)
	m.Place("b", 60)
	m.RecordAccess("a", 10)
	m.Rebalance(1 << 30)
	if tier, _ := m.TierOf("a"); tier != CXL {
		t.Fatal("a not promoted")
	}
	// b becomes hotter; a must be demoted to fit b.
	m.RecordAccess("b", 100)
	m.Rebalance(1 << 30)
	if tier, _ := m.TierOf("b"); tier != CXL {
		t.Fatal("b not promoted after heating up")
	}
	if tier, _ := m.TierOf("a"); tier != RDMA {
		t.Fatal("a not demoted")
	}
	if m.Demotions() != 1 {
		t.Fatalf("demotions = %d", m.Demotions())
	}
}

func TestTierAccounting(t *testing.T) {
	m, hot, cold := newTiers(t, 1<<30)
	m.Place("a", 10)
	m.RecordAccess("a", 5)
	m.Rebalance(1 << 30)
	if hot.Tracker().Used() != 10*PageSize || cold.Tracker().Used() != 0 {
		t.Fatalf("tier accounting: hot=%d cold=%d", hot.Tracker().Used(), cold.Tracker().Used())
	}
	if err := m.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if hot.Tracker().Used() != 0 {
		t.Fatal("remove leaked hot bytes")
	}
	if err := m.Remove("a"); err == nil {
		t.Fatal("double remove accepted")
	}
	if err := m.RecordAccess("a", 1); err == nil {
		t.Fatal("access to removed block accepted")
	}
	if _, err := m.TierOf("a"); err == nil {
		t.Fatal("TierOf removed block succeeded")
	}
}

// Property: after any access pattern and rebalance, (1) hot usage stays
// within budget, and (2) every hot block is at least as hot as every
// cold block that would fit in the remaining budget.
func TestRebalanceGreedyOptimalProperty(t *testing.T) {
	f := func(accessSeed int64, sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		lat := DefaultLatencyModel()
		hot := NewPool(CXL, 0, lat)
		cold := NewPool(RDMA, 0, lat)
		budget := int64(40) * PageSize
		m, err := NewTierManager(hot, cold, budget)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(accessSeed))
		for i, s := range sizes {
			key := string(rune('a' + i))
			if err := m.Place(key, int(s%20)+1); err != nil {
				return false
			}
			m.RecordAccess(key, rng.Int63n(100))
		}
		if _, err := m.Rebalance(1 << 30); err != nil {
			return false
		}
		if m.HotBytes() > budget {
			return false
		}
		// Greedy invariant: a cold block hotter than some hot block must
		// not fit in the leftover budget (otherwise it should be hot).
		var minHot int64 = 1 << 62
		hasHot := false
		for i := range sizes {
			key := string(rune('a' + i))
			if tier, _ := m.TierOf(key); tier == CXL {
				hasHot = true
				if m.blocks[key].accesses < minHot {
					minHot = m.blocks[key].accesses
				}
			}
		}
		if !hasHot {
			return true
		}
		left := budget - m.HotBytes()
		for i := range sizes {
			key := string(rune('a' + i))
			b := m.blocks[key]
			if !b.hot && b.accesses > minHot && int64(b.pages)*PageSize <= left {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
