package mem

import (
	"fmt"
	"math/rand"
	"time"
)

// FetchVerdict is a fault agent's ruling on one fetch attempt. A nil Err
// lets the attempt proceed (optionally slowed by LatencyScale > 1);
// a non-nil Err fails it. FaultTrace names the injected fault's trace ID
// so spans recording the retry/failure can link back to its cause.
type FetchVerdict struct {
	Err          error
	LatencyScale float64
	FaultTrace   string
}

// FaultAgent decides, per fetch attempt, whether an injected fault fires.
// Implementations must be deterministic in (pool, at) plus their own
// seeded state — never wall clock or global randomness.
type FaultAgent interface {
	// FetchVerdict rules on a fetch attempt against pool at virtual time at.
	FetchVerdict(pool string, at time.Duration) FetchVerdict
	// PoolDown reports whether pool is inside an outage window at virtual
	// time at, returning the fault's trace ID when it is.
	PoolDown(pool string, at time.Duration) (faultTrace string, down bool)
}

// ErrPoolUnavailable reports that a pool is inside an injected outage
// window: no fetch or restore against it can succeed until the window
// closes. Callers should fall back (e.g. to a local cold start) rather
// than retrying immediately.
type ErrPoolUnavailable struct {
	Pool       string // pool kind ("cxl", "rdma", "tmpfs", ...)
	FaultTrace string // trace ID of the injected outage ("" = unknown)
}

func (e *ErrPoolUnavailable) Error() string {
	return fmt.Sprintf("mem: pool %s unavailable (injected outage)", e.Pool)
}

// ErrFlakyFetch is a transient injected failure of one fetch attempt.
// It is retryable: the next attempt may succeed.
type ErrFlakyFetch struct {
	Pool       string
	FaultTrace string
}

func (e *ErrFlakyFetch) Error() string {
	return fmt.Sprintf("mem: flaky fetch on pool %s (injected)", e.Pool)
}

// ErrFetchFailed reports a fetch that exhausted its retry budget. Cause
// holds the last attempt's error so errors.As still sees the underlying
// fault type.
type ErrFetchFailed struct {
	Pool       string
	Attempts   int
	FaultTrace string
	Cause      error
}

func (e *ErrFetchFailed) Error() string {
	return fmt.Sprintf("mem: fetch from pool %s failed after %d attempts: %v", e.Pool, e.Attempts, e.Cause)
}

func (e *ErrFetchFailed) Unwrap() error { return e.Cause }

// RetryPolicy bounds how a pool retries faulted fetches: each failed
// attempt charges Deadline (the time spent discovering the failure) plus
// a jittered exponential backoff before the next attempt.
type RetryPolicy struct {
	MaxAttempts int           // total attempts including the first (>= 1)
	Deadline    time.Duration // per-attempt failure-detection cost
	BackoffBase time.Duration // backoff before attempt 2; doubles per retry
	BackoffMax  time.Duration // cap on a single backoff
}

// DefaultRetryPolicy matches RDMA-scale failure detection: microsecond
// deadlines, a handful of attempts, capped exponential backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		Deadline:    200 * time.Microsecond,
		BackoffBase: 100 * time.Microsecond,
		BackoffMax:  2 * time.Millisecond,
	}
}

// FetchOutcome describes how a fetch concluded: how many attempts ran,
// and which injected fault (if any) it collided with along the way —
// FaultTrace is set even when the fetch eventually succeeded, so spans
// can link retries to their cause.
type FetchOutcome struct {
	Attempts   int
	Retries    int
	FaultTrace string
}

// SetFaultAgent attaches a fault agent consulted on every fetch, with
// clock supplying the current virtual time. A nil agent detaches.
func (p *Pool) SetFaultAgent(agent FaultAgent, clock func() time.Duration) {
	p.faults = agent
	p.clock = clock
	if p.retry.MaxAttempts == 0 {
		p.retry = DefaultRetryPolicy()
	}
}

// SetRetryPolicy overrides the pool's retry policy (MaxAttempts >= 1).
func (p *Pool) SetRetryPolicy(rp RetryPolicy) {
	if rp.MaxAttempts < 1 {
		rp.MaxAttempts = 1
	}
	p.retry = rp
}

// RetryPolicyInEffect returns the policy a faulted fetch retries under.
func (p *Pool) RetryPolicyInEffect() RetryPolicy {
	if p.retry.MaxAttempts == 0 {
		return DefaultRetryPolicy()
	}
	return p.retry
}

// Unavailable reports whether the pool is inside an injected outage
// window right now, as a typed *ErrPoolUnavailable (nil = available).
func (p *Pool) Unavailable() error {
	if p.faults == nil || p.clock == nil {
		return nil
	}
	if trace, down := p.faults.PoolDown(p.kind.String(), p.clock()); down {
		return &ErrPoolUnavailable{Pool: p.kind.String(), FaultTrace: trace}
	}
	return nil
}

// Retries returns fetch attempts beyond the first (injected-fault recovery).
func (p *Pool) Retries() int64 { return p.retries }

// FaultFailures returns fetch attempts failed by an injected fault.
func (p *Pool) FaultFailures() int64 { return p.faultFails }

// FetchExhausted returns fetches that gave up after MaxAttempts.
func (p *Pool) FetchExhausted() int64 { return p.exhausted }

// Fetch is FetchLatency made fault-aware: it consults the pool's fault
// agent per attempt and retries transient failures under the retry
// policy, charging the failed attempts' deadlines and seeded-jitter
// backoff into the returned latency. With no agent attached it consumes
// exactly the same rng draws as FetchLatency, so fault-free runs are
// bit-identical to pre-fault behavior.
func (p *Pool) Fetch(rng *rand.Rand, pages int) (time.Duration, FetchOutcome, error) {
	return p.fetchWith(rng, pages, p.FetchLatency)
}

// fetchWith runs the shared attempt/retry loop around one pricing
// function (FetchLatency for demand fetches, BatchFetchLatency for
// doorbell batches), so both paths see identical fault semantics.
func (p *Pool) fetchWith(rng *rand.Rand, pages int, price func(*rand.Rand, int) time.Duration) (time.Duration, FetchOutcome, error) {
	if pages <= 0 {
		return 0, FetchOutcome{Attempts: 1}, nil
	}
	if p.faults == nil || p.clock == nil {
		return price(rng, pages), FetchOutcome{Attempts: 1}, nil
	}
	rp := p.RetryPolicyInEffect()
	var elapsed time.Duration
	out := FetchOutcome{}
	var lastErr error
	for attempt := 1; attempt <= rp.MaxAttempts; attempt++ {
		out.Attempts = attempt
		v := p.faults.FetchVerdict(p.kind.String(), p.clock()+elapsed)
		if v.FaultTrace != "" {
			out.FaultTrace = v.FaultTrace
		}
		if v.Err == nil {
			d := price(rng, pages)
			if v.LatencyScale > 1 {
				d = time.Duration(float64(d) * v.LatencyScale)
			}
			return elapsed + d, out, nil
		}
		lastErr = v.Err
		p.faultFails++
		elapsed += rp.Deadline
		// An outage window fails every retry until it closes — give up
		// immediately and let the caller fall back instead of burning
		// the whole retry budget inside the window.
		if _, down := lastErr.(*ErrPoolUnavailable); down {
			break
		}
		if attempt < rp.MaxAttempts {
			p.retries++
			out.Retries++
			back := rp.BackoffBase << (attempt - 1)
			if back > rp.BackoffMax {
				back = rp.BackoffMax
			}
			if back > 0 {
				half := int64(back / 2)
				elapsed += time.Duration(half + rng.Int63n(half+1))
			}
		}
	}
	p.exhausted++
	if pu, ok := lastErr.(*ErrPoolUnavailable); ok {
		return elapsed, out, pu
	}
	return elapsed, out, &ErrFetchFailed{
		Pool:       p.kind.String(),
		Attempts:   out.Attempts,
		FaultTrace: out.FaultTrace,
		Cause:      lastErr,
	}
}
