package mem

import (
	"fmt"
	"sort"
	"time"
)

// TierManager places consolidated-image blocks across a hot
// byte-addressable tier (CXL) and a cold message-based tier (RDMA/NAS) —
// the paper's multi-layer architecture (§3.1): "the strategic placement
// of hot pages in the upper layers ... and cold pages in the lower
// layers", with the specific promotion policy left orthogonal. This is
// one such policy: greedy frequency-based promotion under a hot-tier
// byte budget.
type TierManager struct {
	hot       *Pool
	cold      *Pool
	hotBudget int64
	blocks    map[string]*tierBlock

	promotions int64
	demotions  int64
}

type tierBlock struct {
	key      string
	pages    int
	hot      bool
	accesses int64
}

// NewTierManager manages placement with at most hotBudget bytes on the
// hot tier (0 means the hot pool's capacity, which must then be set).
func NewTierManager(hot, cold *Pool, hotBudget int64) (*TierManager, error) {
	if hot == nil || cold == nil {
		return nil, fmt.Errorf("mem: tier manager needs both tiers")
	}
	if !hot.Kind().ByteAddressable() {
		return nil, fmt.Errorf("mem: hot tier %s is not byte-addressable", hot.Kind())
	}
	if hotBudget == 0 {
		hotBudget = hot.Tracker().Capacity()
	}
	if hotBudget <= 0 {
		return nil, fmt.Errorf("mem: tier manager needs a hot budget")
	}
	return &TierManager{
		hot: hot, cold: cold, hotBudget: hotBudget,
		blocks: make(map[string]*tierBlock),
	}, nil
}

// Promotions and Demotions report rebalancing activity.
func (m *TierManager) Promotions() int64 { return m.promotions }

// Demotions reports blocks moved to the cold tier.
func (m *TierManager) Demotions() int64 { return m.demotions }

// Place registers a block, initially on the cold tier (promotion is
// earned by access frequency). Placing the same key twice is an error.
func (m *TierManager) Place(key string, pages int) error {
	if pages <= 0 {
		return fmt.Errorf("mem: placing %q with %d pages", key, pages)
	}
	if _, ok := m.blocks[key]; ok {
		return fmt.Errorf("mem: block %q already placed", key)
	}
	if err := m.cold.Tracker().Alloc(int64(pages) * PageSize); err != nil {
		return err
	}
	m.blocks[key] = &tierBlock{key: key, pages: pages}
	return nil
}

// Remove releases a block from whichever tier holds it.
func (m *TierManager) Remove(key string) error {
	b, ok := m.blocks[key]
	if !ok {
		return fmt.Errorf("mem: remove of unknown block %q", key)
	}
	m.tierOf(b).Tracker().Free(int64(b.pages) * PageSize)
	delete(m.blocks, key)
	return nil
}

func (m *TierManager) tierOf(b *tierBlock) *Pool {
	if b.hot {
		return m.hot
	}
	return m.cold
}

// RecordAccess bumps a block's access count (called per invocation that
// touches the block).
func (m *TierManager) RecordAccess(key string, n int64) error {
	b, ok := m.blocks[key]
	if !ok {
		return fmt.Errorf("mem: access to unknown block %q", key)
	}
	if n < 0 {
		return fmt.Errorf("mem: negative access count")
	}
	b.accesses += n
	return nil
}

// TierOf reports which tier currently holds key.
func (m *TierManager) TierOf(key string) (PoolKind, error) {
	b, ok := m.blocks[key]
	if !ok {
		return 0, fmt.Errorf("mem: unknown block %q", key)
	}
	return m.tierOf(b).Kind(), nil
}

// HotBytes returns bytes of managed blocks on the hot tier.
func (m *TierManager) HotBytes() int64 {
	var n int64
	for _, b := range m.blocks {
		if b.hot {
			n += int64(b.pages) * PageSize
		}
	}
	return n
}

// Rebalance greedily packs the most-accessed blocks into the hot budget,
// demoting colder blocks to make room. It returns the simulated copy
// time of the data moved (the caller advances virtual time; rebalancing
// runs off any invocation's critical path).
func (m *TierManager) Rebalance(copyBandwidth float64) (time.Duration, error) {
	if copyBandwidth <= 0 {
		return 0, fmt.Errorf("mem: rebalance with bandwidth %v", copyBandwidth)
	}
	ordered := make([]*tierBlock, 0, len(m.blocks))
	for _, b := range m.blocks {
		ordered = append(ordered, b)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].accesses != ordered[j].accesses {
			return ordered[i].accesses > ordered[j].accesses
		}
		return ordered[i].key < ordered[j].key // deterministic ties
	})
	// Decide the target hot set under the budget.
	wantHot := make(map[string]bool)
	var used int64
	for _, b := range ordered {
		bytes := int64(b.pages) * PageSize
		if used+bytes <= m.hotBudget {
			wantHot[b.key] = true
			used += bytes
		}
	}
	var moved int64
	// Demote first to free hot-tier room, then promote.
	for _, b := range ordered {
		if b.hot && !wantHot[b.key] {
			bytes := int64(b.pages) * PageSize
			if err := m.cold.Tracker().Alloc(bytes); err != nil {
				return 0, err
			}
			m.hot.Tracker().Free(bytes)
			b.hot = false
			m.demotions++
			moved += bytes
		}
	}
	for _, b := range ordered {
		if !b.hot && wantHot[b.key] {
			bytes := int64(b.pages) * PageSize
			if err := m.hot.Tracker().Alloc(bytes); err != nil {
				return 0, err
			}
			m.cold.Tracker().Free(bytes)
			b.hot = true
			m.promotions++
			moved += bytes
		}
	}
	return time.Duration(float64(moved) / copyBandwidth * float64(time.Second)), nil
}
