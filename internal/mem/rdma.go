package mem

import (
	"fmt"
	"math/rand"
	"time"
)

// RDMAServer models the paper's RDMA memory server (§7: ~700 LoC of
// userspace): it pins and registers memory regions, hands out rkeys, and
// serves one-sided reads over reliable-connection queue pairs. The model
// carries what affects the evaluation: per-QP outstanding-request limits,
// NIC-level contention that inflates latency under load, and the
// microarchitectural "performance cliff" under bursts (§9.5).
type RDMAServer struct {
	lat      LatencyModel
	capacity *Tracker
	qps      []*QueuePair
	regions  map[uint32]*MemRegion
	nextRKey uint32
	nextQP   int

	reads  int64
	cliffs int64
}

// QueuePair is one reliable connection between a client node and the
// server.
type QueuePair struct {
	ID          int
	Depth       int // max outstanding one-sided reads
	outstanding int
}

// Outstanding returns in-flight reads on the QP.
func (q *QueuePair) Outstanding() int { return q.outstanding }

// MemRegion is a pinned, registered memory region addressable by rkey.
type MemRegion struct {
	RKey  uint32
	Bytes int64
}

// ConnectCost is the QP handshake latency (out-of-band exchange + state
// transitions); RegisterCostPerPage is pinning + MTT update per page.
const (
	ConnectCost         = 800 * time.Microsecond
	RegisterCostPerPage = 600 * time.Nanosecond
	defaultQPDepth      = 128
)

// NewRDMAServer creates a server managing capacity bytes (0 = unlimited).
func NewRDMAServer(capacity int64, lat LatencyModel) *RDMAServer {
	return &RDMAServer{
		lat:      lat,
		capacity: NewTracker("rdma-server", capacity),
		regions:  make(map[uint32]*MemRegion),
	}
}

// Tracker returns the server's capacity accounting.
func (s *RDMAServer) Tracker() *Tracker { return s.capacity }

// Reads returns the number of one-sided reads served.
func (s *RDMAServer) Reads() int64 { return s.reads }

// Cliffs returns how many reads hit the tail-latency cliff.
func (s *RDMAServer) Cliffs() int64 { return s.cliffs }

// Connect establishes a queue pair for a client node; the returned
// latency is the handshake cost the caller should sleep through.
func (s *RDMAServer) Connect() (*QueuePair, time.Duration) {
	qp := &QueuePair{ID: len(s.qps) + 1, Depth: defaultQPDepth}
	s.qps = append(s.qps, qp)
	return qp, ConnectCost
}

// Register pins a memory region of the given size and returns its rkey
// plus the registration latency (page pinning + translation-table
// updates).
func (s *RDMAServer) Register(bytes int64) (*MemRegion, time.Duration, error) {
	if bytes <= 0 {
		return nil, 0, fmt.Errorf("mem: rdma register of %d bytes", bytes)
	}
	if err := s.capacity.Alloc(bytes); err != nil {
		return nil, 0, err
	}
	s.nextRKey++
	r := &MemRegion{RKey: s.nextRKey, Bytes: bytes}
	s.regions[r.RKey] = r
	return r, time.Duration(PagesFor(bytes)) * RegisterCostPerPage, nil
}

// Deregister unpins a region.
func (s *RDMAServer) Deregister(rkey uint32) error {
	r, ok := s.regions[rkey]
	if !ok {
		return fmt.Errorf("mem: rdma deregister of unknown rkey %d", rkey)
	}
	delete(s.regions, rkey)
	s.capacity.Free(r.Bytes)
	return nil
}

// Region looks a registered region up by rkey.
func (s *RDMAServer) Region(rkey uint32) (*MemRegion, bool) {
	r, ok := s.regions[rkey]
	return r, ok
}

// totalOutstanding sums in-flight reads across QPs (NIC pressure).
func (s *RDMAServer) totalOutstanding() int {
	n := 0
	for _, qp := range s.qps {
		n += qp.outstanding
	}
	return n
}

// BeginRead/EndRead bracket an in-flight read batch on a QP so
// concurrent sessions see each other's load.
func (s *RDMAServer) BeginRead(qp *QueuePair) { qp.outstanding++ }

// EndRead completes a batch.
func (s *RDMAServer) EndRead(qp *QueuePair) {
	if qp.outstanding == 0 {
		panic("mem: rdma EndRead without BeginRead")
	}
	qp.outstanding--
}

// ReadLatency prices a one-sided read of pages 4 KiB pages on qp,
// against the registered region rkey. Offsets past the region fail. The
// caller sleeps the result between BeginRead/EndRead.
func (s *RDMAServer) ReadLatency(rng *rand.Rand, qp *QueuePair, rkey uint32, offset int64, pages int) (time.Duration, error) {
	r, ok := s.regions[rkey]
	if !ok {
		return 0, fmt.Errorf("mem: rdma read with invalid rkey %d", rkey)
	}
	if pages <= 0 || offset < 0 || offset+int64(pages)*PageSize > r.Bytes {
		return 0, fmt.Errorf("mem: rdma read [%d,+%d pages) outside region %d (%d bytes)", offset, pages, rkey, r.Bytes)
	}
	s.reads++
	per := float64(s.lat.RDMAFetch)
	// NIC-level contention across all QPs.
	per *= 1 + s.lat.RDMAContentionFactor*float64(s.totalOutstanding())
	// QP depth exceeded: requests queue behind the send queue.
	if qp.outstanding > qp.Depth {
		per *= float64(qp.outstanding) / float64(qp.Depth)
	}
	if s.totalOutstanding() >= s.lat.RDMAContentionThreshold &&
		rng.Float64() < s.lat.RDMACliffProbability {
		per *= s.lat.RDMACliffFactor
		s.cliffs++
	}
	return time.Duration(per * float64(pages)), nil
}

// AttachRDMAServer backs an RDMA pool with a server: fetches route
// through qp against the region holding the pool's consolidated images,
// so NIC/QP contention shapes fetch latency. The pool's own outstanding
// counter keeps mirroring load for callers that bracket with
// BeginFetch/EndFetch.
func (p *Pool) AttachRDMAServer(s *RDMAServer, qp *QueuePair, rkey uint32) error {
	if p.kind != RDMA {
		return fmt.Errorf("mem: AttachRDMAServer on %s pool", p.kind)
	}
	if _, ok := s.regions[rkey]; !ok {
		return fmt.Errorf("mem: AttachRDMAServer with unknown rkey %d", rkey)
	}
	p.rdmaServer = s
	p.rdmaQP = qp
	p.rdmaRKey = rkey
	return nil
}
