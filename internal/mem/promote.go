package mem

import "container/list"

// PromotionCache is a capacity-bounded per-node direct-access cache for
// rack-hot template pages. Page runs whose cross-invocation fetch count
// crosses a threshold are promoted here by the prefetcher, turning what
// would be repeat RDMA demand faults into CXL-cost direct hits: the
// cache is backed by its own byte-addressable (CXL-kind) pool, so a
// page table that redirects a run at the cache prices every later
// access at DirectAccessCost instead of a fetch round trip.
//
// Eviction is LRU over promoted runs (a Promote or Lookup touches the
// run). Bytes are accounted against the backing pool's Tracker; a run
// larger than the whole cache is rejected rather than thrashing it.
// Eviction frees capacity for new promotions — address spaces that
// already mapped an evicted run keep their redirect until released,
// like deferred TLB invalidation, so accounting is eventual rather
// than instantaneous.
type PromotionCache struct {
	pool    *Pool
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	promotions int64
	evictions  int64
	hits       int64
	rejected   int64
}

// promoEntry is one promoted run.
type promoEntry struct {
	key   string
	pages int
}

// NewPromotionCache creates a cache holding at most capacity bytes of
// promoted pages (0 = unlimited) at the latency model's direct-access
// cost.
func NewPromotionCache(capacity int64, lat LatencyModel) *PromotionCache {
	return &PromotionCache{
		pool:    NewPool(CXL, capacity, lat),
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Pool returns the cache's backing direct-access pool; page tables
// redirect promoted runs at it.
func (c *PromotionCache) Pool() *Pool { return c.pool }

// Promote inserts the run (pages 4 KB pages under key) into the cache,
// evicting least-recently-used runs until it fits. It returns false —
// and promotes nothing — when the run alone exceeds the cache's whole
// capacity. Promoting a resident run just touches it.
func (c *PromotionCache) Promote(key string, pages int) bool {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return true
	}
	need := int64(pages) * PageSize
	limit := c.pool.Tracker().Capacity()
	if limit > 0 && need > limit {
		c.rejected++
		return false
	}
	for limit > 0 && c.pool.Tracker().Used()+need > limit {
		c.evictOldest()
	}
	c.pool.Tracker().MustAlloc(need)
	c.entries[key] = c.order.PushFront(&promoEntry{key: key, pages: pages})
	c.promotions++
	return true
}

// Lookup reports whether the run under key is promoted, counting and
// touching it on a hit.
func (c *PromotionCache) Lookup(key string) bool {
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.order.MoveToFront(el)
	c.hits++
	return true
}

// Contains reports residency without touching LRU order or counters.
func (c *PromotionCache) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

func (c *PromotionCache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		panic("mem: promotion cache eviction with no entries")
	}
	e := c.order.Remove(el).(*promoEntry)
	delete(c.entries, e.key)
	c.pool.Tracker().Free(int64(e.pages) * PageSize)
	c.evictions++
}

// Promotions returns runs promoted into the cache.
func (c *PromotionCache) Promotions() int64 { return c.promotions }

// Evictions returns runs evicted to make room.
func (c *PromotionCache) Evictions() int64 { return c.evictions }

// Hits returns Lookup hits on resident runs.
func (c *PromotionCache) Hits() int64 { return c.hits }

// Rejected returns promotion attempts larger than the whole cache.
func (c *PromotionCache) Rejected() int64 { return c.rejected }

// Runs returns resident promoted runs.
func (c *PromotionCache) Runs() int { return c.order.Len() }
