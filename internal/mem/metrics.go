package mem

import "repro/internal/obs"

// RegisterMetrics publishes the pool's usage and fetch-contention
// series into reg, labeled by the pool's backend kind. Registering the
// same pool (or another pool of the same kind) into one registry twice
// produces duplicate series — register each pool once.
func (p *Pool) RegisterMetrics(reg *obs.Registry) {
	p.RegisterMetricsLabeled(reg, nil)
}

// RegisterMetricsLabeled is RegisterMetrics with extra labels merged in
// (node="n3", rack="r1", scope="fabric"...), so several pools of the
// same kind can coexist in one fleet-wide registry.
func (p *Pool) RegisterMetricsLabeled(reg *obs.Registry, extra map[string]string) {
	labels := map[string]string{"pool": p.kind.String()}
	for k, v := range extra {
		labels[k] = v
	}
	reg.GaugeFunc("trenv_pool_used_bytes", "Bytes held in the memory pool.", labels,
		func() float64 { return float64(p.tracker.Used()) })
	reg.GaugeFunc("trenv_pool_peak_bytes", "Memory pool high-water mark.", labels,
		func() float64 { return float64(p.tracker.Peak()) })
	reg.GaugeFunc("trenv_pool_outstanding_fetches", "Fetch batches currently in flight (contention).", labels,
		func() float64 { return float64(p.outstanding) })
	reg.CounterFunc("trenv_pool_fetches_total", "Fetch batches served by the pool.", labels,
		func() int64 { return p.fetches })
	reg.CounterFunc("trenv_pool_fetch_cliffs_total", "Fetch batches that hit the tail-latency cliff.", labels,
		func() int64 { return p.cliffs })
	reg.CounterFunc("trenv_pool_pages_fetched_total", "Pages moved to the node by fetch batches.", labels,
		func() int64 { return p.pagesFetched })
	reg.CounterFunc("trenv_pool_pages_direct_total", "Pages served in place via byte-addressable loads (CXL).", labels,
		func() int64 { return p.pagesDirect })
	reg.CounterFunc("trenv_pool_fetch_retries_total", "Fetch attempts beyond the first (injected-fault recovery).", labels,
		func() int64 { return p.retries })
	reg.CounterFunc("trenv_pool_fetch_fault_failures_total", "Fetch attempts failed by an injected fault.", labels,
		func() int64 { return p.faultFails })
	reg.CounterFunc("trenv_pool_fetch_exhausted_total", "Fetches that gave up after exhausting the retry budget.", labels,
		func() int64 { return p.exhausted })
	reg.CounterFunc("trenv_pool_batch_fetches_total", "Doorbell-style batched fetches served (prefetch path).", labels,
		func() int64 { return p.batchFetches })
	reg.CounterFunc("trenv_pool_batch_pages_total", "Pages moved by batched fetches.", labels,
		func() int64 { return p.batchPages })
}

// RegisterMetricsLabeled publishes the promotion cache's occupancy and
// churn into reg with extra labels merged in (node="n3"...).
func (c *PromotionCache) RegisterMetricsLabeled(reg *obs.Registry, extra map[string]string) {
	labels := map[string]string{"pool": "promote"}
	for k, v := range extra {
		labels[k] = v
	}
	reg.GaugeFunc("trenv_promote_cache_bytes", "Bytes of promoted pages resident in the direct-access cache.", labels,
		func() float64 { return float64(c.pool.Tracker().Used()) })
	reg.GaugeFunc("trenv_promote_cache_runs", "Promoted page runs resident in the cache.", labels,
		func() float64 { return float64(c.order.Len()) })
	reg.CounterFunc("trenv_promote_promotions_total", "Page runs promoted into the direct-access cache.", labels,
		func() int64 { return c.promotions })
	reg.CounterFunc("trenv_promote_evictions_total", "Promoted runs evicted (LRU) to make room.", labels,
		func() int64 { return c.evictions })
	reg.CounterFunc("trenv_promote_hits_total", "Prefetch lookups served by an already-promoted run.", labels,
		func() int64 { return c.hits })
}
