// Package mem models the memory substrate TrEnv runs on: node-local DRAM,
// and disaggregated memory pools (CXL, RDMA, NAS) holding deduplicated,
// consolidated snapshot images.
//
// The model carries what the paper's evaluation depends on:
//
//   - CXL is byte-addressable: read-only pages are accessed directly with
//     no page fault and no local allocation, at a small fixed extra latency
//     per access (the paper measures 641 ns remote access latency).
//   - RDMA is message-based: any first access to a remote page raises a
//     major fault and fetches a 4 KB block (~6 µs), allocating a local
//     page. Under load RDMA latency inflates and exhibits the P99 cliff
//     the paper cites (up to ~5x during bursts).
//   - Images are deduplicated content-addressed blocks with machine-
//     independent offsets, so identical regions across functions and
//     nodes occupy pool memory once.
package mem

import (
	"fmt"
	"math/rand"
	"time"
)

// PageSize is the (simulated) base page size in bytes.
const PageSize = 4096

// PagesFor returns the number of pages needed to hold n bytes.
func PagesFor(bytes int64) int {
	if bytes <= 0 {
		return 0
	}
	return int((bytes + PageSize - 1) / PageSize)
}

// PoolKind identifies a memory backend tier.
type PoolKind int

const (
	// Local is node-local DRAM.
	Local PoolKind = iota
	// CXL is a byte-addressable shared CXL memory pool (multi-headed device).
	CXL
	// RDMA is a remote memory pool reached via one-sided reads.
	RDMA
	// NAS is network-attached storage, the coldest tier.
	NAS
	// Tmpfs is a DRAM/CXL-backed tmpfs holding snapshot files, served to
	// restoring processes through a userfaultfd handler (the REAP and
	// FaaSnap restore path). It is not byte-addressable by the guest:
	// every touch of a non-resident page takes a fault plus a userspace
	// round trip, and the single handler daemon contends under load.
	Tmpfs
)

// String returns the backend name.
func (k PoolKind) String() string {
	switch k {
	case Local:
		return "local"
	case CXL:
		return "cxl"
	case RDMA:
		return "rdma"
	case NAS:
		return "nas"
	case Tmpfs:
		return "tmpfs"
	}
	return fmt.Sprintf("PoolKind(%d)", int(k))
}

// ByteAddressable reports whether the CPU can issue loads directly against
// this backend (no page fault needed for reads).
func (k PoolKind) ByteAddressable() bool { return k == Local || k == CXL }

// LatencyModel holds the timing constants for memory operations. The
// defaults mirror the paper's testbed (§9.1) and standard kernel costs.
type LatencyModel struct {
	// CXLDirectAccess is the extra latency charged per resident-on-CXL
	// page that an invocation actively uses, relative to local DRAM. It
	// aggregates the per-cacheline gap (641 ns vs ~100 ns) over a page's
	// worth of hot accesses.
	CXLDirectAccess time.Duration
	// RDMAFetch is the base one-sided read latency for one 4 KB page.
	RDMAFetch time.Duration
	// RDMAContentionFactor scales fetch latency per outstanding request:
	// lat = RDMAFetch * (1 + factor*outstanding).
	RDMAContentionFactor float64
	// RDMACliffProbability is the chance, per aggregated fetch batch under
	// contention, of hitting the tail-latency cliff.
	RDMACliffProbability float64
	// RDMACliffFactor multiplies latency when the cliff is hit (~5x).
	RDMACliffFactor float64
	// RDMAContentionThreshold is the outstanding-request count above which
	// the cliff can occur.
	RDMAContentionThreshold int
	// NASFetch is the per-page read latency from network storage.
	NASFetch time.Duration
	// TmpfsFetch is the per-page cost of a userfaultfd-served page from a
	// tmpfs-resident snapshot (fault + wake + copy), per REAP/FaaSnap.
	TmpfsFetch time.Duration
	// TmpfsContentionFactor inflates TmpfsFetch per outstanding batch:
	// the uffd handler daemon serializes under concurrent restores.
	TmpfsContentionFactor float64
	// FaultOverhead is the kernel software cost of taking one page fault
	// (context switch + handler), excluding any data movement.
	FaultOverhead time.Duration
	// MinorFaultOverhead is the cost of a minor fault (page already
	// resident, e.g. userfaultfd wake or CoW trap entry).
	MinorFaultOverhead time.Duration
	// CopyBandwidth is the bulk restore bandwidth (CRIU image parsing +
	// copy); the paper observes ~1 GB/s effective (60 MB image => >60 ms).
	CopyBandwidth float64 // bytes per second
	// CowPageCopy is the raw in-kernel copy of one 4 KB page on a CoW
	// fault (no image parsing involved).
	CowPageCopy time.Duration
	// BatchPageStream is the per-additional-page streaming cost inside a
	// doorbell-style batched fetch: the first page pays the kind's full
	// round trip (contention and cliff included), each further page only
	// drains the link behind it. ~500 ns is a 4 KB page at ~65 Gb/s of
	// effective RDMA READ goodput.
	BatchPageStream time.Duration
}

// DefaultLatencyModel returns the constants used across the evaluation.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		CXLDirectAccess:         550 * time.Nanosecond,
		RDMAFetch:               6 * time.Microsecond,
		RDMAContentionFactor:    0.02,
		RDMACliffProbability:    0.08,
		RDMACliffFactor:         5.0,
		RDMAContentionThreshold: 24,
		NASFetch:                60 * time.Microsecond,
		TmpfsFetch:              7 * time.Microsecond,
		TmpfsContentionFactor:   0.06,
		FaultOverhead:           2500 * time.Nanosecond,
		MinorFaultOverhead:      1200 * time.Nanosecond,
		CopyBandwidth:           1 << 30, // 1 GiB/s
		CowPageCopy:             800 * time.Nanosecond,
		BatchPageStream:         500 * time.Nanosecond,
	}
}

// CopyCost returns the time to copy n bytes at CopyBandwidth.
func (m LatencyModel) CopyCost(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / m.CopyBandwidth * float64(time.Second))
}

// Tracker accounts bytes against a capacity (node DRAM, a pool, a cache).
// A zero capacity means unlimited.
type Tracker struct {
	name     string
	capacity int64
	used     int64
	peak     int64
}

// NewTracker returns a tracker; capacity 0 means unlimited.
func NewTracker(name string, capacity int64) *Tracker {
	return &Tracker{name: name, capacity: capacity}
}

// Name returns the tracker's label.
func (t *Tracker) Name() string { return t.name }

// Capacity returns the byte capacity (0 = unlimited).
func (t *Tracker) Capacity() int64 { return t.capacity }

// Used returns current bytes in use.
func (t *Tracker) Used() int64 { return t.used }

// Peak returns the high-water mark.
func (t *Tracker) Peak() int64 { return t.peak }

// Available returns remaining bytes, or a very large number if unlimited.
func (t *Tracker) Available() int64 {
	if t.capacity == 0 {
		return 1 << 62
	}
	return t.capacity - t.used
}

// ErrNoMemory is returned when an allocation exceeds capacity.
type ErrNoMemory struct {
	Tracker string
	Need    int64
	Free    int64
}

func (e *ErrNoMemory) Error() string {
	return fmt.Sprintf("mem: %s: need %d bytes, %d free", e.Tracker, e.Need, e.Free)
}

// Alloc reserves n bytes, failing if it would exceed capacity.
func (t *Tracker) Alloc(n int64) error {
	if n < 0 {
		panic("mem: negative alloc")
	}
	if t.capacity > 0 && t.used+n > t.capacity {
		return &ErrNoMemory{Tracker: t.name, Need: n, Free: t.capacity - t.used}
	}
	t.used += n
	if t.used > t.peak {
		t.peak = t.used
	}
	return nil
}

// MustAlloc reserves n bytes ignoring capacity (used for accounting-only
// trackers that must never fail, e.g. measuring host page cache).
func (t *Tracker) MustAlloc(n int64) {
	if n < 0 {
		panic("mem: negative alloc")
	}
	t.used += n
	if t.used > t.peak {
		t.peak = t.used
	}
}

// Free releases n bytes.
func (t *Tracker) Free(n int64) {
	if n < 0 || n > t.used {
		panic(fmt.Sprintf("mem: %s: free %d of %d used", t.name, n, t.used))
	}
	t.used -= n
}

// ResetPeak sets the high-water mark to the current usage.
func (t *Tracker) ResetPeak() { t.peak = t.used }

// Pool is a disaggregated memory pool of a given kind holding consolidated
// snapshot images. Reads are served according to the kind's access model.
type Pool struct {
	kind         PoolKind
	lat          LatencyModel
	tracker      *Tracker
	outstanding  int // in-flight fetch batches (RDMA contention)
	fetches      int64
	cliffs       int64
	pagesFetched int64
	pagesDirect  int64
	batchFetches int64 // doorbell-style batched fetches (prefetch path)
	batchPages   int64 // pages moved by batched fetches

	// Optional RDMA server backing (AttachRDMAServer): fetches route
	// through a queue pair so NIC-level contention is shared with every
	// other client of the server.
	rdmaServer *RDMAServer
	rdmaQP     *QueuePair
	rdmaRKey   uint32

	// home names the node (or memory server) hosting the pool, for
	// cross-node span attribution ("" = unplaced).
	home string

	// Optional fault injection (SetFaultAgent): every fetch consults the
	// agent at the current virtual time and failures are retried under
	// the pool's RetryPolicy. clock supplies virtual time so the fault
	// schedule stays deterministic (never wall clock).
	faults FaultAgent
	clock  func() time.Duration
	retry  RetryPolicy

	retries    int64 // fetch attempts beyond the first
	faultFails int64 // attempts failed by an injected fault
	exhausted  int64 // fetches that gave up after MaxAttempts
}

// SetHome labels the pool with the node hosting it.
func (p *Pool) SetHome(node string) { p.home = node }

// Home returns the hosting node label ("" = unplaced).
func (p *Pool) Home() string { return p.home }

// NewPool creates a pool. capacity 0 means unlimited.
func NewPool(kind PoolKind, capacity int64, lat LatencyModel) *Pool {
	return &Pool{kind: kind, lat: lat, tracker: NewTracker("pool/"+kind.String(), capacity)}
}

// Kind returns the pool's backend kind.
func (p *Pool) Kind() PoolKind { return p.kind }

// Latency returns the pool's latency model.
func (p *Pool) Latency() LatencyModel { return p.lat }

// Tracker returns the capacity accounting for the pool.
func (p *Pool) Tracker() *Tracker { return p.tracker }

// Fetches returns the number of fetch batches served (RDMA/NAS).
func (p *Pool) Fetches() int64 { return p.fetches }

// Cliffs returns how many fetch batches hit the tail-latency cliff.
func (p *Pool) Cliffs() int64 { return p.cliffs }

// PagesFetched returns the total pages moved by fetch batches — the
// pool's message-based traffic (RDMA/NAS/Tmpfs, or CXL bulk copies).
func (p *Pool) PagesFetched() int64 { return p.pagesFetched }

// PagesDirect returns the total pages touched via direct byte-
// addressable loads (CXL), which move no data to the node.
func (p *Pool) PagesDirect() int64 { return p.pagesDirect }

// BatchFetches returns doorbell-style batched fetches served (the
// prefetch path; a subset of Fetches).
func (p *Pool) BatchFetches() int64 { return p.batchFetches }

// BatchPages returns pages moved by batched fetches (a subset of
// PagesFetched).
func (p *Pool) BatchPages() int64 { return p.batchPages }

// BeginFetch marks a fetch batch in flight (contention accounting).
func (p *Pool) BeginFetch() { p.outstanding++ }

// EndFetch marks a fetch batch complete.
func (p *Pool) EndFetch() {
	if p.outstanding == 0 {
		panic("mem: EndFetch without BeginFetch")
	}
	p.outstanding--
}

// Outstanding returns in-flight fetch batches.
func (p *Pool) Outstanding() int { return p.outstanding }

// FetchLatency returns the latency to fetch pages remote pages in one
// batch, sampling contention effects from rng. The caller is responsible
// for sleeping this long in simulated time between BeginFetch/EndFetch.
func (p *Pool) FetchLatency(rng *rand.Rand, pages int) time.Duration {
	if pages <= 0 {
		return 0
	}
	p.fetches++
	p.pagesFetched += int64(pages)
	switch p.kind {
	case CXL:
		// CXL never "fetches": direct access. Callers should use
		// DirectAccessCost; treat a fetch as a bulk copy at stable latency.
		return time.Duration(pages) * p.lat.CXLDirectAccess
	case RDMA:
		if p.rdmaServer != nil {
			// Server-backed: mirror the pool's outstanding batches onto
			// the QP so the server sees this client's load, then price
			// the read at offset 0 of the consolidated-image region (the
			// region covers the whole pool).
			p.rdmaQP.outstanding = p.outstanding
			d, err := p.rdmaServer.ReadLatency(rng, p.rdmaQP, p.rdmaRKey, 0, pages)
			if err == nil {
				return d
			}
			// Fall through to the analytic model on bad plumbing rather
			// than corrupting the simulation.
		}
		per := float64(p.lat.RDMAFetch)
		per *= 1 + p.lat.RDMAContentionFactor*float64(p.outstanding)
		if p.outstanding >= p.lat.RDMAContentionThreshold &&
			rng.Float64() < p.lat.RDMACliffProbability {
			per *= p.lat.RDMACliffFactor
			p.cliffs++
		}
		return time.Duration(per * float64(pages))
	case NAS:
		return time.Duration(pages) * p.lat.NASFetch
	case Tmpfs:
		per := float64(p.lat.TmpfsFetch)
		per *= 1 + p.lat.TmpfsContentionFactor*float64(p.outstanding)
		return time.Duration(per * float64(pages))
	default:
		return 0
	}
}

// DirectAccessCost returns the extra execution latency for actively using
// pages resident on this pool via direct loads (CXL only). Other kinds
// return 0 because they are never directly addressed.
func (p *Pool) DirectAccessCost(pages int) time.Duration {
	if p.kind != CXL || pages <= 0 {
		return 0
	}
	p.pagesDirect += int64(pages)
	return time.Duration(pages) * p.lat.CXLDirectAccess
}
