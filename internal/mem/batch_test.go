package mem

import (
	"math/rand"
	"testing"
	"time"
)

// TestBatchAmortizesRoundTrips: one 64-page batch must be far cheaper
// than 64 single-page demand fetches (the doorbell amortization), while
// still costing more than one page alone (streaming is not free).
func TestBatchAmortizesRoundTrips(t *testing.T) {
	lat := DefaultLatencyModel()
	batchPool := NewPool(RDMA, 0, lat)
	demandPool := NewPool(RDMA, 0, lat)
	rng := rand.New(rand.NewSource(1))
	batch := batchPool.BatchFetchLatency(rng, 64)
	var demand time.Duration
	for i := 0; i < 64; i++ {
		demand += demandPool.FetchLatency(rng, 1)
	}
	if batch >= demand/4 {
		t.Fatalf("batch %v not well under 64 demand fetches %v", batch, demand)
	}
	one := NewPool(RDMA, 0, lat).BatchFetchLatency(rng, 1)
	if batch <= one {
		t.Fatalf("64-page batch %v not costlier than 1-page %v", batch, one)
	}
	// Exactly one RTT plus streaming under no contention.
	want := lat.RDMAFetch + 63*lat.BatchPageStream
	uncontended := NewPool(RDMA, 0, lat).BatchFetchLatency(rand.New(rand.NewSource(2)), 64)
	if uncontended != want {
		t.Fatalf("uncontended batch = %v, want RTT+stream = %v", uncontended, want)
	}
}

// TestBatchCountersAndAccounting: batches increment both the shared
// fetch counters and the batch-specific ones.
func TestBatchCountersAndAccounting(t *testing.T) {
	p := NewPool(RDMA, 0, DefaultLatencyModel())
	rng := rand.New(rand.NewSource(1))
	if _, _, err := p.FetchBatch(rng, 10); err != nil {
		t.Fatal(err)
	}
	p.FetchLatency(rng, 3) // demand fetch: no batch counters
	if p.Fetches() != 2 || p.PagesFetched() != 13 {
		t.Fatalf("fetches=%d pages=%d, want 2/13", p.Fetches(), p.PagesFetched())
	}
	if p.BatchFetches() != 1 || p.BatchPages() != 10 {
		t.Fatalf("batchFetches=%d batchPages=%d, want 1/10", p.BatchFetches(), p.BatchPages())
	}
}

// TestFetchBatchMatchesLatencyWithoutAgent: with no fault agent,
// FetchBatch returns exactly BatchFetchLatency's price and consumes the
// same rng draws — the bit-identity contract.
func TestFetchBatchMatchesLatencyWithoutAgent(t *testing.T) {
	lat := DefaultLatencyModel()
	a, b := NewPool(RDMA, 0, lat), NewPool(RDMA, 0, lat)
	ra, rb := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		a.BeginFetch()
		b.BeginFetch()
	}
	for i := 0; i < 20; i++ {
		d, out, err := a.FetchBatch(ra, 32)
		if err != nil || out.Retries != 0 {
			t.Fatalf("clean batch fetch: %v %+v", err, out)
		}
		if want := b.BatchFetchLatency(rb, 32); d != want {
			t.Fatalf("iter %d: FetchBatch %v != BatchFetchLatency %v", i, d, want)
		}
	}
	if ra.Int63() != rb.Int63() {
		t.Fatal("rng streams diverged")
	}
}

// TestPromotionCacheLRU: capacity-bounded insertion evicts the least
// recently used run; lookups refresh recency; oversized runs are
// rejected outright.
func TestPromotionCacheLRU(t *testing.T) {
	c := NewPromotionCache(10*PageSize, DefaultLatencyModel())
	if !c.Promote("a", 4) || !c.Promote("b", 4) {
		t.Fatal("initial promotions refused")
	}
	if !c.Lookup("a") { // refresh a; b is now LRU
		t.Fatal("lookup miss on resident run")
	}
	if !c.Promote("c", 4) { // needs eviction of b
		t.Fatal("promotion with eviction refused")
	}
	if c.Contains("b") || !c.Contains("a") || !c.Contains("c") {
		t.Fatalf("LRU evicted wrong run: a=%v b=%v c=%v", c.Contains("a"), c.Contains("b"), c.Contains("c"))
	}
	if c.Evictions() != 1 || c.Promotions() != 3 || c.Hits() != 1 {
		t.Fatalf("counters: evict=%d promo=%d hits=%d", c.Evictions(), c.Promotions(), c.Hits())
	}
	if used := c.Pool().Tracker().Used(); used != 8*PageSize {
		t.Fatalf("cache bytes = %d, want 8 pages", used)
	}
	if c.Promote("huge", 11) {
		t.Fatal("run larger than the whole cache accepted")
	}
	if c.Rejected() != 1 {
		t.Fatalf("rejected = %d", c.Rejected())
	}
	// Re-promoting a resident run is a touch, not a second allocation.
	if !c.Promote("a", 4) || c.Pool().Tracker().Used() != 8*PageSize {
		t.Fatal("resident re-promotion re-allocated")
	}
}
