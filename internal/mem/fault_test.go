package mem

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// scriptAgent replays a fixed sequence of verdicts, then passes every
// further attempt. It lets tests drive exact retry-then-succeed and
// retry-exhausted fetch sequences without an Injector.
type scriptAgent struct {
	verdicts []FetchVerdict
	down     bool
	calls    int
}

func (a *scriptAgent) FetchVerdict(pool string, at time.Duration) FetchVerdict {
	a.calls++
	if len(a.verdicts) == 0 {
		return FetchVerdict{}
	}
	v := a.verdicts[0]
	a.verdicts = a.verdicts[1:]
	return v
}

func (a *scriptAgent) PoolDown(pool string, at time.Duration) (string, bool) {
	if a.down {
		return "trace-outage", true
	}
	return "", false
}

func flakyVerdict(pool string) FetchVerdict {
	return FetchVerdict{
		Err:        &ErrFlakyFetch{Pool: pool, FaultTrace: "trace-flaky"},
		FaultTrace: "trace-flaky",
	}
}

func TestFetchRetryThenSucceed(t *testing.T) {
	p := NewPool(RDMA, 1<<30, DefaultLatencyModel())
	agent := &scriptAgent{verdicts: []FetchVerdict{flakyVerdict("rdma"), flakyVerdict("rdma")}}
	p.SetFaultAgent(agent, func() time.Duration { return 0 })

	d, out, err := p.Fetch(rand.New(rand.NewSource(1)), 8)
	if err != nil {
		t.Fatalf("fetch after transient faults: %v", err)
	}
	if out.Attempts != 3 || out.Retries != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3/2", out.Attempts, out.Retries)
	}
	if out.FaultTrace != "trace-flaky" {
		t.Fatalf("fault trace %q, want trace-flaky (links retries to their cause)", out.FaultTrace)
	}
	// Two failed attempts charge two deadlines plus backoff on top of the
	// successful attempt's fetch latency.
	rp := p.RetryPolicyInEffect()
	if d < 2*rp.Deadline {
		t.Fatalf("latency %v did not charge the failed attempts (deadline %v)", d, rp.Deadline)
	}
	if p.Retries() != 2 || p.FaultFailures() != 2 || p.FetchExhausted() != 0 {
		t.Fatalf("counters retries=%d faults=%d exhausted=%d, want 2/2/0",
			p.Retries(), p.FaultFailures(), p.FetchExhausted())
	}
}

func TestFetchRetryExhausted(t *testing.T) {
	p := NewPool(RDMA, 1<<30, DefaultLatencyModel())
	agent := &scriptAgent{verdicts: []FetchVerdict{
		flakyVerdict("rdma"), flakyVerdict("rdma"), flakyVerdict("rdma"), flakyVerdict("rdma"),
	}}
	p.SetFaultAgent(agent, func() time.Duration { return 0 })

	_, out, err := p.Fetch(rand.New(rand.NewSource(1)), 8)
	if err == nil {
		t.Fatal("fetch succeeded despite faults on every attempt")
	}
	var failed *ErrFetchFailed
	if !errors.As(err, &failed) {
		t.Fatalf("error type %T, want *ErrFetchFailed", err)
	}
	if failed.Attempts != p.RetryPolicyInEffect().MaxAttempts {
		t.Fatalf("reported attempts = %d, want %d", failed.Attempts, p.RetryPolicyInEffect().MaxAttempts)
	}
	var flaky *ErrFlakyFetch
	if !errors.As(err, &flaky) {
		t.Fatalf("cause of %v does not unwrap to *ErrFlakyFetch", err)
	}
	if out.Attempts != 4 || out.Retries != 3 {
		t.Fatalf("attempts=%d retries=%d, want 4/3", out.Attempts, out.Retries)
	}
	if p.FetchExhausted() != 1 {
		t.Fatalf("exhausted = %d, want 1", p.FetchExhausted())
	}
}

func TestFetchOutageFailsFast(t *testing.T) {
	p := NewPool(RDMA, 1<<30, DefaultLatencyModel())
	outage := FetchVerdict{
		Err:        &ErrPoolUnavailable{Pool: "rdma", FaultTrace: "trace-outage"},
		FaultTrace: "trace-outage",
	}
	agent := &scriptAgent{verdicts: []FetchVerdict{outage, outage, outage, outage}}
	p.SetFaultAgent(agent, func() time.Duration { return 0 })

	_, out, err := p.Fetch(rand.New(rand.NewSource(1)), 8)
	var unavailable *ErrPoolUnavailable
	if !errors.As(err, &unavailable) {
		t.Fatalf("error %v (%T), want *ErrPoolUnavailable", err, err)
	}
	// Outages fail every retry until the window closes: one attempt, no
	// retry-budget burn, so the caller can fall back immediately.
	if out.Attempts != 1 || out.Retries != 0 {
		t.Fatalf("attempts=%d retries=%d, want 1/0 (fail fast inside outage)", out.Attempts, out.Retries)
	}
	if agent.calls != 1 {
		t.Fatalf("agent consulted %d times, want 1", agent.calls)
	}
}

func TestFetchDegradeScalesLatency(t *testing.T) {
	lat := DefaultLatencyModel()
	lat.RDMACliffProbability = 0 // keep the comparison deterministic
	p := NewPool(RDMA, 1<<30, lat)
	base, _, err := p.Fetch(rand.New(rand.NewSource(7)), 16)
	if err != nil {
		t.Fatal(err)
	}

	p2 := NewPool(RDMA, 1<<30, lat)
	p2.SetFaultAgent(&scriptAgent{verdicts: []FetchVerdict{{LatencyScale: 3, FaultTrace: "trace-degrade"}}},
		func() time.Duration { return 0 })
	slow, out, err := p2.Fetch(rand.New(rand.NewSource(7)), 16)
	if err != nil {
		t.Fatal(err)
	}
	if out.FaultTrace != "trace-degrade" {
		t.Fatalf("fault trace %q, want trace-degrade", out.FaultTrace)
	}
	if slow != 3*base {
		t.Fatalf("degraded fetch %v, want 3x base %v", slow, base)
	}
}

func TestFetchNoAgentMatchesFetchLatency(t *testing.T) {
	lat := DefaultLatencyModel()
	p1 := NewPool(RDMA, 1<<30, lat)
	p2 := NewPool(RDMA, 1<<30, lat)
	// Same seed, same draws: Fetch without an agent must be bit-identical
	// to FetchLatency so fault-free runs don't shift.
	r1, r2 := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		want := p1.FetchLatency(r1, 4+i)
		got, out, err := p2.Fetch(r2, 4+i)
		if err != nil || got != want || out.Attempts != 1 || out.Retries != 0 {
			t.Fatalf("iter %d: Fetch=(%v,%+v,%v), FetchLatency=%v", i, got, out, err, want)
		}
	}
}

func TestPoolUnavailableProbe(t *testing.T) {
	p := NewPool(CXL, 1<<30, DefaultLatencyModel())
	if err := p.Unavailable(); err != nil {
		t.Fatalf("pool with no agent reported unavailable: %v", err)
	}
	p.SetFaultAgent(&scriptAgent{down: true}, func() time.Duration { return 0 })
	err := p.Unavailable()
	var unavailable *ErrPoolUnavailable
	if !errors.As(err, &unavailable) {
		t.Fatalf("error %v (%T), want *ErrPoolUnavailable", err, err)
	}
	if unavailable.Pool != "cxl" || unavailable.FaultTrace != "trace-outage" {
		t.Fatalf("unavailable = %+v", unavailable)
	}
}
