package mem

import (
	"math/rand"
	"testing"
	"time"
)

func newServer(t *testing.T) *RDMAServer {
	t.Helper()
	lat := DefaultLatencyModel()
	lat.RDMACliffProbability = 0
	return NewRDMAServer(0, lat)
}

func TestRDMAConnectAndRegister(t *testing.T) {
	s := newServer(t)
	qp, d := s.Connect()
	if qp == nil || d != ConnectCost {
		t.Fatalf("connect: %v %v", qp, d)
	}
	r, reg, err := s.Register(100 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if reg != 100*RegisterCostPerPage {
		t.Fatalf("register cost = %v", reg)
	}
	if got, ok := s.Region(r.RKey); !ok || got != r {
		t.Fatal("region not indexed by rkey")
	}
	if s.Tracker().Used() != 100*PageSize {
		t.Fatalf("server capacity used = %d", s.Tracker().Used())
	}
	if err := s.Deregister(r.RKey); err != nil {
		t.Fatal(err)
	}
	if s.Tracker().Used() != 0 {
		t.Fatal("deregister leaked capacity")
	}
	if err := s.Deregister(r.RKey); err == nil {
		t.Fatal("double deregister succeeded")
	}
}

func TestRDMARegisterValidation(t *testing.T) {
	s := newServer(t)
	if _, _, err := s.Register(0); err == nil {
		t.Fatal("zero-byte region accepted")
	}
	bounded := NewRDMAServer(10*PageSize, DefaultLatencyModel())
	if _, _, err := bounded.Register(20 * PageSize); err == nil {
		t.Fatal("over-capacity region accepted")
	}
}

func TestRDMAReadBoundsChecked(t *testing.T) {
	s := newServer(t)
	qp, _ := s.Connect()
	r, _, _ := s.Register(10 * PageSize)
	rng := rand.New(rand.NewSource(1))
	if _, err := s.ReadLatency(rng, qp, r.RKey, 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadLatency(rng, qp, r.RKey, 0, 11); err == nil {
		t.Fatal("read past region accepted")
	}
	if _, err := s.ReadLatency(rng, qp, r.RKey, 8*PageSize, 3); err == nil {
		t.Fatal("straddling read accepted")
	}
	if _, err := s.ReadLatency(rng, qp, 999, 0, 1); err == nil {
		t.Fatal("invalid rkey accepted")
	}
}

func TestRDMANICContentionAcrossQPs(t *testing.T) {
	s := newServer(t)
	qpA, _ := s.Connect()
	qpB, _ := s.Connect()
	r, _, _ := s.Register(1000 * PageSize)
	rng := rand.New(rand.NewSource(1))
	quiet, _ := s.ReadLatency(rng, qpA, r.RKey, 0, 10)
	// Load on B inflates A's reads: the NIC is shared.
	for i := 0; i < 40; i++ {
		s.BeginRead(qpB)
	}
	loaded, _ := s.ReadLatency(rng, qpA, r.RKey, 0, 10)
	if loaded <= quiet {
		t.Fatalf("cross-QP contention missing: %v vs %v", loaded, quiet)
	}
	for i := 0; i < 40; i++ {
		s.EndRead(qpB)
	}
	if qpB.Outstanding() != 0 {
		t.Fatal("outstanding leaked")
	}
}

func TestRDMAQPDepthQueueing(t *testing.T) {
	s := newServer(t)
	qp, _ := s.Connect()
	r, _, _ := s.Register(1000 * PageSize)
	rng := rand.New(rand.NewSource(1))
	base, _ := s.ReadLatency(rng, qp, r.RKey, 0, 1)
	// Exceed the QP depth: send-queue waits multiply latency.
	for i := 0; i < 2*qp.Depth; i++ {
		s.BeginRead(qp)
	}
	deep, _ := s.ReadLatency(rng, qp, r.RKey, 0, 1)
	if deep < base*2 {
		t.Fatalf("depth overflow not penalized: %v vs %v", deep, base)
	}
}

func TestRDMACliffCounted(t *testing.T) {
	lat := DefaultLatencyModel()
	lat.RDMACliffProbability = 1
	s := NewRDMAServer(0, lat)
	qp, _ := s.Connect()
	r, _, _ := s.Register(1000 * PageSize)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < lat.RDMAContentionThreshold; i++ {
		s.BeginRead(qp)
	}
	before, _ := s.ReadLatency(rng, qp, r.RKey, 0, 1)
	if s.Cliffs() != 1 {
		t.Fatalf("cliffs = %d", s.Cliffs())
	}
	if before < lat.RDMAFetch*time.Duration(lat.RDMACliffFactor) {
		t.Fatalf("cliff latency %v below factor", before)
	}
}

func TestPoolAttachRDMAServer(t *testing.T) {
	lat := DefaultLatencyModel()
	lat.RDMACliffProbability = 0
	s := NewRDMAServer(0, lat)
	qp, _ := s.Connect()
	r, _, _ := s.Register(1 << 30)
	pool := NewPool(RDMA, 0, lat)
	if err := pool.AttachRDMAServer(s, qp, r.RKey); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pool.FetchLatency(rng, 10)
	if s.Reads() != 1 {
		t.Fatalf("server reads = %d; fetches must route through it", s.Reads())
	}
	// Non-RDMA pool rejected; bad rkey rejected.
	cxl := NewPool(CXL, 0, lat)
	if err := cxl.AttachRDMAServer(s, qp, r.RKey); err == nil {
		t.Fatal("CXL pool accepted an RDMA server")
	}
	if err := pool.AttachRDMAServer(s, qp, 999); err == nil {
		t.Fatal("bad rkey accepted")
	}
}
