package mem

import (
	"math/rand"
	"time"
)

// BatchFetchLatency prices one doorbell-style batched fetch of pages
// contiguous remote pages: the initiator posts a single work request
// covering the whole run, so the batch pays one round trip — priced
// like a single-page FetchLatency, contention and the tail cliff
// included — plus BatchPageStream per additional page while the
// payload drains the link. This is the amortization that makes
// working-set prefetch worthwhile: N demand faults cost N round trips,
// one batch costs one.
//
// Byte-addressable pools (CXL) have no doorbell to ring; a batch there
// is the same bulk copy FetchLatency charges. Server-backed RDMA pools
// use the analytic model for batches (the queue-pair path prices
// per-page reads, not doorbell bursts).
//
// The caller sleeps the returned duration in simulated time and holds
// BeginFetch/EndFetch around it, exactly as with FetchLatency.
func (p *Pool) BatchFetchLatency(rng *rand.Rand, pages int) time.Duration {
	if pages <= 0 {
		return 0
	}
	p.fetches++
	p.pagesFetched += int64(pages)
	p.batchFetches++
	p.batchPages += int64(pages)
	stream := time.Duration(pages-1) * p.lat.BatchPageStream
	switch p.kind {
	case CXL:
		return time.Duration(pages) * p.lat.CXLDirectAccess
	case RDMA:
		per := float64(p.lat.RDMAFetch)
		per *= 1 + p.lat.RDMAContentionFactor*float64(p.outstanding)
		if p.outstanding >= p.lat.RDMAContentionThreshold &&
			rng.Float64() < p.lat.RDMACliffProbability {
			per *= p.lat.RDMACliffFactor
			p.cliffs++
		}
		return time.Duration(per) + stream
	case NAS:
		return p.lat.NASFetch + stream
	case Tmpfs:
		per := float64(p.lat.TmpfsFetch)
		per *= 1 + p.lat.TmpfsContentionFactor*float64(p.outstanding)
		return time.Duration(per) + stream
	default:
		return 0
	}
}

// FetchBatch is BatchFetchLatency made fault-aware: the whole batch is
// one unit of work against the pool's fault agent, so a failed batch
// retries and backs off as a whole under the pool's RetryPolicy rather
// than splintering into per-page recoveries. With no agent attached it
// consumes exactly the same rng draws as BatchFetchLatency, keeping
// fault-free runs bit-identical.
func (p *Pool) FetchBatch(rng *rand.Rand, pages int) (time.Duration, FetchOutcome, error) {
	return p.fetchWith(rng, pages, p.BatchFetchLatency)
}
