package osproc

import (
	"testing"
	"testing/quick"
)

func TestSpawnAndThreads(t *testing.T) {
	ns := NewPIDNamespace()
	p := ns.Spawn(nil, "python")
	if p.PID != 1 || p.Threads() != 1 || !p.Alive() {
		t.Fatalf("init process: %+v", p)
	}
	if err := p.SpawnThreads(13); err != nil {
		t.Fatal(err)
	}
	if p.Threads() != 14 {
		t.Fatalf("threads = %d", p.Threads())
	}
	if err := p.SpawnThreads(0); err == nil {
		t.Fatal("zero thread spawn accepted")
	}
	if ns.TotalThreads() != 14 {
		t.Fatalf("namespace threads = %d", ns.TotalThreads())
	}
}

func TestFDTable(t *testing.T) {
	ns := NewPIDNamespace()
	p := ns.Spawn(nil, "proc")
	a, _ := p.Open(FDFile, "/etc/config")
	b, _ := p.Open(FDSocket, "tcp:443")
	if a.Num != 0 || b.Num != 1 {
		t.Fatalf("fd numbering: %d %d", a.Num, b.Num)
	}
	if p.OpenFDs() != 2 || p.Sockets() != 1 {
		t.Fatalf("fds=%d sockets=%d", p.OpenFDs(), p.Sockets())
	}
	if err := p.Close(a.Num); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(a.Num); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestKillCascades(t *testing.T) {
	ns := NewPIDNamespace()
	root := ns.Spawn(nil, "init")
	child := ns.Spawn(root, "worker")
	grand := ns.Spawn(child, "helper")
	grand.Open(FDSocket, "s")
	killed, err := ns.Kill(root.PID)
	if err != nil {
		t.Fatal(err)
	}
	if killed != 3 {
		t.Fatalf("killed = %d", killed)
	}
	if ns.Live() != 0 {
		t.Fatalf("live = %d", ns.Live())
	}
	if grand.Alive() || grand.OpenFDs() != 0 {
		t.Fatal("descendant survived or kept fds")
	}
	if _, err := ns.Kill(root.PID); err == nil {
		t.Fatal("double kill accepted")
	}
	if _, err := grand.Open(FDFile, "x"); err == nil {
		t.Fatal("open on dead process accepted")
	}
}

func TestKillAll(t *testing.T) {
	ns := NewPIDNamespace()
	a := ns.Spawn(nil, "a")
	ns.Spawn(a, "a-child")
	ns.Spawn(nil, "b")
	if killed := ns.KillAll(); killed != 3 {
		t.Fatalf("killed = %d", killed)
	}
	if ns.Live() != 0 {
		t.Fatal("survivors after KillAll")
	}
}

func TestRestoreTreeMatchesSpecs(t *testing.T) {
	ns := NewPIDNamespace()
	procs, err := RestoreTree(ns, []ProcSpec{
		{Name: "main", Threads: 14, FDs: 16},
		{Name: "helper", Threads: 2, FDs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 2 || ns.Live() != 2 {
		t.Fatalf("restored %d/%d", len(procs), ns.Live())
	}
	if procs[0].Threads() != 14 || procs[0].OpenFDs() != 16 {
		t.Fatalf("main restored wrong: %d threads %d fds", procs[0].Threads(), procs[0].OpenFDs())
	}
	if procs[1].Threads() != 2 || procs[1].OpenFDs() != 4 {
		t.Fatal("helper restored wrong")
	}
	// Descriptor mix includes sockets (restored, then reset by netns
	// teardown at the sandbox layer).
	if procs[0].Sockets() == 0 {
		t.Fatal("no sockets restored")
	}
	if _, err := RestoreTree(ns, []ProcSpec{{Name: "bad", Threads: 0}}); err == nil {
		t.Fatal("0-thread spec accepted")
	}
}

// Property: spawn/kill sequences keep Live() equal to the set of
// never-killed spawns, and PIDs are unique.
func TestNamespaceConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		ns := NewPIDNamespace()
		var livePIDs []int
		seen := map[int]bool{}
		for _, op := range ops {
			if op%3 != 0 || len(livePIDs) == 0 {
				var parent *Process
				if len(livePIDs) > 0 && op%2 == 0 {
					parent, _ = ns.Get(livePIDs[int(op)%len(livePIDs)])
				}
				p := ns.Spawn(parent, "p")
				if seen[p.PID] {
					return false
				}
				seen[p.PID] = true
				livePIDs = append(livePIDs, p.PID)
			} else {
				pid := livePIDs[int(op)%len(livePIDs)]
				ns.Kill(pid)
				// Recompute live list from the namespace (kill cascades).
				livePIDs = livePIDs[:0]
				for _, p := range ns.Processes() {
					livePIDs = append(livePIDs, p.PID)
				}
			}
			if ns.Live() != len(ns.Processes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFDKindStrings(t *testing.T) {
	for k, want := range map[FDKind]string{FDFile: "file", FDSocket: "socket", FDPipe: "pipe", FDEventFD: "eventfd"} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}
