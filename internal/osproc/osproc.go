// Package osproc models the process side of a function instance: a PID
// namespace holding a process tree, with per-process threads and file
// descriptor tables. This is the state CRIU's "repurpose" request
// recreates inside a reused sandbox (Table 1's "other" process row:
// multi-thread context, registers, sockets, open file descriptors), and
// the state a sandbox Clean must terminate completely before the sandbox
// can serve anyone else.
package osproc

import (
	"fmt"
	"sort"
)

// FDKind classifies a descriptor for restore-cost and teardown purposes.
type FDKind uint8

// Descriptor kinds.
const (
	FDFile FDKind = iota
	FDSocket
	FDPipe
	FDEventFD
)

// String names the kind.
func (k FDKind) String() string {
	switch k {
	case FDFile:
		return "file"
	case FDSocket:
		return "socket"
	case FDPipe:
		return "pipe"
	case FDEventFD:
		return "eventfd"
	}
	return fmt.Sprintf("FDKind(%d)", uint8(k))
}

// FD is one open descriptor.
type FD struct {
	Num  int
	Kind FDKind
	Name string
}

// Thread is one schedulable entity of a process.
type Thread struct {
	TID int
}

// Process is one process in the namespace.
type Process struct {
	PID     int
	Name    string
	parent  *Process
	threads []Thread
	fds     map[int]FD
	nextFD  int
	alive   bool
}

// Threads returns the thread count (>= 1 for a live process).
func (p *Process) Threads() int { return len(p.threads) }

// Alive reports whether the process still runs.
func (p *Process) Alive() bool { return p.alive }

// OpenFDs returns the open descriptor count.
func (p *Process) OpenFDs() int { return len(p.fds) }

// Open allocates the lowest free descriptor number.
func (p *Process) Open(kind FDKind, name string) (FD, error) {
	if !p.alive {
		return FD{}, fmt.Errorf("osproc: open on dead process %d", p.PID)
	}
	fd := FD{Num: p.nextFD, Kind: kind, Name: name}
	p.fds[fd.Num] = fd
	p.nextFD++
	return fd, nil
}

// Close releases a descriptor.
func (p *Process) Close(num int) error {
	if _, ok := p.fds[num]; !ok {
		return fmt.Errorf("osproc: close of bad fd %d in pid %d", num, p.PID)
	}
	delete(p.fds, num)
	return nil
}

// Sockets returns the open socket count — what a repurposed sandbox's
// netns teardown must have forced shut.
func (p *Process) Sockets() int {
	n := 0
	for _, fd := range p.fds {
		if fd.Kind == FDSocket {
			n++
		}
	}
	return n
}

// SpawnThreads adds n threads (clone without CLONE_THREAD unset).
func (p *Process) SpawnThreads(n int) error {
	if !p.alive {
		return fmt.Errorf("osproc: thread spawn on dead process %d", p.PID)
	}
	if n <= 0 {
		return fmt.Errorf("osproc: spawning %d threads", n)
	}
	base := len(p.threads)
	for i := 0; i < n; i++ {
		p.threads = append(p.threads, Thread{TID: p.PID*1000 + base + i})
	}
	return nil
}

// PIDNamespace is an isolated process tree.
type PIDNamespace struct {
	nextPID int
	procs   map[int]*Process
}

// NewPIDNamespace returns an empty namespace.
func NewPIDNamespace() *PIDNamespace {
	return &PIDNamespace{procs: make(map[int]*Process)}
}

// Spawn creates a process (child of parent, which may be nil for the
// namespace's init) with one main thread.
func (ns *PIDNamespace) Spawn(parent *Process, name string) *Process {
	ns.nextPID++
	p := &Process{
		PID:    ns.nextPID,
		Name:   name,
		parent: parent,
		fds:    make(map[int]FD),
		alive:  true,
	}
	p.threads = []Thread{{TID: p.PID * 1000}}
	ns.procs[p.PID] = p
	return p
}

// Get looks a process up by PID.
func (ns *PIDNamespace) Get(pid int) (*Process, bool) {
	p, ok := ns.procs[pid]
	return p, ok
}

// Kill terminates a process and (like PID-namespace semantics on init
// death) every descendant, closing their descriptors. It returns how
// many processes died.
func (ns *PIDNamespace) Kill(pid int) (int, error) {
	root, ok := ns.procs[pid]
	if !ok {
		return 0, fmt.Errorf("osproc: kill of unknown pid %d", pid)
	}
	if !root.alive {
		return 0, fmt.Errorf("osproc: kill of dead pid %d", pid)
	}
	killed := 0
	var kill func(p *Process)
	kill = func(p *Process) {
		for _, c := range ns.children(p) {
			kill(c)
		}
		p.alive = false
		p.fds = make(map[int]FD)
		p.threads = nil
		delete(ns.procs, p.PID)
		killed++
	}
	kill(root)
	return killed, nil
}

// KillAll terminates every process (sandbox cleansing, step B1).
func (ns *PIDNamespace) KillAll() int {
	killed := 0
	for _, p := range ns.roots() {
		n, _ := ns.Kill(p.PID)
		killed += n
	}
	return killed
}

// Live returns the number of running processes.
func (ns *PIDNamespace) Live() int { return len(ns.procs) }

// TotalThreads sums threads across live processes.
func (ns *PIDNamespace) TotalThreads() int {
	n := 0
	for _, p := range ns.procs {
		n += len(p.threads)
	}
	return n
}

// Processes returns live processes in PID order.
func (ns *PIDNamespace) Processes() []*Process {
	out := make([]*Process, 0, len(ns.procs))
	for _, p := range ns.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

func (ns *PIDNamespace) children(p *Process) []*Process {
	var out []*Process
	for _, c := range ns.procs {
		if c.parent == p {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

func (ns *PIDNamespace) roots() []*Process {
	var out []*Process
	for _, p := range ns.procs {
		if p.parent == nil || !p.parent.alive {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// RestoreTree rebuilds the process structure a snapshot describes inside
// a fresh namespace: one process per image with its thread count and
// descriptor table — what CRIU's clone()-based restore performs after
// joining a repurposed sandbox.
func RestoreTree(ns *PIDNamespace, procs []ProcSpec) ([]*Process, error) {
	var out []*Process
	var parent *Process
	for _, spec := range procs {
		if spec.Threads < 1 {
			return nil, fmt.Errorf("osproc: restore of %q with %d threads", spec.Name, spec.Threads)
		}
		p := ns.Spawn(parent, spec.Name)
		if spec.Threads > 1 {
			if err := p.SpawnThreads(spec.Threads - 1); err != nil {
				return nil, err
			}
		}
		for i := 0; i < spec.FDs; i++ {
			kind := FDFile
			switch i % 4 {
			case 1:
				kind = FDSocket
			case 2:
				kind = FDPipe
			case 3:
				kind = FDEventFD
			}
			if _, err := p.Open(kind, fmt.Sprintf("fd-%d", i)); err != nil {
				return nil, err
			}
		}
		if parent == nil {
			parent = p // first process is the tree root
		}
		out = append(out, p)
	}
	return out, nil
}

// ProcSpec describes one process to restore.
type ProcSpec struct {
	Name    string
	Threads int
	FDs     int
}
