// Package core is TrEnv's container runtime: it assembles the substrate
// pieces — repurposable sandboxes, CRIU-style restore engines, and
// mm-templates — into the instance start paths the evaluation compares
// (§4, Figure 6), and models function execution over whichever memory
// tier the start path left the instance on.
//
// Start paths:
//
//   - StartCold: faasd's cold start — full sandbox creation plus the
//     function's bootstrap (interpreter launch, imports).
//   - StartCRIU: full sandbox creation plus a vanilla CRIU restore
//     (mmap storm + full memory copy).
//   - StartLazyVM: the REAP+/FaaSnap+ baselines — recycled netns, a
//     Firecracker-style microVM resume, and a lazy uffd-backed restore.
//   - StartTrEnv: repurpose a pooled sandbox (or create one on miss) and
//     attach the preprocessed mm-templates.
//   - StartReconfig: the Figure 21 ablations — repurposable sandbox but
//     full-copy memory restore, with or without CLONE_INTO_CGROUP.
package core

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/osproc"
	"repro/internal/pagetable"
	"repro/internal/prefetch"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// StartPath labels how an instance came to life.
type StartPath string

// Start paths.
const (
	PathWarm      StartPath = "warm"
	PathCold      StartPath = "cold"
	PathCRIU      StartPath = "criu"
	PathLazyVM    StartPath = "lazy-vm"
	PathRepurpose StartPath = "repurpose"
	// PathFallback is a local cold start taken because the remote-memory
	// restore path was unavailable (graceful degradation).
	PathFallback StartPath = "fallback"
)

// Instance is one live (running or kept-warm) function instance.
type Instance struct {
	Function string
	Profile  workload.FunctionProfile
	Sandbox  *sandbox.Sandbox // container paths
	NetNS    *sandbox.NetNS   // microVM baselines
	Restored *snapshot.Restored
	// Procs is the instance's PID namespace: the restored process tree
	// (threads, descriptors) that cleaning must terminate completely.
	Procs *osproc.PIDNamespace
	Path  StartPath
	// OverheadBytes is the fixed isolation overhead charged to the node
	// (container scaffolding, or guest kernel + hypervisor for VMs).
	OverheadBytes int64
	// IdleSince is set by the platform when the instance enters the
	// keep-alive pool.
	IdleSince time.Duration
	// LastTraceID is the trace of the most recent invocation this
	// instance served — what a later keep-alive expiry span links back
	// to ("this environment died idle after trace X").
	LastTraceID string
	// Uses counts invocations served.
	Uses int
}

// RSS returns the instance's node-DRAM footprint.
func (in *Instance) RSS() int64 {
	var n int64 = in.OverheadBytes
	if in.Restored != nil {
		n += in.Restored.RSS()
	}
	return n
}

// Startup itemizes where an instance's startup latency went.
type Startup struct {
	Path    StartPath
	Sandbox time.Duration // isolation environment work
	Restore time.Duration // memory/process state restore or bootstrap

	// SandboxBD decomposes Sandbox into netns/rootfs/cgroup components.
	// Sandbox minus SandboxBD.Total() is repurposing work (or zero).
	SandboxBD sandbox.Breakdown
	// RestoreBD decomposes Restore into copy/attach/mmap/proc phases.
	// Restore minus RestoreBD.Total() is bootstrap/dispatch work.
	RestoreBD snapshot.Breakdown
	// RestorePool/RestorePages describe where the restore's copy phase
	// read memory from ("" when the path copied nothing) — stamped onto
	// the restore span so tail analysis can blame the medium.
	RestorePool  string
	RestorePages int64
	// Prefetch summarizes the working-set prefetch pass the restore
	// kicked off (nil when no prefetcher is attached or there was
	// nothing to do). The batches race the invocation: their latency is
	// NOT part of Total(), only of the faults they absorb.
	Prefetch *prefetch.Summary
}

// Total returns the startup latency.
func (s Startup) Total() time.Duration { return s.Sandbox + s.Restore }

// Runtime builds instances. All fields must be set.
type Runtime struct {
	Tracker      *mem.Tracker // node DRAM
	Lat          mem.LatencyModel
	Factory      *sandbox.Factory
	SBPool       *sandbox.Pool
	NetPool      *sandbox.NetNSPool
	RestoreCosts snapshot.Costs
	AttachCosts  mmtemplate.CostModel

	// ContainerOverhead is the fixed per-container scaffolding footprint.
	ContainerOverhead int64
	// VMOverhead is the per-microVM footprint (hypervisor + guest kernel)
	// for the Firecracker-based baselines.
	VMOverhead int64
	// VMResume is the Firecracker snapshot-load cost (device state, not
	// memory).
	VMResume time.Duration

	// restoring counts in-flight full-copy restores: concurrent copies
	// share the snapshot medium's bandwidth, so each runs ~N times
	// slower during an N-way burst.
	restoring int

	// PageStats aggregates fault/CoW/traffic accounting across every
	// address space this runtime restored — the node-level series the
	// metrics registry exports.
	PageStats pagetable.Stats

	// Prefetcher, when non-nil, runs the working-set prefetch pass on
	// every TrEnv restore: the image's first run records its fault
	// order, later restores replay it as batched fetches racing the
	// invocation (see internal/prefetch).
	Prefetcher *prefetch.Prefetcher
}

// adopt mirrors the restored spaces' fault accounting into the
// runtime's node-wide aggregate.
func (rt *Runtime) adopt(res *snapshot.Restored) {
	res.SetStatsSink(&rt.PageStats)
}

// sleepFullRestore sleeps through a full-copy restore, inflating the copy
// component by the number of concurrent full restores, and returns the
// total charged latency.
func (rt *Runtime) sleepFullRestore(p *sim.Proc, base time.Duration, copyBytes int64) time.Duration {
	rt.restoring++
	slowdown := rt.restoring - 1
	if slowdown > maxRestoreSharing {
		slowdown = maxRestoreSharing
	}
	extra := time.Duration(float64(rt.Lat.CopyCost(copyBytes)) * float64(slowdown))
	d := base + extra
	p.Sleep(d)
	rt.restoring--
	return d
}

// maxRestoreSharing caps the concurrent-restore slowdown: the snapshot
// medium has parallelism, so N-way bursts do not degrade without bound.
const maxRestoreSharing = 7

// DefaultRuntime wires a runtime over the given node tracker with default
// cost models.
func DefaultRuntime(tracker *mem.Tracker) *Runtime {
	return &Runtime{
		Tracker:           tracker,
		Lat:               mem.DefaultLatencyModel(),
		Factory:           sandbox.NewFactory(sandbox.DefaultCostModel()),
		SBPool:            &sandbox.Pool{},
		NetPool:           &sandbox.NetNSPool{},
		RestoreCosts:      snapshot.DefaultCosts(),
		AttachCosts:       mmtemplate.DefaultCostModel(),
		ContainerOverhead: 8 << 20,
		VMOverhead:        64 << 20,
		VMResume:          12 * time.Millisecond,
	}
}

func (rt *Runtime) chargeOverhead(n int64) error { return rt.Tracker.Alloc(n) }

// restoreProcs rebuilds the snapshot's process tree (threads, fd tables)
// in a fresh PID namespace — the structural side of CRIU's clone-based
// restore whose per-thread/per-fd costs the restore paths charge.
func restoreProcs(snap *snapshot.Snapshot) (*osproc.PIDNamespace, error) {
	ns := osproc.NewPIDNamespace()
	specs := make([]osproc.ProcSpec, 0, len(snap.Procs))
	for i := range snap.Procs {
		p := &snap.Procs[i]
		specs = append(specs, osproc.ProcSpec{Name: p.Name, Threads: p.Threads, FDs: p.FDs})
	}
	if _, err := osproc.RestoreTree(ns, specs); err != nil {
		return nil, err
	}
	return ns, nil
}

// StartCold performs faasd's cold start: full sandbox creation plus the
// bootstrap phase; the process ends up with the whole image resident.
func (rt *Runtime) StartCold(p *sim.Proc, prof workload.FunctionProfile) (*Instance, Startup, error) {
	sb, bd := rt.Factory.Create(p, prof.Name)
	// Bootstrapping allocates the image as it initializes.
	res, err := snapshot.RestoreFullCopy(prof.Snapshot(), rt.Tracker, rt.Lat, rt.RestoreCosts)
	if err != nil {
		return nil, Startup{}, fmt.Errorf("core: cold start %s: %w", prof.Name, err)
	}
	rt.adopt(res)
	res.Latency = 0 // materialization cost is part of ColdInit below
	p.Sleep(prof.ColdInit)
	if err := rt.chargeOverhead(rt.ContainerOverhead); err != nil {
		res.ReleaseAll()
		return nil, Startup{}, err
	}
	procs, err := restoreProcs(res.Snapshot)
	if err != nil {
		res.ReleaseAll()
		return nil, Startup{}, err
	}
	st := Startup{Path: PathCold, Sandbox: bd.Total(), Restore: prof.ColdInit, SandboxBD: bd}
	return &Instance{Function: prof.Name, Profile: prof, Sandbox: sb, Restored: res,
		Procs: procs, Path: PathCold, OverheadBytes: rt.ContainerOverhead}, st, nil
}

// StartCRIU creates a fresh sandbox and restores the process with a
// vanilla CRIU full-copy restore.
func (rt *Runtime) StartCRIU(p *sim.Proc, prof workload.FunctionProfile, snap *snapshot.Snapshot) (*Instance, Startup, error) {
	sb, bd := rt.Factory.Create(p, prof.Name)
	res, err := snapshot.RestoreFullCopy(snap, rt.Tracker, rt.Lat, rt.RestoreCosts)
	if err != nil {
		return nil, Startup{}, fmt.Errorf("core: criu start %s: %w", prof.Name, err)
	}
	rt.adopt(res)
	restore := rt.sleepFullRestore(p, res.Latency, snap.MemBytes())
	if err := rt.chargeOverhead(rt.ContainerOverhead); err != nil {
		res.ReleaseAll()
		return nil, Startup{}, err
	}
	procs, err := restoreProcs(res.Snapshot)
	if err != nil {
		res.ReleaseAll()
		return nil, Startup{}, err
	}
	rbd := res.BD
	rbd.Copy += restore - res.Latency // concurrent-restore sharing surcharge
	st := Startup{Path: PathCRIU, Sandbox: bd.Total(), Restore: restore, SandboxBD: bd, RestoreBD: rbd,
		RestorePool: res.CopyPool, RestorePages: res.CopyPages}
	return &Instance{Function: prof.Name, Profile: prof, Sandbox: sb, Restored: res,
		Procs: procs, Path: PathCRIU, OverheadBytes: rt.ContainerOverhead}, st, nil
}

// StartLazyVM starts a REAP+/FaaSnap+-style microVM: netns from the
// recycling pool (created on miss), a Firecracker snapshot resume, and a
// lazy memory restore from the tmpfs snapshot.
func (rt *Runtime) StartLazyVM(p *sim.Proc, prof workload.FunctionProfile, snap *snapshot.Snapshot, tmpfs *mem.Pool, cfg snapshot.LazyConfig) (*Instance, Startup, error) {
	var sbd sandbox.Breakdown
	ns := rt.NetPool.Get()
	if ns == nil {
		var d time.Duration
		ns, d = rt.Factory.CreateNetNS(p)
		sbd.NetNS = d
	}
	p.Sleep(rt.VMResume)
	sbd.Other = rt.VMResume // Firecracker device-state resume
	sandboxCost := sbd.Total()
	tmpfs.BeginFetch()
	res, err := snapshot.RestoreLazy(p.Rand(), snap, rt.Tracker, tmpfs, cfg, rt.Lat, rt.RestoreCosts)
	if err != nil {
		tmpfs.EndFetch()
		rt.NetPool.Put(ns)
		return nil, Startup{}, fmt.Errorf("core: lazy start %s: %w", prof.Name, err)
	}
	rt.adopt(res)
	p.Sleep(res.Latency)
	tmpfs.EndFetch()
	if err := rt.chargeOverhead(rt.VMOverhead); err != nil {
		res.ReleaseAll()
		rt.NetPool.Put(ns)
		return nil, Startup{}, err
	}
	procs, err := restoreProcs(res.Snapshot)
	if err != nil {
		res.ReleaseAll()
		rt.NetPool.Put(ns)
		return nil, Startup{}, err
	}
	st := Startup{Path: PathLazyVM, Sandbox: sandboxCost, Restore: res.Latency,
		SandboxBD: sbd, RestoreBD: res.BD,
		RestorePool: res.CopyPool, RestorePages: res.CopyPages}
	return &Instance{Function: prof.Name, Profile: prof, NetNS: ns, Restored: res,
		Procs: procs, Path: PathLazyVM, OverheadBytes: rt.VMOverhead}, st, nil
}

// StartTrEnv starts an instance the TrEnv way: repurpose a pooled sandbox
// (creating one only on pool miss) and attach the mm-templates.
func (rt *Runtime) StartTrEnv(p *sim.Proc, prof workload.FunctionProfile, img *snapshot.Image) (*Instance, Startup, error) {
	var sandboxCost time.Duration
	var sbd sandbox.Breakdown
	path := PathRepurpose
	sb := rt.SBPool.Get()
	if sb == nil {
		var bd sandbox.Breakdown
		sb, bd = rt.Factory.Create(p, prof.Name)
		sandboxCost = bd.Total()
		sbd = bd
		path = PathCold // pool miss: sandbox had to be built
	} else {
		d, err := rt.Factory.Repurpose(p, sb, prof.Name)
		if err != nil {
			return nil, Startup{}, err
		}
		sandboxCost = d
	}
	res, err := snapshot.RestoreTemplate(img, rt.Tracker, rt.Lat, rt.AttachCosts, rt.RestoreCosts)
	if err != nil {
		// Don't leak the sandbox on a failed restore (e.g. an injected
		// pool outage): scrub it back into the universal pool so the
		// fallback cold start — or the next invocation — can reuse it.
		rt.Factory.Clean(p, sb)
		rt.SBPool.Put(sb)
		return nil, Startup{}, fmt.Errorf("core: trenv start %s: %w", prof.Name, err)
	}
	rt.adopt(res)
	p.Sleep(res.Latency)
	if err := rt.chargeOverhead(rt.ContainerOverhead); err != nil {
		res.ReleaseAll()
		return nil, Startup{}, err
	}
	procs, err := restoreProcs(res.Snapshot)
	if err != nil {
		res.ReleaseAll()
		return nil, Startup{}, err
	}
	st := Startup{Path: path, Sandbox: sandboxCost, Restore: res.Latency,
		SandboxBD: sbd, RestoreBD: res.BD}
	if rt.Prefetcher != nil {
		// Restore is done; replay (or start recording) the image's
		// working set. Batches race the invocation from here — their
		// latency never blocks the start path.
		st.Prefetch = rt.Prefetcher.OnRestore(p, img.WSLog, res)
	}
	return &Instance{Function: prof.Name, Profile: prof, Sandbox: sb, Restored: res,
		Procs: procs, Path: path, OverheadBytes: rt.ContainerOverhead}, st, nil
}

// StartReconfig is the Figure 21 ablation: sandbox repurposing is on, but
// memory still restores via full copy. With cloneIntoCgroup false the
// legacy cgroup-migration cost is paid on top (the "Reconfig" bar); with
// it true only the fast spawn path is used (the "Cgroup" bar).
func (rt *Runtime) StartReconfig(p *sim.Proc, prof workload.FunctionProfile, snap *snapshot.Snapshot, cloneIntoCgroup bool) (*Instance, Startup, error) {
	var sandboxCost time.Duration
	var sbd sandbox.Breakdown
	path := PathRepurpose
	sb := rt.SBPool.Get()
	if sb == nil {
		var bd sandbox.Breakdown
		sb, bd = rt.Factory.Create(p, prof.Name)
		sandboxCost = bd.Total()
		sbd = bd
		path = PathCold
	} else {
		d, err := rt.Factory.Repurpose(p, sb, prof.Name)
		if err != nil {
			return nil, Startup{}, err
		}
		sandboxCost = d
		if !cloneIntoCgroup {
			sbd.CgroupMigrate = rt.Factory.MigrateCgroup(p)
			sandboxCost += sbd.CgroupMigrate
		}
	}
	res, err := snapshot.RestoreFullCopy(snap, rt.Tracker, rt.Lat, rt.RestoreCosts)
	if err != nil {
		return nil, Startup{}, fmt.Errorf("core: reconfig start %s: %w", prof.Name, err)
	}
	rt.adopt(res)
	restore := rt.sleepFullRestore(p, res.Latency, snap.MemBytes())
	if err := rt.chargeOverhead(rt.ContainerOverhead); err != nil {
		res.ReleaseAll()
		return nil, Startup{}, err
	}
	procs, err := restoreProcs(res.Snapshot)
	if err != nil {
		res.ReleaseAll()
		return nil, Startup{}, err
	}
	rbd := res.BD
	rbd.Copy += restore - res.Latency
	st := Startup{Path: path, Sandbox: sandboxCost, Restore: restore,
		SandboxBD: sbd, RestoreBD: rbd,
		RestorePool: res.CopyPool, RestorePages: res.CopyPages}
	return &Instance{Function: prof.Name, Profile: prof, Sandbox: sb, Restored: res,
		Procs: procs, Path: path, OverheadBytes: rt.ContainerOverhead}, st, nil
}

// Release tears an instance down, returning memory to the node and
// recycling reusable isolation components: TrEnv sandboxes are cleaned
// into the universal pool, baseline netns into the netns pool; CRIU/cold
// sandboxes are discarded.
func (rt *Runtime) Release(p *sim.Proc, in *Instance, recycleSandbox bool) {
	if in.Procs != nil {
		in.Procs.KillAll() // no process survives its instance
	}
	if in.Restored != nil {
		in.Restored.ReleaseAll()
	}
	if in.OverheadBytes > 0 {
		rt.Tracker.Free(in.OverheadBytes)
	}
	if in.NetNS != nil {
		rt.NetPool.Put(in.NetNS)
		in.NetNS = nil
	}
	if in.Sandbox != nil {
		if recycleSandbox {
			rt.Factory.Clean(p, in.Sandbox)
			rt.SBPool.Put(in.Sandbox)
		} else {
			// Discarded entirely: the cgroup directory goes away too.
			if err := rt.Factory.Destroy(in.Sandbox); err != nil {
				panic(err) // sandbox teardown is infallible in this model
			}
		}
		in.Sandbox = nil
	}
}

// ReleaseCrashed tears an instance down after its node crashed: memory
// accounting is unwound so trackers stay consistent, but nothing is
// recycled and no simulated time is charged — there is no node left to
// run cleanup on. Safe to call without a live sim.Proc.
func (rt *Runtime) ReleaseCrashed(in *Instance) {
	if in.Procs != nil {
		in.Procs.KillAll()
	}
	if in.Restored != nil {
		in.Restored.ReleaseAll()
	}
	if in.OverheadBytes > 0 {
		rt.Tracker.Free(in.OverheadBytes)
	}
	in.NetNS = nil
	if in.Sandbox != nil {
		_ = rt.Factory.Destroy(in.Sandbox)
		in.Sandbox = nil
	}
}
