package core

// End-to-end checks for the §8.1 security discussion: what repurposing
// reuses, what it must scrub, and which limitations are inherent.

import (
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// TestRepurposeLeaksNothingAcrossTenants drives the full lifecycle: a JS
// instance writes memory, files, and opens connections; after release
// and repurposing, a CR instance in the same sandbox must observe none
// of it.
func TestRepurposeLeaksNothingAcrossTenants(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	cr := prof(t, "CR")
	place := snapshot.Placement{Hot: f.cxl, HotFraction: 1}
	jsImg, _ := f.store.Preprocess(js.Snapshot(), place)
	crImg, _ := f.store.Preprocess(cr.Snapshot(), place)
	run(t, func(p *sim.Proc) {
		inJS, _, err := f.rt.StartTrEnv(p, js, jsImg)
		if err != nil {
			t.Error(err)
			return
		}
		// JS runs: writes memory (CoW), opens connections, writes files.
		if _, err := f.rt.Execute(p, inJS, ExecOptions{}); err != nil {
			t.Error(err)
			return
		}
		inJS.Sandbox.Net.Connections = 5
		inJS.Sandbox.Rootfs.Func.RecordWrite(9, 3<<20)
		jsRSS := inJS.Restored.RSS()
		if jsRSS == 0 {
			t.Error("JS should have CoW'd pages")
			return
		}
		sbID := inJS.Sandbox.ID
		f.rt.Release(p, inJS, true)
		p.Sleep(5 * time.Millisecond)

		inCR, _, err := f.rt.StartTrEnv(p, cr, crImg)
		if err != nil {
			t.Error(err)
			return
		}
		if inCR.Sandbox.ID != sbID {
			t.Error("expected sandbox reuse for the leak check")
		}
		// Network: connections torn down.
		if inCR.Sandbox.Net.Connections != 0 {
			t.Error("connections leaked across repurpose")
		}
		// Filesystem: upper dir purged, overlay is CR's.
		if inCR.Sandbox.Rootfs.Func.Dirty() {
			t.Error("file modifications leaked across repurpose")
		}
		if inCR.Sandbox.Rootfs.Func.Function != "CR" {
			t.Error("wrong overlay after repurpose")
		}
		// Memory: fresh attach holds zero local pages and only CR's
		// regions; JS's written pages were freed with its instance.
		if inCR.Restored.RSS() != 0 {
			t.Error("memory state leaked into repurposed instance")
		}
		for _, as := range inCR.Restored.Spaces {
			for _, v := range as.VMAs() {
				if v.CountIn(pagetable.Local) != 0 {
					t.Errorf("region %q has local pages before any execution", v.Name)
				}
			}
		}
	})
}

// TestTemplateWritesNeverReachPool asserts the CoW invariant that makes
// cross-instance and cross-node sharing safe: no instance write ever
// mutates pool-resident state.
func TestTemplateWritesNeverReachPool(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	img, _ := f.store.Preprocess(js.Snapshot(), snapshot.Placement{Hot: f.cxl, HotFraction: 1})
	poolBefore := f.cxl.Tracker().Used()
	run(t, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			in, _, err := f.rt.StartTrEnv(p, js, img)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.rt.Execute(p, in, ExecOptions{}); err != nil {
				t.Error(err)
				return
			}
			f.rt.Release(p, in, true)
			p.Sleep(5 * time.Millisecond)
		}
	})
	if f.cxl.Tracker().Used() != poolBefore {
		t.Fatalf("pool mutated by instance writes: %d -> %d", poolBefore, f.cxl.Tracker().Used())
	}
}

// TestASLRLimitationIsDeterministicLayout documents §8.1.2's first
// limitation: every instance attached from the same template shares the
// snapshot's address-space layout, so ASLR provides no randomness.
func TestASLRLimitationIsDeterministicLayout(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	img, _ := f.store.Preprocess(js.Snapshot(), snapshot.Placement{Hot: f.cxl, HotFraction: 1})
	layouts := make([][]uint64, 0, 2)
	run(t, func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			in, _, err := f.rt.StartTrEnv(p, js, img)
			if err != nil {
				t.Error(err)
				return
			}
			var starts []uint64
			for _, as := range in.Restored.Spaces {
				for _, v := range as.VMAs() {
					starts = append(starts, v.Start)
				}
			}
			layouts = append(layouts, starts)
		}
	})
	if len(layouts) != 2 || len(layouts[0]) == 0 {
		t.Fatal("layouts not captured")
	}
	for i := range layouts[0] {
		if layouts[0][i] != layouts[1][i] {
			t.Fatal("layouts differ; the model should reflect the no-ASLR property")
		}
	}
}

// TestPerUserDedupIsolatesTenants verifies the §8.1.2 mitigation for
// dedup side channels: with PerUserDedup, identical content from
// different owners occupies separate pool pages.
func TestPerUserDedupIsolatesTenants(t *testing.T) {
	lat := mem.DefaultLatencyModel()
	build := func(perUser bool) int64 {
		pool := mem.NewPool(mem.CXL, 0, lat)
		st := snapshot.NewStore(mem.NewBlockStore(pool), mmtemplate.NewRegistry())
		st.PerUserDedup = perUser
		a := prof(t, "JS").Snapshot()
		a.Owner = "alice"
		b := prof(t, "DH").Snapshot() // same language => same runtime/libs keys
		b.Owner = "bob"
		if _, err := st.Preprocess(a, snapshot.Placement{Hot: pool, HotFraction: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Preprocess(b, snapshot.Placement{Hot: pool, HotFraction: 1}); err != nil {
			t.Fatal(err)
		}
		return pool.Tracker().Used()
	}
	shared := build(false)
	isolated := build(true)
	if isolated <= shared {
		t.Fatalf("per-user dedup should cost memory: %d <= %d", isolated, shared)
	}
}

// TestProcessTreeDiesWithInstance: §4 step B1 — cleansing terminates the
// previous occupant's entire process tree; the successor starts with its
// own snapshot's processes only.
func TestProcessTreeDiesWithInstance(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	cr := prof(t, "CR")
	place := snapshot.Placement{Hot: f.cxl, HotFraction: 1}
	jsImg, _ := f.store.Preprocess(js.Snapshot(), place)
	crImg, _ := f.store.Preprocess(cr.Snapshot(), place)
	run(t, func(p *sim.Proc) {
		inJS, _, err := f.rt.StartTrEnv(p, js, jsImg)
		if err != nil {
			t.Error(err)
			return
		}
		if inJS.Procs.TotalThreads() != js.Threads {
			t.Errorf("JS threads = %d, want %d", inJS.Procs.TotalThreads(), js.Threads)
		}
		jsNS := inJS.Procs
		f.rt.Release(p, inJS, true)
		if jsNS.Live() != 0 {
			t.Error("JS processes survived release")
		}
		p.Sleep(5 * time.Millisecond)
		inCR, _, err := f.rt.StartTrEnv(p, cr, crImg)
		if err != nil {
			t.Error(err)
			return
		}
		if inCR.Procs.TotalThreads() != cr.Threads {
			t.Errorf("CR threads = %d, want %d", inCR.Procs.TotalThreads(), cr.Threads)
		}
		if inCR.Procs == jsNS {
			t.Error("PID namespace shared across instances")
		}
	})
}
