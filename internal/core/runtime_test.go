package core

import (
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

type fixture struct {
	rt    *Runtime
	node  *mem.Tracker
	cxl   *mem.Pool
	rdma  *mem.Pool
	tmpfs *mem.Pool
	store *snapshot.Store
}

func newFixture() *fixture {
	lat := mem.DefaultLatencyModel()
	node := mem.NewTracker("node", 0)
	cxl := mem.NewPool(mem.CXL, 0, lat)
	return &fixture{
		rt:    DefaultRuntime(node),
		node:  node,
		cxl:   cxl,
		rdma:  mem.NewPool(mem.RDMA, 0, lat),
		tmpfs: mem.NewPool(mem.Tmpfs, 0, lat),
		store: snapshot.NewStore(mem.NewBlockStore(cxl), mmtemplate.NewRegistry()),
	}
}

func prof(t *testing.T, name string) workload.FunctionProfile {
	t.Helper()
	p, err := workload.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// run executes fn as one simulated process to completion.
func run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	e := sim.NewEngine(1)
	e.Go("test", fn)
	e.Run()
}

func TestStartColdPaysBootstrapAndSandbox(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	run(t, func(p *sim.Proc) {
		in, st, err := f.rt.StartCold(p, js)
		if err != nil {
			t.Error(err)
			return
		}
		if st.Path != PathCold {
			t.Errorf("path = %s", st.Path)
		}
		if st.Restore != js.ColdInit {
			t.Errorf("restore = %v, want ColdInit %v", st.Restore, js.ColdInit)
		}
		if st.Sandbox < 100*time.Millisecond {
			t.Errorf("sandbox = %v, want full creation cost", st.Sandbox)
		}
		if in.RSS() <= js.MemBytes {
			t.Errorf("rss = %d, want image + overhead", in.RSS())
		}
		// Execution after cold start takes no restore faults.
		es, err := f.rt.Execute(p, in, ExecOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		if es.MemOverhead != 0 {
			t.Errorf("cold-started exec mem overhead = %v", es.MemOverhead)
		}
		if es.Total < js.BaseExec {
			t.Errorf("exec %v < base %v", es.Total, js.BaseExec)
		}
	})
}

func TestStartCRIUChargesCopy(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	run(t, func(p *sim.Proc) {
		t0 := p.Now()
		in, st, err := f.rt.StartCRIU(p, js, js.Snapshot())
		if err != nil {
			t.Error(err)
			return
		}
		elapsed := p.Now() - t0
		// ~95MB at ~1GiB/s: restore alone approaches 100ms.
		if st.Restore < 60*time.Millisecond {
			t.Errorf("criu restore = %v, want >60ms for ~95MB", st.Restore)
		}
		if elapsed < st.Total() {
			t.Errorf("elapsed %v < startup %v (sleep not charged)", elapsed, st.Total())
		}
		if in.Restored.RSS() != js.Snapshot().MemBytes() {
			t.Errorf("criu rss = %d", in.Restored.RSS())
		}
	})
}

func TestStartTrEnvRepurposeFastPath(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	img, err := f.store.Preprocess(js.Snapshot(), snapshot.Placement{Hot: f.cxl, HotFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	run(t, func(p *sim.Proc) {
		// First start: pool empty => sandbox creation (PathCold).
		in1, st1, err := f.rt.StartTrEnv(p, js, img)
		if err != nil {
			t.Error(err)
			return
		}
		if st1.Path != PathCold {
			t.Errorf("first start path = %s, want cold (pool miss)", st1.Path)
		}
		f.rt.Release(p, in1, true)
		p.Sleep(5 * time.Millisecond)
		if f.rt.SBPool.Len() != 1 {
			t.Errorf("sandbox not recycled")
		}
		// Second start: repurposed, startup in the ~10ms class.
		in2, st2, err := f.rt.StartTrEnv(p, js, img)
		if err != nil {
			t.Error(err)
			return
		}
		if st2.Path != PathRepurpose {
			t.Errorf("second start path = %s", st2.Path)
		}
		// Paper: JS launches in ~8ms via mm-template.
		if st2.Total() > 12*time.Millisecond {
			t.Errorf("repurposed JS startup = %v, want <~12ms", st2.Total())
		}
		if in2.Restored.RSS() != 0 {
			t.Errorf("template start allocated %d bytes", in2.Restored.RSS())
		}
	})
}

func TestTrEnvCrossFunctionRepurpose(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	cr := prof(t, "CR") // different language entirely
	place := snapshot.Placement{Hot: f.cxl, HotFraction: 1}
	jsImg, _ := f.store.Preprocess(js.Snapshot(), place)
	crImg, _ := f.store.Preprocess(cr.Snapshot(), place)
	run(t, func(p *sim.Proc) {
		in, _, err := f.rt.StartTrEnv(p, js, jsImg)
		if err != nil {
			t.Error(err)
			return
		}
		sbID := in.Sandbox.ID
		f.rt.Release(p, in, true)
		p.Sleep(5 * time.Millisecond)
		in2, st2, err := f.rt.StartTrEnv(p, cr, crImg)
		if err != nil {
			t.Error(err)
			return
		}
		if in2.Sandbox.ID != sbID {
			t.Error("sandbox not reused across function types")
		}
		if in2.Sandbox.Function != "CR" || in2.Sandbox.Rootfs.Overlay != "CR" {
			t.Error("sandbox not reconfigured for CR")
		}
		if st2.Path != PathRepurpose {
			t.Errorf("path = %s", st2.Path)
		}
	})
}

func TestStartLazyVMUsesNetNSPool(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	snap := js.Snapshot()
	ws := js.WorkingSet()
	run(t, func(p *sim.Proc) {
		in1, st1, err := f.rt.StartLazyVM(p, js, snap, f.tmpfs, snapshot.ReapConfig(ws))
		if err != nil {
			t.Error(err)
			return
		}
		if st1.Sandbox < 80*time.Millisecond {
			t.Errorf("first lazy start sandbox = %v, want netns creation cost", st1.Sandbox)
		}
		if in1.OverheadBytes != f.rt.VMOverhead {
			t.Errorf("vm overhead = %d", in1.OverheadBytes)
		}
		f.rt.Release(p, in1, false)
		in2, st2, err := f.rt.StartLazyVM(p, js, snap, f.tmpfs, snapshot.ReapConfig(ws))
		if err != nil {
			t.Error(err)
			return
		}
		if st2.Sandbox >= 80*time.Millisecond {
			t.Errorf("second lazy start sandbox = %v, netns pool unused", st2.Sandbox)
		}
		_ = in2
	})
}

func TestExecCXLInflationAndRDMAFaults(t *testing.T) {
	f := newFixture()
	dh := prof(t, "DH") // CXLExecFactor 0.8: execution nearly doubles
	cxlImg, _ := f.store.Preprocess(dh.Snapshot(), snapshot.Placement{Hot: f.cxl, HotFraction: 1})
	rdmaStore := snapshot.NewStore(mem.NewBlockStore(f.rdma), mmtemplate.NewRegistry())
	rdmaImg, _ := rdmaStore.Preprocess(dh.Snapshot(), snapshot.Placement{Hot: f.rdma, HotFraction: 1})
	run(t, func(p *sim.Proc) {
		inC, _, err := f.rt.StartTrEnv(p, dh, cxlImg)
		if err != nil {
			t.Error(err)
			return
		}
		esC, err := f.rt.Execute(p, inC, ExecOptions{ContentionPools: []*mem.Pool{f.cxl}})
		if err != nil {
			t.Error(err)
			return
		}
		// DH on CXL: total exec should approach 2x base.
		if esC.Total < time.Duration(float64(dh.BaseExec)*1.4) {
			t.Errorf("DH on CXL exec %v, want >= 1.4x base %v", esC.Total, dh.BaseExec)
		}
		inR, _, err := f.rt.StartTrEnv(p, dh, rdmaImg)
		if err != nil {
			t.Error(err)
			return
		}
		esR, err := f.rt.Execute(p, inR, ExecOptions{ContentionPools: []*mem.Pool{f.rdma}})
		if err != nil {
			t.Error(err)
			return
		}
		if esR.MemOverhead == 0 {
			t.Error("RDMA exec took no fetch overhead")
		}
		// RDMA allocates local pages for everything touched; CXL only for writes.
		if inR.Restored.RSS() <= inC.Restored.RSS() {
			t.Errorf("RDMA rss %d should exceed CXL rss %d", inR.Restored.RSS(), inC.Restored.RSS())
		}
	})
}

func TestExecSecondInvocationWarm(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	img, _ := f.store.Preprocess(js.Snapshot(), snapshot.Placement{Hot: f.cxl, HotFraction: 1})
	run(t, func(p *sim.Proc) {
		in, _, err := f.rt.StartTrEnv(p, js, img)
		if err != nil {
			t.Error(err)
			return
		}
		es1, _ := f.rt.Execute(p, in, ExecOptions{})
		es2, _ := f.rt.Execute(p, in, ExecOptions{})
		// Warm run: CoW already done, only direct-access overhead remains.
		if es2.MemOverhead >= es1.MemOverhead {
			t.Errorf("warm exec overhead %v >= first %v", es2.MemOverhead, es1.MemOverhead)
		}
		if in.Uses != 2 {
			t.Errorf("uses = %d", in.Uses)
		}
	})
}

func TestExecCPUQueueing(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	img, _ := f.store.Preprocess(js.Snapshot(), snapshot.Placement{Hot: f.cxl, HotFraction: 1})
	e := sim.NewEngine(1)
	cpu := sim.NewResource("cores", 1)
	waits := make([]time.Duration, 0, 2)
	for i := 0; i < 2; i++ {
		e.Go("inv", func(p *sim.Proc) {
			in, _, err := f.rt.StartTrEnv(p, js, img)
			if err != nil {
				t.Error(err)
				return
			}
			es, err := f.rt.Execute(p, in, ExecOptions{CPU: cpu})
			if err != nil {
				t.Error(err)
				return
			}
			waits = append(waits, es.CPUWait)
		})
	}
	e.Run()
	if len(waits) != 2 {
		t.Fatalf("invocations = %d", len(waits))
	}
	if waits[0] == 0 && waits[1] == 0 {
		t.Fatal("no CPU queueing with 1 core and 2 invocations")
	}
}

func TestReleaseReturnsAllMemory(t *testing.T) {
	f := newFixture()
	js := prof(t, "JS")
	img, _ := f.store.Preprocess(js.Snapshot(), snapshot.Placement{Hot: f.cxl, HotFraction: 1})
	run(t, func(p *sim.Proc) {
		before := f.node.Used()
		in, _, err := f.rt.StartTrEnv(p, js, img)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.rt.Execute(p, in, ExecOptions{}); err != nil {
			t.Error(err)
			return
		}
		f.rt.Release(p, in, true)
		if f.node.Used() != before {
			t.Errorf("node leaked %d bytes", f.node.Used()-before)
		}
	})
}

func TestReconfigAblationOrdering(t *testing.T) {
	// Fig 21: legacy migration > CLONE_INTO_CGROUP; both >> mm-template.
	f := newFixture()
	js := prof(t, "JS")
	snap := js.Snapshot()
	img, _ := f.store.Preprocess(snap, snapshot.Placement{Hot: f.cxl, HotFraction: 1})
	var reconfig, cgroup, tmpl time.Duration
	run(t, func(p *sim.Proc) {
		seed := func() { // ensure pool has a cleaned sandbox
			in, _, err := f.rt.StartCold(p, js)
			if err != nil {
				t.Error(err)
				return
			}
			f.rt.Release(p, in, true)
			p.Sleep(5 * time.Millisecond)
		}
		seed()
		in, st, err := f.rt.StartReconfig(p, js, snap, false)
		if err != nil {
			t.Error(err)
			return
		}
		reconfig = st.Total()
		f.rt.Release(p, in, true)
		p.Sleep(5 * time.Millisecond)
		in, st, err = f.rt.StartReconfig(p, js, snap, true)
		if err != nil {
			t.Error(err)
			return
		}
		cgroup = st.Total()
		f.rt.Release(p, in, true)
		p.Sleep(5 * time.Millisecond)
		in, st, err = f.rt.StartTrEnv(p, js, img)
		if err != nil {
			t.Error(err)
			return
		}
		tmpl = st.Total()
		f.rt.Release(p, in, true)
	})
	if !(reconfig > cgroup && cgroup > tmpl) {
		t.Fatalf("ablation ordering broken: reconfig=%v cgroup=%v template=%v", reconfig, cgroup, tmpl)
	}
}
