package core

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/sim"
)

// ExecOptions tunes the execution model for one invocation.
type ExecOptions struct {
	// CPU, when non-nil, is the node's core pool; the invocation holds
	// one core for its on-CPU time (queueing under load).
	CPU *sim.Resource
	// ContentionPools are held busy (BeginFetch/EndFetch) for the
	// invocation's duration so concurrent sessions inflate each other's
	// remote-memory latency.
	ContentionPools []*mem.Pool
}

// ExecStats reports one invocation's execution composition.
type ExecStats struct {
	CPUTime     time.Duration // on-CPU time including memory overheads
	IOTime      time.Duration // off-CPU waits
	MemOverhead time.Duration // fault/fetch/CoW/direct-access latency
	CPUWait     time.Duration // queueing delay for a core
	Total       time.Duration
	// Remote-memory attribution: pages pulled from remote pools during
	// execution, the latency those pulls contributed, and the pool kind
	// that served most of them ("" when nothing was fetched).
	FetchedPages int
	FetchLat     time.Duration
	FetchPool    string
	// Retries counts fetch attempts replayed after injected faults, and
	// FaultTrace names the fault that forced them ("" = clean run).
	Retries    int
	FaultTrace string
	// PrefetchHits counts touched pages a working-set prefetch batch
	// had delivered (or was in flight for) — demand fetches avoided;
	// PrefetchWait is the time spent parked on in-flight batches.
	PrefetchHits int
	PrefetchWait time.Duration
}

// PromoteWorkingSet copies the instance's hot read-only pages from the
// remote pool into node DRAM, trading memory for execution speed — the
// paper's suggested optimization of storing hot regions of the memory
// image locally (§9.2.1). It returns the newly promoted byte count; the
// caller decides whether (and where) to charge the copy latency.
func (rt *Runtime) PromoteWorkingSet(in *Instance) (int64, error) {
	before := in.Restored.RSS()
	for _, a := range in.Profile.Accesses() {
		as, v := in.Restored.Region(a.Region)
		if v == nil {
			return 0, fmt.Errorf("core: %s: region %q missing", in.Profile.Name, a.Region)
		}
		pages := a.ReadPages
		if a.WritePages > pages {
			pages = a.WritePages
		}
		if pages == 0 {
			continue
		}
		if err := as.MakeResident(v, 0, pages); err != nil {
			return 0, err
		}
	}
	return in.Restored.RSS() - before, nil
}

// Execute runs one invocation on the instance: it touches the profile's
// per-region working set through the instance's page tables (faulting,
// fetching, and CoW-copying according to where the start path left the
// pages), inflates CPU time for CXL-resident hot data, and occupies a
// core for the on-CPU portion.
func (rt *Runtime) Execute(p *sim.Proc, in *Instance, opts ExecOptions) (ExecStats, error) {
	var st ExecStats
	prof := in.Profile
	for _, pool := range opts.ContentionPools {
		pool.BeginFetch()
	}
	defer func() {
		for _, pool := range opts.ContentionPools {
			pool.EndFetch()
		}
	}()

	var memLat time.Duration
	var directPages, readPages int
	for _, a := range prof.Accesses() {
		as, v := in.Restored.Region(a.Region)
		if v == nil {
			return st, fmt.Errorf("core: %s: region %q missing", prof.Name, a.Region)
		}
		res, err := as.Access(p.Rand(), v, a.ReadPages, a.WritePages)
		st.Retries += res.Retries
		if st.FaultTrace == "" {
			st.FaultTrace = res.FaultTrace
		}
		if err != nil {
			return st, fmt.Errorf("core: %s: access %q: %w", prof.Name, a.Region, err)
		}
		memLat += res.Latency
		directPages += res.DirectPages
		readPages += a.ReadPages
		st.FetchedPages += res.FetchedPages
		st.FetchLat += res.FetchLat
		if st.FetchPool == "" {
			st.FetchPool = res.FetchPool
		}
		st.PrefetchHits += res.PrefetchHits
		st.PrefetchWait += res.PrefetchWait
	}
	// Hot read-only data living on CXL slows every pass over it, not just
	// the first touch: charge the profile's inflation scaled by how much
	// of the read set is CXL-resident.
	var inflation time.Duration
	if directPages > 0 && readPages > 0 {
		share := float64(directPages) / float64(readPages)
		inflation = time.Duration(float64(prof.BaseExec) * prof.CXLExecFactor * share)
	}
	st.MemOverhead = memLat + inflation

	cpuTime := time.Duration(float64(prof.BaseExec)*prof.CPUFraction) + st.MemOverhead
	ioTime := prof.BaseExec - time.Duration(float64(prof.BaseExec)*prof.CPUFraction)

	if opts.CPU != nil {
		t0 := p.Now()
		opts.CPU.Acquire(p, 1)
		st.CPUWait = p.Now() - t0
		p.Sleep(cpuTime)
		opts.CPU.Release(p.Engine(), 1)
	} else {
		p.Sleep(cpuTime)
	}
	p.Sleep(ioTime)

	st.CPUTime = cpuTime
	st.IOTime = ioTime
	st.Total = st.CPUWait + cpuTime + ioTime
	in.Uses++
	return st, nil
}
