package core

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// StartupSpan renders a Startup as an obs span subtree rooted at
// "startup" and anchored at virtual time at. Child phases are laid out
// sequentially (matching the order the start paths charge them) and
// their durations sum exactly to st.Total(), so trace timelines agree
// with the reported startup latencies.
func StartupSpan(st Startup, at time.Duration) *obs.Span {
	root := obs.NewSpan("startup", at, at+st.Total())
	root.SetAttr("path", string(st.Path))
	cursor := at

	if st.Sandbox > 0 {
		sb := root.Child("sandbox", cursor, cursor+st.Sandbox)
		c := cursor
		add := func(name string, d time.Duration) {
			if d > 0 {
				sb.Child(name, c, c+d)
				c += d
			}
		}
		add("netns", st.SandboxBD.NetNS)
		add("rootfs", st.SandboxBD.Rootfs)
		add("cgroup-create", st.SandboxBD.CgroupCreate)
		add("cgroup-migrate", st.SandboxBD.CgroupMigrate)
		add("other-ns", st.SandboxBD.Other)
		// Residual sandbox work is the repurpose fast path (reconfigure
		// an already-built sandbox for the new occupant).
		if rem := st.Sandbox - st.SandboxBD.Total(); rem > 0 {
			sb.Child("repurpose", c, c+rem)
		}
		cursor += st.Sandbox
	}

	if st.Restore > 0 {
		rs := root.Child("restore", cursor, cursor+st.Restore)
		c := cursor
		add := func(name string, d time.Duration) *obs.Span {
			if d <= 0 {
				return nil
			}
			sp := rs.Child(name, c, c+d)
			c += d
			return sp
		}
		add("orchestration", st.RestoreBD.Orchestration)
		add("mmap", st.RestoreBD.Mmap)
		if cp := add("copy", st.RestoreBD.Copy); cp != nil && st.RestorePool != "" {
			// Where the copy read memory from — what tail analysis blames.
			cp.SetAttr("pool", st.RestorePool)
			cp.SetAttr("pages", strconv.FormatInt(st.RestorePages, 10))
		}
		add("attach", st.RestoreBD.Attach)
		add("procs", st.RestoreBD.Procs)
		// Residual restore time is runtime bootstrap (cold init) or the
		// warm-reuse dispatch cost.
		if rem := st.Restore - st.RestoreBD.Total(); rem > 0 {
			name := "bootstrap"
			if st.Path == PathWarm {
				name = "dispatch"
			}
			rs.Child(name, c, c+rem)
		}
	}
	return root
}
