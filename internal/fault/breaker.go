package fault

import "time"

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	BreakerClosed   BreakerState = 0 // traffic flows, failures counted
	BreakerOpen     BreakerState = 1 // traffic rejected until OpenFor elapses
	BreakerHalfOpen BreakerState = 2 // limited probes decide reopen vs close
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	Window           int           // sliding window of recent outcomes
	MinSamples       int           // don't trip before this many samples
	FailureThreshold float64       // open when failure rate >= this
	OpenFor          time.Duration // how long to stay open before probing
	HalfOpenProbes   int           // consecutive successes needed to close
}

// DefaultBreakerConfig matches serverless dispatch timescales.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:           20,
		MinSamples:       5,
		FailureThreshold: 0.5,
		OpenFor:          30 * time.Second,
		HalfOpenProbes:   3,
	}
}

// Breaker is a per-node circuit breaker over pool-fetch failure rate,
// driven entirely by an injected virtual clock so transitions are
// deterministic. Closed counts outcomes in a sliding window and opens
// when the failure rate crosses the threshold; open rejects until
// OpenFor elapses, then goes half-open; half-open closes after
// HalfOpenProbes consecutive successes and reopens on any failure.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Duration

	state    BreakerState
	openedAt time.Duration
	ring     []bool // true = failure
	next     int
	filled   int
	probes   int // consecutive half-open successes
	opens    int64
}

// NewBreaker builds a breaker on virtual clock now.
func NewBreaker(cfg BreakerConfig, now func() time.Duration) *Breaker {
	if cfg.Window <= 0 {
		cfg = DefaultBreakerConfig()
	}
	return &Breaker{cfg: cfg, now: now, ring: make([]bool, cfg.Window)}
}

// State returns the current position, applying the open→half-open
// timeout transition first.
func (b *Breaker) State() BreakerState {
	if b.state == BreakerOpen && b.now()-b.openedAt >= b.cfg.OpenFor {
		b.state = BreakerHalfOpen
		b.probes = 0
	}
	return b.state
}

// Allow reports whether new work should be routed here.
func (b *Breaker) Allow() bool { return b.State() != BreakerOpen }

// Record feeds one invocation outcome.
func (b *Breaker) Record(success bool) {
	switch b.State() {
	case BreakerHalfOpen:
		if !success {
			b.trip()
			return
		}
		b.probes++
		if b.probes >= b.cfg.HalfOpenProbes {
			b.reset()
		}
	case BreakerClosed:
		b.ring[b.next] = !success
		b.next = (b.next + 1) % len(b.ring)
		if b.filled < len(b.ring) {
			b.filled++
		}
		if b.filled >= b.cfg.MinSamples && b.failureRate() >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerOpen:
		// Outcomes of work admitted before the trip; ignore.
	}
}

func (b *Breaker) failureRate() float64 {
	fails := 0
	for i := 0; i < b.filled; i++ {
		if b.ring[i] {
			fails++
		}
	}
	return float64(fails) / float64(b.filled)
}

func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opens++
}

func (b *Breaker) reset() {
	b.state = BreakerClosed
	b.next, b.filled, b.probes = 0, 0, 0
	for i := range b.ring {
		b.ring[i] = false
	}
}

// Opens counts closed/half-open → open transitions.
func (b *Breaker) Opens() int64 { return b.opens }
