// Package fault is a deterministic, virtual-time fault-injection engine
// for the simulated TrEnv substrate. A Scenario schedules pool outages,
// latency degradation, probabilistic flaky fetches, node crashes, and
// link flaps against virtual time; an Injector compiles the scenario
// into an agent that mem.Pool consults on every fetch. All randomness
// comes from a dedicated seeded rng (never wall clock, never the global
// rand), so two same-seed chaos runs produce byte-identical traces and
// metrics, and a zero-fault run consumes no extra draws at all.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// PoolOutage makes every fetch against Pool fail with
// *mem.ErrPoolUnavailable inside [From, To).
type PoolOutage struct {
	Pool string        `json:"pool"`
	From time.Duration `json:"from"`
	To   time.Duration `json:"to"`
}

// PoolDegrade multiplies fetch latency on Pool by Factor inside
// [From, To) — the fetch succeeds, slowly.
type PoolDegrade struct {
	Pool   string        `json:"pool"`
	From   time.Duration `json:"from"`
	To     time.Duration `json:"to"`
	Factor float64       `json:"factor"`
}

// FlakyFetch fails each fetch attempt on Pool with probability Prob
// inside [From, To) (From == To == 0 means the whole run). Burst > 1
// makes each sampled failure take down the next Burst-1 attempts too,
// modeling correlated link errors.
type FlakyFetch struct {
	Pool  string        `json:"pool"`
	From  time.Duration `json:"from"`
	To    time.Duration `json:"to"`
	Prob  float64       `json:"prob"`
	Burst int           `json:"burst,omitempty"`
}

// NodeCrash kills Node at virtual time At. The injector only raises the
// event; whoever owns the node (cluster, platform) wires OnNodeCrash to
// the actual kill.
type NodeCrash struct {
	Node string        `json:"node"`
	At   time.Duration `json:"at"`
}

// LinkFlap is a periodic outage: starting at From, the link to Pool goes
// down for Down at the start of each Period, Count times. It compiles to
// Count PoolOutage windows.
type LinkFlap struct {
	Pool   string        `json:"pool"`
	From   time.Duration `json:"from"`
	Period time.Duration `json:"period"`
	Down   time.Duration `json:"down"`
	Count  int           `json:"count"`
}

// Scenario is a full fault schedule.
type Scenario struct {
	PoolOutages  []PoolOutage  `json:"pool_outages,omitempty"`
	PoolDegrades []PoolDegrade `json:"pool_degrades,omitempty"`
	FlakyFetches []FlakyFetch  `json:"flaky_fetches,omitempty"`
	NodeCrashes  []NodeCrash   `json:"node_crashes,omitempty"`
	LinkFlaps    []LinkFlap    `json:"link_flaps,omitempty"`
}

// Empty reports whether the scenario schedules no faults at all.
func (s Scenario) Empty() bool {
	return len(s.PoolOutages) == 0 && len(s.PoolDegrades) == 0 &&
		len(s.FlakyFetches) == 0 && len(s.NodeCrashes) == 0 && len(s.LinkFlaps) == 0
}

// window is one compiled outage interval [from, to).
type window struct {
	kind  string // "pool-outage" or "link-flap"
	from  time.Duration
	to    time.Duration
	trace string
}

type degradeWin struct {
	from   time.Duration
	to     time.Duration
	factor float64
	trace  string
}

type flakyState struct {
	from  time.Duration
	to    time.Duration
	prob  float64
	burst int
	left  int // remaining forced failures of the current burst
	trace string
}

func (f *flakyState) active(at time.Duration) bool {
	if f.from == 0 && f.to == 0 {
		return true
	}
	return at >= f.from && at < f.to
}

// Injector compiles a Scenario into a mem.FaultAgent. It carries its own
// seeded rng so probabilistic faults never perturb the engine's stream:
// every non-faulted draw in a chaos run matches the fault-free run.
type Injector struct {
	eng    *sim.Engine
	rng    *rand.Rand
	sc     Scenario
	tracer *obs.Tracer

	outages  map[string][]window
	degrades map[string][]degradeWin
	flaky    map[string][]*flakyState

	counts  map[string]int64
	kinds   []string // sorted keys of counts, fixed at compile time
	onCrash func(node string)
	armed   bool
}

// NewInjector compiles sc against eng's virtual clock. seed feeds the
// injector's private rng (mix it with the engine seed for independence).
func NewInjector(eng *sim.Engine, seed int64, sc Scenario) *Injector {
	inj := &Injector{
		eng:      eng,
		rng:      rand.New(rand.NewSource(seed*0x9e3779b9 + 0x666175756c74)), // "faults"
		sc:       sc,
		outages:  make(map[string][]window),
		degrades: make(map[string][]degradeWin),
		flaky:    make(map[string][]*flakyState),
		counts:   make(map[string]int64),
	}
	for i, o := range sc.PoolOutages {
		trace := obs.TraceIDFor("fault", "pool-outage", o.Pool, strconv.Itoa(i))
		inj.outages[o.Pool] = append(inj.outages[o.Pool], window{"pool-outage", o.From, o.To, trace})
		inj.counts["pool-outage"] = 0
	}
	for i, f := range sc.LinkFlaps {
		for k := 0; k < f.Count; k++ {
			from := f.From + time.Duration(k)*f.Period
			trace := obs.TraceIDFor("fault", "link-flap", f.Pool, strconv.Itoa(i), strconv.Itoa(k))
			inj.outages[f.Pool] = append(inj.outages[f.Pool], window{"link-flap", from, from + f.Down, trace})
		}
		inj.counts["link-flap"] = 0
	}
	for pool := range inj.outages {
		ws := inj.outages[pool]
		sort.Slice(ws, func(a, b int) bool { return ws[a].from < ws[b].from })
	}
	for i, d := range sc.PoolDegrades {
		trace := obs.TraceIDFor("fault", "pool-degrade", d.Pool, strconv.Itoa(i))
		inj.degrades[d.Pool] = append(inj.degrades[d.Pool], degradeWin{d.From, d.To, d.Factor, trace})
		inj.counts["pool-degrade"] = 0
	}
	for i, f := range sc.FlakyFetches {
		trace := obs.TraceIDFor("fault", "flaky-fetch", f.Pool, strconv.Itoa(i))
		inj.flaky[f.Pool] = append(inj.flaky[f.Pool], &flakyState{f.From, f.To, f.Prob, f.Burst, 0, trace})
		inj.counts["flaky-fetch"] = 0
	}
	if len(sc.NodeCrashes) > 0 {
		inj.counts["node-crash"] = 0
	}
	for k := range inj.counts {
		inj.kinds = append(inj.kinds, k)
	}
	sort.Strings(inj.kinds)
	return inj
}

// Scenario returns the compiled schedule.
func (inj *Injector) Scenario() Scenario { return inj.sc }

// SetTracer records each scheduled fault as a span when Arm runs.
func (inj *Injector) SetTracer(t *obs.Tracer) { inj.tracer = t }

// OnNodeCrash registers the callback fired when a NodeCrash event lands.
func (inj *Injector) OnNodeCrash(fn func(node string)) { inj.onCrash = fn }

// Arm activates the schedule: fault spans are recorded up front (their
// windows are known at compile time, so their IDs are deterministic) and
// node-crash events are planted into the engine. Idempotent.
func (inj *Injector) Arm() {
	if inj.armed {
		return
	}
	inj.armed = true
	if inj.tracer != nil {
		for pool, ws := range inj.outages {
			for _, w := range ws {
				sp := obs.NewSpan("fault/"+w.kind, w.from, w.to)
				sp.SetAttr("pool", pool)
				sp.AssignIDs(w.trace)
				inj.tracer.Record(sp)
			}
		}
		for pool, ds := range inj.degrades {
			for _, d := range ds {
				sp := obs.NewSpan("fault/pool-degrade", d.from, d.to)
				sp.SetAttr("pool", pool)
				sp.SetAttr("factor", strconv.FormatFloat(d.factor, 'g', -1, 64))
				sp.AssignIDs(d.trace)
				inj.tracer.Record(sp)
			}
		}
		for pool, fs := range inj.flaky {
			for _, f := range fs {
				sp := obs.NewSpan("fault/flaky-fetch", f.from, f.to)
				sp.SetAttr("pool", pool)
				sp.SetAttr("prob", strconv.FormatFloat(f.prob, 'g', -1, 64))
				sp.AssignIDs(f.trace)
				inj.tracer.Record(sp)
			}
		}
	}
	for i, nc := range inj.sc.NodeCrashes {
		nc := nc
		trace := obs.TraceIDFor("fault", "node-crash", nc.Node, strconv.Itoa(i))
		at := nc.At
		if at < inj.eng.Now() {
			at = inj.eng.Now()
		}
		inj.eng.At(at, "fault/crash/"+nc.Node, func(p *sim.Proc) {
			inj.counts["node-crash"]++
			if inj.tracer != nil {
				sp := obs.NewSpan("fault/node-crash", p.Now(), p.Now())
				sp.SetAttr("node", nc.Node)
				sp.AssignIDs(trace)
				inj.tracer.Record(sp)
			}
			if inj.onCrash != nil {
				inj.onCrash(nc.Node)
			}
		})
	}
}

// Armed reports whether Arm has run.
func (inj *Injector) Armed() bool { return inj.armed }

func activeWindow(ws []window, at time.Duration) *window {
	for i := range ws {
		if at >= ws[i].from && at < ws[i].to {
			return &ws[i]
		}
	}
	return nil
}

// FetchVerdict implements mem.FaultAgent: outages dominate, then flaky
// failures, then degradation.
func (inj *Injector) FetchVerdict(pool string, at time.Duration) mem.FetchVerdict {
	if w := activeWindow(inj.outages[pool], at); w != nil {
		inj.counts[w.kind]++
		return mem.FetchVerdict{
			Err:        &mem.ErrPoolUnavailable{Pool: pool, FaultTrace: w.trace},
			FaultTrace: w.trace,
		}
	}
	for _, f := range inj.flaky[pool] {
		if !f.active(at) {
			continue
		}
		if f.left > 0 {
			f.left--
			inj.counts["flaky-fetch"]++
			return mem.FetchVerdict{
				Err:        &mem.ErrFlakyFetch{Pool: pool, FaultTrace: f.trace},
				FaultTrace: f.trace,
			}
		}
		if f.prob > 0 && inj.rng.Float64() < f.prob {
			if f.burst > 1 {
				f.left = f.burst - 1
			}
			inj.counts["flaky-fetch"]++
			return mem.FetchVerdict{
				Err:        &mem.ErrFlakyFetch{Pool: pool, FaultTrace: f.trace},
				FaultTrace: f.trace,
			}
		}
	}
	for _, d := range inj.degrades[pool] {
		if at >= d.from && at < d.to {
			inj.counts["pool-degrade"]++
			return mem.FetchVerdict{LatencyScale: d.factor, FaultTrace: d.trace}
		}
	}
	return mem.FetchVerdict{}
}

// PoolDown implements mem.FaultAgent.
func (inj *Injector) PoolDown(pool string, at time.Duration) (string, bool) {
	if w := activeWindow(inj.outages[pool], at); w != nil {
		inj.counts[w.kind]++
		return w.trace, true
	}
	return "", false
}

// Counts returns injected-fault counts by kind (copy).
func (inj *Injector) Counts() map[string]int64 {
	out := make(map[string]int64, len(inj.counts))
	for k, v := range inj.counts {
		out[k] = v
	}
	return out
}

// Status is the JSON shape of GET /chaos: the armed schedule plus how
// often each fault kind has fired so far.
type Status struct {
	Armed    bool             `json:"armed"`
	Scenario Scenario         `json:"scenario"`
	Injected map[string]int64 `json:"injected"`
}

// Status snapshots the injector for the control plane.
func (inj *Injector) Status() Status {
	return Status{Armed: inj.armed, Scenario: inj.sc, Injected: inj.Counts()}
}

// RegisterMetrics publishes trenv_faults_injected_total{kind=...} into
// reg, with extra labels merged in.
func (inj *Injector) RegisterMetrics(reg *obs.Registry, extra map[string]string) {
	reg.CounterSetFunc("trenv_faults_injected_total", "Injected faults by kind.", func() []obs.LabeledValue {
		out := make([]obs.LabeledValue, 0, len(inj.kinds))
		for _, k := range inj.kinds {
			labels := map[string]string{"kind": k}
			for lk, lv := range extra {
				labels[lk] = lv
			}
			out = append(out, obs.LabeledValue{Labels: labels, Value: float64(inj.counts[k])})
		}
		return out
	})
}

// String summarizes the scenario for logs.
func (s Scenario) String() string {
	if s.Empty() {
		return "no faults"
	}
	return fmt.Sprintf("%d outages, %d degrades, %d flaky, %d crashes, %d flaps",
		len(s.PoolOutages), len(s.PoolDegrades), len(s.FlakyFetches), len(s.NodeCrashes), len(s.LinkFlaps))
}
