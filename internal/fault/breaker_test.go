package fault

import (
	"testing"
	"time"
)

func testBreaker() (*Breaker, *time.Duration) {
	clock := new(time.Duration)
	b := NewBreaker(BreakerConfig{
		Window:           4,
		MinSamples:       2,
		FailureThreshold: 0.5,
		OpenFor:          time.Second,
		HalfOpenProbes:   2,
	}, func() time.Duration { return *clock })
	return b, clock
}

func TestBreakerOpensOnFailureRate(t *testing.T) {
	b, _ := testBreaker()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker not closed")
	}
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("tripped below MinSamples")
	}
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("state %v after 2/2 failures, want open", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
	// Outcomes of already-admitted work must not extend the open window.
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatal("open breaker changed state on a late outcome")
	}
}

func TestBreakerHalfOpenThenClose(t *testing.T) {
	b, clock := testBreaker()
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	*clock = 500 * time.Millisecond
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("breaker left open state before OpenFor elapsed")
	}
	*clock = time.Second // OpenFor elapsed on the virtual clock
	if b.State() != BreakerHalfOpen || !b.Allow() {
		t.Fatalf("state %v after OpenFor, want half-open and allowing probes", b.State())
	}
	b.Record(true)
	if b.State() != BreakerHalfOpen {
		t.Fatal("closed before HalfOpenProbes consecutive successes")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after %d probe successes, want closed", b.State(), 2)
	}
	// The window must be clean after reset: 1/4 failures stays below the
	// 0.5 threshold only if the pre-trip failures were cleared.
	b.Record(true)
	b.Record(true)
	b.Record(true)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("stale window samples survived the reset")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clock := testBreaker()
	b.Record(false)
	b.Record(false)
	*clock = time.Second
	if b.State() != BreakerHalfOpen {
		t.Fatal("breaker not half-open")
	}
	b.Record(true)  // one probe succeeds...
	b.Record(false) // ...then a failure re-trips immediately
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("state %v opens %d, want re-opened (2 opens)", b.State(), b.Opens())
	}
	// The second open window starts at the re-trip time, not the first.
	*clock = 1900 * time.Millisecond
	if b.State() != BreakerOpen {
		t.Fatal("second open window ended early")
	}
	*clock = 2 * time.Second
	if b.State() != BreakerHalfOpen {
		t.Fatal("second open window did not end")
	}
}

func TestBreakerSlidingWindow(t *testing.T) {
	b, _ := testBreaker()
	// Fill the window with successes, then two failures: rate 2/4 = 0.5.
	b.Record(true)
	b.Record(true)
	b.Record(true)
	b.Record(true)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("tripped at 1/4 failure rate")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v at 2/4 failure rate with threshold 0.5, want open", b.State())
	}
}

func TestBreakerStateStrings(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
