package fault

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "outage:cxl:10s-20s,degrade:rdma:3x:5s-15s,flaky:rdma:0.2:burst=3,crash:n1:30s,flap:nas:10s/2s:x3:1m"
	sc, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := Scenario{
		PoolOutages:  []PoolOutage{{Pool: "cxl", From: 10 * time.Second, To: 20 * time.Second}},
		PoolDegrades: []PoolDegrade{{Pool: "rdma", From: 5 * time.Second, To: 15 * time.Second, Factor: 3}},
		FlakyFetches: []FlakyFetch{{Pool: "rdma", Prob: 0.2, Burst: 3}},
		NodeCrashes:  []NodeCrash{{Node: "n1", At: 30 * time.Second}},
		LinkFlaps:    []LinkFlap{{Pool: "nas", From: time.Minute, Period: 10 * time.Second, Down: 2 * time.Second, Count: 3}},
	}
	got, _ := json.Marshal(sc)
	exp, _ := json.Marshal(want)
	if string(got) != string(exp) {
		t.Fatalf("parsed scenario\n  %s\nwant\n  %s", got, exp)
	}
	if sc.Empty() {
		t.Fatal("non-trivial scenario reported Empty")
	}
}

func TestParseSpecFlakyWindow(t *testing.T) {
	sc, err := ParseSpec("flaky:rdma:0.5:10s-20s")
	if err != nil {
		t.Fatal(err)
	}
	f := sc.FlakyFetches[0]
	if f.From != 10*time.Second || f.To != 20*time.Second || f.Prob != 0.5 {
		t.Fatalf("flaky clause = %+v", f)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"bogus:cxl:1s-2s",         // unknown kind
		"outage:cxl",              // missing window
		"outage:cxl:20s-10s",      // empty window
		"degrade:rdma:3:1s-2s",    // factor missing x suffix
		"degrade:rdma:0.5x:1s-2s", // factor <= 1
		"flaky:rdma:1.5",          // probability out of range
		"flaky:rdma:0.2:oops",     // bad option
		"crash:n1:soon",           // bad duration
		"flap:nas:10s/20s:x3",     // down > period
		"flap:nas:10s/2s:3",       // count missing x prefix
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", spec)
		}
	}
	if sc, err := ParseSpec(""); err != nil || !sc.Empty() {
		t.Fatalf("empty spec = (%+v, %v), want empty scenario", sc, err)
	}
}

func TestInjectorOutageWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	inj := NewInjector(eng, 1, Scenario{
		PoolOutages: []PoolOutage{{Pool: "cxl", From: 10 * time.Second, To: 20 * time.Second}},
	})
	if _, down := inj.PoolDown("cxl", 5*time.Second); down {
		t.Fatal("pool down before the window")
	}
	trace, down := inj.PoolDown("cxl", 15*time.Second)
	if !down || trace == "" {
		t.Fatalf("PoolDown inside window = (%q, %v), want traced outage", trace, down)
	}
	if _, down := inj.PoolDown("rdma", 15*time.Second); down {
		t.Fatal("outage leaked to another pool")
	}
	if _, down := inj.PoolDown("cxl", 20*time.Second); down {
		t.Fatal("window not half-open: down at To")
	}
	v := inj.FetchVerdict("cxl", 12*time.Second)
	var unavailable *mem.ErrPoolUnavailable
	if !errors.As(v.Err, &unavailable) || v.FaultTrace != trace {
		t.Fatalf("verdict inside window = %+v, want *ErrPoolUnavailable with trace %q", v, trace)
	}
	if got := inj.Counts()["pool-outage"]; got != 2 {
		t.Fatalf("pool-outage count = %d, want 2 (in-window probe + verdict)", got)
	}
}

func TestInjectorFlakyBurstAndDeterminism(t *testing.T) {
	sc := Scenario{FlakyFetches: []FlakyFetch{{Pool: "rdma", Prob: 0.3, Burst: 3}}}
	run := func(seed int64) []bool {
		inj := NewInjector(sim.NewEngine(1), seed, sc)
		outcomes := make([]bool, 200)
		for i := range outcomes {
			outcomes[i] = inj.FetchVerdict("rdma", time.Duration(i)*time.Millisecond).Err != nil
		}
		return outcomes
	}
	a, b := run(7), run(7)
	fails, burstRun := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed verdict streams diverge at attempt %d", i)
		}
		if a[i] {
			fails++
			burstRun++
		} else {
			burstRun = 0
		}
	}
	if fails == 0 {
		t.Fatal("prob 0.3 over 200 attempts injected nothing")
	}
	// Burst=3 forces each sampled failure to take down at least 3
	// consecutive attempts (unless re-sampled, runs are multiples of 3).
	if fails%3 != 0 && burstRun == 0 {
		t.Logf("burst accounting: %d fails", fails)
	}
	c := run(8)
	diverged := false
	for i := range a {
		if a[i] != c[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical verdict streams (rng unused?)")
	}
}

func TestInjectorDegradeVerdict(t *testing.T) {
	inj := NewInjector(sim.NewEngine(1), 1, Scenario{
		PoolDegrades: []PoolDegrade{{Pool: "rdma", From: 0, To: 10 * time.Second, Factor: 4}},
	})
	v := inj.FetchVerdict("rdma", 5*time.Second)
	if v.Err != nil || v.LatencyScale != 4 || v.FaultTrace == "" {
		t.Fatalf("degrade verdict = %+v, want scale 4 with trace", v)
	}
	if v := inj.FetchVerdict("rdma", 11*time.Second); v.LatencyScale != 0 || v.Err != nil {
		t.Fatalf("verdict outside window = %+v, want clean pass", v)
	}
}

func TestInjectorNodeCrashFires(t *testing.T) {
	eng := sim.NewEngine(1)
	inj := NewInjector(eng, 1, Scenario{
		NodeCrashes: []NodeCrash{{Node: "n2", At: 3 * time.Second}},
	})
	var crashed []string
	var at time.Duration
	inj.OnNodeCrash(func(node string) { crashed = append(crashed, node); at = eng.Now() })
	inj.Arm()
	inj.Arm() // idempotent
	eng.Run()
	if len(crashed) != 1 || crashed[0] != "n2" || at != 3*time.Second {
		t.Fatalf("crashes = %v at %v, want [n2] at 3s", crashed, at)
	}
	st := inj.Status()
	if !st.Armed || st.Injected["node-crash"] != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestLinkFlapCompilesToWindows(t *testing.T) {
	inj := NewInjector(sim.NewEngine(1), 1, Scenario{
		LinkFlaps: []LinkFlap{{Pool: "rdma", From: 10 * time.Second, Period: 10 * time.Second, Down: 2 * time.Second, Count: 2}},
	})
	downAt := func(at time.Duration) bool { _, d := inj.PoolDown("rdma", at); return d }
	cases := map[time.Duration]bool{
		9 * time.Second:  false,
		11 * time.Second: true, // flap 1: [10s, 12s)
		15 * time.Second: false,
		21 * time.Second: true, // flap 2: [20s, 22s)
		31 * time.Second: false,
	}
	for at, want := range cases {
		if got := downAt(at); got != want {
			t.Errorf("PoolDown at %v = %v, want %v", at, got, want)
		}
	}
}
