package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a compact comma-separated chaos spec into a Scenario.
// Clause grammar (durations use Go syntax: 10s, 500ms, 2m):
//
//	outage:<pool>:<from>-<to>             outage window on a pool
//	degrade:<pool>:<factor>x:<from>-<to>  latency multiplier window
//	flaky:<pool>:<prob>[:<from>-<to>][:burst=<n>]
//	crash:<node>:<at>                     node crash at virtual time
//	flap:<pool>:<period>/<down>:x<count>[:<from>]
//
// Example:
//
//	outage:cxl:10s-20s,flaky:rdma:0.2:burst=3,crash:n1:30s
func ParseSpec(spec string) (Scenario, error) {
	var sc Scenario
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 {
			return Scenario{}, fmt.Errorf("fault: bad clause %q", clause)
		}
		kind, rest := parts[0], parts[1:]
		var err error
		switch kind {
		case "outage":
			err = parseOutage(rest, &sc)
		case "degrade":
			err = parseDegrade(rest, &sc)
		case "flaky":
			err = parseFlaky(rest, &sc)
		case "crash":
			err = parseCrash(rest, &sc)
		case "flap":
			err = parseFlap(rest, &sc)
		default:
			err = fmt.Errorf("unknown fault kind %q", kind)
		}
		if err != nil {
			return Scenario{}, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	return sc, nil
}

func parseWindow(s string) (from, to time.Duration, err error) {
	lo, hi, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("bad window %q (want from-to)", s)
	}
	if from, err = time.ParseDuration(lo); err != nil {
		return 0, 0, err
	}
	if to, err = time.ParseDuration(hi); err != nil {
		return 0, 0, err
	}
	if to <= from {
		return 0, 0, fmt.Errorf("empty window %q", s)
	}
	return from, to, nil
}

func parseOutage(p []string, sc *Scenario) error {
	if len(p) != 2 {
		return fmt.Errorf("want outage:<pool>:<from>-<to>")
	}
	from, to, err := parseWindow(p[1])
	if err != nil {
		return err
	}
	sc.PoolOutages = append(sc.PoolOutages, PoolOutage{Pool: p[0], From: from, To: to})
	return nil
}

func parseDegrade(p []string, sc *Scenario) error {
	if len(p) != 3 || !strings.HasSuffix(p[1], "x") {
		return fmt.Errorf("want degrade:<pool>:<factor>x:<from>-<to>")
	}
	factor, err := strconv.ParseFloat(strings.TrimSuffix(p[1], "x"), 64)
	if err != nil || factor <= 1 {
		return fmt.Errorf("bad factor %q (want > 1)", p[1])
	}
	from, to, err := parseWindow(p[2])
	if err != nil {
		return err
	}
	sc.PoolDegrades = append(sc.PoolDegrades, PoolDegrade{Pool: p[0], From: from, To: to, Factor: factor})
	return nil
}

func parseFlaky(p []string, sc *Scenario) error {
	if len(p) < 2 {
		return fmt.Errorf("want flaky:<pool>:<prob>[:<from>-<to>][:burst=<n>]")
	}
	prob, err := strconv.ParseFloat(p[1], 64)
	if err != nil || prob <= 0 || prob > 1 {
		return fmt.Errorf("bad probability %q (want (0,1])", p[1])
	}
	f := FlakyFetch{Pool: p[0], Prob: prob}
	for _, opt := range p[2:] {
		switch {
		case strings.HasPrefix(opt, "burst="):
			n, err := strconv.Atoi(strings.TrimPrefix(opt, "burst="))
			if err != nil || n < 1 {
				return fmt.Errorf("bad burst %q", opt)
			}
			f.Burst = n
		case strings.Contains(opt, "-"):
			if f.From, f.To, err = parseWindow(opt); err != nil {
				return err
			}
		default:
			return fmt.Errorf("bad option %q", opt)
		}
	}
	sc.FlakyFetches = append(sc.FlakyFetches, f)
	return nil
}

func parseCrash(p []string, sc *Scenario) error {
	if len(p) != 2 {
		return fmt.Errorf("want crash:<node>:<at>")
	}
	at, err := time.ParseDuration(p[1])
	if err != nil {
		return err
	}
	sc.NodeCrashes = append(sc.NodeCrashes, NodeCrash{Node: p[0], At: at})
	return nil
}

func parseFlap(p []string, sc *Scenario) error {
	if len(p) < 3 {
		return fmt.Errorf("want flap:<pool>:<period>/<down>:x<count>[:<from>]")
	}
	per, down, ok := strings.Cut(p[1], "/")
	if !ok {
		return fmt.Errorf("bad period/down %q", p[1])
	}
	f := LinkFlap{Pool: p[0]}
	var err error
	if f.Period, err = time.ParseDuration(per); err != nil {
		return err
	}
	if f.Down, err = time.ParseDuration(down); err != nil {
		return err
	}
	if f.Down <= 0 || f.Down > f.Period {
		return fmt.Errorf("down %v must be in (0, period %v]", f.Down, f.Period)
	}
	if !strings.HasPrefix(p[2], "x") {
		return fmt.Errorf("bad count %q (want x<count>)", p[2])
	}
	if f.Count, err = strconv.Atoi(strings.TrimPrefix(p[2], "x")); err != nil || f.Count < 1 {
		return fmt.Errorf("bad count %q", p[2])
	}
	if len(p) == 4 {
		if f.From, err = time.ParseDuration(p[3]); err != nil {
			return err
		}
	}
	sc.LinkFlaps = append(sc.LinkFlaps, f)
	return nil
}
