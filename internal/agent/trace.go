package agent

import (
	"encoding/json"
	"fmt"
	"io"
)

// The paper's §9.6 methodology replays recorded LLM outputs and response
// latencies so agent runs are deterministic. This file is the recording
// format: an agent profile (including its full step timeline) serialized
// as JSON, so traces captured from real runs can be dropped in for the
// synthesized ones.

type traceHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
}

const (
	traceMagic   = "trenv-agent-trace"
	traceVersion = 1
)

type traceFile struct {
	Header  traceHeader `json:"header"`
	Profile Profile     `json:"profile"`
}

// WriteTrace serializes an agent profile (with its recorded timeline).
func WriteTrace(w io.Writer, p Profile) error {
	if err := validateProfile(p); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{
		Header:  traceHeader{Magic: traceMagic, Version: traceVersion},
		Profile: p,
	})
}

// ReadTrace parses a recorded agent trace, validating its invariants.
func ReadTrace(r io.Reader) (Profile, error) {
	var f traceFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return Profile{}, fmt.Errorf("agent: parse trace: %w", err)
	}
	if f.Header.Magic != traceMagic {
		return Profile{}, fmt.Errorf("agent: bad trace magic %q", f.Header.Magic)
	}
	if f.Header.Version != traceVersion {
		return Profile{}, fmt.Errorf("agent: unsupported trace version %d", f.Header.Version)
	}
	if err := validateProfile(f.Profile); err != nil {
		return Profile{}, err
	}
	return f.Profile, nil
}

func validateProfile(p Profile) error {
	if p.Name == "" {
		return fmt.Errorf("agent: trace has no name")
	}
	if p.VMMemory <= 0 || p.VMCPUs <= 0 {
		return fmt.Errorf("agent: trace %q has invalid VM sizing", p.Name)
	}
	if len(p.Steps) == 0 {
		return fmt.Errorf("agent: trace %q has no steps", p.Name)
	}
	browserOps := 0
	for i, s := range p.Steps {
		if s.Wait < 0 || s.CPU < 0 || s.MemBytes < 0 || s.FileBytes < 0 || s.InTokens < 0 || s.OutTokens < 0 {
			return fmt.Errorf("agent: trace %q step %d has negative fields", p.Name, i)
		}
		if s.Kind == BrowserOp {
			browserOps++
		}
	}
	if browserOps > 0 && !p.UsesBrowser {
		return fmt.Errorf("agent: trace %q has browser ops but UsesBrowser=false", p.Name)
	}
	if p.UsesBrowser && p.Tabs <= 0 {
		return fmt.Errorf("agent: trace %q uses a browser but has no tabs", p.Name)
	}
	return nil
}
