package agent

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTripAllAgents(t *testing.T) {
	for _, a := range Table2() {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, a); err != nil {
			t.Fatalf("%s: write: %v", a.Name, err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", a.Name, err)
		}
		if got.Name != a.Name || got.TotalE2E() != a.TotalE2E() || got.TotalCPU() != a.TotalCPU() {
			t.Fatalf("%s: timeline changed in round trip", a.Name)
		}
		gin, gout := got.Tokens()
		win, wout := a.Tokens()
		if gin != win || gout != wout {
			t.Fatalf("%s: tokens changed", a.Name)
		}
		if len(got.Steps) != len(a.Steps) {
			t.Fatalf("%s: steps %d != %d", a.Name, len(got.Steps), len(a.Steps))
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":  "{nope",
		"bad magic": `{"header":{"magic":"x","version":1},"profile":{"Name":"a","VMMemory":1,"VMCPUs":1,"Steps":[{}]}}`,
		"bad ver":   `{"header":{"magic":"trenv-agent-trace","version":7},"profile":{"Name":"a","VMMemory":1,"VMCPUs":1,"Steps":[{}]}}`,
		"no name":   `{"header":{"magic":"trenv-agent-trace","version":1},"profile":{"VMMemory":1,"VMCPUs":1,"Steps":[{}]}}`,
		"no steps":  `{"header":{"magic":"trenv-agent-trace","version":1},"profile":{"Name":"a","VMMemory":1,"VMCPUs":1}}`,
		"negative":  `{"header":{"magic":"trenv-agent-trace","version":1},"profile":{"Name":"a","VMMemory":1,"VMCPUs":1,"Steps":[{"Wait":-5}]}}`,
	}
	for name, raw := range cases {
		if _, err := ReadTrace(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, Profile{}); err == nil {
		t.Fatal("empty profile accepted")
	}
	bad, _ := ByName("blog-summary")
	bad.Tabs = 0
	if err := WriteTrace(&buf, bad); err == nil {
		t.Fatal("browser agent without tabs accepted")
	}
}
