package agent

import (
	"testing"
	"time"
)

// Table 2's published aggregates.
var paperAgents = map[string]struct {
	e2e    time.Duration
	memMB  int64
	cpu    time.Duration
	inTok  int
	outTok int
}{
	"blackjack":      {3200 * time.Millisecond, 74, 411 * time.Millisecond, 1690, 8},
	"bug-fixer":      {36500 * time.Millisecond, 95, 809 * time.Millisecond, 1557, 530},
	"map-reduce":     {56500 * time.Millisecond, 199, 1200 * time.Millisecond, 8640, 2644},
	"shop-assistant": {140700 * time.Millisecond, 1080, 10300 * time.Millisecond, 43185, 1494},
	"blog-summary":   {193100 * time.Millisecond, 1246, 56800 * time.Millisecond, 49398, 2703},
	"game-design":    {107000 * time.Millisecond, 1389, 7500 * time.Millisecond, 75121, 2098},
}

func TestTable2MatchesPaperAggregates(t *testing.T) {
	agents := Table2()
	if len(agents) != 6 {
		t.Fatalf("agents = %d", len(agents))
	}
	for _, a := range agents {
		want, ok := paperAgents[a.Name]
		if !ok {
			t.Fatalf("unexpected agent %q", a.Name)
		}
		// E2E within 5% of the published value.
		e2e := a.TotalE2E()
		if e2e < want.e2e*95/100 || e2e > want.e2e*105/100 {
			t.Errorf("%s: e2e %v, want ~%v", a.Name, e2e, want.e2e)
		}
		// CPU time within 5%.
		cpu := a.TotalCPU()
		if cpu < want.cpu*90/100 || cpu > want.cpu*110/100 {
			t.Errorf("%s: cpu %v, want ~%v", a.Name, cpu, want.cpu)
		}
		// Exact token counts (Table 3).
		in, out := a.Tokens()
		if in != want.inTok || out != want.outTok {
			t.Errorf("%s: tokens %d/%d, want %d/%d", a.Name, in, out, want.inTok, want.outTok)
		}
	}
}

func TestCPUUtilizationLow(t *testing.T) {
	// §2.4: agents use less than ~25% of allocated CPU; game-design ~7%.
	for _, a := range Table2() {
		u := a.CPUUtilization()
		if u <= 0 || u > 0.35 {
			t.Errorf("%s: utilization %.2f out of expected band", a.Name, u)
		}
	}
	gd, _ := ByName("game-design")
	if u := gd.CPUUtilization(); u > 0.10 {
		t.Errorf("game-design utilization %.2f, want <= ~0.07", u)
	}
}

func TestBrowserAgentsMarked(t *testing.T) {
	for _, a := range Table2() {
		complex := a.Name == "shop-assistant" || a.Name == "blog-summary" || a.Name == "game-design"
		if a.UsesBrowser != complex {
			t.Errorf("%s: UsesBrowser = %v", a.Name, a.UsesBrowser)
		}
		if complex && a.VMMemory != 4<<30 {
			t.Errorf("%s: browser agent should get 4 GB", a.Name)
		}
		if !complex && a.VMMemory != 2<<30 {
			t.Errorf("%s: lightweight agent should get 2 GB", a.Name)
		}
	}
}

func TestBlogSummaryHeavyFileIO(t *testing.T) {
	// §2.4: ~500 MB of page cache from file access in blog-summary.
	bs, _ := ByName("blog-summary")
	if got := bs.FileReadBytes(); got < 400<<20 {
		t.Fatalf("blog-summary reads %d bytes, want ~500MB", got)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown agent accepted")
	}
}

func TestStepKindStrings(t *testing.T) {
	for k, want := range map[StepKind]string{LLMCall: "llm", ToolCPU: "tool", BrowserOp: "browser", FileIO: "fileio"} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}

func TestCostModelFig3(t *testing.T) {
	pr := DefaultPricing()
	ratios := make(map[string]float64)
	for _, a := range Table2() {
		if LLMCost(a, pr) <= 0 || ServerlessCost(a, pr) <= 0 {
			t.Fatalf("%s: non-positive cost", a.Name)
		}
		ratios[a.Name] = RelativeCost(a, pr)
	}
	// The paper's headline: serverless cost reaches up to ~70% of the
	// LLM cost but never exceeds it.
	var max float64
	for name, r := range ratios {
		if r <= 0.01 || r >= 1.0 {
			t.Errorf("%s: relative cost %.2f outside (0.01, 1)", name, r)
		}
		if r > max {
			max = r
		}
	}
	if max < 0.4 {
		t.Errorf("max relative cost %.2f, want the up-to-~0.7 headline", max)
	}
	// Complex (browser) agents cost more in absolute serverless dollars.
	light, _ := ByName("blackjack")
	heavy, _ := ByName("blog-summary")
	if ServerlessCost(heavy, pr) <= ServerlessCost(light, pr) {
		t.Error("complex agent not costlier than lightweight one")
	}
}

func TestServerlessCostForScalesLinearly(t *testing.T) {
	pr := DefaultPricing()
	a, _ := ByName("blackjack")
	c1 := ServerlessCostFor(a, pr, time.Second, 1<<30)
	c2 := ServerlessCostFor(a, pr, 2*time.Second, 1<<30)
	c3 := ServerlessCostFor(a, pr, time.Second, 2<<30)
	if c2 != 2*c1 || c3 != 2*c1 {
		t.Fatalf("cost not linear: %v %v %v", c1, c2, c3)
	}
}

func TestTimelineShape(t *testing.T) {
	for _, a := range Table2() {
		var browserOps int
		for _, s := range a.Steps {
			if s.Kind == BrowserOp {
				browserOps++
			}
			if s.Wait < 0 || s.CPU < 0 || s.MemBytes < 0 {
				t.Fatalf("%s: negative step fields", a.Name)
			}
		}
		if a.UsesBrowser && browserOps == 0 {
			t.Errorf("%s: browser agent without browser ops", a.Name)
		}
		if !a.UsesBrowser && browserOps > 0 {
			t.Errorf("%s: lightweight agent with browser ops", a.Name)
		}
	}
}
