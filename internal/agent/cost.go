package agent

import "time"

// Pricing carries the billing constants for the cost analysis (§2.3).
type Pricing struct {
	// InPerToken / OutPerToken are the LLM prices per input/output token
	// (Eq. 1).
	InPerToken  float64
	OutPerToken float64
	// ServerlessPerGBms is the serverless platform price per millisecond
	// per GB of allocated memory (Eq. 2; AWS Lambda charges
	// $1.67e-8/ms/GB).
	ServerlessPerGBms float64
}

// DefaultPricing mirrors the paper's cost study: AWS Lambda's published
// rate and an economical-tier LLM price point (the paper notes LLM prices
// halving between 2024 and 2025).
func DefaultPricing() Pricing {
	return Pricing{
		InPerToken:        4e-7,   // $0.40 per 1M input tokens
		OutPerToken:       2.4e-6, // $2.40 per 1M output tokens
		ServerlessPerGBms: 1.67e-8,
	}
}

// LLMCost returns C_LLM = Lin*Pin + Lout*Pout (Eq. 1) in dollars.
func LLMCost(p Profile, pr Pricing) float64 {
	in, out := p.Tokens()
	return float64(in)*pr.InPerToken + float64(out)*pr.OutPerToken
}

// ServerlessCost returns C_s = T * Ps * M (Eq. 2) in dollars, billing the
// provisioned VM memory for the agent's contention-free E2E duration.
func ServerlessCost(p Profile, pr Pricing) float64 {
	return ServerlessCostFor(p, pr, p.TotalE2E(), p.VMMemory)
}

// ServerlessCostFor prices an arbitrary measured duration and allocation.
func ServerlessCostFor(p Profile, pr Pricing, e2e time.Duration, memBytes int64) float64 {
	gb := float64(memBytes) / (1 << 30)
	ms := float64(e2e) / float64(time.Millisecond)
	return ms * pr.ServerlessPerGBms * gb
}

// RelativeCost returns C_s / C_LLM — Figure 3's metric.
func RelativeCost(p Profile, pr Pricing) float64 {
	llm := LLMCost(p, pr)
	if llm == 0 {
		return 0
	}
	return ServerlessCost(p, pr) / llm
}
