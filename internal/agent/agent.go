// Package agent models the LLM-agent workloads of the paper's case study
// (§2, Tables 2-3): six representative agents spanning lightweight
// request/response flows (Blackjack, Bug fixer, Map reduce) and complex,
// browser-driven ReAct agents (Shop assistant, Blog summary, Game
// design).
//
// Agent execution is a deterministic step timeline synthesized from the
// published per-agent statistics — exactly mirroring the paper's
// methodology of replaying recorded LLM outputs and response latencies
// against a simulated inference server (§9.6).
package agent

import (
	"fmt"
	"time"
)

// StepKind classifies one step of an agent run.
type StepKind int

// Step kinds.
const (
	// LLMCall waits on the (replayed) inference server; no local CPU.
	LLMCall StepKind = iota
	// ToolCPU is local computation (interpreter, parser, game engine).
	ToolCPU
	// BrowserOp drives the browser (render, navigate, snapshot).
	BrowserOp
	// FileIO reads file data, populating page caches.
	FileIO
)

// String names the kind.
func (k StepKind) String() string {
	switch k {
	case LLMCall:
		return "llm"
	case ToolCPU:
		return "tool"
	case BrowserOp:
		return "browser"
	case FileIO:
		return "fileio"
	}
	return fmt.Sprintf("StepKind(%d)", int(k))
}

// Step is one timeline entry.
type Step struct {
	Kind StepKind
	// Wait is off-CPU time (LLM response latency).
	Wait time.Duration
	// CPU is on-CPU time (contends for cores under overcommitment).
	CPU time.Duration
	// MemBytes is working memory allocated by the step and retained for
	// the rest of the run.
	MemBytes int64
	// FileBytes is file data read by the step (page-cache relevant).
	FileBytes int64
	// InTokens/OutTokens are the LLM tokens consumed/produced.
	InTokens  int
	OutTokens int
}

// SpanAttrs returns the step's observability annotations (token counts
// for LLM calls, byte counts for memory/file activity); zero-valued
// fields are omitted. Used by the platform tracers when recording a
// span per step.
func (s Step) SpanAttrs() map[string]string {
	attrs := make(map[string]string)
	if s.InTokens > 0 {
		attrs["in_tokens"] = fmt.Sprint(s.InTokens)
	}
	if s.OutTokens > 0 {
		attrs["out_tokens"] = fmt.Sprint(s.OutTokens)
	}
	if s.MemBytes > 0 {
		attrs["mem_bytes"] = fmt.Sprint(s.MemBytes)
	}
	if s.FileBytes > 0 {
		attrs["file_bytes"] = fmt.Sprint(s.FileBytes)
	}
	return attrs
}

// Profile is one agent application.
type Profile struct {
	Name        string
	Framework   string
	Description string

	// VMMemory/VMCPUs/VMStorage are the provisioned guest resources
	// (§9.6: 2 GB for lightweight agents, 4 GB for browser agents).
	VMMemory  int64
	VMCPUs    int
	VMStorage int64

	// BaseMemBytes is the process footprint right after initialization.
	BaseMemBytes int64
	// UsesBrowser marks the complex agents; Tabs is how many browser
	// tabs one run needs.
	UsesBrowser bool
	Tabs        int

	Steps []Step
}

// TotalE2E returns the contention-free end-to-end latency (sum of waits
// and CPU).
func (p Profile) TotalE2E() time.Duration {
	var d time.Duration
	for _, s := range p.Steps {
		d += s.Wait + s.CPU
	}
	return d
}

// TotalCPU returns the on-CPU time of one run.
func (p Profile) TotalCPU() time.Duration {
	var d time.Duration
	for _, s := range p.Steps {
		d += s.CPU
	}
	return d
}

// CPUUtilization is TotalCPU / TotalE2E.
func (p Profile) CPUUtilization() float64 {
	e2e := p.TotalE2E()
	if e2e == 0 {
		return 0
	}
	return float64(p.TotalCPU()) / float64(e2e)
}

// DynamicMemBytes is the memory allocated during a run on top of the
// base footprint.
func (p Profile) DynamicMemBytes() int64 {
	var n int64
	for _, s := range p.Steps {
		n += s.MemBytes
	}
	return n
}

// FileReadBytes is the total file data read during a run.
func (p Profile) FileReadBytes() int64 {
	var n int64
	for _, s := range p.Steps {
		n += s.FileBytes
	}
	return n
}

// Tokens returns total input and output token counts (Table 3).
func (p Profile) Tokens() (in, out int) {
	for _, s := range p.Steps {
		in += s.InTokens
		out += s.OutTokens
	}
	return
}

// makeTimeline synthesizes an agent timeline: calls LLM steps whose waits
// sum to llmWait and whose tokens sum to the Table 3 counts, interleaved
// with tool/browser/file steps carrying the CPU, memory, and file I/O
// budgets. browserWeight sets how much of the CPU budget each browser
// operation takes relative to a glue-code step: rendering-heavy agents
// (blog-summary) put most of their CPU inside the browser, while
// game-design only occasionally opens a page.
func makeTimeline(calls int, llmWait, cpu time.Duration, inTok, outTok int, dynMem, fileBytes int64, browserOps int, browserWeight float64) []Step {
	var steps []Step
	waitPer := llmWait / time.Duration(calls)
	inPer, outPer := inTok/calls, outTok/calls
	cpuUnits := float64(calls) + browserWeight*float64(browserOps)
	cpuPer := time.Duration(float64(cpu) / cpuUnits)
	memUnits := calls + browserOps
	memPer := dynMem / int64(memUnits)
	filePer := int64(0)
	if browserOps > 0 {
		filePer = fileBytes / int64(browserOps)
	}
	for i := 0; i < calls; i++ {
		in, out := inPer, outPer
		if i == calls-1 { // absorb rounding
			in = inTok - inPer*(calls-1)
			out = outTok - outPer*(calls-1)
		}
		steps = append(steps, Step{Kind: LLMCall, Wait: waitPer, InTokens: in, OutTokens: out})
		steps = append(steps, Step{Kind: ToolCPU, CPU: cpuPer, MemBytes: memPer})
		if browserOps > 0 && i < browserOps {
			steps = append(steps, Step{Kind: BrowserOp, CPU: time.Duration(browserWeight * float64(cpuPer)), MemBytes: memPer, FileBytes: filePer})
		}
	}
	if browserOps == 0 && fileBytes > 0 {
		steps = append(steps, Step{Kind: FileIO, CPU: time.Millisecond, FileBytes: fileBytes})
	}
	return steps
}

// Table2 returns the six evaluated agents. End-to-end latencies, memory
// footprints, CPU times, and token counts follow the paper's Tables 2-3;
// step structure is synthesized to match those aggregates.
func Table2() []Profile {
	return []Profile{
		{
			Name: "blackjack", Framework: "LangChain",
			Description: "play the Blackjack game",
			VMMemory:    2 << 30, VMCPUs: 1, VMStorage: 5 << 30,
			BaseMemBytes: 48 << 20,
			Steps: makeTimeline(2, 2789*time.Millisecond, 411*time.Millisecond,
				1690, 8, 26<<20, 0, 0, 0),
		},
		{
			Name: "bug-fixer", Framework: "LangChain",
			Description: "fix the bugs in given code",
			VMMemory:    2 << 30, VMCPUs: 1, VMStorage: 5 << 30,
			BaseMemBytes: 60 << 20,
			Steps: makeTimeline(3, 35691*time.Millisecond, 809*time.Millisecond,
				1557, 530, 35<<20, 2<<20, 0, 0),
		},
		{
			Name: "map-reduce", Framework: "LangChain",
			Description: "split and summarize a document",
			VMMemory:    2 << 30, VMCPUs: 1, VMStorage: 5 << 30,
			BaseMemBytes: 90 << 20,
			Steps: makeTimeline(8, 55300*time.Millisecond, 1200*time.Millisecond,
				8640, 2644, 109<<20, 40<<20, 0, 0),
		},
		{
			Name: "shop-assistant", Framework: "Browser-Use",
			Description: "select products on a website",
			VMMemory:    4 << 30, VMCPUs: 1, VMStorage: 5 << 30,
			BaseMemBytes: 160 << 20, UsesBrowser: true, Tabs: 2,
			Steps: makeTimeline(14, 130400*time.Millisecond, 10300*time.Millisecond,
				43185, 1494, 250<<20, 280<<20, 10, 3),
		},
		{
			Name: "blog-summary", Framework: "OWL",
			Description: "collect and summarize blogs",
			VMMemory:    4 << 30, VMCPUs: 1, VMStorage: 5 << 30,
			BaseMemBytes: 180 << 20, UsesBrowser: true, Tabs: 3,
			Steps: makeTimeline(16, 136300*time.Millisecond, 56800*time.Millisecond,
				49398, 2703, 300<<20, 500<<20, 14, 6),
		},
		{
			Name: "game-design", Framework: "OpenManus",
			Description: "implement an HTML-based game",
			VMMemory:    4 << 30, VMCPUs: 1, VMStorage: 5 << 30,
			BaseMemBytes: 200 << 20, UsesBrowser: true, Tabs: 1,
			Steps: makeTimeline(12, 99500*time.Millisecond, 7500*time.Millisecond,
				75121, 2098, 320<<20, 180<<20, 4, 0.5),
		},
	}
}

// ByName returns the Table 2 agent with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Table2() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("agent: unknown agent %q", name)
}
