package vm

import (
	"repro/internal/agent"
	"repro/internal/sim"
)

// LLMServer is the simulated inference endpoint of §9.6's methodology:
// agents' recorded LLM outputs are replayed with their recorded response
// latencies, making agent execution deterministic across runs. The
// server tracks aggregate token traffic for the cost analysis.
type LLMServer struct {
	requests  sim.Counter
	inTokens  sim.Counter
	outTokens sim.Counter
}

// NewLLMServer returns an empty replay server.
func NewLLMServer() *LLMServer {
	return &LLMServer{}
}

// Serve replays one recorded LLM call: the caller blocks for the
// recorded response latency while the server tallies token usage.
func (s *LLMServer) Serve(p *sim.Proc, step agent.Step) {
	s.requests.Inc()
	s.inTokens.IncBy(int64(step.InTokens))
	s.outTokens.IncBy(int64(step.OutTokens))
	if step.Wait > 0 {
		p.Sleep(step.Wait)
	}
}

// Requests returns the number of calls served.
func (s *LLMServer) Requests() int64 { return s.requests.Value() }

// Tokens returns total input and output tokens served.
func (s *LLMServer) Tokens() (in, out int64) {
	return s.inTokens.Value(), s.outTokens.Value()
}

// Cost prices the served traffic with the given pricing (Eq. 1 summed
// over all calls).
func (s *LLMServer) Cost(pr agent.Pricing) float64 {
	in, out := s.Tokens()
	return float64(in)*pr.InPerToken + float64(out)*pr.OutPerToken
}
