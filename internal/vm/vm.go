// Package vm models the VM-based agent execution platform of §6 and its
// evaluation (§9.6): Cloud-Hypervisor-style microVMs hosting LLM agents,
// with the storage/page-cache architectures and startup paths of the
// compared systems:
//
//	e2b       Firecracker-style code-interpreter platform: fresh netns
//	          (97 ms) + cgroup migration (63 ms) per start, virtio-blk
//	          storage that caches file data in BOTH guest and host.
//	e2b+      E2B with RunD's rootfs mapping: guest page cache bypassed
//	          (host copy only, shared across VMs), slightly costlier
//	          setup, incompatible with CoW memory sharing.
//	ch        vanilla Cloud Hypervisor restore: full guest-memory copy
//	          (>700 ms).
//	trenv     repurposable sandbox + mm-template restore of guest
//	          memory + virtio-pmem union storage: read-only base device
//	          shared by all VMs (one host cache copy, no guest copy),
//	          writable O_DIRECT overlay (no host copy).
//	trenv-s   trenv plus browser sharing (§6.2): up to K agents share
//	          one browser instance, each in its own tabs.
package vm

import (
	"fmt"
	"time"
)

// Policy selects the agent platform variant.
type Policy string

// Policies under evaluation.
const (
	PolicyE2B       Policy = "e2b"
	PolicyE2BPlus   Policy = "e2b+"
	PolicyVanillaCH Policy = "ch"
	PolicyTrEnv     Policy = "trenv"
	PolicyTrEnvS    Policy = "trenv-s"
)

// SharesBrowser reports whether the policy multiplexes browsers.
func (p Policy) SharesBrowser() bool { return p == PolicyTrEnvS }

// IsTrEnv reports whether the policy uses repurposable sandboxes and
// mm-templates.
func (p Policy) IsTrEnv() bool { return p == PolicyTrEnv || p == PolicyTrEnvS }

// StartCosts prices the VM startup paths (§9.6.1, Figure 23).
type StartCosts struct {
	// E2BNetNS is E2B's per-start network environment setup (97 ms
	// measured), inflating under concurrent starts like any netns work.
	E2BNetNS          time.Duration
	E2BNetNSPerConc   time.Duration
	E2BCgroupMigrate  time.Duration // 63 ms measured
	E2BResume         time.Duration // Firecracker snapshot load
	E2BLazyRestore    time.Duration // uffd-backed memory restore setup
	E2BPlusRootfsMap  time.Duration // RunD mapping setup on top of E2B
	CHDeviceRestore   time.Duration // Cloud Hypervisor device-state restore
	CHFullCopyPerByte float64       // seconds per byte for vanilla CH memory copy
	CHImageBytes      int64         // guest memory image a vanilla restore copies
	TrEnvRepurpose    time.Duration // sandbox pool hand-off
	TrEnvAttach       time.Duration // mm-template attach for the guest
	TrEnvUnionMount   time.Duration // pmem base + writable overlay mounts
	SandboxCreate     time.Duration // building a VM jailer sandbox from scratch

	// EPTPrePopulate is the extra startup cost of eagerly filling the
	// second-level page tables for hot regions (§8.1.3's future-work
	// optimization); VMExitPerStep is the per-step cost of the EPT
	// faults lazily-restored guests take instead.
	EPTPrePopulate time.Duration
	VMExitPerStep  time.Duration
}

// DefaultStartCosts mirrors the measured components in §9.6.1.
func DefaultStartCosts() StartCosts {
	return StartCosts{
		E2BNetNS:          97 * time.Millisecond,
		E2BNetNSPerConc:   20 * time.Millisecond,
		E2BCgroupMigrate:  63 * time.Millisecond,
		E2BResume:         12 * time.Millisecond,
		E2BLazyRestore:    20 * time.Millisecond,
		E2BPlusRootfsMap:  15 * time.Millisecond,
		CHDeviceRestore:   100 * time.Millisecond,
		CHFullCopyPerByte: 1.0 / (1 << 30), // 1 GiB/s
		CHImageBytes:      760 << 20,       // >700 ms at 1 GiB/s
		TrEnvRepurpose:    1500 * time.Microsecond,
		TrEnvAttach:       8 * time.Millisecond,
		TrEnvUnionMount:   3 * time.Millisecond,
		SandboxCreate:     170 * time.Millisecond,
		EPTPrePopulate:    6 * time.Millisecond,
		VMExitPerStep:     1500 * time.Microsecond,
	}
}

// MemModel prices per-VM memory composition by policy.
type MemModel struct {
	// VMOverhead is hypervisor + guest kernel per VM.
	VMOverhead int64
	// TrEnvWrittenBaseFrac is the CoW-written share of the agent's base
	// process memory under mm-template (the rest stays on the pool).
	TrEnvWrittenBaseFrac float64
	// TrEnvResidualCacheFrac is the per-VM share of file data that still
	// lands in local memory under the pmem union scheme (writable-layer
	// reads opened O_DIRECT leave buffers in the process).
	TrEnvResidualCacheFrac float64
}

// DefaultMemModel returns the §9.6.3 memory constants.
func DefaultMemModel() MemModel {
	return MemModel{
		VMOverhead:             80 << 20,
		TrEnvWrittenBaseFrac:   0.3,
		TrEnvResidualCacheFrac: 0.12,
	}
}

// BrowserModel describes the browser process tree (§6.2).
type BrowserModel struct {
	// BaseBytes is the main + network-stack + renderer baseline.
	BaseBytes int64
	// TabBytes is the incremental cost of one agent's tab set.
	TabBytes int64
	// AgentsPerBrowser is the sharing fan-in (the paper uses ~10).
	AgentsPerBrowser int
	// DedicatedCPUOverhead is the extra CPU fraction each browser
	// operation costs when every agent runs its own browser (duplicated
	// compositing, networking, and cache-cold rendering) — the waste
	// that sharing amortizes away.
	DedicatedCPUOverhead float64
	// DedicatedLaunchCPU is the one-time CPU burned launching a private
	// browser process tree; shared browsers are already up.
	DedicatedLaunchCPU time.Duration
	// Parallelism is how many operations one browser instance can run
	// concurrently (renderer processes work in parallel; the main
	// process serializes only coordination). Sharing more agents than
	// the instance can serve queues them — the reason the paper stops
	// at ~10 agents per browser.
	Parallelism int
}

// DefaultBrowserModel returns a Chromium-like cost shape.
func DefaultBrowserModel() BrowserModel {
	return BrowserModel{
		BaseBytes:            550 << 20,
		TabBytes:             60 << 20,
		AgentsPerBrowser:     10,
		DedicatedCPUOverhead: 1.0,
		DedicatedLaunchCPU:   1500 * time.Millisecond,
		Parallelism:          4,
	}
}

func (p Policy) validate() error {
	switch p {
	case PolicyE2B, PolicyE2BPlus, PolicyVanillaCH, PolicyTrEnv, PolicyTrEnvS:
		return nil
	}
	return fmt.Errorf("vm: unknown policy %q", p)
}
