package vm

import (
	"testing"
)

// TestEPTPrePopulationTradesStartupForExec exercises the §8.1.3
// future-work optimization: eagerly filling the second-level page tables
// costs a few startup milliseconds but removes the per-step EPT-fault VM
// exits during execution.
func TestEPTPrePopulationTradesStartupForExec(t *testing.T) {
	run := func(prePopulate bool) (startupMs, e2eMs float64) {
		cfg := DefaultConfig(PolicyTrEnv)
		cfg.PrePopulateEPT = prePopulate
		pl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pl.SeedSandboxPool(1)
		pl.Launch(0, mustAgent(t, "map-reduce"))
		pl.Run()
		m := pl.Metrics("map-reduce")
		return m.Startup.Max(), m.E2E.Max()
	}
	lazyStartup, lazyE2E := run(false)
	eagerStartup, eagerE2E := run(true)
	if eagerStartup <= lazyStartup {
		t.Fatalf("pre-population should cost startup: %.1f vs %.1f ms", eagerStartup, lazyStartup)
	}
	if eagerE2E >= lazyE2E {
		t.Fatalf("pre-population should save execution: %.1f vs %.1f ms", eagerE2E, lazyE2E)
	}
	// map-reduce has ~16 CPU/file steps at 1.5ms exit cost each: the
	// execution saving should exceed the ~6ms startup cost.
	if (lazyE2E-eagerE2E)+(lazyStartup-eagerStartup) <= 0 {
		t.Fatal("pre-population not profitable end to end for a multi-step agent")
	}
}

// TestVanillaCHHasNoEPTFaults: full-copy restores map everything, so
// they never pay the per-step exits (their cost is the 700ms+ copy).
func TestVanillaCHHasNoEPTFaults(t *testing.T) {
	pl, _ := New(DefaultConfig(PolicyVanillaCH))
	if pl.vmExitOverhead() != 0 {
		t.Fatal("vanilla CH should not take EPT faults")
	}
	pl2, _ := New(DefaultConfig(PolicyE2B))
	if pl2.vmExitOverhead() == 0 {
		t.Fatal("lazily-restored E2B should take EPT faults")
	}
	cfg := DefaultConfig(PolicyE2B)
	cfg.PrePopulateEPT = true // only TrEnv controls the EPT contents
	pl3, _ := New(cfg)
	if pl3.vmExitOverhead() == 0 {
		t.Fatal("pre-population must not apply to E2B")
	}
}

// TestPrePopulateKeepsStartupOrdering: even with the extra startup cost
// TrEnv stays well below E2B.
func TestPrePopulateKeepsStartupOrdering(t *testing.T) {
	cfg := DefaultConfig(PolicyTrEnv)
	cfg.PrePopulateEPT = true
	pl, _ := New(cfg)
	pl.SeedSandboxPool(1)
	a := mustAgent(t, "blackjack")
	pl.Launch(0, a)
	pl.Run()
	trenv := pl.Metrics("blackjack").Startup.Max()

	plE, _ := New(DefaultConfig(PolicyE2B))
	plE.Launch(0, a)
	plE.Run()
	e2b := plE.Metrics("blackjack").Startup.Max()
	if trenv >= e2b {
		t.Fatalf("trenv+EPT startup %.1fms >= e2b %.1fms", trenv, e2b)
	}
}
