package vm

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
)

func mustAgent(t *testing.T, name string) agent.Profile {
	t.Helper()
	a, err := agent.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsUnknownPolicy(t *testing.T) {
	if _, err := New(Config{Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFig23StartupOrdering(t *testing.T) {
	// Steady-state startup per policy for the Blackjack agent.
	steady := func(policy Policy) time.Duration {
		pl, _ := New(DefaultConfig(policy))
		a := mustAgent(t, "blackjack")
		gap := a.TotalE2E() + time.Second
		for i := 0; i < 3; i++ {
			pl.Launch(time.Duration(i)*gap, a)
		}
		pl.Run()
		// Last run: pools warm.
		return time.Duration(pl.Metrics("blackjack").Startup.Min() * float64(time.Millisecond))
	}
	trenv := steady(PolicyTrEnv)
	e2b := steady(PolicyE2B)
	e2bp := steady(PolicyE2BPlus)
	ch := steady(PolicyVanillaCH)
	if !(trenv < e2b && e2b < e2bp && e2bp < ch) {
		t.Fatalf("startup ordering broken: trenv=%v e2b=%v e2b+=%v ch=%v", trenv, e2b, e2bp, ch)
	}
	// Paper: ~40% reduction vs E2B, ~45% vs E2B+; CH > 700ms.
	if r := float64(trenv) / float64(e2b); r < 0.4 || r > 0.8 {
		t.Errorf("trenv/e2b startup ratio %.2f, want ~0.6", r)
	}
	if ch < 700*time.Millisecond {
		t.Errorf("vanilla CH startup %v, want > 700ms", ch)
	}
}

func TestFig23ConcurrencyHurtsE2BMore(t *testing.T) {
	concurrent := func(policy Policy) float64 {
		pl, _ := New(DefaultConfig(policy))
		a := mustAgent(t, "blackjack")
		// Warm the sandbox pool with one sequential run.
		pl.Launch(0, a)
		start := a.TotalE2E() + time.Second
		for i := 0; i < 10; i++ {
			pl.Launch(start, a)
		}
		pl.Run()
		return pl.Metrics("blackjack").Startup.Max()
	}
	e2b := concurrent(PolicyE2B)
	trenv := concurrent(PolicyTrEnv)
	if trenv >= e2b {
		t.Fatalf("10-way concurrent startup: trenv %.1fms >= e2b %.1fms", trenv, e2b)
	}
}

func TestFig24BrowserSharingHelpsUnderOvercommit(t *testing.T) {
	p99 := func(policy Policy, name string) float64 {
		pl, _ := New(DefaultConfig(policy)) // 20 cores
		a := mustAgent(t, name)
		for i := 0; i < 60; i++ { // 60 instances on 20 cores (scaled down from 200)
			pl.Launch(time.Duration(i)*50*time.Millisecond, a)
		}
		pl.Run()
		return pl.Metrics(name).E2E.Percentile(99)
	}
	blogShared := p99(PolicyTrEnvS, "blog-summary")
	blogOwn := p99(PolicyTrEnv, "blog-summary")
	if blogShared >= blogOwn {
		t.Fatalf("browser sharing did not help blog-summary: %.0f vs %.0f ms", blogShared, blogOwn)
	}
	blogGain := 1 - blogShared/blogOwn
	gameShared := p99(PolicyTrEnvS, "game-design")
	gameOwn := p99(PolicyTrEnv, "game-design")
	gameGain := 1 - gameShared/gameOwn
	// Paper: gains 2%-58%, largest for browser-heavy blog-summary,
	// minimal for game-design.
	if blogGain <= gameGain {
		t.Fatalf("blog-summary gain (%.2f) should exceed game-design's (%.2f)", blogGain, gameGain)
	}
	if blogGain < 0.10 {
		t.Fatalf("blog-summary P99 gain %.2f, want substantial", blogGain)
	}
}

func TestFig25PeakMemoryOrdering(t *testing.T) {
	peak := func(policy Policy, name string, n int) int64 {
		pl, _ := New(DefaultConfig(policy))
		a := mustAgent(t, name)
		for i := 0; i < n; i++ {
			pl.Launch(time.Duration(i)*200*time.Millisecond, a)
		}
		pl.Run()
		return pl.PeakMemory()
	}
	for _, name := range []string{"blog-summary", "shop-assistant"} {
		e2b := peak(PolicyE2B, name, 20)
		e2bp := peak(PolicyE2BPlus, name, 20)
		trenv := peak(PolicyTrEnvS, name, 20)
		if !(trenv < e2bp && e2bp < e2b) {
			t.Fatalf("%s: memory ordering broken: trenv=%dMB e2b+=%dMB e2b=%dMB",
				name, trenv>>20, e2bp>>20, e2b>>20)
		}
		// Paper: up to 61% savings vs E2B, up to 48% vs E2B+.
		if save := 1 - float64(trenv)/float64(e2b); save < 0.3 {
			t.Errorf("%s: savings vs E2B only %.2f", name, save)
		}
	}
	// Lightweight agents see limited savings (little file I/O).
	e2b := peak(PolicyE2B, "blackjack", 20)
	trenv := peak(PolicyTrEnvS, "blackjack", 20)
	if save := 1 - float64(trenv)/float64(e2b); save > 0.5 {
		t.Errorf("blackjack savings %.2f suspiciously high (paper: ~10%% for minimal-I/O agents)", save)
	}
}

func TestSharedBrowserPacking(t *testing.T) {
	pl, _ := New(DefaultConfig(PolicyTrEnvS))
	a := mustAgent(t, "shop-assistant")
	for i := 0; i < 25; i++ {
		pl.Launch(0, a)
	}
	pl.Run()
	// 25 concurrent agents, 10 per browser => 3 browser instances.
	if got := len(pl.browsers); got != 3 {
		t.Fatalf("browser hosts = %d, want 3", got)
	}
	for _, b := range pl.browsers {
		if b.Agents() != 0 || b.Tabs() != 0 {
			t.Fatalf("browser still has %d agents / %d tabs after completion", b.Agents(), b.Tabs())
		}
	}
}

func TestLLMServerTallies(t *testing.T) {
	pl, _ := New(DefaultConfig(PolicyTrEnv))
	a := mustAgent(t, "map-reduce")
	pl.Launch(0, a)
	pl.Run()
	in, out := pl.LLM().Tokens()
	wantIn, wantOut := a.Tokens()
	if in != int64(wantIn) || out != int64(wantOut) {
		t.Fatalf("llm tokens %d/%d, want %d/%d", in, out, wantIn, wantOut)
	}
	if pl.LLM().Cost(agent.DefaultPricing()) <= 0 {
		t.Fatal("llm cost not positive")
	}
}

func TestE2EMatchesProfileWithoutContention(t *testing.T) {
	pl, _ := New(DefaultConfig(PolicyTrEnv))
	a := mustAgent(t, "bug-fixer")
	pl.Launch(0, a)
	pl.Run()
	m := pl.Metrics("bug-fixer")
	e2eMs := m.E2E.Max()
	wantMs := float64(a.TotalE2E()) / float64(time.Millisecond)
	// E2E = startup + profile time; single instance has no contention.
	if e2eMs < wantMs || e2eMs > wantMs+1000 {
		t.Fatalf("e2e %.0fms, want ~%.0fms + startup", e2eMs, wantMs)
	}
}

func TestMemoryGaugeTracksTimeline(t *testing.T) {
	pl, _ := New(DefaultConfig(PolicyE2B))
	a := mustAgent(t, "blog-summary")
	pl.Launch(0, a)
	pl.Run()
	g := pl.MemoryGauge()
	if g.Peak() == 0 {
		t.Fatal("gauge empty")
	}
	// Memory must return to zero after teardown (E2B frees everything).
	if g.Current() != 0 {
		t.Fatalf("memory after teardown = %.0f", g.Current())
	}
	if pl.PeakMemory() < a.BaseMemBytes {
		t.Fatal("peak below base footprint")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, int64) {
		pl, _ := New(DefaultConfig(PolicyTrEnvS))
		a := mustAgent(t, "blog-summary")
		for i := 0; i < 10; i++ {
			pl.Launch(time.Duration(i)*100*time.Millisecond, a)
		}
		pl.Run()
		return pl.Metrics("blog-summary").E2E.Percentile(99), pl.PeakMemory()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a1, b1, a2, b2)
	}
}

func TestGrowSharedHighWater(t *testing.T) {
	pl, _ := New(DefaultConfig(PolicyE2BPlus))
	if got := pl.growShared("a", 0, 100); got != 100 {
		t.Fatalf("first read cached %d", got)
	}
	if got := pl.growShared("a", 0, 100); got != 0 {
		t.Fatalf("repeat read cached %d", got)
	}
	if got := pl.growShared("a", 50, 100); got != 50 {
		t.Fatalf("overlapping read cached %d, want 50", got)
	}
	if got := pl.growShared("b", 0, 10); got != 10 {
		t.Fatalf("other agent type cached %d", got)
	}
}

func TestPlatformSummaryAndCounters(t *testing.T) {
	pl, _ := New(DefaultConfig(PolicyTrEnvS))
	a := mustAgent(t, "blackjack")
	gap := a.TotalE2E() + time.Second
	pl.Launch(0, a)
	pl.Launch(gap, a)
	pl.Run()
	if pl.Runs() != 2 {
		t.Fatalf("runs = %d", pl.Runs())
	}
	if pl.Built() != 1 || pl.Repurposed() != 1 {
		t.Fatalf("built=%d repurposed=%d", pl.Built(), pl.Repurposed())
	}
	s := pl.Summary()
	if !strings.Contains(s, "blackjack") || !strings.Contains(s, "repurposed=1") {
		t.Fatalf("summary:\n%s", s)
	}
}
