package vm

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// BrowserProcKind identifies one process of a Chromium-style browser
// tree — the components §6.2 observes "can be reused or multiplexed
// internally" when agents share a browser.
type BrowserProcKind uint8

// Browser process kinds.
const (
	BrowserMain BrowserProcKind = iota
	BrowserNetwork
	BrowserGPU
	BrowserRenderer
)

// String names the kind.
func (k BrowserProcKind) String() string {
	switch k {
	case BrowserMain:
		return "main"
	case BrowserNetwork:
		return "network"
	case BrowserGPU:
		return "gpu"
	case BrowserRenderer:
		return "renderer"
	}
	return fmt.Sprintf("BrowserProcKind(%d)", uint8(k))
}

// BrowserProc is one process of the tree.
type BrowserProc struct {
	Kind     BrowserProcKind
	MemBytes int64
	// Owner is the agent whose tabs this renderer serves ("" for the
	// shared utility processes).
	Owner string
}

// BrowserInstance is one running browser: a fixed set of utility
// processes (main, network service, GPU) shared by every tab, plus one
// renderer per agent's tab set.
type BrowserInstance struct {
	ID      int
	model   BrowserModel
	utility []BrowserProc
	// Ops, when non-nil, bounds concurrently-executing operations (the
	// platform sets it to Parallelism slots for shared instances, so
	// over-sharing queues agents inside the browser).
	Ops       *sim.Resource
	renderers map[string]*BrowserProc // agent -> renderer
	tabs      map[string]int          // agent -> open tab count
}

// Utility-process split of the browser's base footprint.
const (
	mainShare    = 0.40
	networkShare = 0.22
	gpuShare     = 0.38
)

// NewBrowserInstance launches a browser process tree.
func NewBrowserInstance(id int, bm BrowserModel) *BrowserInstance {
	base := bm.BaseBytes
	return &BrowserInstance{
		ID:    id,
		model: bm,
		utility: []BrowserProc{
			{Kind: BrowserMain, MemBytes: int64(float64(base) * mainShare)},
			{Kind: BrowserNetwork, MemBytes: int64(float64(base) * networkShare)},
			{Kind: BrowserGPU, MemBytes: base - int64(float64(base)*mainShare) - int64(float64(base)*networkShare)},
		},
		renderers: make(map[string]*BrowserProc),
		tabs:      make(map[string]int),
	}
}

// Agents returns how many agents currently hold tabs.
func (b *BrowserInstance) Agents() int { return len(b.renderers) }

// Tabs returns the total open tab count.
func (b *BrowserInstance) Tabs() int {
	n := 0
	for _, c := range b.tabs {
		n += c
	}
	return n
}

// OpenTabs gives an agent its tab set (one renderer process sized by the
// tab count). It returns the instance's memory growth. Opening tabs for
// an agent that already has some is an error — agents own one tab set
// for their whole run.
func (b *BrowserInstance) OpenTabs(agent string, tabs int) (int64, error) {
	if tabs <= 0 {
		return 0, fmt.Errorf("vm: agent %q opening %d tabs", agent, tabs)
	}
	if _, ok := b.renderers[agent]; ok {
		return 0, fmt.Errorf("vm: agent %q already has tabs in browser %d", agent, b.ID)
	}
	if b.Agents() >= b.model.AgentsPerBrowser {
		return 0, fmt.Errorf("vm: browser %d full (%d agents)", b.ID, b.Agents())
	}
	r := &BrowserProc{Kind: BrowserRenderer, Owner: agent, MemBytes: int64(tabs) * b.model.TabBytes}
	b.renderers[agent] = r
	b.tabs[agent] = tabs
	return r.MemBytes, nil
}

// CloseTabs tears an agent's tab set down, returning the freed bytes.
func (b *BrowserInstance) CloseTabs(agent string) (int64, error) {
	r, ok := b.renderers[agent]
	if !ok {
		return 0, fmt.Errorf("vm: agent %q has no tabs in browser %d", agent, b.ID)
	}
	delete(b.renderers, agent)
	delete(b.tabs, agent)
	return r.MemBytes, nil
}

// MemBytes returns the whole tree's footprint.
func (b *BrowserInstance) MemBytes() int64 {
	var n int64
	for _, p := range b.utility {
		n += p.MemBytes
	}
	for _, r := range b.renderers {
		n += r.MemBytes
	}
	return n
}

// Procs returns the process tree, utility processes first then renderers
// in stable (agent-name) order.
func (b *BrowserInstance) Procs() []BrowserProc {
	out := make([]BrowserProc, len(b.utility))
	copy(out, b.utility)
	agents := make([]string, 0, len(b.renderers))
	for a := range b.renderers {
		agents = append(agents, a)
	}
	sort.Strings(agents)
	for _, a := range agents {
		out = append(out, *b.renderers[a])
	}
	return out
}

// HasSlot reports whether another agent fits.
func (b *BrowserInstance) HasSlot() bool { return b.Agents() < b.model.AgentsPerBrowser }
