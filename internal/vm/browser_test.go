package vm

import (
	"testing"
	"testing/quick"
)

func TestBrowserInstanceProcessTree(t *testing.T) {
	bm := DefaultBrowserModel()
	b := NewBrowserInstance(1, bm)
	procs := b.Procs()
	if len(procs) != 3 {
		t.Fatalf("utility procs = %d, want main/network/gpu", len(procs))
	}
	kinds := map[BrowserProcKind]bool{}
	for _, pr := range procs {
		kinds[pr.Kind] = true
	}
	if !kinds[BrowserMain] || !kinds[BrowserNetwork] || !kinds[BrowserGPU] {
		t.Fatal("missing utility process kinds")
	}
	// Utility footprint equals the model's base bytes.
	if got := b.MemBytes(); got != bm.BaseBytes {
		t.Fatalf("base footprint = %d, want %d", got, bm.BaseBytes)
	}
}

func TestBrowserTabsLifecycle(t *testing.T) {
	bm := DefaultBrowserModel()
	b := NewBrowserInstance(1, bm)
	grown, err := b.OpenTabs("blog#1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if grown != 3*bm.TabBytes {
		t.Fatalf("grown = %d", grown)
	}
	if b.Agents() != 1 || b.Tabs() != 3 {
		t.Fatalf("agents=%d tabs=%d", b.Agents(), b.Tabs())
	}
	// One renderer per agent in the tree.
	procs := b.Procs()
	if procs[len(procs)-1].Kind != BrowserRenderer || procs[len(procs)-1].Owner != "blog#1" {
		t.Fatal("renderer not in tree")
	}
	// Double-open rejected; zero tabs rejected.
	if _, err := b.OpenTabs("blog#1", 1); err == nil {
		t.Fatal("double OpenTabs accepted")
	}
	if _, err := b.OpenTabs("x", 0); err == nil {
		t.Fatal("zero tabs accepted")
	}
	freed, err := b.CloseTabs("blog#1")
	if err != nil || freed != grown {
		t.Fatalf("close: %v, freed %d", err, freed)
	}
	if _, err := b.CloseTabs("blog#1"); err == nil {
		t.Fatal("double close accepted")
	}
	if b.MemBytes() != bm.BaseBytes {
		t.Fatal("memory not restored after close")
	}
}

func TestBrowserCapacityEnforced(t *testing.T) {
	bm := DefaultBrowserModel()
	b := NewBrowserInstance(1, bm)
	for i := 0; i < bm.AgentsPerBrowser; i++ {
		if _, err := b.OpenTabs(string(rune('a'+i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	if b.HasSlot() {
		t.Fatal("full browser reports a slot")
	}
	if _, err := b.OpenTabs("overflow", 1); err == nil {
		t.Fatal("overflow accepted")
	}
}

// Property: MemBytes always equals base + sum of open tab sets, across
// arbitrary open/close sequences.
func TestBrowserMemoryConservationProperty(t *testing.T) {
	bm := DefaultBrowserModel()
	f := func(ops []uint8) bool {
		b := NewBrowserInstance(1, bm)
		open := map[string]int64{}
		for i, op := range ops {
			agentName := string(rune('a' + int(op)%6))
			if op%2 == 0 {
				tabs := int(op%4) + 1
				grown, err := b.OpenTabs(agentName, tabs)
				if err == nil {
					open[agentName] = grown
				}
			} else {
				freed, err := b.CloseTabs(agentName)
				if err == nil {
					if freed != open[agentName] {
						return false
					}
					delete(open, agentName)
				}
			}
			var want int64 = bm.BaseBytes
			for _, g := range open {
				want += g
			}
			if b.MemBytes() != want {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBrowserProcKindStrings(t *testing.T) {
	for k, want := range map[BrowserProcKind]string{
		BrowserMain: "main", BrowserNetwork: "network", BrowserGPU: "gpu", BrowserRenderer: "renderer",
	} {
		if k.String() != want {
			t.Fatalf("%v != %s", k, want)
		}
	}
}

// TestBrowserSlotContention: a shared browser's worker slots serialize
// excess concurrent operations.
func TestBrowserSlotContention(t *testing.T) {
	run := func(fanIn int) float64 {
		cfg := DefaultConfig(PolicyTrEnvS)
		cfg.Cores = 64 // ample cores: isolate browser-internal queueing
		cfg.Browser.AgentsPerBrowser = fanIn
		cfg.Browser.Parallelism = 2
		pl, _ := New(cfg)
		a := mustAgent(t, "blog-summary")
		for i := 0; i < 24; i++ {
			pl.Launch(0, a)
		}
		pl.Run()
		return pl.Metrics("blog-summary").E2E.Percentile(99)
	}
	narrow := run(4) // 6 browsers x 2 slots
	wide := run(24)  // 1 browser x 2 slots for everyone
	if wide <= narrow {
		t.Fatalf("over-sharing did not queue agents: fan-in 24 p99 %.0fms <= fan-in 4 p99 %.0fms", wide, narrow)
	}
}
