package vm

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/agent"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config parameterizes an agent platform.
type Config struct {
	Policy  Policy
	Seed    int64
	Cores   int // physical cores (overcommit tests use 20)
	Costs   StartCosts
	Mem     MemModel
	Browser BrowserModel
	// PrePopulateEPT eagerly fills second-level page tables for hot
	// regions at startup (TrEnv policies only), trading a few extra
	// startup milliseconds for the removal of per-step EPT-fault VM
	// exits during execution (§8.1.3).
	PrePopulateEPT bool
	// Tracer, when non-nil, records a span tree per agent run (VM
	// startup plus every llm/tool/browser/fileio step).
	Tracer *obs.Tracer
}

// DefaultConfig returns the §9.6 testbed shape for a policy.
func DefaultConfig(policy Policy) Config {
	return Config{
		Policy:  policy,
		Seed:    1,
		Cores:   20,
		Costs:   DefaultStartCosts(),
		Mem:     DefaultMemModel(),
		Browser: DefaultBrowserModel(),
	}
}

// AgentMetrics holds per-agent-type results (milliseconds).
type AgentMetrics struct {
	Startup sim.Histogram
	E2E     sim.Histogram
}

// Platform runs agents in microVMs under one policy.
type Platform struct {
	cfg    Config
	eng    *sim.Engine
	cpu    *sim.Resource
	node   *mem.Tracker
	gauge  sim.Gauge
	perFn  map[string]*AgentMetrics
	llm    *LLMServer
	active int

	// sharedFileBytes tracks, per agent type, how much of the shared
	// base content is already host-cached (E2B+ mapping / TrEnv pmem
	// base device).
	sharedFileBytes map[string]int64
	browsers        []*BrowserInstance
	nextBrowserID   int
	nextTabOwner    int
	sbPool          int // cleaned VM sandboxes available for repurposing
	starting        int // concurrent starts (netns inflation)

	// lifecycle counters
	repurposed sim.Counter // starts served from the sandbox pool
	built      sim.Counter // starts that had to build a sandbox
	runs       sim.Counter // completed agent runs
}

// New builds a platform.
func New(cfg Config) (*Platform, error) {
	if err := cfg.Policy.validate(); err != nil {
		return nil, err
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 20
	}
	return &Platform{
		cfg:             cfg,
		eng:             sim.NewEngine(cfg.Seed),
		cpu:             sim.NewResource("cores", cfg.Cores),
		node:            mem.NewTracker("node", 0),
		perFn:           make(map[string]*AgentMetrics),
		llm:             NewLLMServer(),
		sharedFileBytes: make(map[string]int64),
	}, nil
}

// Engine returns the simulation engine.
func (pl *Platform) Engine() *sim.Engine { return pl.eng }

// LLM returns the replayed inference server.
func (pl *Platform) LLM() *LLMServer { return pl.llm }

// Metrics returns per-agent metrics (creating on first use).
func (pl *Platform) Metrics(name string) *AgentMetrics {
	m, ok := pl.perFn[name]
	if !ok {
		m = &AgentMetrics{}
		pl.perFn[name] = m
	}
	return m
}

// AgentNames returns names with recorded metrics, sorted.
func (pl *Platform) AgentNames() []string {
	var out []string
	for n := range pl.perFn {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PeakMemory returns the node high-water mark in bytes.
func (pl *Platform) PeakMemory() int64 { return pl.node.Peak() }

// MemoryGauge returns node memory over time.
func (pl *Platform) MemoryGauge() *sim.Gauge { return &pl.gauge }

func (pl *Platform) alloc(t time.Duration, n int64) {
	if n <= 0 {
		return
	}
	pl.node.MustAlloc(n)
	pl.gauge.Set(t, float64(pl.node.Used()))
}

func (pl *Platform) free(t time.Duration, n int64) {
	if n <= 0 {
		return
	}
	pl.node.Free(n)
	pl.gauge.Set(t, float64(pl.node.Used()))
}

// startVM pays the policy's startup path and charges the VM's initial
// memory. It returns the startup latency and the bytes to free at
// teardown.
func (pl *Platform) startVM(p *sim.Proc, prof agent.Profile) (time.Duration, int64) {
	c := pl.cfg.Costs
	pl.starting++
	var d time.Duration
	switch pl.cfg.Policy {
	case PolicyE2B, PolicyE2BPlus:
		netns := c.E2BNetNS + time.Duration(pl.starting-1)*c.E2BNetNSPerConc
		d = netns + c.E2BCgroupMigrate + c.E2BResume + c.E2BLazyRestore
		if pl.cfg.Policy == PolicyE2BPlus {
			d += c.E2BPlusRootfsMap
		}
	case PolicyVanillaCH:
		netns := c.E2BNetNS + time.Duration(pl.starting-1)*c.E2BNetNSPerConc
		copyCost := time.Duration(float64(c.CHImageBytes) * c.CHFullCopyPerByte * float64(time.Second))
		d = netns + c.E2BCgroupMigrate + c.CHDeviceRestore + copyCost
	case PolicyTrEnv, PolicyTrEnvS:
		if pl.sbPool > 0 {
			pl.sbPool--
			d = c.TrEnvRepurpose
			pl.repurposed.Inc()
		} else {
			d = c.SandboxCreate
			pl.built.Inc()
		}
		d += c.CHDeviceRestore + c.TrEnvAttach + c.TrEnvUnionMount
		if pl.cfg.PrePopulateEPT {
			d += c.EPTPrePopulate
		}
	}
	p.Sleep(d)
	pl.starting--

	base := prof.BaseMemBytes
	if pl.cfg.Policy.IsTrEnv() {
		// mm-template: only the CoW-written share of the base process
		// memory lands locally; the rest stays on the pool.
		base = int64(float64(base) * pl.cfg.Mem.TrEnvWrittenBaseFrac)
	}
	charged := pl.cfg.Mem.VMOverhead + base
	pl.alloc(p.Now(), charged)
	return d, charged
}

// chargeFileRead accounts a step's file reads per the policy's storage
// architecture. readStart is the VM's cumulative read offset before this
// step (every VM of a type reads the same base content in the same
// order, so offsets identify content). It returns the bytes to free at
// VM teardown.
func (pl *Platform) chargeFileRead(p *sim.Proc, prof agent.Profile, readStart, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	switch pl.cfg.Policy {
	case PolicyE2B, PolicyVanillaCH:
		// virtio-blk: data cached in the guest AND re-cached by the host
		// hypervisor path (§2.4's duplication).
		pl.alloc(p.Now(), 2*bytes)
		return 2 * bytes
	case PolicyE2BPlus:
		// RunD mapping: guest page cache bypassed; the host copy is
		// shared across VMs reading the same base content.
		pl.alloc(p.Now(), pl.growShared(prof.Name, readStart, bytes))
		return 0 // shared cache persists beyond the VM
	default:
		// TrEnv pmem union: base device host-cached once across VMs; a
		// small residual lands in the VM (writable-layer buffers).
		newShared := pl.growShared(prof.Name, readStart, bytes)
		residual := int64(float64(bytes) * pl.cfg.Mem.TrEnvResidualCacheFrac)
		pl.alloc(p.Now(), newShared+residual)
		return residual
	}
}

// growShared returns how much of the read range [readStart,
// readStart+bytes) is not yet in the shared host cache for this agent
// type, advancing the high-water mark.
func (pl *Platform) growShared(name string, readStart, bytes int64) int64 {
	cur := pl.sharedFileBytes[name]
	end := readStart + bytes
	if end <= cur {
		return 0
	}
	pl.sharedFileBytes[name] = end
	if readStart > cur {
		cur = readStart
	}
	return end - cur
}

// acquireBrowser gives the agent a browser process tree: a private one
// (dedicated policies) or a tab set in a shared instance. ops bounds
// concurrent operations inside a shared instance (nil for dedicated);
// release tears the agent's share down.
func (pl *Platform) acquireBrowser(p *sim.Proc, prof agent.Profile) (ops *sim.Resource, release func()) {
	bm := pl.cfg.Browser
	// Tab owners are unique per run: concurrent instances of one agent
	// type each hold their own tab set.
	pl.nextTabOwner++
	owner := fmt.Sprintf("%s#%d", prof.Name, pl.nextTabOwner)
	if !pl.cfg.Policy.SharesBrowser() {
		// Dedicated browser per agent: the whole tree lives and dies
		// with this run.
		pl.nextBrowserID++
		b := NewBrowserInstance(pl.nextBrowserID, bm)
		if _, err := b.OpenTabs(owner, prof.Tabs); err != nil {
			panic(err)
		}
		total := b.MemBytes()
		pl.alloc(p.Now(), total)
		return nil, func() { pl.free(p.Now(), total) }
	}
	// Shared: find (or launch) an instance with a free slot; the utility
	// processes are paid once and stay resident for reuse.
	var host *BrowserInstance
	for _, b := range pl.browsers {
		if b.HasSlot() {
			host = b
			break
		}
	}
	if host == nil {
		pl.nextBrowserID++
		host = NewBrowserInstance(pl.nextBrowserID, bm)
		parallel := bm.Parallelism
		if parallel <= 0 {
			parallel = 4
		}
		host.Ops = sim.NewResource(fmt.Sprintf("browser-%d", host.ID), parallel)
		pl.browsers = append(pl.browsers, host)
		pl.alloc(p.Now(), host.MemBytes())
	}
	grown, err := host.OpenTabs(owner, prof.Tabs)
	if err != nil {
		panic(err)
	}
	pl.alloc(p.Now(), grown)
	return host.Ops, func() {
		freed, err := host.CloseTabs(owner)
		if err != nil {
			panic(err)
		}
		pl.free(p.Now(), freed)
	}
}

// SeedSandboxPool pre-warms the repurposable sandbox pool with n cleaned
// sandboxes (operator pre-provisioning); only TrEnv policies consume it.
func (pl *Platform) SeedSandboxPool(n int) {
	if n < 0 {
		panic("vm: negative sandbox seed")
	}
	pl.sbPool += n
}

// Launch schedules one agent run at virtual time at.
func (pl *Platform) Launch(at time.Duration, prof agent.Profile) {
	pl.eng.At(at, "agent/"+prof.Name, func(p *sim.Proc) { pl.runAgent(p, prof) })
}

func (pl *Platform) runAgent(p *sim.Proc, prof agent.Profile) {
	pl.active++
	defer func() { pl.active-- }()
	t0 := p.Now()
	startup, vmBytes := pl.startVM(p, prof)

	var root *obs.Span
	if pl.cfg.Tracer != nil {
		root = obs.NewSpan("agent/"+prof.Name, t0, t0)
		root.SetAttr("agent", prof.Name).SetAttr("policy", string(pl.cfg.Policy))
		root.Child("startup", t0, t0+startup)
	}

	var dynBytes, cacheBytes, readSoFar int64
	var browserOps *sim.Resource
	var releaseBrowser func()
	for _, s := range prof.Steps {
		stepStart := p.Now()
		switch s.Kind {
		case agent.LLMCall:
			pl.llm.Serve(p, s)
		case agent.ToolCPU, agent.FileIO:
			pl.onCPU(p, s.CPU+pl.vmExitOverhead())
		case agent.BrowserOp:
			if releaseBrowser == nil {
				browserOps, releaseBrowser = pl.acquireBrowser(p, prof)
				if !pl.cfg.Policy.SharesBrowser() {
					// Private browser: pay its cold launch.
					pl.onCPU(p, pl.cfg.Browser.DedicatedLaunchCPU)
				}
			}
			cpu := s.CPU
			if !pl.cfg.Policy.SharesBrowser() {
				cpu = time.Duration(float64(cpu) * (1 + pl.cfg.Browser.DedicatedCPUOverhead))
			}
			if browserOps != nil {
				// Shared instance: the op needs one of the browser's
				// worker slots as well as a physical core.
				browserOps.Acquire(p, 1)
			}
			pl.onCPU(p, cpu+pl.vmExitOverhead())
			if browserOps != nil {
				browserOps.Release(p.Engine(), 1)
			}
		}
		if s.MemBytes > 0 {
			pl.alloc(p.Now(), s.MemBytes)
			dynBytes += s.MemBytes
		}
		cacheBytes += pl.chargeFileRead(p, prof, readSoFar, s.FileBytes)
		readSoFar += s.FileBytes
		if root != nil {
			sp := root.Child(s.Kind.String(), stepStart, p.Now())
			for k, v := range s.SpanAttrs() {
				sp.SetAttr(k, v)
			}
		}
	}
	e2e := p.Now() - t0

	// Teardown: the VM and its private memory go away; shared host
	// caches and pooled browsers stay.
	if releaseBrowser != nil {
		releaseBrowser()
	}
	pl.free(p.Now(), vmBytes+dynBytes+cacheBytes)
	if pl.cfg.Policy.IsTrEnv() {
		pl.sbPool++
	}

	pl.runs.Inc()
	m := pl.Metrics(prof.Name)
	m.Startup.AddDuration(startup)
	m.E2E.AddDuration(e2e)
	if root != nil {
		root.End = p.Now()
		pl.cfg.Tracer.Record(root)
	}
}

// RegisterMetrics publishes the agent platform's metric surface into
// reg: per-agent startup/e2e histograms, lifecycle counters, and node
// memory gauges.
func (pl *Platform) RegisterMetrics(reg *obs.Registry) {
	hists := []struct {
		name, help string
		sel        func(*AgentMetrics) *sim.Histogram
	}{
		{"trenv_agent_startup_latency_ms", "Agent VM startup latency in milliseconds.",
			func(m *AgentMetrics) *sim.Histogram { return &m.Startup }},
		{"trenv_agent_e2e_latency_ms", "Agent run end-to-end latency in milliseconds.",
			func(m *AgentMetrics) *sim.Histogram { return &m.E2E }},
	}
	for _, h := range hists {
		h := h
		reg.HistogramFunc(h.name, h.help, func() []obs.LabeledHistogram {
			var out []obs.LabeledHistogram
			for _, name := range pl.AgentNames() {
				out = append(out, obs.LabeledHistogram{
					Labels: map[string]string{"agent": name},
					Hist:   h.sel(pl.perFn[name]),
				})
			}
			return out
		})
	}
	reg.CounterFunc("trenv_agent_runs_total", "Completed agent runs.", nil, pl.runs.Value)
	reg.CounterFunc("trenv_agent_repurposes_total", "VM starts served from the sandbox pool.", nil, pl.repurposed.Value)
	reg.CounterFunc("trenv_agent_builds_total", "VM starts that built a sandbox from scratch.", nil, pl.built.Value)
	reg.GaugeFunc("trenv_agent_node_mem_used_bytes", "Agent node DRAM currently in use.", nil,
		func() float64 { return float64(pl.node.Used()) })
}

// Repurposed / Built report how TrEnv starts were served.
func (pl *Platform) Repurposed() int64 { return pl.repurposed.Value() }

// Built reports sandbox constructions (pool misses).
func (pl *Platform) Built() int64 { return pl.built.Value() }

// Runs reports completed agent executions.
func (pl *Platform) Runs() int64 { return pl.runs.Value() }

// Summary renders a compact report across agents.
func (pl *Platform) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s runs=%d repurposed=%d built=%d peak=%.2fGB browsers=%d\n",
		pl.cfg.Policy, pl.Runs(), pl.Repurposed(), pl.Built(),
		float64(pl.PeakMemory())/(1<<30), len(pl.browsers))
	for _, name := range pl.AgentNames() {
		m := pl.perFn[name]
		fmt.Fprintf(&b, "  %-15s n=%d startup p99=%.1fms e2e p99=%.1fs"+"\n",
			name, m.E2E.N(), m.Startup.Percentile(99), m.E2E.Percentile(99)/1000)
	}
	return b.String()
}

// vmExitOverhead is the per-step cost of EPT faults on lazily-restored
// guest memory: read accesses to not-yet-mapped second-level pages exit
// to the hypervisor. Full-copy restores (vanilla CH) have everything
// mapped; TrEnv can remove it by pre-populating the EPT (§8.1.3).
func (pl *Platform) vmExitOverhead() time.Duration {
	switch pl.cfg.Policy {
	case PolicyVanillaCH:
		return 0
	case PolicyTrEnv, PolicyTrEnvS:
		if pl.cfg.PrePopulateEPT {
			return 0
		}
	}
	return pl.cfg.Costs.VMExitPerStep
}

func (pl *Platform) onCPU(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	pl.cpu.Acquire(p, 1)
	p.Sleep(d)
	pl.cpu.Release(p.Engine(), 1)
}

// Run executes all scheduled agents to completion.
func (pl *Platform) Run() { pl.eng.Run() }
