package vm

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

func tracedAgentRun(t *testing.T, seed int64) []*obs.Span {
	t.Helper()
	cfg := DefaultConfig(PolicyTrEnv)
	cfg.Seed = seed
	cfg.Tracer = obs.NewTracer(0)
	pl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := mustAgent(t, "blackjack")
	pl.Launch(0, a)
	pl.Launch(a.TotalE2E(), a)
	pl.Run()
	return cfg.Tracer.Spans()
}

func TestAgentRunsRecordSpans(t *testing.T) {
	spans := tracedAgentRun(t, 1)
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2 (one per launch)", len(spans))
	}
	for _, root := range spans {
		if root.Name != "agent/blackjack" {
			t.Fatalf("root name = %q", root.Name)
		}
		var sawStartup, sawLLM bool
		for _, c := range root.Children {
			switch c.Name {
			case "startup":
				sawStartup = true
			case "llm":
				sawLLM = true
				if c.Attrs["in_tokens"] == "" {
					t.Fatalf("llm step span missing token attrs: %v", c.Attrs)
				}
			}
			if c.Start < root.Start || c.End > root.End {
				t.Fatalf("child %s [%v,%v] escapes root [%v,%v]",
					c.Name, c.Start, c.End, root.Start, root.End)
			}
		}
		if !sawStartup || !sawLLM {
			t.Fatalf("span missing phases (startup=%v llm=%v): %s", sawStartup, sawLLM, root)
		}
	}
}

func TestAgentTraceDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, tracedAgentRun(t, 4)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Fatal("agent Chrome trace differs across identical-seed runs")
	}
}

func TestAgentPlatformRegisterMetrics(t *testing.T) {
	cfg := DefaultConfig(PolicyTrEnv)
	pl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := mustAgent(t, "blackjack")
	pl.Launch(0, a)
	pl.Run()
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE trenv_agent_e2e_latency_ms summary",
		`trenv_agent_e2e_latency_ms{agent="blackjack"`,
		"trenv_agent_runs_total 1",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("agent metrics missing %q:\n%s", want, buf.String())
		}
	}
}
