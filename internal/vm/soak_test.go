package vm

import (
	"testing"
	"time"

	"repro/internal/agent"
)

// TestSoakMixedAgentFleet runs a mixed fleet of all six agents under
// every policy and checks conservation: memory returns to the shared
// caches only, browsers empty out, every run completes. Skipped with
// -short.
func TestSoakMixedAgentFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, pol := range []Policy{PolicyE2B, PolicyE2BPlus, PolicyTrEnv, PolicyTrEnvS} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			pl, err := New(DefaultConfig(pol))
			if err != nil {
				t.Fatal(err)
			}
			launched := 0
			for round := 0; round < 4; round++ {
				for ai, a := range agent.Table2() {
					at := time.Duration(round*30+ai)*time.Second + time.Duration(ai)*75*time.Millisecond
					pl.Launch(at, a)
					launched++
				}
			}
			pl.Run()
			if got := int(pl.Runs()); got != launched {
				t.Fatalf("runs = %d, want %d", got, launched)
			}
			// After the fleet drains, residual memory is only the shared
			// host caches (persistent by design) and pooled shared
			// browsers; per-VM state is gone.
			var shared int64
			for _, bytes := range pl.sharedFileBytes {
				shared += bytes
			}
			var browsers int64
			for _, b := range pl.browsers {
				if b.Agents() != 0 {
					t.Fatalf("browser %d still hosts %d agents", b.ID, b.Agents())
				}
				browsers += b.MemBytes()
			}
			if got := pl.node.Used(); got != shared+browsers {
				t.Fatalf("residual memory %d != shared caches %d + pooled browsers %d", got, shared, browsers)
			}
			// Latency sanity.
			for _, name := range pl.AgentNames() {
				m := pl.Metrics(name)
				if m.E2E.Percentile(50) > m.E2E.Percentile(99) {
					t.Fatalf("%s: percentiles inverted", name)
				}
			}
		})
	}
}
