// Package cluster composes multiple faas nodes around one shared CXL
// memory pool — the paper's rack-level deployment (§8.2): a consolidated
// image and its mm-templates exist once per rack, because pool offsets
// are machine independent, and every node's instances attach to the same
// read-only pages.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/alert"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// Cluster is a rack of nodes sharing one CXL pool.
type Cluster struct {
	eng   *sim.Engine
	cxl   *mem.Pool
	store *snapshot.Store
	nodes []*faas.Platform
	down  map[int]bool

	// Per-node circuit breakers over pool-fetch failure rate: pick
	// routes around open breakers the way it routes around dead nodes.
	breakers []*fault.Breaker
	chaos    *fault.Injector

	// hedge owns dispatch, hedging/cloning, crash re-dispatch, and the
	// no-loss accounting shared with MultiRack.
	hedge *hedger

	// resultHook, when non-nil, observes every node's terminal outcomes
	// (experiments use it for availability bucketing). See
	// hedger.onResult for the delivery contract under hedging.
	resultHook func(node int, r faas.InvocationResult)

	recorder *obs.Recorder
	recEvery time.Duration
	alerts   *alert.Engine
	seed     int64
}

// New builds a cluster of n nodes. Each node gets cfg's policy and
// sizing; the CXL pool, block store, and template registry are shared.
// Only TrEnv-CXL makes sense rack-wide (the point of the experiment);
// other policies are rejected.
func New(n int, cfg faas.Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	if cfg.Policy != faas.PolicyTrEnvCXL {
		return nil, fmt.Errorf("cluster: rack sharing requires trenv-cxl, got %q", cfg.Policy)
	}
	eng := cfg.Engine
	if eng == nil {
		eng = sim.NewEngine(cfg.Seed)
	}
	cxl := mem.NewPool(mem.CXL, cfg.CXLCapacity, mem.DefaultLatencyModel())
	// The shared pool lives on the rack's memory server, not on any
	// compute node — remote-fetch spans report it as their home.
	cxl.SetHome("mem0")
	store := snapshot.NewStore(mem.NewBlockStore(cxl), mmtemplate.NewRegistry())
	c := &Cluster{eng: eng, cxl: cxl, store: store, down: make(map[int]bool), seed: cfg.Seed}
	for i := 0; i < n; i++ {
		nodeCfg := cfg
		nodeCfg.Engine = eng
		nodeCfg.SharedStore = store
		// cfg.Node acts as a rack prefix ("" keeps the classic n0..nN
		// names; the sharded fleet passes "r2" to get "r2n0"...).
		nodeCfg.Node = fmt.Sprintf("%sn%d", cfg.Node, i)
		idx := i
		userHook := cfg.OnResult
		nodeCfg.OnResult = func(r faas.InvocationResult) {
			c.onResult(idx, r)
			if userHook != nil {
				userHook(r)
			}
		}
		c.nodes = append(c.nodes, faas.New(nodeCfg))
		c.breakers = append(c.breakers, fault.NewBreaker(fault.DefaultBreakerConfig(), eng.Now))
	}
	c.hedge = newHedger(eng, hedgeHooks{
		pick: func(fn string, exclude map[string]bool, _ bool) (*faas.Platform, string) {
			return c.pickExcluding(fn, exclude), ""
		},
		nodes:   func() []*faas.Platform { return c.nodes },
		deliver: c.deliver,
		breaker: func(i int) *fault.Breaker {
			if i < 0 {
				return nil
			}
			return c.breakers[i]
		},
		tracer: func() *obs.Tracer { return c.nodes[0].Tracer() },
	})
	return c, nil
}

// onResult funnels every node's terminal outcomes through the hedger:
// breaker feeding, hedge-race settlement, and crash re-dispatch — never
// silently completed, never lost.
func (c *Cluster) onResult(node int, r faas.InvocationResult) { c.hedge.onResult(node, r) }

func (c *Cluster) deliver(node int, r faas.InvocationResult) {
	if c.resultHook != nil {
		c.resultHook(node, r)
	}
}

// SetHedgePolicy arms request hedging/cloning for every invocation
// dispatched after the call; the policy's deadline (when set) pushes
// onto every node. Set before RunTrace.
func (c *Cluster) SetHedgePolicy(hp HedgePolicy) {
	c.hedge.policy = hp
	applyDeadline(c.nodes, hp)
}

// HedgePolicy returns the armed policy (zero value = off).
func (c *Cluster) HedgePolicy() HedgePolicy { return c.hedge.policy }

// SetMaxRedispatch overrides the per-invocation crash re-dispatch
// budget (default DefaultMaxRedispatch; < 0 is clamped to 0).
func (c *Cluster) SetMaxRedispatch(n int) {
	if n < 0 {
		n = 0
	}
	c.hedge.maxRedispatch = n
}

// SetSettleHook observes each invocation's settling outcome with its
// logical end-to-end latency (dispatch → first real terminal, hedge
// delays and re-dispatches included). Set before RunTrace.
func (c *Cluster) SetSettleHook(fn func(fn string, latency time.Duration, r faas.InvocationResult)) {
	c.hedge.onSettle = fn
}

// SetResultHook observes every invocation's terminal outcome with its
// node index. Set before RunTrace.
func (c *Cluster) SetResultHook(fn func(node int, r faas.InvocationResult)) {
	c.resultHook = fn
}

// Dispatched counts invocations handed to a node (excluding re-dispatch
// and hedge attempts).
func (c *Cluster) Dispatched() int64 { return c.hedge.dispatched.Value() }

// Results counts non-cancelled terminal outcomes observed.
func (c *Cluster) Results() int64 { return c.hedge.results.Value() }

// Redispatched counts crash-aborted invocations re-dispatched to survivors.
func (c *Cluster) Redispatched() int64 { return c.hedge.redispatched.Value() }

// Hedged counts hedge/clone attempts launched beyond primary dispatches.
func (c *Cluster) Hedged() int64 { return c.hedge.hedged.Value() }

// HedgeWins counts races settled by a non-primary attempt.
func (c *Cluster) HedgeWins() int64 { return c.hedge.hedgeWins.Value() }

// HedgeSkips counts hedge triggers dropped because no healthy distinct
// target node existed (graceful degradation to unhedged dispatch).
func (c *Cluster) HedgeSkips() int64 { return c.hedge.hedgeSkips.Value() }

// Cancelled counts losing attempts cooperatively cancelled after their
// race settled.
func (c *Cluster) Cancelled() int64 { return c.hedge.cancelled.Value() }

// RedispatchExhausted counts invocations abandoned after spending the
// crash re-dispatch budget.
func (c *Cluster) RedispatchExhausted() int64 { return c.hedge.exhausted.Value() }

// Wedged returns the attempts that never reached a terminal outcome:
// dispatched + redispatched + hedged − results − cancelled. After
// RunTrace drains, any recovery scheme worth the name leaves this at
// zero — with hedging on, every extra attempt must terminate too.
func (c *Cluster) Wedged() int64 { return c.hedge.wedged() }

// Breakers exposes the per-node circuit breakers (node order).
func (c *Cluster) Breakers() []*fault.Breaker { return c.breakers }

// AttachChaos points every node's pools (and the shared CXL pool) at the
// injector, wires node-crash events to KillNode, and arms the schedule.
// Attach before RunTrace.
func (c *Cluster) AttachChaos(inj *fault.Injector) {
	c.chaos = inj
	c.cxl.SetFaultAgent(inj, c.eng.Now)
	for _, node := range c.nodes {
		node.AttachFaults(inj)
	}
	inj.OnNodeCrash(func(name string) {
		for i, node := range c.nodes {
			if node.NodeName() == name {
				// Last-node and double-kill guards apply; a crash the
				// guards reject is dropped rather than wedging the rack.
				_ = c.KillNode(i)
				return
			}
		}
	})
	inj.Arm()
}

// Chaos returns the attached injector (nil when none).
func (c *Cluster) Chaos() *fault.Injector { return c.chaos }

// Engine returns the shared simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Seed returns the simulation seed the cluster was built with — part of
// a run report's identity.
func (c *Cluster) Seed() int64 { return c.seed }

// Nodes returns the cluster's platforms.
func (c *Cluster) Nodes() []*faas.Platform { return c.nodes }

// Pool returns the shared CXL pool.
func (c *Cluster) Pool() *mem.Pool { return c.cxl }

// Register deploys a function on every node; the consolidated image and
// templates are built once (first node) and shared by the rest.
func (c *Cluster) Register(prof workload.FunctionProfile) error {
	for i, node := range c.nodes {
		if err := node.Register(prof); err != nil {
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	return nil
}

// KillNode takes a node out of rotation — its warm instances and local
// memory are lost, but the consolidated images and templates live in the
// shared pool, so the survivors keep serving every function with no
// re-preprocessing. This is the disaggregation dividend: node-local
// state is disposable.
func (c *Cluster) KillNode(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: node %d out of range", i)
	}
	if c.down[i] {
		return fmt.Errorf("cluster: node %d already down", i)
	}
	alive := 0
	for j := range c.nodes {
		if !c.down[j] && j != i {
			alive++
		}
	}
	if alive == 0 {
		return fmt.Errorf("cluster: cannot kill the last node")
	}
	c.down[i] = true
	// Crash the platform so the dead node's warm instances release their
	// local-memory accounting and in-flight invocations abort (and are
	// re-dispatched via onResult) instead of completing normally.
	c.nodes[i].Crash()
	return nil
}

// AliveNodes returns the nodes still in rotation.
func (c *Cluster) AliveNodes() []*faas.Platform {
	var out []*faas.Platform
	for i, node := range c.nodes {
		if !c.down[i] {
			out = append(out, node)
		}
	}
	return out
}

// healthyNodes returns the alive nodes whose breakers admit traffic.
// When every alive node's breaker is open there is nowhere better to
// send work, so health filtering degrades to plain aliveness —
// availability beats breaker hygiene.
func (c *Cluster) healthyNodes() []*faas.Platform {
	var out []*faas.Platform
	for i, node := range c.nodes {
		if !c.down[i] && c.breakers[i].Allow() {
			out = append(out, node)
		}
	}
	if len(out) == 0 {
		return c.AliveNodes()
	}
	return out
}

// pick returns the node to run fn on: prefer a healthy node holding a
// warm instance, else the least-loaded healthy node. Crashed nodes and
// open-breaker nodes are skipped.
func (c *Cluster) pick(fn string) *faas.Platform { return c.pickExcluding(fn, nil) }

// pickExcluding is pick with nodes the current hedge race already tried
// removed from candidacy; nil when no candidate remains (the hedger
// degrades to unhedged dispatch then). Both the warm scan and the
// least-loaded scan walk the node slice in index order and ties on
// equal load break toward the lowest index — placement is a pure
// function of cluster state, never of map iteration order.
func (c *Cluster) pickExcluding(fn string, exclude map[string]bool) *faas.Platform {
	var cand []*faas.Platform
	for _, node := range c.healthyNodes() {
		if exclude == nil || !exclude[node.NodeName()] {
			cand = append(cand, node)
		}
	}
	if len(cand) == 0 {
		return nil
	}
	for _, node := range cand {
		if node.HasWarm(fn) {
			return node
		}
	}
	best := cand[0]
	for _, node := range cand[1:] {
		if node.Active() < best.Active() {
			best = node
		}
	}
	return best
}

// Invoke schedules one invocation at virtual time at, placing it when the
// time arrives (so warm state is inspected at dispatch, not at submit).
func (c *Cluster) Invoke(at time.Duration, fn string) {
	c.eng.At(at, "dispatch/"+fn, func(p *sim.Proc) {
		c.hedge.dispatch(p, fn, "rack")
	})
}

// AttachRecorder samples reg's series into rec every interval of
// virtual time while RunTrace drives the rack (interval <= 0 uses
// obs.DefaultSampleInterval). Attach before RunTrace.
func (c *Cluster) AttachRecorder(rec *obs.Recorder, every time.Duration) {
	c.recorder = rec
	c.recEvery = every
}

// AttachAlerts binds an alert engine to the rack: it evaluates on the
// attached recorder's sampling instants (bound when RunTrace starts),
// links incidents through the rack's shared tracer, and watches every
// node's SLO tracker. Attach before RunTrace, alongside AttachRecorder
// — without a recorder nothing drives evaluation.
func (c *Cluster) AttachAlerts(ae *alert.Engine) {
	c.alerts = ae
	// Nodes share one tracer when Config.Tracer was set; the first
	// node's view covers the rack.
	ae.SetTracer(c.nodes[0].Tracer())
	for _, node := range c.nodes {
		ae.AddSLO(node.SLO())
	}
}

// Alerts returns the attached alert engine (nil unless AttachAlerts was
// called).
func (c *Cluster) Alerts() *alert.Engine { return c.alerts }

// active returns the invocations in flight across the rack.
func (c *Cluster) active() int {
	n := 0
	for _, node := range c.nodes {
		n += node.Active()
	}
	return n
}

// RunTrace dispatches a trace across the rack and runs to completion.
func (c *Cluster) RunTrace(tr workload.Trace) {
	for _, inv := range tr {
		c.Invoke(inv.At, inv.Function)
	}
	if c.recorder != nil {
		if c.alerts != nil {
			c.alerts.Observe(c.recorder)
		}
		end := tr.Duration()
		c.recorder.PumpWhile(c.eng, c.recEvery, func() bool {
			return c.eng.Now() < end || c.active() > 0
		})
	}
	c.eng.Run()
}

// DedupFactor returns logical/unique bytes for the rack's consolidated
// images: how many per-node copies the shared pool replaced.
func (c *Cluster) DedupFactor() float64 {
	unique := c.store.Blocks().UniqueBytes()
	if unique == 0 {
		return 1
	}
	return float64(c.store.Blocks().LogicalBytes()) / float64(unique)
}

// TotalPeakMemory sums the nodes' DRAM high-water marks.
func (c *Cluster) TotalPeakMemory() int64 {
	var n int64
	for _, node := range c.nodes {
		n += node.PeakMemory()
	}
	return n
}

// Invocations sums recorded invocations across nodes.
func (c *Cluster) Invocations() int {
	n := 0
	for _, node := range c.nodes {
		n += node.Metrics().Invocations()
	}
	return n
}
