package cluster

import (
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestPickTieBreaksToLowestIndex: with every node idle, cold, and
// healthy, pick must return n0 — repeatedly. Placement is a pure
// function of cluster state, so equal-load ties cannot wander with
// call order or map iteration.
func TestPickTieBreaksToLowestIndex(t *testing.T) {
	c := newCluster(t, 4)
	for i := 0; i < 100; i++ {
		if got := c.pick("JS"); got != c.nodes[0] {
			t.Fatalf("call %d: pick chose %s, want n0 on an all-equal rack", i, got.NodeName())
		}
	}
}

// TestPickExcludingSkipsToNextIndex: excluding the tie-break winner
// moves selection to the next index; excluding everything returns nil.
func TestPickExcludingSkipsToNextIndex(t *testing.T) {
	c := newCluster(t, 3)
	if got := c.pickExcluding("JS", map[string]bool{"n0": true}); got != c.nodes[1] {
		t.Fatalf("pick chose %v, want n1 with n0 excluded", got.NodeName())
	}
	all := map[string]bool{"n0": true, "n1": true, "n2": true}
	if got := c.pickExcluding("JS", all); got != nil {
		t.Fatalf("pick chose %s with every node excluded, want nil", got.NodeName())
	}
}

// TestPickExcludingPrefersWarmElsewhere: a warm instance beats the
// index tie-break, and excluding the warm node falls back to the
// lowest-index cold node.
func TestPickExcludingPrefersWarmElsewhere(t *testing.T) {
	c := newCluster(t, 3)
	// Warm exactly one node. Dispatch lands on n0 (tie-break); probe
	// while the instance is still inside its keep-alive window — letting
	// the engine drain fully would evict it again.
	c.Invoke(0, "JS")
	done := false
	c.Engine().At(time.Second, "probe/warm-pick", func(p *sim.Proc) {
		warm := c.pick("JS")
		if !warm.HasWarm("JS") {
			t.Errorf("pick chose cold %s over the warm node", warm.NodeName())
		}
		if warm != c.nodes[0] {
			t.Errorf("warm instance on %s, expected n0 from the tie-break", warm.NodeName())
		}
		next := c.pickExcluding("JS", map[string]bool{warm.NodeName(): true})
		if next != c.nodes[1] {
			t.Errorf("with the warm node excluded pick chose %s, want n1", next.NodeName())
		}
		done = true
	})
	c.Engine().Run()
	if !done {
		t.Fatal("probe never ran")
	}
}

// TestMultiRackPickTieBreaksDeterministically: the fleet-wide scan has
// the same guarantee — idle equal fleet picks the home rack's first
// node, every call; excluding it moves to the next home node without
// counting as a spill.
func TestMultiRackPickTieBreaksDeterministically(t *testing.T) {
	m, err := NewMultiRack(2, 2, faas.DefaultConfig(faas.PolicyTrEnvCXL))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ProfileByName("JS")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(prof, 1); err != nil { // homed on rack 1
		t.Fatal(err)
	}
	home := m.Nodes()[2] // rack-major order: r1's first node is index 2
	for i := 0; i < 100; i++ {
		node, spilled := m.pickExcluding("JS", nil)
		if node != home || spilled {
			t.Fatalf("call %d: pick chose %s spilled=%v, want %s on the home rack", i, node.NodeName(), spilled, home.NodeName())
		}
	}
	node, spilled := m.pickExcluding("JS", map[string]bool{home.NodeName(): true})
	if node != m.Nodes()[3] || spilled {
		t.Fatalf("with %s excluded pick chose %s spilled=%v, want its home-rack sibling", home.NodeName(), node.NodeName(), spilled)
	}
	node, spilled = m.pickExcluding("JS", map[string]bool{
		home.NodeName(): true, m.Nodes()[3].NodeName(): true,
	})
	if node == nil || node.NodeName() == home.NodeName() {
		t.Fatal("excluding the home rack must spill to another rack, not fail")
	}
	if !spilled {
		t.Fatal("off-home dispatch not reported as a spill")
	}
	var none *faas.Platform
	all := map[string]bool{}
	for _, n := range m.Nodes() {
		all[n.NodeName()] = true
	}
	if none, _ = m.pickExcluding("JS", all); none != nil {
		t.Fatalf("pick chose %s with the whole fleet excluded, want nil", none.NodeName())
	}
}

// TestPickDeterminismUnderLoadSkew: a strictly less-loaded node
// displaces the incumbent, but equal load never does.
func TestPickDeterminismUnderLoadSkew(t *testing.T) {
	c := newCluster(t, 2)
	// Occupy n0 with a long invocation, then pick while it runs.
	c.Invoke(0, "PR") // ~600ms exec
	done := false
	c.Engine().At(5*time.Millisecond, "probe/pick", func(p *sim.Proc) {
		if got := c.pick("JS"); got != c.nodes[1] {
			t.Errorf("pick chose %s while n0 is busy, want idle n1", got.NodeName())
		}
		done = true
	})
	c.Engine().Run()
	if !done {
		t.Fatal("probe never ran")
	}
}
