package cluster

import (
	"fmt"
	"time"

	"repro/internal/faas"
	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// MultiRack blends CXL and RDMA the way §8.2 sketches for clusters
// larger than one rack: each function's consolidated image lives once in
// its *home* rack's CXL pool; nodes of other racks attach templates whose
// PTEs point across the inter-rack RDMA fabric at the same data. Home-
// rack instances get byte-addressable direct reads; spillover instances
// pay lazy RDMA fetches — exactly the T-CXL vs T-RDMA trade within one
// cluster.
type MultiRack struct {
	eng    *sim.Engine
	fabric *mem.Pool // inter-rack RDMA
	racks  []*rack
	homes  map[string]int

	// fabricStore interns one RDMA-addressable image per function for
	// every non-home rack (a window onto the home copy, not another
	// copy — exclude it from memory totals).
	fabricStore *snapshot.Store

	spillovers sim.Counter

	recorder *obs.Recorder
	recEvery time.Duration
}

type rack struct {
	cxl   *mem.Pool
	store *snapshot.Store
	nodes []*faas.Platform
}

// NewMultiRack builds racks x nodesPerRack nodes. cfg must use TrEnvCXL.
func NewMultiRack(racks, nodesPerRack int, cfg faas.Config) (*MultiRack, error) {
	if racks <= 0 || nodesPerRack <= 0 {
		return nil, fmt.Errorf("cluster: need positive rack/node counts, got %d x %d", racks, nodesPerRack)
	}
	if cfg.Policy != faas.PolicyTrEnvCXL {
		return nil, fmt.Errorf("cluster: multi-rack blending requires trenv-cxl, got %q", cfg.Policy)
	}
	eng := sim.NewEngine(cfg.Seed)
	lat := mem.DefaultLatencyModel()
	m := &MultiRack{
		eng:    eng,
		fabric: mem.NewPool(mem.RDMA, 0, lat),
		homes:  make(map[string]int),
	}
	m.fabricStore = snapshot.NewStore(mem.NewBlockStore(m.fabric), mmtemplate.NewRegistry())
	m.fabric.SetHome("fabric")
	for r := 0; r < racks; r++ {
		rk := &rack{cxl: mem.NewPool(mem.CXL, cfg.CXLCapacity, lat)}
		rk.cxl.SetHome(fmt.Sprintf("r%dmem", r))
		rk.store = snapshot.NewStore(mem.NewBlockStore(rk.cxl), mmtemplate.NewRegistry())
		for n := 0; n < nodesPerRack; n++ {
			nodeCfg := cfg
			nodeCfg.Engine = eng
			nodeCfg.SharedStore = rk.store
			nodeCfg.Node = fmt.Sprintf("r%dn%d", r, n)
			rk.nodes = append(rk.nodes, faas.New(nodeCfg))
		}
		m.racks = append(m.racks, rk)
	}
	return m, nil
}

// Engine returns the shared simulation engine.
func (m *MultiRack) Engine() *sim.Engine { return m.eng }

// Racks returns the rack count.
func (m *MultiRack) Racks() int { return len(m.racks) }

// Nodes returns every node, rack-major.
func (m *MultiRack) Nodes() []*faas.Platform {
	var out []*faas.Platform
	for _, rk := range m.racks {
		out = append(out, rk.nodes...)
	}
	return out
}

// Spillovers counts invocations dispatched off their home rack.
func (m *MultiRack) Spillovers() int64 { return m.spillovers.Value() }

// Register homes a function on homeRack: one CXL copy there, one
// fabric-addressable image for everyone else.
func (m *MultiRack) Register(prof workload.FunctionProfile, homeRack int) error {
	if homeRack < 0 || homeRack >= len(m.racks) {
		return fmt.Errorf("cluster: home rack %d out of range", homeRack)
	}
	if _, ok := m.homes[prof.Name]; ok {
		return fmt.Errorf("cluster: function %q already registered", prof.Name)
	}
	home := m.racks[homeRack]
	homeImg, err := home.store.Preprocess(prof.Snapshot(), snapshot.Placement{Hot: home.cxl, HotFraction: 1})
	if err != nil {
		return err
	}
	fabricImg, err := m.fabricStore.Preprocess(prof.Snapshot(), snapshot.Placement{Hot: m.fabric, HotFraction: 1})
	if err != nil {
		return err
	}
	for ri, rk := range m.racks {
		img := fabricImg
		if ri == homeRack {
			img = homeImg
		}
		for _, node := range rk.nodes {
			if err := node.RegisterWithImage(prof, img); err != nil {
				return err
			}
		}
	}
	m.homes[prof.Name] = homeRack
	return nil
}

// pick prefers (1) any node with a warm instance, (2) the least-loaded
// home-rack node unless every home node is saturated, (3) the least-
// loaded node cluster-wide (a spillover).
func (m *MultiRack) pick(fn string) (*faas.Platform, bool) {
	for _, rk := range m.racks {
		for _, node := range rk.nodes {
			if node.HasWarm(fn) {
				return node, false
			}
		}
	}
	home := m.racks[m.homes[fn]]
	best := home.nodes[0]
	for _, node := range home.nodes[1:] {
		if node.Active() < best.Active() {
			best = node
		}
	}
	if best.Active() < best.Cores() {
		return best, false
	}
	global := best
	for _, rk := range m.racks {
		for _, node := range rk.nodes {
			if node.Active() < global.Active() {
				global = node
			}
		}
	}
	if global == best {
		return best, false
	}
	return global, true
}

// Invoke dispatches one invocation at virtual time at.
func (m *MultiRack) Invoke(at time.Duration, fn string) {
	m.eng.At(at, "dispatch/"+fn, func(p *sim.Proc) {
		node, spilled := m.pick(fn)
		if spilled {
			m.spillovers.Inc()
		}
		dispatcher := "fleet"
		if spilled {
			dispatcher = "fleet-spill"
		}
		node.InvokeDispatched(p, fn, dispatcher)
	})
}

// AttachRecorder samples reg's series into rec every interval of
// virtual time while RunTrace drives the fleet (interval <= 0 uses
// obs.DefaultSampleInterval). Attach before RunTrace.
func (m *MultiRack) AttachRecorder(rec *obs.Recorder, every time.Duration) {
	m.recorder = rec
	m.recEvery = every
}

// active returns the invocations in flight across every rack.
func (m *MultiRack) active() int {
	n := 0
	for _, rk := range m.racks {
		for _, node := range rk.nodes {
			n += node.Active()
		}
	}
	return n
}

// RunTrace dispatches a trace and runs to completion.
func (m *MultiRack) RunTrace(tr workload.Trace) {
	for _, inv := range tr {
		m.Invoke(inv.At, inv.Function)
	}
	if m.recorder != nil {
		end := tr.Duration()
		m.recorder.PumpWhile(m.eng, m.recEvery, func() bool {
			return m.eng.Now() < end || m.active() > 0
		})
	}
	m.eng.Run()
}

// CXLBytes sums the racks' pool usage (the fabric is a window, not a
// copy, so it is excluded).
func (m *MultiRack) CXLBytes() int64 {
	var n int64
	for _, rk := range m.racks {
		n += rk.cxl.Tracker().Used()
	}
	return n
}

// Invocations sums recorded invocations across all nodes.
func (m *MultiRack) Invocations() int {
	n := 0
	for _, node := range m.Nodes() {
		n += node.Metrics().Invocations()
	}
	return n
}
