package cluster

import (
	"fmt"
	"time"

	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// MultiRack blends CXL and RDMA the way §8.2 sketches for clusters
// larger than one rack: each function's consolidated image lives once in
// its *home* rack's CXL pool; nodes of other racks attach templates whose
// PTEs point across the inter-rack RDMA fabric at the same data. Home-
// rack instances get byte-addressable direct reads; spillover instances
// pay lazy RDMA fetches — exactly the T-CXL vs T-RDMA trade within one
// cluster.
type MultiRack struct {
	eng    *sim.Engine
	fabric *mem.Pool // inter-rack RDMA
	racks  []*rack
	homes  map[string]int

	// fabricStore interns one RDMA-addressable image per function for
	// every non-home rack (a window onto the home copy, not another
	// copy — exclude it from memory totals).
	fabricStore *snapshot.Store

	spillovers sim.Counter

	// Health state mirrors the single-rack Cluster: per-node breakers
	// (flat Nodes() order), crashed nodes by name, and the shared
	// hedger owning dispatch, hedging, re-dispatch, and no-loss
	// accounting.
	breakers []*fault.Breaker
	nodeIdx  map[string]int // node name -> flat index
	down     map[string]bool
	chaos    *fault.Injector
	hedge    *hedger

	// resultHook, when non-nil, observes every node's terminal outcomes
	// (same delivery contract as Cluster's — see hedger.onResult).
	resultHook func(node int, r faas.InvocationResult)

	recorder *obs.Recorder
	recEvery time.Duration
}

type rack struct {
	cxl   *mem.Pool
	store *snapshot.Store
	nodes []*faas.Platform
}

// NewMultiRack builds racks x nodesPerRack nodes. cfg must use TrEnvCXL.
func NewMultiRack(racks, nodesPerRack int, cfg faas.Config) (*MultiRack, error) {
	if racks <= 0 || nodesPerRack <= 0 {
		return nil, fmt.Errorf("cluster: need positive rack/node counts, got %d x %d", racks, nodesPerRack)
	}
	if cfg.Policy != faas.PolicyTrEnvCXL {
		return nil, fmt.Errorf("cluster: multi-rack blending requires trenv-cxl, got %q", cfg.Policy)
	}
	eng := sim.NewEngine(cfg.Seed)
	lat := mem.DefaultLatencyModel()
	m := &MultiRack{
		eng:     eng,
		fabric:  mem.NewPool(mem.RDMA, 0, lat),
		homes:   make(map[string]int),
		nodeIdx: make(map[string]int),
		down:    make(map[string]bool),
	}
	m.fabricStore = snapshot.NewStore(mem.NewBlockStore(m.fabric), mmtemplate.NewRegistry())
	m.fabric.SetHome("fabric")
	for r := 0; r < racks; r++ {
		rk := &rack{cxl: mem.NewPool(mem.CXL, cfg.CXLCapacity, lat)}
		rk.cxl.SetHome(fmt.Sprintf("r%dmem", r))
		rk.store = snapshot.NewStore(mem.NewBlockStore(rk.cxl), mmtemplate.NewRegistry())
		for n := 0; n < nodesPerRack; n++ {
			nodeCfg := cfg
			nodeCfg.Engine = eng
			nodeCfg.SharedStore = rk.store
			nodeCfg.Node = fmt.Sprintf("r%dn%d", r, n)
			idx := len(m.nodeIdx)
			m.nodeIdx[nodeCfg.Node] = idx
			userHook := cfg.OnResult
			nodeCfg.OnResult = func(res faas.InvocationResult) {
				m.onResult(idx, res)
				if userHook != nil {
					userHook(res)
				}
			}
			rk.nodes = append(rk.nodes, faas.New(nodeCfg))
			m.breakers = append(m.breakers, fault.NewBreaker(fault.DefaultBreakerConfig(), eng.Now))
		}
		m.racks = append(m.racks, rk)
	}
	m.hedge = newHedger(eng, hedgeHooks{
		pick: func(fn string, exclude map[string]bool, primary bool) (*faas.Platform, string) {
			node, spilled := m.pickExcluding(fn, exclude)
			if node == nil {
				return nil, ""
			}
			if primary && spilled {
				// Spillovers count at primary dispatch only, exactly as
				// before hedging existed; hedge and re-dispatch attempts
				// keep their own dispatcher labels.
				m.spillovers.Inc()
				return node, "fleet-spill"
			}
			return node, ""
		},
		nodes:   m.Nodes,
		deliver: m.deliver,
		breaker: func(i int) *fault.Breaker {
			if i < 0 {
				return nil
			}
			return m.breakers[i]
		},
		tracer: func() *obs.Tracer { return m.racks[0].nodes[0].Tracer() },
	})
	return m, nil
}

// onResult mirrors Cluster.onResult for the fleet.
func (m *MultiRack) onResult(node int, r faas.InvocationResult) { m.hedge.onResult(node, r) }

func (m *MultiRack) deliver(node int, r faas.InvocationResult) {
	if m.resultHook != nil {
		m.resultHook(node, r)
	}
}

// SetResultHook observes every invocation's terminal outcome with its
// flat node index. Set before RunTrace.
func (m *MultiRack) SetResultHook(fn func(node int, r faas.InvocationResult)) {
	m.resultHook = fn
}

// SetHedgePolicy arms request hedging/cloning fleet-wide; the policy's
// deadline (when set) pushes onto every node. Set before RunTrace.
func (m *MultiRack) SetHedgePolicy(hp HedgePolicy) {
	m.hedge.policy = hp
	applyDeadline(m.Nodes(), hp)
}

// HedgePolicy returns the armed policy (zero value = off).
func (m *MultiRack) HedgePolicy() HedgePolicy { return m.hedge.policy }

// SetMaxRedispatch overrides the per-invocation crash re-dispatch
// budget (default DefaultMaxRedispatch; < 0 is clamped to 0).
func (m *MultiRack) SetMaxRedispatch(n int) {
	if n < 0 {
		n = 0
	}
	m.hedge.maxRedispatch = n
}

// SetSettleHook observes each invocation's settling outcome with its
// logical end-to-end latency. Set before RunTrace.
func (m *MultiRack) SetSettleHook(fn func(fn string, latency time.Duration, r faas.InvocationResult)) {
	m.hedge.onSettle = fn
}

// KillNode crashes a node by name ("r1n2"): its warm state is lost and
// in-flight invocations re-dispatch; the rack images survive in pool
// memory. Killing the last healthy node is an error.
func (m *MultiRack) KillNode(name string) error {
	idx, ok := m.nodeIdx[name]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", name)
	}
	if m.down[name] {
		return fmt.Errorf("cluster: node %q already down", name)
	}
	if len(m.down)+1 >= len(m.nodeIdx) {
		return fmt.Errorf("cluster: cannot kill the last node")
	}
	m.down[name] = true
	m.Nodes()[idx].Crash()
	return nil
}

// Dispatched counts invocations handed to a node (excluding re-dispatch
// and hedge attempts).
func (m *MultiRack) Dispatched() int64 { return m.hedge.dispatched.Value() }

// Results counts terminal outcomes observed (cancelled losers excluded).
func (m *MultiRack) Results() int64 { return m.hedge.results.Value() }

// Redispatched counts crash-aborted invocations re-dispatched.
func (m *MultiRack) Redispatched() int64 { return m.hedge.redispatched.Value() }

// Hedged counts extra attempts launched by the hedge policy.
func (m *MultiRack) Hedged() int64 { return m.hedge.hedged.Value() }

// HedgeWins counts races settled by a non-primary attempt.
func (m *MultiRack) HedgeWins() int64 { return m.hedge.hedgeWins.Value() }

// HedgeSkips counts hedges skipped because no second healthy node existed.
func (m *MultiRack) HedgeSkips() int64 { return m.hedge.hedgeSkips.Value() }

// Cancelled counts losing attempts cooperatively cancelled.
func (m *MultiRack) Cancelled() int64 { return m.hedge.cancelled.Value() }

// RedispatchExhausted counts invocations that burned their re-dispatch budget.
func (m *MultiRack) RedispatchExhausted() int64 { return m.hedge.exhausted.Value() }

// Breakers exposes the per-node circuit breakers (flat Nodes() order).
func (m *MultiRack) Breakers() []*fault.Breaker { return m.breakers }

// Chaos returns the attached injector (nil when none).
func (m *MultiRack) Chaos() *fault.Injector { return m.chaos }

// Wedged returns attempts that never reached a terminal outcome:
// dispatched + redispatched + hedged - results - cancelled. Zero after
// RunTrace means no attempt — primary, hedge, or re-dispatch — was lost.
func (m *MultiRack) Wedged() int64 { return m.hedge.wedged() }

// AttachChaos points every pool (per-rack CXL, the fabric, node-local
// pools) at the injector, wires node crashes, and arms the schedule.
func (m *MultiRack) AttachChaos(inj *fault.Injector) {
	m.chaos = inj
	m.fabric.SetFaultAgent(inj, m.eng.Now)
	for _, rk := range m.racks {
		rk.cxl.SetFaultAgent(inj, m.eng.Now)
		for _, node := range rk.nodes {
			node.AttachFaults(inj)
		}
	}
	inj.OnNodeCrash(func(name string) { _ = m.KillNode(name) })
	inj.Arm()
}

// healthy reports whether a node (by flat index) should receive work.
func (m *MultiRack) healthy(name string, idx int) bool {
	return !m.down[name] && m.breakers[idx].Allow()
}

// Engine returns the shared simulation engine.
func (m *MultiRack) Engine() *sim.Engine { return m.eng }

// Racks returns the rack count.
func (m *MultiRack) Racks() int { return len(m.racks) }

// Nodes returns every node, rack-major.
func (m *MultiRack) Nodes() []*faas.Platform {
	var out []*faas.Platform
	for _, rk := range m.racks {
		out = append(out, rk.nodes...)
	}
	return out
}

// Spillovers counts invocations dispatched off their home rack.
func (m *MultiRack) Spillovers() int64 { return m.spillovers.Value() }

// Register homes a function on homeRack: one CXL copy there, one
// fabric-addressable image for everyone else.
func (m *MultiRack) Register(prof workload.FunctionProfile, homeRack int) error {
	if homeRack < 0 || homeRack >= len(m.racks) {
		return fmt.Errorf("cluster: home rack %d out of range", homeRack)
	}
	if _, ok := m.homes[prof.Name]; ok {
		return fmt.Errorf("cluster: function %q already registered", prof.Name)
	}
	home := m.racks[homeRack]
	homeImg, err := home.store.Preprocess(prof.Snapshot(), snapshot.Placement{Hot: home.cxl, HotFraction: 1})
	if err != nil {
		return err
	}
	fabricImg, err := m.fabricStore.Preprocess(prof.Snapshot(), snapshot.Placement{Hot: m.fabric, HotFraction: 1})
	if err != nil {
		return err
	}
	for ri, rk := range m.racks {
		img := fabricImg
		if ri == homeRack {
			img = homeImg
		}
		for _, node := range rk.nodes {
			if err := node.RegisterWithImage(prof, img); err != nil {
				return err
			}
		}
	}
	m.homes[prof.Name] = homeRack
	return nil
}

// pickExcluding prefers (1) any healthy node with a warm instance, (2)
// the least-loaded healthy home-rack node unless every home node is
// saturated, (3) the least-loaded healthy node cluster-wide (a
// spillover). Ties break toward the lowest rack-major index — scans run
// in the fixed Nodes() order and only a strictly smaller load displaces
// the incumbent, so placement is deterministic under equal load.
// Crashed nodes, open-breaker nodes, and exclude-listed names (nodes
// already racing this invocation) are skipped; when no node passes the
// health filter, it degrades to plain aliveness — availability beats
// breaker hygiene. Returns (nil, false) when every node is excluded.
func (m *MultiRack) pickExcluding(fn string, exclude map[string]bool) (*faas.Platform, bool) {
	ok := func(node *faas.Platform) bool {
		name := node.NodeName()
		return !exclude[name] && m.healthy(name, m.nodeIdx[name])
	}
	anyHealthy := false
	for _, node := range m.Nodes() {
		if ok(node) {
			anyHealthy = true
			break
		}
	}
	if !anyHealthy {
		ok = func(node *faas.Platform) bool {
			name := node.NodeName()
			return !exclude[name] && !m.down[name]
		}
	}
	for _, rk := range m.racks {
		for _, node := range rk.nodes {
			if ok(node) && node.HasWarm(fn) {
				return node, false
			}
		}
	}
	home := m.racks[m.homes[fn]]
	var best *faas.Platform
	for _, node := range home.nodes {
		if ok(node) && (best == nil || node.Active() < best.Active()) {
			best = node
		}
	}
	if best != nil && best.Active() < best.Cores() {
		return best, false
	}
	global := best
	for _, rk := range m.racks {
		for _, node := range rk.nodes {
			if ok(node) && (global == nil || node.Active() < global.Active()) {
				global = node
			}
		}
	}
	if global == best && best != nil {
		return best, false
	}
	return global, global != best
}

// Invoke dispatches one invocation at virtual time at.
func (m *MultiRack) Invoke(at time.Duration, fn string) {
	m.eng.At(at, "dispatch/"+fn, func(p *sim.Proc) {
		m.hedge.dispatch(p, fn, "fleet")
	})
}

// AttachRecorder samples reg's series into rec every interval of
// virtual time while RunTrace drives the fleet (interval <= 0 uses
// obs.DefaultSampleInterval). Attach before RunTrace.
func (m *MultiRack) AttachRecorder(rec *obs.Recorder, every time.Duration) {
	m.recorder = rec
	m.recEvery = every
}

// active returns the invocations in flight across every rack.
func (m *MultiRack) active() int {
	n := 0
	for _, rk := range m.racks {
		for _, node := range rk.nodes {
			n += node.Active()
		}
	}
	return n
}

// RunTrace dispatches a trace and runs to completion.
func (m *MultiRack) RunTrace(tr workload.Trace) {
	for _, inv := range tr {
		m.Invoke(inv.At, inv.Function)
	}
	if m.recorder != nil {
		end := tr.Duration()
		m.recorder.PumpWhile(m.eng, m.recEvery, func() bool {
			return m.eng.Now() < end || m.active() > 0
		})
	}
	m.eng.Run()
}

// CXLBytes sums the racks' pool usage (the fabric is a window, not a
// copy, so it is excluded).
func (m *MultiRack) CXLBytes() int64 {
	var n int64
	for _, rk := range m.racks {
		n += rk.cxl.Tracker().Used()
	}
	return n
}

// Invocations sums recorded invocations across all nodes.
func (m *MultiRack) Invocations() int {
	n := 0
	for _, node := range m.Nodes() {
		n += node.Metrics().Invocations()
	}
	return n
}
