package cluster

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// chaosTrace is a scaled-down Azure-like trace: long enough to exercise
// cold starts, keep-alive reuse, and the lazy rdma fetch path.
func chaosTrace(seed int64) workload.Trace {
	var fns []string
	for _, p := range workload.Table4() {
		fns = append(fns, p.Name)
	}
	cfg := workload.AzureConfig(fns)
	cfg.Duration = 8 * time.Minute
	return workload.Industrial(rand.New(rand.NewSource(seed+2)), cfg)
}

// chaosCluster mirrors the availability experiment's sizing: a low hot
// fraction keeps a cold tail in the rdma pool so injected fetch faults
// actually land on the critical path.
func chaosCluster(t *testing.T, seed int64, tracer *obs.Tracer) *Cluster {
	t.Helper()
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = seed
	cfg.SoftMemCap = 64 << 30
	cfg.HotFraction = 0.4
	cfg.Tracer = tracer
	c, err := New(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestKillNodeReleasesAccounting(t *testing.T) {
	c := newCluster(t, 2)
	for i := 0; i < 4; i++ {
		c.Invoke(time.Duration(i)*time.Millisecond, "JS")
	}
	// Kill while the warm instances still hold memory (keep-alive has not
	// expired yet at t=1s): the crash must release their accounting.
	c.Engine().At(time.Second, "kill", func(p *sim.Proc) {
		victim := -1
		for i, node := range c.Nodes() {
			if node.UsedMemory() > 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			t.Error("no node holds warm-instance memory during keep-alive")
			return
		}
		if err := c.KillNode(victim); err != nil {
			t.Error(err)
			return
		}
		if used := c.Nodes()[victim].UsedMemory(); used != 0 {
			t.Errorf("dead node still accounts %d bytes", used)
		}
		if !c.Nodes()[victim].Crashed() {
			t.Error("killed node not marked crashed")
		}
	})
	c.Engine().Run()
	if c.Wedged() != 0 {
		t.Fatalf("wedged = %d", c.Wedged())
	}
}

// TestCrashMidRunRedispatches: a node dies with invocations in flight;
// every aborted invocation is re-dispatched to a survivor and reaches a
// terminal outcome — none complete silently, none wedge.
func TestCrashMidRunRedispatches(t *testing.T) {
	c := newCluster(t, 3)
	fns := []string{"JS", "DH", "CR", "IR", "JS", "DH", "CR", "IR", "JS", "DH", "CR", "IR"}
	for i, fn := range fns {
		c.Invoke(time.Duration(i)*100*time.Microsecond, fn)
	}
	// Kill n0 while the burst is mid-flight (cold starts run for
	// milliseconds, so 2ms lands inside the first wave).
	c.Engine().At(2*time.Millisecond, "kill/n0", func(p *sim.Proc) {
		if err := c.KillNode(0); err != nil {
			t.Errorf("mid-run kill: %v", err)
		}
	})
	c.Engine().Run()

	if c.Wedged() != 0 {
		t.Fatalf("wedged invocations = %d (dispatched=%d redispatched=%d results=%d)",
			c.Wedged(), c.Dispatched(), c.Redispatched(), c.Results())
	}
	aborts := c.Nodes()[0].Metrics().CrashAborts.Value()
	if aborts == 0 {
		t.Fatal("kill landed with nothing in flight; burst timing is off")
	}
	if c.Redispatched() != aborts {
		t.Fatalf("redispatched %d != crash aborts %d: aborted work was lost", c.Redispatched(), aborts)
	}
	// Every dispatch (original + redispatch) reached a terminal outcome.
	if c.Results() != c.Dispatched()+c.Redispatched() {
		t.Fatalf("results %d != dispatched %d + redispatched %d", c.Results(), c.Dispatched(), c.Redispatched())
	}
	// The dead node served nothing after the crash: its invocation count
	// stays at what completed (or aborted) before/at the kill.
	served := 0
	for _, node := range c.AliveNodes() {
		served += node.Metrics().Invocations()
	}
	if served == 0 {
		t.Fatal("survivors served no traffic")
	}
}

// runChaos drives one full chaos run and returns its externally visible
// byte streams: Prometheus metrics, the trace-analytics report, and the
// injector status. Two same-seed calls must match byte for byte.
func runChaos(t *testing.T, seed int64) (prom, analysis, status []byte, c *Cluster) {
	t.Helper()
	tracer := obs.NewTracer(0)
	c = chaosCluster(t, seed, tracer)
	inj := fault.NewInjector(c.Engine(), seed, fault.Scenario{
		FlakyFetches: []fault.FlakyFetch{{Pool: "rdma", Prob: 0.2, Burst: 2}},
		NodeCrashes:  []fault.NodeCrash{{Node: "n2", At: 5 * time.Minute}},
	})
	inj.SetTracer(tracer)
	c.AttachChaos(inj)
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	c.RunTrace(chaosTrace(seed))

	if c.Wedged() != 0 {
		t.Fatalf("wedged invocations = %d", c.Wedged())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := json.Marshal(obs.Analyze(tracer.Spans(), 0))
	if err != nil {
		t.Fatal(err)
	}
	st, err := json.Marshal(inj.Status())
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep, st, c
}

// TestChaosRunSameSeedDeterminism is the PR's acceptance check: with
// FlakyFetch{rdma, p=0.2} plus a node crash injected, a full cluster run
// completes with zero wedged invocations, the faults demonstrably fire,
// and two same-seed runs produce byte-identical metrics, analysis, and
// chaos status.
func TestChaosRunSameSeedDeterminism(t *testing.T) {
	prom1, rep1, st1, c := runChaos(t, 11)

	var retries, fallbacks, errors int64
	for _, node := range c.Nodes() {
		m := node.Metrics()
		retries += m.Retries.Value()
		fallbacks += m.Fallbacks.Value()
		errors += m.Errors.Value()
	}
	if retries == 0 {
		t.Fatal("flaky rdma fetches caused no retries; the fault path was not exercised")
	}
	counts := c.Chaos().Counts()
	if counts["flaky-fetch"] == 0 || counts["node-crash"] != 1 {
		t.Fatalf("injected counts = %v, want flaky fetches and exactly one crash", counts)
	}
	if c.Redispatched() == 0 && c.Nodes()[2].Metrics().CrashAborts.Value() > 0 {
		t.Fatal("crash aborts observed but nothing re-dispatched")
	}

	prom2, rep2, st2, _ := runChaos(t, 11)
	if !bytes.Equal(prom1, prom2) {
		t.Fatal("same-seed chaos runs: Prometheus output differs")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatal("same-seed chaos runs: analysis report differs")
	}
	if !bytes.Equal(st1, st2) {
		t.Fatal("same-seed chaos runs: chaos status differs")
	}

	// A different seed must actually change the run (the rng is live).
	prom3, _, _, _ := runChaos(t, 12)
	if bytes.Equal(prom1, prom3) {
		t.Fatal("different seeds produced identical metrics")
	}
}

// TestBreakerOpensUnderOutage: a long pool outage drives fault-tainted
// outcomes through the breakers; at least one opens, and pick keeps
// routing (availability beats breaker hygiene when all are open).
func TestBreakerOpensUnderOutage(t *testing.T) {
	c := chaosCluster(t, 3, nil)
	inj := fault.NewInjector(c.Engine(), 3, fault.Scenario{
		PoolOutages: []fault.PoolOutage{{Pool: "cxl", From: 0, To: time.Hour}},
	})
	c.AttachChaos(inj)
	c.RunTrace(chaosTrace(3))
	if c.Wedged() != 0 {
		t.Fatalf("wedged = %d", c.Wedged())
	}
	var opens int64
	for _, b := range c.Breakers() {
		opens += b.Opens()
	}
	if opens == 0 {
		t.Fatal("no breaker opened under a full-run pool outage")
	}
	var fallbacks int64
	for _, node := range c.Nodes() {
		fallbacks += node.Metrics().Fallbacks.Value()
	}
	if fallbacks == 0 {
		t.Fatal("outage produced no local-cold-start fallbacks")
	}
}

func TestMultiRackKillNodeGuards(t *testing.T) {
	m := newMultiRack(t, 2, 1)
	js, _ := workload.ProfileByName("JS")
	if err := m.Register(js, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.KillNode("bogus"); err == nil {
		t.Fatal("unknown node name accepted")
	}
	if err := m.KillNode("r0n0"); err != nil {
		t.Fatal(err)
	}
	if err := m.KillNode("r0n0"); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := m.KillNode("r1n0"); err == nil {
		t.Fatal("killed the last node")
	}
	// Traffic still flows on the survivor.
	m.Invoke(0, "JS")
	m.Engine().Run()
	if m.Wedged() != 0 || m.Invocations() != 1 {
		t.Fatalf("wedged=%d invocations=%d after kill", m.Wedged(), m.Invocations())
	}
}
