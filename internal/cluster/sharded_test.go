package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/workload"
)

func newShardedFleet(t *testing.T, racks, workers int) *ShardedFleet {
	t.Helper()
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = 1
	f, err := NewShardedFleet(ShardedConfig{
		Racks:        racks,
		NodesPerRack: 2,
		TraceCap:     4096,
		Workers:      workers,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range workload.Table4() {
		if err := f.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func shardedTestTrace() workload.Trace {
	var fns []string
	for _, p := range workload.Table4() {
		fns = append(fns, p.Name)
	}
	az := workload.AzureConfig(fns)
	az.Duration = 2 * time.Minute
	az.MeanPerMin = 60
	return workload.Industrial(rand.New(rand.NewSource(3)), az)
}

// runShardedExports runs a fixed trace and returns two export surfaces
// the byte-identity contract covers: the Prometheus text and a digest
// of the merged span list. (The report-bundle surface is asserted in
// the report package, which sits above this one.)
func runShardedExports(t *testing.T, workers int) (string, string) {
	t.Helper()
	f := newShardedFleet(t, 4, workers)
	f.RunTrace(shardedTestTrace())
	if f.Wedged() != 0 {
		t.Fatalf("workers=%d: wedged=%d, want 0", workers, f.Wedged())
	}
	reg := obs.NewRegistry()
	f.RegisterMetrics(reg)
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	var spans strings.Builder
	for _, sp := range f.Spans() {
		fmt.Fprintf(&spans, "%s %s %d %d\n", sp.TraceID, sp.Name, sp.Start, sp.End)
	}
	return prom.String(), spans.String()
}

func TestShardedFleetRunsTraceAndSpills(t *testing.T) {
	f := newShardedFleet(t, 2, 1)
	tr := shardedTestTrace()
	f.RunTrace(tr)
	if got := f.Invocations(); got != len(tr) {
		t.Fatalf("invocations = %d, want %d", got, len(tr))
	}
	if f.Wedged() != 0 {
		t.Fatalf("wedged = %d, want 0", f.Wedged())
	}
	if f.Group().Windows() == 0 {
		t.Fatal("no synchronization windows ran")
	}
	if len(f.Spans()) == 0 {
		t.Fatal("no spans recorded")
	}
}

// The fleet's logical schedule — and therefore every exported artifact —
// must be byte-identical at any worker count.
func TestShardedFleetInvariantOfWorkerCount(t *testing.T) {
	promWant, reportWant := runShardedExports(t, 1)
	if !strings.Contains(promWant, "trenv_shard_windows_total") {
		t.Fatal("shard coordinator series missing from export")
	}
	for _, workers := range []int{2, 4, 8} {
		prom, spans := runShardedExports(t, workers)
		if prom != promWant {
			t.Fatalf("workers=%d: Prometheus export differs from workers=1", workers)
		}
		if spans != reportWant {
			t.Fatalf("workers=%d: merged span export differs from workers=1", workers)
		}
	}
}

// Saturating a single home rack must spill work to peers over the
// fabric, and the spilled invocations must still all complete.
func TestShardedFleetSpillover(t *testing.T) {
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = 1
	cfg.Cores = 2 // tiny nodes so a burst saturates the home rack
	f, err := NewShardedFleet(ShardedConfig{Racks: 2, NodesPerRack: 2, Workers: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range workload.Table4() {
		if err := f.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	home := f.Home("JS")
	// Staggered burst far beyond one rack's four cores: JS runs 120ms+,
	// so arrivals 1ms apart pile up well past saturation.
	var tr workload.Trace
	for i := 0; i < 64; i++ {
		tr = append(tr, workload.Invocation{At: time.Duration(i+1) * time.Millisecond, Function: "JS"})
	}
	f.RunTrace(tr)
	if f.Spillovers() == 0 {
		t.Fatal("burst on one home rack produced no spillovers")
	}
	if f.spillsFrom[home] == 0 {
		t.Fatalf("spills did not originate from home rack %d", home)
	}
	if got := f.Invocations(); got != 64 {
		t.Fatalf("invocations = %d, want 64", got)
	}
	if f.Wedged() != 0 {
		t.Fatalf("wedged = %d, want 0", f.Wedged())
	}
	if f.Group().Messages() == 0 {
		t.Fatal("spillovers without cross-shard messages")
	}
}

// Registration and homing must be pure functions of registration order.
func TestShardedFleetHomingDeterministic(t *testing.T) {
	f := newShardedFleet(t, 3, 1)
	g := newShardedFleet(t, 3, 1)
	for _, p := range workload.Table4() {
		if f.Home(p.Name) != g.Home(p.Name) {
			t.Fatalf("homing for %q differs between identical fleets", p.Name)
		}
	}
	if err := f.Register(workload.Table4()[0]); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
