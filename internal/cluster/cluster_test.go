package cluster

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/workload"
)

func newCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := New(nodes, faas.DefaultConfig(faas.PolicyTrEnvCXL))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, faas.DefaultConfig(faas.PolicyTrEnvCXL)); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := New(2, faas.DefaultConfig(faas.PolicyCRIU)); err == nil {
		t.Fatal("non-TrEnv policy accepted for rack sharing")
	}
}

func TestImagesStoredOncePerRack(t *testing.T) {
	c := newCluster(t, 4)
	// Pool holds one consolidated copy regardless of node count.
	single, err := New(1, faas.DefaultConfig(faas.PolicyTrEnvCXL))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range workload.Table4() {
		single.Register(p)
	}
	if c.Pool().Tracker().Used() != single.Pool().Tracker().Used() {
		t.Fatalf("4-node pool %d != 1-node pool %d", c.Pool().Tracker().Used(), single.Pool().Tracker().Used())
	}
}

func TestCrossNodeTemplateSharing(t *testing.T) {
	c := newCluster(t, 2)
	// Force invocations onto both nodes by saturating the first.
	for i := 0; i < 6; i++ {
		c.Invoke(time.Duration(i)*time.Millisecond, "JS")
	}
	c.Engine().Run()
	if c.Invocations() != 6 {
		t.Fatalf("invocations = %d", c.Invocations())
	}
	// Both nodes attached the same template: attach count is cluster-wide.
	img := c.nodes[0].Store().Image("JS")
	if img == nil {
		t.Fatal("image missing")
	}
	var attaches int64
	for _, tpl := range img.Templates {
		attaches += tpl.Attaches()
	}
	if attaches < 2 {
		t.Fatalf("template attaches = %d, want cross-node reuse", attaches)
	}
}

func TestDispatchPrefersWarmNodes(t *testing.T) {
	c := newCluster(t, 3)
	c.Invoke(0, "JS")
	c.Invoke(30*time.Second, "JS") // sequential: should hit the warm node
	c.Engine().Run()
	var warmHits int64
	for _, n := range c.Nodes() {
		warmHits += n.Metrics().WarmHits.Value()
	}
	if warmHits != 1 {
		t.Fatalf("warm hits = %d, want 1 (dispatch must prefer the warm node)", warmHits)
	}
}

func TestDedupFactorGrowsWithNodes(t *testing.T) {
	c := newCluster(t, 4)
	// Every language runtime/libs block is referenced by many functions,
	// once per rack — logical bytes exceed unique bytes.
	if f := c.DedupFactor(); f <= 1.0 {
		t.Fatalf("dedup factor = %.2f, want > 1", f)
	}
}

func TestClusterRunTrace(t *testing.T) {
	c := newCluster(t, 2)
	rng := rand.New(rand.NewSource(1))
	tr := workload.W1Bursty(rng, workload.W1Config{
		Functions: []string{"JS", "DH", "CR"},
		Duration:  2 * time.Minute,
		BurstGap:  time.Minute,
		BurstSize: 4,
		BurstSpan: time.Second,
	})
	c.RunTrace(tr)
	if c.Invocations() != tr.Len() {
		t.Fatalf("invocations %d != trace %d", c.Invocations(), tr.Len())
	}
	if c.TotalPeakMemory() == 0 {
		t.Fatal("no memory recorded")
	}
}

// TestNodeFailureSurvivedByPool: killing a node loses its warm instances
// but not the rack's consolidated images; survivors serve everything
// without re-preprocessing.
func TestNodeFailureSurvivedByPool(t *testing.T) {
	c := newCluster(t, 3)
	c.Invoke(0, "JS")
	c.Engine().Run()
	poolBefore := c.Pool().Tracker().Used()

	if err := c.KillNode(0); err != nil { // the node that served JS
		t.Fatal(err)
	}
	if err := c.KillNode(0); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := c.KillNode(9); err == nil {
		t.Fatal("bad index accepted")
	}
	if len(c.AliveNodes()) != 2 {
		t.Fatalf("alive = %d", len(c.AliveNodes()))
	}
	// Pool state untouched by the node loss.
	if c.Pool().Tracker().Used() != poolBefore {
		t.Fatal("pool changed on node failure")
	}
	// Traffic keeps flowing on the survivors — cold-but-cheap template
	// attaches against the same image.
	c.Invoke(c.Engine().Now(), "JS")
	c.Invoke(c.Engine().Now(), "CR")
	c.Engine().Run()
	if c.Invocations() != 3 {
		t.Fatalf("invocations = %d", c.Invocations())
	}
	if c.nodes[0].Metrics().Invocations() != 1 {
		t.Fatal("dead node served post-failure traffic")
	}
	// Cannot kill the last node.
	c.KillNode(1)
	if err := c.KillNode(2); err == nil {
		t.Fatal("killed the last node")
	}
}
