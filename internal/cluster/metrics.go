package cluster

import (
	"fmt"

	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// registerBreakers publishes one breaker-state gauge and opens counter
// per node; names align breakers[i] with nodeName(i).
func registerBreakers(reg *obs.Registry, breakers []*fault.Breaker, nodeName func(int) string) {
	for i, b := range breakers {
		b := b
		labels := map[string]string{"node": nodeName(i)}
		reg.GaugeFunc("trenv_breaker_state", "Circuit-breaker position (0 closed, 1 open, 2 half-open).", labels,
			func() float64 { return float64(b.State()) })
		reg.CounterFunc("trenv_breaker_opens_total", "Circuit-breaker trips to open.", labels, b.Opens)
	}
}

// registerFleetAggregates publishes the cluster-wide roll-up series: each
// trenv_cluster_* value is, by construction, the sum (or count) over the
// same nodes whose per-node series carry node="..." labels in the same
// registry, so aggregate == sum(node series) holds at every scrape.
func registerFleetAggregates(reg *obs.Registry, nodes []*faas.Platform, alive func() float64) {
	sum := func(sel func(*faas.Platform) int64) func() int64 {
		return func() int64 {
			var n int64
			for _, nd := range nodes {
				n += sel(nd)
			}
			return n
		}
	}
	counters := []struct {
		name, help string
		sel        func(*faas.Platform) int64
	}{
		{"trenv_cluster_invocations_total", "Recorded invocations summed across all nodes.",
			func(p *faas.Platform) int64 { return int64(p.Metrics().Invocations()) }},
		{"trenv_cluster_warm_hits_total", "Warm hits summed across all nodes.",
			func(p *faas.Platform) int64 { return p.Metrics().WarmHits.Value() }},
		{"trenv_cluster_cold_starts_total", "Cold starts summed across all nodes.",
			func(p *faas.Platform) int64 { return p.Metrics().ColdStarts.Value() }},
		{"trenv_cluster_errors_total", "Failed invocations summed across all nodes.",
			func(p *faas.Platform) int64 { return p.Metrics().Errors.Value() }},
		{"trenv_cluster_minor_faults_total", "Minor page faults summed across all nodes.",
			func(p *faas.Platform) int64 { return p.FaultStats().MinorFaults }},
		{"trenv_cluster_major_faults_total", "Major page faults summed across all nodes.",
			func(p *faas.Platform) int64 { return p.FaultStats().MajorFaults }},
		{"trenv_cluster_cow_copies_total", "CoW page copies summed across all nodes.",
			func(p *faas.Platform) int64 { return p.FaultStats().CowPages }},
		{"trenv_cluster_pages_fetched_total", "Remotely fetched pages summed across all nodes.",
			func(p *faas.Platform) int64 { return p.FaultStats().FetchedPages }},
	}
	for _, c := range counters {
		reg.CounterFunc(c.name, c.help, nil, sum(c.sel))
	}
	reg.GaugeFunc("trenv_cluster_mem_used_bytes", "Node DRAM in use summed across all nodes.", nil,
		func() float64 {
			var n int64
			for _, nd := range nodes {
				n += nd.UsedMemory()
			}
			return float64(n)
		})
	reg.GaugeFunc("trenv_cluster_mem_peak_bytes", "Sum of the nodes' DRAM high-water marks.", nil,
		func() float64 {
			var n int64
			for _, nd := range nodes {
				n += nd.PeakMemory()
			}
			return float64(n)
		})
	reg.GaugeFunc("trenv_cluster_nodes_alive", "Nodes currently in rotation.", nil, alive)
}

// registerHedger publishes the dispatch-layer counters every topology
// shares: crash re-dispatch, hedging, cancellation, and exhaustion.
// labels distinguishes multiple hedgers in one registry (the sharded
// fleet has one per rack); nil keeps the classic unlabeled series.
func registerHedger(reg *obs.Registry, h *hedger, labels map[string]string) {
	counters := []struct {
		name, help string
		c          *sim.Counter
	}{
		{"trenv_redispatched_total", "Crash-aborted invocations re-dispatched to surviving nodes.", &h.redispatched},
		{"trenv_hedges_total", "Extra attempts launched by the hedge policy.", &h.hedged},
		{"trenv_hedge_wins_total", "Hedge races settled by a non-primary attempt.", &h.hedgeWins},
		{"trenv_hedge_skips_total", "Hedges skipped for lack of a second healthy node.", &h.hedgeSkips},
		{"trenv_hedge_cancelled_total", "Losing attempts cooperatively cancelled by the dispatcher.", &h.cancelled},
		{"trenv_redispatch_exhausted_total", "Invocations abandoned after exhausting their re-dispatch budget.", &h.exhausted},
	}
	for _, c := range counters {
		reg.CounterFunc(c.name, c.help, labels, c.c.Value)
	}
}

// RegisterMetrics publishes the whole rack into reg: every node's full
// metric surface under node="n<i>" labels, the shared CXL pool and
// template registry once under scope="rack", and trenv_cluster_*
// aggregates that always equal the sum of the per-node series.
func (c *Cluster) RegisterMetrics(reg *obs.Registry) {
	for _, node := range c.nodes {
		node.RegisterMetricsLabeled(reg, map[string]string{"node": node.NodeName()})
	}
	rack := map[string]string{"scope": "rack"}
	c.cxl.RegisterMetricsLabeled(reg, rack)
	c.store.Registry().RegisterMetrics(reg, rack)
	registerFleetAggregates(reg, c.nodes, func() float64 { return float64(len(c.AliveNodes())) })
	reg.GaugeFunc("trenv_cluster_dedup_factor", "Logical/unique bytes for the rack's consolidated images.", rack,
		c.DedupFactor)
	registerBreakers(reg, c.breakers, func(i int) string { return c.nodes[i].NodeName() })
	registerHedger(reg, c.hedge, nil)
	if c.chaos != nil {
		c.chaos.RegisterMetrics(reg, nil)
	}
}

// RegisterMetrics publishes the multi-rack fleet into reg: nodes under
// rack="r<i>",node="r<i>n<j>" labels, each rack's CXL pool and template
// registry under scope="rack", the inter-rack fabric under
// scope="fabric", per-rack invocation roll-ups, and the same
// trenv_cluster_* fleet aggregates the single-rack Cluster exports.
func (m *MultiRack) RegisterMetrics(reg *obs.Registry) {
	for ri, rk := range m.racks {
		rackName := fmt.Sprintf("r%d", ri)
		for ni, node := range rk.nodes {
			node.RegisterMetricsLabeled(reg, map[string]string{
				"rack": rackName,
				"node": fmt.Sprintf("%sn%d", rackName, ni),
			})
		}
		rackLabels := map[string]string{"scope": "rack", "rack": rackName}
		rk.cxl.RegisterMetricsLabeled(reg, rackLabels)
		rk.store.Registry().RegisterMetrics(reg, rackLabels)
	}
	fabric := map[string]string{"scope": "fabric"}
	m.fabric.RegisterMetricsLabeled(reg, fabric)
	m.fabricStore.Registry().RegisterMetrics(reg, fabric)
	reg.CounterSetFunc("trenv_rack_invocations_total", "Recorded invocations summed per rack.",
		func() []obs.LabeledValue {
			out := make([]obs.LabeledValue, 0, len(m.racks))
			for ri, rk := range m.racks {
				var n int64
				for _, node := range rk.nodes {
					n += int64(node.Metrics().Invocations())
				}
				out = append(out, obs.LabeledValue{
					Labels: map[string]string{"rack": fmt.Sprintf("r%d", ri)},
					Value:  float64(n),
				})
			}
			return out
		})
	nodes := m.Nodes()
	registerFleetAggregates(reg, nodes, func() float64 { return float64(len(nodes) - len(m.down)) })
	reg.CounterFunc("trenv_cluster_spillovers_total", "Invocations dispatched off their home rack.", nil,
		m.spillovers.Value)
	registerBreakers(reg, m.breakers, func(i int) string { return nodes[i].NodeName() })
	registerHedger(reg, m.hedge, nil)
	if m.chaos != nil {
		m.chaos.RegisterMetrics(reg, nil)
	}
}
