package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultSpillDelay is the cross-rack dispatch-forwarding latency of the
// sharded fleet — the RPC hop plus fabric queueing that a request pays
// when its home rack is saturated and it re-dispatches elsewhere. It is
// also the shard group's conservative lookahead: no rack can influence
// another in less virtual time than this, which is what lets the racks'
// event loops run in parallel between synchronization horizons.
const DefaultSpillDelay = 200 * time.Microsecond

// ShardedConfig sizes a ShardedFleet.
type ShardedConfig struct {
	// Racks is the number of shards; each rack is a full Cluster (own
	// CXL pool, snapshot store, nodes, breakers, hedger) on its own
	// simulation engine.
	Racks int
	// NodesPerRack sizes each rack.
	NodesPerRack int
	// SpillDelay is the cross-rack forwarding latency and shard
	// lookahead (0 = DefaultSpillDelay). Larger values widen the
	// synchronization windows — more parallelism, laggier spillover.
	SpillDelay time.Duration
	// TraceCap, when > 0, attaches one span tracer per rack with this
	// ring capacity; Spans() merges them deterministically.
	TraceCap int
	// Workers is the number of OS goroutines executing rack windows in
	// parallel (0 or 1 = sequential). Workers changes wall-clock speed
	// only — the schedule, and therefore every exported artifact, is
	// byte-identical at any worker count.
	Workers int
}

// ShardedFleet is the parallel counterpart of MultiRack: racks become
// independently-advancing event queues (one sim.Engine each, own heap,
// sequence counter, and rng stream) coordinated by a sim.ShardGroup, and
// the only cross-rack coupling — spillover dispatch from a saturated
// home rack — travels as a timestamped message delivered at a
// deterministic synchronization horizon.
//
// Two deliberate departures from MultiRack keep the shards causally
// closed: every rack holds its own consolidated replica of each function
// image (a cross-rack pool read would couple two shards below the
// lookahead), and spillover targets are chosen blindly by per-home-rack
// round robin (reading another rack's load would do the same). Hedging,
// crash re-dispatch, and breaker routing all stay intra-rack.
type ShardedFleet struct {
	group      *sim.ShardGroup
	racks      []*Cluster
	tracers    []*obs.Tracer
	homes      map[string]int
	regOrder   int
	spillDelay time.Duration
	seed       int64
	scale      float64

	// Per-rack state written only by that rack's shard (single-writer,
	// race-free under parallel windows); summed after the run.
	spillsFrom []int64
	spillRR    []int
}

// NewShardedFleet builds sc.Racks racks of sc.NodesPerRack nodes. cfg
// must use TrEnvCXL (each rack is a Cluster); cfg.Engine must be nil —
// the fleet derives one engine per rack from cfg.Seed.
func NewShardedFleet(sc ShardedConfig, cfg faas.Config) (*ShardedFleet, error) {
	if sc.Racks <= 0 || sc.NodesPerRack <= 0 {
		return nil, fmt.Errorf("cluster: need positive rack/node counts, got %d x %d", sc.Racks, sc.NodesPerRack)
	}
	if cfg.Engine != nil {
		return nil, fmt.Errorf("cluster: sharded fleet owns its engines; cfg.Engine must be nil")
	}
	delay := sc.SpillDelay
	if delay <= 0 {
		delay = DefaultSpillDelay
	}
	f := &ShardedFleet{
		group:      sim.NewShardGroup(cfg.Seed, sc.Racks, delay),
		homes:      make(map[string]int),
		spillDelay: delay,
		seed:       cfg.Seed,
		spillsFrom: make([]int64, sc.Racks),
		spillRR:    make([]int, sc.Racks),
	}
	f.group.SetWorkers(sc.Workers)
	for ri := 0; ri < sc.Racks; ri++ {
		rackCfg := cfg
		rackCfg.Engine = f.group.Shard(ri)
		rackCfg.Node = fmt.Sprintf("r%d", ri) // prefix: nodes become r<ri>n<j>
		if sc.TraceCap > 0 {
			tr := obs.NewTracer(sc.TraceCap)
			rackCfg.Tracer = tr
			f.tracers = append(f.tracers, tr)
		}
		rack, err := New(sc.NodesPerRack, rackCfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: rack %d: %w", ri, err)
		}
		f.racks = append(f.racks, rack)
	}
	return f, nil
}

// Group returns the shard coordinator.
func (f *ShardedFleet) Group() *sim.ShardGroup { return f.group }

// Racks returns the per-rack clusters (shard order).
func (f *ShardedFleet) Racks() []*Cluster { return f.racks }

// Seed returns the fleet's base seed (rack i's engine derives from it).
func (f *ShardedFleet) Seed() int64 { return f.seed }

// Register deploys a function on every rack (one consolidated replica
// each) and homes its dispatch on racks in registration round-robin
// order — a pure function of registration sequence, so homing never
// depends on map iteration.
func (f *ShardedFleet) Register(prof workload.FunctionProfile) error {
	if _, ok := f.homes[prof.Name]; ok {
		return fmt.Errorf("cluster: function %q already registered", prof.Name)
	}
	for ri, rack := range f.racks {
		if err := rack.Register(prof); err != nil {
			return fmt.Errorf("cluster: rack %d: %w", ri, err)
		}
	}
	f.homes[prof.Name] = f.regOrder % len(f.racks)
	f.regOrder++
	return nil
}

// Home returns the rack a function's dispatch is homed on.
func (f *ShardedFleet) Home(fn string) int { return f.homes[fn] }

// Invoke schedules one invocation at virtual time at on the function's
// home rack; placement (and a possible spill) is decided when the time
// arrives, on that rack's shard.
func (f *ShardedFleet) Invoke(at time.Duration, fn string) {
	home, ok := f.homes[fn]
	if !ok {
		panic(fmt.Sprintf("cluster: invoke of unregistered function %q", fn))
	}
	eng := f.group.Shard(home)
	eng.At(at, "dispatch/"+fn, func(p *sim.Proc) { f.dispatchOn(home, p, fn) })
}

// dispatchOn places fn on rack ri, or spills it. The decision reads only
// rack ri's state: if any healthy node holds a warm instance or an idle
// core, dispatch locally; otherwise forward to the next rack in ri's
// round-robin rotation after the fabric delay. Spilled arrivals always
// dispatch locally at the target — one hop, no ping-pong.
func (f *ShardedFleet) dispatchOn(ri int, p *sim.Proc, fn string) {
	rack := f.racks[ri]
	if len(f.racks) == 1 || f.rackHasRoom(rack, fn) {
		rack.hedge.dispatch(p, fn, "rack")
		return
	}
	f.spillsFrom[ri]++
	target := f.nextSpillTarget(ri)
	f.group.Send(ri, target, f.spillDelay, func() {
		f.group.Shard(target).Go("spill/"+fn, func(p2 *sim.Proc) {
			f.racks[target].hedge.dispatch(p2, fn, "fleet-spill")
		})
	})
}

// rackHasRoom reports whether the rack can take fn without queueing
// behind saturated cores: a warm instance or an idle core on any
// healthy node.
func (f *ShardedFleet) rackHasRoom(rack *Cluster, fn string) bool {
	for _, node := range rack.healthyNodes() {
		if node.HasWarm(fn) || node.Active() < node.Cores() {
			return true
		}
	}
	return false
}

// nextSpillTarget rotates rack ri's private round-robin cursor over the
// other racks. Blind by design: reading another shard's load during a
// window would break causal closure, so the fleet trades placement
// quality for parallelism on the spill path.
func (f *ShardedFleet) nextSpillTarget(ri int) int {
	f.spillRR[ri]++
	return (ri + f.spillRR[ri]) % len(f.racks)
}

// RunTrace dispatches a trace across the fleet and advances every rack
// in synchronization windows to completion. Unlike Cluster and
// MultiRack, the sharded fleet has no recorder pump: sampling one
// registry across concurrently-advancing shards would need a global
// clock inside windows. Gather metrics after the run instead.
func (f *ShardedFleet) RunTrace(tr workload.Trace) {
	for _, inv := range tr {
		f.Invoke(inv.At, inv.Function)
	}
	f.group.Run()
}

// Spillovers counts invocations forwarded off their home rack.
func (f *ShardedFleet) Spillovers() int64 {
	var n int64
	for _, s := range f.spillsFrom {
		n += s
	}
	return n
}

// Invocations sums recorded invocations across all racks.
func (f *ShardedFleet) Invocations() int {
	n := 0
	for _, rack := range f.racks {
		n += rack.Invocations()
	}
	return n
}

// Dispatched sums primary dispatches across the racks' hedgers.
func (f *ShardedFleet) Dispatched() int64 {
	var n int64
	for _, rack := range f.racks {
		n += rack.Dispatched()
	}
	return n
}

// Wedged sums the racks' no-loss balances; zero after RunTrace means no
// attempt was lost anywhere in the fleet.
func (f *ShardedFleet) Wedged() int64 {
	var n int64
	for _, rack := range f.racks {
		n += rack.Wedged()
	}
	return n
}

// Events sums executed events across every shard.
func (f *ShardedFleet) Events() int64 { return f.group.Events() }

// Spans merges the racks' span rings into one virtual-time-ordered
// list: concatenate in rack order (deterministic), then stable-sort by
// start time, so the result is a pure function of the logical schedule
// and identical at any worker count.
func (f *ShardedFleet) Spans() []*obs.Span {
	var all []*obs.Span
	for _, tr := range f.tracers {
		all = append(all, tr.Spans()...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	return all
}

// RegisterMetrics publishes the fleet into reg: every node under
// rack/node labels, each rack's pool, registry, breakers, and hedger
// under its rack label, per-rack spill counters, fleet-wide
// trenv_cluster_* aggregates, and the shard coordinator's window and
// message counters under scope="shard".
func (f *ShardedFleet) RegisterMetrics(reg *obs.Registry) {
	var nodes []*faas.Platform
	for ri, rack := range f.racks {
		rackName := fmt.Sprintf("r%d", ri)
		for _, node := range rack.nodes {
			node.RegisterMetricsLabeled(reg, map[string]string{"rack": rackName, "node": node.NodeName()})
		}
		rackLabels := map[string]string{"scope": "rack", "rack": rackName}
		rack.cxl.RegisterMetricsLabeled(reg, rackLabels)
		rack.store.Registry().RegisterMetrics(reg, rackLabels)
		registerBreakers(reg, rack.breakers, func(i int) string { return rack.nodes[i].NodeName() })
		registerHedger(reg, rack.hedge, map[string]string{"rack": rackName})
		ri := ri
		reg.CounterFunc("trenv_rack_spillovers_total", "Invocations forwarded off this home rack.",
			map[string]string{"rack": rackName}, func() int64 { return f.spillsFrom[ri] })
		nodes = append(nodes, rack.nodes...)
	}
	alive := func() float64 {
		n := 0
		for _, rack := range f.racks {
			n += len(rack.AliveNodes())
		}
		return float64(n)
	}
	registerFleetAggregates(reg, nodes, alive)
	reg.CounterFunc("trenv_cluster_spillovers_total", "Invocations dispatched off their home rack.", nil,
		f.Spillovers)
	shard := map[string]string{"scope": "shard"}
	reg.CounterFunc("trenv_shard_windows_total", "Synchronization windows the shard group has run.", shard,
		f.group.Windows)
	reg.CounterFunc("trenv_shard_messages_total", "Cross-shard messages delivered at horizons.", shard,
		f.group.Messages)
	reg.GaugeFunc("trenv_shard_lookahead_seconds", "Conservative lookahead (= spill delay) in seconds.", shard,
		f.group.Lookahead().Seconds)
}
