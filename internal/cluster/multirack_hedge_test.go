package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// multiRackHedge builds a 2x2 fleet with Table 4 homed on alternating
// racks and a settle hook rendering deterministic lines.
func multiRackHedge(t *testing.T, seed int64) (*MultiRack, *[]string) {
	t.Helper()
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = seed
	cfg.HotFraction = 0.4 // keep lazy rdma fetches (and their faults) on the path
	m, err := NewMultiRack(2, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range workload.Table4() {
		if err := m.Register(p, i%2); err != nil {
			t.Fatal(err)
		}
	}
	lines := new([]string)
	m.SetSettleHook(func(fn string, latency time.Duration, r faas.InvocationResult) {
		*lines = append(*lines, fmt.Sprintf("%s %s %s", fn, latency, r.Outcome))
	})
	return m, lines
}

// TestMultiRackHedgeLoserCancelled: fleet-wide hedging has the same
// race semantics as the single rack — the primary wins on an idle
// fleet, the hedge cancels, and the extended invariant holds.
func TestMultiRackHedgeLoserCancelled(t *testing.T) {
	m, lines := multiRackHedge(t, 1)
	m.SetHedgePolicy(HedgePolicy{Mode: HedgeDelay, Delay: time.Millisecond})
	m.Invoke(0, "JS")
	m.Engine().Run()

	if m.Hedged() != 1 || m.HedgeWins() != 0 || m.Cancelled() != 1 {
		t.Fatalf("hedged=%d wins=%d cancelled=%d, want 1/0/1", m.Hedged(), m.HedgeWins(), m.Cancelled())
	}
	if len(*lines) != 1 || m.Wedged() != 0 {
		t.Fatalf("settled=%d wedged=%d, want 1/0", len(*lines), m.Wedged())
	}
}

// TestMultiRackRedispatchCap: the crash re-dispatch budget applies
// fleet-wide. With budget zero a crashed home node's invocation
// terminates as redispatch-exhausted; with the default budget the same
// crash re-dispatches and settles successfully.
func TestMultiRackRedispatchCap(t *testing.T) {
	kill := func(m *MultiRack) {
		m.Engine().At(5*time.Millisecond, "kill/r1n0", func(p *sim.Proc) {
			// JS is homed on rack 1 (Table 4 index 1, alternating homes) and
			// the idle-fleet tie-break places the primary on the home rack's
			// first node.
			if err := m.KillNode("r1n0"); err != nil {
				t.Errorf("mid-run kill: %v", err)
			}
		})
	}

	m, lines := multiRackHedge(t, 1)
	m.SetMaxRedispatch(0)
	m.Invoke(0, "JS")
	kill(m)
	m.Engine().Run()
	if m.RedispatchExhausted() != 1 || m.Redispatched() != 0 {
		t.Fatalf("exhausted=%d redispatched=%d, want 1/0", m.RedispatchExhausted(), m.Redispatched())
	}
	if len(*lines) != 1 || m.Wedged() != 0 {
		t.Fatalf("settled=%d wedged=%d, want 1/0 (exhaustion still settles)", len(*lines), m.Wedged())
	}

	m2, lines2 := multiRackHedge(t, 1)
	m2.Invoke(0, "JS")
	kill(m2)
	m2.Engine().Run()
	if m2.Redispatched() != 1 || m2.RedispatchExhausted() != 0 {
		t.Fatalf("redispatched=%d exhausted=%d, want 1/0", m2.Redispatched(), m2.RedispatchExhausted())
	}
	if len(*lines2) != 1 || (*lines2)[0] == "" || m2.Wedged() != 0 {
		t.Fatalf("settled=%+v wedged=%d, want one settle, zero wedged", *lines2, m2.Wedged())
	}
}

// multiRackChaosRun drives the bursty trace through the 2x2 fleet with
// hedging armed under flaky-RDMA chaos plus a node crash.
func multiRackChaosRun(t *testing.T, seed int64) ([]string, *MultiRack) {
	t.Helper()
	m, lines := multiRackHedge(t, seed)
	m.SetHedgePolicy(HedgePolicy{Mode: HedgeDelay, Delay: 5 * time.Millisecond})
	inj := fault.NewInjector(m.Engine(), seed, fault.Scenario{
		FlakyFetches: []fault.FlakyFetch{{Pool: "rdma", Prob: 0.2, Burst: 2}},
		NodeCrashes:  []fault.NodeCrash{{Node: "r1n1", At: 30 * time.Second}},
	})
	m.AttachChaos(inj)
	tr := workload.W1Bursty(rand.New(rand.NewSource(seed)), workload.W1Config{
		Functions: []string{"JS", "DH", "CR", "IR"},
		Duration:  time.Minute,
		BurstGap:  10 * time.Second,
		BurstSize: 6,
		BurstSpan: time.Second,
	})
	m.RunTrace(tr)
	return *lines, m
}

// TestMultiRackHedgingChaosParity: the MultiRack fleet upholds the same
// acceptance bar as the single rack — hedging composed with chaos and a
// crash keeps the extended invariant at zero, hedges actually launch,
// the attempt ledger balances, and two same-seed runs settle
// identically, line for line.
func TestMultiRackHedgingChaosParity(t *testing.T) {
	lines1, m := multiRackChaosRun(t, 7)
	if m.Wedged() != 0 {
		t.Fatalf("wedged = %d (dispatched=%d redispatched=%d hedged=%d results=%d cancelled=%d)",
			m.Wedged(), m.Dispatched(), m.Redispatched(), m.Hedged(), m.Results(), m.Cancelled())
	}
	if m.Hedged() == 0 {
		t.Fatal("no hedges launched; the policy was not exercised")
	}
	if got := m.Dispatched() + m.Redispatched() + m.Hedged(); got != m.Results()+m.Cancelled() {
		t.Fatalf("attempt ledger unbalanced: %d launched, %d terminated", got, m.Results()+m.Cancelled())
	}
	lines2, _ := multiRackChaosRun(t, 7)
	if len(lines1) != len(lines2) {
		t.Fatalf("same-seed runs settled %d vs %d invocations", len(lines1), len(lines2))
	}
	for i := range lines1 {
		if lines1[i] != lines2[i] {
			t.Fatalf("same-seed runs diverge at settle %d: %q vs %q", i, lines1[i], lines2[i])
		}
	}
}
