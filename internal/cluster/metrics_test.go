package cluster

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

func clusterTrace(seed int64) workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	return workload.W1Bursty(rng, workload.W1Config{
		Functions: []string{"JS", "DH", "CR"},
		Duration:  2 * time.Minute,
		BurstGap:  30 * time.Second,
		BurstSize: 4,
		BurstSpan: time.Second,
	})
}

// sumWhere sums gathered samples of family name whose labels contain key.
func sumWhere(samples []obs.Sample, name, key string) (float64, int) {
	var total float64
	n := 0
	for _, s := range samples {
		if s.Name == name && s.Labels[key] != "" {
			total += s.Value
			n++
		}
	}
	return total, n
}

// one returns the single sample of family name with no node/rack label.
func one(t *testing.T, samples []obs.Sample, name string) float64 {
	t.Helper()
	found := false
	var v float64
	for _, s := range samples {
		if s.Name != name || s.Labels["node"] != "" || s.Labels["rack"] != "" {
			continue
		}
		if found {
			t.Fatalf("family %s has several aggregate series", name)
		}
		found, v = true, s.Value
	}
	if !found {
		t.Fatalf("family %s missing", name)
	}
	return v
}

func TestClusterAggregateEqualsNodeSum(t *testing.T) {
	c := newCluster(t, 3)
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	c.RunTrace(clusterTrace(7))

	samples := reg.Gather()
	if c.Invocations() == 0 {
		t.Fatal("trace ran nothing")
	}
	pairs := []struct{ agg, per string }{
		{"trenv_cluster_invocations_total", "trenv_invocations_total"},
		{"trenv_cluster_warm_hits_total", "trenv_warm_hits_total"},
		{"trenv_cluster_cold_starts_total", "trenv_cold_starts_total"},
		{"trenv_cluster_errors_total", "trenv_errors_total"},
		{"trenv_cluster_minor_faults_total", "trenv_page_minor_faults_total"},
		{"trenv_cluster_major_faults_total", "trenv_page_major_faults_total"},
		{"trenv_cluster_cow_copies_total", "trenv_page_cow_copies_total"},
		{"trenv_cluster_mem_peak_bytes", "trenv_node_mem_peak_bytes"},
	}
	for _, p := range pairs {
		agg := one(t, samples, p.agg)
		sum, n := sumWhere(samples, p.per, "node")
		if n != len(c.Nodes()) {
			t.Fatalf("%s: %d node series, want %d", p.per, n, len(c.Nodes()))
		}
		if agg != sum {
			t.Fatalf("%s = %v, sum of %s over nodes = %v", p.agg, agg, p.per, sum)
		}
	}
	if got := one(t, samples, "trenv_cluster_invocations_total"); int(got) != c.Invocations() {
		t.Fatalf("aggregate invocations %v != %d", got, c.Invocations())
	}
	if alive := one(t, samples, "trenv_cluster_nodes_alive"); alive != 3 {
		t.Fatalf("nodes alive = %v", alive)
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if alive := one(t, reg.Gather(), "trenv_cluster_nodes_alive"); alive != 2 {
		t.Fatalf("nodes alive after kill = %v", alive)
	}
}

func TestClusterRecorderFleetSeriesEqualNodeSum(t *testing.T) {
	c := newCluster(t, 3)
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	rec := obs.NewRecorder(reg, 0)
	c.AttachRecorder(rec, time.Second)
	c.RunTrace(clusterTrace(7))

	if rec.Samples() == 0 {
		t.Fatal("recorder never sampled")
	}
	pairs := []struct{ agg, per string }{
		{"trenv_cluster_invocations_total", "trenv_invocations_total"},
		{"trenv_cluster_warm_hits_total", "trenv_warm_hits_total"},
		{"trenv_cluster_minor_faults_total", "trenv_page_minor_faults_total"},
		{"trenv_cluster_mem_used_bytes", "trenv_node_mem_used_bytes"},
	}
	for _, p := range pairs {
		agg := rec.Lookup(p.agg, nil)
		if agg == nil {
			t.Fatalf("no %s series", p.agg)
		}
		var nodeSeries []*obs.TimeSeries
		for i := range c.Nodes() {
			ts := rec.Lookup(p.per, map[string]string{"node": []string{"n0", "n1", "n2"}[i]})
			if ts == nil {
				t.Fatalf("no %s series for node n%d", p.per, i)
			}
			nodeSeries = append(nodeSeries, ts)
		}
		aggPts := agg.Points()
		for pi, pt := range aggPts {
			var sum float64
			for _, ts := range nodeSeries {
				pts := ts.Points()
				if len(pts) != len(aggPts) {
					t.Fatalf("%s: node series has %d points, aggregate %d", p.per, len(pts), len(aggPts))
				}
				if pts[pi].T != pt.T {
					t.Fatalf("%s: sample instants diverge (%v vs %v)", p.per, pts[pi].T, pt.T)
				}
				sum += pts[pi].Value
			}
			if sum != pt.Value {
				t.Fatalf("%s at t=%v: aggregate %v != node sum %v", p.agg, pt.T, pt.Value, sum)
			}
		}
	}
	// The aggregate's final value matches the run's ground truth.
	if got := rec.Lookup("trenv_cluster_invocations_total", nil).Last().Value; int(got) != c.Invocations() {
		t.Fatalf("final sampled invocations %v != %d", got, c.Invocations())
	}
}

func TestClusterRecorderDeterministic(t *testing.T) {
	run := func() string {
		c := newCluster(t, 2)
		reg := obs.NewRegistry()
		c.RegisterMetrics(reg)
		rec := obs.NewRecorder(reg, 0)
		c.AttachRecorder(rec, time.Second)
		c.RunTrace(clusterTrace(11))
		var buf bytes.Buffer
		if err := rec.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("same-seed cluster time-series exports differ")
	}
}

func TestMultiRackMetricsLabelsAndAggregates(t *testing.T) {
	m := newMultiRack(t, 2, 2)
	for i, p := range workload.Table4() {
		if err := m.Register(p, i%2); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	m.RegisterMetrics(reg)
	tr := workload.Trace{}
	for i, p := range workload.Table4() {
		tr = append(tr, workload.Invocation{At: time.Duration(i) * time.Second, Function: p.Name})
	}
	m.RunTrace(tr)

	samples := reg.Gather()
	agg := one(t, samples, "trenv_cluster_invocations_total")
	if int(agg) != m.Invocations() {
		t.Fatalf("aggregate %v != invocations %d", agg, m.Invocations())
	}
	nodeSum, n := sumWhere(samples, "trenv_invocations_total", "node")
	if n != 4 {
		t.Fatalf("node series = %d, want 4", n)
	}
	if nodeSum != agg {
		t.Fatalf("node sum %v != aggregate %v", nodeSum, agg)
	}
	var rackSum float64
	rackSeries := 0
	for _, s := range samples {
		if s.Name == "trenv_rack_invocations_total" {
			rackSum += s.Value
			rackSeries++
		}
	}
	if rackSeries != 2 {
		t.Fatalf("rack roll-up series = %d, want 2", rackSeries)
	}
	if rackSum != agg {
		t.Fatalf("rack sum %v != aggregate %v", rackSum, agg)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`trenv_invocations_total{node="r0n0",rack="r0"}`,
		`trenv_invocations_total{node="r1n1",rack="r1"}`,
		`trenv_pool_used_bytes{pool="cxl",rack="r0",scope="rack"}`,
		`trenv_pool_used_bytes{pool="rdma",scope="fabric"}`,
		`trenv_rack_invocations_total{rack="r0"}`,
		"trenv_cluster_spillovers_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet export missing %q", want)
		}
	}
}
