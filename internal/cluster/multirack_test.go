package cluster

import (
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/workload"
)

func newMultiRack(t *testing.T, racks, nodes int) *MultiRack {
	t.Helper()
	m, err := NewMultiRack(racks, nodes, faas.DefaultConfig(faas.PolicyTrEnvCXL))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMultiRackValidation(t *testing.T) {
	if _, err := NewMultiRack(0, 1, faas.DefaultConfig(faas.PolicyTrEnvCXL)); err == nil {
		t.Fatal("zero racks accepted")
	}
	if _, err := NewMultiRack(2, 2, faas.DefaultConfig(faas.PolicyCRIU)); err == nil {
		t.Fatal("non-TrEnv policy accepted")
	}
}

func TestRegisterHomesOneCXLCopy(t *testing.T) {
	m := newMultiRack(t, 3, 2)
	js, _ := workload.ProfileByName("JS")
	if err := m.Register(js, 1); err != nil {
		t.Fatal(err)
	}
	// One CXL copy cluster-wide, on the home rack only.
	if m.racks[1].cxl.Tracker().Used() == 0 {
		t.Fatal("home rack holds no image")
	}
	if m.racks[0].cxl.Tracker().Used() != 0 || m.racks[2].cxl.Tracker().Used() != 0 {
		t.Fatal("non-home racks hold CXL copies")
	}
	if err := m.Register(js, 1); err == nil {
		t.Fatal("duplicate register accepted")
	}
	if err := m.Register(js, 9); err == nil {
		t.Fatal("bad home rack accepted")
	}
}

func TestHomeRackPreferredNoSpillWhenIdle(t *testing.T) {
	m := newMultiRack(t, 2, 2)
	js, _ := workload.ProfileByName("JS")
	m.Register(js, 0)
	for i := 0; i < 3; i++ {
		m.Invoke(time.Duration(i)*20*time.Second, "JS")
	}
	m.Engine().Run()
	if m.Invocations() != 3 {
		t.Fatalf("invocations = %d", m.Invocations())
	}
	if m.Spillovers() != 0 {
		t.Fatalf("spilled %d invocations with an idle home rack", m.Spillovers())
	}
	// All work landed on rack 0.
	for _, node := range m.racks[1].nodes {
		if node.Metrics().Invocations() != 0 {
			t.Fatal("non-home rack served traffic without saturation")
		}
	}
}

func TestSaturatedHomeRackSpillsOverRDMA(t *testing.T) {
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Cores = 2 // tiny nodes: easy to saturate
	m, err := NewMultiRack(2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vp, _ := workload.ProfileByName("VP") // long-running
	m.Register(vp, 0)
	for i := 0; i < 8; i++ {
		m.Invoke(0, "VP")
	}
	m.Engine().Run()
	if m.Invocations() != 8 {
		t.Fatalf("invocations = %d", m.Invocations())
	}
	if m.Spillovers() == 0 {
		t.Fatal("no spillover despite a saturated home rack")
	}
	spillNode := m.racks[1].nodes[0]
	if spillNode.Metrics().Invocations() == 0 {
		t.Fatal("spill rack served nothing")
	}
	// Spilled instances fetched over the fabric: their executions are
	// slower than home-rack (CXL) ones.
	homeExec := m.racks[0].nodes[0].Metrics().Fn("VP").Exec.Min()
	spillExec := spillNode.Metrics().Fn("VP").Exec.Min()
	if spillExec <= homeExec {
		t.Fatalf("spill exec %.1fms not slower than home %.1fms (RDMA fetches missing)", spillExec, homeExec)
	}
	if m.fabric.Fetches() == 0 {
		t.Fatal("fabric saw no fetches")
	}
}

func TestMultiRackRunTrace(t *testing.T) {
	m := newMultiRack(t, 2, 2)
	var names []string
	for i, p := range workload.Table4() {
		if err := m.Register(p, i%2); err != nil {
			t.Fatal(err)
		}
		names = append(names, p.Name)
	}
	tr := workload.Trace{}
	for i, fn := range names {
		tr = append(tr, workload.Invocation{At: time.Duration(i) * time.Second, Function: fn})
	}
	m.RunTrace(tr)
	if m.Invocations() != len(tr) {
		t.Fatalf("invocations = %d", m.Invocations())
	}
	if m.CXLBytes() == 0 {
		t.Fatal("no CXL usage recorded")
	}
}
