package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestParseHedgePolicyRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"off",
		"delay:10ms",
		"delay:1.5s",
		"clone:2",
		"clone:3",
		"p95",
		"p99.9,min=2ms",
		"p90,min=1ms,fallback=50ms,samples=10",
		"delay:10ms,deadline=1s",
		"clone:2,deadline=500ms",
	} {
		hp, err := ParseHedgePolicy(spec)
		if err != nil {
			t.Fatalf("ParseHedgePolicy(%q): %v", spec, err)
		}
		hp2, err := ParseHedgePolicy(hp.Spec())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", hp.Spec(), spec, err)
		}
		if hp != hp2 {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", spec, hp, hp.Spec(), hp2)
		}
	}
	if hp, err := ParseHedgePolicy(""); err != nil || hp.Enabled() {
		t.Fatalf("empty spec = %+v, %v; want disabled policy", hp, err)
	}
}

func TestParseHedgePolicyRejects(t *testing.T) {
	for _, spec := range []string{
		"bogus",
		"delay:",
		"delay:xyz",
		"delay:-5ms",
		"delay:0s",
		"clone:1",
		"clone:abc",
		"p0",
		"p100",
		"pabc",
		"delay:10ms,min=1ms", // min= needs percentile mode
		"clone:2,samples=5",  // samples= needs percentile mode
		"p95,samples=0",
		"p95,min=0s",
		"p95,fallback=junk",
		"delay:10ms,deadline=0s",
		"p95,unknown=1",
		"p95,noequals",
	} {
		if _, err := ParseHedgePolicy(spec); err == nil {
			t.Errorf("ParseHedgePolicy(%q) accepted, want error", spec)
		}
	}
}

// hedgeCluster builds an n-node rack with JS registered and both hooks
// capturing.
func hedgeCluster(t *testing.T, n int) (*Cluster, *[]faas.InvocationResult, *[]faas.InvocationResult) {
	t.Helper()
	c, err := New(n, faas.DefaultConfig(faas.PolicyTrEnvCXL))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	terminal := new([]faas.InvocationResult)
	settled := new([]faas.InvocationResult)
	c.SetResultHook(func(node int, r faas.InvocationResult) { *terminal = append(*terminal, r) })
	c.SetSettleHook(func(fn string, latency time.Duration, r faas.InvocationResult) {
		*settled = append(*settled, r)
	})
	return c, terminal, settled
}

// TestHedgeLoserCancelled: with equal nodes the primary (head start)
// wins the race; the delayed hedge is cooperatively cancelled and the
// accounting still balances.
func TestHedgeLoserCancelled(t *testing.T) {
	c, terminal, settled := hedgeCluster(t, 2)
	c.SetHedgePolicy(HedgePolicy{Mode: HedgeDelay, Delay: time.Millisecond})
	c.Invoke(0, "JS")
	c.Engine().Run()

	if c.Hedged() != 1 || c.HedgeWins() != 0 || c.Cancelled() != 1 {
		t.Fatalf("hedged=%d wins=%d cancelled=%d, want 1/0/1", c.Hedged(), c.HedgeWins(), c.Cancelled())
	}
	if c.Wedged() != 0 {
		t.Fatalf("wedged = %d", c.Wedged())
	}
	if len(*settled) != 1 || (*settled)[0].Outcome != faas.OutcomeSuccess {
		t.Fatalf("settled = %+v, want one success", *settled)
	}
	var cancels, successes int
	for _, r := range *terminal {
		switch r.Outcome {
		case faas.OutcomeCancelled:
			cancels++
		case faas.OutcomeSuccess:
			successes++
		default:
			t.Fatalf("unexpected terminal outcome %q", r.Outcome)
		}
	}
	if cancels != 1 || successes != 1 {
		t.Fatalf("terminal outcomes: %d cancelled, %d success; want 1/1", cancels, successes)
	}
}

// TestHedgeWinsAfterPrimaryCrash: the primary's node dies mid-attempt;
// the already-launched hedge settles the race, counted as a hedge win
// with no re-dispatch (the sibling made it redundant).
func TestHedgeWinsAfterPrimaryCrash(t *testing.T) {
	c, _, settled := hedgeCluster(t, 2)
	c.SetHedgePolicy(HedgePolicy{Mode: HedgeDelay, Delay: time.Millisecond})
	c.Invoke(0, "JS") // primary lands on n0 (lowest index, no warm state)
	c.Engine().At(5*time.Millisecond, "kill/n0", func(p *sim.Proc) {
		if err := c.KillNode(0); err != nil {
			t.Errorf("mid-run kill: %v", err)
		}
	})
	c.Engine().Run()

	if c.Hedged() != 1 || c.HedgeWins() != 1 {
		t.Fatalf("hedged=%d wins=%d, want 1/1", c.Hedged(), c.HedgeWins())
	}
	if c.Redispatched() != 0 {
		t.Fatalf("redispatched = %d, want 0 (the live sibling absorbs the crash)", c.Redispatched())
	}
	if c.Wedged() != 0 {
		t.Fatalf("wedged = %d", c.Wedged())
	}
	if len(*settled) != 1 || (*settled)[0].Outcome != faas.OutcomeSuccess {
		t.Fatalf("settled = %+v, want one success from the hedge", *settled)
	}
}

// TestHedgeSkipsWithoutSecondNode: a single-node rack cannot hedge —
// the trigger degrades to unhedged dispatch and counts a skip.
func TestHedgeSkipsWithoutSecondNode(t *testing.T) {
	c, _, settled := hedgeCluster(t, 1)
	c.SetHedgePolicy(HedgePolicy{Mode: HedgeDelay, Delay: time.Millisecond})
	c.Invoke(0, "JS")
	c.Engine().Run()

	if c.Hedged() != 0 || c.HedgeSkips() != 1 {
		t.Fatalf("hedged=%d skips=%d, want 0/1", c.Hedged(), c.HedgeSkips())
	}
	if len(*settled) != 1 || (*settled)[0].Outcome != faas.OutcomeSuccess || c.Wedged() != 0 {
		t.Fatalf("settled=%+v wedged=%d, want one success, zero wedged", *settled, c.Wedged())
	}
}

// TestCloneFactorDistinctNodes: clone:3 on a 3-node rack races three
// attempts on three distinct nodes; exactly one settles, two cancel.
func TestCloneFactorDistinctNodes(t *testing.T) {
	c, terminal, settled := hedgeCluster(t, 3)
	c.SetHedgePolicy(HedgePolicy{Mode: HedgeClone, Clones: 3})
	c.Invoke(0, "JS")
	c.Engine().Run()

	if c.Hedged() != 2 || c.Cancelled() != 2 || c.HedgeSkips() != 0 {
		t.Fatalf("hedged=%d cancelled=%d skips=%d, want 2/2/0", c.Hedged(), c.Cancelled(), c.HedgeSkips())
	}
	nodes := map[string]bool{}
	for _, r := range *terminal {
		nodes[r.Node] = true
	}
	if len(*terminal) != 3 || len(nodes) != 3 {
		t.Fatalf("terminal attempts on nodes %v, want 3 attempts on 3 distinct nodes", nodes)
	}
	if len(*settled) != 1 || c.Wedged() != 0 {
		t.Fatalf("settled=%d wedged=%d, want 1/0", len(*settled), c.Wedged())
	}
}

// TestCloneFactorBeyondFleetSkipsSurplus: clone:3 on 2 nodes launches
// what it can (one clone) and skips the surplus rather than queueing a
// same-node duplicate.
func TestCloneFactorBeyondFleetSkipsSurplus(t *testing.T) {
	c, _, _ := hedgeCluster(t, 2)
	c.SetHedgePolicy(HedgePolicy{Mode: HedgeClone, Clones: 3})
	c.Invoke(0, "JS")
	c.Engine().Run()

	if c.Hedged() != 1 || c.HedgeSkips() != 1 {
		t.Fatalf("hedged=%d skips=%d, want 1/1", c.Hedged(), c.HedgeSkips())
	}
	if c.Wedged() != 0 {
		t.Fatalf("wedged = %d", c.Wedged())
	}
}

// TestRedispatchBudgetExhausted: with the crash re-dispatch budget at
// zero, a crashed invocation terminates as a synthetic
// redispatch-exhausted record (node -1) instead of re-enqueueing.
func TestRedispatchBudgetExhausted(t *testing.T) {
	c, err := New(2, faas.DefaultConfig(faas.PolicyTrEnvCXL))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	c.SetMaxRedispatch(0)
	var exhausted []faas.InvocationResult
	var exhaustedNode = 99
	c.SetResultHook(func(node int, r faas.InvocationResult) {
		if r.Outcome == faas.OutcomeRedispatchExhausted {
			exhausted = append(exhausted, r)
			exhaustedNode = node
		}
	})
	c.Invoke(0, "JS")
	c.Engine().At(5*time.Millisecond, "kill/n0", func(p *sim.Proc) {
		if err := c.KillNode(0); err != nil {
			t.Errorf("mid-run kill: %v", err)
		}
	})
	c.Engine().Run()

	if c.RedispatchExhausted() != 1 || c.Redispatched() != 0 {
		t.Fatalf("exhausted=%d redispatched=%d, want 1/0", c.RedispatchExhausted(), c.Redispatched())
	}
	if len(exhausted) != 1 || exhausted[0].Function != "JS" || exhausted[0].Err == nil {
		t.Fatalf("exhausted records = %+v, want one typed JS record", exhausted)
	}
	if exhaustedNode != -1 {
		t.Fatalf("exhausted record delivered with node %d, want -1 (synthetic)", exhaustedNode)
	}
	if c.Wedged() != 0 {
		t.Fatalf("wedged = %d", c.Wedged())
	}
}

// TestRedispatchWithinBudgetRecovers: the default budget re-dispatches a
// crashed invocation to the survivor, which completes it.
func TestRedispatchWithinBudgetRecovers(t *testing.T) {
	c, _, settled := hedgeCluster(t, 2)
	c.Invoke(0, "JS")
	c.Engine().At(5*time.Millisecond, "kill/n0", func(p *sim.Proc) {
		if err := c.KillNode(0); err != nil {
			t.Errorf("mid-run kill: %v", err)
		}
	})
	c.Engine().Run()

	if c.Redispatched() != 1 || c.RedispatchExhausted() != 0 {
		t.Fatalf("redispatched=%d exhausted=%d, want 1/0", c.Redispatched(), c.RedispatchExhausted())
	}
	if len(*settled) != 1 || (*settled)[0].Outcome != faas.OutcomeSuccess {
		t.Fatalf("settled = %+v, want the re-dispatched attempt's success", *settled)
	}
	if c.Wedged() != 0 {
		t.Fatalf("wedged = %d", c.Wedged())
	}
}

// TestHedgeDeadlinePolicy: a policy deadline pushes onto every node;
// an invocation that cannot meet it settles as deadline-exceeded once
// its last attempt gives up — still zero wedged.
func TestHedgeDeadlinePolicy(t *testing.T) {
	c, _, settled := hedgeCluster(t, 2)
	hp, err := ParseHedgePolicy("delay:2ms,deadline=1ms")
	if err != nil {
		t.Fatal(err)
	}
	c.SetHedgePolicy(hp)
	c.Invoke(0, "JS") // ~100ms of work against a 1ms deadline
	c.Engine().Run()

	if len(*settled) != 1 || (*settled)[0].Outcome != faas.OutcomeDeadline {
		t.Fatalf("settled = %+v, want one deadline-exceeded", *settled)
	}
	var hits int64
	for _, node := range c.Nodes() {
		hits += node.Metrics().DeadlineExceeded.Value()
	}
	if hits == 0 {
		t.Fatal("no node recorded a deadline hit")
	}
	if c.Wedged() != 0 {
		t.Fatalf("wedged = %d", c.Wedged())
	}
}

// hedgedChaosRun drives a bursty trace through a 3-node rack with
// hedging armed under flaky-RDMA chaos plus a node crash, returning the
// settle log rendered to deterministic lines.
func hedgedChaosRun(t *testing.T, seed int64) ([]string, *Cluster) {
	t.Helper()
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = seed
	cfg.HotFraction = 0.4 // keep lazy rdma fetches (and their faults) on the path
	c, err := New(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	c.SetHedgePolicy(HedgePolicy{Mode: HedgeDelay, Delay: 5 * time.Millisecond})
	var lines []string
	c.SetSettleHook(func(fn string, latency time.Duration, r faas.InvocationResult) {
		lines = append(lines, fmt.Sprintf("%s %s %s", fn, latency, r.Outcome))
	})
	inj := fault.NewInjector(c.Engine(), seed, fault.Scenario{
		FlakyFetches: []fault.FlakyFetch{{Pool: "rdma", Prob: 0.2, Burst: 2}},
		NodeCrashes:  []fault.NodeCrash{{Node: "n2", At: 30 * time.Second}},
	})
	c.AttachChaos(inj)
	tr := workload.W1Bursty(rand.New(rand.NewSource(seed)), workload.W1Config{
		Functions: []string{"JS", "DH", "CR", "IR"},
		Duration:  time.Minute,
		BurstGap:  10 * time.Second,
		BurstSize: 6,
		BurstSpan: time.Second,
	})
	c.RunTrace(tr)
	return lines, c
}

// TestHedgingChaosInvariantAndByteIdentity is the tentpole's acceptance
// check: hedging composed with flaky-RDMA chaos and a node crash leaves
// the extended invariant at zero (every attempt terminates exactly
// once), hedges demonstrably launch, and two same-seed runs settle
// identically, line for line.
func TestHedgingChaosInvariantAndByteIdentity(t *testing.T) {
	lines1, c := hedgedChaosRun(t, 7)
	if c.Wedged() != 0 {
		t.Fatalf("wedged = %d (dispatched=%d redispatched=%d hedged=%d results=%d cancelled=%d)",
			c.Wedged(), c.Dispatched(), c.Redispatched(), c.Hedged(), c.Results(), c.Cancelled())
	}
	if c.Hedged() == 0 {
		t.Fatal("no hedges launched; the policy was not exercised")
	}
	if got := c.Dispatched() + c.Redispatched() + c.Hedged(); got != c.Results()+c.Cancelled() {
		t.Fatalf("attempt ledger unbalanced: %d launched, %d terminated", got, c.Results()+c.Cancelled())
	}
	lines2, _ := hedgedChaosRun(t, 7)
	if len(lines1) != len(lines2) {
		t.Fatalf("same-seed runs settled %d vs %d invocations", len(lines1), len(lines2))
	}
	for i := range lines1 {
		if lines1[i] != lines2[i] {
			t.Fatalf("same-seed runs diverge at settle %d: %q vs %q", i, lines1[i], lines2[i])
		}
	}
}
