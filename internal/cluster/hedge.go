package cluster

// Request hedging and speculative cloning. The remote-restore path has
// a known P99 cliff — RDMA fetch tails, retry backoff after injected
// faults, CPU queueing on a hot node — and because a rack shares its
// consolidated images and templates through the pooled memory, *any*
// node can serve *any* function at warm-ish cost. That makes the
// classic tail-killing move cheap: race a second attempt of a slow
// invocation on another node, keep whichever finishes first, cancel the
// loser. The hedger below is that dispatch state machine, shared
// verbatim by Cluster and MultiRack so both topologies behave
// identically, and driven purely by virtual time so same-seed runs stay
// byte-identical with hedging on.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// HedgeMode selects when clone attempts launch.
type HedgeMode string

const (
	// HedgeOff disables hedging (the default).
	HedgeOff HedgeMode = "off"
	// HedgeDelay launches one clone after a fixed virtual delay if the
	// primary attempt is still in flight.
	HedgeDelay HedgeMode = "delay"
	// HedgePercentile launches one clone once the primary outlives the
	// observed P<n> end-to-end latency of its function (merged across
	// the fleet's flight recorders), falling back to a fixed delay
	// until enough samples exist.
	HedgePercentile HedgeMode = "percentile"
	// HedgeClone dispatches N attempts eagerly on distinct nodes — the
	// PS-model clone-factor experiment's mode.
	HedgeClone HedgeMode = "clone"
)

const (
	// DefaultHedgeDelay triggers delayed hedges when the percentile
	// estimator has no data yet and the policy names no fallback.
	DefaultHedgeDelay = 20 * time.Millisecond
	// DefaultMaxRedispatch bounds crash→re-dispatch loops per
	// invocation; the attempt after the budget is spent terminates as
	// OutcomeRedispatchExhausted instead of re-enqueueing forever.
	DefaultMaxRedispatch = 3

	defaultHedgeMinSamples = 20
)

// HedgePolicy parameterizes the hedger. The zero value is "off".
type HedgePolicy struct {
	Mode HedgeMode
	// Delay is the trigger for HedgeDelay, and the fallback trigger for
	// HedgePercentile before the estimator has MinSamples observations
	// (0 = DefaultHedgeDelay).
	Delay time.Duration
	// Percentile (e.g. 95) picks the trigger off the function's merged
	// end-to-end distribution in HedgePercentile mode.
	Percentile float64
	// MinDelay floors the percentile-derived trigger.
	MinDelay time.Duration
	// MinSamples gates the estimator (0 = 20).
	MinSamples int
	// Clones is the total attempts HedgeClone dispatches (< 2 reads as 2).
	Clones int
	// Deadline, when > 0, is applied to every node as the
	// per-invocation deadline (faas.Config.Deadline).
	Deadline time.Duration
}

// Enabled reports whether the policy launches extra attempts.
func (hp HedgePolicy) Enabled() bool { return hp.Mode != "" && hp.Mode != HedgeOff }

// Spec renders the policy in the grammar ParseHedgePolicy accepts.
func (hp HedgePolicy) Spec() string {
	var b strings.Builder
	switch hp.Mode {
	case HedgeDelay:
		fmt.Fprintf(&b, "delay:%s", hp.Delay)
	case HedgePercentile:
		fmt.Fprintf(&b, "p%g", hp.Percentile)
		if hp.MinDelay > 0 {
			fmt.Fprintf(&b, ",min=%s", hp.MinDelay)
		}
		if hp.Delay > 0 {
			fmt.Fprintf(&b, ",fallback=%s", hp.Delay)
		}
		if hp.MinSamples > 0 {
			fmt.Fprintf(&b, ",samples=%d", hp.MinSamples)
		}
	case HedgeClone:
		n := hp.Clones
		if n < 2 {
			n = 2
		}
		fmt.Fprintf(&b, "clone:%d", n)
	default:
		b.WriteString("off")
	}
	if hp.Deadline > 0 {
		fmt.Fprintf(&b, ",deadline=%s", hp.Deadline)
	}
	return b.String()
}

// ParseHedgePolicy parses a hedge-policy spec. The first comma-separated
// clause picks the mode; later clauses are modifiers:
//
//	off                 no hedging
//	delay:<dur>         one clone after a fixed virtual delay
//	p<pct>              one clone after the observed P<pct> e2e latency
//	clone:<n>           n eager attempts on distinct nodes
//
//	min=<dur>           percentile mode: floor on the trigger
//	fallback=<dur>      percentile mode: trigger before enough samples
//	samples=<n>         percentile mode: samples the estimator needs
//	deadline=<dur>      per-invocation deadline on every node
//
// Examples: "delay:10ms", "p95,min=2ms,deadline=1s", "clone:3".
func ParseHedgePolicy(spec string) (HedgePolicy, error) {
	var hp HedgePolicy
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		hp.Mode = HedgeOff
		return hp, nil
	}
	clauses := strings.Split(spec, ",")
	mode := strings.TrimSpace(clauses[0])
	switch {
	case mode == "off":
		hp.Mode = HedgeOff
	case strings.HasPrefix(mode, "delay:"):
		d, err := time.ParseDuration(mode[len("delay:"):])
		if err != nil || d <= 0 {
			return hp, fmt.Errorf("cluster: bad hedge delay %q", mode)
		}
		hp.Mode = HedgeDelay
		hp.Delay = d
	case strings.HasPrefix(mode, "clone:"):
		n, err := strconv.Atoi(mode[len("clone:"):])
		if err != nil || n < 2 {
			return hp, fmt.Errorf("cluster: bad clone factor %q (want an integer >= 2)", mode)
		}
		hp.Mode = HedgeClone
		hp.Clones = n
	case strings.HasPrefix(mode, "p"):
		pct, err := strconv.ParseFloat(mode[1:], 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return hp, fmt.Errorf("cluster: bad hedge percentile %q (want p50..p99.9)", mode)
		}
		hp.Mode = HedgePercentile
		hp.Percentile = pct
	default:
		return hp, fmt.Errorf("cluster: unknown hedge mode %q (want off, delay:<dur>, p<pct>, clone:<n>)", mode)
	}
	for _, clause := range clauses[1:] {
		clause = strings.TrimSpace(clause)
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return hp, fmt.Errorf("cluster: bad hedge modifier %q (want key=value)", clause)
		}
		switch key {
		case "min":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return hp, fmt.Errorf("cluster: bad hedge min %q", val)
			}
			hp.MinDelay = d
		case "fallback":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return hp, fmt.Errorf("cluster: bad hedge fallback %q", val)
			}
			hp.Delay = d
		case "samples":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return hp, fmt.Errorf("cluster: bad hedge samples %q", val)
			}
			hp.MinSamples = n
		case "deadline":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return hp, fmt.Errorf("cluster: bad hedge deadline %q", val)
			}
			hp.Deadline = d
		default:
			return hp, fmt.Errorf("cluster: unknown hedge modifier %q", key)
		}
	}
	if hp.Mode != HedgePercentile && (hp.MinDelay > 0 || hp.MinSamples > 0) {
		return hp, fmt.Errorf("cluster: min=/samples= modifiers need a p<pct> mode")
	}
	return hp, nil
}

// hedgeGroup tracks one logical invocation across every attempt the
// fleet launches for it: the primary dispatch, delayed hedges or eager
// clones, and crash re-dispatches. The first attempt to reach a real
// terminal outcome settles the race; every sibling's token is cancelled
// at that instant.
type hedgeGroup struct {
	fn         string
	start      time.Duration
	attempts   int // launched
	terminals  int // terminal outcomes observed
	hedges     int // hedge/clone attempts among attempts
	redisp     int // crash re-dispatches consumed
	settled    bool
	done       bool
	winnerID   string
	winnerNode string
	tokens     []*faas.CancelToken
	nodesTried map[string]bool
}

func (g *hedgeGroup) active() int { return g.attempts - g.terminals }

// hedgeHooks is what a topology (Cluster, MultiRack) lends the hedger.
type hedgeHooks struct {
	// pick returns the node for the next attempt of fn, skipping nodes
	// in exclude, or nil when no healthy candidate remains. primary
	// marks the invocation's first dispatch (MultiRack counts
	// spillovers there only). The second return overrides the
	// dispatcher label ("" keeps the hedger's default).
	pick func(fn string, exclude map[string]bool, primary bool) (*faas.Platform, string)
	// nodes lists the fleet for the percentile estimator.
	nodes func() []*faas.Platform
	// deliver forwards a terminal result to the topology's result hook.
	// node is the flat node index, -1 for synthetic results.
	deliver func(node int, r faas.InvocationResult)
	// breaker returns the node's circuit breaker (nil for -1).
	breaker func(node int) *fault.Breaker
	// tracer returns the fleet tracer hedge spans record into (nil =
	// tracing off).
	tracer func() *obs.Tracer
}

// hedger is the dispatch state machine Cluster and MultiRack share: it
// owns the no-loss accounting (the extended zero-wedged invariant), the
// hedge policy, and the crash re-dispatch budget.
type hedger struct {
	eng           *sim.Engine
	hooks         hedgeHooks
	policy        HedgePolicy
	maxRedispatch int

	// onSettle observes each invocation's settling outcome with its
	// logical end-to-end latency (dispatch → first real terminal,
	// hedging delays and re-dispatch included).
	onSettle func(fn string, latency time.Duration, r faas.InvocationResult)

	dispatched   sim.Counter // invocations handed to a node
	results      sim.Counter // non-cancelled terminal outcomes observed
	redispatched sim.Counter // crash-aborted invocations re-dispatched
	hedged       sim.Counter // hedge/clone attempts beyond the primary
	hedgeWins    sim.Counter // races settled by a non-primary attempt
	hedgeSkips   sim.Counter // hedge triggers with no healthy distinct target
	cancelled    sim.Counter // losing attempts cooperatively cancelled
	exhausted    sim.Counter // invocations that spent the re-dispatch budget
	spans        int64       // hedge-span sequence (trace identity)
}

func newHedger(eng *sim.Engine, hooks hedgeHooks) *hedger {
	return &hedger{eng: eng, hooks: hooks, maxRedispatch: DefaultMaxRedispatch}
}

// wedged is the extended no-loss invariant: every launched attempt
// (primary dispatches + re-dispatches + hedges) must terminate exactly
// once, either as a counted result or as a cancelled loser. Zero after
// a drained run, or the fleet lost work.
func (h *hedger) wedged() int64 {
	return h.dispatched.Value() + h.redispatched.Value() + h.hedged.Value() -
		h.results.Value() - h.cancelled.Value()
}

// dispatch launches the primary attempt of one invocation inside p,
// arming the policy's extra attempts around it.
func (h *hedger) dispatch(p *sim.Proc, fn, dispatcher string) {
	h.dispatched.Inc()
	g := &hedgeGroup{fn: fn, start: p.Now(), nodesTried: make(map[string]bool)}
	switch h.policy.Mode {
	case HedgeClone:
		h.dispatchClones(p, g, dispatcher)
	case HedgeDelay, HedgePercentile:
		h.armHedge(g)
		h.launchPrimary(p, g, dispatcher)
	default:
		h.launchPrimary(p, g, dispatcher)
	}
}

func (h *hedger) launchPrimary(p *sim.Proc, g *hedgeGroup, dispatcher string) {
	node, override := h.hooks.pick(g.fn, nil, true)
	if override != "" {
		dispatcher = override
	}
	h.runOn(p, g, node, dispatcher)
}

// runOn launches one attempt on node inside p, blocking until the
// attempt reaches a terminal outcome. An attempt born after its race
// settled starts pre-cancelled and aborts at its first checkpoint.
func (h *hedger) runOn(p *sim.Proc, g *hedgeGroup, node *faas.Platform, dispatcher string) {
	tok := faas.NewCancelToken(g)
	if g.settled {
		tok.Cancel("hedge-lost", g.winnerID)
	}
	g.tokens = append(g.tokens, tok)
	g.attempts++
	g.nodesTried[node.NodeName()] = true
	node.InvokeAttempt(p, g.fn, dispatcher, tok)
}

// armHedge schedules the delayed clone: if the primary is still in
// flight when the trigger fires, one extra attempt launches on a node
// the race has not tried. The trigger is pure virtual time, so
// same-seed runs hedge at identical instants.
func (h *hedger) armHedge(g *hedgeGroup) {
	h.eng.After(h.hedgeDelay(g.fn), func() {
		if g.settled || g.hedges > 0 || g.active() == 0 {
			return
		}
		h.eng.Go("hedge/"+g.fn, func(p *sim.Proc) {
			if g.settled || g.active() == 0 {
				return
			}
			node, _ := h.hooks.pick(g.fn, g.nodesTried, false)
			if node == nil {
				// No healthy distinct target: degrade to unhedged.
				h.hedgeSkips.Inc()
				return
			}
			g.hedges++
			h.hedged.Inc()
			h.runOn(p, g, node, "hedge")
		})
	})
}

// dispatchClones eagerly races the policy's clone factor across
// distinct nodes; when the fleet has fewer healthy nodes than clones,
// the surplus is skipped, not queued.
func (h *hedger) dispatchClones(p *sim.Proc, g *hedgeGroup, dispatcher string) {
	want := h.policy.Clones
	if want < 2 {
		want = 2
	}
	primary, override := h.hooks.pick(g.fn, nil, true)
	if override != "" {
		dispatcher = override
	}
	reserved := map[string]bool{primary.NodeName(): true}
	var extras []*faas.Platform
	for len(extras) < want-1 {
		node, _ := h.hooks.pick(g.fn, reserved, false)
		if node == nil {
			h.hedgeSkips.Inc()
			break
		}
		reserved[node.NodeName()] = true
		extras = append(extras, node)
	}
	for _, node := range extras {
		node := node
		g.hedges++
		h.hedged.Inc()
		h.eng.Go("clone/"+g.fn, func(p2 *sim.Proc) { h.runOn(p2, g, node, "clone") })
	}
	h.runOn(p, g, primary, dispatcher)
}

// hedgeDelay returns the virtual-time trigger for fn's delayed hedge.
func (h *hedger) hedgeDelay(fn string) time.Duration {
	switch h.policy.Mode {
	case HedgeDelay:
		if h.policy.Delay > 0 {
			return h.policy.Delay
		}
		return DefaultHedgeDelay
	case HedgePercentile:
		if est, ok := h.estimate(fn); ok {
			if est < h.policy.MinDelay {
				est = h.policy.MinDelay
			}
			return est
		}
		if h.policy.Delay > 0 {
			return h.policy.Delay
		}
		return DefaultHedgeDelay
	}
	return 0
}

// estimate merges the fleet's per-node end-to-end latency histograms
// for fn and reads the policy's percentile off the merged distribution;
// ok=false until MinSamples post-warmup observations exist.
func (h *hedger) estimate(fn string) (time.Duration, bool) {
	var merged sim.Histogram
	for _, node := range h.hooks.nodes() {
		if fm, ok := node.Metrics().PerFn[fn]; ok {
			merged.Merge(&fm.E2E)
		}
	}
	min := h.policy.MinSamples
	if min <= 0 {
		min = defaultHedgeMinSamples
	}
	if merged.N() < min {
		return 0, false
	}
	return time.Duration(merged.Percentile(h.policy.Percentile) * float64(time.Millisecond)), true
}

// onResult is the single funnel every node's terminal outcomes flow
// through. Delivery contract: the topology's result hook sees every
// terminal outcome — the settling result, cancelled losers, crash
// aborts, synthetic redispatch-exhausted records (node index -1) —
// except late losers that completed after their race had already
// settled (counted in the invariant, suppressed from the hook so one
// invocation never reports two winners).
func (h *hedger) onResult(node int, r faas.InvocationResult) {
	g, _ := r.Token.Meta().(*hedgeGroup)
	if g != nil {
		g.terminals++
	}
	if r.Outcome == faas.OutcomeCancelled {
		h.cancelled.Inc()
		h.hooks.deliver(node, r)
		h.finish(g)
		return
	}
	wasSettled := g != nil && g.settled
	h.results.Inc()
	if r.Outcome == faas.OutcomeCrashed {
		h.hooks.deliver(node, r)
		if g != nil && (wasSettled || g.active() > 0) {
			// A sibling already won, or is still racing: the crash
			// consumed this attempt and costs nothing further.
			h.finish(g)
			return
		}
		h.redispatch(g, r.Function)
		return
	}
	// A fault-tainted outcome (error, fallback, or success-after-retry)
	// counts against the node's pool-fetch health.
	if b := h.hooks.breaker(node); b != nil {
		b.Record(r.FaultTrace == "" && r.Outcome != faas.OutcomeError)
	}
	if g == nil {
		h.hooks.deliver(node, r)
		return
	}
	// A deadline-exceeded attempt with a live sibling doesn't settle
	// the race — the sibling's own deadline runs from its later start.
	settles := !wasSettled && (r.Outcome != faas.OutcomeDeadline || g.active() == 0)
	if settles {
		g.settled = true
		g.winnerID = r.TraceID
		g.winnerNode = r.Node
		if r.Token != g.tokens[0] {
			h.hedgeWins.Inc()
		}
		for _, tok := range g.tokens {
			if tok != r.Token {
				tok.Cancel("hedge-lost", r.TraceID)
			}
		}
	}
	if !wasSettled {
		h.hooks.deliver(node, r)
		if settles && h.onSettle != nil {
			h.onSettle(g.fn, h.eng.Now()-g.start, r)
		}
	}
	h.finish(g)
}

// redispatch re-enqueues a crash-aborted invocation on a survivor,
// bounded by the per-invocation budget. Exhaustion synthesizes an
// OutcomeRedispatchExhausted record (node -1) delivered to the result
// hook AND settled through the settle hook, so the loss is a visible
// terminal outcome on both channels, not a silently vanished invocation.
func (h *hedger) redispatch(g *hedgeGroup, fn string) {
	if g == nil {
		// A crash from a directly-invoked (token-less) attempt: adopt it
		// into a fresh group so the budget binds from here on.
		g = &hedgeGroup{fn: fn, start: h.eng.Now(), nodesTried: make(map[string]bool)}
	}
	if g.redisp >= h.maxRedispatch {
		h.exhausted.Inc()
		r := faas.InvocationResult{
			Function: fn,
			Outcome:  faas.OutcomeRedispatchExhausted,
			Err:      fmt.Errorf("cluster: %s: gave up after %d crash re-dispatches", fn, g.redisp),
		}
		h.hooks.deliver(-1, r)
		if !g.settled {
			g.settled = true
			if h.onSettle != nil {
				h.onSettle(fn, h.eng.Now()-g.start, r)
			}
		}
		h.finish(g)
		return
	}
	g.redisp++
	h.redispatched.Inc()
	h.eng.Go("redispatch/"+fn, func(p *sim.Proc) {
		node, _ := h.hooks.pick(fn, nil, false)
		h.runOn(p, g, node, "redispatch")
	})
}

// finish emits the race's hedge span once every attempt is terminal:
// one root span covering dispatch → last terminal, linked hedge-won to
// the winner's trace and hedge-lost to each loser's, so the whole race
// is walkable from either side. Unhedged groups emit nothing.
func (h *hedger) finish(g *hedgeGroup) {
	if g == nil || g.done || g.active() > 0 {
		return
	}
	g.done = true
	if g.attempts < 2 {
		return
	}
	tr := h.hooks.tracer()
	if tr == nil {
		return
	}
	h.spans++
	sp := obs.NewSpan("hedge/"+g.fn, g.start, h.eng.Now())
	sp.SetAttr("function", g.fn).SetAttr("policy", string(h.policy.Mode)).
		SetAttr("attempts", strconv.Itoa(g.attempts)).
		SetAttr("hedges", strconv.Itoa(g.hedges))
	if g.winnerNode != "" {
		sp.SetAttr("winner_node", g.winnerNode)
	}
	for _, tok := range g.tokens {
		tid := tok.TraceID()
		if tid == "" {
			continue
		}
		typ := "hedge-lost"
		if tid == g.winnerID {
			typ = "hedge-won"
		}
		sp.AddLink(obs.Link{TraceID: tid, Type: typ})
	}
	sp.AssignIDs(obs.TraceIDFor("fleet", "hedge", g.fn, strconv.FormatInt(h.spans, 10)))
	tr.Record(sp)
}

// applyDeadline pushes the policy's per-invocation deadline onto every
// node (no-op when the policy has none).
func applyDeadline(nodes []*faas.Platform, hp HedgePolicy) {
	if hp.Deadline <= 0 {
		return
	}
	for _, node := range nodes {
		node.SetDeadline(hp.Deadline)
	}
}
