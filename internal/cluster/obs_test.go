package cluster

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// tracedCluster runs a bursty trace over a 3-node rack with a mostly-
// cold image placement, so execution pulls pages from the memory
// server's RDMA tier, and returns the shared tracer.
func tracedCluster(t *testing.T, seed int64) *obs.Tracer {
	t.Helper()
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = seed
	cfg.HotFraction = 0.2 // most of every image sits on the cold RDMA tier
	tracer := obs.NewTracer(0)
	cfg.Tracer = tracer
	c, err := New(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range workload.Table4() {
		if err := c.Register(p); err != nil {
			t.Fatal(err)
		}
		names = append(names, p.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	c.RunTrace(workload.W1Bursty(rng, workload.W1Config{
		Functions: names,
		Duration:  3 * time.Minute,
		BurstGap:  60 * time.Second,
		BurstSize: 6,
		BurstSpan: 2 * time.Second,
	}))
	return tracer
}

// TestRemoteFetchOnTailCriticalPathLinksAcrossNodes is the cross-node
// causality acceptance check: at least one tail (>= P99) invocation
// must carry a remote-fetch step on its critical path whose link
// resolves to a pool-side span recorded on a different node, with the
// reverse "serves" link pointing back at the invocation.
func TestRemoteFetchOnTailCriticalPathLinksAcrossNodes(t *testing.T) {
	tracer := tracedCluster(t, 11)
	roots := tracer.Spans()
	var invs []*obs.Span
	var durs sim.Histogram
	for _, r := range roots {
		if strings.HasPrefix(r.Name, "invoke/") && r.Error == "" {
			invs = append(invs, r)
			durs.AddDuration(r.Duration())
		}
	}
	if len(invs) == 0 {
		t.Fatal("no invocations traced")
	}
	p99 := time.Duration(durs.Percentile(99) * float64(time.Millisecond))
	found := false
	for _, inv := range invs {
		if inv.Duration() < p99 {
			continue
		}
		for _, step := range obs.CriticalPath(inv) {
			if step.Name != "remote-fetch" || step.LinkedTrace == "" {
				continue
			}
			pool := tracer.Find(step.LinkedTrace)
			if pool == nil {
				t.Fatalf("linked trace %s not in tracer", step.LinkedTrace)
			}
			if pool.Attrs["node"] == inv.Attrs["node"] {
				t.Fatalf("pool-fetch span on %q is not cross-node (invocation on %q)",
					pool.Attrs["node"], inv.Attrs["node"])
			}
			served := false
			for _, l := range pool.Links {
				if l.TraceID == inv.TraceID && l.Type == "serves" {
					served = true
				}
			}
			if !served {
				t.Fatalf("pool-fetch span lacks a serves link back to %s", inv.TraceID)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no tail invocation has a cross-node remote fetch on its critical path")
	}
}

// TestClusterSpansCarryNodeIdentity checks every invocation root names
// its node (n0..n2), was placed by the rack dispatcher, and pool-side
// fetch spans live on the memory server.
func TestClusterSpansCarryNodeIdentity(t *testing.T) {
	tracer := tracedCluster(t, 7)
	nodes := map[string]bool{}
	poolFetches := 0
	for _, r := range tracer.Spans() {
		switch {
		case strings.HasPrefix(r.Name, "invoke/"):
			if r.TraceID == "" {
				t.Fatalf("invocation %s has no trace id", r.Name)
			}
			n := r.Attrs["node"]
			if n != "n0" && n != "n1" && n != "n2" {
				t.Fatalf("invocation on unexpected node %q", n)
			}
			if r.Error == "" && r.Attrs["dispatcher"] != "rack" {
				t.Fatalf("invocation missing dispatcher attr: %v", r.Attrs)
			}
			nodes[n] = true
		case strings.HasPrefix(r.Name, "pool-fetch/"):
			if got := r.Attrs["node"]; got != "mem0" {
				t.Fatalf("pool-fetch span homed on %q, want mem0", got)
			}
			poolFetches++
		}
	}
	if len(nodes) < 2 {
		t.Fatalf("invocations landed on %d node(s), want a spread", len(nodes))
	}
	if poolFetches == 0 {
		t.Fatal("no pool-side fetch spans recorded")
	}
}
