package pagetable

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// Multi-layer placement: one region with hot pages on CXL and cold pages
// on RDMA (§3.1, §9.5 of the paper).
func TestMultiLayerBackingWithinOneVMA(t *testing.T) {
	as, tr := newAS(t, 0)
	v, err := as.AddVMA("img", 0, 100, Read|Write, Anon, nil, 0, Unmapped)
	if err != nil {
		t.Fatal(err)
	}
	cxl := cxlPool()
	rdma := rdmaPool()
	if err := as.SetBacking(v, 0, 40, cxl, 0, RemoteDirect); err != nil {
		t.Fatal(err)
	}
	if err := as.SetBacking(v, 40, 60, rdma, 0x10000, RemoteLazy); err != nil {
		t.Fatal(err)
	}
	if v.PoolAt(0) != cxl || v.PoolAt(39) != cxl || v.PoolAt(40) != rdma || v.PoolAt(99) != rdma {
		t.Fatal("PoolAt returned wrong pool for segment")
	}
	rng := rand.New(rand.NewSource(1))
	res, err := as.Access(rng, v, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hot 40 pages: direct CXL, no allocation. Cold 60: fetched from RDMA.
	if res.DirectPages != 40 || res.FetchedPages != 60 || res.MajorFaults != 60 {
		t.Fatalf("direct=%d fetched=%d major=%d", res.DirectPages, res.FetchedPages, res.MajorFaults)
	}
	if tr.Used() != 60*mem.PageSize {
		t.Fatalf("local bytes = %d, want 60 pages (only RDMA pages land locally)", tr.Used())
	}
	if rdma.Fetches() == 0 || cxl.Fetches() != 0 {
		t.Fatalf("fetch routed to wrong pool: cxl=%d rdma=%d", cxl.Fetches(), rdma.Fetches())
	}
}

func TestSetBackingValidation(t *testing.T) {
	as, _ := newAS(t, 0)
	v, _ := as.AddVMA("a", 0, 10, Read|Write, Anon, nil, 0, Unmapped)
	if err := as.SetBacking(v, 0, 4, rdmaPool(), 0, RemoteDirect); err == nil {
		t.Fatal("RemoteDirect on RDMA accepted")
	}
	if err := as.SetBacking(v, 0, 4, nil, 0, RemoteLazy); err == nil {
		t.Fatal("RemoteLazy without pool accepted")
	}
	if err := as.SetBacking(v, 8, 4, cxlPool(), 0, RemoteDirect); err == nil {
		t.Fatal("out-of-range backing accepted")
	}
	if err := as.SetBacking(v, 0, 4, cxlPool(), 0, RemoteDirect); err != nil {
		t.Fatal(err)
	}
	if err := as.SetBacking(v, 2, 4, cxlPool(), 0, RemoteDirect); err == nil {
		t.Fatal("overlapping backing accepted")
	}
}

func TestSetBackingLocalCharges(t *testing.T) {
	as, tr := newAS(t, 0)
	v, _ := as.AddVMA("a", 0, 10, Read|Write, Anon, nil, 0, Unmapped)
	if err := as.SetBacking(v, 0, 6, nil, 0, Local); err != nil {
		t.Fatal(err)
	}
	if tr.Used() != 6*mem.PageSize {
		t.Fatalf("tracker = %d", tr.Used())
	}
	if v.CountIn(Local) != 6 {
		t.Fatalf("local pages = %d", v.CountIn(Local))
	}
	// Making an already-local page local again must fail (double charge).
	if err := as.SetBacking(v, 0, 1, nil, 0, Local); err == nil {
		t.Fatal("double-populate accepted")
	}
}
