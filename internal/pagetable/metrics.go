package pagetable

import "repro/internal/obs"

// RegisterStats publishes an aggregated fault/traffic Stats (typically
// the shared sink of every address space on a node — see SetStatsSink)
// into reg under the given labels.
func RegisterStats(reg *obs.Registry, labels map[string]string, s *Stats) {
	reg.CounterFunc("trenv_page_minor_faults_total",
		"Minor page faults (demand-zero + CoW trap entries).", labels,
		func() int64 { return s.MinorFaults })
	reg.CounterFunc("trenv_page_major_faults_total",
		"Major page faults requiring a remote fetch.", labels,
		func() int64 { return s.MajorFaults })
	reg.CounterFunc("trenv_page_cow_copies_total",
		"Pages copied on write to protected memory.", labels,
		func() int64 { return s.CowPages })
	reg.CounterFunc("trenv_page_fetched_total",
		"Pages pulled from RDMA/NAS pools.", labels,
		func() int64 { return s.FetchedPages })
	reg.CounterFunc("trenv_page_direct_access_total",
		"CXL pages used via direct loads (no fault).", labels,
		func() int64 { return s.DirectAccess })
	reg.CounterFunc("trenv_page_local_allocated_bytes_total",
		"Bytes of node DRAM allocated by page faults and restores.", labels,
		func() int64 { return s.LocalAllocated })
	reg.CounterFunc("trenv_page_fetch_retries_total",
		"Page-fetch attempts retried after injected faults.", labels,
		func() int64 { return s.Retries })
	reg.CounterFunc("trenv_page_fetch_errors_total",
		"Page accesses failed by an unrecoverable fetch error.", labels,
		func() int64 { return s.FetchErrors })
	reg.CounterFunc("trenv_page_prefetched_total",
		"Pages delivered by working-set prefetch batches.", labels,
		func() int64 { return s.PrefetchedPages })
	reg.CounterFunc("trenv_page_prefetch_hits_total",
		"Accessed pages a prefetch batch had covered (demand fetches avoided).", labels,
		func() int64 { return s.PrefetchHits })
	reg.CounterFunc("trenv_page_prefetch_wait_ns_total",
		"Nanoseconds demand accesses spent waiting on in-flight prefetch batches.", labels,
		func() int64 { return s.PrefetchWaitNs })
}
