// Package pagetable is a software MMU: virtual memory areas, per-page PTE
// states, and the fault state machine TrEnv's mm-template relies on.
//
// A page is in one of four states:
//
//   - Unmapped: no backing yet (demand-zero anonymous memory). Any access
//     takes a minor fault and allocates a local page.
//   - RemoteDirect: a valid, write-protected PTE mapping byte-addressable
//     pool memory (CXL). Reads need no fault and cost only the pool's
//     direct-access latency; writes take a copy-on-write fault.
//   - RemoteLazy: an invalid PTE carrying a remote offset (RDMA/NAS). Any
//     access takes a major fault that fetches the 4 KB page into local
//     memory.
//   - Local: resident in node DRAM; accesses are free (folded into the
//     workload's base execution time).
//
// A VMA's remote backing is described by segments, so a single region can
// mix tiers — the paper's multi-layer placement of hot pages on CXL and
// cold pages on RDMA/NAS. This reproduces exactly the event counts and
// costs the evaluation measures: CXL's zero-software-overhead reads,
// RDMA's per-page major faults, and CoW isolation for written pages.
package pagetable

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/mem"
)

// State is the backing state of one page.
type State uint8

const (
	// Unmapped pages have no backing store yet (demand zero).
	Unmapped State = iota
	// RemoteDirect pages map byte-addressable pool memory read-only.
	RemoteDirect
	// RemoteLazy pages carry a remote offset behind an invalid PTE.
	RemoteLazy
	// Local pages are resident in node DRAM.
	Local
	numStates
)

// String names the state.
func (s State) String() string {
	switch s {
	case Unmapped:
		return "unmapped"
	case RemoteDirect:
		return "remote-direct"
	case RemoteLazy:
		return "remote-lazy"
	case Local:
		return "local"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Prot is a page protection bitmask.
type Prot uint8

// Protection bits.
const (
	Read Prot = 1 << iota
	Write
	Exec
)

// MapKind distinguishes anonymous from file-backed mappings. The paper's
// custom driver exists precisely because stock DAX cannot back anonymous
// or regular-file mappings with CXL memory; here both kinds may carry
// remote backing.
type MapKind uint8

const (
	// Anon is an anonymous mapping (heap, stack).
	Anon MapKind = iota
	// File is a file-backed mapping (.text, .data, mapped libraries).
	File
)

// Backing maps pages [First, First+Pages) of a VMA onto a pool at byte
// offset Base (page i of the run lives at Base + i*PageSize).
type Backing struct {
	First int
	Pages int
	Pool  *mem.Pool
	Base  uint64
}

// VMA is one virtual memory area with uniform protection.
type VMA struct {
	Name  string
	Start uint64
	Prot  Prot
	Kind  MapKind

	segs   []Backing // sorted by First, non-overlapping
	states []State
	counts [numStates]int

	// dirty marks pages written since the last MarkClean — the delta an
	// incremental checkpoint dumps.
	dirty      []bool
	dirtyCount int

	// inflight holds the virtual-time deadline of the prefetch batch
	// delivering each page (see MarkInFlight): a demand access before
	// the deadline waits for the batch instead of fetching.
	inflight map[int]time.Duration
	// redirect overrides the backing pool per page for promoted runs
	// (see PromoteRange): the page reads from the node's direct-access
	// promotion cache, not its original segment.
	redirect map[int]*mem.Pool
}

// DirtyPages returns pages written since the last MarkClean.
func (v *VMA) DirtyPages() int { return v.dirtyCount }

func (v *VMA) markDirty(i int) {
	if v.dirty == nil {
		v.dirty = make([]bool, len(v.states))
	}
	if !v.dirty[i] {
		v.dirty[i] = true
		v.dirtyCount++
	}
}

// Pages returns the VMA's page count.
func (v *VMA) Pages() int { return len(v.states) }

// Bytes returns the VMA's size in bytes.
func (v *VMA) Bytes() int64 { return int64(len(v.states)) * mem.PageSize }

// End returns the first address past the VMA.
func (v *VMA) End() uint64 { return v.Start + uint64(v.Bytes()) }

// CountIn reports how many pages are in state s.
func (v *VMA) CountIn(s State) int { return v.counts[s] }

// PageState returns the state of page index i.
func (v *VMA) PageState(i int) State { return v.states[i] }

// Backings returns the VMA's remote backing segments.
func (v *VMA) Backings() []Backing { return v.segs }

// PoolAt returns the pool backing page i, or nil. A promoted page
// (PromoteRange) reports the promotion cache it was redirected to.
func (v *VMA) PoolAt(i int) *mem.Pool {
	if v.redirect != nil {
		if p := v.redirect[i]; p != nil {
			return p
		}
	}
	for _, s := range v.segs {
		if i >= s.First && i < s.First+s.Pages {
			return s.Pool
		}
	}
	return nil
}

func (v *VMA) setState(i int, s State) {
	v.counts[v.states[i]]--
	v.states[i] = s
	v.counts[s]++
}

func (v *VMA) addBacking(b Backing) error {
	for _, s := range v.segs {
		if b.First < s.First+s.Pages && s.First < b.First+b.Pages {
			return fmt.Errorf("pagetable: VMA %q: backing [%d,%d) overlaps existing [%d,%d)",
				v.Name, b.First, b.First+b.Pages, s.First, s.First+s.Pages)
		}
	}
	v.segs = append(v.segs, b)
	sort.Slice(v.segs, func(i, j int) bool { return v.segs[i].First < v.segs[j].First })
	return nil
}

// Stats aggregates fault and transfer activity for an address space.
type Stats struct {
	MinorFaults    int64 // demand-zero + CoW trap entries
	MajorFaults    int64 // faults requiring a remote fetch
	CowPages       int64 // pages copied due to a write to protected memory
	FetchedPages   int64 // pages pulled from RDMA/NAS pools
	DirectAccess   int64 // CXL pages used via direct loads (no fault)
	LocalAllocated int64 // bytes of node DRAM allocated
	Retries        int64 // fetch attempts retried after injected faults
	FetchErrors    int64 // accesses failed by an unrecoverable fetch error

	PrefetchedPages int64 // pages delivered by prefetch batches (MarkInFlight)
	PrefetchHits    int64 // accessed pages a prefetch batch had covered
	PrefetchWaitNs  int64 // ns spent waiting on in-flight prefetch batches
}

// AccessResult describes one aggregated access batch.
type AccessResult struct {
	MinorFaults  int
	MajorFaults  int
	CowPages     int
	FetchedPages int
	DirectPages  int
	Latency      time.Duration
	// FetchLat is the share of Latency spent pulling pages from remote
	// pools (fault overhead + contended transfer), and FetchPool names
	// the pool kind that served the most fetched pages — what tail
	// attribution needs to blame remote memory specifically.
	FetchLat  time.Duration
	FetchPool string
	// Retries counts fetch attempts beyond the first (injected-fault
	// recovery); FaultTrace is the trace ID of the fault that forced
	// them ("" = clean), so exec spans can link back to the cause.
	Retries    int
	FaultTrace string
	// PrefetchHits counts accessed pages that a prefetch batch had
	// already delivered or was in flight for — demand fetches avoided.
	// PrefetchWait is the time spent parked on in-flight batches.
	PrefetchHits int
	PrefetchWait time.Duration
}

// AddressSpace is a process's memory map.
type AddressSpace struct {
	vmas  []*VMA // sorted by Start
	local *mem.Tracker
	lat   mem.LatencyModel
	stats Stats
	sink  *Stats // optional shared aggregate mirroring every stats update
	rss   int64  // bytes of local DRAM held

	// clock supplies virtual time for in-flight prefetch waits (nil
	// when no prefetcher is attached); wslog records first-run fault
	// order for working-set replay.
	clock func() time.Duration
	wslog *WorkingSetLog
}

// NewAddressSpace creates an empty address space charging local pages to
// tracker.
func NewAddressSpace(local *mem.Tracker, lat mem.LatencyModel) *AddressSpace {
	return &AddressSpace{local: local, lat: lat}
}

// Stats returns accumulated fault statistics.
func (as *AddressSpace) Stats() Stats { return as.stats }

// SetStatsSink mirrors every subsequent stats update into s in addition
// to the per-space accounting. One sink is typically shared by every
// address space on a node, giving node-level fault/traffic counters for
// the metrics registry. Pass nil to detach.
func (as *AddressSpace) SetStatsSink(s *Stats) { as.sink = s }

// RSS returns the bytes of node DRAM currently held.
func (as *AddressSpace) RSS() int64 { return as.rss }

// RemoteResidentBytes returns bytes still backed by remote pools
// (RemoteDirect + RemoteLazy pages).
func (as *AddressSpace) RemoteResidentBytes() int64 {
	var pages int
	for _, v := range as.vmas {
		pages += v.counts[RemoteDirect] + v.counts[RemoteLazy]
	}
	return int64(pages) * mem.PageSize
}

// VMAs returns the address space's areas in address order.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// Region returns the VMA with the given name, or nil.
func (as *AddressSpace) Region(name string) *VMA {
	for _, v := range as.vmas {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// ErrOverlap reports an attempted overlapping mapping.
type ErrOverlap struct{ Name, Existing string }

func (e *ErrOverlap) Error() string {
	return fmt.Sprintf("pagetable: mapping %q overlaps %q", e.Name, e.Existing)
}

// AddVMA maps a new area. Every page starts in initState; when pool is
// non-nil it backs the whole VMA starting at baseOffset. Overlapping an
// existing VMA is an error.
func (as *AddressSpace) AddVMA(name string, start uint64, pages int, prot Prot, kind MapKind, pool *mem.Pool, baseOffset uint64, initState State) (*VMA, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("pagetable: VMA %q has %d pages", name, pages)
	}
	if (initState == RemoteDirect || initState == RemoteLazy) && pool == nil {
		return nil, fmt.Errorf("pagetable: VMA %q: remote state without a pool", name)
	}
	if initState == RemoteDirect && !pool.Kind().ByteAddressable() {
		return nil, fmt.Errorf("pagetable: VMA %q: pool %s is not byte-addressable", name, pool.Kind())
	}
	end := start + uint64(pages)*mem.PageSize
	for _, v := range as.vmas {
		if start < v.End() && v.Start < end {
			return nil, &ErrOverlap{Name: name, Existing: v.Name}
		}
	}
	v := &VMA{Name: name, Start: start, Prot: prot, Kind: kind, states: make([]State, pages)}
	v.counts[Unmapped] = pages
	if pool != nil {
		v.segs = []Backing{{First: 0, Pages: pages, Pool: pool, Base: baseOffset}}
	}
	if initState != Unmapped {
		for i := range v.states {
			v.states[i] = initState
		}
		v.counts[Unmapped] = 0
		v.counts[initState] = pages
		if initState == Local {
			if err := as.allocLocal(int64(pages) * mem.PageSize); err != nil {
				return nil, err
			}
		}
	}
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	return v, nil
}

// SetBacking installs pool backing for pages [first, first+count) of v and
// puts them in state s. It is how mm-template preconfigures PTEs:
// RemoteDirect for byte-addressable pools (valid, write-protected entries)
// and RemoteLazy otherwise (invalid entries holding the remote address).
// The range must not already have a backing segment.
func (as *AddressSpace) SetBacking(v *VMA, first, count int, pool *mem.Pool, base uint64, s State) error {
	if first < 0 || count <= 0 || first+count > v.Pages() {
		return fmt.Errorf("pagetable: SetBacking [%d,%d) outside VMA %q", first, first+count, v.Name)
	}
	switch s {
	case RemoteDirect:
		if pool == nil || !pool.Kind().ByteAddressable() {
			return fmt.Errorf("pagetable: VMA %q: RemoteDirect requires a byte-addressable pool", v.Name)
		}
	case RemoteLazy:
		if pool == nil {
			return fmt.Errorf("pagetable: VMA %q: RemoteLazy requires a pool", v.Name)
		}
	case Local:
		if err := as.allocLocal(int64(count) * mem.PageSize); err != nil {
			return err
		}
	}
	if pool != nil {
		if err := v.addBacking(Backing{First: first, Pages: count, Pool: pool, Base: base}); err != nil {
			return err
		}
	}
	for i := first; i < first+count; i++ {
		if v.states[i] == Local {
			return fmt.Errorf("pagetable: VMA %q page %d already local", v.Name, i)
		}
		v.setState(i, s)
	}
	return nil
}

func (as *AddressSpace) allocLocal(bytes int64) error {
	if err := as.local.Alloc(bytes); err != nil {
		return err
	}
	as.rss += bytes
	as.stats.LocalAllocated += bytes
	if as.sink != nil {
		as.sink.LocalAllocated += bytes
	}
	return nil
}

// Find returns the VMA containing addr, or nil.
func (as *AddressSpace) Find(addr uint64) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End() > addr })
	if i < len(as.vmas) && as.vmas[i].Start <= addr {
		return as.vmas[i]
	}
	return nil
}

// ErrProt reports an access violating a VMA's protection.
type ErrProt struct {
	VMA   string
	Write bool
}

func (e *ErrProt) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("pagetable: %s access violates protection of %q", op, e.VMA)
}

// Touch accesses the single page containing addr. It returns the latency
// the access incurs; the caller advances simulated time. rng samples
// contention effects for remote fetches.
func (as *AddressSpace) Touch(rng *rand.Rand, addr uint64, write bool) (time.Duration, error) {
	v := as.Find(addr)
	if v == nil {
		return 0, fmt.Errorf("pagetable: fault at unmapped address %#x", addr)
	}
	res, err := as.accessVMA(rng, v, int((addr-v.Start)/mem.PageSize), 1, write)
	return res.Latency, err
}

// Access performs an aggregated batch over the first readPages (read) and
// writePages (written) pages of region v, the model's unit of workload
// memory activity. Written pages are a prefix, matching the observation
// that hot writable state clusters at region starts; read pages cover a
// prefix too, so writes ⊆ reads when writePages <= readPages.
// The returned latency covers faults, fetches (one contended batch per
// pool), CoW copies, and CXL direct-access overheads.
func (as *AddressSpace) Access(rng *rand.Rand, v *VMA, readPages, writePages int) (AccessResult, error) {
	var total AccessResult
	if writePages > 0 {
		res, err := as.accessVMA(rng, v, 0, writePages, true)
		// Fold the partial result in even on error: a failed access still
		// spent its retries, and the caller records them on the span.
		total = addResults(total, res)
		if err != nil {
			return total, err
		}
	}
	if readPages > writePages {
		res, err := as.accessVMA(rng, v, writePages, readPages-writePages, false)
		total = addResults(total, res)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func addResults(a, b AccessResult) AccessResult {
	a.MinorFaults += b.MinorFaults
	a.MajorFaults += b.MajorFaults
	a.CowPages += b.CowPages
	a.FetchedPages += b.FetchedPages
	a.DirectPages += b.DirectPages
	a.Latency += b.Latency
	a.FetchLat += b.FetchLat
	if a.FetchPool == "" {
		a.FetchPool = b.FetchPool
	}
	a.Retries += b.Retries
	if a.FaultTrace == "" {
		a.FaultTrace = b.FaultTrace
	}
	a.PrefetchHits += b.PrefetchHits
	a.PrefetchWait += b.PrefetchWait
	return a
}

// poolTally accumulates per-pool page counts without heap allocation:
// a VMA's pages rarely span more than a few pools, so the common case
// fits the inline array and lives on accessVMA's stack. Pools are kept
// in first-seen (page-order) position; overflow beyond the inline
// capacity spills to a map, drained via the same deterministic sort the
// fetch path applies before any rng draw.
type poolTally struct {
	pools    [4]*mem.Pool
	counts   [4]int
	len      int
	overflow map[*mem.Pool]int
}

func (t *poolTally) add(p *mem.Pool) {
	for i := 0; i < t.len; i++ {
		if t.pools[i] == p {
			t.counts[i]++
			return
		}
	}
	if t.len < len(t.pools) {
		t.pools[t.len] = p
		t.counts[t.len] = 1
		t.len++
		return
	}
	if t.overflow == nil {
		t.overflow = make(map[*mem.Pool]int)
	}
	t.overflow[p]++
}

// each visits every (pool, count) pair in inline-then-overflow order.
// Callers that draw randomness per pool must sort first (see pairs).
func (t *poolTally) each(fn func(p *mem.Pool, n int)) {
	for i := 0; i < t.len; i++ {
		fn(t.pools[i], t.counts[i])
	}
	for p, n := range t.overflow {
		fn(p, n)
	}
}

// empty reports whether nothing was tallied.
func (t *poolTally) empty() bool { return t.len == 0 && len(t.overflow) == 0 }

// accessVMA touches pages [first, first+count) of v.
func (as *AddressSpace) accessVMA(rng *rand.Rand, v *VMA, first, count int, write bool) (AccessResult, error) {
	var res AccessResult
	if count <= 0 {
		return res, nil
	}
	if first < 0 || first+count > v.Pages() {
		return res, fmt.Errorf("pagetable: access [%d,%d) outside VMA %q (%d pages)", first, first+count, v.Name, v.Pages())
	}
	if write && v.Prot&Write == 0 {
		return res, &ErrProt{VMA: v.Name, Write: true}
	}
	if !write && v.Prot&Read == 0 {
		return res, &ErrProt{VMA: v.Name, Write: false}
	}
	var toZero int
	var fetch, cow, direct poolTally // per-pool batches, stack-allocated
	var cowTotal, fetchTotal int
	segIdx := 0
	poolFor := func(i int) *mem.Pool {
		if v.redirect != nil {
			if p := v.redirect[i]; p != nil {
				return p
			}
		}
		for segIdx < len(v.segs) && i >= v.segs[segIdx].First+v.segs[segIdx].Pages {
			segIdx++
		}
		if segIdx < len(v.segs) && i >= v.segs[segIdx].First {
			return v.segs[segIdx].Pool
		}
		return nil
	}
	// Working-set recording: the first run's fetches are logged as
	// contiguous (pool, run) stretches in fault order, the replay unit
	// of the prefetcher's batched fetches.
	record := as.wslog != nil && as.wslog.active()
	var runPool *mem.Pool
	var runFirst, runLen int
	flushRun := func() {
		if runLen > 0 {
			as.wslog.record(v.Name, runFirst, runLen, runPool.Kind().String())
			runLen = 0
		}
	}
	// In-flight prefetch hits: pages whose batch is still on the wire
	// park the access until the latest such batch lands.
	var inflightHits int
	var inflightReady time.Duration
	for i := first; i < first+count; i++ {
		if write {
			v.markDirty(i)
		}
		switch v.states[i] {
		case Local:
			if v.inflight != nil {
				if dl, ok := v.inflight[i]; ok {
					delete(v.inflight, i)
					inflightHits++
					if dl > inflightReady {
						inflightReady = dl
					}
				}
			}
		case Unmapped:
			toZero++
			v.states[i] = Local
		case RemoteDirect:
			p := poolFor(i)
			if write {
				cow.add(p)
				cowTotal++
				v.states[i] = Local
			} else {
				direct.add(p)
			}
		case RemoteLazy:
			p := poolFor(i)
			fetch.add(p)
			fetchTotal++
			if record {
				if runLen > 0 && p == runPool && i == runFirst+runLen {
					runLen++
				} else {
					flushRun()
					runPool, runFirst, runLen = p, i, 1
				}
			}
			v.states[i] = Local
		}
	}
	// Batched counterpart of per-page setState: one counts update per
	// transition class instead of two per page.
	v.counts[Unmapped] -= toZero
	v.counts[RemoteDirect] -= cowTotal
	v.counts[RemoteLazy] -= fetchTotal
	v.counts[Local] += toZero + cowTotal + fetchTotal
	if record {
		flushRun()
	}
	var lat time.Duration
	if inflightHits > 0 {
		// A demand fault on an in-flight page takes a minor fault (the
		// PTE is being populated by the batch) and waits for the batch
		// deadline instead of issuing its own fetch; overlapping waits
		// collapse to the latest deadline.
		res.PrefetchHits = inflightHits
		res.MinorFaults += inflightHits
		lat += time.Duration(inflightHits) * as.lat.MinorFaultOverhead
		if as.clock != nil {
			if now := as.clock(); inflightReady > now {
				res.PrefetchWait = inflightReady - now
				lat += res.PrefetchWait
			}
		}
	}
	if toZero > 0 {
		res.MinorFaults += toZero
		lat += time.Duration(toZero) * as.lat.MinorFaultOverhead
		if err := as.allocLocal(int64(toZero) * mem.PageSize); err != nil {
			return res, err
		}
	}
	var cowErr error
	cow.each(func(pool *mem.Pool, n int) {
		if cowErr != nil {
			return
		}
		res.MinorFaults += n
		res.CowPages += n
		lat += time.Duration(n) * as.lat.MinorFaultOverhead
		lat += pool.DirectAccessCost(n) // source read over CXL
		lat += time.Duration(n) * as.lat.CowPageCopy
		cowErr = as.allocLocal(int64(n) * mem.PageSize)
	})
	if cowErr != nil {
		return res, cowErr
	}
	if !fetch.empty() {
		// Iterate fetch pools in a fixed order: fault verdicts and retry
		// backoff draw from rng per pool, so accumulation order must not
		// leak into the simulation's random stream.
		type poolPages struct {
			pool *mem.Pool
			n    int
		}
		fetchPools := make([]poolPages, 0, fetch.len+len(fetch.overflow))
		fetch.each(func(p *mem.Pool, n int) { fetchPools = append(fetchPools, poolPages{p, n}) })
		sort.Slice(fetchPools, func(i, j int) bool {
			return fetchPools[i].pool.Kind().String() < fetchPools[j].pool.Kind().String()
		})
		maxFetch := 0
		for _, fp := range fetchPools {
			pool, n := fp.pool, fp.n
			flat := time.Duration(n) * as.lat.FaultOverhead
			// Contention is sampled from the pool's current outstanding load;
			// callers that sleep through this latency are expected to hold
			// BeginFetch/EndFetch on the pool for the sleep's duration so that
			// concurrent sessions see each other.
			d, out, err := pool.Fetch(rng, n)
			res.Retries += out.Retries
			if res.FaultTrace == "" {
				res.FaultTrace = out.FaultTrace
			}
			if err != nil {
				as.stats.FetchErrors++
				as.stats.Retries += int64(out.Retries)
				if as.sink != nil {
					as.sink.FetchErrors++
					as.sink.Retries += int64(out.Retries)
				}
				return res, fmt.Errorf("pagetable: fetch %d pages of %q from pool %s: %w", n, v.Name, pool.Kind(), err)
			}
			res.MajorFaults += n
			res.FetchedPages += n
			flat += d
			lat += flat
			res.FetchLat += flat
			kind := pool.Kind().String()
			if n > maxFetch || (n == maxFetch && kind < res.FetchPool) {
				maxFetch = n
				res.FetchPool = kind
			}
			if err := as.allocLocal(int64(n) * mem.PageSize); err != nil {
				return res, err
			}
		}
	}
	direct.each(func(pool *mem.Pool, n int) {
		res.DirectPages += n
		lat += pool.DirectAccessCost(n)
	})
	res.Latency = lat
	as.stats.addAccess(res)
	if as.sink != nil {
		as.sink.addAccess(res)
	}
	return res, nil
}

func (s *Stats) addAccess(res AccessResult) {
	s.MinorFaults += int64(res.MinorFaults)
	s.MajorFaults += int64(res.MajorFaults)
	s.CowPages += int64(res.CowPages)
	s.FetchedPages += int64(res.FetchedPages)
	s.DirectAccess += int64(res.DirectPages)
	s.Retries += int64(res.Retries)
	s.PrefetchHits += int64(res.PrefetchHits)
	s.PrefetchWaitNs += int64(res.PrefetchWait)
}

// Grow extends v by pages of demand-zero memory (e.g. heap growth via
// brk). Grown pages default to local allocation on first touch — never to
// adjacent pool memory — reproducing the paper's Figure 9(b) safety
// property.
func (as *AddressSpace) Grow(v *VMA, pages int) error {
	if pages <= 0 {
		return fmt.Errorf("pagetable: grow by %d pages", pages)
	}
	end := v.End() + uint64(pages)*mem.PageSize
	for _, o := range as.vmas {
		if o != v && v.End() < o.End() && o.Start < end {
			return &ErrOverlap{Name: v.Name + "+growth", Existing: o.Name}
		}
	}
	v.states = append(v.states, make([]State, pages)...)
	if v.dirty != nil {
		v.dirty = append(v.dirty, make([]bool, pages)...)
	}
	v.counts[Unmapped] += pages
	return nil
}

// DirtyBytes sums pages written since the last MarkClean across VMAs.
func (as *AddressSpace) DirtyBytes() int64 {
	var pages int
	for _, v := range as.vmas {
		pages += v.dirtyCount
	}
	return int64(pages) * mem.PageSize
}

// MarkClean resets dirty tracking — called after a (pre-)dump so the
// next incremental checkpoint copies only the new delta.
func (as *AddressSpace) MarkClean() {
	for _, v := range as.vmas {
		v.dirty = nil
		v.dirtyCount = 0
	}
}

// MakeResident forces pages [first, first+count) of v into Local state,
// allocating node DRAM, without charging fault costs or pool fetches. It
// models bulk restore copies whose cost the caller accounts analytically
// (e.g. REAP's eager working-set copy from a tmpfs snapshot file).
func (as *AddressSpace) MakeResident(v *VMA, first, count int) error {
	if first < 0 || count <= 0 || first+count > v.Pages() {
		return fmt.Errorf("pagetable: MakeResident [%d,%d) outside VMA %q", first, first+count, v.Name)
	}
	var toAlloc int
	for i := first; i < first+count; i++ {
		if v.states[i] != Local {
			toAlloc++
			v.setState(i, Local)
		}
	}
	if toAlloc > 0 {
		if err := as.allocLocal(int64(toAlloc) * mem.PageSize); err != nil {
			return err
		}
	}
	return nil
}

// Prefetch forces pages [first, first+count) of v resident, as REAP-style
// working-set prefetch does: remote pages are fetched in one batch,
// unmapped pages are zero-filled. It returns the latency of the batch.
func (as *AddressSpace) Prefetch(rng *rand.Rand, v *VMA, first, count int) (time.Duration, error) {
	res, err := as.accessVMA(rng, v, first, count, false)
	if err != nil {
		return 0, err
	}
	return res.Latency, nil
}

// ReleaseAll returns every local page to the tracker and drops all
// mappings. The address space must not be used afterwards.
func (as *AddressSpace) ReleaseAll() {
	if as.rss > 0 {
		as.local.Free(as.rss)
		as.rss = 0
	}
	as.vmas = nil
}

// TotalPages returns the mapped page count across all VMAs.
func (as *AddressSpace) TotalPages() int {
	var n int
	for _, v := range as.vmas {
		n += v.Pages()
	}
	return n
}
