package pagetable

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newAS(t *testing.T, capacity int64) (*AddressSpace, *mem.Tracker) {
	t.Helper()
	tr := mem.NewTracker("node", capacity)
	return NewAddressSpace(tr, mem.DefaultLatencyModel()), tr
}

func cxlPool() *mem.Pool  { return mem.NewPool(mem.CXL, 0, mem.DefaultLatencyModel()) }
func rdmaPool() *mem.Pool { return mem.NewPool(mem.RDMA, 0, mem.DefaultLatencyModel()) }

func TestAddVMAOverlapRejected(t *testing.T) {
	as, _ := newAS(t, 0)
	if _, err := as.AddVMA("a", 0x1000, 4, Read|Write, Anon, nil, 0, Unmapped); err != nil {
		t.Fatal(err)
	}
	_, err := as.AddVMA("b", 0x2000, 4, Read, Anon, nil, 0, Unmapped)
	var overlap *ErrOverlap
	if !errors.As(err, &overlap) {
		t.Fatalf("overlap not detected: %v", err)
	}
	if _, err := as.AddVMA("c", 0x5000, 1, Read, Anon, nil, 0, Unmapped); err != nil {
		t.Fatalf("adjacent VMA rejected: %v", err)
	}
}

func TestRemoteStateRequiresPool(t *testing.T) {
	as, _ := newAS(t, 0)
	if _, err := as.AddVMA("a", 0, 1, Read, Anon, nil, 0, RemoteDirect); err == nil {
		t.Fatal("RemoteDirect without pool accepted")
	}
	if _, err := as.AddVMA("b", 0, 1, Read, Anon, rdmaPool(), 0, RemoteDirect); err == nil {
		t.Fatal("RemoteDirect on RDMA (not byte-addressable) accepted")
	}
	if _, err := as.AddVMA("c", 0, 1, Read, Anon, rdmaPool(), 0, RemoteLazy); err != nil {
		t.Fatalf("RemoteLazy on RDMA rejected: %v", err)
	}
}

func TestDemandZeroAllocatesLocal(t *testing.T) {
	as, tr := newAS(t, 0)
	v, _ := as.AddVMA("heap", 0, 10, Read|Write, Anon, nil, 0, Unmapped)
	rng := rand.New(rand.NewSource(1))
	lat, err := as.Touch(rng, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if lat == 0 {
		t.Fatal("demand-zero fault had no cost")
	}
	if v.PageState(0) != Local || v.CountIn(Local) != 1 {
		t.Fatalf("page state = %v", v.PageState(0))
	}
	if tr.Used() != mem.PageSize {
		t.Fatalf("tracker used %d, want one page", tr.Used())
	}
	// Second touch is free.
	lat2, _ := as.Touch(rng, 0, true)
	if lat2 != 0 {
		t.Fatalf("resident touch cost %v", lat2)
	}
	if as.Stats().MinorFaults != 1 {
		t.Fatalf("minor faults = %d", as.Stats().MinorFaults)
	}
}

func TestCXLReadNoFaultNoAllocation(t *testing.T) {
	as, tr := newAS(t, 0)
	pool := cxlPool()
	v, _ := as.AddVMA("img", 0, 100, Read|Write, Anon, pool, 0, RemoteDirect)
	rng := rand.New(rand.NewSource(1))
	res, err := as.Access(rng, v, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinorFaults+res.MajorFaults != 0 {
		t.Fatalf("CXL read took faults: %+v", res)
	}
	if res.DirectPages != 50 {
		t.Fatalf("direct pages = %d", res.DirectPages)
	}
	if tr.Used() != 0 {
		t.Fatalf("CXL read allocated %d local bytes", tr.Used())
	}
	if v.CountIn(RemoteDirect) != 100 {
		t.Fatal("read should not change page state")
	}
	if res.Latency != pool.DirectAccessCost(50) {
		t.Fatalf("latency %v, want pure direct-access cost", res.Latency)
	}
}

func TestCXLWriteTriggersCoW(t *testing.T) {
	as, tr := newAS(t, 0)
	v, _ := as.AddVMA("img", 0, 100, Read|Write, Anon, cxlPool(), 0, RemoteDirect)
	rng := rand.New(rand.NewSource(1))
	res, err := as.Access(rng, v, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.CowPages != 20 || res.MinorFaults != 20 {
		t.Fatalf("cow=%d minor=%d, want 20/20", res.CowPages, res.MinorFaults)
	}
	if tr.Used() != 20*mem.PageSize {
		t.Fatalf("local bytes = %d, want 20 pages", tr.Used())
	}
	if v.CountIn(Local) != 20 || v.CountIn(RemoteDirect) != 80 {
		t.Fatalf("states: local=%d remote=%d", v.CountIn(Local), v.CountIn(RemoteDirect))
	}
	// Re-write is free: pages are private now.
	res2, _ := as.Access(rng, v, 20, 20)
	if res2.CowPages != 0 || res2.Latency != 0 {
		t.Fatalf("second write not free: %+v", res2)
	}
}

func TestRDMAAccessMajorFaultsAndFetches(t *testing.T) {
	as, tr := newAS(t, 0)
	pool := rdmaPool()
	v, _ := as.AddVMA("img", 0, 100, Read|Write, Anon, pool, 0, RemoteLazy)
	rng := rand.New(rand.NewSource(1))
	res, err := as.Access(rng, v, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MajorFaults != 40 || res.FetchedPages != 40 {
		t.Fatalf("major=%d fetched=%d, want 40/40", res.MajorFaults, res.FetchedPages)
	}
	if tr.Used() != 40*mem.PageSize {
		t.Fatalf("local bytes = %d, want 40 pages (RDMA reads allocate)", tr.Used())
	}
	if pool.Fetches() == 0 {
		t.Fatal("pool saw no fetches")
	}
	// RDMA costs strictly more than CXL for the same access.
	as2, _ := newAS(t, 0)
	v2, _ := as2.AddVMA("img", 0, 100, Read|Write, Anon, cxlPool(), 0, RemoteDirect)
	res2, _ := as2.Access(rng, v2, 40, 10)
	if res.Latency <= res2.Latency {
		t.Fatalf("RDMA (%v) not slower than CXL (%v)", res.Latency, res2.Latency)
	}
}

func TestProtectionEnforced(t *testing.T) {
	as, _ := newAS(t, 0)
	v, _ := as.AddVMA("ro", 0, 4, Read, Anon, nil, 0, Unmapped)
	rng := rand.New(rand.NewSource(1))
	_, err := as.Access(rng, v, 0, 1)
	var prot *ErrProt
	if !errors.As(err, &prot) || !prot.Write {
		t.Fatalf("write to RO region: %v", err)
	}
	v2, _ := as.AddVMA("wo", 0x100000, 4, Write, Anon, nil, 0, Unmapped)
	if _, err := as.Access(rng, v2, 4, 0); err == nil {
		t.Fatal("read of write-only region succeeded")
	}
}

func TestAccessBeyondVMAFails(t *testing.T) {
	as, _ := newAS(t, 0)
	v, _ := as.AddVMA("a", 0, 4, Read|Write, Anon, nil, 0, Unmapped)
	rng := rand.New(rand.NewSource(1))
	if _, err := as.Access(rng, v, 5, 0); err == nil {
		t.Fatal("out-of-range access succeeded")
	}
	if _, err := as.Touch(rng, 0x4000, false); err == nil {
		t.Fatal("touch of unmapped address succeeded")
	}
}

func TestGrowStaysLocal(t *testing.T) {
	// Figure 9(b): heap growth after CXL restore must allocate locally,
	// never spill into adjacent pool memory.
	as, tr := newAS(t, 0)
	heap, _ := as.AddVMA("heap", 0x1000, 8, Read|Write, Anon, cxlPool(), 0, RemoteDirect)
	if err := as.Grow(heap, 4); err != nil {
		t.Fatal(err)
	}
	if heap.Pages() != 12 {
		t.Fatalf("pages = %d", heap.Pages())
	}
	for i := 8; i < 12; i++ {
		if heap.PageState(i) != Unmapped {
			t.Fatalf("grown page %d state = %v, want Unmapped", i, heap.PageState(i))
		}
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := as.Access(rng, heap, 12, 12); err != nil {
		t.Fatal(err)
	}
	// Grown pages became Local (demand zero), not remote.
	for i := 8; i < 12; i++ {
		if heap.PageState(i) != Local {
			t.Fatalf("grown page %d state = %v", i, heap.PageState(i))
		}
	}
	if tr.Used() != 12*mem.PageSize { // 8 CoW + 4 demand-zero
		t.Fatalf("local = %d", tr.Used())
	}
}

func TestGrowIntoNeighborRejected(t *testing.T) {
	as, _ := newAS(t, 0)
	a, _ := as.AddVMA("a", 0, 2, Read|Write, Anon, nil, 0, Unmapped)
	as.AddVMA("b", 0x2000, 2, Read|Write, Anon, nil, 0, Unmapped)
	if err := as.Grow(a, 1); err == nil {
		t.Fatal("growth into neighbor allowed")
	}
}

func TestReleaseAllReturnsMemory(t *testing.T) {
	as, tr := newAS(t, 0)
	v, _ := as.AddVMA("a", 0, 10, Read|Write, Anon, nil, 0, Unmapped)
	rng := rand.New(rand.NewSource(1))
	as.Access(rng, v, 10, 10)
	if tr.Used() == 0 {
		t.Fatal("expected allocation")
	}
	as.ReleaseAll()
	if tr.Used() != 0 || as.RSS() != 0 {
		t.Fatalf("leak: tracker=%d rss=%d", tr.Used(), as.RSS())
	}
}

func TestLocalInitStateChargesTracker(t *testing.T) {
	as, tr := newAS(t, 0)
	if _, err := as.AddVMA("a", 0, 5, Read|Write, Anon, nil, 0, Local); err != nil {
		t.Fatal(err)
	}
	if tr.Used() != 5*mem.PageSize {
		t.Fatalf("tracker = %d", tr.Used())
	}
}

func TestCapacityExhaustionSurfacesError(t *testing.T) {
	as, _ := newAS(t, 2*mem.PageSize)
	v, _ := as.AddVMA("a", 0, 10, Read|Write, Anon, nil, 0, Unmapped)
	rng := rand.New(rand.NewSource(1))
	if _, err := as.Access(rng, v, 10, 10); err == nil {
		t.Fatal("allocation beyond node capacity succeeded")
	}
}

func TestFindVMA(t *testing.T) {
	as, _ := newAS(t, 0)
	as.AddVMA("lo", 0x1000, 2, Read, Anon, nil, 0, Unmapped)
	as.AddVMA("hi", 0x10000, 2, Read, Anon, nil, 0, Unmapped)
	if v := as.Find(0x1000); v == nil || v.Name != "lo" {
		t.Fatal("Find(0x1000)")
	}
	if v := as.Find(0x2fff); v == nil || v.Name != "lo" {
		t.Fatal("Find(last byte of lo)")
	}
	if v := as.Find(0x3000); v != nil {
		t.Fatal("Find in gap should be nil")
	}
	if v := as.Find(0x10000); v == nil || v.Name != "hi" {
		t.Fatal("Find(hi)")
	}
	if as.Region("lo") == nil || as.Region("missing") != nil {
		t.Fatal("Region lookup")
	}
}

// Property: per-state counts always sum to the page count and match a
// direct scan, across random access sequences.
func TestStateCountInvariantProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		tr := mem.NewTracker("node", 0)
		as := NewAddressSpace(tr, mem.DefaultLatencyModel())
		pool := cxlPool()
		v, err := as.AddVMA("img", 0, 64, Read|Write, Anon, pool, 0, RemoteDirect)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			read := int(op % 65)
			write := int((op >> 8) % 65)
			if _, err := as.Access(rng, v, read, write); err != nil {
				return false
			}
			var scan [4]int
			total := 0
			for i := 0; i < v.Pages(); i++ {
				scan[v.PageState(i)]++
				total++
			}
			if total != 64 {
				return false
			}
			for s := State(0); s < numStates; s++ {
				if scan[s] != v.CountIn(s) {
					return false
				}
			}
			// Local pages must equal charged tracker bytes.
			if int64(v.CountIn(Local))*mem.PageSize != tr.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: access is idempotent on state — repeating the same access
// batch causes no further faults or allocation.
func TestAccessIdempotentProperty(t *testing.T) {
	f := func(read8, write8 uint8, seed int64) bool {
		read, write := int(read8%33), int(write8%33)
		tr := mem.NewTracker("node", 0)
		as := NewAddressSpace(tr, mem.DefaultLatencyModel())
		v, err := as.AddVMA("img", 0, 32, Read|Write, Anon, rdmaPool(), 0, RemoteLazy)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		if _, err := as.Access(rng, v, read, write); err != nil {
			return false
		}
		used := tr.Used()
		res, err := as.Access(rng, v, read, write)
		if err != nil {
			return false
		}
		return res.MajorFaults == 0 && res.MinorFaults == 0 && tr.Used() == used
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchMakesAccessFree(t *testing.T) {
	as, _ := newAS(t, 0)
	v, _ := as.AddVMA("img", 0, 50, Read|Write, Anon, rdmaPool(), 0, RemoteLazy)
	rng := rand.New(rand.NewSource(1))
	lat, err := as.Prefetch(rng, v, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if lat == 0 {
		t.Fatal("prefetch of remote pages was free")
	}
	res, _ := as.Access(rng, v, 30, 0)
	if res.MajorFaults != 0 || res.Latency != 0 {
		t.Fatalf("post-prefetch access not free: %+v", res)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Unmapped: "unmapped", RemoteDirect: "remote-direct", RemoteLazy: "remote-lazy", Local: "local"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}
