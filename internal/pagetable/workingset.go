package pagetable

import (
	"fmt"
	"time"

	"repro/internal/mem"
)

// WSFetch is one working-set log record: a contiguous run of one
// region's pages that the first run demand-fetched, in fault order.
// Pool names the backend kind that served the run ("rdma", "nas", ...).
type WSFetch struct {
	Region string
	First  int
	Pages  int
	Pool   string
}

// WorkingSetLog captures the order in which a function's first run
// pulled remote pages — the REAP insight: the pages (and order) a
// function touches are stable across invocations, so the first run's
// fault log is a prefetch plan for every later one. The log is keyed
// per template (one recording per rack-shared image) and is strictly
// append-ordered by the deterministic engine, so two same-seed first
// runs record byte-identical logs.
//
// Lifecycle: the first restore against an unsealed log attaches it in
// recording mode (StartRecording); the platform seals it when that
// invocation completes; every later restore replays it. Once sealed
// the log is immutable.
type WorkingSetLog struct {
	entries   []WSFetch
	recording bool
	sealed    bool
}

// Entries returns the recorded fetch runs in fault order. Callers must
// not mutate the returned slice.
func (l *WorkingSetLog) Entries() []WSFetch { return l.entries }

// Pages returns the total pages across recorded runs.
func (l *WorkingSetLog) Pages() int {
	var n int
	for _, e := range l.entries {
		n += e.Pages
	}
	return n
}

// Sealed reports whether recording has finished; a sealed log is the
// prefetcher's replay source.
func (l *WorkingSetLog) Sealed() bool { return l.sealed }

// Recording reports whether a first run is currently writing the log.
func (l *WorkingSetLog) Recording() bool { return l.recording }

// StartRecording claims the log for a first run. Only one recorder is
// admitted (concurrent first invocations run unassisted); recording a
// sealed log is refused.
func (l *WorkingSetLog) StartRecording() bool {
	if l.sealed || l.recording {
		return false
	}
	l.recording = true
	return true
}

// Seal freezes the log: recording stops and replays may begin.
func (l *WorkingSetLog) Seal() {
	l.recording = false
	l.sealed = true
}

// AbortRecording abandons a first run that failed mid-recording: the
// partial log is dropped and a later first run may claim recording
// again. No-op once sealed.
func (l *WorkingSetLog) AbortRecording() {
	if l.sealed {
		return
	}
	l.recording = false
	l.entries = nil
}

// active reports whether accesses should record into the log.
func (l *WorkingSetLog) active() bool { return l.recording && !l.sealed }

// record appends one fetched run, merging with the previous entry when
// it extends the same region/pool stretch (the write-prefix and
// read-suffix halves of one logical access).
func (l *WorkingSetLog) record(region string, first, pages int, pool string) {
	if n := len(l.entries); n > 0 {
		last := &l.entries[n-1]
		if last.Region == region && last.Pool == pool && first == last.First+last.Pages {
			last.Pages += pages
			return
		}
	}
	l.entries = append(l.entries, WSFetch{Region: region, First: first, Pages: pages, Pool: pool})
}

// SetWorkingSetLog attaches a log that subsequent accesses record
// first-run fetch runs into (when the log is in recording mode). Pass
// nil to detach.
func (as *AddressSpace) SetWorkingSetLog(l *WorkingSetLog) { as.wslog = l }

// SetClock supplies the current virtual time, used to charge the
// residual wait when a demand access lands on a page whose prefetch
// batch is still in flight. Without a clock in-flight pages cost only
// their minor-fault wake.
func (as *AddressSpace) SetClock(clock func() time.Duration) { as.clock = clock }

// MarkInFlight delivers pages [first, first+count) of v from a batched
// prefetch landing at virtual time readyAt: still-lazy pages flip to
// Local (their DRAM is claimed now) but remember the batch deadline,
// so a demand access before readyAt parks on the batch — charging the
// remaining wait plus a minor-fault wake — instead of issuing its own
// fetch. Pages not in RemoteLazy state are skipped. Returns the number
// of pages marked.
func (as *AddressSpace) MarkInFlight(v *VMA, first, count int, readyAt time.Duration) (int, error) {
	if first < 0 || count <= 0 || first+count > v.Pages() {
		return 0, fmt.Errorf("pagetable: MarkInFlight [%d,%d) outside VMA %q", first, first+count, v.Name)
	}
	var marked int
	for i := first; i < first+count; i++ {
		if v.states[i] == RemoteLazy {
			marked++
		}
	}
	if marked == 0 {
		return 0, nil
	}
	if err := as.allocLocal(int64(marked) * mem.PageSize); err != nil {
		return 0, err
	}
	if v.inflight == nil {
		v.inflight = make(map[int]time.Duration)
	}
	for i := first; i < first+count; i++ {
		if v.states[i] == RemoteLazy {
			v.inflight[i] = readyAt
			v.setState(i, Local)
		}
	}
	as.stats.PrefetchedPages += int64(marked)
	if as.sink != nil {
		as.sink.PrefetchedPages += int64(marked)
	}
	return marked, nil
}

// PromoteRange redirects still-lazy pages [first, first+count) of v at
// cache, a byte-addressable promotion-cache pool: they become
// RemoteDirect, so later reads cost a direct-access hit instead of a
// demand fetch round trip (writes still CoW into local DRAM). Pages
// already local or unmapped are skipped. Returns the number of pages
// promoted.
func (as *AddressSpace) PromoteRange(v *VMA, first, count int, cache *mem.Pool) (int, error) {
	if cache == nil || !cache.Kind().ByteAddressable() {
		return 0, fmt.Errorf("pagetable: PromoteRange requires a byte-addressable cache pool")
	}
	if first < 0 || count <= 0 || first+count > v.Pages() {
		return 0, fmt.Errorf("pagetable: PromoteRange [%d,%d) outside VMA %q", first, first+count, v.Name)
	}
	var n int
	for i := first; i < first+count; i++ {
		if v.states[i] != RemoteLazy {
			continue
		}
		if v.redirect == nil {
			v.redirect = make(map[int]*mem.Pool)
		}
		v.redirect[i] = cache
		v.setState(i, RemoteDirect)
		n++
	}
	return n, nil
}
