package pagetable

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/mem"
)

// TestBatchWaitInsteadOfDuplicateFetch is the in-flight contract: a
// demand access landing on pages a prefetch batch covers parks on the
// batch deadline (charging the residual wait plus minor-fault wakes)
// and issues no fetch of its own.
func TestBatchWaitInsteadOfDuplicateFetch(t *testing.T) {
	as, _ := newAS(t, 0)
	pool := rdmaPool()
	v, _ := as.AddVMA("img", 0, 100, Read|Write, Anon, pool, 0, RemoteLazy)
	as.SetClock(func() time.Duration { return 10 * time.Microsecond })
	marked, err := as.MarkInFlight(v, 0, 40, 50*time.Microsecond)
	if err != nil || marked != 40 {
		t.Fatalf("MarkInFlight = %d, %v", marked, err)
	}
	fetchesBefore := pool.Fetches()
	rng := rand.New(rand.NewSource(1))
	res, err := as.Access(rng, v, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefetchHits != 40 {
		t.Fatalf("prefetch hits = %d, want 40", res.PrefetchHits)
	}
	if res.FetchedPages != 0 || pool.Fetches() != fetchesBefore {
		t.Fatalf("demand access duplicated the fetch: pages=%d pool fetches %d -> %d",
			res.FetchedPages, fetchesBefore, pool.Fetches())
	}
	if res.MajorFaults != 0 {
		t.Fatalf("major faults = %d on in-flight pages", res.MajorFaults)
	}
	// Residual wait: batch lands at 50us, access at 10us -> 40us parked,
	// charged once for the whole overlapping range.
	if res.PrefetchWait != 40*time.Microsecond {
		t.Fatalf("prefetch wait = %v, want 40us", res.PrefetchWait)
	}
	want := res.PrefetchWait + 40*as.lat.MinorFaultOverhead
	if res.Latency != want {
		t.Fatalf("latency = %v, want wait+wakes = %v", res.Latency, want)
	}
	// The deadline is consumed: a second pass is an ordinary resident
	// access with no wait.
	res2, _ := as.Access(rng, v, 40, 0)
	if res2.PrefetchHits != 0 || res2.PrefetchWait != 0 || res2.Latency != 0 {
		t.Fatalf("second access not free: %+v", res2)
	}
}

// TestBatchWaitAfterDeadlineIsFree checks the already-landed case: when
// the clock has passed the batch deadline only the minor-fault wake is
// charged.
func TestBatchWaitAfterDeadlineIsFree(t *testing.T) {
	as, _ := newAS(t, 0)
	pool := rdmaPool()
	v, _ := as.AddVMA("img", 0, 10, Read|Write, Anon, pool, 0, RemoteLazy)
	as.SetClock(func() time.Duration { return time.Millisecond })
	if _, err := as.MarkInFlight(v, 0, 10, 20*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	res, err := as.Access(rand.New(rand.NewSource(1)), v, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefetchWait != 0 {
		t.Fatalf("wait = %v for a landed batch", res.PrefetchWait)
	}
	if res.Latency != 10*as.lat.MinorFaultOverhead {
		t.Fatalf("latency = %v, want pure wakes", res.Latency)
	}
}

// TestMarkInFlightSkipsResidentAndAccounts: only RemoteLazy pages are
// marked, their DRAM is claimed up front, and the prefetched-page stats
// flow to the sink.
func TestMarkInFlightSkipsResidentAndAccounts(t *testing.T) {
	as, tr := newAS(t, 0)
	v, _ := as.AddVMA("img", 0, 20, Read|Write, Anon, rdmaPool(), 0, RemoteLazy)
	rng := rand.New(rand.NewSource(1))
	if _, err := as.Access(rng, v, 5, 0); err != nil { // pages 0-4 now local
		t.Fatal(err)
	}
	var sink Stats
	as.SetStatsSink(&sink)
	marked, err := as.MarkInFlight(v, 0, 20, time.Microsecond)
	if err != nil || marked != 15 {
		t.Fatalf("marked = %d, %v; want 15 (5 already resident)", marked, err)
	}
	if tr.Used() != 20*mem.PageSize {
		t.Fatalf("tracker used %d, want all 20 pages", tr.Used())
	}
	if as.Stats().PrefetchedPages != 15 || sink.PrefetchedPages != 15 {
		t.Fatalf("prefetched stats = %d/%d, want 15", as.Stats().PrefetchedPages, sink.PrefetchedPages)
	}
}

// TestPromoteRangeRedirectsAtCache: promoted pages become RemoteDirect
// against the cache pool while the VMA's own backing stays put.
func TestPromoteRangeRedirectsAtCache(t *testing.T) {
	as, _ := newAS(t, 0)
	pool := rdmaPool()
	v, _ := as.AddVMA("img", 0, 10, Read|Write, Anon, pool, 0, RemoteLazy)
	cache := mem.NewPromotionCache(1<<20, mem.DefaultLatencyModel())
	if _, err := as.PromoteRange(v, 0, 10, pool); err == nil {
		t.Fatal("PromoteRange accepted a non-byte-addressable cache")
	}
	n, err := as.PromoteRange(v, 0, 10, cache.Pool())
	if err != nil || n != 10 {
		t.Fatalf("promoted = %d, %v", n, err)
	}
	if v.PageState(0) != RemoteDirect || v.PoolAt(0) != cache.Pool() {
		t.Fatalf("page 0 state=%v pool=%v, want direct at cache", v.PageState(0), v.PoolAt(0))
	}
	res, err := as.Access(rand.New(rand.NewSource(1)), v, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FetchedPages != 0 || res.DirectPages != 10 {
		t.Fatalf("promoted access fetched=%d direct=%d, want 0/10", res.FetchedPages, res.DirectPages)
	}
	if pool.Fetches() != 0 {
		t.Fatal("promoted access hit the origin pool")
	}
}

// TestWorkingSetLogLifecycle: single recorder, merge of adjacent runs,
// seal immutability, abort reclaim.
func TestWorkingSetLogLifecycle(t *testing.T) {
	l := &WorkingSetLog{}
	if !l.StartRecording() {
		t.Fatal("first claim refused")
	}
	if l.StartRecording() {
		t.Fatal("second recorder admitted")
	}
	l.record("heap", 0, 4, "rdma")
	l.record("heap", 4, 2, "rdma") // extends -> merged
	l.record("heap", 8, 1, "rdma") // gap -> new entry
	if len(l.Entries()) != 2 || l.Entries()[0].Pages != 6 || l.Pages() != 7 {
		t.Fatalf("entries = %+v", l.Entries())
	}
	l.AbortRecording()
	if l.Sealed() || len(l.Entries()) != 0 {
		t.Fatalf("abort kept state: sealed=%v entries=%d", l.Sealed(), len(l.Entries()))
	}
	if !l.StartRecording() {
		t.Fatal("reclaim after abort refused")
	}
	l.record("heap", 0, 3, "rdma")
	l.Seal()
	if !l.Sealed() || l.StartRecording() {
		t.Fatal("sealed log accepted a recorder")
	}
	l.AbortRecording() // no-op once sealed
	if len(l.Entries()) != 1 {
		t.Fatal("AbortRecording mutated a sealed log")
	}
}

// TestRecorderDeterminism: two identical access sequences against
// same-seed rngs record byte-identical working-set logs.
func TestRecorderDeterminism(t *testing.T) {
	run := func() []WSFetch {
		as, _ := newAS(t, 0)
		v, _ := as.AddVMA("img", 0, 200, Read|Write, Anon, rdmaPool(), 0, RemoteLazy)
		l := &WorkingSetLog{}
		l.StartRecording()
		as.SetWorkingSetLog(l)
		rng := rand.New(rand.NewSource(42))
		for _, span := range [][2]int{{120, 30}, {10, 5}, {60, 60}} {
			if _, err := as.Access(rng, v, span[0], span[1]); err != nil {
				t.Fatal(err)
			}
		}
		l.Seal()
		return l.Entries()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("nothing recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed logs differ:\n%+v\n%+v", a, b)
	}
}
