package faas

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// hedgePlatform builds a TrEnv-CXL platform with every Table 4 function
// registered, capturing terminal outcomes.
func hedgePlatform(t *testing.T, tweak func(*Config)) (*Platform, *[]InvocationResult) {
	t.Helper()
	results := new([]InvocationResult)
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.Node = "n0"
	cfg.OnResult = func(r InvocationResult) { *results = append(*results, r) }
	if tweak != nil {
		tweak(&cfg)
	}
	pl := New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	return pl, results
}

// TestCancelledAttemptReleasesAccounting: cancelling an attempt
// mid-execution aborts it at the next checkpoint with OutcomeCancelled
// and unwinds its instance accounting completely — no memory stays
// charged, unlike a successful invocation whose warm instance lingers.
func TestCancelledAttemptReleasesAccounting(t *testing.T) {
	pl, results := hedgePlatform(t, nil)
	before := pl.UsedMemory()
	tok := NewCancelToken("race")
	pl.Engine().At(0, "dispatch/JS", func(p *sim.Proc) {
		pl.InvokeAttempt(p, "JS", "test", tok)
	})
	// JS executes for ~100ms; 10ms lands mid-exec, after the instance
	// was admitted and started.
	pl.Engine().At(10*time.Millisecond, "cancel", func(p *sim.Proc) {
		tok.Cancel("hedge-lost", "winner-trace")
	})
	pl.Engine().Run()

	if len(*results) != 1 {
		t.Fatalf("results = %d, want 1", len(*results))
	}
	r := (*results)[0]
	if r.Outcome != OutcomeCancelled {
		t.Fatalf("outcome %q, want %q", r.Outcome, OutcomeCancelled)
	}
	var ec *ErrCancelled
	if !errors.As(r.Err, &ec) || ec.Reason != "hedge-lost" || ec.Winner != "winner-trace" {
		t.Fatalf("error %v (%T), want *ErrCancelled{hedge-lost, winner-trace}", r.Err, r.Err)
	}
	if r.Token != tok {
		t.Fatal("result does not carry the attempt's cancel token")
	}
	if pl.Metrics().Cancelled.Value() != 1 {
		t.Fatalf("cancelled counter = %d, want 1", pl.Metrics().Cancelled.Value())
	}
	if used := pl.UsedMemory(); used != before {
		t.Fatalf("used memory = %d after cancel, want %d (instance accounting must unwind)", used, before)
	}
	if pl.Active() != 0 {
		t.Fatalf("active = %d after drain", pl.Active())
	}
}

// TestPreCancelledAttemptAbortsAtAdmission: a token cancelled before
// the attempt reaches the platform aborts at the first checkpoint —
// before any instance exists — still delivering a terminal outcome.
func TestPreCancelledAttemptAbortsAtAdmission(t *testing.T) {
	pl, results := hedgePlatform(t, nil)
	tok := NewCancelToken(nil)
	tok.Cancel("hedge-lost", "")
	pl.Engine().At(0, "dispatch/JS", func(p *sim.Proc) {
		pl.InvokeAttempt(p, "JS", "test", tok)
	})
	pl.Engine().Run()

	if len(*results) != 1 || (*results)[0].Outcome != OutcomeCancelled {
		t.Fatalf("results = %+v, want one cancelled outcome", *results)
	}
	if pl.Metrics().Cancelled.Value() != 1 {
		t.Fatalf("cancelled counter = %d, want 1 (aborts are recorded, not lost)", pl.Metrics().Cancelled.Value())
	}
	if pl.UsedMemory() != 0 {
		t.Fatalf("used memory = %d, want 0 (no instance was ever built)", pl.UsedMemory())
	}
}

// TestDeadlineExceeded: an invocation that outlives Config.Deadline is
// abandoned at a checkpoint with OutcomeDeadline and a typed error; a
// generous deadline leaves the same invocation untouched.
func TestDeadlineExceeded(t *testing.T) {
	pl, results := hedgePlatform(t, func(cfg *Config) { cfg.Deadline = time.Millisecond })
	pl.Invoke(0, "JS") // JS runs ~100ms, far past the 1ms deadline
	pl.Engine().Run()

	if len(*results) != 1 {
		t.Fatalf("results = %d, want 1", len(*results))
	}
	r := (*results)[0]
	if r.Outcome != OutcomeDeadline {
		t.Fatalf("outcome %q, want %q", r.Outcome, OutcomeDeadline)
	}
	var ed *ErrDeadlineExceeded
	if !errors.As(r.Err, &ed) || ed.Function != "JS" || ed.Deadline != time.Millisecond {
		t.Fatalf("error %v (%T), want *ErrDeadlineExceeded{JS, 1ms}", r.Err, r.Err)
	}
	if pl.Metrics().DeadlineExceeded.Value() != 1 {
		t.Fatalf("deadline counter = %d, want 1", pl.Metrics().DeadlineExceeded.Value())
	}
	if pl.UsedMemory() != 0 {
		t.Fatalf("used memory = %d, want 0 (deadline abort must unwind accounting)", pl.UsedMemory())
	}
}

// TestDeadlineMet: with a deadline comfortably above the invocation's
// latency the outcome is plain success and nothing is charged to the
// deadline counter.
func TestDeadlineMet(t *testing.T) {
	pl, results := hedgePlatform(t, func(cfg *Config) { cfg.Deadline = time.Hour })
	pl.Invoke(0, "JS")
	pl.Engine().Run()

	if len(*results) != 1 || (*results)[0].Outcome != OutcomeSuccess {
		t.Fatalf("results = %+v, want one success", *results)
	}
	if pl.Metrics().DeadlineExceeded.Value() != 0 {
		t.Fatalf("deadline counter = %d, want 0", pl.Metrics().DeadlineExceeded.Value())
	}
}

// TestCancelTokenNilSafety: every CancelToken method must be nil-safe —
// the invoke path checks tokens unconditionally.
func TestCancelTokenNilSafety(t *testing.T) {
	var tok *CancelToken
	tok.Cancel("x", "y")
	if tok.Cancelled() || tok.TraceID() != "" || tok.Meta() != nil {
		t.Fatal("nil token must read as never-cancelled and empty")
	}
	tok = NewCancelToken(42)
	if tok.Cancelled() {
		t.Fatal("fresh token reads cancelled")
	}
	tok.Cancel("first", "w1")
	tok.Cancel("second", "w2") // one-way latch: the first cancel sticks
	if !tok.Cancelled() || tok.Meta() != 42 {
		t.Fatal("token lost its latch or meta")
	}
	if tok.reason != "first" || tok.winner != "w1" {
		t.Fatalf("latch overwritten: reason=%q winner=%q", tok.reason, tok.winner)
	}
}
