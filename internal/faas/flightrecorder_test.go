package faas

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

func TestPlatformRecorderSamplesRun(t *testing.T) {
	pl := newPlatform(t, PolicyTrEnvCXL)
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	rec := obs.NewRecorder(reg, 0)
	pl.AttachRecorder(rec, time.Second)

	tr := smallTrace(1)
	pl.RunTrace(tr)

	if rec.Samples() == 0 {
		t.Fatal("recorder never sampled")
	}
	inv := rec.Lookup("trenv_invocations_total", nil)
	if inv == nil {
		t.Fatal("no invocation series recorded")
	}
	last := inv.Last()
	if int(last.Value) != pl.Metrics().Invocations() {
		t.Fatalf("final sampled invocations = %v, metrics say %d", last.Value, pl.Metrics().Invocations())
	}
	if last.T < tr.Duration() {
		t.Fatalf("pump stopped at %v, before trace end %v", last.T, tr.Duration())
	}
	// Fault counters flow from pagetable through the runtime aggregate.
	if pl.FaultStats().MinorFaults == 0 {
		t.Fatal("node fault aggregate never incremented")
	}
	if ts := rec.Lookup("trenv_page_minor_faults_total", nil); ts == nil || ts.Last().Value == 0 {
		t.Fatal("fault series missing from recorder")
	}
	// Template sharing series exist for TrEnv policies.
	if ts := rec.Lookup("trenv_template_sharing_factor", nil); ts == nil || ts.Last().Value <= 0 {
		t.Fatal("sharing factor series missing")
	}
}

func TestPlatformRecorderDeterministic(t *testing.T) {
	run := func() string {
		pl := newPlatform(t, PolicyTrEnvCXL)
		reg := obs.NewRegistry()
		pl.RegisterMetrics(reg)
		rec := obs.NewRecorder(reg, 0)
		pl.AttachRecorder(rec, time.Second)
		pl.RunTrace(smallTrace(42))
		var buf bytes.Buffer
		if err := rec.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("same-seed recorder exports differ")
	}
}

func TestPlatformSLOTracking(t *testing.T) {
	cfg := DefaultConfig(PolicyFaasd)
	cfg.SLOTarget = time.Millisecond // impossibly tight: every cold start breaches
	pl := New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	pl.RunTrace(smallTrace(3))

	slo := pl.SLO()
	if slo == nil {
		t.Fatal("SLO tracker not created")
	}
	fns := slo.Functions()
	if len(fns) == 0 {
		t.Fatal("no functions tracked")
	}
	var total, breaches int64
	for _, fn := range fns {
		total += slo.Total(fn)
		breaches += slo.Breaches(fn)
	}
	if total != int64(pl.Metrics().Invocations()) {
		t.Fatalf("SLO events %d != invocations %d", total, pl.Metrics().Invocations())
	}
	if breaches == 0 {
		t.Fatal("1ms target breached by nothing?")
	}

	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE trenv_slo_burn_rate gauge",
		"trenv_slo_breaches_total{function=",
		`window="1m0s"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterMetricsLabeledKeepsNodesApart(t *testing.T) {
	reg := obs.NewRegistry()
	for i, seed := range []int64{1, 2} {
		cfg := DefaultConfig(PolicyFaasd)
		cfg.Seed = seed
		pl := New(cfg)
		for _, p := range workload.Table4() {
			if err := pl.Register(p); err != nil {
				t.Fatal(err)
			}
		}
		pl.RunTrace(smallTrace(seed))
		pl.RegisterMetricsLabeled(reg, map[string]string{"node": []string{"n0", "n1"}[i]})
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`trenv_invocations_total{node="n0"}`,
		`trenv_invocations_total{node="n1"}`,
		`trenv_node_mem_peak_bytes{node="n0"}`,
		`trenv_page_minor_faults_total{node="n1"}`,
		`trenv_e2e_latency_ms_count{function="_all",node="n0"}`,
		`trenv_pool_used_bytes{node="n1",pool="tmpfs"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet registry missing %q", want)
		}
	}
}
