package faas

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func mustProfile(t *testing.T, name string) workload.FunctionProfile {
	t.Helper()
	p, err := workload.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHotPromotionRemovesCXLPenalty exercises the §9.2.1 tuning: after a
// kept-alive instance has served enough invocations, its hot working set
// is copied into node DRAM and execution stops paying the remote-access
// inflation.
func TestHotPromotionRemovesCXLPenalty(t *testing.T) {
	run := func(promote int) (warmExecMs float64, peak int64) {
		cfg := DefaultConfig(PolicyTrEnvCXL)
		cfg.PromoteHotAfter = promote
		pl := New(cfg)
		pl.Register(mustProfile(t, "DH")) // CXLExecFactor 0.8: doubles on CXL
		for i := 0; i < 6; i++ {
			pl.Invoke(time.Duration(i)*5*time.Second, "DH")
		}
		pl.Engine().Run()
		if pl.Metrics().Errors.Value() != 0 {
			t.Fatalf("errors = %d", pl.Metrics().Errors.Value())
		}
		// Last warm executions reflect the steady state.
		return pl.Metrics().Fn("DH").Exec.Min(), pl.PeakMemory()
	}
	noPromo, peakNo := run(0)
	promo, peakYes := run(2)
	if promo >= noPromo {
		t.Fatalf("promotion did not speed warm exec: %v vs %v ms", promo, noPromo)
	}
	// Without inflation DH runs at ~base (60ms); with it, ~104ms.
	if promo > 70 {
		t.Fatalf("promoted exec = %.1fms, want ~base 60ms", promo)
	}
	// The speed costs memory: promoted pages are local now.
	if peakYes <= peakNo {
		t.Fatalf("promotion should raise node memory: %d vs %d", peakYes, peakNo)
	}
}

func TestPromotionCountsMetric(t *testing.T) {
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.PromoteHotAfter = 1
	pl := New(cfg)
	pl.Register(mustProfile(t, "JS"))
	// Three warm rounds: the second promotes, the third is a no-op (all
	// pages already local, so Promotions must stay at 1).
	pl.Invoke(0, "JS")
	pl.Invoke(10*time.Second, "JS")
	pl.Invoke(20*time.Second, "JS")
	pl.Engine().Run()
	if pl.Metrics().Promotions.Value() != 1 {
		t.Fatalf("promotions = %d, want exactly 1 (idempotent)", pl.Metrics().Promotions.Value())
	}
}
