package faas

// Cooperative cancellation and per-invocation deadlines. The hedging
// layer in internal/cluster races clone attempts of one invocation
// across nodes and cancels the losers; the platform aborts a cancelled
// attempt at the same checkpoints a node crash uses (post-admit,
// post-start, post-exec), unwinding its instance and page accounting
// with no simulated cost — nothing useful runs on a loser once the race
// has settled, so teardown models as free, exactly like crash cleanup.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

const (
	// OutcomeCancelled was cooperatively cancelled by its dispatcher —
	// it lost a hedge race. Its instance accounting is unwound like a
	// crash abort's; another attempt of the same invocation won.
	OutcomeCancelled Outcome = "cancelled"
	// OutcomeDeadline exceeded its per-invocation deadline
	// (Config.Deadline) and was abandoned at a checkpoint.
	OutcomeDeadline Outcome = "deadline-exceeded"
	// OutcomeRedispatchExhausted is synthesized by clusters when an
	// invocation burned through its crash re-dispatch budget; no
	// platform ever produces it directly.
	OutcomeRedispatchExhausted Outcome = "redispatch-exhausted"
)

// ErrCancelled reports an attempt cancelled by its dispatcher after a
// sibling attempt won the hedge race.
type ErrCancelled struct {
	Reason string // why the dispatcher cancelled ("hedge-lost")
	Winner string // trace ID of the attempt that won ("" when none)
}

func (e *ErrCancelled) Error() string {
	if e.Winner == "" {
		return fmt.Sprintf("faas: attempt cancelled (%s)", e.Reason)
	}
	return fmt.Sprintf("faas: attempt cancelled (%s, winner %s)", e.Reason, e.Winner)
}

// ErrDeadlineExceeded reports an invocation that blew through its
// per-invocation deadline.
type ErrDeadlineExceeded struct {
	Function string
	Deadline time.Duration
}

func (e *ErrDeadlineExceeded) Error() string {
	return fmt.Sprintf("faas: %s exceeded its %s deadline", e.Function, e.Deadline)
}

// CancelToken lets a dispatcher cancel one in-flight attempt
// cooperatively: the attempt observes the token at its next checkpoint
// and terminates with OutcomeCancelled. Cancellation is a one-way
// latch — cancelling an already-terminal attempt is harmless.
type CancelToken struct {
	cancelled bool
	reason    string
	winner    string
	traceID   string
	meta      any
}

// NewCancelToken returns an armed token. meta rides along for the
// dispatcher's own bookkeeping (the cluster hedger stores its race
// group there) and comes back via Meta on the attempt's result.
func NewCancelToken(meta any) *CancelToken { return &CancelToken{meta: meta} }

// Cancel latches the token. reason explains why; winner is the trace ID
// of the attempt that made this one redundant ("" when none).
func (t *CancelToken) Cancel(reason, winner string) {
	if t == nil || t.cancelled {
		return
	}
	t.cancelled = true
	t.reason = reason
	t.winner = winner
}

// Cancelled reports whether Cancel has been called. Nil-safe, so the
// invoke path checks it unconditionally.
func (t *CancelToken) Cancelled() bool { return t != nil && t.cancelled }

// TraceID returns the attempt's trace ID, stamped when the attempt
// entered a platform ("" before that).
func (t *CancelToken) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Meta returns the dispatcher bookkeeping value passed to
// NewCancelToken (nil for a nil token).
func (t *CancelToken) Meta() any {
	if t == nil {
		return nil
	}
	return t.meta
}

func (t *CancelToken) setTrace(id string) {
	if t != nil {
		t.traceID = id
	}
}

// SetDeadline sets (or clears, with 0) the per-invocation deadline for
// every invocation dispatched after the call — clusters use it to push
// a hedge policy's deadline onto each node.
func (pl *Platform) SetDeadline(d time.Duration) { pl.cfg.Deadline = d }

// InvokeAttempt is InvokeDispatched for one attempt of a possibly
// hedged invocation: tok lets the dispatcher cancel the attempt
// cooperatively, and the terminal InvocationResult carries the token so
// the dispatcher can map results back to their race.
func (pl *Platform) InvokeAttempt(p *sim.Proc, function, dispatcher string, tok *CancelToken) {
	pl.pendingDispatch = dispatcher
	pl.pendingToken = tok
	pl.invoke(p, function)
}

// abortCancelled terminates an attempt whose dispatcher cancelled it:
// the held instance's accounting is unwound (crash-style, no simulated
// cost) and the outcome is OutcomeCancelled, span-linked to the winning
// attempt so the race is walkable loser → winner.
func (pl *Platform) abortCancelled(res *InvocationResult, tok *CancelToken, traceID, name string, t0 time.Duration, in *core.Instance) {
	if in != nil {
		pl.rt.ReleaseCrashed(in)
	}
	err := &ErrCancelled{Reason: tok.reason, Winner: tok.winner}
	res.Outcome = OutcomeCancelled
	res.Err = err
	pl.metrics.Cancelled.Inc()
	if pl.tracer != nil {
		sp := obs.NewSpan("invoke/"+name, t0, pl.eng.Now())
		sp.SetAttr("function", name).SetAttr("policy", string(pl.cfg.Policy)).
			SetAttr("node", pl.nodeName).SetAttr("error_type", "cancelled").
			SetAttr("cancel_reason", tok.reason)
		if tok.winner != "" {
			sp.AddLink(obs.Link{TraceID: tok.winner, Type: "hedge-lost"})
		}
		sp.Fail(err)
		sp.AssignIDs(traceID)
		pl.tracer.Record(sp)
	}
}

// abortDeadline terminates an attempt that overran Config.Deadline; the
// held instance's accounting is unwound like a cancellation's.
func (pl *Platform) abortDeadline(res *InvocationResult, traceID, name string, t0 time.Duration, in *core.Instance) {
	if in != nil {
		pl.rt.ReleaseCrashed(in)
	}
	err := &ErrDeadlineExceeded{Function: name, Deadline: pl.cfg.Deadline}
	res.Outcome = OutcomeDeadline
	res.Err = err
	pl.metrics.DeadlineExceeded.Inc()
	if pl.tracer != nil {
		sp := obs.NewSpan("invoke/"+name, t0, pl.eng.Now())
		sp.SetAttr("function", name).SetAttr("policy", string(pl.cfg.Policy)).
			SetAttr("node", pl.nodeName).SetAttr("error_type", "deadline-exceeded")
		sp.Fail(err)
		sp.AssignIDs(traceID)
		pl.tracer.Record(sp)
	}
}
