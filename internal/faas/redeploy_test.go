package faas

import (
	"testing"
	"time"
)

func TestRedeployReplacesImageAndDrainsWarm(t *testing.T) {
	pl := New(DefaultConfig(PolicyTrEnvCXL))
	js := mustProfile(t, "JS")
	if err := pl.Register(js); err != nil {
		t.Fatal(err)
	}
	pl.Invoke(0, "JS")
	pl.Engine().RunUntil(5 * time.Second) // first version served; instance warm
	if pl.WarmCount() != 1 {
		t.Fatalf("warm = %d", pl.WarmCount())
	}
	poolBefore, _, _ := pl.PoolUsage()
	oldImg := pl.Store().Image("JS")

	// Redeploy a new version (bigger heap).
	v2 := js
	v2.MemBytes = js.MemBytes + (32 << 20)
	if err := pl.Redeploy(v2); err != nil {
		t.Fatal(err)
	}
	pl.Engine().RunUntil(6 * time.Second) // drain runs
	if pl.WarmCount() != 0 {
		t.Fatal("stale warm instances not drained")
	}
	newImg := pl.Store().Image("JS")
	if newImg == oldImg || newImg == nil {
		t.Fatal("image not replaced")
	}
	// Retired blocks released: pool holds one version (plus dedup'd
	// shared content), not two.
	poolAfter, _, _ := pl.PoolUsage()
	if poolAfter >= poolBefore+v2.MemBytes {
		t.Fatalf("old image not released: %d -> %d", poolBefore, poolAfter)
	}

	// New invocations attach the new template.
	pl.Invoke(6*time.Second, "JS")
	pl.Engine().Run()
	var attaches int64
	for _, tpl := range newImg.Templates {
		attaches += tpl.Attaches()
	}
	if attaches != 1 {
		t.Fatalf("new image attaches = %d", attaches)
	}
	if pl.Metrics().Errors.Value() != 0 {
		t.Fatalf("errors = %d", pl.Metrics().Errors.Value())
	}
}

func TestRedeployValidation(t *testing.T) {
	pl := New(DefaultConfig(PolicyTrEnvCXL))
	if err := pl.Redeploy(mustProfile(t, "JS")); err == nil {
		t.Fatal("redeploy of unregistered function accepted")
	}
	plc := New(DefaultConfig(PolicyCRIU))
	js := mustProfile(t, "JS")
	plc.Register(js)
	if err := plc.Redeploy(js); err == nil {
		t.Fatal("redeploy on a non-template policy accepted")
	}
}
