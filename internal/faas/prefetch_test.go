package faas

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// prefetchPlatform builds a TrEnv-CXL platform with a cold tail on RDMA
// (so restores demand-fault lazily) and working-set prefetching on.
func prefetchPlatform(t *testing.T, on bool, promoteAfter int) *Platform {
	t.Helper()
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.HotFraction = 0.4
	cfg.KeepAlive = 5 * time.Second // force template restores between rounds
	cfg.Prefetch = on
	cfg.PromoteThreshold = promoteAfter
	pl := New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	return pl
}

// invokeRounds spaces n invocations of fn farther apart than the
// keep-alive window, so each one restores from the template.
func invokeRounds(pl *Platform, fn string, n int) {
	for i := 0; i < n; i++ {
		pl.Invoke(time.Duration(i)*30*time.Second, fn)
	}
	pl.Engine().Run()
}

// TestWorkingSetRecorderDeterminism is the seed-stability contract: two
// identical platforms record byte-identical working-set logs for the
// same function's first run.
func TestWorkingSetRecorderDeterminism(t *testing.T) {
	run := func() *Platform {
		pl := prefetchPlatform(t, true, 0)
		invokeRounds(pl, "DH", 1)
		return pl
	}
	a, b := run(), run()
	la := a.Store().Image("DH").WSLog
	lb := b.Store().Image("DH").WSLog
	if la == nil || !la.Sealed() {
		t.Fatalf("log not sealed after first run: %+v", la)
	}
	if len(la.Entries()) == 0 {
		t.Fatal("first run recorded nothing (no lazy tail?)")
	}
	if !reflect.DeepEqual(la.Entries(), lb.Entries()) {
		t.Fatalf("same-seed logs differ:\n%+v\n%+v", la.Entries(), lb.Entries())
	}
	if a.Metrics().PrefetchRecordings.Value() != 1 {
		t.Fatalf("recordings = %d, want 1", a.Metrics().PrefetchRecordings.Value())
	}
}

// TestPrefetchReplayAbsorbsDemandFaults: with prefetch on, restores
// after the first replay the log as batches, so exec demand fetches
// drop and prefetch hits appear; the run stays strictly no slower.
func TestPrefetchReplayAbsorbsDemandFaults(t *testing.T) {
	on := prefetchPlatform(t, true, 0)
	invokeRounds(on, "DH", 4)
	off := prefetchPlatform(t, false, 0)
	invokeRounds(off, "DH", 4)

	if on.Metrics().Errors.Value()+off.Metrics().Errors.Value() != 0 {
		t.Fatalf("errors: on=%d off=%d", on.Metrics().Errors.Value(), off.Metrics().Errors.Value())
	}
	if v := on.Metrics().PrefetchLaunches.Value(); v != 3 { // rounds 2-4 replay
		t.Fatalf("launches = %d, want 3", v)
	}
	if on.Metrics().PrefetchBatches.Value() == 0 || on.Metrics().PrefetchHits.Value() == 0 {
		t.Fatalf("replay idle: batches=%d hits=%d",
			on.Metrics().PrefetchBatches.Value(), on.Metrics().PrefetchHits.Value())
	}
	onDemand := on.FaultStats().FetchedPages
	offDemand := off.FaultStats().FetchedPages
	if onDemand >= offDemand {
		t.Fatalf("prefetch did not absorb demand faults: %d >= %d", onDemand, offDemand)
	}
	if got := on.FaultStats().PrefetchedPages; got == 0 {
		t.Fatal("no pages prefetched")
	}
	// Prefetched pages were delivered off the critical path: e2e must not
	// regress versus demand faulting.
	onP99 := on.Metrics().All.E2E.Percentile(99)
	offP99 := off.Metrics().All.E2E.Percentile(99)
	if onP99 > offP99 {
		t.Fatalf("prefetch slowed e2e p99: %v > %v", onP99, offP99)
	}
}

// TestHotRunPromotion: with a promotion threshold, the replayed run
// moves into the direct-access cache once its replay count crosses it;
// later restores redirect instead of batching.
func TestHotRunPromotion(t *testing.T) {
	pl := prefetchPlatform(t, true, 2)
	invokeRounds(pl, "DH", 5)
	if pl.Metrics().Errors.Value() != 0 {
		t.Fatalf("errors = %d", pl.Metrics().Errors.Value())
	}
	if pl.PromotionCache() == nil {
		t.Fatal("promotion cache not wired")
	}
	if pl.Metrics().PromotedPages.Value() == 0 {
		t.Fatal("no pages promoted after threshold crossings")
	}
	if pl.PromotionCache().Promotions() == 0 {
		t.Fatal("cache recorded no promotions")
	}
	if pl.PromotionCache().Pool().Tracker().Used() == 0 {
		t.Fatal("promotion cache holds no bytes")
	}
}

// TestPrefetchOffLeavesNoTrace: with the flag off (the default), none
// of the prefetch machinery is wired or counted.
func TestPrefetchOffLeavesNoTrace(t *testing.T) {
	pl := prefetchPlatform(t, false, 2)
	invokeRounds(pl, "DH", 3)
	if pl.Prefetcher() != nil || pl.PromotionCache() != nil {
		t.Fatal("prefetcher wired with Prefetch=false")
	}
	m := pl.Metrics()
	if m.PrefetchRecordings.Value()+m.PrefetchLaunches.Value()+m.PrefetchHits.Value() != 0 {
		t.Fatal("prefetch counters moved with prefetch off")
	}
	if img := pl.Store().Image("DH"); img.WSLog.Sealed() || len(img.WSLog.Entries()) != 0 {
		t.Fatal("working-set log written with prefetch off")
	}
}

// TestPrefetchDeterministicExport: two same-seed runs with prefetch and
// promotion enabled export byte-identical Prometheus text — the
// prefetcher introduces no hidden nondeterminism.
func TestPrefetchDeterministicExport(t *testing.T) {
	render := func() string {
		pl := prefetchPlatform(t, true, 2)
		reg := obs.NewRegistry()
		pl.RegisterMetrics(reg)
		pl.RunTrace(smallTrace(7))
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("same-seed prefetch runs exported different metrics")
	}
	if !bytes.Contains([]byte(a), []byte("trenv_prefetch_batches_total")) {
		t.Fatal("prefetch series missing from export")
	}
}
