package faas

import (
	"testing"
	"time"
)

// TestCleanAfterUseScrubsBetweenRequests verifies the Groundhog-style
// mode (§10): a kept-alive instance serves each request from a pristine
// memory state, so the second warm invocation pays the same CoW work as
// the first instead of inheriting its pages.
func TestCleanAfterUseScrubsBetweenRequests(t *testing.T) {
	exec2 := func(clean bool) (first, second float64, scrubs int64) {
		cfg := DefaultConfig(PolicyTrEnvCXL)
		cfg.CleanAfterUse = clean
		pl := New(cfg)
		pl.Register(mustProfile(t, "JS"))
		pl.Invoke(0, "JS")
		pl.Invoke(30*time.Second, "JS")
		pl.Engine().Run()
		if pl.Metrics().Errors.Value() != 0 {
			t.Fatalf("errors = %d", pl.Metrics().Errors.Value())
		}
		m := pl.Metrics().Fn("JS")
		// Max = first (CoW-laden), Min = second.
		return m.Exec.Max(), m.Exec.Min(), pl.Metrics().CleanRestores.Value()
	}
	_, warmSecond, scrubs := exec2(false)
	cleanFirst, cleanSecond, cleanScrubs := exec2(true)
	if scrubs != 0 {
		t.Fatalf("scrubs without CleanAfterUse = %d", scrubs)
	}
	if cleanScrubs != 2 {
		t.Fatalf("scrubs = %d, want one per invocation", cleanScrubs)
	}
	// Without cleaning, the warm run is faster (pages already CoW'd);
	// with cleaning, both runs pay the same work.
	if warmSecond >= cleanSecond {
		t.Fatalf("clean mode should make warm runs repay CoW: %.2f vs %.2f", warmSecond, cleanSecond)
	}
	if diff := cleanFirst - cleanSecond; diff < 0 {
		diff = -diff
	} else if diff > cleanFirst*0.05 {
		t.Fatalf("clean-mode runs differ: %.2f vs %.2f", cleanFirst, cleanSecond)
	}
}

// TestCleanAfterUseKeepsMemoryFlat: request state does not accumulate
// across warm reuses.
func TestCleanAfterUseKeepsMemoryFlat(t *testing.T) {
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.CleanAfterUse = true
	pl := New(cfg)
	pl.Register(mustProfile(t, "JS"))
	for i := 0; i < 5; i++ {
		pl.Invoke(time.Duration(i)*20*time.Second, "JS")
	}
	pl.Engine().Run()
	if pl.Metrics().Errors.Value() != 0 {
		t.Fatal("errors")
	}
	// After the final expiry everything is released.
	if pl.Node().Used() != 0 {
		t.Fatalf("node memory leaked: %d", pl.Node().Used())
	}
}
