package faas

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

func fnNames() []string {
	var out []string
	for _, p := range workload.Table4() {
		out = append(out, p.Name)
	}
	return out
}

func newPlatform(t *testing.T, policy Policy) *Platform {
	t.Helper()
	pl := New(DefaultConfig(policy))
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatalf("register %s: %v", p.Name, err)
		}
	}
	return pl
}

// smallTrace builds a light bursty trace for fast tests.
func smallTrace(seed int64) workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.W1Config{
		Functions: fnNames(),
		Duration:  3 * time.Minute,
		BurstGap:  90 * time.Second,
		BurstSize: 3,
		BurstSpan: 2 * time.Second,
	}
	return workload.W1Bursty(rng, cfg)
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	pl := newPlatform(t, PolicyTrEnvCXL)
	if err := pl.Register(workload.Table4()[0]); err == nil {
		t.Fatal("duplicate register accepted")
	}
}

func TestInvokeUnknownFunctionCountsError(t *testing.T) {
	pl := New(DefaultConfig(PolicyFaasd))
	pl.Invoke(0, "nope")
	pl.Engine().Run()
	if pl.Metrics().Errors.Value() != 1 {
		t.Fatal("unknown function not flagged")
	}
}

func TestWarmReuseWithinKeepAlive(t *testing.T) {
	pl := newPlatform(t, PolicyTrEnvCXL)
	pl.Invoke(0, "JS")
	pl.Invoke(30*time.Second, "JS") // within keep-alive
	pl.Engine().Run()
	m := pl.Metrics()
	if m.Invocations() != 2 {
		t.Fatalf("invocations = %d (errors=%d)", m.Invocations(), m.Errors.Value())
	}
	if m.WarmHits.Value() != 1 {
		t.Fatalf("warm hits = %d, want 1", m.WarmHits.Value())
	}
	// Warm hit is far faster than any start.
	fm := m.Fn("JS")
	if fm.Startup.Max() > 1.0 && fm.Startup.Min() > 1.0 {
		t.Fatalf("warm startup should be sub-ms: %s", fm.Startup.Summary())
	}
}

func TestKeepAliveExpiryFeedsUniversalPool(t *testing.T) {
	pl := newPlatform(t, PolicyTrEnvCXL)
	pl.Invoke(0, "JS")
	// Past keep-alive: instance expires, sandbox recycled; a different
	// function should then repurpose it.
	pl.Invoke(11*time.Minute, "CR")
	pl.Engine().Run()
	m := pl.Metrics()
	if m.Repurposes.Value() != 1 {
		t.Fatalf("repurposes = %d, want 1 (CR should reuse JS's sandbox)", m.Repurposes.Value())
	}
	if m.WarmHits.Value() != 0 {
		t.Fatalf("warm hits = %d", m.WarmHits.Value())
	}
	if pl.Node().Used() != 0 && pl.WarmCount() == 0 {
		// All instances eventually released after final expiry.
		t.Fatalf("node memory leaked: %d", pl.Node().Used())
	}
}

func TestCRIUExpiryDiscardsSandbox(t *testing.T) {
	pl := newPlatform(t, PolicyCRIU)
	pl.Invoke(0, "JS")
	pl.Invoke(11*time.Minute, "CR")
	pl.Engine().Run()
	if pl.Metrics().Repurposes.Value() != 0 {
		t.Fatal("CRIU policy should never repurpose")
	}
	if pl.Metrics().Restores.Value() != 2 {
		t.Fatalf("restores = %d", pl.Metrics().Restores.Value())
	}
}

func TestTrEnvBeatsBaselinesOnBurstyP99(t *testing.T) {
	// W1 semantics: burst gaps exceed keep-alive, so every burst after
	// the first finds no warm instance. The first burst (inside the
	// warm-up window, excluded from metrics) populates the pools.
	rng := rand.New(rand.NewSource(42))
	tr := workload.W1Bursty(rng, workload.W1Config{
		Functions: fnNames(),
		Duration:  5 * time.Minute,
		BurstGap:  80 * time.Second,
		BurstSize: 3,
		BurstSpan: 2 * time.Second,
	})
	policies := []Policy{PolicyCRIU, PolicyREAPPlus, PolicyFaaSnapPlus, PolicyTrEnvCXL}
	p99 := make(map[Policy]float64)
	for _, pol := range policies {
		cfg := DefaultConfig(pol)
		cfg.KeepAlive = 45 * time.Second
		cfg.Warmup = 10 * time.Second
		pl := New(cfg)
		for _, p := range workload.Table4() {
			if err := pl.Register(p); err != nil {
				t.Fatal(err)
			}
		}
		pl.RunTrace(tr)
		if pl.Metrics().Errors.Value() != 0 {
			t.Fatalf("%s: errors = %d", pol, pl.Metrics().Errors.Value())
		}
		p99[pol] = pl.Metrics().All.E2E.Percentile(99)
	}
	if p99[PolicyTrEnvCXL] >= p99[PolicyREAPPlus] {
		t.Fatalf("T-CXL P99 (%.1fms) not better than REAP+ (%.1fms)", p99[PolicyTrEnvCXL], p99[PolicyREAPPlus])
	}
	if p99[PolicyTrEnvCXL] >= p99[PolicyCRIU] {
		t.Fatalf("T-CXL P99 (%.1fms) not better than CRIU (%.1fms)", p99[PolicyTrEnvCXL], p99[PolicyCRIU])
	}
}

func TestTrEnvUsesLessMemoryThanLazyVMs(t *testing.T) {
	tr := smallTrace(7)
	plT := newPlatform(t, PolicyTrEnvCXL)
	plT.RunTrace(tr)
	plR := newPlatform(t, PolicyREAPPlus)
	plR.RunTrace(tr)
	if plT.PeakMemory() >= plR.PeakMemory() {
		t.Fatalf("T-CXL peak %d >= REAP+ peak %d", plT.PeakMemory(), plR.PeakMemory())
	}
}

func TestSoftCapTriggersEviction(t *testing.T) {
	cfg := DefaultConfig(PolicyCRIU)
	cfg.SoftMemCap = 2 << 30 // tight: CRIU instances hold full images
	pl := New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	// Invoke every function once, sequentially spaced so instances idle.
	for i, name := range fnNames() {
		pl.Invoke(time.Duration(i)*20*time.Second, name)
	}
	pl.Engine().Run()
	if pl.Metrics().Evictions.Value() == 0 {
		t.Fatal("no evictions under a 2 GiB cap with ~2 GiB of images")
	}
	if pl.Metrics().Errors.Value() != 0 {
		t.Fatalf("errors = %d", pl.Metrics().Errors.Value())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, int64) {
		pl := newPlatform(t, PolicyTrEnvCXL)
		pl.RunTrace(smallTrace(99))
		return pl.Metrics().All.E2E.Percentile(99), pl.PeakMemory()
	}
	p99a, peakA := run()
	p99b, peakB := run()
	if p99a != p99b || peakA != peakB {
		t.Fatalf("non-deterministic: p99 %v vs %v, peak %d vs %d", p99a, p99b, peakA, peakB)
	}
}

func TestPoolUsageReflectsPolicy(t *testing.T) {
	plC := newPlatform(t, PolicyTrEnvCXL)
	cxl, rdma, _ := plC.PoolUsage()
	if cxl == 0 || rdma != 0 {
		t.Fatalf("T-CXL pools: cxl=%d rdma=%d", cxl, rdma)
	}
	plR := newPlatform(t, PolicyTrEnvRDMA)
	cxl, rdma, _ = plR.PoolUsage()
	if rdma == 0 || cxl != 0 {
		t.Fatalf("T-RDMA pools: cxl=%d rdma=%d", cxl, rdma)
	}
	plReap := newPlatform(t, PolicyREAPPlus)
	_, _, tmpfs := plReap.PoolUsage()
	if tmpfs == 0 {
		t.Fatal("REAP+ should hold snapshot files in tmpfs")
	}
	// Dedup: CXL pool holds less than the sum of images.
	var sum int64
	for _, p := range workload.Table4() {
		sum += p.Snapshot().MemBytes()
	}
	cxl, _, _ = plC.PoolUsage()
	if cxl >= sum {
		t.Fatalf("no dedup in pool: %d >= %d", cxl, sum)
	}
}

func TestAblationPoliciesRun(t *testing.T) {
	for _, pol := range []Policy{PolicyReconfig, PolicyCgroup, PolicyFaasd, PolicyTrEnvRDMA} {
		pl := newPlatform(t, pol)
		pl.Invoke(0, "JS")
		pl.Invoke(time.Second, "JS")
		pl.Engine().Run()
		if pl.Metrics().Errors.Value() != 0 {
			t.Fatalf("%s: errors", pol)
		}
		if pl.Metrics().Invocations() != 2 {
			t.Fatalf("%s: invocations = %d", pol, pl.Metrics().Invocations())
		}
	}
}

func TestMemoryGaugeSampled(t *testing.T) {
	pl := newPlatform(t, PolicyTrEnvCXL)
	pl.RunTrace(smallTrace(5))
	if pl.MemoryGauge().Peak() == 0 {
		t.Fatal("memory gauge never sampled above zero")
	}
}

func TestMetricsSummaryRenders(t *testing.T) {
	pl := newPlatform(t, PolicyTrEnvCXL)
	pl.Invoke(0, "JS")
	pl.Engine().Run()
	s := pl.Metrics().Summary()
	if len(s) == 0 {
		t.Fatal("empty summary")
	}
	if got := pl.Metrics().Functions(); len(got) != 1 || got[0] != "JS" {
		t.Fatalf("functions = %v", got)
	}
}
