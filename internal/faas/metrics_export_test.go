package faas

import (
	"encoding/json"
	"testing"
	"time"
)

func TestMetricsExportRoundTrip(t *testing.T) {
	pl := New(DefaultConfig(PolicyTrEnvCXL))
	pl.Register(mustProfile(t, "JS"))
	pl.Invoke(0, "JS")
	pl.Invoke(time.Second, "JS")
	pl.Engine().Run()
	exp := pl.Metrics().Export()
	if exp.Invocations != 2 || exp.WarmHits != 1 || exp.Errors != 0 {
		t.Fatalf("export = %+v", exp)
	}
	fn, ok := exp.PerFunction["JS"]
	if !ok || fn.Invocations != 2 || fn.E2EP99Ms <= 0 {
		t.Fatalf("per-function export = %+v", fn)
	}
	raw, err := json.Marshal(exp)
	if err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.E2EP99Ms != exp.E2EP99Ms || back.PerFunction["JS"] != fn {
		t.Fatal("json round trip changed values")
	}
}
