package faas

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestSoakLongMixedWorkload drives two virtual hours of mixed traffic
// through every policy with tight memory, verifying conservation
// invariants hold throughout (no leaked bytes, no lost invocations, no
// negative anything). Skipped with -short.
func TestSoakLongMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(11))
	cfgW2 := workload.DefaultW2(fnNames())
	cfgW2.Duration = 2 * time.Hour
	tr := workload.W2Diurnal(rng, cfgW2)

	for _, pol := range []Policy{PolicyCRIU, PolicyREAPPlus, PolicyTrEnvCXL, PolicyTrEnvRDMA} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			cfg := DefaultConfig(pol)
			cfg.SoftMemCap = 3 << 30
			cfg.PreWarmSandboxes = 8
			cfg.MaxPerFunction = 32
			pl := New(cfg)
			for _, p := range workload.Table4() {
				if err := pl.Register(p); err != nil {
					t.Fatal(err)
				}
			}
			pl.RunTrace(tr)
			m := pl.Metrics()
			if m.Errors.Value() != 0 {
				t.Fatalf("errors = %d", m.Errors.Value())
			}
			if m.Invocations() == 0 {
				t.Fatal("nothing recorded")
			}
			// Conservation: after the run drains (keep-alive expiries
			// included), all node DRAM is back.
			if pl.Node().Used() != 0 {
				t.Fatalf("leaked %d bytes of node DRAM", pl.Node().Used())
			}
			if pl.WarmCount() != 0 {
				t.Fatalf("warm instances survived drain: %d", pl.WarmCount())
			}
			// Latencies are sane: p50 <= p99 <= something finite.
			e2e := &m.All.E2E
			if e2e.Percentile(50) > e2e.Percentile(99) {
				t.Fatal("percentiles inverted")
			}
			if e2e.Max() > 10*60*1000 {
				t.Fatalf("pathological e2e max: %.0fms", e2e.Max())
			}
		})
	}
}

// TestSoakDeterminism runs a medium soak twice and demands bit-identical
// metrics.
func TestSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	run := func() (int, float64, int64) {
		rng := rand.New(rand.NewSource(5))
		cfgW1 := workload.DefaultW1(fnNames())
		cfgW1.Duration = 40 * time.Minute
		tr := workload.W1Bursty(rng, cfgW1)
		cfg := DefaultConfig(PolicyTrEnvCXL)
		cfg.SoftMemCap = 4 << 30
		pl := New(cfg)
		for _, p := range workload.Table4() {
			pl.Register(p)
		}
		pl.RunTrace(tr)
		return pl.Metrics().Invocations(), pl.Metrics().All.E2E.Percentile(99), pl.PeakMemory()
	}
	n1, p1, m1 := run()
	n2, p2, m2 := run()
	if n1 != n2 || p1 != p2 || m1 != m2 {
		t.Fatalf("soak not deterministic: (%d,%f,%d) vs (%d,%f,%d)", n1, p1, m1, n2, p2, m2)
	}
}
