package faas

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Outcome is how an invocation terminated. Every invocation ends in
// exactly one of these — there is no silent loss path.
type Outcome string

const (
	// OutcomeSuccess completed normally.
	OutcomeSuccess Outcome = "success"
	// OutcomeFallback completed via the local-cold-start fallback after
	// the remote restore source was unavailable.
	OutcomeFallback Outcome = "fallback"
	// OutcomeError failed with a typed application/platform error.
	OutcomeError Outcome = "error"
	// OutcomeCrashed was aborted because its node crashed mid-flight;
	// clusters re-dispatch these to survivors.
	OutcomeCrashed Outcome = "node-crash"
)

// InvocationResult is the terminal record of one invocation, delivered
// to Config.OnResult. FaultTrace names the injected fault the invocation
// collided with ("" = clean), even when it still succeeded after retries.
type InvocationResult struct {
	Function   string
	Node       string
	TraceID    string
	Outcome    Outcome
	Err        error
	Retries    int
	FaultTrace string
	// Latency breakdown, set on successful (and fallback) outcomes:
	// Startup is the start-path total, FetchLat the demand remote-fetch
	// latency execution paid, PrefetchWait the time execution parked on
	// in-flight prefetch batches. Startup+FetchLat+PrefetchWait is the
	// invocation's effective restore cost — what working-set prefetching
	// attacks.
	Startup      time.Duration
	FetchLat     time.Duration
	PrefetchWait time.Duration
	// Token is the dispatcher's cancellation token when the invocation
	// was launched via InvokeAttempt (nil otherwise). The cluster
	// hedger uses it to map a terminal result back to its race.
	Token *CancelToken
}

// ErrNodeDown reports an invocation aborted by its node crashing.
type ErrNodeDown struct{ Node string }

func (e *ErrNodeDown) Error() string { return fmt.Sprintf("faas: node %s is down", e.Node) }

// Crash kills the node: warm instances release their memory accounting,
// queued invocations are woken so they can abort, and every in-flight
// invocation terminates with OutcomeCrashed at its next checkpoint.
// Safe to call outside a simulated process (no virtual time passes —
// a crash does no cleanup work). Idempotent.
func (pl *Platform) Crash() {
	if pl.crashed {
		return
	}
	pl.crashed = true
	for name, list := range pl.warm {
		for _, in := range list {
			pl.rt.ReleaseCrashed(in)
		}
		delete(pl.warm, name)
	}
	for name, q := range pl.waiting {
		for _, proc := range q {
			pl.eng.Resume(proc)
		}
		delete(pl.waiting, name)
	}
}

// Crashed reports whether Crash has been called.
func (pl *Platform) Crashed() bool { return pl.crashed }

// Pools returns the node's attached memory pools (CXL, RDMA, tmpfs).
func (pl *Platform) Pools() []*mem.Pool {
	return []*mem.Pool{pl.cxl, pl.rdma, pl.tmpfs}
}

// AttachFaults consults agent on every fetch against the node's pools,
// clocked by the platform's virtual time, and applies Config.Retry (or
// the default policy) to them. Attach before traffic arrives.
func (pl *Platform) AttachFaults(agent mem.FaultAgent) {
	for _, pool := range pl.Pools() {
		pool.SetFaultAgent(agent, pl.eng.Now)
		if pl.cfg.Retry != nil {
			pool.SetRetryPolicy(*pl.cfg.Retry)
		}
	}
}

// abortCrashed terminates an in-flight invocation whose node died under
// it: the held instance's accounting is unwound and the outcome is
// OutcomeCrashed — counted separately from application errors, never
// silently completed. Clusters re-dispatch these to survivors.
func (pl *Platform) abortCrashed(res *InvocationResult, traceID, name string, t0 time.Duration, in *core.Instance) {
	if in != nil {
		pl.rt.ReleaseCrashed(in)
	}
	err := &ErrNodeDown{Node: pl.nodeName}
	res.Outcome = OutcomeCrashed
	res.Err = err
	pl.metrics.CrashAborts.Inc()
	if pl.tracer != nil {
		sp := obs.NewSpan("invoke/"+name, t0, pl.eng.Now())
		sp.SetAttr("function", name).SetAttr("policy", string(pl.cfg.Policy)).
			SetAttr("node", pl.nodeName).SetAttr("error_type", "node-down")
		sp.Fail(err)
		sp.AssignIDs(traceID)
		pl.tracer.Record(sp)
	}
}

// errType classifies an invocation error for span attribution; "" for
// untyped errors.
func errType(err error) string {
	var (
		nm *mem.ErrNoMemory
		pu *mem.ErrPoolUnavailable
		ff *mem.ErrFetchFailed
		fl *mem.ErrFlakyFetch
		nd *ErrNodeDown
		ca *ErrCancelled
		de *ErrDeadlineExceeded
	)
	switch {
	case errors.As(err, &nm):
		return "no-memory"
	case errors.As(err, &pu):
		return "pool-unavailable"
	case errors.As(err, &ff):
		return "fetch-failed"
	case errors.As(err, &fl):
		return "flaky-fetch"
	case errors.As(err, &nd):
		return "node-down"
	case errors.As(err, &ca):
		return "cancelled"
	case errors.As(err, &de):
		return "deadline-exceeded"
	}
	return ""
}

// faultTraceOf extracts the injected fault's trace ID from a typed
// error chain ("" when the error wasn't fault-induced).
func faultTraceOf(err error) string {
	var pu *mem.ErrPoolUnavailable
	if errors.As(err, &pu) {
		return pu.FaultTrace
	}
	var ff *mem.ErrFetchFailed
	if errors.As(err, &ff) {
		return ff.FaultTrace
	}
	var fl *mem.ErrFlakyFetch
	if errors.As(err, &fl) {
		return fl.FaultTrace
	}
	return ""
}
