package faas

import (
	"testing"
	"time"
)

// TestMaxPerFunctionQueues: with a 1-instance cap, 3 simultaneous
// invocations serialize, and the queue drains FIFO.
func TestMaxPerFunctionQueues(t *testing.T) {
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.MaxPerFunction = 1
	pl := New(cfg)
	pl.Register(mustProfile(t, "JS"))
	for i := 0; i < 3; i++ {
		pl.Invoke(0, "JS")
	}
	pl.Engine().Run()
	m := pl.Metrics()
	if m.Errors.Value() != 0 || m.Invocations() != 3 {
		t.Fatalf("invocations=%d errors=%d", m.Invocations(), m.Errors.Value())
	}
	if m.Queued.Value() != 2 {
		t.Fatalf("queued = %d, want 2", m.Queued.Value())
	}
	// With serialization, later invocations' E2E includes queueing: the
	// 3rd waits roughly two full runs.
	e2e := &m.Fn("JS").E2E
	if e2e.Max() < 2*e2e.Min() {
		t.Fatalf("no serialization visible: min=%.1f max=%.1f", e2e.Min(), e2e.Max())
	}
	// Only one instance ever existed: the 2nd and 3rd run warm.
	if m.WarmHits.Value() != 2 {
		t.Fatalf("warm hits = %d, want 2 (cap forces reuse)", m.WarmHits.Value())
	}
}

// TestMaxPerFunctionIsPerFunction: one function's queue does not block
// another's.
func TestMaxPerFunctionIsPerFunction(t *testing.T) {
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.MaxPerFunction = 1
	pl := New(cfg)
	pl.Register(mustProfile(t, "JS"))
	pl.Register(mustProfile(t, "DH"))
	pl.Invoke(0, "JS")
	pl.Invoke(0, "JS") // queues behind the first JS
	pl.Invoke(0, "DH") // must not queue
	pl.Engine().Run()
	m := pl.Metrics()
	if m.Queued.Value() != 1 {
		t.Fatalf("queued = %d, want only the second JS", m.Queued.Value())
	}
	// DH's E2E equals its solo E2E: the JS queue did not delay it.
	solo := New(cfg)
	solo.Register(mustProfile(t, "DH"))
	solo.Invoke(0, "DH")
	solo.Engine().Run()
	dh := m.Fn("DH").E2E.Max()
	want := solo.Metrics().Fn("DH").E2E.Max()
	// Concurrent sandbox creation costs a few tens of ms (netns lock
	// contention); queueing behind a JS slot would cost a full JS round
	// (~270ms). Accept the former, reject the latter.
	if dh > want+100 {
		t.Fatalf("DH e2e %.1fms >> solo %.1fms; it must not queue behind JS", dh, want)
	}
}

// TestUnlimitedByDefault: no cap, no queueing.
func TestUnlimitedByDefault(t *testing.T) {
	pl := New(DefaultConfig(PolicyTrEnvCXL))
	pl.Register(mustProfile(t, "JS"))
	for i := 0; i < 5; i++ {
		pl.Invoke(0, "JS")
	}
	pl.Engine().Run()
	if pl.Metrics().Queued.Value() != 0 {
		t.Fatalf("queued = %d with no cap", pl.Metrics().Queued.Value())
	}
}

// TestQueueDrainsUnderLoad: sustained over-capacity traffic completes.
func TestQueueDrainsUnderLoad(t *testing.T) {
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.MaxPerFunction = 2
	pl := New(cfg)
	pl.Register(mustProfile(t, "DH"))
	const n = 40
	for i := 0; i < n; i++ {
		pl.Invoke(time.Duration(i)*5*time.Millisecond, "DH")
	}
	pl.Engine().Run()
	m := pl.Metrics()
	if m.Invocations() != n || m.Errors.Value() != 0 {
		t.Fatalf("completed %d/%d, errors=%d", m.Invocations(), n, m.Errors.Value())
	}
	if m.Queued.Value() == 0 {
		t.Fatal("expected queueing under 20x overload")
	}
}
