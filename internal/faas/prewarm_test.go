package faas

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// TestPreWarmAbsorbsFirstBurst: with a pre-provisioned pool, even the
// first-ever burst repurposes instead of building sandboxes.
func TestPreWarmAbsorbsFirstBurst(t *testing.T) {
	run := func(prewarm int) (repurposed, cold int64, p99 float64) {
		cfg := DefaultConfig(PolicyTrEnvCXL)
		cfg.PreWarmSandboxes = prewarm
		pl := New(cfg)
		pl.Register(mustProfile(t, "JS"))
		tr := make(workload.Trace, 0, 10)
		for i := 0; i < 10; i++ {
			tr = append(tr, workload.Invocation{At: time.Duration(i) * 10 * time.Millisecond, Function: "JS"})
		}
		pl.RunTrace(tr)
		m := pl.Metrics()
		if m.Errors.Value() != 0 {
			t.Fatalf("errors = %d", m.Errors.Value())
		}
		return m.Repurposes.Value(), m.ColdStarts.Value(), m.All.E2E.Percentile(99)
	}
	_, coldNo, p99No := run(0)
	repYes, coldYes, p99Yes := run(10)
	if coldNo == 0 {
		t.Fatal("baseline should have cold sandbox builds")
	}
	if coldYes != 0 || repYes == 0 {
		t.Fatalf("prewarmed run: cold=%d repurposed=%d", coldYes, repYes)
	}
	if p99Yes >= p99No {
		t.Fatalf("prewarm did not improve first-burst p99: %.1f vs %.1f", p99Yes, p99No)
	}
}

// TestPreWarmIgnoredForBaselines: non-TrEnv policies have no universal
// pool to seed.
func TestPreWarmIgnoredForBaselines(t *testing.T) {
	cfg := DefaultConfig(PolicyCRIU)
	cfg.PreWarmSandboxes = 5
	pl := New(cfg)
	pl.Register(mustProfile(t, "JS"))
	pl.RunTrace(workload.Trace{{At: 0, Function: "JS"}})
	if pl.Metrics().Repurposes.Value() != 0 {
		t.Fatal("CRIU policy repurposed")
	}
}
