package faas

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// FnMetrics collects per-function latency distributions (milliseconds).
type FnMetrics struct {
	Startup sim.Histogram
	Exec    sim.Histogram
	E2E     sim.Histogram
	// E2EExemplars, when tracing is on, keeps per-bucket (value, trace)
	// exemplars for the E2E distribution so /metrics tail buckets link
	// to the exact invocation's span tree.
	E2EExemplars *obs.ExemplarReservoir
}

// Metrics aggregates a platform run.
type Metrics struct {
	PerFn map[string]*FnMetrics
	All   FnMetrics

	WarmHits         sim.Counter
	ColdStarts       sim.Counter // sandbox built from scratch
	Repurposes       sim.Counter
	Restores         sim.Counter // criu / lazy restores
	Evictions        sim.Counter
	Queued           sim.Counter // invocations that waited for a per-function slot
	Promotions       sim.Counter // hot working sets promoted to local DRAM
	CleanRestores    sim.Counter // Groundhog-style post-request scrubs
	Errors           sim.Counter
	Fallbacks        sim.Counter // local cold starts taken because the pool was unavailable
	Retries          sim.Counter // fetch attempts replayed after injected faults
	CrashAborts      sim.Counter // invocations aborted by a node crash (re-dispatchable)
	Cancelled        sim.Counter // attempts cooperatively cancelled (hedge losers)
	DeadlineExceeded sim.Counter // attempts abandoned past Config.Deadline

	// Working-set prefetching (Config.Prefetch). Hits are demand
	// accesses a batch had covered; Misses are demand fetches the replay
	// did not cover in time.
	PrefetchRecordings sim.Counter   // first runs that recorded a working-set log
	PrefetchLaunches   sim.Counter   // restores that replayed (or promoted) a sealed log
	PrefetchBatches    sim.Counter   // batched fetches issued by replays
	PrefetchPages      sim.Counter   // pages delivered by batched fetches
	PrefetchHits       sim.Counter   // demand accesses served by an in-flight/landed batch
	PrefetchMisses     sim.Counter   // demand fetches with prefetch active
	PromotedPages      sim.Counter   // pages redirected at the promotion cache
	PrefetchBatchSize  sim.Histogram // pages per batch, one sample per replaying restore
}

// NewMetrics returns empty metrics.
func NewMetrics() *Metrics {
	return &Metrics{PerFn: make(map[string]*FnMetrics)}
}

// Fn returns (creating if needed) the per-function metrics.
func (m *Metrics) Fn(name string) *FnMetrics {
	fm, ok := m.PerFn[name]
	if !ok {
		fm = &FnMetrics{}
		m.PerFn[name] = fm
	}
	return fm
}

// Record stores one invocation's outcome.
func (m *Metrics) Record(fn string, st core.Startup, es core.ExecStats, e2e time.Duration) {
	fm := m.Fn(fn)
	fm.Startup.AddDuration(st.Total())
	fm.Exec.AddDuration(es.Total)
	fm.E2E.AddDuration(e2e)
	m.All.Startup.AddDuration(st.Total())
	m.All.Exec.AddDuration(es.Total)
	m.All.E2E.AddDuration(e2e)
	switch st.Path {
	case core.PathWarm:
		m.WarmHits.Inc()
	case core.PathCold:
		m.ColdStarts.Inc()
	case core.PathRepurpose:
		m.Repurposes.Inc()
	case core.PathCRIU, core.PathLazyVM:
		m.Restores.Inc()
	case core.PathFallback:
		// A fallback still builds a sandbox from scratch; Fallbacks is
		// counted at the decision point, ColdStarts here.
		m.ColdStarts.Inc()
	}
}

// ObserveExemplar links one post-warmup invocation's E2E latency (ms)
// to its trace, in both the function's reservoir and the aggregate.
// Reservoir sampling streams are seeded per series, so a fixed
// simulation seed retains the exact same exemplars.
func (m *Metrics) ObserveExemplar(fn string, ms float64, traceID string) {
	fm := m.Fn(fn)
	if fm.E2EExemplars == nil {
		fm.E2EExemplars = obs.NewExemplarReservoir(nil, 0, "e2e/"+fn)
	}
	fm.E2EExemplars.Observe(ms, traceID)
	if m.All.E2EExemplars == nil {
		m.All.E2EExemplars = obs.NewExemplarReservoir(nil, 0, "e2e/_all")
	}
	m.All.E2EExemplars.Observe(ms, traceID)
}

// ExemplarLinks flattens every retained E2E exemplar into resolvable
// links (sorted by function, bucket, then reservoir slot) for the
// analyzer report.
func (m *Metrics) ExemplarLinks() []obs.ExemplarLink {
	var out []obs.ExemplarLink
	add := func(fn string, res *obs.ExemplarReservoir) {
		if res == nil {
			return
		}
		for _, b := range res.Snapshot() {
			for _, e := range b.Exemplars {
				out = append(out, obs.ExemplarLink{
					Series:  `trenv_e2e_latency_ms{function="` + fn + `"}`,
					Le:      obs.FormatLe(b.UpperBound),
					Value:   e.Value,
					TraceID: e.TraceID,
				})
			}
		}
	}
	add("_all", m.All.E2EExemplars)
	for _, name := range m.Functions() {
		add(name, m.PerFn[name].E2EExemplars)
	}
	return out
}

// Invocations returns the recorded invocation count.
func (m *Metrics) Invocations() int { return m.All.E2E.N() }

// Functions returns the recorded function names, sorted.
func (m *Metrics) Functions() []string {
	names := make([]string, 0, len(m.PerFn))
	for n := range m.PerFn {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Summary renders a compact human-readable report.
func (m *Metrics) Summary() string {
	s := fmt.Sprintf("invocations=%d warm=%d cold=%d repurposed=%d restored=%d evicted=%d errors=%d\n",
		m.Invocations(), m.WarmHits.Value(), m.ColdStarts.Value(), m.Repurposes.Value(),
		m.Restores.Value(), m.Evictions.Value(), m.Errors.Value())
	s += fmt.Sprintf("  e2e(ms): %s\n", m.All.E2E.Summary())
	s += fmt.Sprintf("  startup(ms): %s\n", m.All.Startup.Summary())
	return s
}

// Register publishes the run's counters and latency histograms into an
// observability registry. Histograms export per function (label
// function=<name>) plus the aggregate as function="_all"; series for
// functions invoked after registration appear automatically because
// gathering happens at scrape time.
func (m *Metrics) Register(reg *obs.Registry) { m.RegisterLabeled(reg, nil) }

// RegisterLabeled is Register with extra labels merged into every
// series (node="n3", rack="r0"...), so many nodes' metrics share one
// fleet-wide registry without colliding.
func (m *Metrics) RegisterLabeled(reg *obs.Registry, labels map[string]string) {
	counters := []struct {
		name, help string
		c          *sim.Counter
	}{
		{"trenv_warm_hits_total", "Invocations served by a kept-alive instance.", &m.WarmHits},
		{"trenv_cold_starts_total", "Sandboxes built from scratch.", &m.ColdStarts},
		{"trenv_repurposes_total", "Starts served by repurposing a pooled sandbox.", &m.Repurposes},
		{"trenv_restores_total", "CRIU / lazy memory restores.", &m.Restores},
		{"trenv_evictions_total", "Idle instances evicted for the soft memory cap.", &m.Evictions},
		{"trenv_queued_total", "Invocations that waited for a per-function slot.", &m.Queued},
		{"trenv_promotions_total", "Hot working sets promoted to local DRAM.", &m.Promotions},
		{"trenv_clean_restores_total", "Groundhog-style post-request scrubs.", &m.CleanRestores},
		{"trenv_errors_total", "Failed invocations (unknown function, start or exec failure).", &m.Errors},
		{"trenv_fallbacks_total", "Local cold starts taken because the restore pool was unavailable.", &m.Fallbacks},
		{"trenv_retries_total", "Fetch attempts replayed after injected faults.", &m.Retries},
		{"trenv_crash_aborts_total", "Invocations aborted by a node crash (re-dispatchable, not errors).", &m.CrashAborts},
		{"trenv_cancelled_total", "Attempts cooperatively cancelled by their dispatcher (hedge losers).", &m.Cancelled},
		{"trenv_deadline_exceeded_total", "Attempts abandoned past the per-invocation deadline.", &m.DeadlineExceeded},
		{"trenv_prefetch_recordings_total", "First runs that recorded a working-set log.", &m.PrefetchRecordings},
		{"trenv_prefetch_launches_total", "Restores that replayed (or promoted) a sealed working-set log.", &m.PrefetchLaunches},
		{"trenv_prefetch_batches_total", "Batched fetches issued by working-set replays.", &m.PrefetchBatches},
		{"trenv_prefetch_pages_total", "Pages delivered by batched prefetch fetches.", &m.PrefetchPages},
		{"trenv_prefetch_hits_total", "Demand accesses served by an in-flight or landed prefetch batch.", &m.PrefetchHits},
		{"trenv_prefetch_misses_total", "Demand fetches issued while prefetch was active.", &m.PrefetchMisses},
		{"trenv_promoted_pages_total", "Pages redirected at the hot-run promotion cache.", &m.PromotedPages},
	}
	for _, c := range counters {
		c := c
		reg.CounterFunc(c.name, c.help, labels, c.c.Value)
	}
	reg.CounterFunc("trenv_invocations_total", "Recorded (post-warmup) invocations.", labels,
		func() int64 { return int64(m.Invocations()) })
	hists := []struct {
		name, help string
		sel        func(*FnMetrics) *sim.Histogram
		exSel      func(*FnMetrics) *obs.ExemplarReservoir
	}{
		{"trenv_e2e_latency_ms", "End-to-end invocation latency in milliseconds.",
			func(fm *FnMetrics) *sim.Histogram { return &fm.E2E },
			func(fm *FnMetrics) *obs.ExemplarReservoir { return fm.E2EExemplars }},
		{"trenv_startup_latency_ms", "Instance startup latency in milliseconds.",
			func(fm *FnMetrics) *sim.Histogram { return &fm.Startup }, nil},
		{"trenv_exec_latency_ms", "Function execution latency in milliseconds.",
			func(fm *FnMetrics) *sim.Histogram { return &fm.Exec }, nil},
	}
	fnLabels := func(name string) map[string]string {
		out := map[string]string{"function": name}
		for k, v := range labels {
			out[k] = v
		}
		return out
	}
	reg.HistogramFunc("trenv_prefetch_batch_pages",
		"Pages per prefetch batch (one sample per replaying restore).",
		func() []obs.LabeledHistogram {
			return []obs.LabeledHistogram{{Labels: labels, Hist: &m.PrefetchBatchSize}}
		})
	for _, h := range hists {
		h := h
		reg.HistogramFunc(h.name, h.help, func() []obs.LabeledHistogram {
			lh := func(name string, fm *FnMetrics) obs.LabeledHistogram {
				out := obs.LabeledHistogram{Labels: fnLabels(name), Hist: h.sel(fm)}
				if h.exSel != nil {
					out.Exemplars = h.exSel(fm)
				}
				return out
			}
			out := []obs.LabeledHistogram{lh("_all", &m.All)}
			for _, name := range m.Functions() {
				out = append(out, lh(name, m.PerFn[name]))
			}
			return out
		})
	}
}

// FnExport is a serializable per-function summary.
type FnExport struct {
	Invocations  int     `json:"invocations"`
	E2EP50Ms     float64 `json:"e2e_p50_ms"`
	E2EP99Ms     float64 `json:"e2e_p99_ms"`
	StartupP99Ms float64 `json:"startup_p99_ms"`
	ExecP99Ms    float64 `json:"exec_p99_ms"`
}

// Export is a serializable view of a run's metrics, for control planes
// and result files.
type Export struct {
	Invocations      int                 `json:"invocations"`
	WarmHits         int64               `json:"warm_hits"`
	ColdStarts       int64               `json:"cold_starts"`
	Repurposes       int64               `json:"repurposes"`
	Restores         int64               `json:"restores"`
	Evictions        int64               `json:"evictions"`
	Queued           int64               `json:"queued"`
	Promotions       int64               `json:"promotions"`
	CleanRestores    int64               `json:"clean_restores"`
	Errors           int64               `json:"errors"`
	Fallbacks        int64               `json:"fallbacks"`
	Retries          int64               `json:"retries"`
	CrashAborts      int64               `json:"crash_aborts"`
	Cancelled        int64               `json:"cancelled,omitempty"`
	DeadlineExceeded int64               `json:"deadline_exceeded,omitempty"`
	PrefetchHits     int64               `json:"prefetch_hits,omitempty"`
	PrefetchMiss     int64               `json:"prefetch_misses,omitempty"`
	PrefetchPages    int64               `json:"prefetch_pages,omitempty"`
	PromotedPages    int64               `json:"promoted_pages,omitempty"`
	E2EP50Ms         float64             `json:"e2e_p50_ms"`
	E2EP99Ms         float64             `json:"e2e_p99_ms"`
	StartupP99Ms     float64             `json:"startup_p99_ms"`
	PerFunction      map[string]FnExport `json:"per_function"`
}

// Export snapshots the metrics into a serializable structure.
func (m *Metrics) Export() Export {
	out := Export{
		Invocations:      m.Invocations(),
		WarmHits:         m.WarmHits.Value(),
		ColdStarts:       m.ColdStarts.Value(),
		Repurposes:       m.Repurposes.Value(),
		Restores:         m.Restores.Value(),
		Evictions:        m.Evictions.Value(),
		Queued:           m.Queued.Value(),
		Promotions:       m.Promotions.Value(),
		CleanRestores:    m.CleanRestores.Value(),
		Errors:           m.Errors.Value(),
		Fallbacks:        m.Fallbacks.Value(),
		Retries:          m.Retries.Value(),
		CrashAborts:      m.CrashAborts.Value(),
		Cancelled:        m.Cancelled.Value(),
		DeadlineExceeded: m.DeadlineExceeded.Value(),
		PrefetchHits:     m.PrefetchHits.Value(),
		PrefetchMiss:     m.PrefetchMisses.Value(),
		PrefetchPages:    m.PrefetchPages.Value(),
		PromotedPages:    m.PromotedPages.Value(),
		E2EP50Ms:         m.All.E2E.Percentile(50),
		E2EP99Ms:         m.All.E2E.Percentile(99),
		StartupP99Ms:     m.All.Startup.Percentile(99),
		PerFunction:      make(map[string]FnExport, len(m.PerFn)),
	}
	for name, fm := range m.PerFn {
		out.PerFunction[name] = FnExport{
			Invocations:  fm.E2E.N(),
			E2EP50Ms:     fm.E2E.Percentile(50),
			E2EP99Ms:     fm.E2E.Percentile(99),
			StartupP99Ms: fm.Startup.Percentile(99),
			ExecP99Ms:    fm.Exec.Percentile(99),
		}
	}
	return out
}
