// Package faas is the serverless platform layer: a faasd-like control
// plane over the container runtime that registers functions, schedules
// invocations from a trace, maintains the keep-alive pool, and collects
// the latency/memory metrics the paper's container-based evaluation
// reports (§9.1-§9.5).
//
// Each platform instance runs one scheduling policy:
//
//	faasd      keep-alive + cold starts
//	criu       keep-alive + vanilla CRIU restore (new sandbox each start)
//	reap+      keep-alive + netns pool + REAP lazy restore in microVMs
//	faasnap+   like reap+ with FaaSnap async prefetch
//	trenv-cxl  repurposable sandboxes + mm-template on a CXL pool
//	trenv-rdma repurposable sandboxes + mm-template on an RDMA pool
//	reconfig   ablation: repurposed sandbox, full-copy memory, legacy cgroup
//	cgroup     ablation: + CLONE_INTO_CGROUP, still full-copy memory
package faas

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/alert"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/obs"
	"repro/internal/pagetable"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// Policy selects the platform's start strategy.
type Policy string

// Policies under evaluation.
const (
	PolicyFaasd       Policy = "faasd"
	PolicyCRIU        Policy = "criu"
	PolicyREAPPlus    Policy = "reap+"
	PolicyFaaSnapPlus Policy = "faasnap+"
	PolicyTrEnvCXL    Policy = "trenv-cxl"
	PolicyTrEnvRDMA   Policy = "trenv-rdma"
	PolicyReconfig    Policy = "reconfig"
	PolicyCgroup      Policy = "cgroup"
)

// IsTrEnv reports whether the policy uses repurposable sandboxes.
func (p Policy) IsTrEnv() bool {
	switch p {
	case PolicyTrEnvCXL, PolicyTrEnvRDMA, PolicyReconfig, PolicyCgroup:
		return true
	}
	return false
}

// Config parameterizes a platform.
type Config struct {
	Policy Policy
	Seed   int64
	// Node names this platform's node in exported spans and metrics
	// ("" = "n0"). Clusters set it per member ("n3", "r1n2") so
	// cross-node causal chains name where each hop ran.
	Node string
	// Cores is the node's physical core count.
	Cores int
	// SoftMemCap triggers idle-instance eviction when node usage would
	// exceed it (0 = unlimited). W2 runs with a 32 GB cap.
	SoftMemCap int64
	// KeepAlive is the idle retention window (the paper uses 10 min).
	KeepAlive time.Duration
	// WarmReuse is the dispatch cost of reusing a kept-alive instance.
	WarmReuse time.Duration
	// Warmup excludes invocations arriving before this time from the
	// metrics (the paper warms every system up for ~5 minutes).
	Warmup time.Duration
	// HotFraction places this share of each TrEnv image on the hot pool
	// (1 = everything; <1 spills the tail to the cold pool, the
	// multi-layer configuration).
	HotFraction float64
	// PromoteHotAfter, when > 0, promotes a kept-alive instance's hot
	// working set into node DRAM once it has served this many
	// invocations, removing the steady-state remote-access penalty at
	// the price of per-instance memory (§9.2.1's suggested tuning).
	PromoteHotAfter int
	// Prefetch enables working-set–guided prefetching on the TrEnv
	// restore path: a template's first run records its demand-fault
	// order into the image's working-set log; every later restore
	// replays the log as doorbell-batched fetches racing the
	// invocation, so demand faults on in-flight pages wait for their
	// batch instead of paying a full round trip each (see
	// internal/prefetch). Same-seed runs stay byte-identical with the
	// flag on.
	Prefetch bool
	// PrefetchBatchPages caps pages per batched fetch (0 =
	// prefetch.DefaultBatchPages).
	PrefetchBatchPages int
	// PromoteThreshold, with Prefetch, promotes a recorded run into the
	// node's direct-access promotion cache once its cross-invocation
	// replay count reaches this value — repeat RDMA faults become
	// CXL-cost hits (0 disables promotion).
	PromoteThreshold int
	// PromoteCacheBytes bounds the promotion cache, LRU-evicted
	// (0 = 256 MB).
	PromoteCacheBytes int64
	// PreWarmSandboxes provisions this many cleaned sandboxes into the
	// universal pool before traffic arrives (TrEnv policies), so even
	// the very first burst repurposes instead of building isolation
	// environments under contention.
	PreWarmSandboxes int
	// MaxPerFunction caps concurrently-running instances per function
	// (faasd's scale limit); excess invocations queue FIFO and dispatch
	// as instances free up. 0 = unlimited.
	MaxPerFunction int
	// CleanAfterUse gives Groundhog-style sequential request isolation
	// (§10): after each invocation the instance's memory state is thrown
	// away and re-attached from the template, so a kept-alive instance
	// never carries one request's state into the next. Only meaningful
	// for TrEnv policies (re-attach is a metadata copy); the restore
	// happens off the request's critical path.
	CleanAfterUse bool
	// CXLCapacity / RDMACapacity bound the pools (0 = unlimited).
	CXLCapacity  int64
	RDMACapacity int64
	// Latency overrides the memory-system latency constants (nil =
	// DefaultLatencyModel). Used by the calibration-sensitivity study.
	Latency *mem.LatencyModel

	// Tracer, when non-nil, records a hierarchical span tree for every
	// invocation (queue/sandbox/restore/exec phases) into the ring.
	Tracer *obs.Tracer

	// SLOTarget, when > 0, tracks a latency objective for every
	// registered function: SLOObjective (default 0.99) of post-warmup
	// invocations must finish end-to-end within SLOTarget. Burn rates
	// over sliding virtual-time windows export through the registry; use
	// Platform.SLO() to set per-function overrides.
	SLOTarget    time.Duration
	SLOObjective float64

	// Engine, when non-nil, embeds the platform in an existing simulation
	// (multi-node clusters share one virtual clock).
	Engine *sim.Engine
	// SharedStore, when non-nil, is a snapshot store shared with other
	// nodes attached to the same memory pool: preprocessing happens once
	// per rack and templates resolve machine-independent offsets.
	SharedStore *snapshot.Store

	// Deadline, when > 0, bounds each invocation end-to-end from
	// arrival: an attempt that overruns it terminates with
	// OutcomeDeadline at its next checkpoint instead of completing.
	Deadline time.Duration

	// DisableFallback turns off graceful degradation: a restore whose
	// pool is inside an injected outage window fails the invocation
	// instead of falling back to a local cold start. The availability
	// experiment uses this as its no-recovery baseline.
	DisableFallback bool
	// Retry overrides the fetch retry policy applied to the node's
	// pools by AttachFaults (nil = mem.DefaultRetryPolicy).
	Retry *mem.RetryPolicy
	// OnResult, when non-nil, observes every invocation's terminal
	// outcome. Clusters use it to feed per-node circuit breakers and
	// to re-dispatch work aborted by a node crash.
	OnResult func(InvocationResult)
}

// DefaultConfig returns the testbed-like configuration for a policy.
func DefaultConfig(policy Policy) Config {
	return Config{
		Policy:      policy,
		Seed:        1,
		Cores:       64,
		KeepAlive:   10 * time.Minute,
		WarmReuse:   500 * time.Microsecond,
		HotFraction: 1,
	}
}

// Function is a registered function plus its policy-specific artifacts.
type Function struct {
	Profile workload.FunctionProfile
	Snap    *snapshot.Snapshot
	Img     *snapshot.Image // TrEnv policies
	WS      map[string]int  // recorded working set (lazy policies)
}

// Platform is one simulated node running one policy.
type Platform struct {
	cfg     Config
	eng     *sim.Engine
	node    *mem.Tracker
	rt      *core.Runtime
	cpu     *sim.Resource
	cxl     *mem.Pool
	rdma    *mem.Pool
	tmpfs   *mem.Pool
	store   *snapshot.Store
	fns     map[string]*Function
	warm    map[string][]*core.Instance
	metrics *Metrics
	tracer  *obs.Tracer

	lat        mem.LatencyModel
	memGauge   sim.Gauge
	active     int
	traceEnd   time.Duration
	samplerOn  bool
	sampleStep time.Duration

	slo      *obs.SLOTracker
	recorder *obs.Recorder
	recEvery time.Duration
	alerts   *alert.Engine

	// prefetcher replays working-set logs on TrEnv restores; promoCache
	// is its direct-access promotion cache (both nil unless
	// Config.Prefetch is set on a TrEnv policy).
	prefetcher *prefetch.Prefetcher
	promoCache *mem.PromotionCache

	// nodeName labels spans/IDs; invSeq numbers invocations so trace
	// identity is deterministic (hash of node, function, sequence).
	nodeName string
	invSeq   int64
	// pendingDispatch carries the dispatcher label from
	// InvokeDispatched to the next invoke() entry (consumed before any
	// simulated wait, so concurrent invocations cannot observe it).
	pendingDispatch string
	// pendingToken carries the dispatcher's cancellation token from
	// InvokeAttempt to the next invoke() entry, same contract as
	// pendingDispatch.
	pendingToken *CancelToken

	// Per-function admission control (MaxPerFunction).
	running map[string]int
	waiting map[string][]*sim.Proc

	// crashed marks a dead node: in-flight invocations abort at their
	// next checkpoint, new ones abort immediately (see Crash).
	crashed bool
}

// New creates a platform for cfg.
func New(cfg Config) *Platform {
	if cfg.Cores <= 0 {
		cfg.Cores = 64
	}
	if cfg.KeepAlive == 0 {
		cfg.KeepAlive = 10 * time.Minute
	}
	if cfg.HotFraction == 0 {
		cfg.HotFraction = 1
	}
	lat := mem.DefaultLatencyModel()
	if cfg.Latency != nil {
		lat = *cfg.Latency
	}
	eng := cfg.Engine
	if eng == nil {
		eng = sim.NewEngine(cfg.Seed)
	}
	node := mem.NewTracker("node-dram", 0)
	pl := &Platform{
		cfg:        cfg,
		eng:        eng,
		node:       node,
		rt:         core.DefaultRuntime(node),
		lat:        lat,
		cpu:        sim.NewResource("cores", cfg.Cores),
		cxl:        mem.NewPool(mem.CXL, cfg.CXLCapacity, lat),
		rdma:       mem.NewPool(mem.RDMA, cfg.RDMACapacity, lat),
		tmpfs:      mem.NewPool(mem.Tmpfs, 0, lat),
		fns:        make(map[string]*Function),
		warm:       make(map[string][]*core.Instance),
		metrics:    NewMetrics(),
		tracer:     cfg.Tracer,
		sampleStep: time.Second,
		running:    make(map[string]int),
		waiting:    make(map[string][]*sim.Proc),
		nodeName:   cfg.Node,
	}
	if pl.nodeName == "" {
		pl.nodeName = "n0"
	}
	pl.rt.Lat = lat
	if cfg.SLOTarget > 0 {
		obj := cfg.SLOObjective
		if obj == 0 {
			obj = 0.99
		}
		pl.slo = obs.NewSLOTracker()
		pl.slo.SetDefault(obs.SLO{Target: cfg.SLOTarget, Objective: obj})
	}
	switch {
	case cfg.SharedStore != nil:
		pl.store = cfg.SharedStore
		pl.cxl = cfg.SharedStore.Blocks().Pool()
	case cfg.Policy == PolicyTrEnvRDMA:
		pl.store = snapshot.NewStore(mem.NewBlockStore(pl.rdma), mmtemplate.NewRegistry())
	default:
		pl.store = snapshot.NewStore(mem.NewBlockStore(pl.cxl), mmtemplate.NewRegistry())
	}
	// Rack-attached nodes keep their cold tier on the memory server too:
	// a cold-tail RDMA fetch is a cross-node operation there.
	if cfg.SharedStore != nil && pl.cxl.Home() != "" {
		pl.rdma.SetHome(pl.cxl.Home())
	}
	// Label remaining unplaced pools with their hosting node; a
	// rack-shared pool keeps the home the cluster stamped on it.
	for _, pool := range []*mem.Pool{pl.cxl, pl.rdma, pl.tmpfs} {
		if pool.Home() == "" {
			pool.SetHome(pl.nodeName)
		}
	}
	// Working-set prefetching rides the TrEnv restore path only: other
	// policies restore eagerly (or not at all), so there is nothing to
	// replay.
	if cfg.Prefetch && cfg.Policy.IsTrEnv() {
		if cfg.PromoteThreshold > 0 {
			capBytes := cfg.PromoteCacheBytes
			if capBytes == 0 {
				capBytes = 256 << 20
			}
			pl.promoCache = mem.NewPromotionCache(capBytes, lat)
			pl.promoCache.Pool().SetHome(pl.nodeName)
		}
		pl.prefetcher = prefetch.New(pl.promoCache, prefetch.Config{
			BatchPages:   cfg.PrefetchBatchPages,
			PromoteAfter: cfg.PromoteThreshold,
		})
		pl.rt.Prefetcher = pl.prefetcher
	}
	return pl
}

// Prefetcher returns the node's working-set prefetcher (nil unless
// Config.Prefetch is set on a TrEnv policy).
func (pl *Platform) Prefetcher() *prefetch.Prefetcher { return pl.prefetcher }

// PromotionCache returns the node's hot-page promotion cache (nil
// unless prefetching with a promotion threshold is configured).
func (pl *Platform) PromotionCache() *mem.PromotionCache { return pl.promoCache }

// NodeName returns the node label this platform stamps on spans.
func (pl *Platform) NodeName() string { return pl.nodeName }

// Policy returns the scheduling policy this platform runs — part of a
// run report's identity.
func (pl *Platform) Policy() Policy { return pl.cfg.Policy }

// Seed returns the simulation seed the platform was built with.
func (pl *Platform) Seed() int64 { return pl.cfg.Seed }

// Engine exposes the simulation engine (for composing experiments).
func (pl *Platform) Engine() *sim.Engine { return pl.eng }

// Node returns the node DRAM tracker.
func (pl *Platform) Node() *mem.Tracker { return pl.node }

// Runtime returns the underlying container runtime.
func (pl *Platform) Runtime() *core.Runtime { return pl.rt }

// Metrics returns the collected metrics.
func (pl *Platform) Metrics() *Metrics { return pl.metrics }

// MemoryGauge returns node DRAM usage over time (sampled).
func (pl *Platform) MemoryGauge() *sim.Gauge { return &pl.memGauge }

// SetTracer attaches (or detaches, with nil) an invocation span
// recorder.
func (pl *Platform) SetTracer(t *obs.Tracer) { pl.tracer = t }

// Tracer returns the attached span recorder (nil when tracing is off).
func (pl *Platform) Tracer() *obs.Tracer { return pl.tracer }

// RegisterMetrics publishes the platform's full metric surface into
// reg: invocation counters and latency histograms, node DRAM and
// keep-alive-pool gauges, memory-pool contention, page-fault/CoW
// traffic, template sharing, sandbox-factory reuse counters, and (when
// configured) SLO burn rates.
func (pl *Platform) RegisterMetrics(reg *obs.Registry) {
	pl.RegisterMetricsLabeled(reg, nil)
}

// RegisterMetricsLabeled is RegisterMetrics with extra labels merged
// into every series, so a fleet of nodes exports through one registry
// (labels like node="n3" or rack="r1"). Resources shared with other
// nodes — the rack's CXL pool and snapshot store when cfg.SharedStore
// is set — are NOT registered here; register them once at the
// cluster level to keep series unique.
func (pl *Platform) RegisterMetricsLabeled(reg *obs.Registry, labels map[string]string) {
	pl.metrics.RegisterLabeled(reg, labels)
	reg.GaugeFunc("trenv_node_mem_used_bytes", "Node DRAM currently in use.", labels,
		func() float64 { return float64(pl.node.Used()) })
	reg.GaugeFunc("trenv_node_mem_peak_bytes", "Node DRAM high-water mark.", labels,
		func() float64 { return float64(pl.node.Peak()) })
	reg.GaugeFunc("trenv_warm_instances", "Kept-alive instances in the pool.", labels,
		func() float64 { return float64(pl.WarmCount()) })
	reg.GaugeFunc("trenv_active_invocations", "Invocations currently in flight.", labels,
		func() float64 { return float64(pl.active) })
	pools := []*mem.Pool{pl.rdma, pl.tmpfs}
	if pl.cfg.SharedStore == nil {
		pools = append(pools, pl.cxl)
		pl.store.Registry().RegisterMetrics(reg, labels)
	}
	for _, pool := range pools {
		pool.RegisterMetricsLabeled(reg, labels)
	}
	if pl.promoCache != nil {
		pl.promoCache.RegisterMetricsLabeled(reg, labels)
	}
	pagetable.RegisterStats(reg, labels, &pl.rt.PageStats)
	reg.CounterFunc("trenv_sandboxes_created_total", "Sandboxes built from scratch by the factory.", labels,
		pl.rt.Factory.Created)
	reg.CounterFunc("trenv_sandboxes_repurposed_total", "Sandbox handoffs served by reuse.", labels,
		pl.rt.Factory.Repurposed)
	if pl.slo != nil {
		pl.slo.Register(reg, labels, pl.eng.Now)
	}
}

// SLO returns the platform's SLO tracker (nil unless Config.SLOTarget
// was set).
func (pl *Platform) SLO() *obs.SLOTracker { return pl.slo }

// FaultStats returns a copy of the node-wide page-fault/CoW/traffic
// aggregate across every address space the runtime restored.
func (pl *Platform) FaultStats() pagetable.Stats { return pl.rt.PageStats }

// AttachRecorder samples reg's series into rec every interval of
// virtual time while RunTrace drives the platform (interval <= 0 uses
// obs.DefaultSampleInterval). Attach before RunTrace.
func (pl *Platform) AttachRecorder(rec *obs.Recorder, every time.Duration) {
	pl.recorder = rec
	pl.recEvery = every
}

// AttachAlerts binds an alert engine to the platform: it evaluates on
// the attached recorder's sampling instants (bound when RunTrace
// starts), links incidents to the platform's tracer, and watches the
// SLO tracker when one is configured. Attach before RunTrace, alongside
// AttachRecorder — without a recorder nothing drives evaluation.
func (pl *Platform) AttachAlerts(ae *alert.Engine) {
	pl.alerts = ae
	ae.SetTracer(pl.tracer)
	if pl.slo != nil {
		ae.AddSLO(pl.slo)
	}
}

// Alerts returns the attached alert engine (nil unless AttachAlerts was
// called).
func (pl *Platform) Alerts() *alert.Engine { return pl.alerts }

// PoolUsage returns bytes held in the CXL, RDMA, and tmpfs pools.
func (pl *Platform) PoolUsage() (cxl, rdma, tmpfs int64) {
	return pl.cxl.Tracker().Used(), pl.rdma.Tracker().Used(), pl.tmpfs.Tracker().Used()
}

// Register deploys a function: synthesizing its snapshot and preparing
// the policy's artifacts (consolidated image + templates for TrEnv,
// tmpfs snapshot files + recorded working sets for the others).
func (pl *Platform) Register(prof workload.FunctionProfile) error {
	if _, ok := pl.fns[prof.Name]; ok {
		return fmt.Errorf("faas: function %q already registered", prof.Name)
	}
	fn := &Function{Profile: prof, Snap: prof.Snapshot()}
	switch pl.cfg.Policy {
	case PolicyTrEnvCXL:
		// Another node on the same pool may have preprocessed already:
		// the consolidated image and its templates are rack-shared.
		if img := pl.store.Image(prof.Name); img != nil {
			fn.Img = img
			break
		}
		place := snapshot.Placement{Hot: pl.cxl, HotFraction: pl.cfg.HotFraction}
		if pl.cfg.HotFraction < 1 {
			place.Cold = pl.rdma
		}
		img, err := pl.store.Preprocess(fn.Snap, place)
		if err != nil {
			return err
		}
		fn.Img = img
	case PolicyTrEnvRDMA:
		img, err := pl.store.Preprocess(fn.Snap, snapshot.Placement{Hot: pl.rdma, HotFraction: 1})
		if err != nil {
			return err
		}
		fn.Img = img
	case PolicyREAPPlus, PolicyFaaSnapPlus:
		fn.WS = prof.WorkingSet()
		pl.tmpfs.Tracker().MustAlloc(fn.Snap.MemBytes()) // snapshot file
	case PolicyCRIU, PolicyReconfig, PolicyCgroup:
		pl.tmpfs.Tracker().MustAlloc(fn.Snap.MemBytes()) // snapshot file
	case PolicyFaasd:
		// no snapshot artifacts
	default:
		return fmt.Errorf("faas: unknown policy %q", pl.cfg.Policy)
	}
	pl.fns[prof.Name] = fn
	return nil
}

// RegisterWithImage deploys a function whose consolidated image and
// templates were preprocessed elsewhere — a multi-rack deployment where
// this node reaches the image over the inter-rack fabric instead of its
// own rack's pool. TrEnv policies only.
func (pl *Platform) RegisterWithImage(prof workload.FunctionProfile, img *snapshot.Image) error {
	if !pl.cfg.Policy.IsTrEnv() {
		return fmt.Errorf("faas: policy %q cannot use preprocessed images", pl.cfg.Policy)
	}
	if img == nil {
		return fmt.Errorf("faas: nil image for %q", prof.Name)
	}
	if _, ok := pl.fns[prof.Name]; ok {
		return fmt.Errorf("faas: function %q already registered", prof.Name)
	}
	pl.fns[prof.Name] = &Function{Profile: prof, Snap: img.Snapshot, Img: img}
	return nil
}

// Redeploy replaces a registered function's code/snapshot (TrEnv
// policies): a fresh consolidated image and templates are built, warm
// instances of the old version are drained, and the retired image's pool
// blocks are released once they are gone.
func (pl *Platform) Redeploy(prof workload.FunctionProfile) error {
	fn, ok := pl.fns[prof.Name]
	if !ok {
		return fmt.Errorf("faas: redeploy of unknown function %q", prof.Name)
	}
	if fn.Img == nil {
		return fmt.Errorf("faas: policy %q does not use preprocessed images", pl.cfg.Policy)
	}
	snap := prof.Snapshot()
	place := snapshot.Placement{Hot: pl.store.Blocks().Pool(), HotFraction: pl.cfg.HotFraction}
	if pl.cfg.HotFraction < 1 {
		place.Cold = pl.rdma
	}
	fresh, retired, err := pl.store.Update(snap, place)
	if err != nil {
		return err
	}
	fn.Profile = prof
	fn.Snap = snap
	fn.Img = fresh
	// Drain stale warm instances; their sandboxes recycle as usual.
	stale := pl.warm[prof.Name]
	pl.warm[prof.Name] = nil
	pl.eng.Go("redeploy-drain/"+prof.Name, func(p *sim.Proc) {
		for _, in := range stale {
			pl.release(p, in)
		}
		if err := pl.store.ReleaseImage(retired); err != nil {
			pl.metrics.Errors.Inc()
		}
	})
	return nil
}

// takeWarm pops the most recently used warm instance for fn.
func (pl *Platform) takeWarm(fn string) *core.Instance {
	list := pl.warm[fn]
	if len(list) == 0 {
		return nil
	}
	in := list[len(list)-1]
	pl.warm[fn] = list[:len(list)-1]
	return in
}

// parkWarm returns an instance to the keep-alive pool and schedules its
// expiry.
func (pl *Platform) parkWarm(in *core.Instance) {
	in.IdleSince = pl.eng.Now()
	pl.warm[in.Function] = append(pl.warm[in.Function], in)
	idleMark := in.IdleSince
	pl.eng.After(pl.cfg.KeepAlive, func() {
		// Still idle since the same moment? Then it expired.
		if in.IdleSince != idleMark || !pl.removeWarm(in) {
			return
		}
		pl.eng.Go("expire/"+in.Function, func(p *sim.Proc) {
			t0 := p.Now()
			pl.release(p, in)
			pl.recordLifecycle("expire/"+in.Function, in.Function, t0, p.Now(),
				in.LastTraceID, "after")
		})
	})
}

// recordLifecycle records a non-invocation root span (keep-alive
// eviction, expiry) causally linked to the invocation trace that led
// to it. The tracer assigns the span's own deterministic trace ID.
func (pl *Platform) recordLifecycle(name, fn string, start, end time.Duration, cause, causeType string) {
	if pl.tracer == nil {
		return
	}
	sp := obs.NewSpan(name, start, end)
	sp.SetAttr("node", pl.nodeName).SetAttr("function", fn)
	if cause != "" {
		sp.AddLink(obs.Link{TraceID: cause, Type: causeType})
	}
	pl.tracer.Record(sp)
}

func (pl *Platform) removeWarm(in *core.Instance) bool {
	list := pl.warm[in.Function]
	for i, cand := range list {
		if cand == in {
			pl.warm[in.Function] = append(list[:i], list[i+1:]...)
			return true
		}
	}
	return false
}

// release tears an instance down, recycling the sandbox under TrEnv
// policies.
func (pl *Platform) release(p *sim.Proc, in *core.Instance) {
	pl.rt.Release(p, in, pl.cfg.Policy.IsTrEnv())
}

// evictForSpace evicts least-recently-used idle instances while the soft
// cap would be exceeded by an allocation of need bytes. traceID is the
// admitting invocation the eviction spans link back to.
func (pl *Platform) evictForSpace(p *sim.Proc, traceID string, need int64) {
	if pl.cfg.SoftMemCap == 0 {
		return
	}
	for pl.node.Used()+need > pl.cfg.SoftMemCap {
		victim := pl.oldestIdle()
		if victim == nil {
			return
		}
		pl.removeWarm(victim)
		pl.metrics.Evictions.Inc()
		t0 := p.Now()
		pl.release(p, victim)
		pl.recordLifecycle("evict/"+victim.Function, victim.Function, t0, p.Now(),
			traceID, "evicted-by")
	}
}

func (pl *Platform) oldestIdle() *core.Instance {
	var victim *core.Instance
	for _, list := range pl.warm {
		for _, in := range list {
			if victim == nil || in.IdleSince < victim.IdleSince {
				victim = in
			}
		}
	}
	return victim
}

// estimateStartBytes approximates the node memory a fresh start needs,
// used only to drive soft-cap eviction.
func (pl *Platform) estimateStartBytes(fn *Function) int64 {
	img := fn.Snap.MemBytes()
	switch pl.cfg.Policy {
	case PolicyFaasd, PolicyCRIU, PolicyReconfig, PolicyCgroup:
		return img + pl.rt.ContainerOverhead
	case PolicyREAPPlus, PolicyFaaSnapPlus:
		var ws int64
		for _, pages := range fn.WS {
			ws += int64(pages) * mem.PageSize
		}
		return ws + pl.rt.VMOverhead
	default: // TrEnv: CoW writes only
		return int64(float64(img)*fn.Profile.WriteFrac) + pl.rt.ContainerOverhead
	}
}

// contentionPools returns the pools an invocation keeps busy while it
// runs under the current policy.
func (pl *Platform) contentionPools() []*mem.Pool {
	switch pl.cfg.Policy {
	case PolicyTrEnvCXL:
		if pl.cfg.HotFraction < 1 {
			return []*mem.Pool{pl.cxl, pl.rdma}
		}
		return []*mem.Pool{pl.cxl}
	case PolicyTrEnvRDMA:
		return []*mem.Pool{pl.rdma}
	case PolicyREAPPlus, PolicyFaaSnapPlus:
		return []*mem.Pool{pl.tmpfs}
	}
	return nil
}

// start brings up a fresh instance per the policy.
func (pl *Platform) start(p *sim.Proc, fn *Function) (*core.Instance, core.Startup, error) {
	switch pl.cfg.Policy {
	case PolicyFaasd:
		return pl.rt.StartCold(p, fn.Profile)
	case PolicyCRIU:
		return pl.rt.StartCRIU(p, fn.Profile, fn.Snap)
	case PolicyREAPPlus:
		return pl.rt.StartLazyVM(p, fn.Profile, fn.Snap, pl.tmpfs, snapshot.ReapConfig(fn.WS))
	case PolicyFaaSnapPlus:
		return pl.rt.StartLazyVM(p, fn.Profile, fn.Snap, pl.tmpfs, snapshot.FaaSnapConfig(fn.WS))
	case PolicyTrEnvCXL, PolicyTrEnvRDMA:
		return pl.rt.StartTrEnv(p, fn.Profile, fn.Img)
	case PolicyReconfig:
		return pl.rt.StartReconfig(p, fn.Profile, fn.Snap, false)
	case PolicyCgroup:
		return pl.rt.StartReconfig(p, fn.Profile, fn.Snap, true)
	}
	return nil, core.Startup{}, fmt.Errorf("faas: unknown policy %q", pl.cfg.Policy)
}

// admit blocks p until the function has a free instance slot.
func (pl *Platform) admit(p *sim.Proc, name string) {
	if pl.cfg.MaxPerFunction <= 0 {
		return
	}
	// A crash wakes queued procs; they fall through here and abort at
	// the post-admit checkpoint instead of waiting forever.
	for !pl.crashed && pl.running[name] >= pl.cfg.MaxPerFunction {
		pl.waiting[name] = append(pl.waiting[name], p)
		pl.metrics.Queued.Inc()
		p.Park()
	}
	pl.running[name]++
}

// leave releases p's instance slot and wakes the next queued invocation.
func (pl *Platform) leave(name string) {
	if pl.cfg.MaxPerFunction <= 0 {
		return
	}
	pl.running[name]--
	if q := pl.waiting[name]; len(q) > 0 {
		next := q[0]
		pl.waiting[name] = q[1:]
		pl.eng.Resume(next)
	}
}

// failInvocation counts a failed invocation and, when tracing, records
// an error-status span covering [t0, now].
func (pl *Platform) failInvocation(traceID, name string, t0, now time.Duration, err error) {
	pl.metrics.Errors.Inc()
	if pl.tracer == nil {
		return
	}
	sp := obs.NewSpan("invoke/"+name, t0, now)
	sp.SetAttr("function", name).SetAttr("policy", string(pl.cfg.Policy)).SetAttr("node", pl.nodeName)
	if t := errType(err); t != "" {
		sp.SetAttr("error_type", t)
	}
	if ft := faultTraceOf(err); ft != "" {
		// Walkable back to the injected fault that caused the failure.
		sp.AddLink(obs.Link{TraceID: ft, Type: "caused-by"})
	}
	sp.Fail(err)
	sp.AssignIDs(traceID)
	pl.tracer.Record(sp)
}

// poolByKind maps a pool-kind label back to the platform's pool.
func (pl *Platform) poolByKind(kind string) *mem.Pool {
	for _, pool := range []*mem.Pool{pl.cxl, pl.rdma, pl.tmpfs} {
		if pool.Kind().String() == kind {
			return pool
		}
	}
	return nil
}

// emitPoolFetch records the pool-side half of a remote memory fetch —
// a root span on the pool's home node, cross-linked with the
// invocation-side span (target must already have its IDs assigned) —
// so a remote restore/exec fetch is walkable across nodes as one
// causal chain. site disambiguates multiple fetches in one invocation
// ("exec", "restore").
func (pl *Platform) emitPoolFetch(target *obs.Span, fn, kind, site string, seq int64) {
	home := pl.nodeName
	if pool := pl.poolByKind(kind); pool != nil && pool.Home() != "" {
		home = pool.Home()
	}
	ftid := obs.TraceIDFor(home, "pool-fetch", kind, site, fn, strconv.FormatInt(seq, 10))
	ps := obs.NewSpan("pool-fetch/"+kind, target.Start, target.End)
	ps.SetAttr("node", home).SetAttr("pool", kind).SetAttr("function", fn).SetAttr("site", site)
	if pages := target.Attrs["pages"]; pages != "" {
		ps.SetAttr("pages", pages)
	}
	ps.AssignIDs(ftid)
	ps.AddLink(obs.Link{TraceID: target.TraceID, SpanID: target.SpanID, Type: "serves"})
	target.SetAttr("pool-node", home)
	target.AddLink(obs.Link{TraceID: ftid, SpanID: ps.SpanID, Type: "remote-fetch"})
	pl.tracer.Record(ps)
}

// invoke is the full lifecycle of one invocation.
func (pl *Platform) invoke(p *sim.Proc, name string) {
	tArrive := p.Now()
	dispatcher := pl.pendingDispatch
	pl.pendingDispatch = ""
	tok := pl.pendingToken
	pl.pendingToken = nil
	seq := pl.invSeq
	pl.invSeq++
	// Trace identity is a hash of (node, function, sequence): no
	// randomness, no wall clock, so same-seed runs reproduce it.
	traceID := obs.TraceIDFor(pl.nodeName, name, strconv.FormatInt(seq, 10))
	tok.setTrace(traceID)
	// An attempt's absolute deadline, or 0 when unbounded. Checked at
	// the same checkpoints as pl.crashed — cancellation and deadlines
	// are cooperative, never preemptive.
	var deadline time.Duration
	if pl.cfg.Deadline > 0 {
		deadline = tArrive + pl.cfg.Deadline
	}
	// Every invocation terminates in exactly one outcome, delivered to
	// OnResult on every exit path — nothing is silently lost.
	res := InvocationResult{Function: name, Node: pl.nodeName, TraceID: traceID, Outcome: OutcomeError, Token: tok}
	defer func() {
		if pl.cfg.OnResult != nil {
			pl.cfg.OnResult(res)
		}
	}()
	fn, ok := pl.fns[name]
	if !ok {
		res.Err = fmt.Errorf("function %q not registered", name)
		pl.failInvocation(traceID, name, tArrive, p.Now(), res.Err)
		return
	}
	if pl.crashed {
		pl.abortCrashed(&res, traceID, name, tArrive, nil)
		return
	}
	if tok.Cancelled() {
		pl.abortCancelled(&res, tok, traceID, name, tArrive, nil)
		return
	}
	pl.active++
	defer func() { pl.active-- }()
	pl.admit(p, name)
	defer pl.leave(name)
	if pl.crashed {
		pl.abortCrashed(&res, traceID, name, tArrive, nil)
		return
	}
	if tok.Cancelled() {
		pl.abortCancelled(&res, tok, traceID, name, tArrive, nil)
		return
	}
	if deadline > 0 && p.Now() > deadline {
		pl.abortDeadline(&res, traceID, name, tArrive, nil)
		return
	}
	// Metrics measure e2e from admission (matching the per-function
	// scale-limit semantics); the span additionally covers queueing.
	t0 := p.Now()
	tAdmit := t0
	var st core.Startup
	in := pl.takeWarm(name)
	tStart := tAdmit
	fellBack := false
	var fallbackAt time.Duration
	var fallbackCause *mem.ErrPoolUnavailable
	if in != nil {
		p.Sleep(pl.cfg.WarmReuse)
		st = core.Startup{Path: core.PathWarm, Restore: pl.cfg.WarmReuse}
	} else {
		pl.evictForSpace(p, traceID, pl.estimateStartBytes(fn))
		tStart = p.Now() // soft-cap eviction work ends here
		var err error
		in, st, err = pl.start(p, fn)
		if err != nil {
			var pu *mem.ErrPoolUnavailable
			if errors.As(err, &pu) && !pl.cfg.DisableFallback && pl.cfg.Policy != PolicyFaasd {
				// Graceful degradation: the restore source is inside an
				// injected outage window. Build the instance from scratch
				// locally instead of wedging — slower, but available.
				fallbackAt = p.Now()
				in, st, err = pl.rt.StartCold(p, fn.Profile)
				if err != nil {
					res.Err = err
					pl.failInvocation(traceID, name, tArrive, p.Now(),
						fmt.Errorf("fallback cold start also failed: %w", err))
					return
				}
				st.Path = core.PathFallback
				in.Path = core.PathFallback
				fellBack = true
				fallbackCause = pu
				res.FaultTrace = pu.FaultTrace
				pl.metrics.Fallbacks.Inc()
			} else {
				res.Err = err
				res.FaultTrace = faultTraceOf(err)
				pl.failInvocation(traceID, name, tArrive, p.Now(), err)
				return
			}
		}
	}
	// A recording first run publishes its working-set log only if the
	// invocation completes: Seal on success, abandon on failure so a
	// later first run can re-record a full fault order.
	finishRecording := func(ok bool) {
		if st.Prefetch == nil || !st.Prefetch.Recording || fn.Img == nil || fn.Img.WSLog == nil {
			return
		}
		if ok {
			fn.Img.WSLog.Seal()
		} else {
			fn.Img.WSLog.AbortRecording()
		}
	}
	if pl.crashed {
		finishRecording(false)
		pl.abortCrashed(&res, traceID, name, tArrive, in)
		return
	}
	if tok.Cancelled() {
		finishRecording(false)
		pl.abortCancelled(&res, tok, traceID, name, tArrive, in)
		return
	}
	if deadline > 0 && p.Now() > deadline {
		finishRecording(false)
		pl.abortDeadline(&res, traceID, name, tArrive, in)
		return
	}
	tUp := p.Now() // startup complete
	if pl.cfg.PromoteHotAfter > 0 && in.Uses >= pl.cfg.PromoteHotAfter {
		promoted, err := pl.rt.PromoteWorkingSet(in)
		if err != nil {
			finishRecording(false)
			res.Err = err
			pl.failInvocation(traceID, name, tArrive, p.Now(), err)
			pl.release(p, in)
			return
		}
		if promoted > 0 {
			p.Sleep(pl.lat.CopyCost(promoted))
			pl.metrics.Promotions.Inc()
		}
	}
	tExec := p.Now()
	es, err := pl.rt.Execute(p, in, core.ExecOptions{
		CPU:             pl.cpu,
		ContentionPools: pl.contentionPools(),
	})
	res.Retries += es.Retries
	if res.FaultTrace == "" {
		res.FaultTrace = es.FaultTrace
	}
	if es.Retries > 0 {
		pl.metrics.Retries.IncBy(int64(es.Retries))
	}
	if err != nil {
		finishRecording(false)
		res.Err = err
		if res.FaultTrace == "" {
			res.FaultTrace = faultTraceOf(err)
		}
		pl.failInvocation(traceID, name, tArrive, p.Now(), err)
		pl.release(p, in)
		return
	}
	if pl.crashed {
		finishRecording(false)
		pl.abortCrashed(&res, traceID, name, tArrive, in)
		return
	}
	if tok.Cancelled() {
		finishRecording(false)
		pl.abortCancelled(&res, tok, traceID, name, tArrive, in)
		return
	}
	if deadline > 0 && p.Now() > deadline {
		finishRecording(false)
		pl.abortDeadline(&res, traceID, name, tArrive, in)
		return
	}
	tEnd := p.Now()
	in.LastTraceID = traceID
	res.Outcome = OutcomeSuccess
	if fellBack {
		res.Outcome = OutcomeFallback
	}
	res.Startup = st.Total()
	res.FetchLat = es.FetchLat
	res.PrefetchWait = es.PrefetchWait
	finishRecording(true)
	if st.Prefetch != nil {
		if st.Prefetch.Recording {
			pl.metrics.PrefetchRecordings.Inc()
		} else if st.Prefetch.Batches > 0 || st.Prefetch.PromotedPages > 0 {
			pl.metrics.PrefetchLaunches.Inc()
			pl.metrics.PrefetchBatches.IncBy(int64(st.Prefetch.Batches))
			pl.metrics.PrefetchPages.IncBy(int64(st.Prefetch.Pages))
			pl.metrics.PromotedPages.IncBy(int64(st.Prefetch.PromotedPages))
			if st.Prefetch.Batches > 0 {
				pl.metrics.PrefetchBatchSize.Add(float64(st.Prefetch.Pages) / float64(st.Prefetch.Batches))
			}
		}
	}
	if es.PrefetchHits > 0 {
		pl.metrics.PrefetchHits.IncBy(int64(es.PrefetchHits))
	}
	if pl.prefetcher != nil && es.FetchedPages > 0 {
		// Demand fetches the replay did not cover (or did not win).
		pl.metrics.PrefetchMisses.IncBy(int64(es.FetchedPages))
	}
	if t0 >= pl.cfg.Warmup {
		pl.metrics.Record(name, st, es, tEnd-t0)
		if pl.tracer != nil {
			pl.metrics.ObserveExemplar(name, float64(tEnd-t0)/float64(time.Millisecond), traceID)
		}
		if pl.slo != nil {
			pl.slo.Record(name, tEnd, tEnd-t0)
		}
	}
	if pl.tracer != nil {
		root := obs.NewSpan("invoke/"+name, tArrive, tEnd)
		root.SetAttr("function", name).SetAttr("policy", string(pl.cfg.Policy)).
			SetAttr("path", string(st.Path)).SetAttr("node", pl.nodeName)
		if dispatcher != "" {
			// Zero-width placement step: the cluster picked this node at
			// arrival time.
			root.SetAttr("dispatcher", dispatcher)
			root.Child("pick", tArrive, tArrive).SetAttr("dispatcher", dispatcher)
		}
		if tAdmit > tArrive {
			root.Child("queue", tArrive, tAdmit)
		}
		if tStart > tAdmit {
			root.Child("evict", tAdmit, tStart)
		}
		if fellBack {
			// The failed remote-restore attempt, linked to the injected
			// fault that caused it, then the fallback cold start wrapping
			// the actual startup breakdown — the graceful-degradation
			// chain is walkable from the invocation's critical path.
			rf := root.Child("restore-failed", tStart, fallbackAt)
			rf.SetAttr("error_type", "pool-unavailable").
				SetAttr("pool", fallbackCause.Pool)
			rf.Fail(fallbackCause)
			if fallbackCause.FaultTrace != "" {
				rf.AddLink(obs.Link{TraceID: fallbackCause.FaultTrace, Type: "caused-by"})
			}
			fb := root.Child("fallback", fallbackAt, tUp)
			fb.SetAttr("cause", "pool-unavailable")
			fb.Children = append(fb.Children, core.StartupSpan(st, fallbackAt))
		} else {
			root.Children = append(root.Children, core.StartupSpan(st, tStart))
		}
		if tExec > tUp {
			root.Child("promote", tUp, tExec)
		}
		exec := root.Child("exec", tExec, tEnd)
		if es.CPUWait > 0 {
			exec.Child("cpu-wait", tExec, tExec+es.CPUWait)
		}
		var execFetch *obs.Span
		if es.FetchedPages > 0 && es.FetchLat > 0 {
			// The pages execution pulled from remote memory, placed right
			// after the core was acquired (fetch latency is charged as
			// on-CPU stall time).
			fs := tExec + es.CPUWait
			execFetch = exec.Child("remote-fetch", fs, fs+es.FetchLat)
			execFetch.SetAttr("pool", es.FetchPool).
				SetAttr("pages", strconv.Itoa(es.FetchedPages))
			if es.Retries > 0 {
				// Retried attempts and the fault that forced them, linked
				// so tail analysis can walk fetch → fault.
				execFetch.SetAttr("retries", strconv.Itoa(es.Retries))
				if es.FaultTrace != "" {
					execFetch.AddLink(obs.Link{TraceID: es.FaultTrace, Type: "caused-by"})
				}
			}
		}
		root.AssignIDs(traceID)
		if execFetch != nil {
			pl.emitPoolFetch(execFetch, name, es.FetchPool, "exec", seq)
		}
		if st.RestorePool != "" && st.RestorePool != "local" {
			// The restore's copy phase read a remote medium: link its span
			// with a pool-side twin on the medium's home node.
			var copySp *obs.Span
			root.Walk(func(_ int, sp *obs.Span) {
				if copySp == nil && sp.Name == "copy" {
					copySp = sp
				}
			})
			if copySp != nil {
				pl.emitPoolFetch(copySp, name, st.RestorePool, "restore", seq)
			}
		}
		if st.Prefetch != nil && !st.Prefetch.Recording && st.Prefetch.Batches > 0 {
			// The working-set replay races the invocation on its own
			// trace — [tUp, tUp+Latency] overlaps exec instead of
			// extending the critical path — cross-linked with the restore
			// span that launched it.
			pf := obs.NewSpan("prefetch/"+name, tUp, tUp+st.Prefetch.Latency)
			pf.SetAttr("function", name).SetAttr("node", pl.nodeName).
				SetAttr("pool", st.Prefetch.Pool).
				SetAttr("pages", strconv.Itoa(st.Prefetch.Pages)).
				SetAttr("batches", strconv.Itoa(st.Prefetch.Batches))
			if st.Prefetch.PromotedPages > 0 {
				pf.SetAttr("promoted_pages", strconv.Itoa(st.Prefetch.PromotedPages))
			}
			if st.Prefetch.Err != nil {
				pf.Fail(st.Prefetch.Err)
			}
			pfTid := obs.TraceIDFor(pl.nodeName, "prefetch", name, strconv.FormatInt(seq, 10))
			pf.AssignIDs(pfTid)
			var restoreSp *obs.Span
			root.Walk(func(_ int, sp *obs.Span) {
				if restoreSp == nil && sp.Name == "restore" {
					restoreSp = sp
				}
			})
			if restoreSp != nil {
				pf.AddLink(obs.Link{TraceID: root.TraceID, SpanID: restoreSp.SpanID, Type: "launched-by"})
				restoreSp.AddLink(obs.Link{TraceID: pfTid, SpanID: pf.SpanID, Type: "prefetch"})
			}
			pl.tracer.Record(pf)
		}
		pl.tracer.Record(root)
	}
	if pl.cfg.CleanAfterUse && fn.Img != nil {
		// Groundhog-style: scrub the request's memory state before the
		// instance can serve anyone else. The template re-attach costs
		// metadata-copy time, paid here (off the next request's path).
		old := in.Restored
		fresh, err := snapshot.RestoreTemplate(fn.Img, pl.node, pl.lat, pl.rt.AttachCosts, pl.rt.RestoreCosts)
		if err != nil {
			pl.metrics.Errors.Inc()
			pl.release(p, in)
			return
		}
		fresh.SetStatsSink(&pl.rt.PageStats)
		p.Sleep(fresh.Latency)
		in.Restored = fresh
		old.ReleaseAll()
		pl.metrics.CleanRestores.Inc()
	}
	pl.parkWarm(in)
}

// Invoke schedules one invocation at virtual time at.
func (pl *Platform) Invoke(at time.Duration, function string) {
	pl.eng.At(at, "invoke/"+function, func(p *sim.Proc) { pl.invoke(p, function) })
}

// InvokeNow runs one invocation inside the calling simulated process —
// the cluster dispatcher uses this after picking a node at arrival time.
func (pl *Platform) InvokeNow(p *sim.Proc, function string) { pl.invoke(p, function) }

// InvokeDispatched is InvokeNow with the dispatcher's name stamped on
// the invocation's root span (a zero-width "pick" step plus a
// dispatcher= attribute), so a cluster trace shows where placement
// happened before the node-local phases.
func (pl *Platform) InvokeDispatched(p *sim.Proc, function, dispatcher string) {
	pl.pendingDispatch = dispatcher
	pl.invoke(p, function)
}

// startSampler records node DRAM usage once per sampleStep until the
// trace has ended and no invocations remain active.
func (pl *Platform) startSampler() {
	if pl.samplerOn {
		return
	}
	pl.samplerOn = true
	pl.eng.Go("mem-sampler", func(p *sim.Proc) {
		for {
			pl.memGauge.Set(p.Now(), float64(pl.node.Used()))
			if p.Now() >= pl.traceEnd && pl.active == 0 {
				return
			}
			p.Sleep(pl.sampleStep)
		}
	})
}

// PreWarm provisions n cleaned sandboxes into the universal pool at no
// simulated cost — the operator built them before the measured window.
// Only TrEnv policies consume the pool.
func (pl *Platform) PreWarm(n int) {
	if n <= 0 || !pl.cfg.Policy.IsTrEnv() {
		return
	}
	for i := 0; i < n; i++ {
		pl.rt.SBPool.Put(pl.rt.Factory.CreateWarm())
	}
}

// RunTrace schedules every invocation in tr and runs the simulation to
// completion (including keep-alive expiries after the last invocation).
func (pl *Platform) RunTrace(tr workload.Trace) {
	pl.PreWarm(pl.cfg.PreWarmSandboxes)
	pl.traceEnd = tr.Duration()
	for _, inv := range tr {
		pl.Invoke(inv.At, inv.Function)
	}
	pl.startSampler()
	if pl.recorder != nil {
		if pl.alerts != nil {
			pl.alerts.Observe(pl.recorder)
		}
		pl.recorder.PumpWhile(pl.eng, pl.recEvery, func() bool {
			return pl.eng.Now() < pl.traceEnd || pl.active > 0
		})
	}
	pl.eng.Run()
}

// PeakMemory returns the node DRAM high-water mark.
func (pl *Platform) PeakMemory() int64 { return pl.node.Peak() }

// UsedMemory returns node DRAM currently in use.
func (pl *Platform) UsedMemory() int64 { return pl.node.Used() }

// Active returns the number of invocations currently in flight.
func (pl *Platform) Active() int { return pl.active }

// InvocationsStarted returns how many invocations the platform has
// dispatched since creation, warmup window included — the raw
// throughput denominator wall-clock self-benchmarks divide by, as
// opposed to Metrics().Invocations() which only counts post-warmup
// completions.
func (pl *Platform) InvocationsStarted() int64 { return pl.invSeq }

// Cores returns the node's physical core count.
func (pl *Platform) Cores() int { return pl.cfg.Cores }

// HasWarm reports whether a kept-alive instance of fn exists.
func (pl *Platform) HasWarm(fn string) bool { return len(pl.warm[fn]) > 0 }

// Store returns the snapshot store (shared across nodes in clusters).
func (pl *Platform) Store() *snapshot.Store { return pl.store }

// WarmCount returns the current number of kept-alive instances.
func (pl *Platform) WarmCount() int {
	n := 0
	for _, l := range pl.warm {
		n += len(l)
	}
	return n
}
