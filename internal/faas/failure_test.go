package faas

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// outagePlatform builds a TrEnv-CXL platform with the CXL pool dark for
// the whole run, capturing every terminal outcome.
func outagePlatform(t *testing.T, tweak func(*Config)) (*Platform, *[]InvocationResult) {
	t.Helper()
	results := new([]InvocationResult)
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.Node = "n0"
	cfg.OnResult = func(r InvocationResult) { *results = append(*results, r) }
	if tweak != nil {
		tweak(&cfg)
	}
	pl := New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	inj := fault.NewInjector(pl.Engine(), cfg.Seed, fault.Scenario{
		PoolOutages: []fault.PoolOutage{{Pool: "cxl", From: 0, To: time.Hour}},
	})
	pl.AttachFaults(inj)
	inj.Arm()
	return pl, results
}

// TestOutageFallsBackToLocalColdStart: with the CXL pool dark, restores
// cannot attach the remote template — every cold start must degrade to a
// local cold start recorded as a fallback, with the invocation still
// succeeding and no errors surfacing.
func TestOutageFallsBackToLocalColdStart(t *testing.T) {
	pl, results := outagePlatform(t, nil)
	pl.Invoke(0, "JS")
	pl.Invoke(time.Millisecond, "DH")
	pl.Engine().Run()

	m := pl.Metrics()
	if m.Errors.Value() != 0 {
		t.Fatalf("errors = %d, want 0 (fallback must absorb the outage)", m.Errors.Value())
	}
	if m.Fallbacks.Value() != 2 {
		t.Fatalf("fallbacks = %d, want 2", m.Fallbacks.Value())
	}
	if len(*results) != 2 {
		t.Fatalf("results = %d, want 2", len(*results))
	}
	for _, r := range *results {
		if r.Outcome != OutcomeFallback {
			t.Fatalf("outcome %q, want %q", r.Outcome, OutcomeFallback)
		}
		if r.FaultTrace == "" {
			t.Fatalf("fallback result for %s carries no fault trace to link to the outage", r.Function)
		}
		if r.Err != nil {
			t.Fatalf("fallback result carries error %v", r.Err)
		}
	}
}

// TestOutageWithFallbackDisabledSurfacesTypedError: the same outage with
// DisableFallback set must surface *mem.ErrPoolUnavailable as a typed
// error outcome instead of silently degrading.
func TestOutageWithFallbackDisabledSurfacesTypedError(t *testing.T) {
	pl, results := outagePlatform(t, func(cfg *Config) { cfg.DisableFallback = true })
	pl.Invoke(0, "JS")
	pl.Engine().Run()

	m := pl.Metrics()
	if m.Errors.Value() != 1 || m.Fallbacks.Value() != 0 {
		t.Fatalf("errors=%d fallbacks=%d, want 1/0", m.Errors.Value(), m.Fallbacks.Value())
	}
	if len(*results) != 1 {
		t.Fatalf("results = %d, want 1", len(*results))
	}
	r := (*results)[0]
	if r.Outcome != OutcomeError {
		t.Fatalf("outcome %q, want %q", r.Outcome, OutcomeError)
	}
	var pu *mem.ErrPoolUnavailable
	if !errors.As(r.Err, &pu) {
		t.Fatalf("error %v (%T), want *mem.ErrPoolUnavailable", r.Err, r.Err)
	}
	if pu.Pool != "cxl" || pu.FaultTrace == "" {
		t.Fatalf("typed error = %+v, want traced cxl outage", pu)
	}
}

// TestCrashAbortsDeliverOutcome: crashing a platform mid-flight delivers
// OutcomeCrashed for every in-flight invocation — nothing completes
// silently on a dead node and nothing wedges the engine.
func TestCrashAbortsDeliverOutcome(t *testing.T) {
	var results []InvocationResult
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.Node = "n0"
	cfg.OnResult = func(r InvocationResult) { results = append(results, r) }
	pl := New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	const n = 4
	for i := 0; i < n; i++ {
		pl.Invoke(time.Duration(i)*100*time.Microsecond, "JS")
	}
	pl.Engine().At(time.Millisecond, "crash", func(p *sim.Proc) { pl.Crash() })
	pl.Engine().Run()

	if len(results) != n {
		t.Fatalf("results = %d, want %d (no invocation may vanish on crash)", len(results), n)
	}
	crashed := 0
	for _, r := range results {
		if r.Outcome == OutcomeCrashed {
			crashed++
			var nd *ErrNodeDown
			if !errors.As(r.Err, &nd) || nd.Node != "n0" {
				t.Fatalf("crash outcome error = %v, want *ErrNodeDown{n0}", r.Err)
			}
		}
	}
	if crashed == 0 {
		t.Fatal("crash landed with nothing in flight; burst timing is off")
	}
	if got := pl.Metrics().CrashAborts.Value(); got != int64(crashed) {
		t.Fatalf("CrashAborts = %d, want %d", got, crashed)
	}
	// A dead platform refuses new work with a crash outcome too.
	pl.Invoke(pl.Engine().Now(), "JS")
	pl.Engine().Run()
	if last := results[len(results)-1]; last.Outcome != OutcomeCrashed {
		t.Fatalf("post-crash invoke outcome %q, want %q", last.Outcome, OutcomeCrashed)
	}
}
