package faas

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// tracedRun executes the same small workload under one seed with a
// tracer attached and returns the platform and its recorded spans.
func tracedRun(t *testing.T, seed int64) (*Platform, []*obs.Span) {
	t.Helper()
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.Seed = seed
	cfg.Tracer = obs.NewTracer(0)
	pl := New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatalf("register %s: %v", p.Name, err)
		}
	}
	pl.RunTrace(smallTrace(seed))
	return pl, cfg.Tracer.Spans()
}

func TestTraceByteIdenticalAcrossSameSeedRuns(t *testing.T) {
	_, a := tracedRun(t, 7)
	_, b := tracedRun(t, 7)
	if len(a) == 0 {
		t.Fatal("no spans recorded")
	}

	var chromeA, chromeB, jsonlA, jsonlB bytes.Buffer
	if err := obs.WriteChromeTrace(&chromeA, a); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&chromeB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chromeA.Bytes(), chromeB.Bytes()) {
		t.Fatal("Chrome trace differs across identical-seed runs")
	}
	if err := obs.WriteJSONL(&jsonlA, a); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&jsonlB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonlA.Bytes(), jsonlB.Bytes()) {
		t.Fatal("JSONL trace differs across identical-seed runs")
	}
}

func TestSpanPhasesTileTheInvocation(t *testing.T) {
	_, spans := tracedRun(t, 3)
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	for _, root := range spans {
		if root.Error != "" || !strings.HasPrefix(root.Name, "invoke/") {
			// Lifecycle roots (expire/, evict/, pool-fetch/) are causal
			// context, not phase decompositions.
			continue
		}
		// queue/evict/startup/promote/exec tile [root.Start, root.End].
		if got, want := root.ChildrenTotal(), root.Duration(); got != want {
			t.Fatalf("span %s: children total %v != duration %v", root.Name, got, want)
		}
		// The startup subtree decomposes exactly too.
		for _, c := range root.Children {
			if c.Name != "startup" {
				continue
			}
			if got, want := c.ChildrenTotal(), c.Duration(); got != want {
				t.Fatalf("startup children total %v != startup duration %v", got, want)
			}
		}
	}
}

func TestStartupSpansSumToReportedStartupTotals(t *testing.T) {
	pl, spans := tracedRun(t, 5)
	spanSum := obs.SumDurations(spans, "startup")
	// Metrics store startup in float ms; compare with a float tolerance.
	histSumMs := pl.Metrics().All.Startup.Sum()
	spanSumMs := float64(spanSum) / float64(time.Millisecond)
	if math.Abs(histSumMs-spanSumMs) > 1e-6*math.Max(1, histSumMs) {
		t.Fatalf("startup spans sum to %.6fms, metrics report %.6fms", spanSumMs, histSumMs)
	}
}

func TestFailedInvocationRecordsErrorSpanAndCounter(t *testing.T) {
	cfg := DefaultConfig(PolicyFaasd)
	cfg.Tracer = obs.NewTracer(0)
	pl := New(cfg)
	pl.Invoke(0, "nope")
	pl.Engine().Run()
	if got := pl.Metrics().Errors.Value(); got != 1 {
		t.Fatalf("errors = %d, want 1", got)
	}
	spans := cfg.Tracer.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "invoke/nope" || sp.Error == "" {
		t.Fatalf("error span = %+v, want invoke/nope with error status", sp)
	}
	if sp.Attrs["function"] != "nope" {
		t.Fatalf("error span attrs = %v", sp.Attrs)
	}
}

// TestExemplarsResolveToRecordedSpans is the exemplar acceptance
// check: every retained exemplar's TraceID must resolve to a recorded
// invocation root whose duration falls inside that histogram bucket.
// The default config admits immediately (no queueing), so a root span
// covers exactly the post-admission window the exemplar measures.
func TestExemplarsResolveToRecordedSpans(t *testing.T) {
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.Seed = 13
	cfg.Tracer = obs.NewTracer(0)
	pl := New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	pl.RunTrace(smallTrace(13))

	checked := 0
	for _, fm := range []*FnMetrics{pl.Metrics().Fn("JS"), &pl.Metrics().All} {
		res := fm.E2EExemplars
		if res == nil {
			t.Fatal("no exemplar reservoir after a traced run")
		}
		lo := -1.0
		for _, b := range res.Snapshot() {
			for _, e := range b.Exemplars {
				if e.Value <= lo || e.Value > b.UpperBound {
					t.Fatalf("exemplar %v outside its bucket (%v, %v]", e.Value, lo, b.UpperBound)
				}
				sp := cfg.Tracer.Find(e.TraceID)
				if sp == nil {
					t.Fatalf("exemplar trace %s not recorded", e.TraceID)
				}
				if !strings.HasPrefix(sp.Name, "invoke/") {
					t.Fatalf("exemplar trace %s resolves to %s, want an invocation", e.TraceID, sp.Name)
				}
				durMs := float64(sp.Duration()) / float64(time.Millisecond)
				if math.Abs(durMs-e.Value) > 1e-9*math.Max(1, durMs) {
					t.Fatalf("exemplar value %v != span duration %vms (trace %s)", e.Value, durMs, e.TraceID)
				}
				if durMs <= lo || durMs > b.UpperBound {
					t.Fatalf("span duration %vms outside bucket (%v, %v]", durMs, lo, b.UpperBound)
				}
				checked++
			}
			lo = b.UpperBound
		}
	}
	if checked == 0 {
		t.Fatal("no exemplars retained")
	}

	// The flattened links carry the same resolvable IDs.
	links := pl.Metrics().ExemplarLinks()
	if len(links) == 0 {
		t.Fatal("no exemplar links")
	}
	for _, l := range links {
		if cfg.Tracer.Find(l.TraceID) == nil {
			t.Fatalf("link %+v does not resolve", l)
		}
	}
}

// TestAnalyzeAndFoldedByteIdenticalAcrossSameSeedRuns pins the
// analytics surfaces to deterministic bytes.
func TestAnalyzeAndFoldedByteIdenticalAcrossSameSeedRuns(t *testing.T) {
	_, a := tracedRun(t, 9)
	_, b := tracedRun(t, 9)
	repA, err := json.Marshal(obs.Analyze(a, 0))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := json.Marshal(obs.Analyze(b, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repA, repB) {
		t.Fatalf("analyze reports differ across same-seed runs:\n%s\n---\n%s", repA, repB)
	}
	var fa, fb bytes.Buffer
	if err := obs.WriteFolded(&fa, a); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteFolded(&fb, b); err != nil {
		t.Fatal(err)
	}
	if fa.Len() == 0 || !bytes.Equal(fa.Bytes(), fb.Bytes()) {
		t.Fatal("folded flamegraphs differ (or are empty) across same-seed runs")
	}
}

func TestRegisterMetricsExportsPrometheus(t *testing.T) {
	pl, _ := tracedRun(t, 2)
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE trenv_warm_hits_total counter",
		"# TYPE trenv_e2e_latency_ms summary",
		"# TYPE trenv_startup_latency_ms summary",
		`trenv_e2e_latency_ms{function="_all",quantile="0.5"}`,
		"trenv_invocations_total",
		"trenv_node_mem_peak_bytes",
		`trenv_pool_used_bytes{pool="cxl"}`,
		"trenv_sandboxes_repurposed_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("Prometheus export missing %q:\n%s", want, out)
		}
	}
	// Scrapes are deterministic for a fixed simulation state.
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two scrapes of the same state differ")
	}
}
