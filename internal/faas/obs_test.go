package faas

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// tracedRun executes the same small workload under one seed with a
// tracer attached and returns the platform and its recorded spans.
func tracedRun(t *testing.T, seed int64) (*Platform, []*obs.Span) {
	t.Helper()
	cfg := DefaultConfig(PolicyTrEnvCXL)
	cfg.Seed = seed
	cfg.Tracer = obs.NewTracer(0)
	pl := New(cfg)
	for _, p := range workload.Table4() {
		if err := pl.Register(p); err != nil {
			t.Fatalf("register %s: %v", p.Name, err)
		}
	}
	pl.RunTrace(smallTrace(seed))
	return pl, cfg.Tracer.Spans()
}

func TestTraceByteIdenticalAcrossSameSeedRuns(t *testing.T) {
	_, a := tracedRun(t, 7)
	_, b := tracedRun(t, 7)
	if len(a) == 0 {
		t.Fatal("no spans recorded")
	}

	var chromeA, chromeB, jsonlA, jsonlB bytes.Buffer
	if err := obs.WriteChromeTrace(&chromeA, a); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&chromeB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chromeA.Bytes(), chromeB.Bytes()) {
		t.Fatal("Chrome trace differs across identical-seed runs")
	}
	if err := obs.WriteJSONL(&jsonlA, a); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&jsonlB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonlA.Bytes(), jsonlB.Bytes()) {
		t.Fatal("JSONL trace differs across identical-seed runs")
	}
}

func TestSpanPhasesTileTheInvocation(t *testing.T) {
	_, spans := tracedRun(t, 3)
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	for _, root := range spans {
		if root.Error != "" {
			continue
		}
		// queue/evict/startup/promote/exec tile [root.Start, root.End].
		if got, want := root.ChildrenTotal(), root.Duration(); got != want {
			t.Fatalf("span %s: children total %v != duration %v", root.Name, got, want)
		}
		// The startup subtree decomposes exactly too.
		for _, c := range root.Children {
			if c.Name != "startup" {
				continue
			}
			if got, want := c.ChildrenTotal(), c.Duration(); got != want {
				t.Fatalf("startup children total %v != startup duration %v", got, want)
			}
		}
	}
}

func TestStartupSpansSumToReportedStartupTotals(t *testing.T) {
	pl, spans := tracedRun(t, 5)
	spanSum := obs.SumDurations(spans, "startup")
	// Metrics store startup in float ms; compare with a float tolerance.
	histSumMs := pl.Metrics().All.Startup.Sum()
	spanSumMs := float64(spanSum) / float64(time.Millisecond)
	if math.Abs(histSumMs-spanSumMs) > 1e-6*math.Max(1, histSumMs) {
		t.Fatalf("startup spans sum to %.6fms, metrics report %.6fms", spanSumMs, histSumMs)
	}
}

func TestFailedInvocationRecordsErrorSpanAndCounter(t *testing.T) {
	cfg := DefaultConfig(PolicyFaasd)
	cfg.Tracer = obs.NewTracer(0)
	pl := New(cfg)
	pl.Invoke(0, "nope")
	pl.Engine().Run()
	if got := pl.Metrics().Errors.Value(); got != 1 {
		t.Fatalf("errors = %d, want 1", got)
	}
	spans := cfg.Tracer.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "invoke/nope" || sp.Error == "" {
		t.Fatalf("error span = %+v, want invoke/nope with error status", sp)
	}
	if sp.Attrs["function"] != "nope" {
		t.Fatalf("error span attrs = %v", sp.Attrs)
	}
}

func TestRegisterMetricsExportsPrometheus(t *testing.T) {
	pl, _ := tracedRun(t, 2)
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE trenv_warm_hits_total counter",
		"# TYPE trenv_e2e_latency_ms summary",
		"# TYPE trenv_startup_latency_ms summary",
		`trenv_e2e_latency_ms{function="_all",quantile="0.5"}`,
		"trenv_invocations_total",
		"trenv_node_mem_peak_bytes",
		`trenv_pool_used_bytes{pool="cxl"}`,
		"trenv_sandboxes_repurposed_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("Prometheus export missing %q:\n%s", want, out)
		}
	}
	// Scrapes are deterministic for a fixed simulation state.
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two scrapes of the same state differ")
	}
}
