package alert

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fixture wires a registry, recorder, and engine the way the platforms
// do: Observe hooks Eval onto every Sample.
type fixture struct {
	reg *obs.Registry
	rec *obs.Recorder
	eng *Engine
	c   int64
	g   float64
}

func newFixture(t *testing.T, rules []Rule, capacity int) *fixture {
	t.Helper()
	f := &fixture{reg: obs.NewRegistry()}
	f.reg.CounterFunc("c_total", "c", nil, func() int64 { return f.c })
	f.reg.GaugeFunc("g", "g", map[string]string{"node": "n0"}, func() float64 { return f.g })
	f.rec = obs.NewRecorder(f.reg, capacity)
	f.eng = New(rules)
	f.eng.Observe(f.rec)
	return f
}

func (f *fixture) state(name string) RuleStatus {
	for _, rs := range f.eng.Snapshot() {
		if rs.Rule.Name == name {
			return rs
		}
	}
	return RuleStatus{}
}

func TestThresholdLifecycleWithHysteresis(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "hot", Kind: KindThreshold, Series: "g", Op: OpGE, Value: 5, For: 300 * time.Millisecond},
	}, 0)
	step := 100 * time.Millisecond

	f.rec.Sample(1 * step)
	if got := f.state("hot").State; got != StateInactive {
		t.Fatalf("below bound: state = %s, want inactive", got)
	}

	f.g = 7
	f.rec.Sample(2 * step) // pending at 200ms
	if got := f.state("hot").State; got != StatePending {
		t.Fatalf("above bound: state = %s, want pending", got)
	}
	f.rec.Sample(4 * step) // held 200ms < for
	if got := f.state("hot").State; got != StatePending {
		t.Fatalf("held < for: state = %s, want pending", got)
	}
	f.rec.Sample(5 * step) // held 300ms >= for -> fires
	st := f.state("hot")
	if st.State != StateFiring || st.Fired != 1 {
		t.Fatalf("held >= for: state = %s fired = %d, want firing/1", st.State, st.Fired)
	}
	if f.eng.Firing() != 1 || f.eng.FiredTotal() != 1 {
		t.Fatalf("engine counters = %d firing %d fired", f.eng.Firing(), f.eng.FiredTotal())
	}

	f.g = 0
	f.rec.Sample(6 * step) // resolved
	if got := f.state("hot").State; got != StateInactive {
		t.Fatalf("back below bound: state = %s, want inactive", got)
	}
	var phases []string
	for _, ev := range f.eng.Timeline() {
		phases = append(phases, ev.Phase)
	}
	if got := strings.Join(phases, ","); got != "pending,firing,resolved" {
		t.Fatalf("timeline phases = %s", got)
	}
	if incs := f.eng.Incidents(); len(incs) != 1 || !incs[0].Resolved {
		t.Fatalf("incidents = %+v, want one resolved", incs)
	}
}

func TestPendingClearsBeforeFor(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "hot", Kind: KindThreshold, Series: "g", Op: OpGE, Value: 5, For: time.Second},
	}, 0)
	f.g = 9
	f.rec.Sample(100 * time.Millisecond)
	f.g = 0
	f.rec.Sample(200 * time.Millisecond)
	if got := f.state("hot").State; got != StateInactive {
		t.Fatalf("state = %s, want inactive", got)
	}
	if f.eng.FiredTotal() != 0 || len(f.eng.Incidents()) != 0 {
		t.Fatal("a cleared pending must not fire or capture an incident")
	}
	evs := f.eng.Timeline()
	if len(evs) != 2 || evs[1].Phase != "cleared" {
		t.Fatalf("timeline = %+v, want pending then cleared", evs)
	}
}

func TestZeroForFiresImmediately(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "hot", Kind: KindThreshold, Series: "g", Op: OpGT, Value: 0},
	}, 0)
	f.g = 1
	f.rec.Sample(100 * time.Millisecond)
	if got := f.state("hot").State; got != StateFiring {
		t.Fatalf("state = %s, want firing on first active eval", got)
	}
}

func TestMissingDataIsNeverZero(t *testing.T) {
	// Both rules would be active if absent data evaluated as 0: the
	// threshold watches a series that never existed with g < 1, the rate
	// rule watches a real counter before it has two points.
	f := newFixture(t, []Rule{
		{Name: "ghost", Kind: KindThreshold, Series: "no_such_series", Op: OpLT, Value: 1},
		{Name: "quiet", Kind: KindRate, Series: "c_total", Op: OpLE, Value: 100},
	}, 0)
	f.rec.Sample(100 * time.Millisecond) // one point: no rate yet
	for _, name := range []string{"ghost", "quiet"} {
		if got := f.state(name).State; got != StateInactive {
			t.Fatalf("%s: state = %s, want inactive (missing data must not compare)", name, got)
		}
	}
}

func TestRateRuleAveragesOverWindow(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "spike", Kind: KindRate, Series: "c_total", Op: OpGT, Value: 5, Over: 500 * time.Millisecond},
	}, 0)
	step := 100 * time.Millisecond
	// One lone burst: instantaneous rate 20/s for one sample, but the
	// 500ms average is 2/s/... stays inactive.
	f.rec.Sample(1 * step)
	f.c += 2
	f.rec.Sample(2 * step)
	for i := 3; i <= 6; i++ {
		f.rec.Sample(time.Duration(i) * step)
	}
	if got := f.state("spike"); got.State != StateInactive {
		t.Fatalf("lone burst: state = %s (%s), want inactive under windowed rate", got.State, got.Detail)
	}
	// A sustained burn of 10/s over the window crosses the bound.
	for i := 7; i <= 12; i++ {
		f.c += 1
		f.rec.Sample(time.Duration(i) * step)
	}
	st := f.state("spike")
	if st.State != StateFiring {
		t.Fatalf("sustained burn: state = %s, want firing", st.State)
	}
	if !strings.Contains(st.Detail, "over 500ms") {
		t.Fatalf("detail %q does not name the averaging window", st.Detail)
	}
}

func TestLabelSelectorSubsetMatch(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "n0", Kind: KindThreshold, Series: "g", Labels: map[string]string{"node": "n0"}, Op: OpGT, Value: 0},
		{Name: "n9", Kind: KindThreshold, Series: "g", Labels: map[string]string{"node": "n9"}, Op: OpGT, Value: 0},
	}, 0)
	f.g = 3
	f.rec.Sample(100 * time.Millisecond)
	if got := f.state("n0").State; got != StateFiring {
		t.Fatalf("matching selector: state = %s, want firing", got)
	}
	if got := f.state("n9").State; got != StateInactive {
		t.Fatalf("non-matching selector: state = %s, want inactive", got)
	}
}

func TestAbsenceRule(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "ghost", Kind: KindAbsence, Series: "never_registered", Window: time.Second},
		{Name: "stale", Kind: KindAbsence, Series: "g", Window: time.Second},
	}, 0)
	f.rec.Sample(100 * time.Millisecond)
	if got := f.state("ghost").State; got != StateFiring {
		t.Fatalf("never-sampled series: state = %s, want firing", got)
	}
	if got := f.state("stale").State; got != StateInactive {
		t.Fatalf("fresh series: state = %s, want inactive", got)
	}
	// The recorder stops pumping; evaluation continues on the virtual
	// clock and the series goes stale past the window.
	f.eng.Eval(1200 * time.Millisecond)
	st := f.state("stale")
	if st.State != StateFiring {
		t.Fatalf("stale series: state = %s, want firing", st.State)
	}
	if !strings.Contains(st.Detail, "silent for") {
		t.Fatalf("detail = %q", st.Detail)
	}
}

func TestAbsenceWhenWindowAgedOutOfRing(t *testing.T) {
	// Ring capacity 2: after the burst of samples at 100..500ms the
	// buffer only holds 400ms and 500ms. An absence window entirely
	// older than the ring must read as absent, never as zero.
	f := newFixture(t, []Rule{
		{Name: "stale", Kind: KindAbsence, Series: "g", Window: 300 * time.Millisecond},
	}, 2)
	for i := 1; i <= 5; i++ {
		f.rec.Sample(time.Duration(i) * 100 * time.Millisecond)
	}
	if got := f.state("stale").State; got != StateInactive {
		t.Fatalf("fresh ring: state = %s, want inactive", got)
	}
	f.eng.Eval(5 * time.Second) // newest retained point now 4.5s stale
	if got := f.state("stale").State; got != StateFiring {
		t.Fatalf("aged-out window: state = %s, want firing (absence, not zero)", got)
	}
}

func TestBurnRule(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "slo", Kind: KindBurn, Function: "*",
			Burn: []BurnWindow{{Window: time.Second, Factor: 5}}},
	}, 0)
	slo := obs.NewSLOTracker(time.Second)
	slo.SetDefault(obs.SLO{Target: 100 * time.Millisecond, Objective: 0.9})
	f.eng.AddSLO(slo)

	slo.Record("F", 100*time.Millisecond, 50*time.Millisecond) // within target
	f.rec.Sample(200 * time.Millisecond)
	if got := f.state("slo").State; got != StateInactive {
		t.Fatalf("healthy: state = %s, want inactive", got)
	}
	// Every invocation breaching burns 1/(1-0.9) = 10x the budget.
	for i := 0; i < 4; i++ {
		slo.Record("F", time.Duration(300+i*10)*time.Millisecond, 500*time.Millisecond)
	}
	f.rec.Sample(400 * time.Millisecond)
	st := f.state("slo")
	if st.State != StateFiring {
		t.Fatalf("burning: state = %s, want firing", st.State)
	}
	if !strings.Contains(st.Detail, "burn") || !strings.Contains(st.Detail, "F ") {
		t.Fatalf("detail = %q", st.Detail)
	}
}

func TestIncidentCaptureLinksWorstTraces(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "hot", Kind: KindThreshold, Series: "g", Op: OpGE, Value: 5, For: 200 * time.Millisecond},
	}, 0)
	tr := obs.NewTracer(0)
	f.eng.SetTracer(tr)

	slow := obs.NewSpan("invoke/AB", 150*time.Millisecond, 450*time.Millisecond)
	slow.SetAttr("function", "AB")
	tr.Record(slow)
	bad := obs.NewSpan("invoke/CD", 200*time.Millisecond, 250*time.Millisecond)
	bad.SetAttr("function", "CD")
	bad.Fail(errors.New("boom"))
	tr.Record(bad)
	// Outside the incident window: must not be linked.
	tr.Record(obs.NewSpan("invoke/ZZ", 10*time.Second, 11*time.Second))

	f.g = 9
	f.rec.Sample(100 * time.Millisecond)
	f.rec.Sample(200 * time.Millisecond)
	f.rec.Sample(300 * time.Millisecond) // fires here

	incs := f.eng.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	inc := incs[0]
	if want := obs.TraceIDFor("alert", "hot", "1"); inc.ID != want {
		t.Fatalf("incident ID = %s, want deterministic %s", inc.ID, want)
	}
	if inc.PendingMS != 100 || inc.FiringMS != 300 || inc.Resolved {
		t.Fatalf("incident lifecycle = %+v", inc)
	}
	if len(inc.Series) != 1 || inc.Series[0].Key != `g{node="n0"}` || len(inc.Series[0].Points) != 3 {
		t.Fatalf("series window = %+v", inc.Series)
	}
	if len(inc.Worst) != 2 {
		t.Fatalf("worst = %+v, want the two overlapping invocations", inc.Worst)
	}
	if inc.Worst[0].Error == "" {
		t.Fatalf("errored invocation must sort first: %+v", inc.Worst)
	}
	for _, w := range inc.Worst {
		if w.TraceID == "" {
			t.Fatalf("missing trace link: %+v", w)
		}
	}
}

func TestEvalIgnoresDuplicateAndOutOfOrderInstants(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "hot", Kind: KindThreshold, Series: "g", Op: OpGT, Value: 0},
	}, 0)
	f.g = 1
	f.rec.Sample(100 * time.Millisecond)
	f.eng.Eval(100 * time.Millisecond) // duplicate
	f.eng.Eval(50 * time.Millisecond)  // out of order
	if f.eng.Evals() != 1 {
		t.Fatalf("evals = %d, want 1", f.eng.Evals())
	}
}

func TestExportsAreDeterministic(t *testing.T) {
	run := func() (string, []string, []Event) {
		f := newFixture(t, DefaultRules(), 0)
		step := 100 * time.Millisecond
		for i := 1; i <= 40; i++ {
			if i > 10 && i < 30 {
				f.c += 1 // error-ish counter churn
			}
			f.g = float64(i % 7)
			f.rec.Sample(time.Duration(i) * step)
		}
		var buf bytes.Buffer
		if err := f.eng.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), f.eng.TimelineLines(), f.eng.Timeline()
	}
	j1, l1, _ := run()
	j2, l2, _ := run()
	if j1 != j2 {
		t.Fatal("same inputs produced different alert JSON")
	}
	if strings.Join(l1, "\n") != strings.Join(l2, "\n") {
		t.Fatal("same inputs produced different timelines")
	}
}

func TestRegisterMetrics(t *testing.T) {
	f := newFixture(t, []Rule{
		{Name: "hot", Kind: KindThreshold, Series: "g", Op: OpGT, Value: 0},
	}, 0)
	f.eng.RegisterMetrics(f.reg, nil)
	f.g = 1
	f.rec.Sample(100 * time.Millisecond)
	var buf bytes.Buffer
	if err := f.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trenv_alerts_firing 1") {
		t.Fatalf("metrics missing firing gauge:\n%s", out)
	}
	if !strings.Contains(out, "trenv_alerts_fired_total 1") {
		t.Fatalf("metrics missing fired counter:\n%s", out)
	}
}

func TestSetGroupsRuns(t *testing.T) {
	s := NewSet(DefaultRules())
	s.Track("a")
	s.Track("b")
	if s.Runs() != 2 {
		t.Fatalf("runs = %d", s.Runs())
	}
	var order []string
	s.Each(func(run string, eng *Engine) {
		if eng == nil {
			t.Fatalf("nil engine for %s", run)
		}
		order = append(order, run)
	})
	if strings.Join(order, ",") != "a,b" {
		t.Fatalf("visit order = %v", order)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"run": "a"`) {
		t.Fatalf("set JSON missing run name:\n%s", buf.String())
	}
}

func TestNewPanicsOnBadRuleSets(t *testing.T) {
	for _, rules := range [][]Rule{
		{{Name: "", Kind: KindThreshold, Series: "g", Op: OpGT}},
		{{Name: "x", Kind: KindThreshold, Series: "g", Op: OpGT}, {Name: "x", Kind: KindAbsence, Series: "g", Window: time.Second}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", rules)
				}
			}()
			New(rules)
		}()
	}
}
