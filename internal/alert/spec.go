package alert

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a compact comma-separated rule spec, mirroring the
// chaos grammar in internal/fault. Clause grammar (durations use Go
// syntax: 10s, 500ms, 2m; label selectors are optional subset matches):
//
//	threshold:<name>:<series>[{k=v,...}]:<op><value>[:for=<dur>]
//	rate:<name>:<series>[{k=v,...}]:<op><value>[:over=<dur>][:for=<dur>]   windowed per-second rate
//	burn:<name>:<function|*>:<win>@<factor>x[|<win>@<factor>x...][:for=<dur>]
//	absence:<name>:<series>[{k=v,...}]:<window>[:for=<dur>]
//
// Operators are >, >=, <, <=. Commas inside {...} selectors do not
// split clauses. Example:
//
//	rate:errors:trenv_errors_total:>0.5:for=2s,burn:slo:*:1m@14x|5m@2x,absence:pulse:trenv_invocations_total:30s
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	seen := make(map[string]bool)
	for _, clause := range splitClauses(spec) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := splitParts(clause)
		if len(parts) < 3 {
			return nil, fmt.Errorf("alert: bad clause %q", clause)
		}
		kind, name := Kind(parts[0]), parts[1]
		if name == "" {
			return nil, fmt.Errorf("alert: clause %q: empty rule name", clause)
		}
		if seen[name] {
			return nil, fmt.Errorf("alert: clause %q: duplicate rule name %q", clause, name)
		}
		rest, forDur, err := popFor(parts[2:])
		if err != nil {
			return nil, fmt.Errorf("alert: clause %q: %w", clause, err)
		}
		r := Rule{Name: name, Kind: kind, For: forDur}
		switch kind {
		case KindThreshold, KindRate:
			err = parseBound(rest, &r)
		case KindBurn:
			err = parseBurn(rest, &r)
		case KindAbsence:
			err = parseAbsence(rest, &r)
		default:
			err = fmt.Errorf("unknown alert kind %q", parts[0])
		}
		if err != nil {
			return nil, fmt.Errorf("alert: clause %q: %w", clause, err)
		}
		seen[name] = true
		rules = append(rules, r)
	}
	return rules, nil
}

// Load resolves a -rules argument: "@path" reads a rule file (one or
// more clauses per line, blank lines and #-comments ignored), anything
// else parses directly as a spec string.
func Load(arg string) ([]Rule, error) {
	if !strings.HasPrefix(arg, "@") {
		return ParseSpec(arg)
	}
	path := strings.TrimPrefix(arg, "@")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("alert: rules file: %w", err)
	}
	var clauses []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		clauses = append(clauses, line)
	}
	return ParseSpec(strings.Join(clauses, ","))
}

// DefaultRules is the built-in rule set the incidents experiment and
// `trenv-bench -alerts` use when no spec is given: fallback storms
// (pool outage in progress), an open circuit breaker, an error-rate
// spike, and fast-plus-slow SLO burn.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "pool-outage", Kind: KindRate, Series: "trenv_fallbacks_total", Op: OpGT, Value: 0.2, For: 2 * time.Second},
		{Name: "breaker-open", Kind: KindThreshold, Series: "trenv_breaker_state", Op: OpGE, Value: 1},
		{Name: "error-spike", Kind: KindRate, Series: "trenv_errors_total", Op: OpGT, Value: 0.5, For: 2 * time.Second},
		{Name: "slo-burn", Kind: KindBurn, Function: "*", For: 2 * time.Second,
			Burn: []BurnWindow{{Window: time.Minute, Factor: 14}, {Window: 5 * time.Minute, Factor: 2}}},
	}
}

// splitClauses splits on commas that are not inside a {...} label
// selector.
func splitClauses(spec string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(spec); i++ {
		switch spec[i] {
		case '{':
			depth++
		case '}':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				out = append(out, spec[start:i])
				start = i + 1
			}
		}
	}
	return append(out, spec[start:])
}

// splitParts splits a clause on colons outside {...}.
func splitParts(clause string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(clause); i++ {
		switch clause[i] {
		case '{':
			depth++
		case '}':
			if depth > 0 {
				depth--
			}
		case ':':
			if depth == 0 {
				out = append(out, clause[start:i])
				start = i + 1
			}
		}
	}
	return append(out, clause[start:])
}

// popFor strips a trailing for=<dur> option off the clause tail.
func popFor(parts []string) ([]string, time.Duration, error) {
	if len(parts) == 0 {
		return parts, 0, nil
	}
	last := parts[len(parts)-1]
	if !strings.HasPrefix(last, "for=") {
		return parts, 0, nil
	}
	d, err := time.ParseDuration(strings.TrimPrefix(last, "for="))
	if err != nil {
		return nil, 0, fmt.Errorf("bad for %q: %w", last, err)
	}
	if d < 0 {
		return nil, 0, fmt.Errorf("negative for %q", last)
	}
	return parts[:len(parts)-1], d, nil
}

// parseSelector splits "series{k=v,...}" into name and label map.
func parseSelector(s string) (string, map[string]string, error) {
	open := strings.IndexByte(s, '{')
	if open < 0 {
		if s == "" {
			return "", nil, fmt.Errorf("empty series")
		}
		return s, nil, nil
	}
	if !strings.HasSuffix(s, "}") || open == 0 {
		return "", nil, fmt.Errorf("bad selector %q", s)
	}
	name := s[:open]
	labels := make(map[string]string)
	body := s[open+1 : len(s)-1]
	if body != "" {
		for _, pair := range strings.Split(body, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || k == "" {
				return "", nil, fmt.Errorf("bad label %q in selector %q", pair, s)
			}
			labels[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	return name, labels, nil
}

func parseBound(p []string, r *Rule) error {
	if len(p) == 3 && r.Kind == KindRate && strings.HasPrefix(p[2], "over=") {
		d, err := time.ParseDuration(strings.TrimPrefix(p[2], "over="))
		if err != nil || d <= 0 {
			return fmt.Errorf("bad over %q", p[2])
		}
		r.Over = d
		p = p[:2]
	}
	if len(p) != 2 {
		return fmt.Errorf("want %s:<name>:<series>:<op><value>", r.Kind)
	}
	name, labels, err := parseSelector(p[0])
	if err != nil {
		return err
	}
	r.Series, r.Labels = name, labels
	cond := p[1]
	for _, op := range []Op{OpGE, OpLE, OpGT, OpLT} { // two-char ops first
		if strings.HasPrefix(cond, string(op)) {
			v, err := strconv.ParseFloat(strings.TrimPrefix(cond, string(op)), 64)
			if err != nil {
				return fmt.Errorf("bad bound %q", cond)
			}
			r.Op, r.Value = op, v
			return nil
		}
	}
	return fmt.Errorf("bad condition %q (want <op><value>)", cond)
}

func parseBurn(p []string, r *Rule) error {
	if len(p) != 2 {
		return fmt.Errorf("want burn:<name>:<function|*>:<win>@<factor>x[|...]")
	}
	r.Function = p[0]
	if r.Function == "" {
		return fmt.Errorf("empty function (use * for all)")
	}
	for _, wf := range strings.Split(p[1], "|") {
		win, fac, ok := strings.Cut(wf, "@")
		if !ok || !strings.HasSuffix(fac, "x") {
			return fmt.Errorf("bad burn window %q (want <win>@<factor>x)", wf)
		}
		w, err := time.ParseDuration(win)
		if err != nil {
			return err
		}
		f, err := strconv.ParseFloat(strings.TrimSuffix(fac, "x"), 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("bad burn factor %q (want > 0)", fac)
		}
		if w <= 0 {
			return fmt.Errorf("bad burn window %q (want > 0)", win)
		}
		r.Burn = append(r.Burn, BurnWindow{Window: w, Factor: f})
	}
	return nil
}

func parseAbsence(p []string, r *Rule) error {
	if len(p) != 2 {
		return fmt.Errorf("want absence:<name>:<series>:<window>")
	}
	name, labels, err := parseSelector(p[0])
	if err != nil {
		return err
	}
	r.Series, r.Labels = name, labels
	w, err := time.ParseDuration(p[1])
	if err != nil {
		return err
	}
	if w <= 0 {
		return fmt.Errorf("bad window %q (want > 0)", p[1])
	}
	r.Window = w
	return nil
}
