package alert

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseSpecAllKinds(t *testing.T) {
	spec := `threshold:hot:g{node=n0,pool=cxl}:>=5:for=2s,` +
		`rate:errs:trenv_errors_total:>0.5:over=10s:for=1s,` +
		`burn:slo:IR:1m@14x|5m@2x:for=30s,` +
		`absence:pulse:trenv_invocations_total:30s`
	rules, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("got %d rules", len(rules))
	}
	hot := rules[0]
	if hot.Kind != KindThreshold || hot.Op != OpGE || hot.Value != 5 || hot.For != 2*time.Second {
		t.Fatalf("threshold = %+v", hot)
	}
	if hot.Labels["node"] != "n0" || hot.Labels["pool"] != "cxl" {
		t.Fatalf("selector labels = %+v (commas inside {} must not split clauses)", hot.Labels)
	}
	errs := rules[1]
	if errs.Kind != KindRate || errs.Over != 10*time.Second || errs.For != time.Second {
		t.Fatalf("rate = %+v", errs)
	}
	slo := rules[2]
	if slo.Kind != KindBurn || slo.Function != "IR" || len(slo.Burn) != 2 ||
		slo.Burn[0] != (BurnWindow{Window: time.Minute, Factor: 14}) ||
		slo.Burn[1] != (BurnWindow{Window: 5 * time.Minute, Factor: 2}) {
		t.Fatalf("burn = %+v", slo)
	}
	pulse := rules[3]
	if pulse.Kind != KindAbsence || pulse.Window != 30*time.Second || pulse.For != 0 {
		t.Fatalf("absence = %+v", pulse)
	}
}

func TestSpecRoundTrips(t *testing.T) {
	// Rule.Spec renders the canonical clause; parsing it back must yield
	// an identical rule (and an identical re-rendered spec).
	cases := append(DefaultRules(), []Rule{
		{Name: "sel", Kind: KindThreshold, Series: "g", Labels: map[string]string{"node": "n1", "pool": "rdma"}, Op: OpLT, Value: 0.25},
		{Name: "win", Kind: KindRate, Series: "c_total", Op: OpGE, Value: 3, Over: 7 * time.Second, For: 900 * time.Millisecond},
		{Name: "gone", Kind: KindAbsence, Series: "beat", Window: 45 * time.Second, For: 5 * time.Second},
	}...)
	for _, want := range cases {
		spec := want.Spec()
		rules, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(rules) != 1 {
			t.Fatalf("%s: %d rules", spec, len(rules))
		}
		if got := rules[0].Spec(); got != spec {
			t.Fatalf("round trip changed the clause:\n in  %s\n out %s", spec, got)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		spec, wantErr string
	}{
		{"bogus:x:g:>1", "unknown alert kind"},
		{"threshold::g:>1", "empty rule name"},
		{"threshold:a:g:>1,threshold:a:g:>2", "duplicate rule name"},
		{"threshold:a", "bad clause"},
		{"threshold:a:g", "want threshold"},
		{"threshold:a:g:1", "bad condition"},
		{"threshold:a:g:>x", "bad bound"},
		{"threshold:a:g{node}:>1", "bad label"},
		{"threshold:a:{node=n0}:>1", "bad selector"},
		{"threshold:a:g:>1:for=soon", "bad for"},
		{"threshold:a:g:>1:for=-2s", "negative for"},
		{"rate:a:g:>1:over=0s", "bad over"},
		{"burn:a::1m@2x", "empty function"},
		{"burn:a:*:1m-2x", "bad burn window"},
		{"burn:a:*:1m@0x", "bad burn factor"},
		{"burn:a:*:0s@2x", "bad burn window"},
		{"absence:a:g:0s", "bad window"},
		{"absence:a:g:shortly", "invalid duration"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Fatalf("%s: no error", tc.spec)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.spec, err, tc.wantErr)
		}
	}
}

func TestParseSpecSkipsBlankClauses(t *testing.T) {
	rules, err := ParseSpec(" , threshold:a:g:>1 , ")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Name != "a" {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestLoadFileAndSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	content := "# alerting rules\n\nthreshold:hot:g:>=5:for=2s\nabsence:pulse:beat:30s\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := Load("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "hot" || rules[1].Name != "pulse" {
		t.Fatalf("rules = %+v", rules)
	}

	direct, err := Load("threshold:hot:g:>=5")
	if err != nil || len(direct) != 1 {
		t.Fatalf("direct spec: %v %+v", err, direct)
	}

	if _, err := Load("@" + filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing rules file: no error")
	}
}

func TestDefaultRulesCompile(t *testing.T) {
	rules := DefaultRules()
	if len(rules) == 0 {
		t.Fatal("no default rules")
	}
	New(rules) // panics on duplicates or empty names
	for _, r := range rules {
		if _, err := ParseSpec(r.Spec()); err != nil {
			t.Fatalf("default rule %s does not round-trip: %v", r.Name, err)
		}
	}
}
