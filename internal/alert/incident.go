package alert

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// maxIncidentPoints caps the offending-series window captured per
// incident so exports stay small even when the firing window is long.
const maxIncidentPoints = 32

// SeriesPoint is one captured sample of the offending series.
type SeriesPoint struct {
	TMS   float64 `json:"t_ms"`
	Value float64 `json:"value"`
	Rate  float64 `json:"rate_per_s,omitempty"`
}

// SeriesWindow is the offending series' samples inside the incident
// window (pending start minus lookback, through the firing instant).
type SeriesWindow struct {
	Key    string        `json:"key"`
	Points []SeriesPoint `json:"points"`
}

// Incident is one captured firing: the rule, its virtual-time
// lifecycle, the offending series window, and trace links to the worst
// invocations active inside that window — each carrying the analyzer's
// critical path, so an incident navigates straight to a cause.
type Incident struct {
	// ID is deterministic: derived from the rule name and its firing
	// ordinal, never from wall time.
	ID     string `json:"id"`
	Rule   string `json:"rule"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`

	PendingMS  float64 `json:"pending_ms"`
	FiringMS   float64 `json:"firing_ms"`
	ResolvedMS float64 `json:"resolved_ms,omitempty"`
	Resolved   bool    `json:"resolved"`

	Series []SeriesWindow       `json:"series,omitempty"`
	Worst  []obs.SlowInvocation `json:"worst,omitempty"`
}

func (inc *Incident) resolve(now time.Duration) {
	inc.Resolved = true
	inc.ResolvedMS = durMS(now)
}

// captureIncident snapshots the context around a pending → firing
// transition: the offending series' recent window and the worst
// invocations (errored first, then slowest) whose spans overlap it.
func (e *Engine) captureIncident(st *ruleState, now time.Duration) *Incident {
	inc := &Incident{
		ID:        obs.TraceIDFor("alert", st.rule.Name, fmt.Sprintf("%d", st.fired)),
		Rule:      st.rule.Name,
		Kind:      string(st.rule.Kind),
		Detail:    st.detail,
		PendingMS: durMS(st.pendAt),
		FiringMS:  durMS(now),
	}
	from := st.pendAt - e.lookback
	if from < 0 {
		from = 0
	}
	for _, ts := range e.matchSeries(st.rule) {
		win := SeriesWindow{Key: ts.Key, Points: []SeriesPoint{}}
		for _, p := range ts.Points() {
			if p.T < from || p.T > now {
				continue
			}
			win.Points = append(win.Points, SeriesPoint{TMS: durMS(p.T), Value: p.Value, Rate: p.Rate})
		}
		if n := len(win.Points); n > maxIncidentPoints {
			win.Points = win.Points[n-maxIncidentPoints:]
		}
		if len(win.Points) > 0 {
			inc.Series = append(inc.Series, win)
		}
	}
	inc.Worst = e.worstInWindow(from, now)
	return inc
}

// worstInWindow analyzes the invocations whose spans overlap
// [from, to] and returns up to defaultWorst of them, errored
// invocations first, then by duration — the trace IDs an operator
// would open first.
func (e *Engine) worstInWindow(from, to time.Duration) []obs.SlowInvocation {
	if e.tracer == nil {
		return nil
	}
	var overlap []*obs.Span
	for _, sp := range e.tracer.Spans() {
		if !strings.HasPrefix(sp.Name, "invoke/") {
			continue
		}
		if sp.End < from || sp.Start > to {
			continue
		}
		overlap = append(overlap, sp)
	}
	if len(overlap) == 0 {
		return nil
	}
	rep := obs.Analyze(overlap, 2*defaultWorst)
	var errored, ok []obs.SlowInvocation
	for _, si := range rep.Slowest {
		if si.Error != "" {
			errored = append(errored, si)
		} else {
			ok = append(ok, si)
		}
	}
	worst := append(errored, ok...)
	if len(worst) > defaultWorst {
		worst = worst[:defaultWorst]
	}
	return worst
}
