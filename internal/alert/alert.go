// Package alert watches a run while it happens: a rule engine evaluated
// on the virtual clock against the flight recorder's series, counters,
// and SLO burn rates. Rules come in four kinds — threshold (latest
// sampled value vs a bound), rate (per-second counter rate vs a bound),
// burn (multi-window multi-burn-rate over an SLO tracker, e.g. 1m@14x
// OR 5m@2x), and absence (a series stopped reporting inside a staleness
// window) — each with a for-duration hysteresis and a pending → firing
// → resolved lifecycle.
//
// When a rule fires the engine captures an incident: the virtual
// timestamps of the pending and firing transitions, the offending
// series' sampled window, and the trace IDs of the worst invocations
// inside that window (via the existing trace analyzer), so every
// incident links directly to a critical path.
//
// Evaluation is driven by the flight recorder's own sampling pump
// (Observe hooks Eval onto Recorder samples), so rules see exactly the
// instants the recorder saw and same-seed runs produce byte-identical
// alert snapshots, incidents, and timelines. Missing data is never
// treated as zero: a series with no samples (or none inside the window)
// evaluates as absent, which only the absence kind turns into a firing.
package alert

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Kind names a rule's evaluation strategy.
type Kind string

const (
	// KindThreshold compares a series' latest sampled value to a bound.
	KindThreshold Kind = "threshold"
	// KindRate compares a counter series' per-second rate to a bound.
	KindRate Kind = "rate"
	// KindBurn compares SLO error-budget burn rates over sliding windows;
	// any window@factor pair crossing its factor makes the rule active.
	KindBurn Kind = "burn"
	// KindAbsence fires when a series has no sample inside the staleness
	// window — data loss is an alert, not a zero.
	KindAbsence Kind = "absence"
)

// Op is a threshold/rate comparison operator.
type Op string

const (
	OpGT Op = ">"
	OpGE Op = ">="
	OpLT Op = "<"
	OpLE Op = "<="
)

func (op Op) satisfied(v, bound float64) bool {
	switch op {
	case OpGT:
		return v > bound
	case OpGE:
		return v >= bound
	case OpLT:
		return v < bound
	case OpLE:
		return v <= bound
	}
	return false
}

// BurnWindow is one window@factor pair of a burn rule.
type BurnWindow struct {
	Window time.Duration `json:"window"`
	Factor float64       `json:"factor"`
}

// Rule is one compiled alerting rule. Build rules with ParseSpec (the
// flag/file grammar) or literally; Name must be unique within an
// engine.
type Rule struct {
	Name string
	Kind Kind
	// Series names the metric threshold/rate/absence rules watch; Labels,
	// when non-nil, restrict matching to series carrying those labels (a
	// subset match, so node-labeled fleet series still match).
	Series string
	Labels map[string]string
	// Op and Value bound threshold (sampled value) and rate (per-second
	// counter rate) rules; Over is the rate rule's averaging window
	// (DefaultRateWindow when zero — instantaneous per-sample rates are
	// too spiky to threshold).
	Op    Op
	Value float64
	Over  time.Duration
	// Window is the absence rule's staleness window.
	Window time.Duration
	// Burn lists the OR-ed window@factor pairs of a burn rule; Function
	// selects the tracked function ("*" or "" = every tracked function).
	Burn     []BurnWindow
	Function string
	// For is the hysteresis: the condition must hold this long (pending)
	// before the rule fires. Zero fires on the first active evaluation.
	For time.Duration
}

// State is a rule's lifecycle position.
type State string

const (
	StateInactive State = "inactive"
	StatePending  State = "pending"
	StateFiring   State = "firing"
)

// RuleStatus is one rule's snapshot for exports.
type RuleStatus struct {
	Rule   Rule
	State  State
	Since  time.Duration // pending/firing transition instant (valid unless inactive)
	Fired  int64         // pending → firing transitions so far
	Detail string        // last active-condition description
}

type ruleState struct {
	rule     Rule
	state    State
	since    time.Duration // entered current non-inactive state
	pendAt   time.Duration // entered pending (window start for incidents)
	fired    int64
	detail   string
	incident *Incident // open incident while firing
}

// Event is one timeline entry: a rule transitioned at virtual instant T.
// Phase is "pending", "firing", "cleared" (pending condition went away
// before For elapsed), or "resolved" (firing condition went away).
type Event struct {
	T      time.Duration
	Rule   string
	Phase  string
	Detail string
}

// DefaultLookback pads an incident's capture window before the pending
// transition, so the series context that led into the alert is kept.
const DefaultLookback = 5 * time.Second

// DefaultRateWindow is the averaging window rate rules use when the
// clause carries no over= option.
const DefaultRateWindow = 5 * time.Second

// defaultWorst bounds the worst-invocation links captured per incident.
const defaultWorst = 3

// Engine evaluates a rule set on the virtual clock. Zero rules is
// valid — the engine just never fires (trenvd always mounts /alerts).
// Engines are not safe for concurrent use; callers serialize Eval and
// the exports the same way they serialize the recorder.
type Engine struct {
	states   []*ruleState
	rec      *obs.Recorder
	slos     []*obs.SLOTracker
	tracer   *obs.Tracer
	lookback time.Duration

	evals    int64
	lastEval time.Duration
	evaled   bool

	firedTotal int64
	incidents  []*Incident
	timeline   []Event
}

// New compiles rules into an engine. Duplicate rule names panic —
// ParseSpec rejects them first, so a panic here means a literal rule
// slice was built wrong.
func New(rules []Rule) *Engine {
	e := &Engine{lookback: DefaultLookback}
	seen := make(map[string]bool, len(rules))
	for _, r := range rules {
		if r.Name == "" {
			panic("alert: rule with empty name")
		}
		if seen[r.Name] {
			panic(fmt.Sprintf("alert: duplicate rule name %q", r.Name))
		}
		seen[r.Name] = true
		e.states = append(e.states, &ruleState{rule: r, state: StateInactive})
	}
	return e
}

// Observe binds the engine to a flight recorder: threshold/rate/absence
// rules read its series, and every Recorder.Sample drives one Eval at
// the same virtual instant, so alert evaluation rides the existing
// sampling pump instead of perturbing the event schedule.
func (e *Engine) Observe(rec *obs.Recorder) {
	e.rec = rec
	rec.SetOnSample(e.Eval)
}

// SetTracer supplies the span source incidents link their worst
// invocations from (nil disables trace capture).
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// AddSLO adds an SLO tracker burn rules evaluate against (a cluster
// attaches one per node).
func (e *Engine) AddSLO(t *obs.SLOTracker) {
	if t != nil {
		e.slos = append(e.slos, t)
	}
}

// SetLookback overrides the incident capture-window padding
// (DefaultLookback when never called; d <= 0 keeps the default).
func (e *Engine) SetLookback(d time.Duration) {
	if d > 0 {
		e.lookback = d
	}
}

// Eval evaluates every rule at virtual instant now. Duplicate or
// out-of-order instants are no-ops, mirroring Recorder.Sample, so
// overlapping pumps cannot double-transition a rule.
func (e *Engine) Eval(now time.Duration) {
	if e.evaled && now <= e.lastEval {
		return
	}
	e.lastEval, e.evaled = now, true
	e.evals++
	for _, st := range e.states {
		active, detail := e.condition(st.rule, now)
		e.transition(st, now, active, detail)
	}
}

// condition evaluates one rule's predicate, returning whether it is
// active and a human description of the offending measurement.
func (e *Engine) condition(r Rule, now time.Duration) (bool, string) {
	switch r.Kind {
	case KindThreshold:
		for _, ts := range e.matchSeries(r) {
			if ts.Len() == 0 {
				continue // no data is absence, never zero
			}
			if v := ts.Last().Value; r.Op.satisfied(v, r.Value) {
				return true, fmt.Sprintf("%s = %g %s %g", ts.Key, v, r.Op, r.Value)
			}
		}
		return false, ""
	case KindRate:
		over := r.Over
		if over <= 0 {
			over = DefaultRateWindow
		}
		for _, ts := range e.matchSeries(r) {
			v, ok := ts.RateOver(now, over)
			if !ok {
				continue // no data is absence, never zero
			}
			if r.Op.satisfied(v, r.Value) {
				return true, fmt.Sprintf("%s = %.3g/s over %s %s %g/s", ts.Key, v, over, r.Op, r.Value)
			}
		}
		return false, ""
	case KindBurn:
		for _, slo := range e.slos {
			for _, fn := range e.burnFunctions(slo, r) {
				for _, bw := range r.Burn {
					if b := slo.BurnRate(fn, now, bw.Window); b >= bw.Factor {
						return true, fmt.Sprintf("%s burn %.2fx over %s >= %gx", fn, b, bw.Window, bw.Factor)
					}
				}
			}
		}
		return false, ""
	case KindAbsence:
		matched := e.matchSeries(r)
		if len(matched) == 0 {
			return true, fmt.Sprintf("%s never sampled", r.seriesKey())
		}
		for _, ts := range matched {
			// The ring only retains sampled points, so "no point newer than
			// now-Window" covers both a stopped series and a window that has
			// aged entirely out of the buffer.
			if ts.Len() == 0 || ts.Last().T <= now-r.Window {
				return true, fmt.Sprintf("%s silent for > %s", ts.Key, r.Window)
			}
		}
		return false, ""
	}
	return false, ""
}

// burnFunctions resolves a burn rule's function selector against one
// tracker (already-sorted tracked names for "*" / "").
func (e *Engine) burnFunctions(slo *obs.SLOTracker, r Rule) []string {
	if r.Function == "" || r.Function == "*" {
		return slo.Functions()
	}
	return []string{r.Function}
}

// matchSeries returns the recorder series a rule watches: same name,
// and every selector label present with the same value (a subset match).
// Recorder.Series is sorted by key, so match order is deterministic.
func (e *Engine) matchSeries(r Rule) []*obs.TimeSeries {
	if e.rec == nil {
		return nil
	}
	var out []*obs.TimeSeries
	for _, ts := range e.rec.Series() {
		if ts.Name != r.Series {
			continue
		}
		ok := true
		for k, v := range r.Labels {
			if ts.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, ts)
		}
	}
	return out
}

func (e *Engine) transition(st *ruleState, now time.Duration, active bool, detail string) {
	switch st.state {
	case StateInactive:
		if !active {
			return
		}
		st.state, st.since, st.pendAt, st.detail = StatePending, now, now, detail
		e.addEvent(now, st.rule.Name, "pending", detail)
		if st.rule.For <= 0 {
			e.fire(st, now)
		}
	case StatePending:
		if !active {
			st.state = StateInactive
			e.addEvent(now, st.rule.Name, "cleared", "condition cleared before for="+st.rule.For.String())
			return
		}
		st.detail = detail
		if now-st.pendAt >= st.rule.For {
			e.fire(st, now)
		}
	case StateFiring:
		if active {
			st.detail = detail
			return
		}
		st.state = StateInactive
		if st.incident != nil {
			st.incident.resolve(now)
			st.incident = nil
		}
		e.addEvent(now, st.rule.Name, "resolved", "")
	}
}

func (e *Engine) fire(st *ruleState, now time.Duration) {
	st.state, st.since = StateFiring, now
	st.fired++
	e.firedTotal++
	inc := e.captureIncident(st, now)
	st.incident = inc
	e.incidents = append(e.incidents, inc)
	e.addEvent(now, st.rule.Name, "firing", st.detail)
}

func (e *Engine) addEvent(t time.Duration, rule, phase, detail string) {
	e.timeline = append(e.timeline, Event{T: t, Rule: rule, Phase: phase, Detail: detail})
}

// Firing counts rules currently in StateFiring.
func (e *Engine) Firing() int {
	n := 0
	for _, st := range e.states {
		if st.state == StateFiring {
			n++
		}
	}
	return n
}

// FiredTotal counts pending → firing transitions across all rules.
func (e *Engine) FiredTotal() int64 { return e.firedTotal }

// Evals counts evaluation rounds.
func (e *Engine) Evals() int64 { return e.evals }

// Rules returns the compiled rules in definition order.
func (e *Engine) Rules() []Rule {
	out := make([]Rule, 0, len(e.states))
	for _, st := range e.states {
		out = append(out, st.rule)
	}
	return out
}

// Snapshot returns every rule's current status in definition order.
func (e *Engine) Snapshot() []RuleStatus {
	out := make([]RuleStatus, 0, len(e.states))
	for _, st := range e.states {
		out = append(out, RuleStatus{
			Rule:   st.rule,
			State:  st.state,
			Since:  st.since,
			Fired:  st.fired,
			Detail: st.detail,
		})
	}
	return out
}

// Incidents returns every captured incident in firing order.
func (e *Engine) Incidents() []*Incident {
	return append([]*Incident(nil), e.incidents...)
}

// Timeline returns the transition events in evaluation order.
func (e *Engine) Timeline() []Event {
	return append([]Event(nil), e.timeline...)
}

// TimelineLines renders the timeline one deterministic line per
// transition — what the incidents experiment and CI artifacts print.
func (e *Engine) TimelineLines() []string {
	out := make([]string, 0, len(e.timeline))
	for _, ev := range e.timeline {
		line := fmt.Sprintf("[%9.3fs] %-8s %s", ev.T.Seconds(), ev.Phase, ev.Rule)
		if ev.Detail != "" {
			line += ": " + ev.Detail
		}
		out = append(out, line)
	}
	return out
}

// RegisterMetrics publishes the engine's own health into reg:
// trenv_alerts_firing (rules firing right now) and
// trenv_alerts_fired_total (lifetime pending → firing transitions).
func (e *Engine) RegisterMetrics(reg *obs.Registry, labels map[string]string) {
	reg.GaugeFunc("trenv_alerts_firing", "Alert rules currently firing.", labels,
		func() float64 { return float64(e.Firing()) })
	reg.CounterFunc("trenv_alerts_fired_total", "Alert pending-to-firing transitions.", labels,
		func() int64 { return e.firedTotal })
}

// --- export ---

type ruleJSON struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Spec    string  `json:"spec"`
	State   string  `json:"state"`
	SinceMS float64 `json:"since_ms,omitempty"`
	Fired   int64   `json:"fired"`
	Detail  string  `json:"detail,omitempty"`
}

type eventJSON struct {
	TMS    float64 `json:"t_ms"`
	Rule   string  `json:"rule"`
	Phase  string  `json:"phase"`
	Detail string  `json:"detail,omitempty"`
}

type engineJSON struct {
	Evals     int64       `json:"evals"`
	Firing    int         `json:"firing"`
	Fired     int64       `json:"fired"`
	Rules     []ruleJSON  `json:"rules"`
	Incidents []*Incident `json:"incidents"`
	Timeline  []eventJSON `json:"timeline"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (e *Engine) export() engineJSON {
	doc := engineJSON{
		Evals:     e.evals,
		Firing:    e.Firing(),
		Fired:     e.firedTotal,
		Rules:     []ruleJSON{},
		Incidents: e.incidents,
		Timeline:  []eventJSON{},
	}
	if doc.Incidents == nil {
		doc.Incidents = []*Incident{}
	}
	for _, st := range e.states {
		rj := ruleJSON{
			Name:   st.rule.Name,
			Kind:   string(st.rule.Kind),
			Spec:   st.rule.Spec(),
			State:  string(st.state),
			Fired:  st.fired,
			Detail: st.detail,
		}
		if st.state != StateInactive {
			rj.SinceMS = durMS(st.since)
		}
		doc.Rules = append(doc.Rules, rj)
	}
	for _, ev := range e.timeline {
		doc.Timeline = append(doc.Timeline, eventJSON{TMS: durMS(ev.T), Rule: ev.Rule, Phase: ev.Phase, Detail: ev.Detail})
	}
	return doc
}

// WriteJSON writes the engine snapshot — rules with their states,
// captured incidents, and the transition timeline — as one JSON
// document. Rules render in definition order and incidents/timeline in
// virtual-time order, so same-seed runs produce byte-identical output.
func (e *Engine) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(e.export())
}

// Set groups one engine per run under run names for a single export
// file — what `trenv-bench -alerts` threads through the figure runs,
// mirroring obs.RecorderSet.
type Set struct {
	rules []Rule
	runs  []setRun
}

type setRun struct {
	Run string
	Eng *Engine
}

// NewSet builds a set whose engines all compile the same rules.
func NewSet(rules []Rule) *Set { return &Set{rules: rules} }

// Rules returns the shared rule slice.
func (s *Set) Rules() []Rule { return s.rules }

// Track adds a fresh engine for a named run and returns it.
func (s *Set) Track(run string) *Engine {
	eng := New(s.rules)
	s.runs = append(s.runs, setRun{Run: run, Eng: eng})
	return eng
}

// Runs returns how many runs the set tracks.
func (s *Set) Runs() int { return len(s.runs) }

// Each visits every tracked run in the order it was added.
func (s *Set) Each(fn func(run string, eng *Engine)) {
	for _, sr := range s.runs {
		fn(sr.Run, sr.Eng)
	}
}

// WriteJSON writes every run's engine snapshot as one JSON document.
func (s *Set) WriteJSON(w io.Writer) error {
	type runDoc struct {
		Run string `json:"run"`
		engineJSON
	}
	doc := struct {
		Runs []runDoc `json:"runs"`
	}{Runs: make([]runDoc, 0, len(s.runs))}
	for _, sr := range s.runs {
		doc.Runs = append(doc.Runs, runDoc{Run: sr.Run, engineJSON: sr.Eng.export()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// seriesKey renders the rule's series selector for messages.
func (r Rule) seriesKey() string {
	if len(r.Labels) == 0 {
		return r.Series
	}
	keys := make([]string, 0, len(r.Labels))
	for k := range r.Labels {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var b strings.Builder
	b.WriteString(r.Series)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(r.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Spec renders the rule back into its ParseSpec clause — the canonical
// self-describing form exports carry.
func (r Rule) Spec() string {
	var b strings.Builder
	b.WriteString(string(r.Kind))
	b.WriteByte(':')
	b.WriteString(r.Name)
	b.WriteByte(':')
	switch r.Kind {
	case KindThreshold, KindRate:
		b.WriteString(r.seriesKey())
		b.WriteByte(':')
		b.WriteString(string(r.Op))
		b.WriteString(strconv.FormatFloat(r.Value, 'g', -1, 64))
		if r.Kind == KindRate && r.Over > 0 {
			b.WriteString(":over=")
			b.WriteString(r.Over.String())
		}
	case KindBurn:
		fn := r.Function
		if fn == "" {
			fn = "*"
		}
		b.WriteString(fn)
		b.WriteByte(':')
		for i, bw := range r.Burn {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(bw.Window.String())
			b.WriteByte('@')
			b.WriteString(strconv.FormatFloat(bw.Factor, 'g', -1, 64))
			b.WriteByte('x')
		}
	case KindAbsence:
		b.WriteString(r.seriesKey())
		b.WriteByte(':')
		b.WriteString(r.Window.String())
	}
	if r.For > 0 {
		b.WriteString(":for=")
		b.WriteString(r.For.String())
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
