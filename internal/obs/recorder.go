package obs

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"time"

	"repro/internal/sim"
)

// The flight recorder snapshots every registered counter and gauge into
// fixed-capacity ring-buffer time series as virtual time advances. It
// is the aggregate complement to per-invocation spans: pool
// utilization, warm-hit ratio, fault rates, and sharing factor *over a
// run*, cheap enough to leave on for every figure run.

const (
	// DefaultSeriesCapacity bounds each ring-buffer series; once full the
	// oldest points are overwritten in place.
	DefaultSeriesCapacity = 4096
	// DefaultSampleInterval is the virtual-time spacing between samples
	// when the caller does not choose one.
	DefaultSampleInterval = 100 * time.Millisecond
)

// Point is one sampled value of one series at a virtual instant. Rate
// is the per-second rate of change since the previous sample, derived
// for counter series only (zero for gauges and for the first sample).
type Point struct {
	T     time.Duration
	Value float64
	Rate  float64
}

// TimeSeries is a fixed-capacity ring of points for one registry
// series.
type TimeSeries struct {
	Name    string
	Labels  map[string]string
	Key     string
	Counter bool

	cap     int
	points  []Point
	head    int // oldest retained point once full
	dropped int64

	lastT time.Duration
	lastV float64
	seen  bool
}

func (ts *TimeSeries) push(p Point) {
	if len(ts.points) < ts.cap {
		ts.points = append(ts.points, p)
		return
	}
	ts.points[ts.head] = p
	ts.head = (ts.head + 1) % ts.cap
	ts.dropped++
}

// Points returns the retained points, oldest first.
func (ts *TimeSeries) Points() []Point {
	out := make([]Point, 0, len(ts.points))
	out = append(out, ts.points[ts.head:]...)
	out = append(out, ts.points[:ts.head]...)
	return out
}

// Len returns how many points are retained.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Dropped returns how many points aged out of the ring.
func (ts *TimeSeries) Dropped() int64 { return ts.dropped }

// Last returns the most recent point (zero Point when empty).
func (ts *TimeSeries) Last() Point {
	if len(ts.points) == 0 {
		return Point{}
	}
	if len(ts.points) < ts.cap {
		return ts.points[len(ts.points)-1]
	}
	return ts.points[(ts.head+ts.cap-1)%ts.cap]
}

// at returns the i-th retained point, oldest first.
func (ts *TimeSeries) at(i int) Point {
	if len(ts.points) < ts.cap {
		return ts.points[i]
	}
	return ts.points[(ts.head+i)%ts.cap]
}

// RateOver returns the average per-second rate of change between the
// newest retained point and the newest point at or before now-window
// (the oldest retained point when the window reaches past the ring).
// ok is false when fewer than two distinct instants bound the window —
// no data yields no rate, never zero. Alert rate rules use this instead
// of the instantaneous per-sample Rate, which is too spiky to threshold.
func (ts *TimeSeries) RateOver(now, window time.Duration) (rate float64, ok bool) {
	n := len(ts.points)
	if n < 2 {
		return 0, false
	}
	last := ts.at(n - 1)
	cut := now - window
	baseline := ts.at(0)
	for i := n - 2; i >= 0; i-- {
		if p := ts.at(i); p.T <= cut {
			baseline = p
			break
		}
	}
	if baseline.T >= last.T {
		return 0, false
	}
	return safeRate(last.Value-baseline.Value, last.T-baseline.T), true
}

// Recorder samples a registry into per-series rings. Series appear as
// the registry first reports them (dynamic families grow during a run).
type Recorder struct {
	reg     *Registry
	cap     int
	series  map[string]*TimeSeries
	order   []string // sorted keys
	samples int64

	// onSample, when set, runs after every Sample with the sampled
	// instant — the alert engine hooks rule evaluation here so alerting
	// rides the existing sampling pump instead of scheduling events of
	// its own.
	onSample func(now time.Duration)
}

// NewRecorder records reg's series into rings of the given capacity
// (DefaultSeriesCapacity when capacity <= 0).
func NewRecorder(reg *Registry, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Recorder{reg: reg, cap: capacity, series: make(map[string]*TimeSeries)}
}

// Sample gathers the registry once at virtual time now. Re-sampling the
// same instant is a no-op per series, so overlapping pumps cannot
// duplicate points.
func (r *Recorder) Sample(now time.Duration) {
	for _, s := range r.reg.Gather() {
		ts, ok := r.series[s.Key]
		if !ok {
			ts = &TimeSeries{Name: s.Name, Labels: s.Labels, Key: s.Key, Counter: s.Counter, cap: r.cap}
			r.series[s.Key] = ts
			i := sort.SearchStrings(r.order, s.Key)
			r.order = append(r.order, "")
			copy(r.order[i+1:], r.order[i:])
			r.order[i] = s.Key
		}
		if ts.seen && now <= ts.lastT {
			continue
		}
		var rate float64
		if s.Counter && ts.seen {
			rate = safeRate(s.Value-ts.lastV, now-ts.lastT)
		}
		ts.push(Point{T: now, Value: s.Value, Rate: rate})
		ts.lastT, ts.lastV, ts.seen = now, s.Value, true
	}
	r.samples++
	if r.onSample != nil {
		r.onSample(now)
	}
}

// SetOnSample registers a hook that runs after every Sample with the
// sampled virtual instant (nil clears it). Consumers that must see
// exactly the instants the recorder saw — the alert engine — bind here.
func (r *Recorder) SetOnSample(fn func(now time.Duration)) { r.onSample = fn }

// safeRate returns delta per second over elapsed, or 0 when the
// interval is zero or negative — rates must never divide by a
// degenerate interval (clock stalls, duplicate samples, reordered
// pumps), they degrade to "no rate" instead of Inf/NaN.
func safeRate(delta float64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return delta / elapsed.Seconds()
}

// Samples returns how many times Sample ran.
func (r *Recorder) Samples() int64 { return r.samples }

// Registry returns the registry this recorder samples — the report
// builder gathers a run's end-state metrics through it.
func (r *Recorder) Registry() *Registry { return r.reg }

// Series returns every recorded series sorted by key.
func (r *Recorder) Series() []*TimeSeries {
	out := make([]*TimeSeries, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.series[k])
	}
	return out
}

// Lookup returns the series for name with exactly the given labels, or
// nil if never sampled.
func (r *Recorder) Lookup(name string, labels map[string]string) *TimeSeries {
	return r.series[name+renderLabels(labels, "")]
}

// PumpWhile samples every interval of virtual time on eng, starting
// now, and keeps going while cont returns true (checked after each
// sample, so the final state is always captured). A nil cont pumps
// until the engine drains — every pending tick schedules the next, so
// only use nil when something else bounds the run.
func (r *Recorder) PumpWhile(eng *sim.Engine, every time.Duration, cont func() bool) {
	if every <= 0 {
		every = DefaultSampleInterval
	}
	var tick func()
	tick = func() {
		r.Sample(eng.Now())
		if cont == nil || cont() {
			eng.After(every, tick)
		}
	}
	eng.After(0, tick)
}

// --- export ---

type pointJSON struct {
	TMS   float64 `json:"t_ms"`
	Value float64 `json:"v"`
	Rate  float64 `json:"rate,omitempty"`
}

type seriesJSON struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Counter bool              `json:"counter,omitempty"`
	Dropped int64             `json:"dropped,omitempty"`
	Points  []pointJSON       `json:"points"`
}

type recorderJSON struct {
	Samples int64        `json:"samples"`
	Series  []seriesJSON `json:"series"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (r *Recorder) export() recorderJSON {
	doc := recorderJSON{Samples: r.samples, Series: make([]seriesJSON, 0, len(r.order))}
	for _, ts := range r.Series() {
		sj := seriesJSON{Name: ts.Name, Labels: ts.Labels, Counter: ts.Counter, Dropped: ts.dropped}
		for _, p := range ts.Points() {
			sj.Points = append(sj.Points, pointJSON{TMS: durMS(p.T), Value: p.Value, Rate: p.Rate})
		}
		doc.Series = append(doc.Series, sj)
	}
	return doc
}

// WriteJSON writes the recorded series as a single JSON document.
// Series are sorted by key and label maps marshal with sorted keys, so
// same-seed runs produce byte-identical output.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.export())
}

// csvHeader is shared by Recorder.WriteCSV and RecorderSet.WriteCSV
// (the latter prefixes a run column).
var csvHeader = []string{"series", "labels", "t_ms", "value", "rate_per_s"}

func writeSeriesCSV(cw *csv.Writer, prefix []string, series []*TimeSeries) error {
	for _, ts := range series {
		labels := renderLabels(ts.Labels, "")
		for _, p := range ts.Points() {
			row := append(append([]string(nil), prefix...),
				ts.Name,
				labels,
				formatValue(durMS(p.T)),
				formatValue(p.Value),
				formatValue(p.Rate),
			)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV writes one row per point: series,labels,t_ms,value,rate_per_s.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	if err := writeSeriesCSV(cw, nil, r.Series()); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// RecorderSet groups one flight recorder per run (one experiment
// configuration, one policy...) for a single export file — what
// `trenv-bench -timeseries` threads through the figure runs.
type RecorderSet struct {
	every time.Duration
	cap   int
	runs  []recorderRun
}

type recorderRun struct {
	Run string
	Rec *Recorder
}

// NewRecorderSet builds a set whose recorders sample every interval
// into rings of the given capacity (defaults apply when <= 0).
func NewRecorderSet(every time.Duration, capacity int) *RecorderSet {
	if every <= 0 {
		every = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &RecorderSet{every: every, cap: capacity}
}

// Every returns the sampling interval.
func (s *RecorderSet) Every() time.Duration { return s.every }

// Track adds a recorder over reg for a named run and returns it.
func (s *RecorderSet) Track(run string, reg *Registry) *Recorder {
	rec := NewRecorder(reg, s.cap)
	s.runs = append(s.runs, recorderRun{Run: run, Rec: rec})
	return rec
}

// Runs returns how many runs the set tracks.
func (s *RecorderSet) Runs() int { return len(s.runs) }

// Each visits every tracked run in the order it was added.
func (s *RecorderSet) Each(fn func(run string, rec *Recorder)) {
	for _, rr := range s.runs {
		fn(rr.Run, rr.Rec)
	}
}

type runJSON struct {
	Run     string       `json:"run"`
	Samples int64        `json:"samples"`
	Series  []seriesJSON `json:"series"`
}

// WriteJSON writes every run's series as one JSON document, in the
// order the runs were tracked.
func (s *RecorderSet) WriteJSON(w io.Writer) error {
	doc := struct {
		Runs []runJSON `json:"runs"`
	}{Runs: make([]runJSON, 0, len(s.runs))}
	for _, rr := range s.runs {
		rd := rr.Rec.export()
		doc.Runs = append(doc.Runs, runJSON{Run: rr.Run, Samples: rd.Samples, Series: rd.Series})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteCSV writes every run's points with a leading run column.
func (s *RecorderSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"run"}, csvHeader...)); err != nil {
		return err
	}
	for _, rr := range s.runs {
		if err := writeSeriesCSV(cw, []string{rr.Run}, rr.Rec.Series()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RegisterTraceLog exposes a scheduler trace ring's drop count through
// the registry, so silent event loss is visible on /metrics.
func RegisterTraceLog(reg *Registry, labels map[string]string, log *sim.TraceLog) {
	reg.CounterFunc("trenv_sim_trace_dropped_total",
		"Scheduler trace events that aged out of the TraceLog ring.",
		labels, log.Dropped)
}

// RegisterTracerDrops exposes a span tracer's drop count.
func RegisterTracerDrops(reg *Registry, labels map[string]string, tr *Tracer) {
	reg.CounterFunc("trenv_spans_dropped_total",
		"Invocation spans that aged out of the tracer ring.",
		labels, tr.Dropped)
}
