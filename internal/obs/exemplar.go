package obs

import (
	"math"
	"strconv"
)

// Exemplar links one observed histogram value to the trace that
// produced it, so a tail bucket on /metrics points at the exact
// invocation's span tree.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// DefaultExemplarBuckets are the millisecond upper bounds used for
// latency exemplar reservoirs (+Inf is implicit).
var DefaultExemplarBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// ExemplarReservoir keeps, per histogram bucket, a bounded reservoir of
// (value, TraceID) exemplars. Sampling is Algorithm R driven by a
// deterministic per-bucket xorshift stream, so a fixed seed yields the
// exact same exemplars across runs. Not safe for concurrent use; the
// simulation observes from one goroutine.
type ExemplarReservoir struct {
	bounds []float64 // ascending upper bounds; +Inf appended
	counts []int64   // per-bucket observation counts
	res    [][]Exemplar
	seen   []int64  // per-bucket observations, drives Algorithm R
	rng    []uint64 // per-bucket xorshift64 state
	cap    int
}

// DefaultExemplarsPerBucket bounds each bucket's reservoir.
const DefaultExemplarsPerBucket = 4

// NewExemplarReservoir builds a reservoir over the given ascending
// upper bounds (nil means DefaultExemplarBuckets; a +Inf bucket is
// always appended) keeping at most perBucket exemplars per bucket
// (<= 0 means DefaultExemplarsPerBucket). The seed string namespaces
// the deterministic sampling streams, so distinct series replace
// different slots.
func NewExemplarReservoir(bounds []float64, perBucket int, seed string) *ExemplarReservoir {
	if bounds == nil {
		bounds = DefaultExemplarBuckets
	}
	if perBucket <= 0 {
		perBucket = DefaultExemplarsPerBucket
	}
	b := append(append([]float64(nil), bounds...), math.Inf(1))
	n := len(b)
	r := &ExemplarReservoir{
		bounds: b,
		counts: make([]int64, n),
		res:    make([][]Exemplar, n),
		seen:   make([]int64, n),
		rng:    make([]uint64, n),
		cap:    perBucket,
	}
	for i := range r.rng {
		r.rng[i] = fnv1a64(seed, "bucket", strconv.Itoa(i)) | 1 // xorshift state must be non-zero
	}
	return r
}

// next advances bucket i's xorshift64 stream.
func (r *ExemplarReservoir) next(i int) uint64 {
	x := r.rng[i]
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng[i] = x
	return x
}

// Observe records value into its bucket's count and reservoir.
func (r *ExemplarReservoir) Observe(value float64, traceID string) {
	i := 0
	for i < len(r.bounds)-1 && value > r.bounds[i] {
		i++
	}
	r.counts[i]++
	r.seen[i]++
	if len(r.res[i]) < r.cap {
		r.res[i] = append(r.res[i], Exemplar{Value: value, TraceID: traceID})
		return
	}
	// Algorithm R: replace a random slot with probability cap/seen.
	if j := r.next(i) % uint64(r.seen[i]); j < uint64(r.cap) {
		r.res[i][j] = Exemplar{Value: value, TraceID: traceID}
	}
}

// BucketExemplars is one bucket's state: its upper bound, how many
// observations landed in it (non-cumulative), and the retained
// exemplars in reservoir order.
type BucketExemplars struct {
	UpperBound float64    `json:"le"`
	Count      int64      `json:"count"`
	Exemplars  []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot returns every bucket in ascending upper-bound order.
func (r *ExemplarReservoir) Snapshot() []BucketExemplars {
	out := make([]BucketExemplars, len(r.bounds))
	for i := range r.bounds {
		out[i] = BucketExemplars{
			UpperBound: r.bounds[i],
			Count:      r.counts[i],
			Exemplars:  append([]Exemplar(nil), r.res[i]...),
		}
	}
	return out
}

// Pick returns the bucket's representative exemplar for a single
// OpenMetrics bucket line: the retained exemplar with the largest
// value (ties: first retained), or ok=false for an empty bucket.
func (b BucketExemplars) Pick() (Exemplar, bool) {
	if len(b.Exemplars) == 0 {
		return Exemplar{}, false
	}
	best := b.Exemplars[0]
	for _, e := range b.Exemplars[1:] {
		if e.Value > best.Value {
			best = e
		}
	}
	return best, true
}

// FormatLe renders a bucket upper bound the way Prometheus spells it
// ("+Inf" for the overflow bucket).
func FormatLe(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}
