package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRecorderWraparoundKeepsRatesAndExports drives a small ring far
// past its capacity and checks that the retained window is the newest
// points in order, rates stay correct across the wrap, and the CSV and
// JSON exports reflect exactly the retained window.
func TestRecorderWraparoundKeepsRatesAndExports(t *testing.T) {
	reg := NewRegistry()
	var c int64
	reg.CounterFunc("c_total", "c", nil, func() int64 { return c })

	const capacity = 4
	rec := NewRecorder(reg, capacity)
	step := 100 * time.Millisecond
	const rounds = 25 // 6x past capacity
	for i := 1; i <= rounds; i++ {
		c += 5 // +5 per 100ms = 50/s
		rec.Sample(time.Duration(i) * step)
	}

	ts := rec.Lookup("c_total", nil)
	if ts.Len() != capacity || ts.Dropped() != rounds-capacity {
		t.Fatalf("len = %d dropped = %d, want %d/%d", ts.Len(), ts.Dropped(), capacity, rounds-capacity)
	}
	pts := ts.Points()
	for i, p := range pts {
		wantT := time.Duration(rounds-capacity+1+i) * step
		if p.T != wantT {
			t.Fatalf("point %d at %v, want %v (oldest-first across the wrap)", i, p.T, wantT)
		}
		if p.Rate != 50 {
			t.Fatalf("point %d rate = %v, want 50/s after wraparound", i, p.Rate)
		}
	}

	var csvBuf bytes.Buffer
	if err := rec.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if got := len(lines) - 1; got != capacity {
		t.Fatalf("CSV rows = %d, want the %d retained points:\n%s", got, capacity, csvBuf.String())
	}
	if !strings.Contains(lines[1], "2200") || !strings.Contains(lines[len(lines)-1], "2500") {
		t.Fatalf("CSV window wrong:\n%s", csvBuf.String())
	}

	var jsonBuf bytes.Buffer
	if err := rec.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []struct {
			Key    string `json:"key"`
			Points []struct {
				TMS  float64 `json:"t_ms"`
				Rate float64 `json:"rate"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 1 || len(doc.Series[0].Points) != capacity {
		t.Fatalf("JSON export = %s", jsonBuf.String())
	}
	if first := doc.Series[0].Points[0]; first.TMS != 2200 || first.Rate != 50 {
		t.Fatalf("JSON first retained point = %+v", first)
	}
}

func TestRateOverWindows(t *testing.T) {
	reg := NewRegistry()
	var c int64
	reg.CounterFunc("c_total", "c", nil, func() int64 { return c })
	rec := NewRecorder(reg, 3)
	ts := func() *TimeSeries { return rec.Lookup("c_total", nil) }

	// No points, then one point: no rate either way — never zero.
	rec.Sample(100 * time.Millisecond)
	if _, ok := ts().RateOver(100*time.Millisecond, time.Second); ok {
		t.Fatal("single point yielded a rate")
	}

	c += 10
	rec.Sample(200 * time.Millisecond) // 100/s over the last 100ms
	c += 0
	rec.Sample(300 * time.Millisecond) // flat over the last 100ms
	if v, ok := ts().RateOver(300*time.Millisecond, 200*time.Millisecond); !ok || v != 50 {
		t.Fatalf("windowed rate = %v/%v, want 50/s over both intervals", v, ok)
	}

	// A window reaching past the ring falls back to the oldest retained
	// point instead of inventing a zero baseline.
	c += 10
	rec.Sample(400 * time.Millisecond) // ring now holds 200,300,400ms
	v, ok := ts().RateOver(400*time.Millisecond, time.Hour)
	if !ok {
		t.Fatal("window past the ring yielded no rate")
	}
	if want := 10.0 / 0.2; v != want { // +10 over the retained 200ms
		t.Fatalf("clamped-window rate = %v, want %v", v, want)
	}
}
