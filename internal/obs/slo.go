package obs

import (
	"fmt"
	"sort"
	"time"
)

// SLO is a latency objective for one function: at least Objective
// (a fraction in (0,1), e.g. 0.99) of invocations must complete within
// Target.
type SLO struct {
	Target    time.Duration
	Objective float64
}

func (s SLO) check() {
	if s.Target <= 0 {
		panic("obs: SLO target must be positive")
	}
	if s.Objective <= 0 || s.Objective >= 1 {
		panic(fmt.Sprintf("obs: SLO objective %v outside (0,1)", s.Objective))
	}
}

// DefaultBurnWindows are the sliding virtual-time windows burn rate is
// reported over when the caller does not choose any.
var DefaultBurnWindows = []time.Duration{time.Minute, 5 * time.Minute}

// DefaultSLOEventCapacity bounds the per-function event ring burn rates
// are computed from.
const DefaultSLOEventCapacity = 4096

type sloEvent struct {
	t   time.Duration
	bad bool
}

type sloSeries struct {
	slo      SLO
	events   []sloEvent // ring, oldest at head once full
	head     int
	total    int64
	breaches int64
}

func (s *sloSeries) record(e sloEvent, cap int) {
	s.total++
	if e.bad {
		s.breaches++
	}
	if len(s.events) < cap {
		s.events = append(s.events, e)
		return
	}
	s.events[s.head] = e
	s.head = (s.head + 1) % cap
}

// window counts events with t in (now-window, now].
func (s *sloSeries) window(now, window time.Duration) (total, bad int64) {
	lo := now - window
	for _, e := range s.events {
		if e.t > lo && e.t <= now {
			total++
			if e.bad {
				bad++
			}
		}
	}
	return total, bad
}

// SLOTracker tracks per-function latency objectives over virtual time
// and derives burn rates over sliding windows. Burn rate is the
// fraction of the error budget being consumed: (bad fraction in the
// window) / (1 - objective); 1.0 means burning exactly at budget,
// above 1 means the objective will be missed if the window is
// representative.
type SLOTracker struct {
	def     SLO
	hasDef  bool
	cap     int
	windows []time.Duration
	byFn    map[string]*sloSeries
	names   []string // sorted function names
}

// NewSLOTracker tracks burn rate over the given sliding windows
// (DefaultBurnWindows when none are given).
func NewSLOTracker(windows ...time.Duration) *SLOTracker {
	if len(windows) == 0 {
		windows = DefaultBurnWindows
	}
	return &SLOTracker{
		cap:     DefaultSLOEventCapacity,
		windows: windows,
		byFn:    make(map[string]*sloSeries),
	}
}

// Windows returns the burn-rate windows.
func (t *SLOTracker) Windows() []time.Duration { return t.windows }

// SetDefault applies slo to every function without an explicit Set.
func (t *SLOTracker) SetDefault(slo SLO) {
	slo.check()
	t.def, t.hasDef = slo, true
}

// Set fixes the objective for one function, overriding the default.
func (t *SLOTracker) Set(fn string, slo SLO) {
	slo.check()
	t.seriesFor(fn, slo)
	t.byFn[fn].slo = slo
}

func (t *SLOTracker) seriesFor(fn string, slo SLO) *sloSeries {
	s, ok := t.byFn[fn]
	if !ok {
		s = &sloSeries{slo: slo}
		t.byFn[fn] = s
		i := sort.SearchStrings(t.names, fn)
		t.names = append(t.names, "")
		copy(t.names[i+1:], t.names[i:])
		t.names[i] = fn
	}
	return s
}

// Record observes one invocation of fn completing at virtual time `at`
// with the given end-to-end latency. Functions with neither an explicit
// objective nor a default are not tracked.
func (t *SLOTracker) Record(fn string, at, latency time.Duration) {
	s, ok := t.byFn[fn]
	if !ok {
		if !t.hasDef {
			return
		}
		s = t.seriesFor(fn, t.def)
	}
	s.record(sloEvent{t: at, bad: latency > s.slo.Target}, t.cap)
}

// Functions returns every tracked function, sorted.
func (t *SLOTracker) Functions() []string {
	return append([]string(nil), t.names...)
}

// Total returns how many invocations of fn were recorded.
func (t *SLOTracker) Total(fn string) int64 {
	if s, ok := t.byFn[fn]; ok {
		return s.total
	}
	return 0
}

// Breaches returns how many recorded invocations of fn missed its
// latency target.
func (t *SLOTracker) Breaches(fn string) int64 {
	if s, ok := t.byFn[fn]; ok {
		return s.breaches
	}
	return 0
}

// BurnRate returns the error-budget burn rate for fn over the window
// ending at now: (bad/total within window) / (1 - objective). Zero when
// nothing was recorded in the window. Windows longer than the retained
// event ring are computed over the retained events.
func (t *SLOTracker) BurnRate(fn string, now, window time.Duration) float64 {
	s, ok := t.byFn[fn]
	if !ok {
		return 0
	}
	total, bad := s.window(now, window)
	if total == 0 {
		return 0
	}
	// Track validates Objective into (0,1), but guard the error-budget
	// denominator anyway: a degenerate objective must not divide by zero.
	den := 1 - s.slo.Objective
	if den <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / den
}

// Compliance returns the fraction of invocations within target over the
// window ending at now (1 when nothing was recorded).
func (t *SLOTracker) Compliance(fn string, now, window time.Duration) float64 {
	s, ok := t.byFn[fn]
	if !ok {
		return 1
	}
	total, bad := s.window(now, window)
	if total == 0 {
		return 1
	}
	return 1 - float64(bad)/float64(total)
}

// mergeLabels returns base ∪ extra (extra wins on conflicts).
func mergeLabels(base, extra map[string]string) map[string]string {
	if len(base) == 0 && len(extra) == 0 {
		return nil
	}
	out := make(map[string]string, len(base)+len(extra))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// Register publishes the tracker through reg: per-function event and
// breach counters, the configured target, and one burn-rate gauge per
// window, all merged with base labels (e.g. node="n3"). now supplies
// the virtual instant burn rates are evaluated at.
func (t *SLOTracker) Register(reg *Registry, base map[string]string, now func() time.Duration) {
	reg.CounterSetFunc("trenv_slo_events_total",
		"Invocations observed by the SLO tracker.",
		func() []LabeledValue {
			out := make([]LabeledValue, 0, len(t.names))
			for _, fn := range t.names {
				out = append(out, LabeledValue{
					Labels: mergeLabels(base, map[string]string{"function": fn}),
					Value:  float64(t.byFn[fn].total),
				})
			}
			return out
		})
	reg.CounterSetFunc("trenv_slo_breaches_total",
		"Invocations that missed their latency target.",
		func() []LabeledValue {
			out := make([]LabeledValue, 0, len(t.names))
			for _, fn := range t.names {
				out = append(out, LabeledValue{
					Labels: mergeLabels(base, map[string]string{"function": fn}),
					Value:  float64(t.byFn[fn].breaches),
				})
			}
			return out
		})
	reg.GaugeSetFunc("trenv_slo_target_ms",
		"Configured per-function latency target.",
		func() []LabeledValue {
			out := make([]LabeledValue, 0, len(t.names))
			for _, fn := range t.names {
				out = append(out, LabeledValue{
					Labels: mergeLabels(base, map[string]string{"function": fn}),
					Value:  durMS(t.byFn[fn].slo.Target),
				})
			}
			return out
		})
	reg.GaugeSetFunc("trenv_slo_burn_rate",
		"Error-budget burn rate over a sliding virtual-time window (1 = at budget).",
		func() []LabeledValue {
			at := now()
			out := make([]LabeledValue, 0, len(t.names)*len(t.windows))
			for _, fn := range t.names {
				for _, w := range t.windows {
					out = append(out, LabeledValue{
						Labels: mergeLabels(base, map[string]string{"function": fn, "window": w.String()}),
						Value:  t.BurnRate(fn, at, w),
					})
				}
			}
			return out
		})
}
