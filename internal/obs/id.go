package obs

import (
	"fmt"
	"strconv"
)

// Trace identity is derived, not random: IDs are FNV-1a hashes of
// stable strings (node name, function, per-platform sequence number),
// so a fixed seed reproduces the exact same TraceIDs across runs and
// exported artifacts (traces, exemplars, analysis reports) stay
// byte-identical and cross-referenceable.

// fnv1a64 hashes parts with FNV-1a, separating them with 0x1f so
// ("a","bc") and ("ab","c") hash differently.
func fnv1a64(parts ...string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime
		}
		h ^= 0x1f
		h *= prime
	}
	return h
}

// TraceIDFor derives a deterministic 16-hex-digit trace identifier from
// the given parts (typically node, function, and invocation sequence).
func TraceIDFor(parts ...string) string {
	return fmt.Sprintf("%016x", fnv1a64(parts...))
}

// spanIDFor derives a span identifier from its trace and the span's
// position in the tree's depth-first walk order.
func spanIDFor(traceID string, walkIndex int) string {
	return fmt.Sprintf("%08x", uint32(fnv1a64(traceID, strconv.Itoa(walkIndex))))
}

// Link is a causal reference from one span to a span in another trace —
// a cluster dispatch pointing at the invocation it placed, a restore's
// remote fetch pointing at the memory-pool span that served it, an
// eviction pointing at the invocation whose admission triggered it.
type Link struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id,omitempty"`
	// Type names the causal relation ("remote-fetch", "serves",
	// "evicted-by", "after").
	Type string `json:"type,omitempty"`
}
