package obs

import (
	"math"
	"testing"
	"time"
)

func TestSafeRateDegenerateIntervals(t *testing.T) {
	if got := safeRate(10, 0); got != 0 {
		t.Errorf("safeRate(10, 0) = %v, want 0", got)
	}
	if got := safeRate(10, -time.Second); got != 0 {
		t.Errorf("safeRate(10, -1s) = %v, want 0", got)
	}
	if got := safeRate(10, 2*time.Second); got != 5 {
		t.Errorf("safeRate(10, 2s) = %v, want 5", got)
	}
}

// A recorder fed duplicate and backwards sample instants must neither
// duplicate points nor derive a rate from a degenerate interval.
func TestRecorderRejectsNonAdvancingSamples(t *testing.T) {
	reg := NewRegistry()
	var n int64
	reg.CounterFunc("trenv_guard_test_total", "test counter", nil, func() int64 { return n })

	rec := NewRecorder(reg, 0)
	n = 5
	rec.Sample(100 * time.Millisecond)
	n = 10
	rec.Sample(100 * time.Millisecond) // duplicate instant: dropped
	rec.Sample(50 * time.Millisecond)  // backwards instant: dropped
	rec.Sample(200 * time.Millisecond) // advancing: kept, rate derived

	ts := rec.Lookup("trenv_guard_test_total", nil)
	if ts == nil {
		t.Fatal("series never recorded")
	}
	pts := ts.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 (duplicate and backwards samples dropped): %+v", len(pts), pts)
	}
	for _, p := range pts {
		if math.IsInf(p.Rate, 0) || math.IsNaN(p.Rate) {
			t.Fatalf("degenerate rate leaked into the ring: %+v", p)
		}
	}
	if pts[0].Rate != 0 {
		t.Errorf("first sample rate = %v, want 0", pts[0].Rate)
	}
	// 5 -> 10 over the 100ms between the two retained samples = 50/s.
	if pts[1].Rate != 50 {
		t.Errorf("second sample rate = %v, want 50", pts[1].Rate)
	}
}
