// Package obs is the observability layer for the simulated TrEnv stack:
// hierarchical spans over virtual time, a pull-based metrics registry
// with Prometheus text-format export, and trace exporters (Chrome
// trace-event JSON, streaming JSONL).
//
// Everything is virtual-time-aware: spans carry time.Duration offsets
// from the simulation epoch, not wall-clock timestamps, so a fixed seed
// produces byte-identical exports across runs.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of an operation in virtual time. A root span
// (an invocation, an agent run) owns a tree of child phases whose
// durations decompose the parent's.
type Span struct {
	Name  string
	Start time.Duration // virtual-time offset of the phase start
	End   time.Duration // virtual-time offset of the phase end
	// TraceID identifies the root tree this span belongs to; SpanID
	// identifies the span within it. Both are deterministic (see
	// TraceIDFor): assigned by the recording layer or, as a fallback,
	// by Tracer.Record from its sequence counter.
	TraceID string
	SpanID  string
	// Links reference causally-related spans in other traces (a remote
	// memory-pool fetch serving this restore, the invocation that
	// triggered this eviction).
	Links []Link
	// Attrs carry small key/value annotations (function, policy, path).
	Attrs map[string]string
	// Error is the failure description ("" = success).
	Error    string
	Children []*Span
}

// NewSpan returns a span covering [start, end].
func NewSpan(name string, start, end time.Duration) *Span {
	if end < start {
		panic(fmt.Sprintf("obs: span %q ends (%v) before it starts (%v)", name, end, start))
	}
	return &Span{Name: name, Start: start, End: end}
}

// Duration returns the span's length.
func (s *Span) Duration() time.Duration { return s.End - s.Start }

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) *Span {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
	return s
}

// Child appends a child phase covering [start, end] and returns it.
func (s *Span) Child(name string, start, end time.Duration) *Span {
	c := NewSpan(name, start, end)
	s.Children = append(s.Children, c)
	return c
}

// Fail marks the span failed.
func (s *Span) Fail(err error) *Span {
	if err != nil {
		s.Error = err.Error()
	}
	return s
}

// AddLink attaches a causal reference to a span in another trace.
func (s *Span) AddLink(l Link) *Span {
	s.Links = append(s.Links, l)
	return s
}

// AssignIDs stamps the whole tree with traceID and deterministic
// per-span IDs derived from the tree's depth-first walk order. Safe to
// call once the tree's shape is final.
func (s *Span) AssignIDs(traceID string) *Span {
	i := 0
	s.Walk(func(_ int, sp *Span) {
		sp.TraceID = traceID
		sp.SpanID = spanIDFor(traceID, i)
		i++
	})
	return s
}

// Find returns the span in s's subtree with the given SpanID, or nil.
func (s *Span) Find(spanID string) *Span {
	var out *Span
	s.Walk(func(_ int, sp *Span) {
		if out == nil && sp.SpanID == spanID {
			out = sp
		}
	})
	return out
}

// SelfTime returns the span's duration not covered by its direct
// children (clamped at zero for overfull decompositions).
func (s *Span) SelfTime() time.Duration {
	self := s.Duration() - s.ChildrenTotal()
	if self < 0 {
		return 0
	}
	return self
}

// Walk visits the span and its subtree depth-first, parents before
// children, in recorded order.
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	var rec func(d int, sp *Span)
	rec = func(d int, sp *Span) {
		fn(d, sp)
		for _, c := range sp.Children {
			rec(d+1, c)
		}
	}
	rec(0, s)
}

// ChildrenTotal sums the direct children's durations — phase
// decompositions keep this equal to the parent's own duration.
func (s *Span) ChildrenTotal() time.Duration {
	var t time.Duration
	for _, c := range s.Children {
		t += c.Duration()
	}
	return t
}

// String renders the span tree, one line per phase.
func (s *Span) String() string {
	var b strings.Builder
	s.Walk(func(d int, sp *Span) {
		fmt.Fprintf(&b, "%s%-20s %12v +%v", strings.Repeat("  ", d), sp.Name, sp.Start, sp.Duration())
		if sp.Error != "" {
			fmt.Fprintf(&b, "  ERROR: %s", sp.Error)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// Tracer collects completed root spans into a bounded ring (oldest
// dropped first) and optionally streams each one as a JSONL record.
// It is safe for concurrent use, though the simulation itself records
// from a single goroutine at a time.
type Tracer struct {
	mu      sync.Mutex
	roots   []*Span // circular once len == max
	head    int     // index of the oldest retained root
	max     int
	seq     int64 // fallback trace-ID sequence for unstamped roots
	dropped int64
	stream  io.Writer
}

// DefaultTracerCapacity bounds a tracer built with capacity <= 0.
const DefaultTracerCapacity = 4096

// NewTracer keeps at most max root spans (<= 0 means
// DefaultTracerCapacity).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultTracerCapacity
	}
	return &Tracer{max: max}
}

// StreamTo additionally writes every recorded root span as one JSON
// line to w (nil detaches).
func (t *Tracer) StreamTo(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stream = w
}

// Record retains a completed root span.
func (t *Tracer) Record(root *Span) {
	if root == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if root.TraceID == "" {
		root.AssignIDs(TraceIDFor("tracer", strconv.FormatInt(t.seq, 10), root.Name))
	}
	t.seq++
	if len(t.roots) < t.max {
		t.roots = append(t.roots, root)
	} else {
		t.roots[t.head] = root
		t.head = (t.head + 1) % t.max
		t.dropped++
	}
	if t.stream != nil {
		enc := json.NewEncoder(t.stream)
		enc.Encode(spanToJSON(root)) //nolint:errcheck // best-effort stream
	}
}

// Spans returns the retained root spans, oldest first.
func (t *Tracer) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.roots))
	out = append(out, t.roots[t.head:]...)
	out = append(out, t.roots[:t.head]...)
	return out
}

// Last returns the most recent n root spans, oldest first (n <= 0 or
// n > retained means all).
func (t *Tracer) Last(n int) []*Span {
	all := t.Spans()
	if n <= 0 || n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// Find returns the retained root span with the given TraceID, or nil.
func (t *Tracer) Find(traceID string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.roots {
		if r.TraceID == traceID {
			return r
		}
	}
	return nil
}

// Len returns how many root spans are retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.roots)
}

// Dropped returns how many root spans aged out of the ring.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// spanJSON is the serialized span shape shared by the JSONL stream and
// WriteJSONL. Map attrs serialize with sorted keys, keeping output
// deterministic.
type spanJSON struct {
	Name     string            `json:"name"`
	TraceID  string            `json:"trace_id,omitempty"`
	SpanID   string            `json:"span_id,omitempty"`
	StartUs  float64           `json:"start_us"`
	DurUs    float64           `json:"dur_us"`
	Links    []Link            `json:"links,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Error    string            `json:"error,omitempty"`
	Children []spanJSON        `json:"children,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func spanToJSON(s *Span) spanJSON {
	out := spanJSON{
		Name:    s.Name,
		TraceID: s.TraceID,
		SpanID:  s.SpanID,
		StartUs: micros(s.Start),
		DurUs:   micros(s.Duration()),
		Links:   s.Links,
		Attrs:   s.Attrs,
		Error:   s.Error,
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, spanToJSON(c))
	}
	return out
}

// WriteJSONL writes one JSON line per root span.
func WriteJSONL(w io.Writer, roots []*Span) error {
	enc := json.NewEncoder(w)
	for _, r := range roots {
		if err := enc.Encode(spanToJSON(r)); err != nil {
			return fmt.Errorf("obs: write jsonl: %w", err)
		}
	}
	return nil
}
