package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Registry is a pull-based metrics registry: components register
// counters, gauges, and histograms once, and every export gathers the
// current values. Values come from closures (or live sim.Histogram
// references), so instrumented code keeps using the repo's existing
// sim.Counter / sim.Histogram types unchanged.
type Registry struct {
	families map[string]*family
}

type familyKind string

const (
	kindCounter familyKind = "counter"
	kindGauge   familyKind = "gauge"
	kindSummary familyKind = "summary"
)

type family struct {
	name   string
	help   string
	kind   familyKind
	series []series
	// gathers, for dynamic summary families, yield label→histogram pairs
	// at export time (per-function histograms appear as they are
	// created). Several sources may feed one family — e.g. one gather per
	// node in a fleet registry.
	gathers []func() []LabeledHistogram
	// gatherVals is the counter/gauge analogue of gathers: label→value
	// pairs whose label sets are only known at export time.
	gatherVals []func() []LabeledValue
}

type series struct {
	labels map[string]string
	value  func() float64
	hist   *sim.Histogram
	ex     *ExemplarReservoir
}

// LabeledHistogram pairs a label set with a live histogram, for
// dynamic families whose series appear during the run. Exemplars, when
// non-nil, adds OpenMetrics bucket lines with `# {trace_id=...}`
// exemplar annotations to the exported summary.
type LabeledHistogram struct {
	Labels    map[string]string
	Hist      *sim.Histogram
	Exemplars *ExemplarReservoir
}

// LabeledValue pairs a label set with an instantaneous value, for
// dynamic counter/gauge families whose series appear during the run
// (per-function SLO series, per-node aggregates).
type LabeledValue struct {
	Labels map[string]string
	Value  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

func (r *Registry) familyFor(name, help string, kind familyKind) *family {
	checkName(name)
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// CounterFunc registers a monotonically-increasing value read at export
// time. Registering the same name again with different labels adds a
// series to the family.
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() int64) {
	f := r.familyFor(name, help, kindCounter)
	f.series = append(f.series, series{labels: labels, value: func() float64 { return float64(fn()) }})
}

// GaugeFunc registers an instantaneous value read at export time.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	f := r.familyFor(name, help, kindGauge)
	f.series = append(f.series, series{labels: labels, value: fn})
}

// Histogram registers a live histogram, exported as a Prometheus
// summary (quantiles + _sum + _count).
func (r *Registry) Histogram(name, help string, labels map[string]string, h *sim.Histogram) {
	f := r.familyFor(name, help, kindSummary)
	f.series = append(f.series, series{labels: labels, hist: h})
}

// HistogramFunc registers a dynamic summary family whose series are
// gathered at export time — per-function histograms that only exist
// once the function has been invoked. Calling it again for the same
// name adds another source to the family (one per node in a fleet).
func (r *Registry) HistogramFunc(name, help string, gather func() []LabeledHistogram) {
	f := r.familyFor(name, help, kindSummary)
	f.gathers = append(f.gathers, gather)
}

// CounterSetFunc registers a dynamic counter family whose series (label
// sets and values) are gathered at export time.
func (r *Registry) CounterSetFunc(name, help string, gather func() []LabeledValue) {
	f := r.familyFor(name, help, kindCounter)
	f.gatherVals = append(f.gatherVals, gather)
}

// GaugeSetFunc registers a dynamic gauge family whose series (label
// sets and values) are gathered at export time.
func (r *Registry) GaugeSetFunc(name, help string, gather func() []LabeledValue) {
	f := r.familyFor(name, help, kindGauge)
	f.gatherVals = append(f.gatherVals, gather)
}

// summaryQuantiles are the quantiles exported for every histogram.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels returns `{k="v",...}` with sorted keys ("" when empty).
// extra, if non-empty, is appended verbatim as the last pair. Values
// are escaped exactly once (escapeLabel); %q would re-escape the
// backslashes escapeLabel just inserted.
func renderLabels(labels map[string]string, extra string) string {
	var pairs []string
	for k, v := range labels {
		checkName(k)
		pairs = append(pairs, k+`="`+escapeLabel(v)+`"`)
	}
	sort.Strings(pairs)
	if extra != "" {
		pairs = append(pairs, extra)
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// allSeries materialises the family's static and gathered series.
func (f *family) allSeries() []series {
	ss := append([]series(nil), f.series...)
	for _, g := range f.gathers {
		for _, lh := range g() {
			ss = append(ss, series{labels: lh.Labels, hist: lh.Hist, ex: lh.Exemplars})
		}
	}
	for _, g := range f.gatherVals {
		for _, lv := range g() {
			v := lv.Value
			ss = append(ss, series{labels: lv.Labels, value: func() float64 { return v }})
		}
	}
	return ss
}

// Sample is one gathered series value: counters and gauges directly,
// summaries as their _count and _sum. It is what the flight recorder
// snapshots every sampling tick.
type Sample struct {
	Name    string
	Labels  map[string]string
	Key     string // Name plus rendered sorted labels; unique per series
	Value   float64
	Counter bool // monotone — a rate-of-change is meaningful
}

// Gather reads every series in the registry, sorted by Key so repeated
// gathers of the same simulation state are identical.
func (r *Registry) Gather() []Sample {
	var out []Sample
	for _, f := range r.families {
		for _, s := range f.allSeries() {
			base := renderLabels(s.labels, "")
			switch f.kind {
			case kindCounter, kindGauge:
				out = append(out, Sample{
					Name:    f.name,
					Labels:  s.labels,
					Key:     f.name + base,
					Value:   s.value(),
					Counter: f.kind == kindCounter,
				})
			case kindSummary:
				out = append(out,
					Sample{
						Name:    f.name + "_count",
						Labels:  s.labels,
						Key:     f.name + "_count" + base,
						Value:   float64(s.hist.N()),
						Counter: true,
					},
					Sample{
						Name:    f.name + "_sum",
						Labels:  s.labels,
						Key:     f.name + "_sum" + base,
						Value:   s.hist.Sum(),
						Counter: true,
					})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// WritePrometheus writes every registered family in Prometheus
// text-format (version 0.0.4). Families and series are sorted, so the
// output for a fixed simulation state is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		ss := f.allSeries()
		type rendered struct {
			key   string
			lines []string
		}
		rows := make([]rendered, 0, len(ss))
		for _, s := range ss {
			base := renderLabels(s.labels, "")
			var lines []string
			switch f.kind {
			case kindCounter, kindGauge:
				lines = append(lines, fmt.Sprintf("%s%s %s", f.name, base, formatValue(s.value())))
			case kindSummary:
				for _, q := range summaryQuantiles {
					ql := renderLabels(s.labels, `quantile="`+formatValue(q)+`"`)
					lines = append(lines, fmt.Sprintf("%s%s %s", f.name, ql, formatValue(s.hist.Percentile(q*100))))
				}
				lines = append(lines,
					fmt.Sprintf("%s_sum%s %s", f.name, base, formatValue(s.hist.Sum())),
					fmt.Sprintf("%s_count%s %s", f.name, base, strconv.Itoa(s.hist.N())))
				if s.ex != nil {
					var cum int64
					for _, b := range s.ex.Snapshot() {
						cum += b.Count
						bl := renderLabels(s.labels, `le="`+FormatLe(b.UpperBound)+`"`)
						line := fmt.Sprintf("%s_bucket%s %d", f.name, bl, cum)
						if e, ok := b.Pick(); ok {
							line += ` # {trace_id="` + escapeLabel(e.TraceID) + `"} ` + formatValue(e.Value)
						}
						lines = append(lines, line)
					}
				}
			}
			rows = append(rows, rendered{key: base, lines: lines})
		}
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, row := range rows {
			for _, line := range row.lines {
				if _, err := io.WriteString(w, line+"\n"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
