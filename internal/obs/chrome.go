package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one Chrome trace-event ("ph":"X" complete events),
// loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes root spans as a Chrome trace-event JSON
// document. Each root span gets its own track (tid), so concurrent
// invocations render as parallel lanes; child phases nest below their
// parents by time range. Every event's args carry the span's trace_id
// and span_id so a lane in the viewer can be matched to /analyze
// output and exported exemplars. Output is deterministic for a fixed
// span list.
func WriteChromeTrace(w io.Writer, roots []*Span) error {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, root := range roots {
		tid := i + 1
		root.Walk(func(_ int, sp *Span) {
			args := make(map[string]string, len(sp.Attrs)+3)
			for k, v := range sp.Attrs {
				args[k] = v
			}
			if sp.TraceID != "" {
				args["trace_id"] = sp.TraceID
			}
			if sp.SpanID != "" {
				args["span_id"] = sp.SpanID
			}
			if sp.Error != "" {
				args["error"] = sp.Error
			}
			if len(args) == 0 {
				args = nil
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   micros(sp.Start),
				Dur:  micros(sp.Duration()),
				Pid:  1,
				Tid:  tid,
				Args: args,
			})
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: write chrome trace: %w", err)
	}
	return nil
}

// SumDurations totals the durations of the named phase across all
// spans in the trees (trace-analysis helper: e.g. total "copy" time).
func SumDurations(roots []*Span, name string) time.Duration {
	var total time.Duration
	for _, r := range roots {
		r.Walk(func(_ int, sp *Span) {
			if sp.Name == name {
				total += sp.Duration()
			}
		})
	}
	return total
}
