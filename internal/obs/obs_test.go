package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func sampleTree() *Span {
	root := NewSpan("invoke/JS", ms(10), ms(110))
	root.SetAttr("function", "JS")
	sb := root.Child("sandbox", ms(10), ms(40))
	sb.Child("netns", ms(10), ms(25))
	sb.Child("rootfs", ms(25), ms(40))
	root.Child("restore", ms(40), ms(70))
	root.Child("exec", ms(70), ms(110))
	return root
}

func TestSpanInvariants(t *testing.T) {
	s := sampleTree()
	if got := s.Duration(); got != ms(100) {
		t.Fatalf("duration = %v, want 100ms", got)
	}
	if got := s.ChildrenTotal(); got != ms(100) {
		t.Fatalf("children total = %v, want 100ms", got)
	}
	var names []string
	s.Walk(func(depth int, sp *Span) { names = append(names, sp.Name) })
	want := []string{"invoke/JS", "sandbox", "netns", "rootfs", "restore", "exec"}
	if len(names) != len(want) {
		t.Fatalf("walk visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walk order %v, want %v", names, want)
		}
	}
}

func TestNewSpanPanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for end < start")
		}
	}()
	NewSpan("bad", ms(10), ms(5))
}

func TestTracerRingDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		s := NewSpan("root", ms(i), ms(i+1))
		s.SetAttr("i", string(rune('0'+i)))
		tr.Record(s)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Spans()
	for i, s := range spans {
		if want := ms(6 + i); s.Start != want {
			t.Fatalf("span %d starts at %v, want %v (oldest-first order broken)", i, s.Start, want)
		}
	}
	last := tr.Last(2)
	if len(last) != 2 || last[0].Start != ms(8) || last[1].Start != ms(9) {
		t.Fatalf("Last(2) = %v", last)
	}
	if got := tr.Last(0); len(got) != 4 {
		t.Fatalf("Last(0) returned %d spans, want all 4", len(got))
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if tr.max != DefaultTracerCapacity {
		t.Fatalf("max = %d, want %d", tr.max, DefaultTracerCapacity)
	}
}

func TestWriteJSONLDeterministicAndValid(t *testing.T) {
	build := func() []*Span { return []*Span{sampleTree(), sampleTree()} }
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSONL output differs across identical span trees")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
		if obj["name"] != "invoke/JS" {
			t.Fatalf("root name = %v", obj["name"])
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Span{sampleTree()}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6 (one per span)", len(doc.TraceEvents))
	}
	var rootDur, leafSum float64
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete (X)", e.Name, e.Ph)
		}
		switch e.Name {
		case "invoke/JS":
			rootDur = e.Dur
		case "sandbox", "restore", "exec":
			leafSum += e.Dur
		}
	}
	if rootDur != leafSum {
		t.Fatalf("root dur %v != top-level children sum %v", rootDur, leafSum)
	}
}

func TestSumDurations(t *testing.T) {
	roots := []*Span{sampleTree(), sampleTree()}
	if got := SumDurations(roots, "sandbox"); got != 2*ms(30) {
		t.Fatalf("SumDurations(sandbox) = %v, want 60ms", got)
	}
	if got := SumDurations(roots, "netns"); got != 2*ms(15) {
		t.Fatalf("SumDurations(netns) = %v, want 30ms", got)
	}
	if got := SumDurations(roots, "nope"); got != 0 {
		t.Fatalf("SumDurations(nope) = %v, want 0", got)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	var hits int64 = 42
	reg.CounterFunc("trenv_warm_hits_total", "Warm hits.", map[string]string{"node": "n0"},
		func() int64 { return hits })
	reg.GaugeFunc("trenv_node_mem_used_bytes", "Node memory.", nil,
		func() float64 { return 1.5e9 })
	h := &sim.Histogram{}
	for _, v := range []float64{1, 2, 3, 4} {
		h.Add(v)
	}
	reg.Histogram("trenv_e2e_latency_ms", "E2E latency.", map[string]string{"function": "JS"}, h)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP trenv_warm_hits_total Warm hits.\n# TYPE trenv_warm_hits_total counter\n",
		`trenv_warm_hits_total{node="n0"} 42` + "\n",
		"# TYPE trenv_node_mem_used_bytes gauge\n",
		"trenv_node_mem_used_bytes 1.5e+09\n",
		"# TYPE trenv_e2e_latency_ms summary\n",
		`trenv_e2e_latency_ms{function="JS",quantile="0.5"} 2.5` + "\n",
		`trenv_e2e_latency_ms_sum{function="JS"} 10` + "\n",
		`trenv_e2e_latency_ms_count{function="JS"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name.
	if strings.Index(out, "trenv_e2e_latency_ms") > strings.Index(out, "trenv_warm_hits_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestRegistryHistogramFuncGathersDynamicSeries(t *testing.T) {
	reg := NewRegistry()
	hists := map[string]*sim.Histogram{}
	reg.HistogramFunc("trenv_dyn_ms", "Dynamic.", func() []LabeledHistogram {
		var out []LabeledHistogram
		for _, fn := range []string{"b", "a"} {
			if h, ok := hists[fn]; ok {
				out = append(out, LabeledHistogram{Labels: map[string]string{"function": fn}, Hist: h})
			}
		}
		return out
	})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "trenv_dyn_ms{") != 0 {
		t.Fatalf("expected no series before histograms exist:\n%s", buf.String())
	}
	for _, fn := range []string{"a", "b"} {
		h := &sim.Histogram{}
		h.Add(7)
		hists[fn] = h
	}
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia := strings.Index(out, `trenv_dyn_ms{function="a"`)
	ib := strings.Index(out, `trenv_dyn_ms{function="b"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("dynamic series missing or unsorted (a=%d b=%d):\n%s", ia, ib, out)
	}
}

func TestRegistryDeterministicOutput(t *testing.T) {
	build := func() string {
		reg := NewRegistry()
		reg.CounterFunc("c_total", "c", map[string]string{"x": "1", "a": "2"}, func() int64 { return 3 })
		reg.GaugeFunc("g", "g", nil, func() float64 { return 9 })
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("registry output not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("m_total", "m", nil, func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for kind mismatch")
		}
	}()
	reg.GaugeFunc("m_total", "m", nil, func() float64 { return 0 })
}

func TestRegistryBadNamePanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid metric name")
		}
	}()
	reg.CounterFunc("bad name", "m", nil, func() int64 { return 0 })
}

func TestTracerStreamsJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(2)
	tr.StreamTo(&buf)
	tr.Record(sampleTree())
	tr.Record(sampleTree())
	tr.Record(sampleTree()) // drops one from the ring, still streams
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("streamed %d lines, want 3", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &obj); err != nil {
		t.Fatalf("invalid streamed JSON: %v", err)
	}
}
