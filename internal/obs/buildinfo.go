package obs

import (
	"runtime"
	"runtime/debug"
)

// Build identity: every binary exports who built it as an info-style
// gauge (constant 1, identity in the labels), the Prometheus idiom for
// joining version metadata onto any other series. The values are fixed
// per binary, so exporting them never perturbs deterministic output.

// Version returns the main module's version as recorded by the Go
// toolchain ("(devel)" for source builds, "unknown" when no build info
// is embedded, e.g. some test binaries).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok || bi.Main.Version == "" {
		return "unknown"
	}
	return bi.Main.Version
}

// RegisterBuildInfo registers the trenv_build_info gauge: constant 1
// with the Go runtime version and module version as labels, merged
// over the caller's base labels (node=... and friends).
func RegisterBuildInfo(reg *Registry, labels map[string]string) {
	info := mergeLabels(labels, map[string]string{
		"go_version": runtime.Version(),
		"version":    Version(),
	})
	reg.GaugeFunc("trenv_build_info",
		"Build identity (constant 1; go_version and module version in the labels).",
		info, func() float64 { return 1 })
}
