package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// This file turns recorded span trees into answers: which invocations
// were slowest, which phase chain made them slow (critical path), how
// each phase contributes to P50/P99/P999 per function, and how a tail
// invocation's tree differs from a median one. Everything sorts its
// inputs and derives from virtual time, so a fixed seed produces
// byte-identical reports.

// invokePrefix marks root spans that represent function invocations;
// other roots (evictions, pool fetches) are causal context, not
// invocations, and are excluded from latency analysis.
const invokePrefix = "invoke/"

// PathStep is one hop on a critical path.
type PathStep struct {
	Name    string  `json:"name"`
	SpanID  string  `json:"span_id,omitempty"`
	Node    string  `json:"node,omitempty"`
	StartUs float64 `json:"start_us"`
	DurUs   float64 `json:"dur_us"`
	SelfUs  float64 `json:"self_us"`
	// LinkedTrace, when set, names the remote trace this step hands off
	// to (a memory-pool fetch on another node).
	LinkedTrace string `json:"linked_trace,omitempty"`
}

// CriticalPath walks from root to a leaf, at every level descending
// into the child with the largest duration (ties: earliest start, then
// name). Each step records its self time — the share of the step not
// explained by its own children — so summing SelfUs over the path
// recovers the chain's direct contribution to end-to-end latency.
func CriticalPath(root *Span) []PathStep {
	var path []PathStep
	for sp := root; sp != nil; {
		step := PathStep{
			Name:    sp.Name,
			SpanID:  sp.SpanID,
			StartUs: micros(sp.Start),
			DurUs:   micros(sp.Duration()),
			SelfUs:  micros(sp.SelfTime()),
		}
		if sp.Attrs != nil {
			step.Node = sp.Attrs["node"]
		}
		for _, l := range sp.Links {
			if l.TraceID != "" && l.TraceID != sp.TraceID {
				step.LinkedTrace = l.TraceID
				break
			}
		}
		path = append(path, step)
		var next *Span
		for _, c := range sp.Children {
			if next == nil ||
				c.Duration() > next.Duration() ||
				(c.Duration() == next.Duration() && (c.Start < next.Start ||
					(c.Start == next.Start && c.Name < next.Name))) {
				next = c
			}
		}
		sp = next
	}
	return path
}

// SlowInvocation is one entry in the top-k slowest table.
type SlowInvocation struct {
	TraceID      string     `json:"trace_id"`
	Function     string     `json:"function,omitempty"`
	Node         string     `json:"node,omitempty"`
	DurUs        float64    `json:"dur_us"`
	Error        string     `json:"error,omitempty"`
	CriticalPath []PathStep `json:"critical_path"`
}

// PhaseQuantiles is one phase's latency contribution across a
// function's invocations (invocations without the phase count as 0).
type PhaseQuantiles struct {
	Phase  string  `json:"phase"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// PhaseAttribution is a function's per-phase latency breakdown.
type PhaseAttribution struct {
	Function    string           `json:"function"`
	Invocations int              `json:"invocations"`
	Phases      []PhaseQuantiles `json:"phases"`
}

// PhaseRatio compares one phase between a tail and a median invocation.
type PhaseRatio struct {
	Phase    string  `json:"phase"`
	TailUs   float64 `json:"tail_us"`
	MedianUs float64 `json:"median_us"`
	// Ratio is tail/median (0 when the median spent nothing there — the
	// phase is pure tail behaviour).
	Ratio float64 `json:"ratio"`
}

// TailDiff explains where a function's P99 invocation spent its time
// relative to a median one.
type TailDiff struct {
	Function      string       `json:"function"`
	TailTraceID   string       `json:"tail_trace_id"`
	MedianTraceID string       `json:"median_trace_id"`
	TailDurUs     float64      `json:"tail_dur_us"`
	MedianDurUs   float64      `json:"median_dur_us"`
	Phases        []PhaseRatio `json:"phases"`
}

// ExemplarLink resolves one exported exemplar back to its trace.
type ExemplarLink struct {
	Series  string  `json:"series"`
	Le      string  `json:"le"`
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// Report is the full analysis of a set of recorded root spans.
type Report struct {
	Invocations int                `json:"invocations"`
	Errors      int                `json:"errors"`
	Slowest     []SlowInvocation   `json:"slowest"`
	Attribution []PhaseAttribution `json:"attribution"`
	TailDiffs   []TailDiff         `json:"tail_diffs"`
	Exemplars   []ExemplarLink     `json:"exemplars,omitempty"`
}

// phaseSelfTimes sums self time per span name over root's tree.
func phaseSelfTimes(root *Span) map[string]time.Duration {
	out := make(map[string]time.Duration)
	root.Walk(func(_ int, sp *Span) {
		if self := sp.SelfTime(); self > 0 {
			out[sp.Name] += self
		}
	})
	return out
}

// functionOf reads the invocation's function attr ("" if unset).
func functionOf(sp *Span) string {
	if sp.Attrs != nil {
		return sp.Attrs["function"]
	}
	return ""
}

// invocationRoots filters to invocation roots, preserving order.
func invocationRoots(roots []*Span) []*Span {
	var out []*Span
	for _, r := range roots {
		if strings.HasPrefix(r.Name, invokePrefix) {
			out = append(out, r)
		}
	}
	return out
}

// pickAtOrAbove returns the invocation with the smallest duration >= q
// (ties: lowest TraceID), or nil when invs is empty.
func pickAtOrAbove(invs []*Span, q time.Duration) *Span {
	var best *Span
	for _, sp := range invs {
		if sp.Duration() < q {
			continue
		}
		if best == nil || sp.Duration() < best.Duration() ||
			(sp.Duration() == best.Duration() && sp.TraceID < best.TraceID) {
			best = sp
		}
	}
	return best
}

// Analyze builds a Report over the recorded roots: non-invocation
// roots are skipped, the topK slowest invocations get critical paths,
// and every function gets a per-phase P50/P99/P999 attribution table
// plus a tail-vs-median diff. Exemplars are left empty for the caller
// to fill from its metrics layer.
func Analyze(roots []*Span, topK int) *Report {
	if topK <= 0 {
		topK = 10
	}
	invs := invocationRoots(roots)
	rep := &Report{Invocations: len(invs)}

	// Top-k slowest (duration desc, ties by TraceID for stable bytes).
	sorted := append([]*Span(nil), invs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Duration() != sorted[j].Duration() {
			return sorted[i].Duration() > sorted[j].Duration()
		}
		return sorted[i].TraceID < sorted[j].TraceID
	})
	for _, sp := range sorted {
		if sp.Error != "" {
			rep.Errors++
		}
	}
	for i := 0; i < len(sorted) && i < topK; i++ {
		sp := sorted[i]
		rep.Slowest = append(rep.Slowest, SlowInvocation{
			TraceID:      sp.TraceID,
			Function:     functionOf(sp),
			Node:         spNode(sp),
			DurUs:        micros(sp.Duration()),
			Error:        sp.Error,
			CriticalPath: CriticalPath(sp),
		})
	}

	// Per-function phase attribution.
	byFn := make(map[string][]*Span)
	for _, sp := range invs {
		byFn[functionOf(sp)] = append(byFn[functionOf(sp)], sp)
	}
	fns := make([]string, 0, len(byFn))
	for fn := range byFn {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		group := byFn[fn]
		// Gather per-invocation phase self times and the phase universe.
		perInv := make([]map[string]time.Duration, len(group))
		phaseSet := make(map[string]bool)
		for i, sp := range group {
			perInv[i] = phaseSelfTimes(sp)
			for p := range perInv[i] {
				phaseSet[p] = true
			}
		}
		phases := make([]string, 0, len(phaseSet))
		for p := range phaseSet {
			phases = append(phases, p)
		}
		sort.Strings(phases)
		attr := PhaseAttribution{Function: fn, Invocations: len(group)}
		for _, p := range phases {
			var h sim.Histogram
			for i := range group {
				h.Add(micros(perInv[i][p])) // missing phase observes 0
			}
			attr.Phases = append(attr.Phases, PhaseQuantiles{
				Phase:  p,
				P50Us:  h.Percentile(50),
				P99Us:  h.Percentile(99),
				P999Us: h.Percentile(99.9),
				MaxUs:  h.Max(),
			})
		}
		rep.Attribution = append(rep.Attribution, attr)

		// Tail-vs-median diff.
		var durs sim.Histogram
		for _, sp := range group {
			durs.AddDuration(sp.Duration())
		}
		tail := pickAtOrAbove(group, time.Duration(durs.Percentile(99)*float64(time.Millisecond)))
		median := pickAtOrAbove(group, time.Duration(durs.Percentile(50)*float64(time.Millisecond)))
		if tail == nil || median == nil {
			continue
		}
		diff := TailDiff{
			Function:      fn,
			TailTraceID:   tail.TraceID,
			MedianTraceID: median.TraceID,
			TailDurUs:     micros(tail.Duration()),
			MedianDurUs:   micros(median.Duration()),
		}
		tp, mp := phaseSelfTimes(tail), phaseSelfTimes(median)
		for _, p := range phases {
			t, m := micros(tp[p]), micros(mp[p])
			if t == 0 && m == 0 {
				continue
			}
			r := PhaseRatio{Phase: p, TailUs: t, MedianUs: m}
			if m > 0 {
				r.Ratio = t / m
			}
			diff.Phases = append(diff.Phases, r)
		}
		rep.TailDiffs = append(rep.TailDiffs, diff)
	}
	return rep
}

func spNode(sp *Span) string {
	if sp.Attrs != nil {
		return sp.Attrs["node"]
	}
	return ""
}

// foldFrame sanitises a span name for the folded-stack format, where
// ';' separates frames and ' ' separates the stack from its count.
func foldFrame(name string) string {
	name = strings.ReplaceAll(name, ";", ":")
	name = strings.ReplaceAll(name, " ", "_")
	return strings.ReplaceAll(name, "\n", "_")
}

// WriteFolded writes the roots as folded stacks — one
// `frame;frame;frame count` line per distinct call path, count being
// the path's total self time in integer microseconds — compatible with
// flamegraph.pl and speedscope. Lines are sorted, zero-self paths are
// dropped, and same-seed runs produce byte-identical output.
func WriteFolded(w io.Writer, roots []*Span) error {
	stacks := make(map[string]int64)
	for _, root := range roots {
		var frames []string
		var rec func(sp *Span)
		rec = func(sp *Span) {
			frames = append(frames, foldFrame(sp.Name))
			if self := sp.SelfTime(); self > 0 {
				stacks[strings.Join(frames, ";")] += self.Microseconds()
			}
			for _, c := range sp.Children {
				rec(c)
			}
			frames = frames[:len(frames)-1]
		}
		rec(root)
	}
	keys := make([]string, 0, len(stacks))
	for k := range stacks {
		if stacks[k] > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, stacks[k]); err != nil {
			return fmt.Errorf("obs: write folded: %w", err)
		}
	}
	return nil
}
