package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// invTree builds a deterministic invocation-shaped tree:
//
//	invoke/fn [0,100ms]
//	  queue   [0,10ms]
//	  startup [10,30ms]  -> attach [10,15ms], copy [15,30ms]
//	  exec    [30,100ms] -> remote-fetch [30,70ms]
func invTree(fn, traceID string) *Span {
	root := NewSpan("invoke/"+fn, 0, ms(100))
	root.SetAttr("function", fn).SetAttr("node", "n0")
	root.Child("queue", 0, ms(10))
	st := root.Child("startup", ms(10), ms(30))
	st.Child("attach", ms(10), ms(15))
	st.Child("copy", ms(15), ms(30))
	ex := root.Child("exec", ms(30), ms(100))
	ex.Child("remote-fetch", ms(30), ms(70)).AddLink(Link{TraceID: "feedcafe00000000", Type: "remote-fetch"})
	root.AssignIDs(traceID)
	return root
}

func TestCriticalPathDescendsByLargestChild(t *testing.T) {
	root := invTree("JS", "aaaa000000000000")
	path := CriticalPath(root)
	var names []string
	for _, s := range path {
		names = append(names, s.Name)
	}
	if got, want := strings.Join(names, ">"), "invoke/JS>exec>remote-fetch"; got != want {
		t.Fatalf("critical path = %s, want %s", got, want)
	}
	// exec's self time excludes the 40ms fetch; the fetch is all self.
	if path[1].SelfUs != 30000 || path[2].SelfUs != 40000 {
		t.Fatalf("self times = %v / %v, want 30000 / 40000", path[1].SelfUs, path[2].SelfUs)
	}
	if path[2].LinkedTrace != "feedcafe00000000" {
		t.Fatalf("fetch step linked trace = %q", path[2].LinkedTrace)
	}
	if path[0].Node != "n0" {
		t.Fatalf("root step node = %q", path[0].Node)
	}
	for _, s := range path {
		if s.SpanID == "" {
			t.Fatalf("step %s has no span id", s.Name)
		}
	}
}

func TestCriticalPathTieBreaksByStartThenName(t *testing.T) {
	root := NewSpan("invoke/T", 0, ms(30))
	// Equal durations: the earlier child wins; among same-start children
	// the lexicographically smaller name wins.
	root.Child("late", ms(10), ms(20))
	root.Child("early-b", 0, ms(10))
	root.Child("early-a", 0, ms(10))
	path := CriticalPath(root)
	if len(path) != 2 || path[1].Name != "early-a" {
		t.Fatalf("tie-break picked %+v, want early-a", path[1:])
	}
}

func TestWalkAndChildrenTotalWithOverlappingOutOfOrderChildren(t *testing.T) {
	// Children recorded out of chronological order, overlapping each
	// other, and together exceeding the parent: Walk preserves recorded
	// order, ChildrenTotal just sums, SelfTime clamps at zero.
	root := NewSpan("invoke/O", 0, ms(50))
	root.Child("b", ms(20), ms(50))
	root.Child("a", 0, ms(30))
	overfull := root.Child("c", ms(10), ms(40))
	overfull.Child("c1", ms(10), ms(40))
	overfull.Child("c2", ms(10), ms(40))

	var walked []string
	var depths []int
	root.Walk(func(d int, sp *Span) {
		walked = append(walked, sp.Name)
		depths = append(depths, d)
	})
	if got, want := strings.Join(walked, ","), "invoke/O,b,a,c,c1,c2"; got != want {
		t.Fatalf("walk order = %s, want %s", got, want)
	}
	wantDepths := []int{0, 1, 1, 1, 2, 2}
	for i := range depths {
		if depths[i] != wantDepths[i] {
			t.Fatalf("depths = %v, want %v", depths, wantDepths)
		}
	}
	if got, want := root.ChildrenTotal(), ms(90); got != want {
		t.Fatalf("children total = %v, want %v", got, want)
	}
	// 50ms parent minus 90ms of (overlapping) children clamps to 0.
	if got := root.SelfTime(); got != 0 {
		t.Fatalf("overfull self time = %v, want 0", got)
	}
	// The overfull child: 30ms duration, 60ms of children.
	if got := overfull.SelfTime(); got != 0 {
		t.Fatalf("nested overfull self time = %v, want 0", got)
	}
}

func TestAnalyzeReportShapeAndDeterminism(t *testing.T) {
	build := func() []*Span {
		roots := []*Span{
			invTree("JS", "aaaa000000000000"),
			invTree("PR", "bbbb000000000000"),
			NewSpan("pool-fetch/rdma", 0, ms(40)), // causal context, not an invocation
		}
		// A second, slower JS invocation: the tail of its group.
		slow := NewSpan("invoke/JS", ms(200), ms(500))
		slow.SetAttr("function", "JS").SetAttr("node", "n1")
		slow.Child("queue", ms(200), ms(210))
		slow.Child("exec", ms(210), ms(500))
		slow.AssignIDs("cccc000000000000")
		// A failed invocation counts toward Errors.
		bad := NewSpan("invoke/JS", ms(600), ms(601))
		bad.SetAttr("function", "JS")
		bad.Error = "no capacity"
		bad.AssignIDs("dddd000000000000")
		return append(roots, slow, bad)
	}

	rep := Analyze(build(), 2)
	if rep.Invocations != 4 || rep.Errors != 1 {
		t.Fatalf("invocations=%d errors=%d, want 4/1", rep.Invocations, rep.Errors)
	}
	if len(rep.Slowest) != 2 {
		t.Fatalf("slowest has %d entries, want topK=2", len(rep.Slowest))
	}
	if rep.Slowest[0].TraceID != "cccc000000000000" || rep.Slowest[0].DurUs != 300000 {
		t.Fatalf("slowest[0] = %+v", rep.Slowest[0])
	}
	var fns []string
	for _, a := range rep.Attribution {
		fns = append(fns, a.Function)
	}
	if got, want := strings.Join(fns, ","), "JS,PR"; got != want {
		t.Fatalf("attribution functions = %s, want %s", got, want)
	}
	js := rep.Attribution[0]
	if js.Invocations != 3 {
		t.Fatalf("JS invocations = %d, want 3", js.Invocations)
	}
	// The JS tail is the slow run; the diff must show exec dominating.
	if len(rep.TailDiffs) != 2 || rep.TailDiffs[0].TailTraceID != "cccc000000000000" {
		t.Fatalf("tail diffs = %+v", rep.TailDiffs)
	}
	sawExec := false
	for _, pr := range rep.TailDiffs[0].Phases {
		if pr.Phase == "exec" {
			sawExec = true
			if pr.TailUs <= pr.MedianUs || pr.Ratio <= 1 {
				t.Fatalf("exec tail ratio = %+v, want tail > median", pr)
			}
		}
	}
	if !sawExec {
		t.Fatal("tail diff lacks the exec phase")
	}

	// Byte-identical JSON across identical builds.
	enc := func(r *Report) []byte {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(enc(rep), enc(Analyze(build(), 2))) {
		t.Fatal("analyze reports differ across identical inputs")
	}
}

func TestWriteFoldedStacksSortedAndSanitized(t *testing.T) {
	root := NewSpan("invoke/my fn;v2", 0, ms(30))
	root.Child("phase one", 0, ms(10))
	var buf bytes.Buffer
	if err := WriteFolded(&buf, []*Span{root}); err != nil {
		t.Fatal(err)
	}
	want := "invoke/my_fn:v2 20000\ninvoke/my_fn:v2;phase_one 10000\n"
	if buf.String() != want {
		t.Fatalf("folded output:\n%q\nwant:\n%q", buf.String(), want)
	}

	var again bytes.Buffer
	if err := WriteFolded(&again, []*Span{root}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("folded output differs across identical inputs")
	}
}

func TestExemplarReservoirDeterministicAndBounded(t *testing.T) {
	fill := func(seed string) *ExemplarReservoir {
		r := NewExemplarReservoir([]float64{10, 100}, 2, seed)
		// A deterministic value stream spread over all three buckets.
		v := 1.0
		for i := 0; i < 200; i++ {
			r.Observe(v, "t"+strings.Repeat("0", i%3))
			v = v*1.07 + 1
			if v > 500 {
				v = 1
			}
		}
		return r
	}
	a, b := fill("s").Snapshot(), fill("s").Snapshot()
	if len(a) != 3 {
		t.Fatalf("got %d buckets, want 3 (2 bounds + +Inf)", len(a))
	}
	var total int64
	for i := range a {
		if a[i].Count != b[i].Count || len(a[i].Exemplars) != len(b[i].Exemplars) {
			t.Fatalf("bucket %d differs across same-seed fills: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Exemplars {
			if a[i].Exemplars[j] != b[i].Exemplars[j] {
				t.Fatalf("bucket %d exemplar %d differs: %+v vs %+v", i, j, a[i].Exemplars[j], b[i].Exemplars[j])
			}
		}
		if len(a[i].Exemplars) > 2 {
			t.Fatalf("bucket %d holds %d exemplars, cap 2", i, len(a[i].Exemplars))
		}
		total += a[i].Count
		// Every retained exemplar's value must fall inside its bucket.
		lo := -1.0
		if i > 0 {
			lo = a[i-1].UpperBound
		}
		for _, e := range a[i].Exemplars {
			if e.Value <= lo || e.Value > a[i].UpperBound {
				t.Fatalf("bucket %d (le=%v) retains out-of-range value %v", i, a[i].UpperBound, e.Value)
			}
		}
	}
	if total != 200 {
		t.Fatalf("bucket counts sum to %d, want 200", total)
	}

	// A different seed picks different survivors for a busy bucket.
	c := fill("other").Snapshot()
	same := true
	for i := range a {
		for j := range a[i].Exemplars {
			if j < len(c[i].Exemplars) && a[i].Exemplars[j] != c[i].Exemplars[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("distinct seeds retained identical reservoirs (sampler not seeded?)")
	}
}

func TestPrometheusEscapesHostileLabelsAndExemplars(t *testing.T) {
	reg := NewRegistry()
	var c int64 = 7
	hostile := "a\"b\\c\nd"
	reg.CounterFunc("trenv_test_total", "hostile labels", map[string]string{"path": hostile}, func() int64 { return c })

	var h sim.Histogram
	h.Add(3)
	ex := NewExemplarReservoir([]float64{10}, 1, "t")
	ex.Observe(3, hostile)
	reg.HistogramFunc("trenv_test_ms", "hostile exemplar", func() []LabeledHistogram {
		return []LabeledHistogram{{Labels: map[string]string{"fn": hostile}, Hist: &h, Exemplars: ex}}
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	const wantLabel = `path="a\"b\\c\nd"`
	if !strings.Contains(out, "trenv_test_total{"+wantLabel+"} 7") {
		t.Fatalf("hostile counter label not escaped once:\n%s", out)
	}
	if !strings.Contains(out, `trenv_test_ms_bucket{fn="a\"b\\c\nd",le="10"} 1 # {trace_id="a\"b\\c\nd"} 3`) {
		t.Fatalf("hostile exemplar line not escaped:\n%s", out)
	}
	// No raw newline may survive inside any line's label section.
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, `a"b`) || strings.HasPrefix(ln, "d\"") {
			t.Fatalf("unescaped hostile fragment in line %q", ln)
		}
	}
}

func TestAssignIDsAndFindAreDeterministic(t *testing.T) {
	a, b := invTree("JS", TraceIDFor("n0", "JS", "0")), invTree("JS", TraceIDFor("n0", "JS", "0"))
	var ids []string
	a.Walk(func(_ int, sp *Span) { ids = append(ids, sp.SpanID) })
	i := 0
	b.Walk(func(_ int, sp *Span) {
		if sp.SpanID != ids[i] {
			t.Fatalf("span %s id %q != %q across identical builds", sp.Name, sp.SpanID, ids[i])
		}
		i++
	})
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate span id %q in one tree", id)
		}
		seen[id] = true
	}
	// Find resolves a mid-tree span by its id.
	target := a.Children[2].Children[0] // exec > remote-fetch
	if got := a.Find(target.SpanID); got != target {
		t.Fatalf("Find(%q) = %v, want the remote-fetch span", target.SpanID, got)
	}
	if a.Find("nope") != nil {
		t.Fatal("Find of unknown id returned a span")
	}
}

func TestTracerAssignsFallbackIDsAndFinds(t *testing.T) {
	tr := NewTracer(8)
	s1 := NewSpan("expire/JS", 0, ms(1))
	s2 := NewSpan("expire/JS", ms(1), ms(2))
	tr.Record(s1)
	tr.Record(s2)
	if s1.TraceID == "" || s2.TraceID == "" || s1.TraceID == s2.TraceID {
		t.Fatalf("fallback trace ids = %q / %q, want distinct non-empty", s1.TraceID, s2.TraceID)
	}
	if got := tr.Find(s2.TraceID); got != s2 {
		t.Fatalf("Find(%q) = %v, want the second span", s2.TraceID, got)
	}
	// Pre-stamped roots keep their ids.
	s3 := NewSpan("invoke/JS", ms(2), ms(3)).AssignIDs("eeee000000000000")
	tr.Record(s3)
	if s3.TraceID != "eeee000000000000" {
		t.Fatalf("record overwrote a stamped trace id: %q", s3.TraceID)
	}
}

func TestChromeTraceEventsCarryTraceAndSpanIDs(t *testing.T) {
	root := invTree("JS", "aaaa000000000000")
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Span{root}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Args["trace_id"] != "aaaa000000000000" {
			t.Fatalf("event %s trace_id = %q", e.Name, e.Args["trace_id"])
		}
		id := e.Args["span_id"]
		if id == "" || seen[id] {
			t.Fatalf("event %s span_id = %q (empty or duplicate)", e.Name, id)
		}
		seen[id] = true
	}
}
