package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestGatherSortedAndTyped(t *testing.T) {
	reg := NewRegistry()
	var n int64
	reg.CounterFunc("zz_total", "z", nil, func() int64 { return n })
	reg.GaugeFunc("aa_gauge", "a", map[string]string{"node": "n0"}, func() float64 { return 7 })
	h := &sim.Histogram{}
	h.Add(3)
	h.Add(5)
	reg.Histogram("mm_lat", "m", nil, h)
	n = 42

	samples := reg.Gather()
	var keys []string
	byKey := map[string]Sample{}
	for _, s := range samples {
		keys = append(keys, s.Key)
		byKey[s.Key] = s
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("gather not sorted: %q >= %q", keys[i-1], keys[i])
		}
	}
	if s := byKey["zz_total"]; !s.Counter || s.Value != 42 {
		t.Fatalf("counter sample = %+v", s)
	}
	if s := byKey[`aa_gauge{node="n0"}`]; s.Counter || s.Value != 7 {
		t.Fatalf("gauge sample = %+v", s)
	}
	if s := byKey["mm_lat_count"]; !s.Counter || s.Value != 2 {
		t.Fatalf("summary count sample = %+v", s)
	}
	if s := byKey["mm_lat_sum"]; s.Value != 8 {
		t.Fatalf("summary sum sample = %+v", s)
	}
}

func TestRegistryDynamicValueSets(t *testing.T) {
	reg := NewRegistry()
	vals := []LabeledValue{}
	reg.CounterSetFunc("dyn_total", "d", func() []LabeledValue { return vals })
	if got := len(reg.Gather()); got != 0 {
		t.Fatalf("empty set gathered %d samples", got)
	}
	vals = append(vals, LabeledValue{Labels: map[string]string{"fn": "JS"}, Value: 3})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `dyn_total{fn="JS"} 3`; !strings.Contains(buf.String(), want) {
		t.Fatalf("prometheus output missing %q:\n%s", want, buf.String())
	}
}

func TestRecorderRatesAndRing(t *testing.T) {
	reg := NewRegistry()
	var c int64
	var g float64
	reg.CounterFunc("c_total", "c", nil, func() int64 { return c })
	reg.GaugeFunc("g", "g", nil, func() float64 { return g })

	rec := NewRecorder(reg, 3)
	step := 100 * time.Millisecond
	for i := 0; i < 5; i++ {
		c += 10 // +10 per 100ms = 100/s
		g = float64(i)
		rec.Sample(time.Duration(i+1) * step)
	}
	ct := rec.Lookup("c_total", nil)
	if ct == nil || ct.Len() != 3 || ct.Dropped() != 2 {
		t.Fatalf("counter series = %+v", ct)
	}
	pts := ct.Points()
	if pts[0].T != 3*step || pts[2].T != 5*step {
		t.Fatalf("ring retained wrong window: %+v", pts)
	}
	for _, p := range pts {
		if p.Rate != 100 {
			t.Fatalf("counter rate = %v, want 100/s (point %+v)", p.Rate, p)
		}
	}
	gt := rec.Lookup("g", nil)
	if got := gt.Last(); got.Value != 4 || got.Rate != 0 {
		t.Fatalf("gauge last = %+v, want value 4 rate 0", got)
	}

	// Re-sampling the same instant must not duplicate points.
	rec.Sample(5 * step)
	if ct.Len() != 3 || ct.Last().T != 5*step {
		t.Fatal("duplicate-instant sample changed the ring")
	}
}

func TestRecorderFirstSampleHasZeroRate(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("c_total", "c", nil, func() int64 { return 99 })
	rec := NewRecorder(reg, 0)
	rec.Sample(time.Second)
	p := rec.Lookup("c_total", nil).Last()
	if p.Value != 99 || p.Rate != 0 {
		t.Fatalf("first point = %+v", p)
	}
}

func TestRecorderPumpWhile(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry()
	reg.GaugeFunc("now_ms", "virtual now", nil, func() float64 { return durMS(eng.Now()) })
	rec := NewRecorder(reg, 0)

	end := 450 * time.Millisecond
	eng.After(end, func() {}) // workload stand-in
	rec.PumpWhile(eng, 100*time.Millisecond, func() bool { return eng.Now() < end })
	eng.Run()

	ts := rec.Lookup("now_ms", nil)
	pts := ts.Points()
	// Samples at 0,100,...,400 while cont holds, plus the final one at 500.
	if len(pts) != 6 {
		t.Fatalf("got %d points: %+v", len(pts), pts)
	}
	if pts[0].T != 0 || pts[5].T != 500*time.Millisecond {
		t.Fatalf("pump window wrong: first %v last %v", pts[0].T, pts[5].T)
	}
	for _, p := range pts {
		if p.Value != durMS(p.T) {
			t.Fatalf("sampled value %v at %v", p.Value, p.T)
		}
	}
}

func TestRecorderExportsDeterministic(t *testing.T) {
	run := func() (string, string) {
		eng := sim.NewEngine(7)
		reg := NewRegistry()
		var c int64
		reg.CounterFunc("c_total", "c", map[string]string{"node": "n0"}, func() int64 { return c })
		rec := NewRecorder(reg, 0)
		for i := 1; i <= 4; i++ {
			c += int64(i * 3)
			rec.Sample(time.Duration(i) * 50 * time.Millisecond)
		}
		_ = eng
		var j, csvb bytes.Buffer
		if err := rec.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteCSV(&csvb); err != nil {
			t.Fatal(err)
		}
		return j.String(), csvb.String()
	}
	j1, c1 := run()
	j2, c2 := run()
	if j1 != j2 {
		t.Fatal("same-seed JSON exports differ")
	}
	if c1 != c2 {
		t.Fatal("same-seed CSV exports differ")
	}
	var doc struct {
		Samples int64 `json:"samples"`
		Series  []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Points []struct {
				TMS  float64 `json:"t_ms"`
				V    float64 `json:"v"`
				Rate float64 `json:"rate"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(j1), &doc); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if doc.Samples != 4 || len(doc.Series) != 1 || len(doc.Series[0].Points) != 4 {
		t.Fatalf("export shape wrong: %+v", doc)
	}
	if doc.Series[0].Labels["node"] != "n0" {
		t.Fatalf("labels lost: %+v", doc.Series[0].Labels)
	}
	if !strings.HasPrefix(c1, "series,labels,t_ms,value,rate_per_s\n") {
		t.Fatalf("csv header wrong: %q", strings.SplitN(c1, "\n", 2)[0])
	}
}

func TestRecorderSetGroupsRuns(t *testing.T) {
	set := NewRecorderSet(0, 0)
	if set.Every() != DefaultSampleInterval {
		t.Fatalf("default interval = %v", set.Every())
	}
	for _, run := range []string{"faasd", "trenv"} {
		reg := NewRegistry()
		v := int64(len(run))
		reg.CounterFunc("c_total", "c", nil, func() int64 { return v })
		set.Track(run, reg).Sample(time.Second)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Run    string `json:"run"`
			Series []struct {
				Name string `json:"name"`
			} `json:"series"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 || doc.Runs[0].Run != "faasd" || doc.Runs[1].Run != "trenv" {
		t.Fatalf("runs = %+v", doc.Runs)
	}
	var csvb bytes.Buffer
	if err := set.WriteCSV(&csvb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvb.String(), "run,series,labels,t_ms,value,rate_per_s\n") {
		t.Fatalf("set csv header wrong: %q", strings.SplitN(csvb.String(), "\n", 2)[0])
	}
	if !strings.Contains(csvb.String(), "faasd,c_total") {
		t.Fatalf("set csv missing run rows:\n%s", csvb.String())
	}
}

func TestRegisterTraceLogExposesDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	log := eng.AttachTraceLog(2)
	reg := NewRegistry()
	RegisterTraceLog(reg, nil, log)
	for i := 0; i < 5; i++ {
		eng.After(time.Duration(i)*time.Millisecond, func() {})
	}
	eng.Run()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trenv_sim_trace_dropped_total 3") {
		t.Fatalf("drop count not exported:\n%s", buf.String())
	}
	if log.Dropped() != 3 {
		t.Fatalf("dropped = %d", log.Dropped())
	}
}

func TestSLOBurnRate(t *testing.T) {
	tr := NewSLOTracker(time.Minute)
	tr.Set("JS", SLO{Target: 100 * time.Millisecond, Objective: 0.9})

	at := func(s int) time.Duration { return time.Duration(s) * time.Second }
	// 10 events in the first minute: 2 breaches → bad frac 0.2, budget
	// 0.1 → burn rate 2.
	for i := 0; i < 10; i++ {
		lat := 50 * time.Millisecond
		if i < 2 {
			lat = 200 * time.Millisecond
		}
		tr.Record("JS", at(i*6), lat)
	}
	if got := tr.BurnRate("JS", at(54), time.Minute); math.Abs(got-2) > 1e-9 {
		t.Fatalf("burn rate = %v, want 2", got)
	}
	if got := tr.Compliance("JS", at(54), time.Minute); got != 0.8 {
		t.Fatalf("compliance = %v, want 0.8", got)
	}
	if tr.Total("JS") != 10 || tr.Breaches("JS") != 2 {
		t.Fatalf("totals = %d/%d", tr.Total("JS"), tr.Breaches("JS"))
	}
	// A minute later the window has slid past every event.
	if got := tr.BurnRate("JS", at(200), time.Minute); got != 0 {
		t.Fatalf("burn rate after slide = %v, want 0", got)
	}
	// Untracked function (no default): ignored.
	tr.Record("Go", at(1), time.Hour)
	if tr.Total("Go") != 0 {
		t.Fatal("untracked function recorded")
	}
}

func TestSLODefaultAndRegister(t *testing.T) {
	tr := NewSLOTracker(time.Minute)
	tr.SetDefault(SLO{Target: 10 * time.Millisecond, Objective: 0.5})
	now := 30 * time.Second
	tr.Record("B", time.Second, 20*time.Millisecond) // breach
	tr.Record("A", 2*time.Second, 5*time.Millisecond)

	if got := tr.Functions(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("functions = %v", got)
	}
	reg := NewRegistry()
	tr.Register(reg, map[string]string{"node": "n1"}, func() time.Duration { return now })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`trenv_slo_events_total{function="A",node="n1"} 1`,
		`trenv_slo_breaches_total{function="B",node="n1"} 1`,
		`trenv_slo_target_ms{function="A",node="n1"} 10`,
		// B: 1 bad / 1 total over the window, budget 0.5 → burn 2.
		`trenv_slo_burn_rate{function="B",node="n1",window="1m0s"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSLOValidation(t *testing.T) {
	for _, bad := range []SLO{
		{Target: 0, Objective: 0.9},
		{Target: time.Second, Objective: 0},
		{Target: time.Second, Objective: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SLO %+v accepted", bad)
				}
			}()
			NewSLOTracker().Set("x", bad)
		}()
	}
}
