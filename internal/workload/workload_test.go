package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mem"
)

func TestTable4MatchesPaper(t *testing.T) {
	profiles := Table4()
	if len(profiles) != 10 {
		t.Fatalf("profiles = %d, want 10", len(profiles))
	}
	want := map[string]struct {
		memMB   int64
		threads int
		lang    string
	}{
		"DH": {50, 14, "python"}, "JS": {94, 14, "python"}, "PR": {116, 395, "python"},
		"IR": {855, 141, "python"}, "IP": {67, 15, "python"}, "VP": {324, 204, "python"},
		"CH": {94, 38, "python"}, "CR": {124, 16, "nodejs"}, "JJS": {111, 21, "nodejs"},
		"IFR": {253, 21, "nodejs"},
	}
	for _, p := range profiles {
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected function %q", p.Name)
		}
		if p.MemBytes < w.memMB<<20 || p.MemBytes > (w.memMB+2)<<20 {
			t.Errorf("%s: mem %d not ~%d MB", p.Name, p.MemBytes, w.memMB)
		}
		if p.Threads != w.threads {
			t.Errorf("%s: threads %d, want %d", p.Name, p.Threads, w.threads)
		}
		if p.Lang != w.lang {
			t.Errorf("%s: lang %q", p.Name, p.Lang)
		}
	}
}

func TestReadOnlyRatiosSpanPaperRange(t *testing.T) {
	// Figure 10: read-only ratios span 24% to 90%.
	lo, hi := 1.0, 0.0
	for _, p := range Table4() {
		r := p.ReadOnlyRatio()
		if r < 0.2 || r > 0.95 {
			t.Errorf("%s: read-only ratio %.2f outside plausible range", p.Name, r)
		}
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo > 0.30 || hi < 0.85 {
		t.Fatalf("ratio span [%.2f, %.2f] too narrow vs paper's [0.24, 0.90]", lo, hi)
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("IR")
	if err != nil || p.Name != "IR" {
		t.Fatalf("ProfileByName(IR) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestSnapshotRegionsSumToImage(t *testing.T) {
	for _, p := range Table4() {
		snap := p.Snapshot()
		if got := snap.MemBytes(); got != int64(p.ImagePages())*mem.PageSize {
			t.Errorf("%s: snapshot bytes %d != image %d", p.Name, got, p.ImagePages()*mem.PageSize)
		}
		if snap.Procs[0].Threads != p.Threads {
			t.Errorf("%s: threads not carried", p.Name)
		}
		if len(snap.Procs[0].Regions) != 3 {
			t.Errorf("%s: regions = %d", p.Name, len(snap.Procs[0].Regions))
		}
	}
}

func TestSharedRegionsHaveLanguageKeys(t *testing.T) {
	js, _ := ProfileByName("JS")
	dh, _ := ProfileByName("DH")
	cr, _ := ProfileByName("CR")
	jsSnap, dhSnap, crSnap := js.Snapshot(), dh.Snapshot(), cr.Snapshot()
	if jsSnap.Procs[0].Regions[0].ContentKey != dhSnap.Procs[0].Regions[0].ContentKey {
		t.Fatal("python runtime not shared between JS and DH")
	}
	if jsSnap.Procs[0].Regions[0].ContentKey == crSnap.Procs[0].Regions[0].ContentKey {
		t.Fatal("python and nodejs runtimes share a key")
	}
	if jsSnap.Procs[0].Regions[2].ContentKey != "" {
		t.Fatal("heap should be private (empty key)")
	}
}

func TestAccessesConsistentWithFractions(t *testing.T) {
	for _, p := range Table4() {
		accs := p.Accesses()
		var reads, writes int
		for _, a := range accs {
			reads += a.ReadPages
			writes += a.WritePages
			if a.WritePages > a.ReadPages {
				t.Errorf("%s/%s: writes (%d) exceed touched reads (%d)", p.Name, a.Region, a.WritePages, a.ReadPages)
			}
		}
		// Written pages count as touched, so write-heavy functions (IFR)
		// can exceed the read target by the heap write surplus.
		wantReads := int(float64(p.ImagePages()) * p.ReadFrac)
		if reads < wantReads*9/10 || reads > wantReads*13/10 {
			t.Errorf("%s: reads %d vs target %d", p.Name, reads, wantReads)
		}
		wantWrites := int(float64(p.ImagePages()) * p.WriteFrac)
		if writes < wantWrites*9/10 || writes > wantWrites*11/10 {
			t.Errorf("%s: writes %d vs target %d", p.Name, writes, wantWrites)
		}
	}
}

func TestWorkingSetCoversAccesses(t *testing.T) {
	p, _ := ProfileByName("JS")
	ws := p.WorkingSet()
	for _, a := range p.Accesses() {
		n := a.ReadPages
		if a.WritePages > n {
			n = a.WritePages
		}
		if ws[a.Region] != n {
			t.Fatalf("ws[%s] = %d, want %d", a.Region, ws[a.Region], n)
		}
	}
	if p.TouchedPages() == 0 {
		t.Fatal("no touched pages")
	}
}

func names() []string {
	var out []string
	for _, p := range Table4() {
		out = append(out, p.Name)
	}
	return out
}

func TestW1BurstsSeparatedByGap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultW1(names())
	cfg.Background = 0 // isolate bursts
	tr := W1Bursty(rng, cfg)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	// All invocations must sit inside per-function staggered windows.
	stagger := cfg.BurstGap / time.Duration(len(cfg.Functions)+1)
	fnIdx := make(map[string]int)
	for i, fn := range cfg.Functions {
		fnIdx[fn] = i
	}
	for _, inv := range tr {
		inBurst := false
		offset := time.Duration(fnIdx[inv.Function]) * stagger
		for start := time.Duration(0); start < cfg.Duration; start += cfg.BurstGap {
			if inv.At >= start+offset && inv.At <= start+offset+cfg.BurstSpan {
				inBurst = true
				break
			}
		}
		if !inBurst {
			t.Fatalf("invocation of %s at %v outside its burst windows", inv.Function, inv.At)
		}
	}
	// Different functions' bursts do not coincide.
	if c := tr.CountByFunction(); len(c) != len(cfg.Functions) {
		t.Fatalf("functions used = %d", len(c))
	}
	// Up to 3 rounds x 10 functions x 18, minus windows clipped at the
	// trace end by the stagger.
	max := 3 * 10 * cfg.BurstSize
	if tr.Len() < max*2/3 || tr.Len() > max {
		t.Fatalf("invocations = %d, want within (2/3..1]x%d", tr.Len(), max)
	}
}

func TestW2VolumeAndOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := W2Diurnal(rng, DefaultW2(names()))
	// Mean RPS ~8 over 1800s => ~14k invocations (the paper's ">4k over
	// 30 minutes" is a floor).
	if tr.Len() < 10000 || tr.Len() > 20000 {
		t.Fatalf("W2 volume = %d", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if tr[i].At < tr[i-1].At {
			t.Fatal("trace not time ordered")
		}
	}
	counts := tr.CountByFunction()
	if len(counts) != 10 {
		t.Fatalf("functions used = %d", len(counts))
	}
}

func TestIndustrialTracesSkewAndBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	az := Industrial(rng, AzureConfig(names()))
	if az.Len() < 1000 {
		t.Fatalf("azure volume = %d", az.Len())
	}
	counts := az.CountByFunction()
	// Skew: first function should be busier than last.
	if counts["DH"] <= counts["IFR"] {
		t.Fatalf("no popularity skew: DH=%d IFR=%d", counts["DH"], counts["IFR"])
	}
	hw := Industrial(rng, HuaweiConfig(names()))
	if hw.Len() < 1000 {
		t.Fatalf("huawei volume = %d", hw.Len())
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := W2Diurnal(rand.New(rand.NewSource(7)), DefaultW2(names()))
	b := W2Diurnal(rand.New(rand.NewSource(7)), DefaultW2(names()))
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic lengths: %d vs %d", a.Len(), b.Len())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

// Property: poisson sampling is non-negative and roughly centered.
func TestPoissonProperty(t *testing.T) {
	f := func(seed int64, mean8 uint8) bool {
		mean := float64(mean8%60) + 0.5
		rng := rand.New(rand.NewSource(seed))
		var sum int
		const n = 400
		for i := 0; i < n; i++ {
			v := poisson(rng, mean)
			if v < 0 {
				return false
			}
			sum += v
		}
		got := float64(sum) / n
		return got > mean*0.75 && got < mean*1.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := Trace{{At: time.Second, Function: "a"}, {At: 2 * time.Second, Function: "a"}}
	if tr.Duration() != 2*time.Second {
		t.Fatalf("duration = %v", tr.Duration())
	}
	if (Trace{}).Duration() != 0 {
		t.Fatal("empty duration")
	}
	if tr.CountByFunction()["a"] != 2 {
		t.Fatal("counts")
	}
}
