package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Invocation is one function trigger in a trace.
type Invocation struct {
	At       time.Duration
	Function string
}

// Trace is a time-ordered list of invocations.
type Trace []Invocation

// Len returns the invocation count.
func (t Trace) Len() int { return len(t) }

// Duration returns the time of the last invocation (0 for empty traces).
func (t Trace) Duration() time.Duration {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].At
}

// CountByFunction tallies invocations per function.
func (t Trace) CountByFunction() map[string]int {
	m := make(map[string]int)
	for _, inv := range t {
		m[inv.Function]++
	}
	return m
}

func (t Trace) sortByTime() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].At < t[j].At })
}

// W1Config shapes the bursty workload: bursts arrive with gaps longer
// than the platform's keep-alive window, so plain caching never helps.
type W1Config struct {
	Functions  []string
	Duration   time.Duration
	BurstGap   time.Duration // > keep-alive threshold
	BurstSize  int           // invocations per function per burst
	BurstSpan  time.Duration // burst spread
	Background float64       // sparse background invocations/sec across all functions
}

// DefaultW1 returns the paper's W1 shape for the given functions: bursts
// every 12 minutes (keep-alive is 10), 30 minutes total.
func DefaultW1(functions []string) W1Config {
	return W1Config{
		Functions:  functions,
		Duration:   30 * time.Minute,
		BurstGap:   12 * time.Minute,
		BurstSize:  18,
		BurstSpan:  150 * time.Millisecond,
		Background: 0.01,
	}
}

// W1Bursty generates the bursty trace. Each function bursts on its own
// schedule (staggered across the gap), so a burst stresses one function's
// startup path at ~BurstSize-way concurrency rather than saturating the
// node's cores with every function at once.
func W1Bursty(rng *rand.Rand, cfg W1Config) Trace {
	var t Trace
	stagger := cfg.BurstGap / time.Duration(len(cfg.Functions)+1)
	for start := time.Duration(0); start < cfg.Duration; start += cfg.BurstGap {
		for fi, fn := range cfg.Functions {
			base := start + time.Duration(fi)*stagger
			for i := 0; i < cfg.BurstSize; i++ {
				at := base + time.Duration(rng.Int63n(int64(cfg.BurstSpan)+1))
				if at < cfg.Duration {
					t = append(t, Invocation{At: at, Function: fn})
				}
			}
		}
	}
	t = append(t, background(rng, cfg.Functions, cfg.Duration, cfg.Background)...)
	t.sortByTime()
	return t
}

// W2Config shapes the diurnal workload: total load cycles between trough
// and peak while the *active function subset rotates* each period —
// "cycling through various functions under tight memory limits". The
// rotation is what defeats plain keep-alive caching: by the time a
// function comes around again, its warm instances have been evicted by
// the cap or expired.
type W2Config struct {
	Functions []string
	Duration  time.Duration
	Period    time.Duration
	PeakRPS   float64
	TroughRPS float64
	// ActiveFns is how many functions receive traffic at a time; the
	// window advances by ActiveFns every Period.
	ActiveFns int
}

// DefaultW2 returns the paper's W2 shape.
func DefaultW2(functions []string) W2Config {
	return W2Config{
		Functions: functions,
		Duration:  30 * time.Minute,
		Period:    5 * time.Minute,
		PeakRPS:   14,
		TroughRPS: 2,
		ActiveFns: 4,
	}
}

// W2Diurnal generates the diurnal trace: a triangle wave of total RPS
// split across the currently-active function subset, invocations
// jittered within each second.
func W2Diurnal(rng *rand.Rand, cfg W2Config) Trace {
	var t Trace
	active := cfg.ActiveFns
	if active <= 0 || active > len(cfg.Functions) {
		active = len(cfg.Functions)
	}
	for sec := time.Duration(0); sec < cfg.Duration; sec += time.Second {
		phase := float64(sec%cfg.Period) / float64(cfg.Period) // 0..1
		tri := 1 - 2*math.Abs(phase-0.5)                       // 0..1..0
		rps := cfg.TroughRPS + (cfg.PeakRPS-cfg.TroughRPS)*tri
		rot := int(sec/cfg.Period) * active
		n := poisson(rng, rps)
		for i := 0; i < n; i++ {
			fn := cfg.Functions[(rot+rng.Intn(active))%len(cfg.Functions)]
			at := sec + time.Duration(rng.Int63n(int64(time.Second)))
			t = append(t, Invocation{At: at, Function: fn})
		}
	}
	t.sortByTime()
	return t
}

// IndustrialConfig shapes the Azure-like and Huawei-like synthetic
// traces. Both datasets record per-minute counts; invocations are spread
// randomly within each minute with a skew/burst probability (§9.3).
// Functions alternate between active and idle runs — the production
// pattern that defeats keep-alive caching: idle runs are longer than the
// retention window, so a returning function starts cold.
type IndustrialConfig struct {
	Functions []string
	Duration  time.Duration
	// MeanPerMin is the mean per-function invocations per active minute.
	MeanPerMin float64
	// Skew is the Zipf-ish popularity skew across functions (0 = uniform,
	// 1 = heavily skewed toward the first functions).
	Skew float64
	// BurstProb is the chance a function-minute is a burst minute.
	BurstProb float64
	// BurstFactor multiplies the minute's count during a burst.
	BurstFactor float64
	// ActiveMinutes / IdleMinutes are the mean run lengths of the
	// per-function on/off process (geometric transitions).
	ActiveMinutes float64
	IdleMinutes   float64
}

// AzureConfig returns an Azure-trace-like shape: moderate rates, strong
// popularity skew, occasional bursts, idle gaps past the keep-alive
// window.
func AzureConfig(functions []string) IndustrialConfig {
	return IndustrialConfig{
		Functions: functions, Duration: 30 * time.Minute,
		MeanPerMin: 28, Skew: 0.7, BurstProb: 0.06, BurstFactor: 6,
		ActiveMinutes: 4, IdleMinutes: 13,
	}
}

// HuaweiConfig returns a Huawei-trace-like shape: spikier, higher
// variance minute-to-minute, longer quiet runs.
func HuaweiConfig(functions []string) IndustrialConfig {
	return IndustrialConfig{
		Functions: functions, Duration: 30 * time.Minute,
		MeanPerMin: 30, Skew: 0.5, BurstProb: 0.12, BurstFactor: 9,
		ActiveMinutes: 3, IdleMinutes: 14,
	}
}

// Industrial generates a synthetic industrial trace.
func Industrial(rng *rand.Rand, cfg IndustrialConfig) Trace {
	var t Trace
	nf := len(cfg.Functions)
	pIdle, pActive := 0.0, 0.0
	if cfg.ActiveMinutes > 0 {
		pIdle = 1 / cfg.ActiveMinutes // chance an active run ends
	}
	if cfg.IdleMinutes > 0 {
		pActive = 1 / cfg.IdleMinutes // chance an idle run ends
	}
	for fi, fn := range cfg.Functions {
		// popularity weight: first functions busier under skew
		w := 1.0 / (1.0 + cfg.Skew*float64(fi))
		// Stagger initial phases so functions do not synchronize.
		active := fi%2 == 0
		for min := time.Duration(0); min < cfg.Duration; min += time.Minute {
			justActivated := false
			if cfg.ActiveMinutes > 0 && cfg.IdleMinutes > 0 {
				if active && rng.Float64() < pIdle {
					active = false
				} else if !active && rng.Float64() < pActive {
					active = true
					justActivated = true
				}
				if !active {
					continue
				}
			}
			mean := cfg.MeanPerMin * w * float64(nf) / norm(nf, cfg.Skew)
			n := poisson(rng, mean)
			// A function returning from idle returns with a thundering
			// herd (scale-from-zero), and any minute may burst.
			if justActivated || rng.Float64() < cfg.BurstProb {
				n = int(float64(n+1) * cfg.BurstFactor)
			}
			for i := 0; i < n; i++ {
				at := min + time.Duration(rng.Int63n(int64(time.Minute)))
				if at < cfg.Duration {
					t = append(t, Invocation{At: at, Function: fn})
				}
			}
		}
	}
	t.sortByTime()
	return t
}

// background produces sparse uniform invocations at the given total rate.
func background(rng *rand.Rand, functions []string, duration time.Duration, rps float64) Trace {
	var t Trace
	if rps <= 0 {
		return t
	}
	n := int(rps * duration.Seconds())
	for i := 0; i < n; i++ {
		t = append(t, Invocation{
			At:       time.Duration(rng.Int63n(int64(duration))),
			Function: functions[rng.Intn(len(functions))],
		})
	}
	return t
}

// poisson samples a Poisson(mean) variate by inversion (mean < ~30) or a
// normal approximation above.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(mean + rng.NormFloat64()*math.Sqrt(mean) + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func norm(n int, skew float64) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += 1.0 / (1.0 + skew*float64(i))
	}
	return s
}
