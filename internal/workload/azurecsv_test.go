package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

const sampleCSV = `HashOwner,HashApp,HashFunction,Trigger,1,2,3
o1,a1,busy,http,10,0,5
o1,a1,medium,timer,2,3,1
o2,a2,quiet,queue,0,1,0
`

func TestParseAzureCSVBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := ParseAzureCSV(strings.NewReader(sampleCSV), rng, AzureCSVOptions{
		Functions: []string{"JS", "DH"},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.CountByFunction()
	// busy (15) -> JS, medium (6) -> DH; quiet dropped (only 2 targets).
	if counts["JS"] != 15 || counts["DH"] != 6 {
		t.Fatalf("counts = %v", counts)
	}
	if len(counts) != 2 {
		t.Fatalf("functions mapped = %d", len(counts))
	}
	// Ordering and per-minute placement.
	for i := 1; i < tr.Len(); i++ {
		if tr[i].At < tr[i-1].At {
			t.Fatal("trace unordered")
		}
	}
	if tr.Duration() >= 3*time.Minute {
		t.Fatalf("duration = %v, want < 3min", tr.Duration())
	}
	// Minute 2 of "busy" has zero invocations: no JS arrivals in [1m,2m).
	for _, inv := range tr {
		if inv.Function == "JS" && inv.At >= time.Minute && inv.At < 2*time.Minute {
			t.Fatalf("JS invocation at %v, but minute 2 is zero in the CSV", inv.At)
		}
	}
}

func TestParseAzureCSVMaxMinutes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := ParseAzureCSV(strings.NewReader(sampleCSV), rng, AzureCSVOptions{
		Functions:  []string{"JS"},
		MaxMinutes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.CountByFunction()["JS"] != 10 {
		t.Fatalf("counts = %v, want first minute only", tr.CountByFunction())
	}
}

func TestParseAzureCSVErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := map[string]string{
		"no functions":   sampleCSV,
		"no minute cols": "HashOwner,HashApp,HashFunction,Trigger\no,a,f,http\n",
		"bad count":      "HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,xyz\n",
		"negative count": "HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,-3\n",
		"no rows":        "HashOwner,HashApp,HashFunction,Trigger,1\n",
	}
	for name, csvText := range cases {
		opts := AzureCSVOptions{Functions: []string{"JS"}}
		if name == "no functions" {
			opts.Functions = nil
		}
		if _, err := ParseAzureCSV(strings.NewReader(csvText), rng, opts); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestParseAzureCSVDeterministicMapping(t *testing.T) {
	// Equal-volume rows tie-break by id so mapping is stable.
	csvText := "HashOwner,HashApp,HashFunction,Trigger,1\no,a,zeta,http,5\no,a,alpha,http,5\n"
	tr, err := ParseAzureCSV(strings.NewReader(csvText), rand.New(rand.NewSource(1)), AzureCSVOptions{
		Functions: []string{"first", "second"},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.CountByFunction()
	if counts["first"] != 5 || counts["second"] != 5 {
		t.Fatalf("counts = %v", counts)
	}
}
