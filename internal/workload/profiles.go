// Package workload defines the evaluated serverless functions (the
// paper's Table 4, drawn from SeBS and FunctionBench) and generates the
// invocation traces the evaluation drives them with: W1 bursty loads, W2
// diurnal traffic under tight memory, and Azure-like / Huawei-like
// industrial traces (§9.1).
package workload

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/snapshot"
)

// FunctionProfile describes one serverless function's resource behaviour.
type FunctionProfile struct {
	Name        string
	Lang        string // "python" or "nodejs"
	Description string

	// MemBytes is the post-initialization snapshot size (Table 4).
	MemBytes int64
	// Threads is the number of threads CRIU must restore (Table 4).
	Threads int
	// FDs is the number of open descriptors to restore.
	FDs int

	// BaseExec is the end-to-end execution time of one invocation with
	// all memory local and no contention.
	BaseExec time.Duration
	// CPUFraction is the share of BaseExec spent on-CPU (the rest is
	// I/O wait, releasing the core).
	CPUFraction float64

	// ReadFrac is the fraction of image pages read during an invocation;
	// WriteFrac the fraction written. WriteFrac <= ReadFrac, and
	// (ReadFrac-WriteFrac)/ReadFrac is the read-only ratio of Figure 10.
	ReadFrac  float64
	WriteFrac float64

	// CXLExecFactor is the relative execution-time inflation when the
	// function's hot read-only set resides on CXL instead of local DRAM
	// (§9.2.1: DH and IR nearly double; others see ~10% on average).
	CXLExecFactor float64

	// ColdInit is the bootstrapping phase on a cold start (interpreter
	// launch, imports); snapshots/templates skip it entirely.
	ColdInit time.Duration
}

// Shared-content sizes per language: the runtime and the common library
// set are bit-identical across functions of the same language, so they
// deduplicate in the consolidated image. Function-specific content
// (including big per-function libraries like torch) lives in the heap.
var (
	langRuntimeBytes = map[string]int64{"python": 18 << 20, "nodejs": 20 << 20}
	langLibsBytes    = map[string]int64{"python": 16 << 20, "nodejs": 14 << 20}
)

// Table4 returns the ten evaluated functions with the paper's published
// memory sizes and thread counts; execution-time and working-set
// parameters are calibrated to reproduce the evaluation's shapes
// (Figure 10's 24-90% read-only span, CR's ~500 ms execution, DH/IR's
// sub-100 ms runs).
func Table4() []FunctionProfile {
	return []FunctionProfile{
		{Name: "DH", Lang: "python", Description: "dynamic web page generation",
			MemBytes: 50<<20 + 419430, Threads: 14, FDs: 18,
			BaseExec: 60 * time.Millisecond, CPUFraction: 0.7,
			ReadFrac: 0.55, WriteFrac: 0.0825, CXLExecFactor: 0.80, ColdInit: 350 * time.Millisecond},
		{Name: "JS", Lang: "python", Description: "JSON de/serialization",
			MemBytes: 94<<20 + 943718, Threads: 14, FDs: 16,
			BaseExec: 120 * time.Millisecond, CPUFraction: 0.85,
			ReadFrac: 0.50, WriteFrac: 0.10, CXLExecFactor: 0.10, ColdInit: 500 * time.Millisecond},
		{Name: "PR", Lang: "python", Description: "PageRank",
			MemBytes: 116 << 20, Threads: 395, FDs: 24,
			BaseExec: 600 * time.Millisecond, CPUFraction: 0.92,
			ReadFrac: 0.62, WriteFrac: 0.28, CXLExecFactor: 0.12, ColdInit: 800 * time.Millisecond},
		{Name: "IR", Lang: "python", Description: "ResNet image inference",
			MemBytes: 855 << 20, Threads: 141, FDs: 40,
			BaseExec: 90 * time.Millisecond, CPUFraction: 0.95,
			ReadFrac: 0.25, WriteFrac: 0.025, CXLExecFactor: 0.85, ColdInit: 4 * time.Second},
		{Name: "IP", Lang: "python", Description: "image rotate/flip",
			MemBytes: 67<<20 + 104857, Threads: 15, FDs: 18,
			BaseExec: 250 * time.Millisecond, CPUFraction: 0.9,
			ReadFrac: 0.58, WriteFrac: 0.32, CXLExecFactor: 0.08, ColdInit: 600 * time.Millisecond},
		{Name: "VP", Lang: "python", Description: "video gray-scale effect",
			MemBytes: 324 << 20, Threads: 204, FDs: 30,
			BaseExec: 1200 * time.Millisecond, CPUFraction: 0.93,
			ReadFrac: 0.60, WriteFrac: 0.36, CXLExecFactor: 0.06, ColdInit: time.Second},
		{Name: "CH", Lang: "python", Description: "HTML table rendering",
			MemBytes: 94<<20 + 943718, Threads: 38, FDs: 26,
			BaseExec: 350 * time.Millisecond, CPUFraction: 0.3,
			ReadFrac: 0.48, WriteFrac: 0.144, CXLExecFactor: 0.05, ColdInit: 600 * time.Millisecond},
		{Name: "CR", Lang: "nodejs", Description: "AES encryption",
			MemBytes: 124 << 20, Threads: 16, FDs: 14,
			BaseExec: 500 * time.Millisecond, CPUFraction: 0.95,
			ReadFrac: 0.52, WriteFrac: 0.208, CXLExecFactor: 0.10, ColdInit: 400 * time.Millisecond},
		{Name: "JJS", Lang: "nodejs", Description: "JSON de/serialization (Node)",
			MemBytes: 111 << 20, Threads: 21, FDs: 14,
			BaseExec: 150 * time.Millisecond, CPUFraction: 0.85,
			ReadFrac: 0.50, WriteFrac: 0.125, CXLExecFactor: 0.12, ColdInit: 300 * time.Millisecond},
		{Name: "IFR", Lang: "nodejs", Description: "image rotate/flip (Node)",
			MemBytes: 253 << 20, Threads: 21, FDs: 20,
			BaseExec: 400 * time.Millisecond, CPUFraction: 0.9,
			ReadFrac: 0.55, WriteFrac: 0.418, CXLExecFactor: 0.08, ColdInit: 900 * time.Millisecond},
	}
}

// ProfileByName returns the Table 4 profile with the given name.
func ProfileByName(name string) (FunctionProfile, error) {
	for _, p := range Table4() {
		if p.Name == name {
			return p, nil
		}
	}
	return FunctionProfile{}, fmt.Errorf("workload: unknown function %q", name)
}

// ReadOnlyRatio returns the fraction of touched pages that are only read
// (Figure 10).
func (p FunctionProfile) ReadOnlyRatio() float64 {
	if p.ReadFrac == 0 {
		return 0
	}
	return (p.ReadFrac - p.WriteFrac) / p.ReadFrac
}

// ImagePages returns the snapshot size in pages.
func (p FunctionProfile) ImagePages() int { return mem.PagesFor(p.MemBytes) }

// Snapshot synthesizes the function's CRIU snapshot: a runtime region and
// a libs region shared (same content key) with all functions of the same
// language, and a private heap.
func (p FunctionProfile) Snapshot() *snapshot.Snapshot {
	pages := p.ImagePages()
	runtimePages := mem.PagesFor(langRuntimeBytes[p.Lang])
	libPages := mem.PagesFor(langLibsBytes[p.Lang])
	heapPages := pages - runtimePages - libPages
	if heapPages < 1 {
		panic(fmt.Sprintf("workload: %s image smaller than shared content", p.Name))
	}
	return &snapshot.Snapshot{
		Function: p.Name,
		Procs: []snapshot.ProcessImage{{
			Name:    "main",
			Threads: p.Threads,
			FDs:     p.FDs,
			Regions: []snapshot.Region{
				{Name: "runtime", Bytes: int64(runtimePages) * mem.PageSize,
					Prot: pagetable.Read | pagetable.Exec, Kind: pagetable.File,
					ContentKey: "runtime/" + p.Lang},
				{Name: "libs", Bytes: int64(libPages) * mem.PageSize,
					Prot: pagetable.Read, Kind: pagetable.File,
					ContentKey: "libs/" + p.Lang},
				{Name: "heap", Bytes: int64(heapPages) * mem.PageSize,
					Prot: pagetable.Read | pagetable.Write, Kind: pagetable.Anon},
			},
		}},
	}
}

// RegionAccess gives the per-region read/write page counts of one
// invocation. Reads spread across all regions proportionally to size;
// writes land only in the writable heap.
type RegionAccess struct {
	Region     string
	ReadPages  int
	WritePages int
}

// Accesses returns the per-region working set of one invocation.
func (p FunctionProfile) Accesses() []RegionAccess {
	snap := p.Snapshot()
	totalPages := p.ImagePages()
	readTotal := int(float64(totalPages) * p.ReadFrac)
	writeTotal := int(float64(totalPages) * p.WriteFrac)
	var out []RegionAccess
	regs := snap.Procs[0].Regions
	assigned := 0
	for i, r := range regs {
		rp := r.Pages()
		var reads int
		if i == len(regs)-1 {
			reads = readTotal - assigned
		} else {
			reads = int(float64(readTotal) * float64(rp) / float64(totalPages))
		}
		if reads > rp {
			reads = rp
		}
		assigned += reads
		ra := RegionAccess{Region: r.Name, ReadPages: reads}
		if r.Prot&pagetable.Write != 0 {
			w := writeTotal
			if w > rp {
				w = rp
			}
			ra.WritePages = w
			if ra.ReadPages < w {
				ra.ReadPages = w // written pages are also touched
			}
		}
		out = append(out, ra)
	}
	return out
}

// WorkingSet returns the touched page count per region (for REAP/FaaSnap
// recorded working sets).
func (p FunctionProfile) WorkingSet() map[string]int {
	ws := make(map[string]int)
	for _, a := range p.Accesses() {
		n := a.ReadPages
		if a.WritePages > n {
			n = a.WritePages
		}
		ws[a.Region] = n
	}
	return ws
}

// TouchedPages returns total distinct pages touched per invocation.
func (p FunctionProfile) TouchedPages() int {
	var n int
	for _, a := range p.Accesses() {
		if a.ReadPages > a.WritePages {
			n += a.ReadPages
		} else {
			n += a.WritePages
		}
	}
	return n
}
