package workload

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// TraceStats summarizes a trace's load shape — the properties (bursts,
// skew, idle gaps) that decide whether keep-alive caching works and that
// the evaluation's workloads are designed around.
type TraceStats struct {
	Invocations int
	Duration    time.Duration
	Functions   int
	// MeanRPS is the average arrival rate.
	MeanRPS float64
	// PeakMinute is the largest per-minute arrival count.
	PeakMinute int
	// Burstiness is peak-minute rate over mean rate (1 = perfectly
	// smooth).
	Burstiness float64
	// InterArrivalCV is the coefficient of variation of inter-arrival
	// times (1 = Poisson, >1 = bursty).
	InterArrivalCV float64
	// MaxIdleGap is the longest per-function quiet period — compared
	// against the keep-alive window it predicts cold returns.
	MaxIdleGap time.Duration
	// Skew is the busiest function's share of all invocations.
	Skew float64
}

// Stats computes summary statistics for a trace.
func (t Trace) Stats() TraceStats {
	var s TraceStats
	s.Invocations = t.Len()
	if s.Invocations == 0 {
		return s
	}
	s.Duration = t.Duration()
	counts := t.CountByFunction()
	s.Functions = len(counts)
	if s.Duration > 0 {
		s.MeanRPS = float64(s.Invocations) / s.Duration.Seconds()
	}
	// Per-minute histogram.
	perMin := map[int]int{}
	for _, inv := range t {
		perMin[int(inv.At/time.Minute)]++
	}
	for _, c := range perMin {
		if c > s.PeakMinute {
			s.PeakMinute = c
		}
	}
	minutes := s.Duration.Minutes()
	if minutes < 1 {
		minutes = 1
	}
	meanPerMin := float64(s.Invocations) / minutes
	if meanPerMin > 0 {
		s.Burstiness = float64(s.PeakMinute) / meanPerMin
	}
	// Inter-arrival CV (trace is time-ordered).
	if s.Invocations > 2 {
		var gaps []float64
		for i := 1; i < len(t); i++ {
			gaps = append(gaps, float64(t[i].At-t[i-1].At))
		}
		mean, sd := meanStd(gaps)
		if mean > 0 {
			s.InterArrivalCV = sd / mean
		}
	}
	// Max per-function idle gap.
	byFn := map[string][]time.Duration{}
	for _, inv := range t {
		byFn[inv.Function] = append(byFn[inv.Function], inv.At)
	}
	for _, ats := range byFn {
		sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
		for i := 1; i < len(ats); i++ {
			if gap := ats[i] - ats[i-1]; gap > s.MaxIdleGap {
				s.MaxIdleGap = gap
			}
		}
	}
	// Popularity skew.
	busiest := 0
	for _, c := range counts {
		if c > busiest {
			busiest = c
		}
	}
	s.Skew = float64(busiest) / float64(s.Invocations)
	return s
}

func meanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}

// String renders the stats on one line.
func (s TraceStats) String() string {
	return fmt.Sprintf("n=%d dur=%v fns=%d rps=%.2f burstiness=%.1f cv=%.1f maxIdle=%v skew=%.2f",
		s.Invocations, s.Duration.Round(time.Second), s.Functions, s.MeanRPS,
		s.Burstiness, s.InterArrivalCV, s.MaxIdleGap.Round(time.Second), s.Skew)
}

// DefeatsKeepAlive reports whether some function's idle gap exceeds the
// retention window (so plain caching will take cold starts).
func (s TraceStats) DefeatsKeepAlive(keepAlive time.Duration) bool {
	return s.MaxIdleGap > keepAlive
}
