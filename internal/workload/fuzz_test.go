package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// FuzzParseAzureCSV hardens the trace ingester: arbitrary CSV must never
// panic, and accepted traces must be well-formed.
func FuzzParseAzureCSV(f *testing.F) {
	f.Add(sampleCSV)
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,5\n")
	f.Add("")
	f.Add("a,b\n1,2\n")
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1,2,3\no,a,f,http,1,-2,3\n")
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http\n")

	f.Fuzz(func(t *testing.T, raw string) {
		rng := rand.New(rand.NewSource(1))
		tr, err := ParseAzureCSV(strings.NewReader(raw), rng, AzureCSVOptions{
			Functions:  []string{"JS", "DH"},
			MaxMinutes: 60,
		})
		if err != nil {
			return
		}
		// Accepted traces are ordered, bounded, and only use the target
		// function names.
		var prev time.Duration
		for _, inv := range tr {
			if inv.At < prev {
				t.Fatal("trace unordered")
			}
			prev = inv.At
			if inv.Function != "JS" && inv.Function != "DH" {
				t.Fatalf("unexpected function %q", inv.Function)
			}
			if inv.At >= 60*time.Minute {
				t.Fatalf("invocation past MaxMinutes: %v", inv.At)
			}
		}
	})
}
