package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"time"
)

// AzureCSVOptions controls ingestion of the Azure Functions trace format
// (the dataset behind the paper's Azure workload): one row per function,
// columns HashOwner, HashApp, HashFunction, Trigger, then per-minute
// invocation counts ("1", "2", ... "1440").
type AzureCSVOptions struct {
	// Functions are the simulated functions to map trace rows onto; the
	// busiest rows are assigned in order. Required.
	Functions []string
	// MaxMinutes caps the trace length (0 = every minute column).
	MaxMinutes int
}

type azureRow struct {
	id     string
	counts []int
	total  int
}

// ParseAzureCSV converts an Azure-format trace into a Trace: the top
// len(opts.Functions) rows by volume are mapped onto the given function
// names, and each minute's count is spread uniformly within the minute
// (the paper's §9.3 methodology: "randomly distributed those within each
// minute").
func ParseAzureCSV(r io.Reader, rng *rand.Rand, opts AzureCSVOptions) (Trace, error) {
	if len(opts.Functions) == 0 {
		return nil, fmt.Errorf("workload: azure csv needs target functions")
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: azure csv header: %w", err)
	}
	firstMinute := -1
	for i, col := range header {
		if _, err := strconv.Atoi(col); err == nil {
			firstMinute = i
			break
		}
	}
	if firstMinute < 0 {
		return nil, fmt.Errorf("workload: azure csv has no per-minute columns")
	}
	var rows []azureRow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: azure csv line %d: %w", line, err)
		}
		if len(rec) <= firstMinute {
			return nil, fmt.Errorf("workload: azure csv line %d: %d fields, want > %d", line, len(rec), firstMinute)
		}
		id := fmt.Sprintf("row-%d", line)
		switch {
		case firstMinute >= 3:
			id = rec[2] // HashFunction column
		case firstMinute >= 1:
			id = rec[firstMinute-1]
		}
		row := azureRow{id: id}
		for _, cell := range rec[firstMinute:] {
			n, err := strconv.Atoi(cell)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("workload: azure csv line %d: bad count %q", line, cell)
			}
			row.counts = append(row.counts, n)
			row.total += n
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: azure csv has no data rows")
	}
	// Busiest rows first, deterministic tie-break by id.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].id < rows[j].id
	})
	if len(rows) > len(opts.Functions) {
		rows = rows[:len(opts.Functions)]
	}
	var t Trace
	for ri, row := range rows {
		fn := opts.Functions[ri]
		minutes := len(row.counts)
		if opts.MaxMinutes > 0 && minutes > opts.MaxMinutes {
			minutes = opts.MaxMinutes
		}
		for m := 0; m < minutes; m++ {
			base := time.Duration(m) * time.Minute
			for i := 0; i < row.counts[m]; i++ {
				t = append(t, Invocation{
					At:       base + time.Duration(rng.Int63n(int64(time.Minute))),
					Function: fn,
				})
			}
		}
	}
	t.sortByTime()
	return t, nil
}
