package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestStatsEmptyTrace(t *testing.T) {
	s := (Trace{}).Stats()
	if s.Invocations != 0 || s.MeanRPS != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestStatsHandComputed(t *testing.T) {
	tr := Trace{
		{At: 0, Function: "a"},
		{At: 30 * time.Second, Function: "a"},
		{At: 60 * time.Second, Function: "b"},
		{At: 120 * time.Second, Function: "a"},
	}
	s := tr.Stats()
	if s.Invocations != 4 || s.Functions != 2 {
		t.Fatalf("%+v", s)
	}
	if s.MeanRPS != 4.0/120.0 {
		t.Fatalf("rps = %v", s.MeanRPS)
	}
	if s.PeakMinute != 2 { // minute 0 holds two invocations
		t.Fatalf("peak minute = %d", s.PeakMinute)
	}
	// a's longest gap: 30s->120s = 90s.
	if s.MaxIdleGap != 90*time.Second {
		t.Fatalf("max idle = %v", s.MaxIdleGap)
	}
	if s.Skew != 0.75 {
		t.Fatalf("skew = %v", s.Skew)
	}
	if !s.DefeatsKeepAlive(time.Minute) || s.DefeatsKeepAlive(2*time.Minute) {
		t.Fatal("keep-alive predicate wrong")
	}
	if s.String() == "" {
		t.Fatal("empty string rendering")
	}
}

// The designed workloads must have the shapes the paper needs.
func TestWorkloadShapesMatchIntent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w1 := W1Bursty(rng, DefaultW1(names())).Stats()
	// W1: bursts separated by more than the 10-minute keep-alive.
	if !w1.DefeatsKeepAlive(10 * time.Minute) {
		t.Fatalf("W1 does not defeat keep-alive: %v", w1.MaxIdleGap)
	}
	// Function bursts are staggered, so aggregate per-minute counts look
	// even; the burstiness shows up as a huge inter-arrival CV (18
	// arrivals within 150 ms, then a minute of silence).
	if w1.InterArrivalCV < 2 {
		t.Fatalf("W1 inter-arrival CV = %.1f, should be strongly bursty", w1.InterArrivalCV)
	}
	w2 := W2Diurnal(rng, DefaultW2(names())).Stats()
	// W2: rotation makes per-function gaps exceed keep-alive while the
	// total stream stays comparatively smooth.
	if !w2.DefeatsKeepAlive(10 * time.Minute) {
		t.Fatalf("W2 does not defeat keep-alive: %v", w2.MaxIdleGap)
	}
	if w2.InterArrivalCV > w1.InterArrivalCV {
		t.Fatal("W2 should be smoother than W1")
	}
	az := Industrial(rng, AzureConfig(names())).Stats()
	if !az.DefeatsKeepAlive(10 * time.Minute) {
		t.Fatal("Azure-like trace lacks keep-alive-defeating idle gaps")
	}
	if az.Skew < 0.15 {
		t.Fatalf("Azure-like trace lacks popularity skew: %.2f", az.Skew)
	}
}

func TestInterArrivalCVBurstyVsSmooth(t *testing.T) {
	// A perfectly regular trace has CV ~0; a bursty one far above 1.
	var smooth Trace
	for i := 0; i < 100; i++ {
		smooth = append(smooth, Invocation{At: time.Duration(i) * time.Second, Function: "a"})
	}
	if cv := smooth.Stats().InterArrivalCV; cv > 0.01 {
		t.Fatalf("regular trace cv = %v", cv)
	}
	var bursty Trace
	for burst := 0; burst < 5; burst++ {
		base := time.Duration(burst) * 10 * time.Minute
		for i := 0; i < 20; i++ {
			bursty = append(bursty, Invocation{At: base + time.Duration(i)*time.Millisecond, Function: "a"})
		}
	}
	if cv := bursty.Stats().InterArrivalCV; cv < 2 {
		t.Fatalf("bursty trace cv = %v", cv)
	}
}
