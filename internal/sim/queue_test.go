package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFOAcrossProcesses(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue("jobs")
	var got []int
	for i := 0; i < 3; i++ {
		e.Go("worker", func(p *Proc) {
			for j := 0; j < 2; j++ {
				got = append(got, q.Pop(p).(int))
			}
		})
	}
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 6; i++ {
			p.Sleep(time.Millisecond)
			q.Push(e, i)
		}
	})
	e.Run()
	if len(got) != 6 {
		t.Fatalf("received %d items", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("items out of order: %v", got)
		}
	}
	pushes, pops := q.Stats()
	if pushes != 6 || pops != 6 {
		t.Fatalf("stats %d/%d", pushes, pops)
	}
}

func TestQueuePushBeforePop(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue("q")
	q.Push(e, "a")
	q.Push(e, "b")
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	var first any
	e.Go("c", func(p *Proc) { first = q.Pop(p) })
	e.Run()
	if first != "a" {
		t.Fatalf("first = %v", first)
	}
	if v, ok := q.TryPop(); !ok || v != "b" {
		t.Fatalf("trypop = %v %v", v, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("trypop on empty succeeded")
	}
}

func TestQueueReceiverParksUntilPush(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue("q")
	var at time.Duration
	e.Go("consumer", func(p *Proc) {
		q.Pop(p)
		at = p.Now()
	})
	e.After(5*time.Millisecond, func() { q.Push(e, 1) })
	e.Run()
	if at != 5*time.Millisecond {
		t.Fatalf("consumer woke at %v", at)
	}
}

func TestWaitGroupBasics(t *testing.T) {
	e := NewEngine(1)
	var wg WaitGroup
	wg.Add(3)
	done := false
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		done = p.Now() == 3*time.Millisecond
	})
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		e.After(d, func() { wg.Done(e) })
	}
	e.Run()
	if !done {
		t.Fatal("waiter did not wake exactly when the last task finished")
	}
	if wg.Count() != 0 {
		t.Fatalf("count = %d", wg.Count())
	}
}

func TestWaitGroupImmediate(t *testing.T) {
	e := NewEngine(1)
	var wg WaitGroup
	ran := false
	e.Go("w", func(p *Proc) {
		wg.Wait(p) // zero count: no park
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("Wait on zero count blocked")
	}
}

func TestWaitGroupMisusePanics(t *testing.T) {
	var wg WaitGroup
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Add did not panic")
			}
		}()
		wg.Add(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Done without Add did not panic")
			}
		}()
		wg.Done(NewEngine(1))
	}()
}

// Property: for any push/pop interleaving, pops return pushed values in
// order and conservation holds.
func TestQueueConservationProperty(t *testing.T) {
	f := func(pushCounts []uint8) bool {
		e := NewEngine(1)
		q := NewQueue("q")
		total := 0
		for _, c := range pushCounts {
			total += int(c % 5)
		}
		var got []int
		e.Go("consumer", func(p *Proc) {
			for i := 0; i < total; i++ {
				got = append(got, q.Pop(p).(int))
			}
		})
		e.Go("producer", func(p *Proc) {
			n := 0
			for _, c := range pushCounts {
				p.Sleep(time.Microsecond)
				for i := 0; i < int(c%5); i++ {
					q.Push(e, n)
					n++
				}
			}
		})
		e.Run()
		if len(got) != total {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
