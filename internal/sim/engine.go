// Package sim provides a deterministic discrete-event simulation engine.
//
// All TrEnv experiments run on virtual time: simulated processes are
// goroutines that the engine resumes one at a time in (time, sequence)
// order, so a given seed always produces bit-identical results. The engine
// also provides counted resources (CPU cores), condition signals, and the
// statistics types (histograms, time-weighted gauges) used to report
// latency distributions and memory curves.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// stopPanic is thrown into parked processes when the engine shuts down so
// their goroutines unwind instead of leaking.
type stopPanic struct{}

// Engine is a deterministic discrete-event scheduler over virtual time.
// It is not safe for concurrent use: events and processes run one at a
// time, interleaved only at explicit yield points (Sleep, Wait, Acquire).
type Engine struct {
	now      time.Duration
	seq      uint64
	queue    eventHeap
	rng      *rand.Rand
	parked   chan struct{} // signaled when the active proc yields or exits
	procs    map[*Proc]struct{}
	running  bool
	stopped  bool
	procSeq  int
	EventCap int64 // optional safety valve; 0 means unlimited
	events   int64
	tracer   func(at time.Duration, kind, name string)
	free     []*event // recycled event structs for the hot push/pop path
}

type event struct {
	at   time.Duration
	seq  uint64
	proc *Proc  // resume this process...
	fn   func() // ...or run this callback
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }
func (e *Engine) push(ev *event) {
	if e.stopped {
		return // a shut-down engine accepts no new events
	}
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.queue, ev)
}
func (e *Engine) pop() *event { return heap.Pop(&e.queue).(*event) }

// newEvent takes an event struct off the engine's freelist (or allocates
// one) so the steady-state schedule loop runs allocation-free. Events are
// recycled by the run loop after they execute; events still queued at
// Shutdown are simply dropped to the garbage collector.
func (e *Engine) newEvent(at time.Duration, proc *Proc, fn func()) *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.proc, ev.fn = at, 0, proc, fn
		return ev
	}
	return &event{at: at, proc: proc, fn: fn}
}

// recycle returns an executed event to the freelist.
func (e *Engine) recycle(ev *event) {
	ev.proc, ev.fn = nil, nil
	e.free = append(e.free, ev)
}

// NewEngine returns an engine whose random stream is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Proc is a simulated process: a goroutine that only runs while the engine
// is blocked waiting for it, giving cooperative, deterministic scheduling.
type Proc struct {
	eng  *Engine
	name string
	id   int
	wake chan struct{}
	done bool
}

// Name returns the process's debug name.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Rand returns the engine's deterministic random stream.
func (p *Proc) Rand() *rand.Rand { return p.eng.rng }

// Go spawns fn as a simulated process starting at the current virtual time.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.At(e.now, name, fn)
}

// At spawns fn as a simulated process starting at virtual time t, which
// must not be in the past.
func (e *Engine) At(t time.Duration, name string, fn func(p *Proc)) *Proc {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, e.now))
	}
	e.procSeq++
	p := &Proc{eng: e, name: name, id: e.procSeq, wake: make(chan struct{})}
	e.procs[p] = struct{}{}
	go func() {
		<-p.wake // wait for first resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopPanic); !ok {
					panic(r)
				}
			}
			p.done = true
			delete(e.procs, p)
			e.parked <- struct{}{}
		}()
		if e.stopped {
			return // woken by Shutdown before ever running: unwind quietly
		}
		fn(p)
	}()
	e.push(e.newEvent(t, p, nil))
	if e.tracer != nil {
		e.tracer(e.now, "spawn", name)
	}
	return p
}

// After schedules fn to run as a bare callback (not a process) after d.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.push(e.newEvent(e.now+d, nil, fn))
}

// resume hands control to p and blocks until it yields or finishes.
func (e *Engine) resume(p *Proc) {
	p.wake <- struct{}{}
	<-e.parked
}

// park is called from inside a process goroutine to yield to the engine.
func (p *Proc) park() {
	p.eng.parked <- struct{}{}
	<-p.wake
	if p.eng.stopped {
		panic(stopPanic{})
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	e := p.eng
	e.push(e.newEvent(e.now+d, p, nil))
	p.park()
}

// Yield reschedules the process at the current time, letting same-time
// events run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Park suspends the process indefinitely; some other component must
// Resume it. Building block for queues and admission control.
func (p *Proc) Park() { p.park() }

// Resume schedules a parked process to continue at the current virtual
// time. Resuming a process that is not parked corrupts the simulation;
// pair every Resume with exactly one Park.
func (e *Engine) Resume(p *Proc) {
	if p.done {
		return
	}
	e.push(e.newEvent(e.now, p, nil))
}

// Run executes events until the queue is empty or the engine is shut down.
func (e *Engine) Run() { e.RunUntil(-1) }

// RunUntil executes events with timestamps <= deadline (deadline < 0 means
// run to exhaustion) and advances Now to deadline if it is later than the
// last event. An event scheduled exactly at the deadline runs; only events
// strictly after it are left queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.run(deadline, false)
	if deadline >= 0 && deadline > e.now {
		e.now = deadline
	}
}

// runWindow executes events with timestamps strictly before horizon and
// leaves Now at the last executed event. It is the shard coordinator's
// entry point: a shard may safely run every event below the group's
// synchronization horizon without seeing messages from its peers, because
// cross-shard messages always arrive at or beyond the horizon.
func (e *Engine) runWindow(horizon time.Duration) {
	e.run(horizon, true)
}

// run is the scheduler hot loop shared by RunUntil and runWindow. With
// exclusive set, events at exactly the deadline stay queued.
func (e *Engine) run(deadline time.Duration, exclusive bool) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && !e.stopped {
		if deadline >= 0 {
			at := e.queue.peek().at
			if at > deadline || (exclusive && at == deadline) {
				break
			}
		}
		ev := e.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.events++
		if e.EventCap > 0 && e.events > e.EventCap {
			panic("sim: event cap exceeded (runaway simulation?)")
		}
		proc, fn := ev.proc, ev.fn
		e.recycle(ev)
		if proc != nil {
			if !proc.done {
				if e.tracer != nil {
					e.tracer(e.now, "resume", proc.name)
				}
				e.resume(proc)
			}
			continue
		}
		if e.tracer != nil {
			e.tracer(e.now, "callback", "")
		}
		fn()
	}
	if e.stopped {
		e.unwind()
	}
}

// Shutdown unwinds every parked process and drops all pending events.
// After Shutdown the engine must not be reused.
//
// Shutdown may also be called from inside a running process or callback:
// in that case it marks the engine stopped and drops the queue
// immediately, and the run loop unwinds the remaining parked processes
// once the calling process yields or returns. (Unwinding synchronously
// from inside a process would deadlock: the engine goroutine is blocked
// waiting for that process to park, so it cannot arbitrate a resume of
// any other process.)
func (e *Engine) Shutdown() {
	e.stopped = true
	e.queue = nil
	if e.running {
		return // run loop performs the unwind after the active proc yields
	}
	e.unwind()
}

// unwind resumes every parked process so park() observes stopped and
// panics with stopPanic, unwinding the goroutine.
func (e *Engine) unwind() {
	for p := range e.procs {
		if !p.done {
			e.resume(p)
		}
	}
}

// Pending reports the number of queued events (for tests).
func (e *Engine) Pending() int { return len(e.queue) }

// Events returns how many events the engine has executed so far. The
// counter is an int64 end-to-end (it lives on the hot loop as one integer
// increment per event, no allocation) so event counts cannot truncate on
// 32-bit platforms during long sharded runs, and wall-clock
// self-benchmarks can derive events/sec without touching virtual time or
// the deterministic event order.
func (e *Engine) Events() int64 { return e.events }

// nextEventAt returns the timestamp of the earliest pending event, or
// false if the queue is empty. The shard coordinator uses it to compute
// the group-wide synchronization horizon.
func (e *Engine) nextEventAt() (time.Duration, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue.peek().at, true
}

// Signal is a broadcast condition variable for simulated processes.
type Signal struct {
	waiters []*Proc
}

// Wait parks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Broadcast wakes every waiter at the current virtual time.
func (s *Signal) Broadcast(e *Engine) {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		e.push(e.newEvent(e.now, w, nil))
	}
}

// Waiters reports how many processes are parked on s.
func (s *Signal) Waiters() int { return len(s.waiters) }
