package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ShardGroup advances several independent engines in lockstep windows of
// virtual time, exchanging cross-shard work as timestamped messages at
// deterministic synchronization horizons.
//
// The model is conservative parallel discrete-event simulation: each
// shard owns its own event heap, sequence counter, and seeded rng stream,
// so within a window [T, T+lookahead) every shard can run entirely
// independently — provided no message can arrive inside the window. That
// is guaranteed by construction: Send requires a delay of at least the
// group's lookahead, so a message emitted at any time t < T+lookahead
// lands at t+delay >= T+lookahead, i.e. at or beyond the horizon. The
// coordinator therefore runs each shard up to (exclusive of) the horizon,
// waits for all of them at a barrier, delivers the accumulated messages
// in a deterministic order — sorted by (arrival time, sending shard,
// emission index) — and opens the next window.
//
// Because the logical schedule depends only on the per-shard event order
// and the sorted message delivery, it is invariant of how many OS worker
// goroutines execute the windows: Workers controls physical parallelism
// only, and a given seed produces byte-identical results at any worker
// count, including 1.
type ShardGroup struct {
	lookahead time.Duration
	shards    []*Engine
	outboxes  [][]shardMsg // one per shard; appended only by that shard's window
	emitted   []int        // per-shard running emission index (deterministic tiebreak)
	workers   int
	windows   int64
	messages  int64
}

// shardMsg is a timestamped cross-shard message: fn runs on shard to at
// virtual time at.
type shardMsg struct {
	at   time.Duration
	from int
	idx  int
	to   int
	fn   func()
}

// NewShardGroup creates n engines whose rng streams are derived from
// seed (shard i is seeded seed + i*1000003, a fixed odd stride so the
// per-shard streams are stable across releases). lookahead is the
// minimum cross-shard latency and must be positive; it bounds how far a
// window extends and therefore the minimum delay Send accepts.
func NewShardGroup(seed int64, n int, lookahead time.Duration) *ShardGroup {
	if n <= 0 {
		panic("sim: ShardGroup needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: ShardGroup lookahead must be positive")
	}
	g := &ShardGroup{
		lookahead: lookahead,
		shards:    make([]*Engine, n),
		outboxes:  make([][]shardMsg, n),
		emitted:   make([]int, n),
		workers:   1,
	}
	for i := range g.shards {
		g.shards[i] = NewEngine(seed + int64(i)*1000003)
	}
	return g
}

// SetWorkers sets how many OS goroutines execute shard windows in
// parallel. It affects wall-clock speed only, never the schedule; values
// below 1 are clamped to 1.
func (g *ShardGroup) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	g.workers = n
}

// Workers returns the configured physical parallelism.
func (g *ShardGroup) Workers() int { return g.workers }

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's engine. Code running on shard i must only
// touch state owned by shard i; the only sanctioned cross-shard channel
// is Send.
func (g *ShardGroup) Shard(i int) *Engine { return g.shards[i] }

// Lookahead returns the conservative synchronization window width.
func (g *ShardGroup) Lookahead() time.Duration { return g.lookahead }

// Windows returns how many synchronization windows the group has run.
func (g *ShardGroup) Windows() int64 { return g.windows }

// Messages returns how many cross-shard messages have been delivered.
func (g *ShardGroup) Messages() int64 { return g.messages }

// Events returns the total events executed across all shards.
func (g *ShardGroup) Events() int64 {
	var n int64
	for _, e := range g.shards {
		n += e.Events()
	}
	return n
}

// Now returns the latest virtual time reached by any shard.
func (g *ShardGroup) Now() time.Duration {
	var t time.Duration
	for _, e := range g.shards {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// Send schedules fn to run on shard to after delay, measured from shard
// from's current virtual time. delay must be at least the group's
// lookahead — that is what keeps windows causally closed. Send must be
// called from code running on shard from (during its window, or between
// windows from the coordinator).
func (g *ShardGroup) Send(from, to int, delay time.Duration, fn func()) {
	if delay < g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard delay %v below lookahead %v", delay, g.lookahead))
	}
	if to < 0 || to >= len(g.shards) {
		panic(fmt.Sprintf("sim: Send to unknown shard %d", to))
	}
	g.outboxes[from] = append(g.outboxes[from], shardMsg{
		at:   g.shards[from].Now() + delay,
		from: from,
		idx:  g.emitted[from],
		to:   to,
		fn:   fn,
	})
	g.emitted[from]++
}

// Run advances all shards in synchronization windows until every queue
// is empty and no messages are in flight.
func (g *ShardGroup) Run() {
	for {
		g.deliver()
		t, ok := g.nextEventTime()
		if !ok {
			return
		}
		g.runWindow(t + g.lookahead)
	}
}

// RunUntil advances all shards until every event with timestamp <=
// deadline has run, then advances each shard's clock to deadline.
// Cross-shard messages arriving after the deadline stay queued for a
// later Run or RunUntil.
func (g *ShardGroup) RunUntil(deadline time.Duration) {
	for {
		g.deliver()
		t, ok := g.nextEventTime()
		if !ok || t > deadline {
			break
		}
		// Clamp the window so no event beyond the deadline runs. The clamp
		// only ever tightens the bound below t+lookahead, so the causal
		// guarantee (messages land at or beyond the window end) still holds.
		horizon := t + g.lookahead
		if horizon > deadline+1 {
			horizon = deadline + 1
		}
		g.runWindow(horizon)
	}
	// Any messages emitted by the final window arrive strictly after the
	// deadline; park them in their target queues, then advance clocks.
	g.deliver()
	for _, e := range g.shards {
		e.RunUntil(deadline)
	}
}

// nextEventTime returns the earliest pending event time across shards.
func (g *ShardGroup) nextEventTime() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, e := range g.shards {
		if at, ok := e.nextEventAt(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}

// runWindow executes every shard's events strictly below horizon,
// fanning the shards over the configured number of worker goroutines and
// waiting for all of them at a barrier.
func (g *ShardGroup) runWindow(horizon time.Duration) {
	g.windows++
	n := len(g.shards)
	workers := g.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for _, e := range g.shards {
			e.runWindow(horizon)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				g.shards[i].runWindow(horizon)
			}
		}()
	}
	wg.Wait()
}

// deliver pushes all accumulated cross-shard messages into their target
// shards in deterministic (arrival time, sending shard, emission index)
// order, so downstream sequence numbers — and therefore the schedule —
// do not depend on which worker finished first.
func (g *ShardGroup) deliver() {
	var pending []shardMsg
	for i := range g.outboxes {
		pending = append(pending, g.outboxes[i]...)
		g.outboxes[i] = g.outboxes[i][:0]
	}
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(a, b int) bool {
		if pending[a].at != pending[b].at {
			return pending[a].at < pending[b].at
		}
		if pending[a].from != pending[b].from {
			return pending[a].from < pending[b].from
		}
		return pending[a].idx < pending[b].idx
	})
	for _, m := range pending {
		e := g.shards[m.to]
		e.push(e.newEvent(m.at, nil, m.fn))
		g.messages++
	}
}

// Shutdown shuts every shard down.
func (g *ShardGroup) Shutdown() {
	for _, e := range g.shards {
		e.Shutdown()
	}
}
