package sim

import (
	"fmt"
	"time"
)

// Resource is a counted resource (e.g. physical CPU cores) with a FIFO
// wait queue. Acquire blocks the calling simulated process until the
// requested units are available, which is how CPU contention and
// overcommitment delays arise in the model.
type Resource struct {
	name     string
	capacity int
	inUse    int
	queue    []*resWaiter

	// contention accounting
	waitTotal time.Duration
	acquires  int
}

type resWaiter struct {
	p     *Proc
	n     int
	since time.Duration
}

// NewResource creates a resource with the given capacity (> 0).
func NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive", name))
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource's debug name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Queued returns the number of waiting processes.
func (r *Resource) Queued() int { return len(r.queue) }

// Utilization returns inUse/capacity.
func (r *Resource) Utilization() float64 { return float64(r.inUse) / float64(r.capacity) }

// Acquire blocks p until n units are available, then holds them.
// n must be in [1, capacity].
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of resource %q (capacity %d)", n, r.name, r.capacity))
	}
	r.acquires++
	if len(r.queue) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	w := &resWaiter{p: p, n: n, since: p.Now()}
	r.queue = append(r.queue, w)
	p.park()
	r.waitTotal += p.Now() - w.since
}

// TryAcquire acquires n units without blocking; it reports success.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.capacity {
		return false
	}
	if len(r.queue) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and wakes queued waiters in FIFO order.
// It may be called from any simulated context.
func (r *Resource) Release(e *Engine, n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: release %d of resource %q (in use %d)", n, r.name, r.inUse))
	}
	r.inUse -= n
	for len(r.queue) > 0 {
		w := r.queue[0]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.queue = r.queue[1:]
		r.inUse += w.n
		e.push(&event{at: e.now, proc: w.p})
	}
}

// MeanWait returns the average queueing delay across completed Acquires.
func (r *Resource) MeanWait() time.Duration {
	if r.acquires == 0 {
		return 0
	}
	return r.waitTotal / time.Duration(r.acquires)
}
