package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram collects samples and answers percentile / CDF queries. It
// stores raw samples (experiments here produce at most a few hundred
// thousand), keeping percentiles exact.
type Histogram struct {
	vals   []float64
	sorted bool
	sum    float64
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.vals = append(h.vals, v)
	h.sorted = false
	h.sum += v
}

// AddDuration records a duration sample in milliseconds.
func (h *Histogram) AddDuration(d time.Duration) {
	h.Add(float64(d) / float64(time.Millisecond))
}

// Merge folds other's samples into h (other is unchanged). Because the
// histogram stores raw samples, percentiles over the merged set are
// exact — cluster experiments use this to get fleet-wide tails from
// per-node histograms.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || len(other.vals) == 0 {
		return
	}
	h.vals = append(h.vals, other.vals...)
	h.sorted = false
	h.sum += other.sum
}

// N returns the number of samples.
func (h *Histogram) N() int { return len(h.vals) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	return h.sum / float64(len(h.vals))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.vals) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("sim: percentile %v out of range", p))
	}
	h.sort()
	if len(h.vals) == 1 {
		return h.vals[0]
	}
	rank := p / 100 * float64(len(h.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.vals[lo]
	}
	frac := rank - float64(lo)
	return h.vals[lo]*(1-frac) + h.vals[hi]*frac
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.sort()
	return h.vals[0]
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.sort()
	return h.vals[len(h.vals)-1]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // cumulative fraction <= Value
}

// CDF returns an empirical CDF downsampled to at most maxPoints points
// (maxPoints <= 0 means all points).
func (h *Histogram) CDF(maxPoints int) []CDFPoint {
	n := len(h.vals)
	if n == 0 {
		return nil
	}
	h.sort()
	step := 1
	if maxPoints > 0 && n > maxPoints {
		step = n / maxPoints
	}
	var out []CDFPoint
	for i := 0; i < n; i += step {
		out = append(out, CDFPoint{Value: h.vals[i], Fraction: float64(i+1) / float64(n)})
	}
	if out[len(out)-1].Fraction != 1 {
		out = append(out, CDFPoint{Value: h.vals[n-1], Fraction: 1})
	}
	return out
}

// Summary returns a one-line human-readable digest.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p75=%.2f p99=%.2f max=%.2f",
		h.N(), h.Mean(), h.Percentile(50), h.Percentile(75), h.Percentile(99), h.Max())
}

// Gauge is a step function of virtual time, used for memory-usage curves.
// Values are recorded with Set/Add; Peak and averages integrate the steps.
type Gauge struct {
	times []time.Duration
	vals  []float64
	cur   float64
}

// Set records value v at time t. Times must be non-decreasing.
func (g *Gauge) Set(t time.Duration, v float64) {
	if n := len(g.times); n > 0 && t < g.times[n-1] {
		panic("sim: gauge time went backwards")
	}
	g.times = append(g.times, t)
	g.vals = append(g.vals, v)
	g.cur = v
}

// Add records cur+delta at time t.
func (g *Gauge) Add(t time.Duration, delta float64) { g.Set(t, g.cur+delta) }

// Current returns the last recorded value.
func (g *Gauge) Current() float64 { return g.cur }

// Peak returns the maximum recorded value (0 if empty).
func (g *Gauge) Peak() float64 {
	peak := 0.0
	for _, v := range g.vals {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// TimeWeightedMean integrates the step function over [t0, t1] and divides
// by the interval. Points outside the window are clamped.
func (g *Gauge) TimeWeightedMean(t0, t1 time.Duration) float64 {
	if t1 <= t0 || len(g.times) == 0 {
		return 0
	}
	var integral float64
	prevT := t0
	prevV := 0.0
	// find value in effect at t0
	for i, t := range g.times {
		if t > t0 {
			break
		}
		prevV = g.vals[i]
	}
	for i, t := range g.times {
		if t <= t0 {
			continue
		}
		if t >= t1 {
			break
		}
		integral += float64(t-prevT) * prevV
		prevT = t
		prevV = g.vals[i]
	}
	integral += float64(t1-prevT) * prevV
	return integral / float64(t1-t0)
}

// Integral returns the time integral of the gauge over [t0, t1] in
// value-seconds (useful for the paper's usage x duration memory cost).
func (g *Gauge) Integral(t0, t1 time.Duration) float64 {
	return g.TimeWeightedMean(t0, t1) * (t1 - t0).Seconds()
}

// Points returns the raw step points, downsampled to at most maxPoints.
func (g *Gauge) Points(maxPoints int) ([]time.Duration, []float64) {
	n := len(g.times)
	if n == 0 {
		return nil, nil
	}
	step := 1
	if maxPoints > 0 && n > maxPoints {
		step = n / maxPoints
	}
	var ts []time.Duration
	var vs []float64
	for i := 0; i < n; i += step {
		ts = append(ts, g.times[i])
		vs = append(vs, g.vals[i])
	}
	return ts, vs
}

// Counter is a simple monotonically increasing event counter.
type Counter struct{ n int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.n++ }

// IncBy adds d (d >= 0).
func (c *Counter) IncBy(d int64) {
	if d < 0 {
		panic("sim: counter decrement")
	}
	c.n += d
}

// Value returns the count.
func (c *Counter) Value() int64 { return c.n }
