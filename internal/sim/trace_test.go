package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTraceLogRecordsSchedulerEvents(t *testing.T) {
	e := NewEngine(1)
	log := e.AttachTraceLog(100)
	e.Go("worker", func(p *Proc) {
		p.Sleep(time.Millisecond)
	})
	e.After(2*time.Millisecond, func() {})
	e.Run()
	entries := log.Entries()
	if len(entries) < 3 { // spawn + 2 resumes + callback
		t.Fatalf("entries = %d", len(entries))
	}
	s := log.String()
	for _, frag := range []string{"spawn", "resume", "callback", "worker"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("trace missing %q:\n%s", frag, s)
		}
	}
	// Timestamps are non-decreasing.
	for i := 1; i < len(entries); i++ {
		if entries[i].At < entries[i-1].At {
			t.Fatal("trace out of order")
		}
	}
}

func TestTraceLogRingDropsOldest(t *testing.T) {
	l := NewTraceLog(3)
	for i := 0; i < 5; i++ {
		l.Record(time.Duration(i), "resume", "p")
	}
	if len(l.Entries()) != 3 || l.Dropped() != 2 {
		t.Fatalf("entries=%d dropped=%d", len(l.Entries()), l.Dropped())
	}
	if l.Entries()[0].At != 2 {
		t.Fatal("wrong entries retained")
	}
	if !strings.Contains(l.String(), "earlier events dropped") {
		t.Fatal("drop notice missing")
	}
}

func TestTracerDetach(t *testing.T) {
	e := NewEngine(1)
	calls := 0
	e.SetTracer(func(time.Duration, string, string) { calls++ })
	e.Go("a", func(p *Proc) {})
	e.SetTracer(nil)
	e.Go("b", func(p *Proc) {})
	e.Run()
	if calls != 1 { // only a's spawn traced
		t.Fatalf("calls = %d", calls)
	}
}

func TestTraceDoesNotPerturbTiming(t *testing.T) {
	run := func(trace bool) time.Duration {
		e := NewEngine(1)
		if trace {
			e.AttachTraceLog(10)
		}
		e.Go("w", func(p *Proc) { p.Sleep(5 * time.Millisecond) })
		e.Run()
		return e.Now()
	}
	if run(false) != run(true) {
		t.Fatal("tracing changed virtual time")
	}
}
