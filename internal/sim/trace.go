package sim

import (
	"fmt"
	"strings"
	"time"
)

// TraceEntry is one observed scheduler event.
type TraceEntry struct {
	At   time.Duration
	Kind string // "resume", "callback", "spawn"
	Name string
}

// String renders the entry.
func (e TraceEntry) String() string {
	return fmt.Sprintf("%12v %-8s %s", e.At, e.Kind, e.Name)
}

// TraceLog is a bounded ring of scheduler events, attached to an engine
// with SetTracer to debug simulations (who ran when, in what order).
// Once full it overwrites the oldest entry in place (O(1) per event).
type TraceLog struct {
	entries []TraceEntry
	head    int // index of the oldest retained entry once full
	max     int
	dropped int64
}

// NewTraceLog keeps at most max entries (oldest dropped first).
func NewTraceLog(max int) *TraceLog {
	if max <= 0 {
		max = 1024
	}
	return &TraceLog{max: max}
}

// Record appends an event.
func (l *TraceLog) Record(at time.Duration, kind, name string) {
	e := TraceEntry{At: at, Kind: kind, Name: name}
	if len(l.entries) < l.max {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.head] = e
	l.head = (l.head + 1) % l.max
	l.dropped++
}

// Entries returns the retained events, oldest first.
func (l *TraceLog) Entries() []TraceEntry {
	out := make([]TraceEntry, 0, len(l.entries))
	out = append(out, l.entries[l.head:]...)
	out = append(out, l.entries[:l.head]...)
	return out
}

// Dropped returns how many events aged out of the ring.
func (l *TraceLog) Dropped() int64 { return l.dropped }

// String renders the log.
func (l *TraceLog) String() string {
	var b strings.Builder
	if l.dropped > 0 {
		fmt.Fprintf(&b, "... %d earlier events dropped ...\n", l.dropped)
	}
	for _, e := range l.Entries() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SetTracer attaches an observer called for every scheduler event
// (spawns, process resumes, callbacks). Pass nil to detach. Tracing does
// not perturb virtual time.
func (e *Engine) SetTracer(fn func(at time.Duration, kind, name string)) {
	e.tracer = fn
}

// AttachTraceLog is a convenience wiring a TraceLog as the tracer.
func (e *Engine) AttachTraceLog(max int) *TraceLog {
	l := NewTraceLog(max)
	e.SetTracer(l.Record)
	return l
}
