package sim

import (
	"fmt"
	"testing"
	"time"
)

// pingPong builds a deterministic multi-shard workload: every shard runs
// a local ticker plus procs that bounce messages to the next shard with
// per-hop rng jitter, and records a schedule log. Returns the log.
func pingPong(workers int) []string {
	const shards = 4
	g := NewShardGroup(7, shards, time.Millisecond)
	g.SetWorkers(workers)
	logs := make([][]string, shards)
	var hop func(shard, hops int)
	hop = func(shard, hops int) {
		e := g.Shard(shard)
		logs[shard] = append(logs[shard], fmt.Sprintf("hop@%v on %d (hops=%d)", e.Now(), shard, hops))
		if hops == 0 {
			return
		}
		next := (shard + 1) % shards
		delay := time.Millisecond + time.Duration(e.Rand().Intn(5))*100*time.Microsecond
		g.Send(shard, next, delay, func() { hop(next, hops-1) })
	}
	for s := 0; s < shards; s++ {
		s := s
		e := g.Shard(s)
		e.Go("ticker", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(time.Duration(100+p.Rand().Intn(300)) * time.Microsecond)
				logs[s] = append(logs[s], fmt.Sprintf("tick@%v on %d", p.Now(), s))
			}
		})
		e.After(time.Duration(s)*50*time.Microsecond, func() { hop(s, 12) })
	}
	g.Run()
	var all []string
	for s := 0; s < shards; s++ {
		all = append(all, logs[s]...)
	}
	all = append(all, fmt.Sprintf("events=%d messages=%d windows=%d now=%v",
		g.Events(), g.Messages(), g.Windows(), g.Now()))
	return all
}

// The logical schedule must be byte-identical at any worker count: the
// shards' event order and the sorted message delivery fully determine
// it, workers only change wall-clock execution.
func TestShardGroupInvariantOfWorkerCount(t *testing.T) {
	want := pingPong(1)
	if len(want) < 100 {
		t.Fatalf("workload too small to be meaningful: %d lines", len(want))
	}
	for _, workers := range []int{2, 4, 8} {
		got := pingPong(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d log lines, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: line %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// Messages must arrive at sender-time + delay, never inside the sending
// window (conservative lookahead contract).
func TestShardGroupMessageTiming(t *testing.T) {
	g := NewShardGroup(1, 2, time.Millisecond)
	var arrived time.Duration
	g.Shard(0).After(3*time.Millisecond, func() {
		g.Send(0, 1, 2*time.Millisecond, func() {
			arrived = g.Shard(1).Now()
		})
	})
	g.Run()
	if arrived != 5*time.Millisecond {
		t.Fatalf("message arrived at %v, want 5ms", arrived)
	}
}

// Delays below the lookahead violate the window contract and must panic.
func TestShardGroupShortDelayPanics(t *testing.T) {
	g := NewShardGroup(1, 2, time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below lookahead did not panic")
		}
	}()
	g.Send(0, 1, 500*time.Microsecond, func() {})
}

// Same-time cross-shard messages from different shards must be delivered
// in (arrival, sending shard, emission index) order regardless of the
// order windows finish.
func TestShardGroupDeliveryOrderDeterministic(t *testing.T) {
	run := func(workers int) []string {
		g := NewShardGroup(3, 3, time.Millisecond)
		g.SetWorkers(workers)
		var order []string
		for s := 0; s < 2; s++ {
			s := s
			g.Shard(s).After(time.Millisecond, func() {
				for i := 0; i < 3; i++ {
					i := i
					g.Send(s, 2, time.Millisecond, func() {
						order = append(order, fmt.Sprintf("from=%d idx=%d", s, i))
					})
				}
			})
		}
		g.Run()
		return order
	}
	want := run(1)
	if len(want) != 6 {
		t.Fatalf("got %d deliveries, want 6", len(want))
	}
	for _, w := range []int{2, 3} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: delivery %d = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

// A single-shard group must behave exactly like a bare engine with the
// same seed: same event count, same rng draws, same clock.
func TestShardGroupSingleShardMatchesEngine(t *testing.T) {
	load := func(e *Engine) {
		e.Go("w", func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Sleep(time.Duration(1+p.Rand().Intn(100)) * time.Microsecond)
			}
		})
	}
	ref := NewEngine(9)
	load(ref)
	ref.Run()

	g := NewShardGroup(9, 1, time.Millisecond)
	load(g.Shard(0))
	g.Run()

	if g.Events() != ref.Events() || g.Now() != ref.Now() {
		t.Fatalf("sharded(1): events=%d now=%v; engine: events=%d now=%v",
			g.Events(), g.Now(), ref.Events(), ref.Now())
	}
	if g.Shard(0).Rand().Int63() != ref.Rand().Int63() {
		t.Fatal("rng streams diverged between 1-shard group and bare engine")
	}
}

// RunUntil must advance every shard's clock to the deadline and leave
// strictly-later work pending.
func TestShardGroupRunUntil(t *testing.T) {
	g := NewShardGroup(5, 2, time.Millisecond)
	var late bool
	g.Shard(0).After(10*time.Millisecond, func() {})
	g.Shard(1).After(30*time.Millisecond, func() { late = true })
	g.RunUntil(20 * time.Millisecond)
	if late {
		t.Fatal("event after deadline ran")
	}
	for i := 0; i < 2; i++ {
		if g.Shard(i).Now() != 20*time.Millisecond {
			t.Fatalf("shard %d now = %v, want 20ms", i, g.Shard(i).Now())
		}
	}
	g.Run()
	if !late {
		t.Fatal("pending event did not run on final Run")
	}
}

// An event inside the final lookahead window but beyond the deadline
// must not run: the window bound is clamped to the deadline.
func TestShardGroupRunUntilClampsFinalWindow(t *testing.T) {
	g := NewShardGroup(5, 2, time.Millisecond)
	var atDeadline, past bool
	g.Shard(0).After(20*time.Millisecond, func() { atDeadline = true })
	g.Shard(0).After(20*time.Millisecond+500*time.Microsecond, func() { past = true })
	g.RunUntil(20 * time.Millisecond)
	if !atDeadline {
		t.Fatal("event exactly at deadline did not run")
	}
	if past {
		t.Fatal("event inside lookahead window but past deadline ran")
	}
}
