package sim

import (
	"testing"
	"time"
)

// RunUntil's deadline is inclusive: an event scheduled exactly at the
// deadline must run, and only strictly-later events stay queued.
func TestRunUntilDeadlineEqualsHeadEvent(t *testing.T) {
	e := NewEngine(1)
	var ran []string
	e.After(10*time.Millisecond, func() { ran = append(ran, "at-deadline") })
	e.After(10*time.Millisecond+time.Nanosecond, func() { ran = append(ran, "after") })
	e.RunUntil(10 * time.Millisecond)
	if len(ran) != 1 || ran[0] != "at-deadline" {
		t.Fatalf("ran %v, want exactly the at-deadline event", ran)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("now %v, want 10ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1 (the strictly-later event)", e.Pending())
	}
	e.Run()
	if len(ran) != 2 {
		t.Fatalf("ran %v, want both events after final Run", ran)
	}
}

// Shutdown called from inside a running proc must not deadlock: the run
// loop defers unwinding until the calling proc yields or returns, then
// unwinds every other parked proc.
func TestShutdownFromInsideRunningProc(t *testing.T) {
	e := NewEngine(1)
	var unwound, survived bool
	e.Go("bystander", func(p *Proc) {
		defer func() { unwound = true }()
		p.Sleep(time.Hour) // parked well past the shutdown point
		survived = true
	})
	e.Go("killer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Engine().Shutdown()
	})
	done := make(chan struct{})
	go func() { e.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after in-proc Shutdown (deadlock)")
	}
	if !unwound {
		t.Fatal("bystander proc was not unwound")
	}
	if survived {
		t.Fatal("bystander proc ran past its park after shutdown")
	}
}

// A proc that calls Shutdown and then parks again must itself be unwound.
func TestShutdownFromInsideProcThenPark(t *testing.T) {
	e := NewEngine(1)
	var unwound bool
	e.Go("self-stopper", func(p *Proc) {
		defer func() { unwound = true }()
		p.Engine().Shutdown()
		p.Sleep(time.Second) // must unwind via stopPanic, not run
		t.Error("proc ran past park after shutting the engine down")
	})
	done := make(chan struct{})
	go func() { e.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after self-shutdown (deadlock)")
	}
	if !unwound {
		t.Fatal("self-stopping proc was not unwound")
	}
}

// Pending must report zero after Shutdown drops the queue, whether the
// shutdown came from outside or from inside a proc.
func TestPendingAfterShutdown(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Millisecond, func() {})
	e.After(time.Second, func() {})
	e.Go("sleeper", func(p *Proc) { p.Sleep(time.Minute) })
	e.Shutdown()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after external Shutdown, want 0", got)
	}

	e2 := NewEngine(2)
	e2.After(time.Second, func() {})
	e2.Go("stopper", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Engine().Shutdown()
	})
	e2.Run()
	if got := e2.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after in-proc Shutdown, want 0", got)
	}
}

// The events counter and cap are int64 end-to-end; a cap larger than
// MaxInt32 must not wrap or trip early.
func TestEventCapInt64(t *testing.T) {
	e := NewEngine(1)
	e.EventCap = int64(1)<<33 + 5
	for i := 0; i < 100; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run()
	if e.Events() != 100 {
		t.Fatalf("Events() = %d, want 100", e.Events())
	}
}

// The freelist keeps the steady-state schedule loop allocation-free: a
// self-rescheduling proc must stay under a small allocs-per-event
// ceiling once warmed up.
func TestAllocsPerEventCeiling(t *testing.T) {
	e := NewEngine(1)
	const events = 10000
	var left = events
	e.Go("ticker", func(p *Proc) {
		for left > 0 {
			left--
			p.Sleep(time.Microsecond)
		}
	})
	e.RunUntil(time.Millisecond) // warm the freelist and the heap slice
	start := e.Events()
	allocs := testing.AllocsPerRun(1, func() {
		e.RunUntil(e.Now() + 5*time.Millisecond)
	})
	ran := e.Events() - start
	if ran < 1000 {
		t.Fatalf("measured window ran only %d events", ran)
	}
	perEvent := allocs / float64(ran)
	if perEvent > 0.01 {
		t.Fatalf("%.4f allocs/event, want pooled hot loop at <= 0.01", perEvent)
	}
}
