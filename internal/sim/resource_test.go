package sim

import (
	"testing"
	"time"
)

func TestResourceContentionQueues(t *testing.T) {
	e := NewEngine(1)
	cpu := NewResource("cpu", 2)
	var finished []time.Duration
	for i := 0; i < 4; i++ {
		e.Go("job", func(p *Proc) {
			cpu.Acquire(p, 1)
			p.Sleep(10 * time.Millisecond)
			cpu.Release(e, 1)
			finished = append(finished, p.Now())
		})
	}
	e.Run()
	if len(finished) != 4 {
		t.Fatalf("finished %d jobs, want 4", len(finished))
	}
	// 2 cores, 4 jobs of 10ms: two waves at 10ms and 20ms.
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	for i := range want {
		if finished[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finished, want)
		}
	}
	if cpu.InUse() != 0 {
		t.Fatalf("resource leaked: inUse=%d", cpu.InUse())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine(1)
	r := NewResource("r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Duration(i)*time.Microsecond, "w", func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release(e, 1)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("waiters served out of order: %v", order)
		}
	}
}

func TestResourceMultiUnitDoesNotStarve(t *testing.T) {
	e := NewEngine(1)
	r := NewResource("r", 4)
	var bigDone, smallDone time.Duration
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(10 * time.Millisecond)
		r.Release(e, 3)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 4) // must wait for holder
		bigDone = p.Now()
		p.Sleep(time.Millisecond)
		r.Release(e, 4)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		r.Acquire(p, 1) // arrives after big; FIFO means it waits behind big
		smallDone = p.Now()
		r.Release(e, 1)
	})
	e.Run()
	if bigDone != 10*time.Millisecond {
		t.Fatalf("big acquired at %v, want 10ms", bigDone)
	}
	if smallDone < bigDone {
		t.Fatalf("small (%v) jumped the FIFO queue ahead of big (%v)", smallDone, bigDone)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource("r", 2)
	if !r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) on empty resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) on full resource succeeded")
	}
	r.Release(e, 2)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) after release failed")
	}
	if r.TryAcquire(0) || r.TryAcquire(3) {
		t.Fatal("TryAcquire accepted out-of-range n")
	}
}

func TestResourceMeanWait(t *testing.T) {
	e := NewEngine(1)
	r := NewResource("r", 1)
	e.Go("a", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * time.Millisecond)
		r.Release(e, 1)
	})
	e.Go("b", func(p *Proc) {
		r.Acquire(p, 1) // waits 10ms
		r.Release(e, 1)
	})
	e.Run()
	if got := r.MeanWait(); got != 5*time.Millisecond {
		t.Fatalf("mean wait = %v, want 5ms (0 + 10ms over 2 acquires)", got)
	}
}

func TestResourceReleaseTooManyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	e := NewEngine(1)
	r := NewResource("r", 1)
	r.Release(e, 1)
}
