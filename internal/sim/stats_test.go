package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if p := h.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
	if p := h.Percentile(50); p != 50.5 {
		t.Fatalf("p50 = %v", p)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Add(42)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 42 {
			t.Fatalf("p%v = %v, want 42", p, got)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

// Property: percentiles are monotone in p and bounded by [min, max].
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int32, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(float64(v))
		}
		rng := rand.New(rand.NewSource(seed))
		prevP, prevV := 0.0, h.Percentile(0)
		for i := 0; i < 20; i++ {
			p := prevP + rng.Float64()*(100-prevP)
			v := h.Percentile(p)
			// Allow half-ulp wobble from linear interpolation.
			tol := 1e-9 * (math.Abs(prevV) + 1)
			if v < prevV-tol {
				return false
			}
			if v < h.Min()-tol || v > h.Max()+tol {
				return false
			}
			prevP, prevV = p, v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF fractions are non-decreasing, end at 1, values sorted.
func TestHistogramCDFProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(float64(v))
		}
		cdf := h.CDF(16)
		if cdf[len(cdf)-1].Fraction != 1 {
			return false
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Fraction < cdf[i-1].Fraction || cdf[i].Value < cdf[i-1].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile(50) matches a direct median computation.
func TestHistogramMedianMatchesSort(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
			h.Add(float64(v))
		}
		sort.Float64s(vals)
		n := len(vals)
		var want float64
		if n%2 == 1 {
			want = vals[n/2]
		} else {
			want = (vals[n/2-1] + vals[n/2]) / 2
		}
		return h.Percentile(50) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGaugePeakAndMean(t *testing.T) {
	var g Gauge
	g.Set(0, 10)
	g.Set(1*time.Second, 30)
	g.Set(3*time.Second, 0)
	if g.Peak() != 30 {
		t.Fatalf("peak = %v", g.Peak())
	}
	// [0,1s)=10, [1s,3s)=30, [3s,4s)=0 over 4s => (10+60+0)/4 = 17.5
	if got := g.TimeWeightedMean(0, 4*time.Second); got != 17.5 {
		t.Fatalf("time-weighted mean = %v, want 17.5", got)
	}
	if got := g.Integral(0, 4*time.Second); got != 70 {
		t.Fatalf("integral = %v, want 70", got)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(0, 5)
	g.Add(time.Second, 5)
	g.Add(2*time.Second, -3)
	if g.Current() != 7 {
		t.Fatalf("current = %v, want 7", g.Current())
	}
}

func TestGaugeWindowBeforeFirstPoint(t *testing.T) {
	var g Gauge
	g.Set(10*time.Second, 100)
	// Window entirely before the first point: value was 0.
	if got := g.TimeWeightedMean(0, 5*time.Second); got != 0 {
		t.Fatalf("mean = %v, want 0", got)
	}
	// Window straddling: [5s,15s) => 5s of 0, 5s of 100 => 50.
	if got := g.TimeWeightedMean(5*time.Second, 15*time.Second); got != 50 {
		t.Fatalf("mean = %v, want 50", got)
	}
}

func TestGaugeBackwardsTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backwards gauge time")
		}
	}()
	var g Gauge
	g.Set(time.Second, 1)
	g.Set(0, 2)
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.IncBy(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestHistogramAddDuration(t *testing.T) {
	var h Histogram
	h.AddDuration(1500 * time.Microsecond)
	if h.Max() != 1.5 {
		t.Fatalf("duration recorded as %v ms, want 1.5", h.Max())
	}
}
